// Particle filter (§3.2, Fig. 5): the detail-demanding application.
// The developer improves positioning by plugging a particle filter into
// the middleware using only the public adaptation API:
//
//  1. attach the HDOP Component Feature to the Parser (Fig. 5, label 3),
//  2. attach the Likelihood Channel Feature to the GPS channel
//     (label 2), which collects HDOP values from each delivery's data
//     tree,
//  3. have the particle filter fetch the Likelihood feature from its
//     input channel and weight each particle with it (label 1).
//
// The program prints raw-GPS vs particle-filter error statistics over
// an indoor corridor walk — the Fig. 6 refinement.
package main

import (
	"fmt"
	"os"
	"time"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "particlefilter:", err)
		os.Exit(1)
	}
}

func run() error {
	b := building.Evaluation()
	tr := trace.CorridorWalk(b, 11, 6, time.Second)

	// --- PSL: the GPS pipeline with the particle filter appended ---
	g := core.New()
	pf := filter.NewParticleFilter("particle-filter", b, filter.Config{Particles: 400, Seed: 12})
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: 13, ColdStart: 2 * time.Second, IndoorDriftRate: 0.2}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		pf,
		core.NewSink("app", []core.Kind{positioning.KindPosition}),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return err
		}
	}
	for _, e := range []struct{ from, to string }{
		{"gps", "parser"}, {"parser", "interpreter"},
		{"interpreter", "particle-filter"}, {"particle-filter", "app"},
	} {
		if err := g.Connect(e.from, e.to, 0); err != nil {
			return err
		}
	}

	// (3) The HDOP Component Feature on the Parser.
	parserNode, _ := g.Node("parser")
	if err := parserNode.AttachFeature(gps.NewHDOPFeature()); err != nil {
		return err
	}

	// (2) The Likelihood Channel Feature on the GPS channel.
	layer := channel.NewLayer(g)
	defer layer.Close()
	ch, ok := layer.ChannelInto("particle-filter", 0)
	if !ok {
		return fmt.Errorf("no channel into the particle filter")
	}
	if err := ch.AttachFeature(filter.NewHDOPLikelihood(0)); err != nil {
		return err
	}

	// (1) The filter retrieves the feature from its input channel.
	likeAny, ok := ch.Feature(filter.FeatureLikelihood)
	if !ok {
		return fmt.Errorf("likelihood feature not retrievable")
	}
	pf.UseLikelihood(likeAny.(filter.Likelihood))

	// Compare raw and refined error with a tap on both components, and
	// collect the paths for the Fig. 6 style map.
	proj := geo.NewProjection(tr.Origin)
	var rawErrs, pfErrs []float64
	var pfPath []geo.ENU
	cancel := g.Tap(func(id string, s core.Sample) {
		pos, ok := s.Payload.(positioning.Position)
		if !ok || s.FromFeature != "" {
			return
		}
		truth, ok := tr.At(s.Time)
		if !ok {
			return
		}
		local := pos.Local
		if !pos.HasLocal {
			local = proj.ToLocal(pos.Global)
		}
		e := local.Distance(truth.Local)
		switch id {
		case "interpreter":
			rawErrs = append(rawErrs, e)
		case "particle-filter":
			pfErrs = append(pfErrs, e)
			pfPath = append(pfPath, local)
		}
	})
	defer cancel()

	if _, err := g.Run(0); err != nil {
		return err
	}

	fmt.Printf("positions: %d raw, %d filtered\n", len(rawErrs), len(pfErrs))
	fmt.Printf("raw GPS        mean %.1f m\n", mean(rawErrs))
	fmt.Printf("particle filter mean %.1f m\n", mean(pfErrs))
	emitted, resamples, reinits := pf.Stats()
	fmt.Printf("filter: %d estimates, %d resamples, %d reinits, %d live particles\n",
		emitted, resamples, reinits, len(pf.Particles()))

	like := likeAny.(*filter.HDOPLikelihood)
	fmt.Printf("likelihood feature saw %d HDOP values in the last tree (sigma %.1f m)\n",
		len(like.HDOPs()), like.Sigma())

	// The Fig. 6 frame: floor plan, final particle cloud, refined trace
	// and ground truth.
	var cloud []geo.ENU
	for _, part := range pf.Particles() {
		cloud = append(cloud, part.Pos)
	}
	var truthPath []geo.ENU
	for i := 0; i < tr.Len(); i += 5 {
		truthPath = append(truthPath, tr.Points[i].Local)
	}
	fmt.Println()
	fmt.Print(viz.Snapshot(b, 0, 100, cloud, pfPath, truthPath))
	return nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}
