// EnTracked (§3.3, Fig. 7): energy-efficient tracking rebuilt on the
// PerPos processing-graph abstractions, deployed across two hosts like
// the original — the GPS sensor wrapper runs on the "mobile device"
// with the Power Strategy Component Feature, while Parser, Interpreter
// and the EnTracked Channel Feature run on the "server", connected by
// the D-OSGi-analog TCP bridge.
package main

import (
	"fmt"
	"os"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/energy"
	"perpos/internal/eval"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/remote"
	"perpos/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "entracked:", err)
		os.Exit(1)
	}
}

func run() error {
	origin := geo.Point{Lat: 56.1629, Lon: 10.2039}
	tr := trace.PauseAndGo(origin, 31, 3, 300, 1.4, 2*time.Minute, time.Second)
	acct := energy.NewAccountant(energy.DefaultModel())

	// --- server graph: downlink -> parser -> interpreter -> sink ---
	server := core.New()
	dl := remote.NewDownlink("downlink", core.OutputSpec{Kind: gps.KindRaw})
	serverComps := []core.Component{
		dl,
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		core.NewSink("tracker", []core.Kind{positioning.KindPosition}),
	}
	for _, c := range serverComps {
		if _, err := server.Add(c); err != nil {
			return err
		}
	}
	for _, e := range []struct{ from, to string }{
		{"downlink", "parser"}, {"parser", "interpreter"}, {"interpreter", "tracker"},
	} {
		if err := server.Connect(e.from, e.to, 0); err != nil {
			return err
		}
	}
	srv, err := remote.Serve("127.0.0.1:0", server, dl, nil)
	if err != nil {
		return err
	}
	defer srv.Close()

	// The server-side channel layer: the EnTracked monitoring feature
	// attaches to the channel ending at the Interpreter.
	layer := channel.NewLayer(server)
	defer layer.Close()
	ch, ok := layer.ChannelInto("tracker", 0)
	if !ok {
		return fmt.Errorf("no channel into the tracker")
	}

	// --- device graph: receiver (+ power strategy) -> uplink ---
	device := core.New()
	recv := gps.NewReceiver("gps", tr,
		gps.Config{Seed: 32, ColdStart: 15 * time.Second, WarmStart: 5 * time.Second},
		gps.StartOff(), gps.WithTick(acct.Tick))
	if _, err := device.Add(recv); err != nil {
		return err
	}
	up := remote.NewUplink("uplink", srv.Addr(), []core.Kind{gps.KindRaw}, nil)
	defer up.Close()
	if _, err := device.Add(up); err != nil {
		return err
	}
	if err := device.Connect("gps", "uplink", 0); err != nil {
		return err
	}

	recvNode, _ := device.Node("gps")
	strat := energy.NewPowerStrategy(energy.PowerStrategyConfig{Threshold: 50, Warmup: 6 * time.Second})
	if err := recvNode.AttachFeature(strat); err != nil {
		return err
	}

	// The server-side monitoring feature: each Interpreter output is one
	// radio report, and drives the device-side Power Strategy. The
	// channel cannot see the strategy (it lives on the device graph), so
	// the control link is wired directly — the role D-OSGi remote
	// services played in the paper's deployment.
	rep := energy.NewReporterFeature(acct, strat)
	if err := ch.AttachFeature(rep); err != nil {
		return err
	}

	// Drive the device in lockstep with the server: after each device
	// epoch, wait until the server has processed everything sent, so
	// that power-control commands act at the simulated time they were
	// issued (a free-running loop would outpace the TCP round-trip and
	// the GPS would never get switched off in time).
	for {
		more, err := device.StepSource("gps")
		if err != nil {
			return err
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			sent, _ := up.Stats()
			if dl.Received() >= sent || time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		if !more {
			break
		}
	}
	sent, _ := up.Stats()

	sum := acct.Summary()
	errs := eval.TrackingError(tr, rep.Reports())
	stats := eval.Stats(errs)
	fmt.Printf("trace: %s, %.0f m travelled\n", tr.Duration(), tr.TotalDistance())
	fmt.Printf("uplink: %d raw sentences sent over TCP\n", sent)
	fmt.Printf("energy: %v\n", sum)
	fmt.Printf("tracking error: mean %.1f m, p95 %.1f m (threshold 50 m)\n", stats.Mean, stats.P95)
	fmt.Printf("gps duty cycle: %.0f%% (vs 100%% always-on)\n", sum.DutyCycle()*100)
	return nil
}
