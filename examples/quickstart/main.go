// Quickstart: the transparent face of PerPos. An application asks the
// Positioning Layer for a location provider matching its criteria and
// consumes technology-independent positions — never touching the
// processing layers below (paper §2.3).
package main

import (
	"fmt"
	"os"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- middleware side: a GPS pipeline terminating in a provider ---
	b := building.Evaluation()
	tr := trace.Commute(b, 1, 120, 500*time.Millisecond)

	provider := positioning.NewProvider("gps", positioning.ProviderInfo{
		Technology:      "gps",
		TypicalAccuracy: 5,
	}, nil)

	g := core.New()
	comps := []core.Component{
		gps.NewReceiver("receiver", tr, gps.Config{Seed: 2, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		positioning.NewProviderSink("app", provider),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return err
		}
	}
	for _, e := range []struct{ from, to string }{
		{"receiver", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
	} {
		if err := g.Connect(e.from, e.to, 0); err != nil {
			return err
		}
	}

	manager := &positioning.Manager{}
	if err := manager.Register(provider); err != nil {
		return err
	}

	// --- application side: criteria, push and pull ---
	p, err := manager.Provider(positioning.Criteria{MaxAccuracy: 10})
	if err != nil {
		return err
	}
	fmt.Printf("selected provider %q (%s)\n", p.Name(), p.Info().Technology)

	count := 0
	cancel := p.Subscribe(func(pos positioning.Position) {
		if count < 5 {
			fmt.Println("push:", pos)
		}
		count++
	})
	defer cancel()

	// A proximity notification 40 m around the building entrance.
	entrance := b.Projection().ToGlobal(geo.ENU{East: 0, North: 6})
	cancelProx := p.NotifyProximity(entrance, 40, func(pos positioning.Position) {
		fmt.Println("proximity: entered the 40 m zone at", pos.Global)
	})
	defer cancelProx()

	if _, err := g.Run(0); err != nil {
		return err
	}

	if last, ok := p.Last(); ok {
		fmt.Println("pull (final):", last)
	}
	fmt.Printf("received %d positions\n", count)
	return nil
}
