// Room Number application (Fig. 1 and the paper's introduction): show
// the current position as a point on a map when outdoors and highlight
// the currently occupied room when inside the building.
//
// Two concrete positioning processes feed one application: the phone's
// GPS (receiver -> Parser -> Interpreter -> WGS84 positions) and the
// building's WiFi positioning system (sensor -> positioning -> Resolver
// -> room IDs). The application itself stays technology-transparent.
package main

import (
	"fmt"
	"os"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roomnumber:", err)
		os.Exit(1)
	}
}

func run() error {
	b := building.Evaluation()
	tr := trace.Commute(b, 21, 150, 500*time.Millisecond)
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: 22})

	g := core.New()
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: 23, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		wifi.NewSensor("wifi", network, tr, 2*time.Second, 24),
		wifi.NewEngine("positioning", db, b, 3),
		wifi.NewResolver("resolver", b),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return err
		}
	}

	// The application sink: a tiny state machine that switches between
	// map mode and room mode. Room events supersede GPS points; GPS
	// points are shown while no recent room event exists.
	var (
		lastRoom     string
		lastRoomAt   time.Time
		mapPoints    int
		roomSwitches int
	)
	app := &core.FuncComponent{
		CompID: "app",
		CompSpec: core.Spec{
			Name: "RoomNumberApp",
			Inputs: []core.PortSpec{
				{Name: "gps", Accepts: []core.Kind{positioning.KindPosition}},
				{Name: "room", Accepts: []core.Kind{positioning.KindRoom}},
			},
		},
		Fn: func(port int, in core.Sample, _ core.Emit) error {
			switch port {
			case 0:
				pos := in.Payload.(positioning.Position)
				// Outdoor mode: only when the room view is stale.
				if in.Time.Sub(lastRoomAt) > 5*time.Second {
					if mapPoints < 5 || mapPoints%60 == 0 {
						fmt.Printf("[map ] %v\n", pos)
					}
					mapPoints++
				}
			case 1:
				room := in.Payload.(string)
				if room != lastRoom {
					fmt.Printf("[room] now in %s\n", room)
					lastRoom = room
					roomSwitches++
				}
				lastRoomAt = in.Time
			}
			return nil
		},
	}
	if _, err := g.Add(app); err != nil {
		return err
	}
	for _, e := range []struct {
		from, to string
		port     int
	}{
		{"gps", "parser", 0},
		{"parser", "interpreter", 0},
		{"interpreter", "app", 0},
		{"wifi", "positioning", 0},
		{"positioning", "resolver", 0},
		{"resolver", "app", 1},
	} {
		if err := g.Connect(e.from, e.to, e.port); err != nil {
			return err
		}
	}

	if _, err := g.Run(0); err != nil {
		return err
	}
	fmt.Printf("done: %d map points, %d room switches, final room %q (truth: %q)\n",
		mapPoints, roomSwitches, lastRoom, tr.Points[tr.Len()-1].RoomID)
	return nil
}
