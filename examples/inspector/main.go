// Inspector: seamful design for developers (§4). The program walks a
// live pipeline through all three levels of abstraction, then adapts
// the positioning process at runtime — inserting the §3.1 satellite
// filter into the running pipeline — and shows that the Process
// Channel Layer's reflection stays causally connected to the change.
package main

import (
	"fmt"
	"os"
	"time"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inspector:", err)
		os.Exit(1)
	}
}

func run() error {
	b := building.Evaluation()
	tr := trace.Commute(b, 41, 120, 500*time.Millisecond)

	g := core.New()
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: 42, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		core.NewSink("app", []core.Kind{positioning.KindPosition}),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return err
		}
	}
	for _, e := range []struct{ from, to string }{
		{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
	} {
		if err := g.Connect(e.from, e.to, 0); err != nil {
			return err
		}
	}
	parserNode, _ := g.Node("parser")
	satFeature := gps.NewSatellitesFeature()
	if err := parserNode.AttachFeature(satFeature); err != nil {
		return err
	}

	layer := channel.NewLayer(g)
	defer layer.Close()

	printLayers := func(stage string) {
		fmt.Printf("--- %s ---\n", stage)
		fmt.Print("PSL: ")
		for i, n := range g.Nodes() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(n.ID())
		}
		fmt.Println()
		for _, c := range layer.View().Channels {
			fmt.Printf("PCL: channel %s nodes=%v\n", c.ID, c.Nodes)
		}
	}

	printLayers("initial pipeline")

	// Run the first half: count what the app sees.
	half := tr.Len() / 2
	for i := 0; i < half; i++ {
		if _, err := g.StepAll(); err != nil {
			return err
		}
	}
	sink, _ := g.Node("app")
	before := sink.Component().(*core.Sink).Len()
	fmt.Printf("first half: %d positions delivered\n\n", before)

	// The developer notices unreliable indoor fixes and inserts the
	// satellite filter into the RUNNING process — no middleware code
	// changed, no pipeline restart.
	if err := g.InsertBetween(gps.NewSatelliteFilter("satfilter", 6),
		"parser", "interpreter", 0, 0); err != nil {
		return err
	}
	layer.Refresh() // reflection stays causally connected

	printLayers("after inserting satfilter")

	// Inspect the feature state through the PSL.
	if f, ok := parserNode.Feature(gps.FeatureSatellites); ok {
		if n, seen := f.(gps.SatelliteProvider).Satellites(); seen {
			fmt.Printf("parser's NumberOfSatellites feature currently reads %d\n", n)
		}
	}

	// Run the second half.
	for {
		more, err := g.StepAll()
		if err != nil {
			return err
		}
		if !more {
			break
		}
	}
	after := sink.Component().(*core.Sink).Len() - before
	fmt.Printf("second half: %d positions delivered (ghost fixes now filtered)\n", after)

	// The channel's data tree shows the filter inside the process.
	if ch, ok := layer.ChannelInto("app", 0); ok {
		if tree, ok := ch.LastTree(); ok {
			fmt.Printf("last data tree: depth %d, %d elements\n", tree.Depth(), tree.Size())
		}
	}
	return nil
}
