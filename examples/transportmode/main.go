// Transportation mode: the reasoning pipeline the paper cites as a
// motivating detail-demanding application (Zheng et al. [4]) —
// segmentation, feature extraction, decision-tree classification and
// HMM post-processing — built as four Processing Components appended to
// the standard GPS pipeline. The program prints the detected mode
// timeline against the ground truth.
package main

import (
	"fmt"
	"os"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/trace"
	"perpos/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transportmode:", err)
		os.Exit(1)
	}
}

func run() error {
	origin := geo.Point{Lat: 56.1629, Lon: 10.2039}
	tr := trace.Multimodal(origin, 51, time.Second)
	fmt.Printf("trip: %s, %.1f km (still -> walk -> bike -> drive -> walk -> still)\n\n",
		tr.Duration(), tr.TotalDistance()/1000)

	g := core.New()
	hmm := transport.NewHMMSmoother("hmm", 0)
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: 52, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		transport.NewSegmenter("segmenter", 30*time.Second),
		transport.NewFeatureExtractor("features"),
		transport.NewClassifier("classifier"),
		hmm,
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return err
		}
	}

	var hits, total int
	start := tr.Points[0].Time
	app := core.NewSink("app", []core.Kind{transport.KindMode}, core.WithCallback(func(s core.Sample) {
		est, ok := s.Payload.(transport.ModeEstimate)
		if !ok {
			return
		}
		mid := est.Start.Add(est.End.Sub(est.Start) / 2)
		truth, _ := tr.At(mid)
		mark := " "
		total++
		if est.Mode.String() == truth.Mode {
			hits++
			mark = "="
		}
		fmt.Printf("t+%4.0fs  detected %-6s %s truth %-6s (confidence %.2f)\n",
			est.Start.Sub(start).Seconds(), est.Mode, mark, truth.Mode, est.Confidence)
	}))
	if _, err := g.Add(app); err != nil {
		return err
	}
	order := []string{"gps", "parser", "interpreter", "segmenter", "features", "classifier", "hmm", "app"}
	for i := 0; i < len(order)-1; i++ {
		if err := g.Connect(order[i], order[i+1], 0); err != nil {
			return err
		}
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if _, err := g.Run(0); err != nil {
		return err
	}

	fmt.Printf("\naccuracy: %d/%d segments (%.0f%%), %d smoothed transitions\n",
		hits, total, 100*float64(hits)/float64(total), hmm.Flips())
	return nil
}
