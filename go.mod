module perpos

go 1.22
