package perpos_test

import (
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/eval"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// TestFullFusionSystem runs the complete Fig. 2 system — GPS and WiFi
// pipelines fused by the particle filter, with the HDOP Component
// Feature and Likelihood Channel Feature installed — and checks the
// whole stack top to bottom: the Positioning Layer provider delivers
// room-annotated positions, the channel feature is reachable from the
// top layer, and the fused estimate tracks the ground truth.
func TestFullFusionSystem(t *testing.T) {
	g, layer, pf, provider, err := eval.BuildFig2(900)
	if err != nil {
		t.Fatal(err)
	}
	defer layer.Close()

	var delivered []positioning.Position
	cancel := provider.Subscribe(func(pos positioning.Position) {
		delivered = append(delivered, pos)
	})
	defer cancel()

	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	if len(delivered) < 50 {
		t.Fatalf("provider delivered %d positions", len(delivered))
	}

	// Pull semantics agree with push.
	last, ok := provider.Last()
	if !ok || !last.Time.Equal(delivered[len(delivered)-1].Time) {
		t.Errorf("Last() = %+v, disagrees with final push", last)
	}

	// The top layer reaches the channel feature installed below.
	f, ok := provider.Feature(filter.FeatureLikelihood)
	if !ok {
		t.Fatal("likelihood feature not reachable from the Positioning Layer")
	}
	if _, ok := f.(filter.Likelihood); !ok {
		t.Fatalf("feature %T does not implement Likelihood", f)
	}

	// Most fused estimates resolve to a room (the walk is indoors).
	withRoom := 0
	for _, pos := range delivered {
		if pos.RoomID != "" {
			withRoom++
		}
		if pos.Source != "particle-filter" {
			t.Fatalf("position source = %q", pos.Source)
		}
	}
	if frac := float64(withRoom) / float64(len(delivered)); frac < 0.9 {
		t.Errorf("only %.0f%% of fused positions carry a room", frac*100)
	}

	// The filter's population is alive and legal.
	if len(pf.Particles()) == 0 {
		t.Error("empty particle population after the run")
	}
}

// TestReadmeQuickstartSnippet keeps the README's minimal-pipeline code
// honest: the exact wiring shown there must build and deliver.
func TestReadmeQuickstartSnippet(t *testing.T) {
	b := building.Evaluation()
	groundTruth := trace.Commute(b, 1, 100, time.Second)

	g := core.New()
	mustAdd := func(c core.Component) {
		t.Helper()
		if _, err := g.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(gps.NewReceiver("gps", groundTruth, gps.Config{}))
	mustAdd(gps.NewParser("parser"))
	mustAdd(gps.NewInterpreter("interpreter", 0))
	provider := positioning.NewProvider("gps", positioning.ProviderInfo{Technology: "gps"}, nil)
	mustAdd(positioning.NewProviderSink("app", provider))
	for _, e := range []struct{ from, to string }{
		{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
	} {
		if err := g.Connect(e.from, e.to, 0); err != nil {
			t.Fatal(err)
		}
	}

	count := 0
	cancel := provider.Subscribe(func(positioning.Position) { count++ })
	defer cancel()
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("quickstart pipeline delivered nothing")
	}

	// The README's §3.1 adaptation snippet.
	parserNode, _ := g.Node("parser")
	if err := parserNode.AttachFeature(gps.NewSatellitesFeature()); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertBetween(gps.NewSatelliteFilter("satfilter", 6),
		"parser", "interpreter", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTrackingServiceEndToEnd exercises the Positioning Layer's target
// tracking and k-nearest queries over two live pipelines.
func TestTrackingServiceEndToEnd(t *testing.T) {
	b := building.Evaluation()
	manager := &positioning.Manager{}

	startTarget := func(name string, seed int64) {
		t.Helper()
		tr := trace.CorridorWalk(b, seed, 3, time.Second)
		provider := positioning.NewProvider(name, positioning.ProviderInfo{Technology: "gps"}, nil)
		if err := manager.Register(provider); err != nil {
			t.Fatal(err)
		}
		target := manager.Track(name)
		target.Attach(provider)

		g := core.New()
		for _, c := range []core.Component{
			gps.NewReceiver("gps", tr, gps.Config{Seed: seed, ColdStart: time.Second}),
			gps.NewParser("parser"),
			gps.NewInterpreter("interpreter", 0),
			positioning.NewProviderSink("app", provider),
		} {
			if _, err := g.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range []struct{ from, to string }{
			{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
		} {
			if err := g.Connect(e.from, e.to, 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := g.Run(0); err != nil {
			t.Fatal(err)
		}
	}

	startTarget("alice", 901)
	startTarget("bob", 902)

	center := geo.Point{Lat: 56.1629, Lon: 10.2039}
	near := manager.KNearest(center, 2)
	if len(near) != 2 {
		t.Fatalf("KNearest = %d targets", len(near))
	}
	for _, n := range near {
		if n.Distance > 500 {
			t.Errorf("target %s reported %0.f m away", n.Target.ID(), n.Distance)
		}
	}
}
