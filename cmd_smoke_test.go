// Smoke tests for the binaries: every command and example must build,
// and the deterministic demos must produce identical output run-to-run.
// These trees carry no unit tests of their own — this is the floor that
// keeps them from silently rotting as the internal packages move.
package perpos_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// mainPackages returns the repo-relative paths of every buildable main
// package under cmd/ and examples/.
func mainPackages(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, tree := range []string{"cmd", "examples"} {
		entries, err := os.ReadDir(tree)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			if _, err := os.Stat(filepath.Join(tree, e.Name(), "main.go")); err != nil {
				continue
			}
			out = append(out, "./"+tree+"/"+e.Name())
		}
	}
	if len(out) == 0 {
		t.Fatal("no main packages found under cmd/ or examples/")
	}
	return out
}

// buildBinaries compiles every main package into a shared temp dir once
// per test binary and returns name -> path.
func buildBinaries(t *testing.T) map[string]string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()
	bins := make(map[string]string)
	for _, pkg := range mainPackages(t) {
		name := filepath.Base(pkg)
		out := filepath.Join(dir, name)
		cmd := exec.Command(goBin, "build", "-o", out, pkg)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, b)
		}
		bins[name] = out
	}
	return bins
}

// runBin executes a built binary and returns its combined output.
func runBin(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := runBinErr(bin, args...)
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return out
}

// runBinErr is the variant for exercising failure exits (the benchmark
// regression gate is SUPPOSED to exit non-zero on a regression).
func runBinErr(bin string, args ...string) (string, error) {
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestBinariesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every binary")
	}
	bins := buildBinaries(t)

	// Deterministic end-to-end runs: same seed, same output, twice.
	t.Run("quickstart", func(t *testing.T) {
		first := runBin(t, bins["quickstart"])
		if first == "" {
			t.Fatal("quickstart printed nothing")
		}
		if again := runBin(t, bins["quickstart"]); again != first {
			t.Errorf("quickstart output not deterministic:\n--- first\n%s--- second\n%s", first, again)
		}
	})

	t.Run("roomnumber", func(t *testing.T) {
		first := runBin(t, bins["roomnumber"])
		if first == "" {
			t.Fatal("roomnumber printed nothing")
		}
		if again := runBin(t, bins["roomnumber"]); again != first {
			t.Errorf("roomnumber output not deterministic:\n--- first\n%s--- second\n%s", first, again)
		}
	})

	t.Run("perpos-run-roomnumber", func(t *testing.T) {
		args := []string{"-pipeline", "roomnumber", "-seed", "3", "-max", "5"}
		first := runBin(t, bins["perpos-run"], args...)
		if first == "" {
			t.Fatal("perpos-run printed nothing")
		}
		if again := runBin(t, bins["perpos-run"], args...); again != first {
			t.Errorf("perpos-run output not deterministic:\n--- first\n%s--- second\n%s", first, again)
		}
	})

	t.Run("perpos-run-targets", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-targets", "3", "-seed", "5")
		for _, want := range []string{"target-000", "target-002", "positions total"} {
			if !strings.Contains(out, want) {
				t.Errorf("multi-target output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-run-cluster", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-cluster", "2", "-targets", "12", "-seed", "3")
		for _, want := range []string{
			"tracking 12 targets across 2 nodes",
			"declared dead",
			"failover complete: every session resumed on a survivor",
			"rebalance to n3 done",
			"counters: handoffs=",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("cluster demo output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-run-chaos", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-chaos", "-seed", "7")
		for _, want := range []string{
			"starting fault script",
			"provider -> TEMPORARILY_UNAVAILABLE",
			"degraded to GPS branch",
			"provider -> AVAILABLE",
			"survived injected outage",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("chaos demo output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-run-chaos-script", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-chaos", "-seed", "7",
			"-chaos-script", "examples/configs/chaos-fusion.json")
		for _, want := range []string{
			`fault script "chaos-fusion": 2 steps`,
			"degraded to GPS branch",
			"survived injected outage",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("scripted chaos output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-run-rollout", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-rollout", "-seed", "11")
		for _, want := range []string{
			"fleet live: 24 sessions on revision 1 (fusion-upgrade)",
			"rollout fusion-upgrade 1->2: 24 sessions, 6 canaries",
			"rollout ramping: active revision now 2",
			"rollout counters: started=1 completed=1 rolled_back=0 upgraded=24 reverted=0 failed=0",
			"rollout complete: fleet on revision 2 (24/24 sessions, 6 canaries, 0 dropped)",
			"fleet still delivering",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("rollout demo output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-run-rollout-fail", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-rollout-fail", "-seed", "11")
		for _, want := range []string{
			"fleet live: 24 sessions on revision 1 (fusion-upgrade)",
			"rollout gate tripped",
			"rollout counters: started=1 completed=0 rolled_back=1 upgraded=6 reverted=6 failed=0",
			"rollout rolled back",
			"fleet back on revision 1: 24/24 sessions, 6 canaries reverted, active revision 1",
			"fleet still delivering",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("rollout rollback demo output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-run-rules", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-rules", "examples/configs/rules-fusion.json", "-seed", "7")
		for _, want := range []string{
			"rule accuracy-filter  when attr:hdop > 4",
			"insert hdop-filter between parser and interpreter",
			"rules engaged: hdop-filter spliced into the live pipeline",
			"supervisor-conflict",
			"swap rule stood down; positions kept flowing",
			"swap rule re-engaged on its own",
			"accuracy recovered: rules disengaged, graph restored",
			"rule provider-swap    engagements=2 disengagements=2",
			"self-adaptation demo complete",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("rules demo output missing %q:\n%s", want, out)
			}
		}
		// The flap damper must have absorbed the whole script: no rule
		// may end the demo benched.
		if strings.Contains(out, "quarantined=true") {
			t.Errorf("a rule ended the demo quarantined:\n%s", out)
		}
	})

	t.Run("perpos-run-checkpoint-resume", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ckpt")
		out := runBin(t, bins["perpos-run"], "-chaos", "-seed", "7", "-checkpoint-dir", dir)
		for _, want := range []string{
			"survived injected outage",
			"evicted and resumed from " + dir,
			"resumed session delivered",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("checkpoint demo output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-run-metrics", func(t *testing.T) {
		out := runBin(t, bins["perpos-run"], "-targets", "2", "-seed", "5",
			"-metrics-addr", "127.0.0.1:0")
		if !strings.Contains(out, "metrics: http://127.0.0.1:") {
			t.Errorf("no metrics endpoint announced:\n%s", out)
		}
		// The final snapshot is the process's own /metrics scrape: the
		// lifecycle counters must reflect the two-target replay and the
		// hot-path instrumentation must have counted real traffic.
		for _, want := range []string{
			"=== final /metrics snapshot ===",
			`"sessions_created": 2`,
			`"sessions_evicted": 2`,
			`"spans_emitted"`,
			`"tree_depth"`,
			`"gps"`,
			`"particle-filter"`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("metrics snapshot missing %q:\n%s", want, out)
			}
		}
		if strings.Contains(out, `"spans_emitted": 0,`) {
			t.Errorf("metrics snapshot counted no spans despite a replayed workload:\n%s", out)
		}
	})

	t.Run("perpos-inspect-trace", func(t *testing.T) {
		out := runBin(t, bins["perpos-inspect"], "-trace")
		for _, want := range []string{
			"end-to-end traces",
			"channel gps->particle-filter:0",
			"channel particle-filter->app:0",
			"logical=",
			"process=",
			"end-to-end:",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("trace output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("perpos-bench-gate", func(t *testing.T) {
		dir := t.TempDir()
		benchOut := filepath.Join(dir, "bench.txt")
		if err := os.WriteFile(benchOut, []byte(
			"goos: linux\n"+
				"BenchmarkRuntimeSessions/sessions_10-8  1  300000000 ns/op  450.5 samples/s\n"+
				"BenchmarkRoomAt/grid-8  20000  15.2 ns/op  0 B/op\n"+
				"BenchmarkRuntimeSaturated/sessions_100-8  100  650000 ns/op  996 B/op  17 allocs/op  150000 samples/s\n"+
				"PASS\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		newJSON := filepath.Join(dir, "new.json")
		runBin(t, bins["perpos-bench"], "-gobench", benchOut, "-json", newJSON)
		data, err := os.ReadFile(newJSON)
		if err != nil {
			t.Fatal(err)
		}
		// The -<GOMAXPROCS> suffix must be stripped so baselines port
		// across machines.
		for _, want := range []string{
			`"id": "BenchmarkRuntimeSessions/sessions_10"`,
			`"id": "BenchmarkRoomAt/grid"`,
			`"samples_per_sec": 450.5`,
			`"allocs_op": 17`,
			`"bytes_op": 996`,
		} {
			if !strings.Contains(string(data), want) {
				t.Errorf("gobench JSON missing %q:\n%s", want, data)
			}
		}

		// Within tolerance: gate passes.
		baseline := filepath.Join(dir, "old.json")
		if err := os.WriteFile(baseline, []byte(`[
  {"id": "BenchmarkRuntimeSessions/sessions_10", "title": "", "ns_op": 310000000, "samples_per_sec": 470},
  {"id": "BenchmarkRoomAt/grid", "title": "", "ns_op": 14}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out := runBin(t, bins["perpos-bench"], "-compare", baseline, newJSON, "-tol", "10%")
		if !strings.Contains(out, "all 2 timings within 10%") {
			t.Errorf("gate did not pass a within-tolerance comparison:\n%s", out)
		}

		// Injected 25% slowdown on both metrics: gate must fail.
		slow := filepath.Join(dir, "slow.json")
		if err := os.WriteFile(slow, []byte(`[
  {"id": "BenchmarkRuntimeSessions/sessions_10", "title": "", "ns_op": 300000000, "samples_per_sec": 352},
  {"id": "BenchmarkRoomAt/grid", "title": "", "ns_op": 19}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err = runBinErr(bins["perpos-bench"], "-compare", baseline, slow, "-tol", "10%")
		if err == nil {
			t.Fatalf("gate passed a 25%% slowdown:\n%s", out)
		}
		if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "2 regression(s)") {
			t.Errorf("regression output missing diagnosis:\n%s", out)
		}

		// A benchmark that vanished from the new run is a failure too —
		// deleting the regressing benchmark must not green the gate.
		pruned := filepath.Join(dir, "pruned.json")
		if err := os.WriteFile(pruned, []byte(`[
  {"id": "BenchmarkRoomAt/grid", "title": "", "ns_op": 14}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err = runBinErr(bins["perpos-bench"], "-compare", baseline, pruned, "-tol", "10%")
		if err == nil {
			t.Fatalf("gate passed with a baseline benchmark missing from the new run:\n%s", out)
		}
		if !strings.Contains(out, "MISSING") {
			t.Errorf("missing-benchmark output lacks diagnosis:\n%s", out)
		}

		// An allocation regression must fail the gate even when
		// throughput holds: baseline pins 17 allocs/op and 996 B/op, the
		// parsed bench.txt matches, then a doubled-allocs run does not.
		memBase := filepath.Join(dir, "mem-base.json")
		if err := os.WriteFile(memBase, []byte(`[
  {"id": "BenchmarkRuntimeSaturated/sessions_100", "title": "", "ns_op": 650000,
   "samples_per_sec": 150000, "allocs_op": 17, "bytes_op": 996}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out = runBin(t, bins["perpos-bench"], "-compare", memBase, newJSON, "-tol", "10%")
		if !strings.Contains(out, "allocs/op") || !strings.Contains(out, "B/op") {
			t.Errorf("gate did not report memory metrics:\n%s", out)
		}
		memBad := filepath.Join(dir, "mem-bad.json")
		if err := os.WriteFile(memBad, []byte(`[
  {"id": "BenchmarkRuntimeSaturated/sessions_100", "title": "", "ns_op": 650000,
   "samples_per_sec": 160000, "allocs_op": 34, "bytes_op": 996}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err = runBinErr(bins["perpos-bench"], "-compare", memBase, memBad, "-tol", "10%")
		if err == nil {
			t.Fatalf("gate passed a doubled allocs/op with good throughput:\n%s", out)
		}
		if !strings.Contains(out, "allocs/op") || !strings.Contains(out, "REGRESSED") {
			t.Errorf("alloc regression output missing diagnosis:\n%s", out)
		}
	})

	t.Run("perpos-bench-ratio", func(t *testing.T) {
		// The within-run overhead gate: ruled throughput is compared to
		// its observed twin from the SAME timings file, so scheduler
		// drift between runs cannot mask (or fake) engine overhead.
		dir := t.TempDir()
		paired := filepath.Join(dir, "paired.json")
		if err := os.WriteFile(paired, []byte(`[
  {"id": "BenchmarkObserved/sessions_10", "title": "", "ns_op": 100000, "samples_per_sec": 1000},
  {"id": "BenchmarkRuled/sessions_10", "title": "", "ns_op": 101000, "samples_per_sec": 991},
  {"id": "BenchmarkObserved/sessions_100", "title": "", "ns_op": 100000, "samples_per_sec": 9800},
  {"id": "BenchmarkRuled/sessions_100", "title": "", "ns_op": 100000, "samples_per_sec": 9750}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out := runBin(t, bins["perpos-bench"], "-ratio", paired,
			"-base", "BenchmarkObserved", "-against", "BenchmarkRuled", "-tol", "2%")
		if !strings.Contains(out, "all 2 BenchmarkRuled timings within 2% of BenchmarkObserved") {
			t.Errorf("ratio gate did not pass a within-tolerance pair:\n%s", out)
		}

		// 6% overhead on one family: the gate must fail and say which.
		slow := filepath.Join(dir, "slow.json")
		if err := os.WriteFile(slow, []byte(`[
  {"id": "BenchmarkObserved/sessions_10", "title": "", "ns_op": 100000, "samples_per_sec": 1000},
  {"id": "BenchmarkRuled/sessions_10", "title": "", "ns_op": 106000, "samples_per_sec": 940}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := runBinErr(bins["perpos-bench"], "-ratio", slow,
			"-base", "BenchmarkObserved", "-against", "BenchmarkRuled", "-tol", "2%")
		if err == nil {
			t.Fatalf("ratio gate passed a 6%% overhead:\n%s", out)
		}
		if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "overhead violation") {
			t.Errorf("ratio regression output missing diagnosis:\n%s", out)
		}

		// A ruled family missing its observed twin is a failure, not a
		// silently skipped comparison.
		lonely := filepath.Join(dir, "lonely.json")
		if err := os.WriteFile(lonely, []byte(`[
  {"id": "BenchmarkObserved/sessions_10", "title": "", "ns_op": 100000, "samples_per_sec": 1000}
]`), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err = runBinErr(bins["perpos-bench"], "-ratio", lonely,
			"-base", "BenchmarkObserved", "-against", "BenchmarkRuled", "-tol", "2%")
		if err == nil {
			t.Fatalf("ratio gate passed with no ruled entries:\n%s", out)
		}
		if !strings.Contains(out, "MISSING") {
			t.Errorf("missing-twin output lacks diagnosis:\n%s", out)
		}
	})

	t.Run("saturated-bench-smoke", func(t *testing.T) {
		// One iteration of the saturated benchmark: catches panics or
		// pool-corruption in the flat-out path without paying benchmark
		// runtime. The full run is the CI bench gate's job.
		goBin, err := exec.LookPath("go")
		if err != nil {
			t.Skip("go toolchain not in PATH")
		}
		out, err := exec.Command(goBin, "test", "./internal/runtime/",
			"-run", "^$", "-bench", "BenchmarkRuntimeSaturated/sessions_1$",
			"-benchtime", "1x").CombinedOutput()
		if err != nil {
			t.Fatalf("saturated bench smoke: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "BenchmarkRuntimeSaturated") {
			t.Errorf("saturated bench did not run:\n%s", out)
		}
	})

	t.Run("perpos-bench-list", func(t *testing.T) {
		out := runBin(t, bins["perpos-bench"], "-list")
		if !strings.Contains(out, "E1") || !strings.Contains(out, "E10") {
			t.Errorf("-list output missing experiments:\n%s", out)
		}
	})

	t.Run("perpos-bench-json", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bench.json")
		runBin(t, bins["perpos-bench"], "-e", "E2", "-json", path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{`"id": "E2"`, `"ns_op"`} {
			if !strings.Contains(string(data), want) {
				t.Errorf("bench JSON missing %q:\n%s", want, data)
			}
		}
	})
}
