package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"perpos/internal/core"
)

const kindRaw core.Kind = "gps.raw"

func rawSamples(n int) []core.Sample {
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	out := make([]core.Sample, n)
	for i := range out {
		out[i] = core.NewSample(kindRaw, "$GPGGA,line", base.Add(time.Duration(i)*time.Second))
	}
	return out
}

func TestRecordReplayRoundTrip(t *testing.T) {
	// Record a live "sensor", then replay it through an emulator taking
	// the sensor's place — the §3.2 workflow.
	g := core.New()
	src := &core.SliceSource{
		CompID:  "sensor",
		Out:     core.OutputSpec{Kind: kindRaw},
		Samples: rawSamples(5),
	}
	if _, err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{kindRaw})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("sensor", "app", 0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rec := NewRecorder(g, "sensor", &buf)
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	samples, err := ReadRecorded(&buf, map[core.Kind]Decoder{kindRaw: StringDecoder})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("recorded %d samples, want 5", len(samples))
	}
	for i, s := range samples {
		if s.Kind != kindRaw {
			t.Errorf("sample %d kind = %q", i, s.Kind)
		}
		if s.Payload.(string) != "$GPGGA,line" {
			t.Errorf("sample %d payload = %v", i, s.Payload)
		}
	}

	// Replay: emulator presents itself as the sensor.
	g2 := core.New()
	emu := NewEmulator("sensor", core.OutputSpec{Kind: kindRaw}, samples)
	if _, err := g2.Add(emu); err != nil {
		t.Fatal(err)
	}
	sink2 := core.NewSink("app", []core.Kind{kindRaw})
	if _, err := g2.Add(sink2); err != nil {
		t.Fatal(err)
	}
	if err := g2.Connect("sensor", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink2.Len() != 5 {
		t.Errorf("replayed %d samples, want 5", sink2.Len())
	}
	// Replay preserves the recorded timestamps.
	first, _ := sink2.Received()[0], sink2.Received()
	if !first.Time.Equal(rawSamples(1)[0].Time) {
		t.Errorf("replayed time = %v", first.Time)
	}
}

func TestRecorderIgnoresOtherComponentsAndFeatures(t *testing.T) {
	g := core.New()
	src := &core.SliceSource{
		CompID:  "a",
		Out:     core.OutputSpec{Kind: kindRaw},
		Samples: rawSamples(2),
	}
	other := &core.SliceSource{
		CompID:  "b",
		Out:     core.OutputSpec{Kind: kindRaw},
		Samples: rawSamples(3),
	}
	if _, err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(other); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rec := NewRecorder(g, "a", &buf)
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadRecorded(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Errorf("recorded %d, want 2 (only component a)", len(samples))
	}
}

func TestReadRecordedWithoutDecoderKeepsRaw(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(RecordedSample{Kind: "x", Payload: json.RawMessage(`{"a":1}`)}); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadRecorded(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := samples[0].Payload.(json.RawMessage)
	if !ok {
		t.Fatalf("payload type = %T, want json.RawMessage", samples[0].Payload)
	}
	if string(raw) != `{"a":1}` {
		t.Errorf("payload = %s", raw)
	}
}

func TestReadRecordedDecoderError(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(RecordedSample{Kind: kindRaw, Payload: json.RawMessage(`123`)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecorded(&buf, map[core.Kind]Decoder{kindRaw: StringDecoder}); err == nil {
		t.Error("decoding 123 as string should fail")
	}
}

func TestEmulatorLoop(t *testing.T) {
	emu := NewEmulator("e", core.OutputSpec{Kind: kindRaw}, rawSamples(2), WithLoop())
	var emitted int
	emit := func(core.Sample) { emitted++ }
	for i := 0; i < 5; i++ {
		more, err := emu.Step(emit)
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			t.Fatal("looping emulator reported exhaustion")
		}
	}
	if emitted != 5 {
		t.Errorf("emitted %d, want 5", emitted)
	}
}

func TestEmulatorExhaustion(t *testing.T) {
	emu := NewEmulator("e", core.OutputSpec{Kind: kindRaw}, rawSamples(2))
	if emu.Remaining() != 2 {
		t.Errorf("Remaining = %d, want 2", emu.Remaining())
	}
	emit := func(core.Sample) {}
	more, err := emu.Step(emit)
	if err != nil || !more {
		t.Fatalf("first step: more=%v err=%v", more, err)
	}
	more, err = emu.Step(emit)
	if err != nil || more {
		t.Fatalf("second step: more=%v err=%v", more, err)
	}
	if emu.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", emu.Remaining())
	}
	more, err = emu.Step(emit)
	if err != nil || more {
		t.Fatalf("exhausted step: more=%v err=%v", more, err)
	}
}

func TestEmulatorEmpty(t *testing.T) {
	emu := NewEmulator("e", core.OutputSpec{Kind: kindRaw}, nil)
	more, err := emu.Step(func(core.Sample) { t.Error("empty emulator emitted") })
	if err != nil || more {
		t.Errorf("empty step: more=%v err=%v", more, err)
	}
}

func TestEmulatorProcessIsNoop(t *testing.T) {
	emu := NewEmulator("e", core.OutputSpec{Kind: kindRaw}, rawSamples(1))
	if err := emu.Process(0, core.Sample{}, nil); err != nil {
		t.Errorf("Process = %v", err)
	}
}
