// Package trace provides ground-truth movement for the experiment
// suite and the record/replay machinery of §3.2: movement generators
// (corridor walks, outdoor tracks, random waypoint), JSONL persistence,
// and the emulator component that "reads sensor data from a file and
// presents itself as a sensor".
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"perpos/internal/geo"
)

// Point is one ground-truth sample of a moving target.
type Point struct {
	// Time is the simulated wall-clock instant.
	Time time.Time `json:"time"`
	// Local is the position in building-local ENU metres.
	Local geo.ENU `json:"local"`
	// Global is the WGS84 position.
	Global geo.Point `json:"global"`
	// Speed is the instantaneous ground speed in m/s.
	Speed float64 `json:"speed"`
	// Heading is the course in degrees clockwise from north.
	Heading float64 `json:"heading"`
	// RoomID is the occupied room, or "" when outdoors / unresolved.
	RoomID string `json:"roomId,omitempty"`
	// Indoor reports whether the target is inside a building.
	Indoor bool `json:"indoor,omitempty"`
	// Mode labels the ground-truth transportation mode ("still",
	// "walk", "bike", "drive"), when the generator annotates one.
	Mode string `json:"mode,omitempty"`
}

// Trace is a time-ordered ground-truth path.
type Trace struct {
	// Name labels the trace in experiment output.
	Name string `json:"name"`
	// Origin is the WGS84 anchor of the local frame.
	Origin geo.Point `json:"origin"`
	// Points are the samples in time order.
	Points []Point `json:"points"`
}

// Len returns the number of points.
func (t *Trace) Len() int { return len(t.Points) }

// Duration returns the time covered by the trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Points) < 2 {
		return 0
	}
	return t.Points[len(t.Points)-1].Time.Sub(t.Points[0].Time)
}

// At returns the ground-truth position at time ts by linear
// interpolation between the surrounding points. Times outside the trace
// clamp to the ends.
func (t *Trace) At(ts time.Time) (Point, bool) {
	if len(t.Points) == 0 {
		return Point{}, false
	}
	if !ts.After(t.Points[0].Time) {
		return t.Points[0], true
	}
	last := t.Points[len(t.Points)-1]
	if !ts.Before(last.Time) {
		return last, true
	}
	// Binary search for the first point at or after ts.
	lo, hi := 0, len(t.Points)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.Points[mid].Time.Before(ts) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b := t.Points[lo]
	a := t.Points[lo-1]
	span := b.Time.Sub(a.Time)
	if span <= 0 {
		return b, true
	}
	f := float64(ts.Sub(a.Time)) / float64(span)
	p := a
	p.Time = ts
	p.Local = geo.ENU{
		East:  a.Local.East + f*(b.Local.East-a.Local.East),
		North: a.Local.North + f*(b.Local.North-a.Local.North),
	}
	p.Global = geo.Point{
		Lat: a.Global.Lat + f*(b.Global.Lat-a.Global.Lat),
		Lon: a.Global.Lon + f*(b.Global.Lon-a.Global.Lon),
	}
	p.Speed = a.Speed + f*(b.Speed-a.Speed)
	return p, true
}

// TotalDistance returns the summed local path length in metres.
func (t *Trace) TotalDistance() float64 {
	total := 0.0
	for i := 1; i < len(t.Points); i++ {
		total += t.Points[i].Local.Distance(t.Points[i-1].Local)
	}
	return total
}

// Write serialises the trace as one JSON header line followed by one
// JSON line per point.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	header := struct {
		Name   string    `json:"name"`
		Origin geo.Point `json:"origin"`
		Count  int       `json:"count"`
	}{t.Name, t.Origin, len(t.Points)}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("trace header: %w", err)
	}
	for i := range t.Points {
		if err := enc.Encode(&t.Points[i]); err != nil {
			return fmt.Errorf("trace point %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var header struct {
		Name   string    `json:"name"`
		Origin geo.Point `json:"origin"`
		Count  int       `json:"count"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("trace header: %w", err)
	}
	t := &Trace{
		Name:   header.Name,
		Origin: header.Origin,
		Points: make([]Point, 0, header.Count),
	}
	for {
		var p Point
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace point %d: %w", len(t.Points), err)
		}
		t.Points = append(t.Points, p)
	}
	return t, nil
}
