package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"perpos/internal/core"
)

// RecordedSample is the JSONL wire form of one recorded sensor sample.
type RecordedSample struct {
	Kind    core.Kind       `json:"kind"`
	Time    time.Time       `json:"time"`
	Payload json.RawMessage `json:"payload"`
}

// Recorder taps a graph and writes every sample emitted by one
// component to a JSONL stream — the capture half of the §3.2 workflow
// ("we used some previously recorded sensor data and fed it into our
// PerPos middleware"). Close it before reading the output.
type Recorder struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	err    error
	cancel func()
}

// NewRecorder starts recording samples emitted by componentID into w.
func NewRecorder(g *core.Graph, componentID string, w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	r := &Recorder{bw: bw, enc: json.NewEncoder(bw)}
	r.cancel = g.Tap(func(id string, s core.Sample) {
		if id != componentID || s.FromFeature != "" {
			return
		}
		payload, err := json.Marshal(s.Payload)
		if err != nil {
			r.fail(fmt.Errorf("record %s payload: %w", s.Kind, err))
			return
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.err != nil {
			return
		}
		if err := r.enc.Encode(RecordedSample{Kind: s.Kind, Time: s.Time, Payload: payload}); err != nil {
			r.err = fmt.Errorf("record %s: %w", s.Kind, err)
		}
	})
	return r
}

func (r *Recorder) fail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = err
	}
}

// Close stops recording and flushes the stream, returning the first
// error encountered while recording.
func (r *Recorder) Close() error {
	r.cancel()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Decoder converts a recorded JSON payload back into the in-memory
// payload type for one kind.
type Decoder func(json.RawMessage) (any, error)

// StringDecoder decodes payloads recorded from string-valued samples
// (e.g. raw NMEA sentences).
func StringDecoder(raw json.RawMessage) (any, error) {
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadRecorded parses a JSONL stream written by a Recorder, decoding
// payloads with the per-kind decoders. Kinds without a decoder keep
// their payload as json.RawMessage.
func ReadRecorded(r io.Reader, decoders map[core.Kind]Decoder) ([]core.Sample, error) {
	dec := json.NewDecoder(r)
	var out []core.Sample
	for {
		var rs RecordedSample
		if err := dec.Decode(&rs); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("recorded sample %d: %w", len(out), err)
		}
		var payload any = rs.Payload
		if d, ok := decoders[rs.Kind]; ok {
			v, err := d(rs.Payload)
			if err != nil {
				return nil, fmt.Errorf("decode %s sample %d: %w", rs.Kind, len(out), err)
			}
			payload = v
		}
		out = append(out, core.NewSample(rs.Kind, payload, rs.Time))
	}
}

// Emulator is a Processing Component that replays previously recorded
// sensor samples and "presents itself as a sensor" (§3.2): it is
// plugged into the processing graph in place of the real sensor, with
// the same output capabilities.
type Emulator struct {
	id      string
	out     core.OutputSpec
	samples []core.Sample
	next    int
	loop    bool
}

var _ core.Producer = (*Emulator)(nil)

// EmulatorOption configures an Emulator.
type EmulatorOption func(*Emulator)

// WithLoop makes the emulator restart from the beginning when the
// recording is exhausted.
func WithLoop() EmulatorOption {
	return func(e *Emulator) { e.loop = true }
}

// NewEmulator returns an emulator emitting the given samples one per
// engine tick, declaring the given output capabilities.
func NewEmulator(id string, out core.OutputSpec, samples []core.Sample, opts ...EmulatorOption) *Emulator {
	e := &Emulator{id: id, out: out, samples: samples}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// ID implements core.Component.
func (e *Emulator) ID() string { return e.id }

// Spec implements core.Component.
func (e *Emulator) Spec() core.Spec {
	return core.Spec{Name: "Emulator", Output: e.out}
}

// Process implements core.Component; emulators have no inputs.
func (e *Emulator) Process(int, core.Sample, core.Emit) error { return nil }

// Step implements core.Producer.
func (e *Emulator) Step(emit core.Emit) (bool, error) {
	if len(e.samples) == 0 {
		return false, nil
	}
	if e.next >= len(e.samples) {
		if !e.loop {
			return false, nil
		}
		e.next = 0
	}
	emit(e.samples[e.next])
	e.next++
	return e.loop || e.next < len(e.samples), nil
}

// Remaining returns how many samples are left in the current pass.
func (e *Emulator) Remaining() int {
	if e.next >= len(e.samples) {
		return 0
	}
	return len(e.samples) - e.next
}
