package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/geo"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

func TestCorridorWalkStaysInsideAndLegal(t *testing.T) {
	b := building.Evaluation()
	tr := CorridorWalk(b, 42, 5, 250*time.Millisecond)
	if tr.Len() < 50 {
		t.Fatalf("trace too short: %d points", tr.Len())
	}

	min, max, _ := b.Bounds(0)
	roomsVisited := map[string]bool{}
	for i, p := range tr.Points {
		if p.Local.East < min.East-0.01 || p.Local.East > max.East+0.01 ||
			p.Local.North < min.North-0.01 || p.Local.North > max.North+0.01 {
			t.Fatalf("point %d at %v escapes the building", i, p.Local)
		}
		if !p.Indoor || p.RoomID == "" {
			t.Fatalf("point %d at %v not annotated with a room", i, p.Local)
		}
		roomsVisited[p.RoomID] = true
		// The ground truth must never pass through a wall.
		if i > 0 && b.Crosses(tr.Points[i-1].Local, p.Local, 0) {
			t.Fatalf("step %d crosses a wall: %v -> %v", i, tr.Points[i-1].Local, p.Local)
		}
	}
	if len(roomsVisited) < 3 {
		t.Errorf("only rooms %v visited, expected at least corridor + 2 offices", roomsVisited)
	}
	if !roomsVisited["corridor"] {
		t.Error("walk never used the corridor")
	}
}

func TestCorridorWalkDeterministic(t *testing.T) {
	b := building.Evaluation()
	a := CorridorWalk(b, 7, 3, time.Second)
	c := CorridorWalk(b, 7, 3, time.Second)
	if a.Len() != c.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), c.Len())
	}
	for i := range a.Points {
		if a.Points[i].Local != c.Points[i].Local {
			t.Fatalf("point %d differs: %v vs %v", i, a.Points[i].Local, c.Points[i].Local)
		}
	}
	d := CorridorWalk(b, 8, 3, time.Second)
	same := a.Len() == d.Len()
	if same {
		same = false
		for i := range a.Points {
			if a.Points[i].Local != d.Points[i].Local {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical walks")
	}
}

func TestCorridorWalkSpeed(t *testing.T) {
	b := building.Evaluation()
	dt := 500 * time.Millisecond
	tr := CorridorWalk(b, 1, 4, dt)
	maxStep := WalkingSpeed*dt.Seconds() + 1e-9
	for i := 1; i < tr.Len(); i++ {
		step := tr.Points[i].Local.Distance(tr.Points[i-1].Local)
		if step > maxStep {
			t.Fatalf("step %d of %.3f m exceeds max %.3f m", i, step, maxStep)
		}
	}
}

func TestCommuteGoesOutdoorToIndoor(t *testing.T) {
	b := building.Evaluation()
	tr := Commute(b, 3, 150, 500*time.Millisecond)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if tr.Points[0].Indoor {
		t.Error("commute should start outdoors")
	}
	last := tr.Points[tr.Len()-1]
	if !last.Indoor || last.RoomID != "N3" {
		t.Errorf("commute should end in N3, got %q indoor=%v", last.RoomID, last.Indoor)
	}
	// It must pass through the corridor on the way.
	sawCorridor := false
	for _, p := range tr.Points {
		if p.RoomID == "corridor" {
			sawCorridor = true
			break
		}
	}
	if !sawCorridor {
		t.Error("commute never in corridor")
	}
}

func TestOutdoorTrackGeometry(t *testing.T) {
	tr := OutdoorTrack(testOrigin, 11, 5, 300, 1.5, time.Second)
	if tr.Len() < 100 {
		t.Fatalf("trace too short: %d", tr.Len())
	}
	for i, p := range tr.Points {
		if math.Abs(p.Local.East) > 301 || math.Abs(p.Local.North) > 301 {
			t.Fatalf("point %d outside radius: %v", i, p.Local)
		}
		if p.Indoor {
			t.Fatalf("outdoor track annotated indoor at %d", i)
		}
	}
	// Global coordinates track the local frame.
	proj := geo.NewProjection(testOrigin)
	for i := 0; i < tr.Len(); i += 50 {
		p := tr.Points[i]
		back := proj.ToLocal(p.Global)
		if math.Abs(back.East-p.Local.East) > 0.05 || math.Abs(back.North-p.Local.North) > 0.05 {
			t.Fatalf("point %d global/local mismatch: %v vs %v", i, back, p.Local)
		}
	}
}

func TestPauseAndGoHasStationaryPeriods(t *testing.T) {
	tr := PauseAndGo(testOrigin, 5, 3, 200, 1.4, 30*time.Second, time.Second)
	stationary := 0
	for _, p := range tr.Points {
		if p.Speed == 0 {
			stationary++
		}
	}
	if stationary < 60 { // 3 pauses x 30 s plus start
		t.Errorf("stationary points = %d, want >= 60", stationary)
	}
}

func TestRandomWaypointBounds(t *testing.T) {
	min := geo.ENU{East: -50, North: -20}
	max := geo.ENU{East: 50, North: 20}
	tr := RandomWaypoint(testOrigin, min, max, 9, 10, 0.5, 2.0, time.Second)
	for i, p := range tr.Points {
		if p.Local.East < min.East-1e-9 || p.Local.East > max.East+1e-9 ||
			p.Local.North < min.North-1e-9 || p.Local.North > max.North+1e-9 {
			t.Fatalf("point %d out of bounds: %v", i, p.Local)
		}
	}
}

func TestTraceAtInterpolates(t *testing.T) {
	start := traceStart
	tr := &Trace{
		Origin: testOrigin,
		Points: []Point{
			{Time: start, Local: geo.ENU{East: 0}, Speed: 1},
			{Time: start.Add(10 * time.Second), Local: geo.ENU{East: 10}, Speed: 1},
		},
	}
	p, ok := tr.At(start.Add(5 * time.Second))
	if !ok {
		t.Fatal("At failed")
	}
	if math.Abs(p.Local.East-5) > 1e-9 {
		t.Errorf("interpolated East = %v, want 5", p.Local.East)
	}

	// Clamping at the ends.
	p, _ = tr.At(start.Add(-time.Hour))
	if p.Local.East != 0 {
		t.Errorf("before-start = %v, want first point", p.Local)
	}
	p, _ = tr.At(start.Add(time.Hour))
	if p.Local.East != 10 {
		t.Errorf("after-end = %v, want last point", p.Local)
	}

	empty := &Trace{}
	if _, ok := empty.At(start); ok {
		t.Error("At on empty trace should fail")
	}
}

func TestTraceDurationAndDistance(t *testing.T) {
	b := building.Evaluation()
	tr := CorridorWalk(b, 2, 3, time.Second)
	if tr.Duration() <= 0 {
		t.Error("Duration should be positive")
	}
	if tr.TotalDistance() <= 0 {
		t.Error("TotalDistance should be positive")
	}
	short := &Trace{Points: []Point{{}}}
	if short.Duration() != 0 {
		t.Error("single-point duration should be 0")
	}
}

func TestTraceWriteReadRoundTrip(t *testing.T) {
	b := building.Evaluation()
	tr := CorridorWalk(b, 21, 2, time.Second)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Len() != tr.Len() {
		t.Fatalf("round trip: name %q len %d, want %q len %d", got.Name, got.Len(), tr.Name, tr.Len())
	}
	for i := range tr.Points {
		a, b := tr.Points[i], got.Points[i]
		if !a.Time.Equal(b.Time) || a.Local != b.Local || a.RoomID != b.RoomID {
			t.Fatalf("point %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Error("Read should fail on garbage")
	}
	if _, err := Read(bytes.NewBufferString("{\"name\":\"x\"}\ngarbage")); err == nil {
		t.Error("Read should fail on garbage point")
	}
}

func TestMultimodalLegs(t *testing.T) {
	tr := Multimodal(testOrigin, 7, time.Second)
	if tr.Len() < 500 {
		t.Fatalf("trace too short: %d", tr.Len())
	}
	modes := map[string]int{}
	transitions := 0
	last := ""
	for _, p := range tr.Points {
		if p.Mode == "" {
			t.Fatal("unlabelled point")
		}
		modes[p.Mode]++
		if last != "" && p.Mode != last {
			transitions++
		}
		last = p.Mode
	}
	for _, want := range []string{"still", "walk", "bike", "drive"} {
		if modes[want] == 0 {
			t.Errorf("no %q points: %v", want, modes)
		}
	}
	if transitions != 5 {
		t.Errorf("transitions = %d, want 5", transitions)
	}
	// The drive leg contains traffic stops: zero-speed points labelled
	// "drive".
	stopped := 0
	for _, p := range tr.Points {
		if p.Mode == "drive" && p.Speed == 0 {
			stopped++
		}
	}
	if stopped < 20 {
		t.Errorf("drive leg has %d stopped points, want >= 20 (traffic lights)", stopped)
	}
	// Deterministic per seed.
	tr2 := Multimodal(testOrigin, 7, time.Second)
	if tr2.Len() != tr.Len() || tr2.Points[tr.Len()-1].Local != tr.Points[tr.Len()-1].Local {
		t.Error("Multimodal not deterministic")
	}
}
