package trace

import (
	"math"
	"math/rand"
	"time"

	"perpos/internal/building"
	"perpos/internal/geo"
)

// WalkingSpeed is the default pedestrian speed in m/s.
const WalkingSpeed = 1.2

// traceStart is the common simulated start instant for generated traces.
var traceStart = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// CorridorWalk generates an indoor walk through the evaluation building:
// the target starts in the corridor and visits `visits` randomly chosen
// offices, routing through doors and along the corridor (never through
// walls), dwelling briefly in each office. Points are annotated with the
// occupied room. This is the ground truth for the Fig. 6 particle-filter
// experiment.
func CorridorWalk(b *building.Building, seed int64, visits int, dt time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	floor, ok := b.Floor(0)
	if !ok || len(floor.Rooms) == 0 {
		return &Trace{Name: "corridor-walk", Origin: b.Origin()}
	}

	corridor, _, hasCorridor := b.RoomByID("corridor")
	corridorY := 6.0
	if hasCorridor {
		corridorY = corridor.Center().North
	}

	var offices []building.Room
	for _, r := range floor.Rooms {
		if r.ID != "corridor" {
			offices = append(offices, r)
		}
	}

	w := newWalker(b, traceStart, dt)
	start := geo.ENU{East: 2, North: corridorY}
	w.teleport(start)

	current := start
	for v := 0; v < visits; v++ {
		target := offices[rng.Intn(len(offices))]
		// Interior point of the target office, away from the walls.
		inset := geo.ENU{
			East:  target.Min.East + 1 + rng.Float64()*(target.Width()-2),
			North: target.Min.North + 1 + rng.Float64()*(target.Depth()-2),
		}
		waypoints := []geo.ENU{
			{East: current.East, North: corridorY},
			{East: target.Door.East, North: corridorY},
			target.Door,
			inset,
		}
		w.walk(waypoints, WalkingSpeed)
		w.dwell(time.Duration(2+rng.Intn(4)) * time.Second)
		// Back to the door for the next leg.
		w.walk([]geo.ENU{target.Door}, WalkingSpeed)
		current = target.Door
	}
	return &Trace{Name: "corridor-walk", Origin: b.Origin(), Points: w.points}
}

// Commute generates the outdoor->indoor handover trace for the Room
// Number application (Fig. 1): approach the building entrance from
// `approach` metres west, walk in through the entrance, then east along
// the corridor and into an office.
func Commute(b *building.Building, seed int64, approach float64, dt time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	corridor, _, _ := b.RoomByID("corridor")
	corridorY := corridor.Center().North

	w := newWalker(b, traceStart, dt)
	startE := -approach
	w.teleport(geo.ENU{East: startE, North: corridorY + 20*(rng.Float64()-0.5)})
	// Outdoor approach with a slight dogleg.
	w.walk([]geo.ENU{
		{East: startE / 2, North: corridorY + 5},
		{East: -2, North: corridorY},
		{East: 1, North: corridorY}, // through the entrance door
	}, WalkingSpeed)
	// Along the corridor and into office N3.
	room, _, ok := b.RoomByID("N3")
	if ok {
		w.walk([]geo.ENU{
			{East: room.Door.East, North: corridorY},
			room.Door,
			room.Center(),
		}, WalkingSpeed)
		w.dwell(5 * time.Second)
	}
	return &Trace{Name: "commute", Origin: b.Origin(), Points: w.points}
}

// OutdoorTrack generates an outdoor waypoint track around the origin:
// `waypoints` legs within a box of the given radius (metres), at the
// given speed. Used by the EnTracked energy experiments.
func OutdoorTrack(origin geo.Point, seed int64, waypoints int, radius, speed float64, dt time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	proj := geo.NewProjection(origin)
	w := &walker{proj: proj, now: traceStart, dt: dt}
	start := geo.ENU{East: 0, North: 0}
	w.teleport(start)
	for i := 0; i < waypoints; i++ {
		next := geo.ENU{
			East:  (rng.Float64()*2 - 1) * radius,
			North: (rng.Float64()*2 - 1) * radius,
		}
		w.walk([]geo.ENU{next}, speed)
	}
	tr := &Trace{Name: "outdoor-track", Origin: origin, Points: w.points}
	return tr
}

// PauseAndGo generates an outdoor trace alternating movement legs and
// stationary periods — the workload where EnTracked's motion model
// saves the most energy (the device sleeps while the target rests).
func PauseAndGo(origin geo.Point, seed int64, legs int, radius, speed float64, pause time.Duration, dt time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	proj := geo.NewProjection(origin)
	w := &walker{proj: proj, now: traceStart, dt: dt}
	w.teleport(geo.ENU{})
	for i := 0; i < legs; i++ {
		next := geo.ENU{
			East:  (rng.Float64()*2 - 1) * radius,
			North: (rng.Float64()*2 - 1) * radius,
		}
		w.walk([]geo.ENU{next}, speed)
		w.dwell(pause)
	}
	return &Trace{Name: "pause-and-go", Origin: origin, Points: w.points}
}

// RandomWaypoint generates the classic random-waypoint mobility model
// within the given local bounds.
func RandomWaypoint(origin geo.Point, min, max geo.ENU, seed int64, legs int, vmin, vmax float64, dt time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	proj := geo.NewProjection(origin)
	w := &walker{proj: proj, now: traceStart, dt: dt}
	w.teleport(geo.ENU{
		East:  min.East + rng.Float64()*(max.East-min.East),
		North: min.North + rng.Float64()*(max.North-min.North),
	})
	for i := 0; i < legs; i++ {
		next := geo.ENU{
			East:  min.East + rng.Float64()*(max.East-min.East),
			North: min.North + rng.Float64()*(max.North-min.North),
		}
		speed := vmin + rng.Float64()*(vmax-vmin)
		w.walk([]geo.ENU{next}, speed)
	}
	return &Trace{Name: "random-waypoint", Origin: origin, Points: w.points}
}

// walker accumulates trace points while moving along waypoint legs.
type walker struct {
	b    *building.Building // optional: annotates rooms when set
	proj *geo.Projection
	now  time.Time
	dt   time.Duration
	pos  geo.ENU
	mode string // optional ground-truth transportation mode label

	points []Point
}

func newWalker(b *building.Building, start time.Time, dt time.Duration) *walker {
	return &walker{b: b, proj: b.Projection(), now: start, dt: dt}
}

// teleport places the walker without emitting movement.
func (w *walker) teleport(p geo.ENU) {
	w.pos = p
	w.emit(0, 0)
}

// walk moves through the waypoints at the given speed, emitting one
// point every dt.
func (w *walker) walk(waypoints []geo.ENU, speed float64) {
	step := speed * w.dt.Seconds()
	for _, target := range waypoints {
		for {
			d := w.pos.Distance(target)
			if d < 1e-9 {
				break
			}
			heading := headingDeg(w.pos, target)
			if d <= step {
				w.pos = target
				w.advance(speed, heading)
				break
			}
			f := step / d
			w.pos = geo.ENU{
				East:  w.pos.East + f*(target.East-w.pos.East),
				North: w.pos.North + f*(target.North-w.pos.North),
			}
			w.advance(speed, heading)
		}
	}
}

// dwell keeps the walker stationary for the given duration.
func (w *walker) dwell(d time.Duration) {
	steps := int(d / w.dt)
	for i := 0; i < steps; i++ {
		w.advance(0, 0)
	}
}

func (w *walker) advance(speed, heading float64) {
	w.now = w.now.Add(w.dt)
	w.emit(speed, heading)
}

func (w *walker) emit(speed, heading float64) {
	p := Point{
		Time:    w.now,
		Local:   w.pos,
		Global:  w.proj.ToGlobal(w.pos),
		Speed:   speed,
		Heading: heading,
		Mode:    w.mode,
	}
	if w.b != nil {
		if room, ok := w.b.RoomAt(w.pos, 0); ok {
			p.RoomID = room.ID
			p.Indoor = true
		}
	}
	w.points = append(w.points, p)
}

// Multimodal generates an outdoor trip that changes transportation
// mode: still -> walk -> bike -> drive -> walk -> still, each leg with
// speed jitter. Points carry ground-truth Mode labels; the
// transportation-mode pipeline (internal/transport) is evaluated
// against them.
func Multimodal(origin geo.Point, seed int64, dt time.Duration) *Trace {
	rng := rand.New(rand.NewSource(seed))
	proj := geo.NewProjection(origin)
	w := &walker{proj: proj, now: traceStart, dt: dt}
	w.mode = "still"
	w.teleport(geo.ENU{})

	type leg struct {
		mode     string
		speed    float64 // m/s
		distance float64 // metres; 0 means dwell
		dwell    time.Duration
		// stopEvery inserts a short halt (a traffic light) after each
		// stretch of this many metres, keeping the mode label — the
		// within-mode speed flicker that motivates HMM post-processing
		// in [4].
		stopEvery float64
	}
	legs := []leg{
		{mode: "still", dwell: 90 * time.Second},
		{mode: "walk", speed: 1.4, distance: 400},
		{mode: "bike", speed: 4.5, distance: 1500},
		{mode: "drive", speed: 13, distance: 4000, stopEvery: 700},
		{mode: "walk", speed: 1.3, distance: 300},
		{mode: "still", dwell: 60 * time.Second},
	}
	heading := rng.Float64() * 360
	for _, l := range legs {
		w.mode = l.mode
		if l.distance == 0 {
			w.dwell(l.dwell)
			continue
		}
		// Split the leg into hops with gentle turns; halt at "traffic
		// lights" when the leg defines them.
		hopLen := l.distance / 3
		if l.stopEvery > 0 {
			hopLen = l.stopEvery
		}
		remaining := l.distance
		for remaining > 0 {
			hop := math.Min(remaining, hopLen)
			heading += (rng.Float64() - 0.5) * 60
			rad := heading * math.Pi / 180
			target := geo.ENU{
				East:  w.pos.East + hop*math.Sin(rad),
				North: w.pos.North + hop*math.Cos(rad),
			}
			speed := l.speed * (1 + 0.1*(rng.Float64()-0.5))
			w.walk([]geo.ENU{target}, speed)
			remaining -= hop
			if l.stopEvery > 0 && remaining > 0 {
				w.dwell(time.Duration(20+rng.Intn(25)) * time.Second)
			}
		}
	}
	return &Trace{Name: "multimodal", Origin: origin, Points: w.points}
}

// headingDeg returns the compass heading from a to b in degrees.
func headingDeg(a, b geo.ENU) float64 {
	h := math.Atan2(b.East-a.East, b.North-a.North) * 180 / math.Pi
	if h < 0 {
		h += 360
	}
	return h
}
