package trace

import (
	"encoding/json"

	"perpos/internal/core"
)

var _ core.StateAccess = (*Emulator)(nil)

type emulatorState struct {
	Next int `json:"next"`
}

// MarshalState implements core.StateAccess: the replay position, so a
// restored emulator continues mid-recording.
func (e *Emulator) MarshalState() ([]byte, error) {
	return json.Marshal(emulatorState{Next: e.next})
}

// UnmarshalState implements core.StateAccess.
func (e *Emulator) UnmarshalState(data []byte) error {
	var st emulatorState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	e.next = st.Next
	return nil
}
