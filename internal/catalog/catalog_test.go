package catalog

import (
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/transport"
	"perpos/internal/wifi"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

func TestStandardRegistersBaseTypes(t *testing.T) {
	r, err := Standard(Deps{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Parser", "Interpreter", "Segmenter", "ModeClassifier", "HMMSmoother"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("missing registration %q", name)
		}
	}
	// Dependent types absent without deps.
	if _, ok := r.Lookup("Resolver"); ok {
		t.Error("Resolver registered without a building")
	}
	if _, ok := r.Lookup("WiFiPositioning"); ok {
		t.Error("WiFiPositioning registered without a database")
	}
}

func TestStandardWithDeps(t *testing.T) {
	b := building.Evaluation()
	n := wifi.DefaultDeployment(b)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	r, err := Standard(Deps{Building: b, Database: db})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Resolver", "ParticleFilter", "WiFiPositioning"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("missing registration %q", name)
		}
	}
}

// TestAssembleGPSPipeline: sensor + app, catalog fills the middle.
func TestAssembleGPSPipeline(t *testing.T) {
	r, err := Standard(Deps{})
	if err != nil {
		t.Fatal(err)
	}
	g := core.New()
	tr := trace.OutdoorTrack(testOrigin, 2, 2, 100, 1.4, time.Second)
	if _, err := g.Add(gps.NewReceiver("gps", tr, gps.Config{Seed: 3, ColdStart: time.Second})); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	created, err := r.Resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 2 {
		t.Fatalf("created %v, want Parser + Interpreter", created)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("assembled pipeline delivered nothing")
	}
}

// TestAssembleTransportPipeline: a mode-consuming app pulls the whole
// seven-component reasoning chain out of the catalog.
func TestAssembleTransportPipeline(t *testing.T) {
	r, err := Standard(Deps{})
	if err != nil {
		t.Fatal(err)
	}
	g := core.New()
	tr := trace.Multimodal(testOrigin, 4, time.Second)
	if _, err := g.Add(gps.NewReceiver("gps", tr, gps.Config{Seed: 5, ColdStart: time.Second})); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{transport.KindMode})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	created, err := r.Resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	// HMM (or classifier) <- features <- segmenter <- interpreter <-
	// parser: 5 or 6 instantiations depending on which mode producer is
	// chosen first.
	if len(created) < 5 {
		t.Fatalf("created %v", created)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("assembled transport pipeline delivered nothing")
	}
	if _, ok := sink.Received()[0].Payload.(transport.ModeEstimate); !ok {
		t.Errorf("payload = %T", sink.Received()[0].Payload)
	}
}

// TestFusionBlueprint: the shared Fig. 2 blueprint instantiates into
// independent per-target pipelines over shared immutable deps.
func TestFusionBlueprint(t *testing.T) {
	b := building.Evaluation()
	n := wifi.DefaultDeployment(b)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	bp, err := FusionBlueprint(Deps{Building: b, Database: db},
		filter.Config{Particles: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Placeholders(); len(got) != 3 {
		t.Fatalf("Placeholders = %v, want [gps wifi app]", got)
	}

	for i := int64(0); i < 2; i++ {
		tr := trace.CorridorWalk(b, 10+i, 3, time.Second)
		sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
		g, err := bp.Instantiate(
			core.WithComponentOverride("gps", func(id string) core.Component {
				return gps.NewReceiver(id, tr, gps.Config{Seed: 20 + i, ColdStart: time.Second})
			}),
			core.WithComponentOverride("wifi", func(id string) core.Component {
				return wifi.NewSensor(id, n, tr, 2*time.Second, 30+i)
			}),
			core.WithComponentOverride("app", func(id string) core.Component { return sink }),
		)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		parserNode, _ := g.Node("parser")
		if !parserNode.HasCapability(gps.FeatureHDOP) {
			t.Fatalf("instance %d: parser missing HDOP feature", i)
		}
		if _, err := g.Run(0); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if sink.Len() == 0 {
			t.Errorf("instance %d delivered nothing", i)
		}
	}
}

// TestGPSBlueprint: the lean GPS chain blueprint drives a position
// stream per instance.
func TestGPSBlueprint(t *testing.T) {
	bp, err := GPSBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.OutdoorTrack(testOrigin, 2, 2, 100, 1.4, time.Second)
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	g, err := bp.Instantiate(
		core.WithComponentOverride("gps", func(id string) core.Component {
			return gps.NewReceiver(id, tr, gps.Config{Seed: 3, ColdStart: time.Second})
		}),
		core.WithComponentOverride("app", func(id string) core.Component { return sink }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("GPS blueprint instance delivered nothing")
	}
}

// TestAssembleRoomPipeline: room-consuming app + wifi sensor: the
// catalog supplies the positioning engine and resolver.
func TestAssembleRoomPipeline(t *testing.T) {
	b := building.Evaluation()
	n := wifi.DefaultDeployment(b)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 6})
	r, err := Standard(Deps{Building: b, Database: db})
	if err != nil {
		t.Fatal(err)
	}

	g := core.New()
	tr := trace.CorridorWalk(b, 7, 3, time.Second)
	if _, err := g.Add(wifi.NewSensor("wifi", n, tr, 2*time.Second, 8)); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{positioning.KindRoom})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(g); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("assembled room pipeline delivered nothing")
	}
}
