// Package catalog preloads a registry with the repository's standard
// Processing Component types, so whole pipelines can be assembled
// declaratively (§2.1) — the role the OSGi bundle repository played for
// the original middleware.
//
// Registration order matters: the resolver instantiates the first
// registered type whose output satisfies an open requirement, so more
// specific providers (the WiFi engine, which needs a surveyed database)
// are registered after the generic GPS chain.
package catalog

import (
	"fmt"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/gps"
	"perpos/internal/registry"
	"perpos/internal/transport"
	"perpos/internal/wifi"
)

// Deps carries the shared state some component types need.
type Deps struct {
	// Building enables the Resolver, ParticleFilter and WiFi engine
	// registrations.
	Building *building.Building
	// Database enables the WiFi positioning engine registration.
	Database *wifi.Database
	// SegmentWindow configures Segmenter instances (default 30 s).
	SegmentWindow time.Duration
}

// Standard returns a registry with the standard component types. The
// GPS chain (Parser, Interpreter) is always available; building- and
// database-dependent types are added when Deps provides their inputs.
func Standard(deps Deps) (*registry.Registry, error) {
	r := &registry.Registry{}
	regs := []registry.Registration{
		{
			Name: "Parser",
			Spec: gps.NewParser("proto").Spec(),
			New:  func(id string) core.Component { return gps.NewParser(id) },
		},
		{
			Name: "Interpreter",
			Spec: gps.NewInterpreter("proto", 0).Spec(),
			New:  func(id string) core.Component { return gps.NewInterpreter(id, 0) },
		},
		{
			Name: "Segmenter",
			Spec: transport.NewSegmenter("proto", deps.SegmentWindow).Spec(),
			New: func(id string) core.Component {
				return transport.NewSegmenter(id, deps.SegmentWindow)
			},
		},
		{
			Name: "FeatureExtractor",
			Spec: transport.NewFeatureExtractor("proto").Spec(),
			New:  func(id string) core.Component { return transport.NewFeatureExtractor(id) },
		},
		{
			Name: "ModeClassifier",
			Spec: transport.NewClassifier("proto").Spec(),
			New:  func(id string) core.Component { return transport.NewClassifier(id) },
		},
		{
			Name: "HMMSmoother",
			Spec: transport.NewHMMSmoother("proto", 0).Spec(),
			New:  func(id string) core.Component { return transport.NewHMMSmoother(id, 0) },
		},
	}
	if deps.Building != nil {
		b := deps.Building
		// WiFiPositioning registers before the Resolver and the
		// ParticleFilter: the resolver prefers earlier registrations, so
		// position requirements resolve to the concrete technology chain
		// before the generic fusion component.
		if deps.Database != nil {
			db := deps.Database
			regs = append(regs, registry.Registration{
				Name: "WiFiPositioning",
				Spec: wifi.NewEngine("proto", db, b, 0).Spec(),
				New: func(id string) core.Component {
					return wifi.NewEngine(id, db, b, 0)
				},
			})
		}
		regs = append(regs,
			registry.Registration{
				Name: "Resolver",
				Spec: wifi.NewResolver("proto", b).Spec(),
				New:  func(id string) core.Component { return wifi.NewResolver(id, b) },
			},
			registry.Registration{
				Name: "ParticleFilter",
				Spec: filter.NewParticleFilter("proto", b, filter.Config{}).Spec(),
				New: func(id string) core.Component {
					return filter.NewParticleFilter(id, b, filter.Config{})
				},
			},
		)
	}
	for _, reg := range regs {
		if err := r.Register(reg); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	return r, nil
}
