// Package catalog preloads a registry with the repository's standard
// Processing Component types, so whole pipelines can be assembled
// declaratively (§2.1) — the role the OSGi bundle repository played for
// the original middleware.
//
// Registration order matters: the resolver instantiates the first
// registered type whose output satisfies an open requirement, so more
// specific providers (the WiFi engine, which needs a surveyed database)
// are registered after the generic GPS chain.
package catalog

import (
	"fmt"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/energy"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/health"
	"perpos/internal/registry"
	"perpos/internal/rules"
	"perpos/internal/transport"
	"perpos/internal/wifi"
)

// Deps carries the shared state some component types need.
type Deps struct {
	// Building enables the Resolver, ParticleFilter and WiFi engine
	// registrations.
	Building *building.Building
	// Database enables the WiFi positioning engine registration.
	Database *wifi.Database
	// SegmentWindow configures Segmenter instances (default 30 s).
	SegmentWindow time.Duration
}

// Standard returns a registry with the standard component types. The
// GPS chain (Parser, Interpreter) is always available; building- and
// database-dependent types are added when Deps provides their inputs.
func Standard(deps Deps) (*registry.Registry, error) {
	r := &registry.Registry{}
	regs := []registry.Registration{
		{
			Name: "Parser",
			Spec: gps.NewParser("proto").Spec(),
			New:  func(id string) core.Component { return gps.NewParser(id) },
		},
		{
			Name: "Interpreter",
			Spec: gps.NewInterpreter("proto", 0).Spec(),
			New:  func(id string) core.Component { return gps.NewInterpreter(id, 0) },
		},
		{
			Name: "Segmenter",
			Spec: transport.NewSegmenter("proto", deps.SegmentWindow).Spec(),
			New: func(id string) core.Component {
				return transport.NewSegmenter(id, deps.SegmentWindow)
			},
		},
		{
			Name: "FeatureExtractor",
			Spec: transport.NewFeatureExtractor("proto").Spec(),
			New:  func(id string) core.Component { return transport.NewFeatureExtractor(id) },
		},
		{
			Name: "ModeClassifier",
			Spec: transport.NewClassifier("proto").Spec(),
			New:  func(id string) core.Component { return transport.NewClassifier(id) },
		},
		{
			Name: "HMMSmoother",
			Spec: transport.NewHMMSmoother("proto", 0).Spec(),
			New:  func(id string) core.Component { return transport.NewHMMSmoother(id, 0) },
		},
		// Registered after the Parser so an open sentence requirement
		// resolves to the parser, never to a pass-through filter. The
		// rules engine (and RulesDef configs) instantiate this type when
		// the AccuracyFilterRule engages.
		{
			Name: "HDOPFilter",
			Spec: gps.NewHDOPFilter("proto", DefaultMaxHDOP).Spec(),
			New:  func(id string) core.Component { return gps.NewHDOPFilter(id, DefaultMaxHDOP) },
		},
	}
	if deps.Building != nil {
		b := deps.Building
		// WiFiPositioning registers before the Resolver and the
		// ParticleFilter: the resolver prefers earlier registrations, so
		// position requirements resolve to the concrete technology chain
		// before the generic fusion component.
		if deps.Database != nil {
			db := deps.Database
			regs = append(regs, registry.Registration{
				Name: "WiFiPositioning",
				Spec: wifi.NewEngine("proto", db, b, 0).Spec(),
				New: func(id string) core.Component {
					return wifi.NewEngine(id, db, b, 0)
				},
			})
		}
		regs = append(regs,
			registry.Registration{
				Name: "Resolver",
				Spec: wifi.NewResolver("proto", b).Spec(),
				New:  func(id string) core.Component { return wifi.NewResolver(id, b) },
			},
			registry.Registration{
				Name: "ParticleFilter",
				Spec: filter.NewParticleFilter("proto", b, filter.Config{}).Spec(),
				New: func(id string) core.Component {
					return filter.NewParticleFilter(id, b, filter.Config{})
				},
			},
		)
	}
	for _, reg := range regs {
		if err := r.Register(reg); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	return r, nil
}

// GPSBlueprint returns the blueprint of the plain GPS pipeline (the
// outdoor half of Fig. 1): gps -> Parser -> Interpreter -> app. The
// "gps" source and "app" sink are placeholders bound per instantiation
// (core.WithComponentOverride) — one tracked target, one instance.
func GPSBlueprint() (*core.Blueprint, error) {
	bp := core.NewBlueprint()
	steps := []struct {
		id      string
		factory core.ComponentFactory
	}{
		{"gps", nil},
		{"parser", func(id string) core.Component { return gps.NewParser(id) }},
		{"interpreter", func(id string) core.Component { return gps.NewInterpreter(id, 0) }},
		{"app", nil},
	}
	for _, s := range steps {
		if err := bp.AddComponent(s.id, s.factory); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	for i := 1; i < len(steps); i++ {
		if err := bp.Connect(steps[i-1].id, steps[i].id, 0); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	return bp, nil
}

// KalmanBlueprint returns the GPS tracking pipeline with a Kalman
// smoother before the sink: gps → parser → interpreter → kalman → app.
// It is the cluster tier's reference workload: the filter's state is
// small, serializable and bit-exactly comparable, so a handed-off or
// failed-over session can prove its estimate survived the move intact.
// proj (optional) projects global-only fixes into a local metric frame;
// processNoise <= 0 uses the pedestrian default.
func KalmanBlueprint(proj *geo.Projection, processNoise float64) (*core.Blueprint, error) {
	bp := core.NewBlueprint()
	steps := []struct {
		id      string
		factory core.ComponentFactory
	}{
		{"gps", nil},
		{"parser", func(id string) core.Component { return gps.NewParser(id) }},
		{"interpreter", func(id string) core.Component { return gps.NewInterpreter(id, 0) }},
		{"kalman", func(id string) core.Component { return filter.NewKalmanFilter(id, processNoise, proj) }},
		{"app", nil},
	}
	for _, s := range steps {
		if err := bp.AddComponent(s.id, s.factory); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	for i := 1; i < len(steps); i++ {
		if err := bp.Connect(steps[i-1].id, steps[i].id, 0); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	return bp, nil
}

// FusionBlueprint returns the blueprint of the Fig. 2 fusion pipeline:
// the GPS chain and the WiFi positioning chain feeding a particle
// filter whose output reaches the application. The building model and
// fingerprint database in deps are shared, immutable, across every
// instance; the "gps" and "wifi" sensors and the "app" sink are
// placeholders bound per instantiation. The parser carries the HDOP
// Component Feature, as in the paper's §3.2 setup.
func FusionBlueprint(deps Deps, fcfg filter.Config) (*core.Blueprint, error) {
	if deps.Building == nil || deps.Database == nil {
		return nil, fmt.Errorf("catalog: fusion blueprint needs a building model and a WiFi database")
	}
	b, db := deps.Building, deps.Database
	bp := core.NewBlueprint()
	comps := []struct {
		id      string
		factory core.ComponentFactory
	}{
		{"gps", nil},
		{"parser", func(id string) core.Component { return gps.NewParser(id) }},
		{"interpreter", func(id string) core.Component { return gps.NewInterpreter(id, 0) }},
		{"wifi", nil},
		{"wifi-positioning", func(id string) core.Component { return wifi.NewEngine(id, db, b, 3) }},
		{"particle-filter", func(id string) core.Component { return filter.NewParticleFilter(id, b, fcfg) }},
		{"app", nil},
	}
	for _, c := range comps {
		if err := bp.AddComponent(c.id, c.factory); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	if err := bp.AttachFeature("parser", func() core.Feature { return gps.NewHDOPFeature() }); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	for _, e := range []core.Edge{
		{From: "gps", To: "parser", Port: 0},
		{From: "parser", To: "interpreter", Port: 0},
		{From: "interpreter", To: "particle-filter", Port: 0},
		{From: "wifi", To: "wifi-positioning", Port: 0},
		{From: "wifi-positioning", To: "particle-filter", Port: 1},
		{From: "particle-filter", To: "app", Port: 0},
	} {
		if err := bp.Connect(e.From, e.To, e.Port); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	return bp, nil
}

// FusionUpgradeSet returns the two-revision blueprint set behind the
// repository's rolling-upgrade demo: revision 1 is the plain GPS chain
// (gps -> parser -> interpreter -> app), revision 2 the Fig. 2 fusion
// pipeline that splices the WiFi branch and the particle filter between
// the interpreter and the app. The GPS chain slots share one factory
// per slot AND carry identity tags across both revisions, so a
// migration sees gps/parser/interpreter/app as Unchanged — their live
// instances (and component state) survive the upgrade; only the wifi
// branch and the filter are instantiated, and the reverse migration
// tears exactly those down again.
func FusionUpgradeSet(deps Deps, fcfg filter.Config) (*core.BlueprintSet, error) {
	if deps.Building == nil || deps.Database == nil {
		return nil, fmt.Errorf("catalog: fusion upgrade set needs a building model and a WiFi database")
	}
	b, db := deps.Building, deps.Database

	// One factory value per shared slot: identity-tagged anyway, but
	// sharing keeps the pointer-compare fallback equivalent.
	parserF := func(id string) core.Component { return gps.NewParser(id) }
	interpF := func(id string) core.Component { return gps.NewInterpreter(id, 0) }
	hdopF := func() core.Feature { return gps.NewHDOPFeature() }

	type slot struct {
		id      string
		tag     string
		factory core.ComponentFactory
	}
	build := func(fusion bool) (*core.Blueprint, error) {
		bp := core.NewBlueprint()
		comps := []slot{
			{"gps", "sensor.gps", nil},
			{"parser", "gps.Parser", parserF},
			{"interpreter", "gps.Interpreter", interpF},
			{"app", "sink.app", nil},
		}
		edges := []core.Edge{
			{From: "gps", To: "parser", Port: 0},
			{From: "parser", To: "interpreter", Port: 0},
		}
		if fusion {
			comps = append(comps,
				slot{"wifi", "sensor.wifi", nil},
				slot{"wifi-positioning", "wifi.Engine", func(id string) core.Component {
					return wifi.NewEngine(id, db, b, 3)
				}},
				slot{"particle-filter", "filter.Particle", func(id string) core.Component {
					return filter.NewParticleFilter(id, b, fcfg)
				}},
			)
			edges = append(edges,
				core.Edge{From: "interpreter", To: "particle-filter", Port: 0},
				core.Edge{From: "wifi", To: "wifi-positioning", Port: 0},
				core.Edge{From: "wifi-positioning", To: "particle-filter", Port: 1},
				core.Edge{From: "particle-filter", To: "app", Port: 0},
			)
		} else {
			edges = append(edges, core.Edge{From: "interpreter", To: "app", Port: 0})
		}
		for _, c := range comps {
			if err := bp.AddComponent(c.id, c.factory); err != nil {
				return nil, err
			}
			if err := bp.TagComponent(c.id, c.tag); err != nil {
				return nil, err
			}
		}
		// Same tagged HDOP feature in both revisions: the parser's
		// Component Feature is part of the chain, not of the upgrade.
		if err := bp.AttachTaggedFeature("parser", "gps.HDOP", hdopF); err != nil {
			return nil, err
		}
		for _, e := range edges {
			if err := bp.Connect(e.From, e.To, e.Port); err != nil {
				return nil, err
			}
		}
		return bp, nil
	}

	set := core.NewBlueprintSet("fusion-upgrade")
	for _, fusion := range []bool{false, true} {
		bp, err := build(fusion)
		if err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
		if _, err := set.Add(bp); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	return set, nil
}

// FusionDegradation returns the graceful-degradation rules matching
// FusionBlueprint: when either sensor branch trips its breaker, the
// fused output edge is cut and the surviving branch's position stream
// is routed straight to the application sink — the paper's PSL
// connect/delete adaptation, driven by the supervisor instead of a
// developer. Recovery reverses the edit, restoring full fusion.
//
// Both rules break the same fused output edge, so they form one
// supervisor conflict group. Priorities make the multi-failure order
// explicit: with both branches down, the GPS bypass (dead-reckoned
// interpreter output) is preferred over the Wi-Fi fingerprint bypass,
// since the interpreter keeps extrapolating through short outages.
func FusionDegradation() []health.Reroute {
	return []health.Reroute{
		{
			Watch:    "wifi",
			Break:    core.Edge{From: "particle-filter", To: "app", Port: 0},
			Make:     core.Edge{From: "interpreter", To: "app", Port: 0},
			Priority: 0,
		},
		{
			Watch:    "gps",
			Break:    core.Edge{From: "particle-filter", To: "app", Port: 0},
			Make:     core.Edge{From: "wifi-positioning", To: "app", Port: 0},
			Priority: 1,
		},
	}
}

// Tuning for the shipped self-adaptation rules — the paper's §3 case
// studies as data. The thresholds follow the usual GPS accuracy bands:
// HDOP up to ~2 is good, above ~4-5 the fix is poor.
const (
	// DefaultMaxHDOP is the HDOPFilter registration's cutoff: sentences
	// with a worse (higher) HDOP are dropped.
	DefaultMaxHDOP = 4.0
	// EngageHDOP / ClearHDOP are the AccuracyFilterRule's hysteresis
	// band: degrade past EngageHDOP and the filter goes in; only when
	// the signal recovers below ClearHDOP does it come out.
	EngageHDOP = 4.0
	ClearHDOP  = 2.5
	// SwapHDOP is the ProviderSwapRule's threshold: GPS accuracy so
	// poor the WiFi fingerprint position is the better provider.
	SwapHDOP = 6.0
	// IdleSpeedMS is the PowerRule's threshold: a target moving slower
	// than this (m/s) is effectively stationary, so the receiver can
	// duty-cycle.
	IdleSpeedMS = 0.3
)

// AccuracyFilterRule is the §3.1/§3.2 case study as data: when the
// HDOP attached by the parser's HDOP feature degrades past the engage
// threshold, an HDOPFilter is spliced between parser and interpreter
// so poor fixes stop reaching the position chain; when HDOP recovers
// below the clear threshold, the filter is removed. The hysteresis
// band between the two thresholds plus the dwell times keep a noisy
// boundary signal from flapping the graph.
func AccuracyFilterRule() rules.Rule {
	return rules.Rule{
		Name:        "accuracy-filter",
		When:        rules.Condition{Signal: "attr:" + gps.AttrHDOP, Op: rules.OpGT, Value: EngageHDOP},
		ClearWhen:   &rules.Condition{Signal: "attr:" + gps.AttrHDOP, Op: rules.OpLT, Value: ClearHDOP},
		EngageAfter: 100 * time.Millisecond,
		Action: &rules.InsertAction{
			ID:    "hdop-filter",
			Build: func(id string) core.Component { return gps.NewHDOPFilter(id, DefaultMaxHDOP) },
			From:  "parser",
			To:    "interpreter",
			Port:  0,
		},
	}
}

// ProviderSwapRule is the §3.3 case study as data: under severely
// degraded GPS accuracy the fused output is bypassed in favour of the
// WiFi fingerprint position. Its action deliberately reuses the
// supervisor's Break/Make edges for the fused output, so when a real
// branch failure triggers a supervisor reroute on the same edge the
// supervisor wins and this rule defers until the graph heals.
func ProviderSwapRule() rules.Rule {
	return rules.Rule{
		Name:        "provider-swap",
		When:        rules.Condition{Signal: "attr:" + gps.AttrHDOP, Op: rules.OpGT, Value: SwapHDOP},
		ClearWhen:   &rules.Condition{Signal: "attr:" + gps.AttrHDOP, Op: rules.OpLT, Value: ClearHDOP},
		EngageAfter: 150 * time.Millisecond,
		Action: &rules.SwapAction{
			Break: core.Edge{From: "particle-filter", To: "app", Port: 0},
			Make:  core.Edge{From: "wifi-positioning", To: "app", Port: 0},
		},
	}
}

// PowerRule is the §3.2 power case study as data: when the
// interpreter's dead-reckoned speed shows the target effectively
// stationary, a periodic duty-cycling strategy is attached to the GPS
// receiver; movement detaches it again. The action is a pure feature
// edit with no structural footprint, so it never conflicts with
// supervisor reroutes.
func PowerRule() rules.Rule {
	return rules.Rule{
		Name:        "power-periodic",
		When:        rules.Condition{Signal: "attr:speedMS@interpreter", Op: rules.OpLT, Value: IdleSpeedMS},
		ClearWhen:   &rules.Condition{Signal: "attr:speedMS@interpreter", Op: rules.OpGT, Value: 2 * IdleSpeedMS},
		EngageAfter: 500 * time.Millisecond,
		Action: &rules.FeatureAction{
			Target: "gps",
			Name:   energy.FeaturePeriodic,
			Build:  func() core.Feature { return energy.NewPeriodicStrategy(5*time.Second, time.Second) },
		},
	}
}

// StandardRules bundles the three case-study rules.
func StandardRules() []rules.Rule {
	return []rules.Rule{AccuracyFilterRule(), ProviderSwapRule(), PowerRule()}
}
