package filter

import (
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/positioning"
)

// NewMovingAverage returns the baseline smoother the evaluation
// compares the particle filter against: a Processing Component emitting
// the mean of the last `window` positions. It has no access to HDOP or
// the building model — it is what a transparent middleware would let a
// developer build.
func NewMovingAverage(id string, window int) *core.FuncComponent {
	if window <= 0 {
		window = 5
	}
	var buf []positioning.Position
	return &core.FuncComponent{
		CompID: id,
		CompSpec: core.Spec{
			Name: "MovingAverage",
			Inputs: []core.PortSpec{{
				Name:    "position",
				Accepts: []core.Kind{positioning.KindPosition},
			}},
			Output: core.OutputSpec{Kind: positioning.KindPosition},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			pos, ok := in.Payload.(positioning.Position)
			if !ok {
				return nil
			}
			buf = append(buf, pos)
			if len(buf) > window {
				buf = buf[1:]
			}
			var lat, lon, e, n, acc float64
			hasLocal := true
			for _, p := range buf {
				lat += p.Global.Lat
				lon += p.Global.Lon
				e += p.Local.East
				n += p.Local.North
				acc += p.Accuracy
				hasLocal = hasLocal && p.HasLocal
			}
			k := float64(len(buf))
			out := positioning.Position{
				Time:     pos.Time,
				Global:   geo.Point{Lat: lat / k, Lon: lon / k},
				Accuracy: acc / k,
				Source:   "moving-average",
				Floor:    pos.Floor,
			}
			if hasLocal {
				out.Local = geo.ENU{East: e / k, North: n / k}
				out.HasLocal = true
			}
			emit(core.NewSample(positioning.KindPosition, out, in.Time))
			return nil
		},
	}
}
