package filter

import (
	"math"
	"math/rand"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/positioning"
)

// Particle is one position hypothesis.
type Particle struct {
	Pos geo.ENU
	W   float64
}

// Config parameterizes the particle filter.
type Config struct {
	// Particles is the population size (default 500).
	Particles int
	// MotionSigma is the random-walk diffusion in m/sqrt(s)
	// (default 1.0, pedestrian).
	MotionSigma float64
	// InitSigma is the spread used when (re)initialising around a
	// measurement (default 8 m).
	InitSigma float64
	// Seed makes the filter deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Particles <= 0 {
		c.Particles = 500
	}
	if c.MotionSigma <= 0 {
		c.MotionSigma = 1.0
	}
	if c.InitSigma <= 0 {
		c.InitSigma = 8
	}
	return c
}

// ParticleFilter is the §3.2 complex positioning mechanism: a Processing
// Component that consumes technology positions and emits refined
// estimates. It uses two kinds of seams the middleware exposes:
//
//   - a Likelihood source (normally the HDOPLikelihood Channel Feature of
//     its input channel, wired with UseLikelihood) to weight particles by
//     measurement quality, and
//   - the building model to kill particles that move through walls.
//
// Plugged in as a merge-style component it would "violate the
// architecture" of layered middleware (the Graumann critique the paper
// cites); in PerPos it is just another Processing Component.
type ParticleFilter struct {
	id  string
	b   *building.Building
	cfg Config
	rng *rand.Rand

	likelihoods map[int]Likelihood
	fallback    gaussianLikelihood

	particles   []Particle
	initialized bool
	lastTime    time.Time

	emitted  int
	resample int
	reinit   int
}

var _ core.Component = (*ParticleFilter)(nil)

// NewParticleFilter returns a particle filter constrained by building b
// (nil disables wall constraints).
func NewParticleFilter(id string, b *building.Building, cfg Config) *ParticleFilter {
	cfg = cfg.withDefaults()
	return &ParticleFilter{
		id:       id,
		b:        b,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		fallback: gaussianLikelihood{fallbackSigma: cfg.InitSigma},
	}
}

// UseLikelihood wires the Likelihood source for the primary input port
// — in the Fig. 5 flow, the Likelihood Channel Feature retrieved from
// the filter's input channel.
func (pf *ParticleFilter) UseLikelihood(l Likelihood) { pf.UseLikelihoodForPort(0, l) }

// UseLikelihoodForPort wires a Likelihood source for one input port.
// Each channel feeding the filter gets its own likelihood (the Fig. 5
// lookup is per input channel); ports without one score measurements
// with the accuracy-based fallback. Mixing them up would, e.g., apply
// the GPS channel's HDOP-wide sigma to precise WiFi fixes and destroy
// the fusion weighting.
func (pf *ParticleFilter) UseLikelihoodForPort(port int, l Likelihood) {
	if pf.likelihoods == nil {
		pf.likelihoods = make(map[int]Likelihood)
	}
	pf.likelihoods[port] = l
}

// ID implements core.Component.
func (pf *ParticleFilter) ID() string { return pf.id }

// Spec implements core.Component: two position inputs, because the
// filter is a sensor-fusion component ("aggregating measurements from a
// GPS and a WiFi sensor", Fig. 2) — which also makes it a merge node in
// the Process Channel Layer. Wiring only one port is fine.
func (pf *ParticleFilter) Spec() core.Spec {
	return core.Spec{
		Name: "ParticleFilter",
		Inputs: []core.PortSpec{
			{Name: "primary", Accepts: []core.Kind{positioning.KindPosition}},
			{Name: "secondary", Accepts: []core.Kind{positioning.KindPosition}},
		},
		Output: core.OutputSpec{Kind: positioning.KindPosition},
	}
}

// Particles returns a copy of the current population (for visualisation
// — the red dots of Fig. 6).
func (pf *ParticleFilter) Particles() []Particle {
	out := make([]Particle, len(pf.particles))
	copy(out, pf.particles)
	return out
}

// Stats returns (positions emitted, resampling rounds, reinitialisations).
func (pf *ParticleFilter) Stats() (emitted, resamples, reinits int) {
	return pf.emitted, pf.resample, pf.reinit
}

// Process implements core.Component: predict, weight, resample,
// estimate.
func (pf *ParticleFilter) Process(port int, in core.Sample, emit core.Emit) error {
	pos, ok := in.Payload.(positioning.Position)
	if !ok {
		return nil
	}
	measured := pf.localOf(pos)

	if !pf.initialized {
		pf.initAround(measured)
		pf.lastTime = in.Time
	}

	dt := in.Time.Sub(pf.lastTime).Seconds()
	if dt < 0 {
		dt = 0
	}
	if dt > 30 {
		dt = 30 // cap after long gaps (power duty-cycling)
	}
	pf.lastTime = in.Time

	pf.predict(dt)
	avgLikelihood := pf.weight(port, measured, pos)

	if avgLikelihood < 1e-6 || !pf.normalise() {
		// Sensor resetting: the population is dead (walls) or the
		// measurement is nowhere near it — reinitialise around the
		// measurement.
		pf.reinit++
		pf.initAround(measured)
		pf.weight(port, measured, pos)
		pf.normalise()
	}
	if pf.effectiveN() < float64(pf.cfg.Particles)/2 {
		pf.systematicResample()
	}

	est, spread := pf.estimate()
	out := positioning.Position{
		Time:     in.Time,
		Global:   pf.globalOf(est, pos),
		Local:    est,
		HasLocal: true,
		Floor:    pos.Floor,
		Accuracy: spread,
		Source:   "particle-filter",
		RoomID:   pf.roomOf(est, pos),
	}
	pf.emitted++
	emit(core.NewSample(positioning.KindPosition, out, in.Time))
	return nil
}

func (pf *ParticleFilter) localOf(pos positioning.Position) geo.ENU {
	if pos.HasLocal {
		return pos.Local
	}
	if pf.b != nil {
		return pf.b.Projection().ToLocal(pos.Global)
	}
	return geo.ENU{East: pos.Global.Lon, North: pos.Global.Lat}
}

func (pf *ParticleFilter) globalOf(est geo.ENU, pos positioning.Position) geo.Point {
	if pf.b != nil {
		return pf.b.Projection().ToGlobal(est)
	}
	return pos.Global
}

func (pf *ParticleFilter) roomOf(est geo.ENU, pos positioning.Position) string {
	if pf.b == nil {
		return ""
	}
	if room, ok := pf.b.RoomAt(est, pos.Floor); ok {
		return room.ID
	}
	return ""
}

// initAround sprays the population around a measurement. With a
// building model, the anchor is first clamped into the floor's extent
// (a noisy measurement may lie outside the building entirely, and a
// population initialised there would be walled out) and particles
// landing outside any room are re-drawn so the population starts in
// legal space.
func (pf *ParticleFilter) initAround(c geo.ENU) {
	c = pf.clampToFloor(c)
	pf.particles = pf.particles[:0]
	w := 1 / float64(pf.cfg.Particles)
	for i := 0; i < pf.cfg.Particles; i++ {
		p := pf.drawNear(c, pf.cfg.InitSigma)
		pf.particles = append(pf.particles, Particle{Pos: p, W: w})
	}
	pf.initialized = true
}

// clampToFloor pulls a point into the building's floor extent (with a
// half-metre inset); without a building model it is the identity.
func (pf *ParticleFilter) clampToFloor(c geo.ENU) geo.ENU {
	if pf.b == nil {
		return c
	}
	min, max, ok := pf.b.Bounds(0)
	if !ok {
		return c
	}
	const inset = 0.5
	c.East = math.Min(math.Max(c.East, min.East+inset), max.East-inset)
	c.North = math.Min(math.Max(c.North, min.North+inset), max.North-inset)
	return c
}

func (pf *ParticleFilter) drawNear(c geo.ENU, sigma float64) geo.ENU {
	for attempt := 0; attempt < 8; attempt++ {
		p := geo.ENU{
			East:  c.East + pf.rng.NormFloat64()*sigma,
			North: c.North + pf.rng.NormFloat64()*sigma,
		}
		if pf.b == nil {
			return p
		}
		if _, ok := pf.b.RoomAt(p, 0); ok {
			return p
		}
	}
	return c
}

// predict diffuses particles; moves that cross a wall kill the particle
// (weight zero) — the location-model constraint of §3.2.
func (pf *ParticleFilter) predict(dt float64) {
	if dt <= 0 {
		return
	}
	step := pf.cfg.MotionSigma * math.Sqrt(dt)
	for i := range pf.particles {
		p := &pf.particles[i]
		next := geo.ENU{
			East:  p.Pos.East + pf.rng.NormFloat64()*step,
			North: p.Pos.North + pf.rng.NormFloat64()*step,
		}
		if pf.b != nil && pf.b.Crosses(p.Pos, next, 0) {
			p.W = 0
			continue
		}
		p.Pos = next
	}
}

// weight multiplies particle weights by the measurement likelihood —
// from the Channel Feature when wired, else the accuracy-based
// fallback. It returns the mean likelihood over live particles, the
// divergence signal used for sensor resetting.
func (pf *ParticleFilter) weight(port int, measured geo.ENU, pos positioning.Position) float64 {
	source := pf.likelihoods[port]
	var sum float64
	var alive int
	for i := range pf.particles {
		p := &pf.particles[i]
		if p.W == 0 {
			continue
		}
		var l float64
		if source != nil {
			l = source.Likelihood(p.Pos, measured)
		} else {
			l = pf.fallback.score(p.Pos, measured, pos)
		}
		p.W *= l
		sum += l
		alive++
	}
	if alive == 0 {
		return 0
	}
	return sum / float64(alive)
}

// normalise scales weights to sum 1; returns false when the population
// is degenerate.
func (pf *ParticleFilter) normalise() bool {
	var sum float64
	for _, p := range pf.particles {
		sum += p.W
	}
	if sum <= 1e-300 {
		return false
	}
	for i := range pf.particles {
		pf.particles[i].W /= sum
	}
	return true
}

func (pf *ParticleFilter) effectiveN() float64 {
	var sumSq float64
	for _, p := range pf.particles {
		sumSq += p.W * p.W
	}
	if sumSq == 0 {
		return 0
	}
	return 1 / sumSq
}

// systematicResample draws a fresh equally-weighted population with
// systematic (low-variance) resampling.
func (pf *ParticleFilter) systematicResample() {
	n := len(pf.particles)
	out := make([]Particle, 0, n)
	step := 1.0 / float64(n)
	u := pf.rng.Float64() * step
	var cum float64
	idx := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+pf.particles[idx].W < target && idx < n-1 {
			cum += pf.particles[idx].W
			idx++
		}
		out = append(out, Particle{Pos: pf.particles[idx].Pos, W: step})
	}
	pf.particles = out
	pf.resample++
}

// estimate returns the weighted mean and RMS spread of the population.
func (pf *ParticleFilter) estimate() (geo.ENU, float64) {
	var e, n float64
	for _, p := range pf.particles {
		e += p.W * p.Pos.East
		n += p.W * p.Pos.North
	}
	mean := geo.ENU{East: e, North: n}
	var spread float64
	for _, p := range pf.particles {
		d := p.Pos.Distance(mean)
		spread += p.W * d * d
	}
	return mean, math.Sqrt(spread)
}
