// Package filter implements probabilistic position tracking for PerPos:
// the particle filter of §3.2 integrated as a Processing Component, the
// HDOP-driven Likelihood Channel Feature of Fig. 5, and baseline
// smoothers the evaluation compares against.
package filter

import (
	"math"
	"sync"

	"perpos/internal/channel"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
)

// FeatureLikelihood is the Channel Feature name of the HDOP likelihood.
const FeatureLikelihood = "likelihood"

// Likelihood scores how likely it is that a hypothesised position
// (a particle) is the true position given the current measurement —
// the getLikelihood(particle) interface of Fig. 5.
type Likelihood interface {
	// Likelihood returns an unnormalised probability for the particle
	// position given the measured position.
	Likelihood(particle geo.ENU, measured geo.ENU) float64
}

// HDOPLikelihood is the Likelihood Channel Feature of Fig. 5: attached
// to the GPS channel, it collects the HDOP values of every NMEA
// measurement that contributed to the current channel output from the
// data tree (Apply), and scores particles with a Gaussian whose sigma is
// the HDOP-scaled error estimate (getLikelihood).
//
// It declares its dependency on the HDOP Component Feature, matching
// the paper: "the feature specifies that it depends on a Processing
// Component that provides the Component Feature which can access
// [HDOP] information".
type HDOPLikelihood struct {
	uere float64

	mu    sync.Mutex
	hdops []float64
}

var (
	_ channel.RequiringFeature = (*HDOPLikelihood)(nil)
	_ Likelihood               = (*HDOPLikelihood)(nil)
)

// NewHDOPLikelihood returns the feature. uere scales HDOP to metres
// (default 3).
func NewHDOPLikelihood(uere float64) *HDOPLikelihood {
	if uere <= 0 {
		uere = 3
	}
	return &HDOPLikelihood{uere: uere}
}

// FeatureName implements channel.Feature.
func (f *HDOPLikelihood) FeatureName() string { return FeatureLikelihood }

// Requires implements channel.RequiringFeature.
func (f *HDOPLikelihood) Requires() channel.Requirements {
	return channel.Requirements{ComponentFeatures: []string{gps.FeatureHDOP}}
}

// Apply implements channel.Feature: walk the data tree and collect the
// HDOP of every contributing NMEA measurement. The feature "must handle
// the complexity of not knowing the number of layers in the data tree
// or the number of data chunks of each kind": it scans every entry for
// the HDOP attribute attached by the Component Feature, plus any
// feature-emitted HDOP values.
func (f *HDOPLikelihood) Apply(tree *channel.DataTree) {
	var hdops []float64
	for _, e := range tree.All() {
		if e.Sample.FromFeature == gps.FeatureHDOP {
			if v, ok := e.Sample.Payload.(float64); ok {
				hdops = append(hdops, v)
				continue
			}
		}
		if v, ok := e.Sample.FloatAttr(gps.AttrHDOP); ok {
			hdops = append(hdops, v)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hdops = hdops
}

// HDOPs returns the HDOP values backing the current likelihood.
func (f *HDOPLikelihood) HDOPs() []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]float64, len(f.hdops))
	copy(out, f.hdops)
	return out
}

// Sigma returns the current 1-sigma error estimate in metres.
func (f *HDOPLikelihood) Sigma() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.hdops) == 0 {
		return 10 * f.uere // nothing known: be permissive
	}
	sum := 0.0
	for _, h := range f.hdops {
		sum += h
	}
	sigma := (sum / float64(len(f.hdops))) * f.uere
	if sigma < 1 {
		sigma = 1
	}
	return sigma
}

// Likelihood implements Likelihood with a Gaussian kernel around the
// measurement, scaled by the HDOP-derived sigma.
func (f *HDOPLikelihood) Likelihood(particle, measured geo.ENU) float64 {
	sigma := f.Sigma()
	d := particle.Distance(measured)
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// gaussianLikelihood is the fallback scorer used when no Likelihood
// channel feature is installed: a fixed-sigma Gaussian from the
// measurement's own accuracy estimate.
type gaussianLikelihood struct {
	fallbackSigma float64
}

func (g gaussianLikelihood) score(particle, measured geo.ENU, pos positioning.Position) float64 {
	sigma := pos.Accuracy
	if sigma <= 0 {
		sigma = g.fallbackSigma
	}
	if sigma < 1 {
		sigma = 1
	}
	d := particle.Distance(measured)
	return math.Exp(-d * d / (2 * sigma * sigma))
}
