package filter

import (
	"math"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

func position(e, n float64, at time.Time, acc float64) core.Sample {
	b := building.Evaluation()
	pos := positioning.Position{
		Time:     at,
		Global:   b.Projection().ToGlobal(geo.ENU{East: e, North: n}),
		Local:    geo.ENU{East: e, North: n},
		HasLocal: true,
		Accuracy: acc,
		Source:   "gps",
	}
	return core.NewSample(positioning.KindPosition, pos, at)
}

func TestParticleFilterConvergesOnStationaryTarget(t *testing.T) {
	b := building.Evaluation()
	pf := NewParticleFilter("pf", b, Config{Particles: 300, Seed: 1})
	truth := geo.ENU{East: 20, North: 6}

	var last positioning.Position
	emit := func(s core.Sample) { last = s.Payload.(positioning.Position) }

	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		// Noisy measurements around the truth.
		e := truth.East + 3*math.Sin(float64(i)*1.7)
		n := truth.North + 3*math.Cos(float64(i)*2.3)
		if err := pf.Process(0, position(e, n, at, 4), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	if !last.HasLocal || last.Source != "particle-filter" {
		t.Fatalf("estimate = %+v", last)
	}
	if d := last.Local.Distance(truth); d > 3 {
		t.Errorf("converged estimate %.2f m from truth, want <= 3 m", d)
	}
	emitted, _, _ := pf.Stats()
	if emitted != 20 {
		t.Errorf("emitted = %d, want 20", emitted)
	}
	if last.RoomID != "corridor" {
		t.Errorf("room = %q, want corridor", last.RoomID)
	}
}

func TestParticleFilterWallConstraintKeepsEstimateInRoom(t *testing.T) {
	// Truth sits in office N1; measurements are biased 4 m south (into
	// the corridor wall region). Wall constraints plus the prior should
	// keep a large share of particles in legal space and the estimate
	// near the room.
	b := building.Evaluation()
	pf := NewParticleFilter("pf", b, Config{Particles: 400, Seed: 2, InitSigma: 3})
	truth := geo.ENU{East: 4, North: 9.5}

	var last positioning.Position
	emit := func(s core.Sample) { last = s.Payload.(positioning.Position) }
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 15; i++ {
		if err := pf.Process(0, position(truth.East, truth.North-2, at, 3), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	if d := last.Local.Distance(truth); d > 4 {
		t.Errorf("estimate %.2f m from truth", d)
	}
	// The population must not have leaked through walls en masse: count
	// particles outside N1 and the corridor.
	outside := 0
	for _, p := range pf.Particles() {
		room, ok := b.RoomAt(p.Pos, 0)
		if !ok || (room.ID != "N1" && room.ID != "corridor") {
			outside++
		}
	}
	if frac := float64(outside) / float64(len(pf.Particles())); frac > 0.2 {
		t.Errorf("%.0f%% of particles escaped through walls", frac*100)
	}
}

func TestParticleFilterReinitialisesWhenLost(t *testing.T) {
	b := building.Evaluation()
	pf := NewParticleFilter("pf", b, Config{Particles: 100, Seed: 3, InitSigma: 2})
	emit := func(core.Sample) {}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	// Converge at the west end...
	for i := 0; i < 5; i++ {
		if err := pf.Process(0, position(4, 6, at, 2), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	// ...then teleport the measurement to the east end. The population
	// has ~zero likelihood there; the filter must recover.
	var last positioning.Position
	emit = func(s core.Sample) { last = s.Payload.(positioning.Position) }
	for i := 0; i < 10; i++ {
		if err := pf.Process(0, position(36, 6, at, 2), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	if d := last.Local.Distance(geo.ENU{East: 36, North: 6}); d > 5 {
		t.Errorf("filter failed to recover: %.1f m away", d)
	}
	_, _, reinits := pf.Stats()
	if reinits == 0 {
		t.Error("expected at least one reinitialisation")
	}
}

func TestParticleFilterIgnoresNonPositionPayload(t *testing.T) {
	pf := NewParticleFilter("pf", nil, Config{Particles: 10, Seed: 1})
	emitted := 0
	if err := pf.Process(0, core.NewSample(positioning.KindPosition, "bogus", time.Time{}),
		func(core.Sample) { emitted++ }); err != nil {
		t.Fatal(err)
	}
	if emitted != 0 {
		t.Error("bogus payload produced an estimate")
	}
}

func TestParticleFilterWithoutBuilding(t *testing.T) {
	pf := NewParticleFilter("pf", nil, Config{Particles: 200, Seed: 4})
	var last positioning.Position
	emit := func(s core.Sample) { last = s.Payload.(positioning.Position) }
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		pos := positioning.Position{
			Time:     at,
			Local:    geo.ENU{East: 5, North: 5},
			HasLocal: true,
			Accuracy: 3,
		}
		if err := pf.Process(0, core.NewSample(positioning.KindPosition, pos, at), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	if d := last.Local.Distance(geo.ENU{East: 5, North: 5}); d > 3 {
		t.Errorf("estimate %.2f m off without building", d)
	}
	if last.RoomID != "" {
		t.Errorf("room = %q without building", last.RoomID)
	}
}

func TestHDOPLikelihoodSigma(t *testing.T) {
	f := NewHDOPLikelihood(3)
	// No data yet: permissive sigma.
	if got := f.Sigma(); got != 30 {
		t.Errorf("empty Sigma = %v, want 30", got)
	}
	f.hdops = []float64{1, 2, 3}
	if got := f.Sigma(); got != 6 { // mean 2 * uere 3
		t.Errorf("Sigma = %v, want 6", got)
	}
	f.hdops = []float64{0.1}
	if got := f.Sigma(); got != 1 { // floor at 1 m
		t.Errorf("Sigma = %v, want 1 (floored)", got)
	}
}

func TestHDOPLikelihoodScoring(t *testing.T) {
	f := NewHDOPLikelihood(3)
	f.hdops = []float64{1} // sigma 3
	measured := geo.ENU{East: 10, North: 10}
	near := f.Likelihood(geo.ENU{East: 10.5, North: 10}, measured)
	far := f.Likelihood(geo.ENU{East: 25, North: 10}, measured)
	if near <= far {
		t.Errorf("near %.4f should exceed far %.4f", near, far)
	}
	exact := f.Likelihood(measured, measured)
	if exact != 1 {
		t.Errorf("exact match likelihood = %v, want 1", exact)
	}
}

// TestFig5EndToEnd is the full §3.2 integration: GPS receiver ->
// Parser (+HDOP component feature) -> Interpreter -> ParticleFilter,
// with the Likelihood Channel Feature attached to the GPS channel and
// wired into the filter via Channel.Feature — the complete Fig. 5 flow.
// The particle filter must beat raw GPS on an indoor corridor walk.
func TestFig5EndToEnd(t *testing.T) {
	b := building.Evaluation()
	tr := trace.CorridorWalk(b, 11, 6, time.Second)

	// --- PerPos pipeline with particle filter ---
	g := core.New()
	mustAdd(t, g, gps.NewReceiver("gps", tr, gps.Config{Seed: 12, ColdStart: time.Second}))
	mustAdd(t, g, gps.NewParser("parser"))
	parserNode, _ := g.Node("parser")
	if err := parserNode.AttachFeature(gps.NewHDOPFeature()); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, g, gps.NewInterpreter("interpreter", 0))
	pf := NewParticleFilter("particle-filter", b, Config{Particles: 400, Seed: 13})
	mustAdd(t, g, pf)
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	mustAdd(t, g, sink)
	mustConnect(t, g, "gps", "parser", 0)
	mustConnect(t, g, "parser", "interpreter", 0)
	mustConnect(t, g, "interpreter", "particle-filter", 0)
	mustConnect(t, g, "particle-filter", "app", 0)

	// PCL: attach the Likelihood feature to the GPS channel and hand it
	// to the filter (Fig. 5, snippets 1+2).
	layer := channel.NewLayer(g)
	defer layer.Close()
	ch, ok := layer.ChannelInto("particle-filter", 0)
	if !ok {
		t.Fatal("no channel into the particle filter")
	}
	like := NewHDOPLikelihood(0)
	if err := ch.AttachFeature(like); err != nil {
		t.Fatal(err)
	}
	got, ok := ch.Feature(FeatureLikelihood)
	if !ok {
		t.Fatal("likelihood feature not retrievable from channel")
	}
	pf.UseLikelihood(got.(Likelihood))

	// Tap raw GPS positions for the baseline comparison.
	var rawErr, pfErr []float64
	cancel := g.Tap(func(id string, s core.Sample) {
		if s.FromFeature != "" {
			return
		}
		pos, ok := s.Payload.(positioning.Position)
		if !ok {
			return
		}
		truth, found := tr.At(s.Time)
		if !found {
			return
		}
		local := pos.Local
		if !pos.HasLocal {
			local = b.Projection().ToLocal(pos.Global)
		}
		err := local.Distance(truth.Local)
		switch id {
		case "interpreter":
			rawErr = append(rawErr, err)
		case "particle-filter":
			pfErr = append(pfErr, err)
		}
	})
	defer cancel()

	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	if len(rawErr) < 20 || len(pfErr) < 20 {
		t.Fatalf("too few samples: raw %d, pf %d", len(rawErr), len(pfErr))
	}
	if len(like.HDOPs()) == 0 {
		t.Error("likelihood feature collected no HDOPs from data trees")
	}

	rawRMSE := rmse(rawErr)
	pfRMSE := rmse(pfErr)
	t.Logf("corridor walk: raw GPS RMSE %.1f m, particle filter RMSE %.1f m (%.1fx)",
		rawRMSE, pfRMSE, rawRMSE/pfRMSE)
	if pfRMSE >= rawRMSE {
		t.Errorf("particle filter (%.1f m) must beat raw GPS (%.1f m)", pfRMSE, rawRMSE)
	}
	// The paper's Fig. 6 shows a clear refinement; require >= 1.5x.
	if rawRMSE/pfRMSE < 1.5 {
		t.Errorf("improvement %.2fx below 1.5x", rawRMSE/pfRMSE)
	}
}

func TestMovingAverageSmoothing(t *testing.T) {
	ma := NewMovingAverage("ma", 4)
	var got []positioning.Position
	emit := func(s core.Sample) { got = append(got, s.Payload.(positioning.Position)) }
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	// Alternating +2/-2 noise around east=10.
	for i := 0; i < 12; i++ {
		e := 10.0 + 2*float64(1-2*(i%2))
		if err := ma.Process(0, position(e, 6, at, 3), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	last := got[len(got)-1]
	if math.Abs(last.Local.East-10) > 0.5 {
		t.Errorf("smoothed east = %v, want ~10", last.Local.East)
	}
	if last.Source != "moving-average" {
		t.Errorf("source = %q", last.Source)
	}
	if !last.HasLocal {
		t.Error("local lost in averaging")
	}
}

func rmse(errs []float64) float64 {
	var sum float64
	for _, e := range errs {
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(errs)))
}

func mustAdd(t *testing.T, g *core.Graph, c core.Component) {
	t.Helper()
	if _, err := g.Add(c); err != nil {
		t.Fatalf("Add(%s): %v", c.ID(), err)
	}
}

func mustConnect(t *testing.T, g *core.Graph, from, to string, port int) {
	t.Helper()
	if err := g.Connect(from, to, port); err != nil {
		t.Fatalf("Connect(%s->%s): %v", from, to, err)
	}
}
