package filter

import (
	"math"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/positioning"
)

// KalmanFilter is a constant-velocity 2D Kalman filter — the classic
// smoother a transparent middleware lets a developer build: it can use
// the position stream and the reported accuracy, but none of the
// translucent seams (HDOP data trees, building walls) the particle
// filter exploits. It serves as the strongest seam-blind baseline in
// the E5 comparison.
//
// State is [e, n, ve, vn] with independent axes; the implementation
// exploits that independence and runs two 2-state filters.
type KalmanFilter struct {
	id string
	// processNoise is the acceleration-driven process noise (m/s^2).
	processNoise float64
	// proj projects global-only positions into a local metric frame;
	// nil means only positions with HasLocal are usable.
	proj *geo.Projection

	east, north axisKF
	initialized bool
	lastTime    time.Time
	emitted     int
}

// axisKF is a 1D position+velocity Kalman filter.
type axisKF struct {
	x, v float64 // state
	// covariance
	pxx, pxv, pvv float64
}

var _ core.Component = (*KalmanFilter)(nil)

// NewKalmanFilter returns a Kalman filter component. processNoise <= 0
// defaults to 0.5 m/s^2 (pedestrian manoeuvring). proj (optional)
// projects global-only positions into the local frame.
func NewKalmanFilter(id string, processNoise float64, proj *geo.Projection) *KalmanFilter {
	if processNoise <= 0 {
		processNoise = 0.5
	}
	return &KalmanFilter{id: id, processNoise: processNoise, proj: proj}
}

// ID implements core.Component.
func (k *KalmanFilter) ID() string { return k.id }

// Spec implements core.Component.
func (k *KalmanFilter) Spec() core.Spec {
	return core.Spec{
		Name: "KalmanFilter",
		Inputs: []core.PortSpec{{
			Name:    "position",
			Accepts: []core.Kind{positioning.KindPosition},
		}},
		Output: core.OutputSpec{Kind: positioning.KindPosition},
	}
}

// Emitted returns the number of estimates produced.
func (k *KalmanFilter) Emitted() int { return k.emitted }

// Process implements core.Component.
func (k *KalmanFilter) Process(_ int, in core.Sample, emit core.Emit) error {
	pos, ok := in.Payload.(positioning.Position)
	if !ok {
		return nil
	}
	local := pos.Local
	switch {
	case pos.HasLocal:
	case k.proj != nil:
		local = k.proj.ToLocal(pos.Global)
	default:
		// No metric frame available; the baseline cannot use this.
		return nil
	}
	sigma := pos.Accuracy
	if sigma <= 0 {
		sigma = 10
	}
	r := sigma * sigma

	if !k.initialized {
		k.east = axisKF{x: local.East, pxx: r, pvv: 4}
		k.north = axisKF{x: local.North, pxx: r, pvv: 4}
		k.initialized = true
		k.lastTime = in.Time
	}
	dt := in.Time.Sub(k.lastTime).Seconds()
	if dt < 0 {
		dt = 0
	}
	if dt > 30 {
		dt = 30
	}
	k.lastTime = in.Time

	k.east.step(dt, k.processNoise, local.East, r)
	k.north.step(dt, k.processNoise, local.North, r)

	est := geo.ENU{East: k.east.x, North: k.north.x}
	global := pos.Global
	if k.proj != nil {
		global = k.proj.ToGlobal(est)
	}
	out := positioning.Position{
		Time:     in.Time,
		Global:   global,
		Local:    est,
		HasLocal: true,
		Floor:    pos.Floor,
		Accuracy: math.Sqrt((k.east.pxx + k.north.pxx) / 2),
		Source:   "kalman",
	}
	k.emitted++
	emit(core.NewSample(positioning.KindPosition, out, in.Time))
	return nil
}

// step runs one predict+update cycle on a single axis.
func (a *axisKF) step(dt, q, z, r float64) {
	// Predict: x += v*dt; covariance per constant-velocity model with
	// white-acceleration noise q^2.
	if dt > 0 {
		a.x += a.v * dt
		q2 := q * q
		dt2 := dt * dt
		a.pxx += 2*dt*a.pxv + dt2*a.pvv + q2*dt2*dt2/4
		a.pxv += dt*a.pvv + q2*dt2*dt/2
		a.pvv += q2 * dt2
	}
	// Update with measurement z, variance r.
	s := a.pxx + r
	kx := a.pxx / s
	kv := a.pxv / s
	innov := z - a.x
	a.x += kx * innov
	a.v += kv * innov
	pxx, pxv, pvv := a.pxx, a.pxv, a.pvv
	a.pxx = (1 - kx) * pxx
	a.pxv = (1 - kx) * pxv
	a.pvv = pvv - kv*pxv
}
