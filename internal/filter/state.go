package filter

import (
	"encoding/json"
	"math/rand"
	"time"

	"perpos/internal/core"
)

// StateAccess implementations for the filter components: the seam the
// checkpoint subsystem uses to carry a session's estimation state across
// eviction and process death. The Kalman filter round-trips exactly; the
// particle filter round-trips its population but not its RNG (math/rand
// internals are not serializable), so it is reseeded deterministically
// from the config seed and the emission count — resumed runs stay inside
// the filter's own convergence bounds rather than being bit-identical.

var (
	_ core.StateAccess = (*KalmanFilter)(nil)
	_ core.StateAccess = (*ParticleFilter)(nil)
)

// axisState mirrors axisKF with JSON tags.
type axisState struct {
	X   float64 `json:"x"`
	V   float64 `json:"v"`
	Pxx float64 `json:"pxx"`
	Pxv float64 `json:"pxv"`
	Pvv float64 `json:"pvv"`
}

func axisStateOf(a axisKF) axisState {
	return axisState{X: a.x, V: a.v, Pxx: a.pxx, Pxv: a.pxv, Pvv: a.pvv}
}

func (s axisState) axisKF() axisKF {
	return axisKF{x: s.X, v: s.V, pxx: s.Pxx, pxv: s.Pxv, pvv: s.Pvv}
}

type kalmanState struct {
	East        axisState `json:"east"`
	North       axisState `json:"north"`
	Initialized bool      `json:"initialized"`
	LastTime    time.Time `json:"last_time"`
	Emitted     int       `json:"emitted"`
}

// MarshalState implements core.StateAccess.
func (k *KalmanFilter) MarshalState() ([]byte, error) {
	return json.Marshal(kalmanState{
		East:        axisStateOf(k.east),
		North:       axisStateOf(k.north),
		Initialized: k.initialized,
		LastTime:    k.lastTime,
		Emitted:     k.emitted,
	})
}

// UnmarshalState implements core.StateAccess.
func (k *KalmanFilter) UnmarshalState(data []byte) error {
	var st kalmanState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	k.east = st.East.axisKF()
	k.north = st.North.axisKF()
	k.initialized = st.Initialized
	k.lastTime = st.LastTime
	k.emitted = st.Emitted
	return nil
}

// particleState carries the population and counters. Positions are
// rounded through JSON floats, which is lossless for float64.
type particleState struct {
	Particles   []Particle `json:"particles"`
	Initialized bool       `json:"initialized"`
	LastTime    time.Time  `json:"last_time"`
	Emitted     int        `json:"emitted"`
	Resample    int        `json:"resample"`
	Reinit      int        `json:"reinit"`
}

// MarshalState implements core.StateAccess.
func (pf *ParticleFilter) MarshalState() ([]byte, error) {
	return json.Marshal(particleState{
		Particles:   pf.Particles(),
		Initialized: pf.initialized,
		LastTime:    pf.lastTime,
		Emitted:     pf.emitted,
		Resample:    pf.resample,
		Reinit:      pf.reinit,
	})
}

// UnmarshalState implements core.StateAccess. The RNG restarts from a
// stream derived from the config seed and the emission count, so two
// resumes of the same checkpoint behave identically even though the
// pre-crash random stream cannot be recovered.
func (pf *ParticleFilter) UnmarshalState(data []byte) error {
	var st particleState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	pf.particles = st.Particles
	pf.initialized = st.Initialized
	pf.lastTime = st.LastTime
	pf.emitted = st.Emitted
	pf.resample = st.Resample
	pf.reinit = st.Reinit
	pf.rng = resumedRNG(pf.cfg.Seed, st.Emitted)
	return nil
}

// resumedRNG derives the restart stream: distinct per (seed, emitted)
// pair so every resume point gets an independent but reproducible
// sequence.
func resumedRNG(seed int64, emitted int) *rand.Rand {
	const mix = 0x5851F42D4C957F2D // odd 63-bit mixing constant
	return rand.New(rand.NewSource(seed ^ (int64(emitted)+1)*mix))
}
