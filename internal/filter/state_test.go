package filter

import (
	"math"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/positioning"
)

func truthENU() geo.ENU { return geo.ENU{East: 20, North: 6} }

// feed pushes i-indexed noisy measurements around truth into comp.
func feedPositions(t *testing.T, comp core.Component, from, to int, emit core.Emit) {
	t.Helper()
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC).Add(time.Duration(from) * time.Second)
	for i := from; i < to; i++ {
		e := 20 + 3*math.Sin(float64(i)*1.7)
		n := 6 + 3*math.Cos(float64(i)*2.3)
		if err := comp.Process(0, position(e, n, at, 4), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
}

// TestKalmanStateRoundTrip: a restored Kalman filter is bit-identical —
// feeding the same tail measurements yields exactly the estimates of an
// uninterrupted run.
func TestKalmanStateRoundTrip(t *testing.T) {
	ref := NewKalmanFilter("kf", 0, nil)
	var refLast positioning.Position
	feedPositions(t, ref, 0, 10, func(s core.Sample) { refLast = s.Payload.(positioning.Position) })

	half := NewKalmanFilter("kf", 0, nil)
	feedPositions(t, half, 0, 6, func(core.Sample) {})
	state, err := half.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewKalmanFilter("kf", 0, nil)
	if err := resumed.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	if resumed.Emitted() != 6 {
		t.Fatalf("restored emitted = %d, want 6", resumed.Emitted())
	}
	var resLast positioning.Position
	feedPositions(t, resumed, 6, 10, func(s core.Sample) { resLast = s.Payload.(positioning.Position) })

	if resLast.Local != refLast.Local {
		t.Errorf("resumed estimate %+v != uninterrupted %+v", resLast.Local, refLast.Local)
	}
	if resLast.Accuracy != refLast.Accuracy {
		t.Errorf("resumed accuracy %v != uninterrupted %v", resLast.Accuracy, refLast.Accuracy)
	}
	if resumed.Emitted() != ref.Emitted() {
		t.Errorf("resumed emitted %d != uninterrupted %d", resumed.Emitted(), ref.Emitted())
	}
}

// TestParticleStateRoundTrip: the population survives the round trip
// and the resumed filter stays within its own convergence bounds (the
// RNG restarts on a derived stream, so resumes are reproducible but not
// bit-identical with the uninterrupted run).
func TestParticleStateRoundTrip(t *testing.T) {
	b := building.Evaluation()
	half := NewParticleFilter("pf", b, Config{Particles: 300, Seed: 1})
	feedPositions(t, half, 0, 12, func(core.Sample) {})
	state, err := half.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	resume := func() positioning.Position {
		pf := NewParticleFilter("pf", b, Config{Particles: 300, Seed: 1})
		if err := pf.UnmarshalState(state); err != nil {
			t.Fatal(err)
		}
		if got := len(pf.Particles()); got != 300 {
			t.Fatalf("restored population = %d particles, want 300", got)
		}
		var last positioning.Position
		feedPositions(t, pf, 12, 24, func(s core.Sample) { last = s.Payload.(positioning.Position) })
		emitted, _, _ := pf.Stats()
		if emitted != 24 {
			t.Fatalf("resumed emitted = %d, want 24", emitted)
		}
		return last
	}

	first := resume()
	if d := first.Local.Distance(truthENU()); d > 3 {
		t.Errorf("resumed estimate %.2f m from truth, want <= 3 m", d)
	}
	// Determinism across resumes of the same checkpoint.
	second := resume()
	if first.Local != second.Local {
		t.Errorf("two resumes diverged: %+v vs %+v", first.Local, second.Local)
	}
}
