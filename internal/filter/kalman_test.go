package filter

import (
	"math"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/positioning"
)

func kfPosition(e, n float64, at time.Time, acc float64) core.Sample {
	pos := positioning.Position{
		Time:     at,
		Local:    geo.ENU{East: e, North: n},
		HasLocal: true,
		Accuracy: acc,
	}
	return core.NewSample(positioning.KindPosition, pos, at)
}

func TestKalmanSmoothsStationaryNoise(t *testing.T) {
	kf := NewKalmanFilter("kf", 0.3, nil)
	var last positioning.Position
	emit := func(s core.Sample) { last = s.Payload.(positioning.Position) }
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		e := 10 + 4*math.Sin(float64(i)*2.1)
		n := 5 + 4*math.Cos(float64(i)*1.3)
		if err := kf.Process(0, kfPosition(e, n, at, 4), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	d := last.Local.Distance(geo.ENU{East: 10, North: 5})
	if d > 2.5 {
		t.Errorf("converged estimate %.2f m from truth, want <= 2.5 m", d)
	}
	if last.Source != "kalman" {
		t.Errorf("source = %q", last.Source)
	}
	if kf.Emitted() != 50 {
		t.Errorf("Emitted = %d", kf.Emitted())
	}
}

func TestKalmanTracksConstantVelocity(t *testing.T) {
	kf := NewKalmanFilter("kf", 0.5, nil)
	var last positioning.Position
	emit := func(s core.Sample) { last = s.Payload.(positioning.Position) }
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	// Target moves east at 1.5 m/s with modest noise.
	for i := 0; i < 60; i++ {
		e := 1.5*float64(i) + 2*math.Sin(float64(i)*2.7)
		if err := kf.Process(0, kfPosition(e, 0, at, 2), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	truth := geo.ENU{East: 1.5 * 59, North: 0}
	if d := last.Local.Distance(truth); d > 3 {
		t.Errorf("lagging estimate: %.2f m behind truth", d)
	}
}

func TestKalmanUncertaintyShrinks(t *testing.T) {
	kf := NewKalmanFilter("kf", 0.3, nil)
	var accs []float64
	emit := func(s core.Sample) {
		accs = append(accs, s.Payload.(positioning.Position).Accuracy)
	}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if err := kf.Process(0, kfPosition(0, 0, at, 5), emit); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	if accs[len(accs)-1] >= accs[0] {
		t.Errorf("accuracy did not improve: %v -> %v", accs[0], accs[len(accs)-1])
	}
	if accs[len(accs)-1] <= 0 {
		t.Error("non-positive accuracy")
	}
}

func TestKalmanIgnoresUnusableInput(t *testing.T) {
	kf := NewKalmanFilter("kf", 0, nil)
	emitted := 0
	emit := func(core.Sample) { emitted++ }
	// Non-position payload.
	if err := kf.Process(0, core.NewSample(positioning.KindPosition, 1, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	// Position without a local frame.
	pos := positioning.Position{Global: geo.Point{Lat: 56, Lon: 10}}
	if err := kf.Process(0, core.NewSample(positioning.KindPosition, pos, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	if emitted != 0 {
		t.Errorf("emitted %d from unusable input", emitted)
	}
}

func TestKalmanHandlesTimeGaps(t *testing.T) {
	kf := NewKalmanFilter("kf", 0.5, nil)
	var last positioning.Position
	emit := func(s core.Sample) { last = s.Payload.(positioning.Position) }
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	if err := kf.Process(0, kfPosition(0, 0, at, 3), emit); err != nil {
		t.Fatal(err)
	}
	// A ten-minute gap (duty-cycled GPS) must not explode the filter.
	at = at.Add(10 * time.Minute)
	if err := kf.Process(0, kfPosition(100, 0, at, 3), emit); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(last.Local.East) || math.IsInf(last.Local.East, 0) {
		t.Fatalf("estimate diverged: %v", last.Local)
	}
	if d := last.Local.Distance(geo.ENU{East: 100, North: 0}); d > 60 {
		t.Errorf("estimate %.1f m from new fix after gap", d)
	}
}
