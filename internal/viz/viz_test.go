package viz

import (
	"strings"
	"testing"

	"perpos/internal/building"
	"perpos/internal/geo"
)

func TestCanvasPlotAndRender(t *testing.T) {
	c := NewCanvas(geo.ENU{}, geo.ENU{East: 10, North: 10}, 20)
	c.Plot(geo.ENU{East: 5, North: 5}, 'X')
	out := c.String()
	if !strings.Contains(out, "X") {
		t.Errorf("marker missing:\n%s", out)
	}
	cols, rows := c.Size()
	if cols != 20 || rows < 5 {
		t.Errorf("Size = %d x %d", cols, rows)
	}
}

func TestCanvasIgnoresOutOfWindow(t *testing.T) {
	c := NewCanvas(geo.ENU{}, geo.ENU{East: 10, North: 10}, 20)
	c.Plot(geo.ENU{East: -5, North: 5}, 'X')
	c.Plot(geo.ENU{East: 5, North: 50}, 'X')
	if strings.Contains(c.String(), "X") {
		t.Error("out-of-window point plotted")
	}
}

func TestCanvasLineConnects(t *testing.T) {
	c := NewCanvas(geo.ENU{}, geo.ENU{East: 20, North: 20}, 40)
	c.Line(geo.ENU{East: 0, North: 10}, geo.ENU{East: 20, North: 10}, '-')
	// A horizontal line fills most of a row.
	found := false
	for _, line := range strings.Split(c.String(), "\n") {
		if strings.Count(line, "-") >= 30 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("line not contiguous:\n%s", c.String())
	}
}

func TestPlotIfEmptyDoesNotOverwrite(t *testing.T) {
	c := NewCanvas(geo.ENU{}, geo.ENU{East: 10, North: 10}, 20)
	p := geo.ENU{East: 5, North: 5}
	c.Plot(p, '#')
	c.PlotIfEmpty(p, '.')
	if strings.Contains(c.String(), ".") {
		t.Error("PlotIfEmpty overwrote a wall")
	}
}

func TestFloorCanvasDrawsWalls(t *testing.T) {
	b := building.Evaluation()
	c, ok := FloorCanvas(b, 0, 80)
	if !ok {
		t.Fatal("no canvas")
	}
	out := c.String()
	if strings.Count(out, "#") < 100 {
		t.Errorf("too few wall cells (%d):\n%s", strings.Count(out, "#"), out)
	}
	if _, ok := FloorCanvas(b, 9, 80); ok {
		t.Error("canvas for unknown floor")
	}
}

func TestSnapshotLegendAndMarkers(t *testing.T) {
	b := building.Evaluation()
	particles := []geo.ENU{{East: 20, North: 6}, {East: 21, North: 6.2}}
	estimates := []geo.ENU{{East: 18, North: 6}, {East: 22, North: 6}}
	truth := []geo.ENU{{East: 19, North: 10}, {East: 23, North: 10}}
	out := Snapshot(b, 0, 80, particles, estimates, truth)
	for _, want := range []string{"legend:", "o", "*", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
	if Snapshot(b, 9, 80, nil, nil, nil) != "" {
		t.Error("snapshot for unknown floor")
	}
}

func TestDrawInfrastructure(t *testing.T) {
	b := building.Evaluation()
	out := DrawInfrastructure(b, 0, 80, []Marker{
		{Pos: geo.ENU{East: 6, North: 6}, Rune: 'A', Label: "access point"},
	})
	if !strings.Contains(out, "A") || !strings.Contains(out, "access point") {
		t.Errorf("infrastructure map incomplete:\n%s", out)
	}
}

func TestCanvasDegenerateWindow(t *testing.T) {
	// Zero-size window must not panic or divide by zero.
	c := NewCanvas(geo.ENU{}, geo.ENU{}, 5)
	c.Plot(geo.ENU{}, 'x')
	if c.String() == "" {
		t.Error("degenerate canvas renders nothing")
	}
}
