// Package viz renders building floor plans and position data as ASCII
// maps — the infrastructure-visualization use case the paper cites as a
// motivating detail-demanding application (Oppermann et al. [2]), and
// the medium for Fig. 6-style particle-filter snapshots in examples and
// experiment output.
package viz

import (
	"fmt"
	"math"
	"strings"

	"perpos/internal/building"
	"perpos/internal/geo"
)

// Canvas is a character grid mapped onto a local-coordinate window.
// Terminal cells are roughly twice as tall as wide, so one cell covers
// cellW x 2*cellW metres.
type Canvas struct {
	min, max geo.ENU
	cols     int
	rows     int
	cellW    float64 // metres per column
	cellH    float64 // metres per row
	cells    [][]rune
}

// NewCanvas returns a canvas covering [min, max] with the given width
// in characters (minimum 10).
func NewCanvas(min, max geo.ENU, cols int) *Canvas {
	if cols < 10 {
		cols = 10
	}
	width := max.East - min.East
	height := max.North - min.North
	if width <= 0 {
		width = 1
	}
	if height <= 0 {
		height = 1
	}
	cellW := width / float64(cols)
	cellH := cellW * 2 // compensate terminal cell aspect
	rows := int(math.Ceil(height/cellH)) + 1

	cells := make([][]rune, rows)
	for r := range cells {
		row := make([]rune, cols)
		for i := range row {
			row[i] = ' '
		}
		cells[r] = row
	}
	return &Canvas{min: min, max: max, cols: cols, rows: rows, cellW: cellW, cellH: cellH, cells: cells}
}

// cell maps a point to grid coordinates; ok is false outside the
// window.
func (c *Canvas) cell(p geo.ENU) (col, row int, ok bool) {
	col = int((p.East - c.min.East) / c.cellW)
	// Row 0 is the top (largest North).
	row = c.rows - 1 - int((p.North-c.min.North)/c.cellH)
	if col < 0 || col >= c.cols || row < 0 || row >= c.rows {
		return 0, 0, false
	}
	return col, row, true
}

// Plot draws a single marker; points outside the window are ignored.
// Later plots overwrite earlier ones.
func (c *Canvas) Plot(p geo.ENU, ch rune) {
	if col, row, ok := c.cell(p); ok {
		c.cells[row][col] = ch
	}
}

// PlotIfEmpty draws a marker only where the cell is still blank —
// used for dense clouds (particles) so they do not erase walls.
func (c *Canvas) PlotIfEmpty(p geo.ENU, ch rune) {
	if col, row, ok := c.cell(p); ok && c.cells[row][col] == ' ' {
		c.cells[row][col] = ch
	}
}

// Line draws a straight segment by sampling at sub-cell resolution.
func (c *Canvas) Line(a, b geo.ENU, ch rune) {
	d := a.Distance(b)
	steps := int(d/math.Min(c.cellW, c.cellH)*2) + 1
	for i := 0; i <= steps; i++ {
		f := float64(i) / float64(steps)
		c.Plot(geo.ENU{
			East:  a.East + f*(b.East-a.East),
			North: a.North + f*(b.North-a.North),
		}, ch)
	}
}

// Path draws a polyline.
func (c *Canvas) Path(points []geo.ENU, ch rune) {
	for i := 1; i < len(points); i++ {
		c.Line(points[i-1], points[i], ch)
	}
}

// String renders the canvas, top row first.
func (c *Canvas) String() string {
	var b strings.Builder
	for _, row := range c.cells {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// Size returns (cols, rows).
func (c *Canvas) Size() (int, int) { return c.cols, c.rows }

// DrawFloor draws a floor's walls ('#') onto the canvas.
func DrawFloor(c *Canvas, b *building.Building, level int) {
	f, ok := b.Floor(level)
	if !ok {
		return
	}
	for _, w := range f.Walls {
		c.Line(w.A, w.B, '#')
	}
}

// FloorCanvas returns a canvas sized to a floor (with a one-metre
// margin) and the floor already drawn. ok is false for unknown floors.
func FloorCanvas(b *building.Building, level, cols int) (*Canvas, bool) {
	min, max, ok := b.Bounds(level)
	if !ok {
		return nil, false
	}
	min.East--
	min.North--
	max.East++
	max.North++
	c := NewCanvas(min, max, cols)
	DrawFloor(c, b, level)
	return c, true
}

// Snapshot renders a Fig. 6-style frame: the floor plan with a particle
// cloud ('.'), the estimate trace ('o') and the ground truth ('*'),
// plus a legend line.
func Snapshot(b *building.Building, level, cols int, particles, estimates, truth []geo.ENU) string {
	c, ok := FloorCanvas(b, level, cols)
	if !ok {
		return ""
	}
	for _, p := range particles {
		c.PlotIfEmpty(p, '.')
	}
	c.Path(estimates, 'o')
	c.Path(truth, '*')
	return c.String() + "legend: # wall, . particle, o estimate, * ground truth\n"
}

// InfrastructureMap renders the deployment view of [2]: the floor plan
// with labelled markers (e.g. access points). Markers are (position,
// rune) pairs.
type Marker struct {
	Pos   geo.ENU
	Rune  rune
	Label string
}

// DrawInfrastructure renders the floor with markers and a legend.
func DrawInfrastructure(b *building.Building, level, cols int, markers []Marker) string {
	c, ok := FloorCanvas(b, level, cols)
	if !ok {
		return ""
	}
	var legend []string
	for _, m := range markers {
		c.Plot(m.Pos, m.Rune)
		if m.Label != "" {
			legend = append(legend, fmt.Sprintf("%c %s", m.Rune, m.Label))
		}
	}
	out := c.String()
	if len(legend) > 0 {
		out += "legend: # wall, " + strings.Join(legend, ", ") + "\n"
	}
	return out
}
