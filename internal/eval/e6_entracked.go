package eval

import (
	"fmt"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/energy"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// E6Config parameterizes the EnTracked experiment.
type E6Config struct {
	Seed int64
	// Thresholds are the EnTracked error bounds (m) to sweep.
	Thresholds []float64
	// Periods are the periodic-polling baselines to sweep.
	Periods []time.Duration
}

func (c E6Config) withDefaults() E6Config {
	if c.Seed == 0 {
		c.Seed = 80
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{25, 50, 100}
	}
	if len(c.Periods) == 0 {
		c.Periods = []time.Duration{30 * time.Second, 60 * time.Second, 120 * time.Second}
	}
	return c
}

// e6Policy describes one reporting policy run.
type e6Policy struct {
	name      string
	startOff  bool
	threshold float64       // EnTracked threshold; 0 = not EnTracked
	period    time.Duration // periodic baseline; 0 = not periodic
}

// RunE6 reproduces §3.3 / Fig. 7: the EnTracked power strategy
// implemented as a Component Feature plus Channel Feature, swept over
// thresholds, against always-on and periodic baselines. The table is
// the energy/accuracy trade-off (the shape of EnTracked [3]).
func RunE6(cfg E6Config) (Result, error) {
	cfg = cfg.withDefaults()

	policies := []e6Policy{{name: "always-on"}}
	for _, p := range cfg.Periods {
		policies = append(policies, e6Policy{
			name:     fmt.Sprintf("periodic %ds", int(p.Seconds())),
			startOff: true,
			period:   p,
		})
	}
	for _, th := range cfg.Thresholds {
		policies = append(policies, e6Policy{
			name:      fmt.Sprintf("entracked %dm", int(th)),
			startOff:  true,
			threshold: th,
		})
	}

	res := Result{
		ID:     "E6",
		Title:  "EnTracked energy/accuracy trade-off (Fig. 7, §3.3)",
		Header: []string{"policy", "energy (J)", "gps (J)", "radio (J)", "duty", "reports", "mean err (m)", "p95 err (m)"},
	}

	var alwaysOnJ, entracked50J float64
	var alwaysOnErr, entracked50Err float64
	for _, p := range policies {
		sum, errStats, err := runE6Policy(cfg.Seed, p)
		if err != nil {
			return Result{}, fmt.Errorf("policy %s: %w", p.name, err)
		}
		res.Rows = append(res.Rows, []string{
			p.name,
			f1(sum.TotalJ), f1(sum.GPSJ), f1(sum.RadioJ),
			pct(sum.DutyCycle()), itoa(sum.Reports),
			f1(errStats.Mean), f1(errStats.P95),
		})
		switch p.name {
		case "always-on":
			alwaysOnJ = sum.TotalJ
			alwaysOnErr = errStats.Mean
		case "entracked 50m":
			entracked50J = sum.TotalJ
			entracked50Err = errStats.Mean
		}
	}

	if entracked50J > 0 && alwaysOnJ > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"entracked 50m uses %.0f%% of always-on energy (error %.1f m vs %.1f m)",
			100*entracked50J/alwaysOnJ, entracked50Err, alwaysOnErr))
		if entracked50J > 0.5*alwaysOnJ {
			res.Notes = append(res.Notes, "SHAPE VIOLATION: expected well under half of always-on energy")
		}
	}
	return res, nil
}

// runE6Policy executes one policy over the standard pause-and-go trace.
func runE6Policy(seed int64, p e6Policy) (energy.Summary, ErrorStats, error) {
	origin := geo.Point{Lat: 56.1629, Lon: 10.2039}
	tr := trace.PauseAndGo(origin, seed, 4, 400, 1.4, 3*time.Minute, time.Second)
	acct := energy.NewAccountant(energy.DefaultModel())

	var opts []gps.ReceiverOption
	opts = append(opts, gps.WithTick(acct.Tick))
	if p.startOff {
		opts = append(opts, gps.StartOff())
	}
	recv := gps.NewReceiver("gps", tr,
		gps.Config{Seed: seed + 5, ColdStart: 15 * time.Second, WarmStart: 5 * time.Second}, opts...)

	g := core.New()
	comps := []core.Component{recv, gps.NewParser("parser"), gps.NewInterpreter("interpreter", 0)}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return energy.Summary{}, ErrorStats{}, err
		}
	}
	sink := core.NewSink("server", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		return energy.Summary{}, ErrorStats{}, err
	}
	for _, c := range []struct{ from, to string }{
		{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "server"},
	} {
		if err := g.Connect(c.from, c.to, 0); err != nil {
			return energy.Summary{}, ErrorStats{}, err
		}
	}

	layer := channel.NewLayer(g)
	defer layer.Close()
	ch, ok := layer.ChannelInto("server", 0)
	if !ok {
		return energy.Summary{}, ErrorStats{}, fmt.Errorf("no channel into server")
	}

	var reports func() []positioning.Position
	switch {
	case p.threshold > 0:
		recvNode, _ := g.Node("gps")
		strat := energy.NewPowerStrategy(energy.PowerStrategyConfig{
			Threshold: p.threshold,
			Warmup:    6 * time.Second,
		})
		if err := recvNode.AttachFeature(strat); err != nil {
			return energy.Summary{}, ErrorStats{}, err
		}
		ent := energy.NewEnTrackedFeature(acct)
		if err := ch.AttachFeature(ent); err != nil {
			return energy.Summary{}, ErrorStats{}, err
		}
		got, ok := ch.Feature(energy.FeaturePowerStrategy)
		if !ok {
			return energy.Summary{}, ErrorStats{}, fmt.Errorf("power strategy not visible")
		}
		ent.Connect(got.(energy.StrategyControl))
		reports = ent.Reports
	case p.period > 0:
		recvNode, _ := g.Node("gps")
		strat := energy.NewPeriodicStrategy(p.period, 6*time.Second)
		if err := recvNode.AttachFeature(strat); err != nil {
			return energy.Summary{}, ErrorStats{}, err
		}
		rep := energy.NewReporterFeature(acct, strat)
		if err := ch.AttachFeature(rep); err != nil {
			return energy.Summary{}, ErrorStats{}, err
		}
		recv.PowerOn()
		reports = rep.Reports
	default:
		rep := energy.NewReporterFeature(acct, nil)
		if err := ch.AttachFeature(rep); err != nil {
			return energy.Summary{}, ErrorStats{}, err
		}
		reports = rep.Reports
	}

	if _, err := g.Run(0); err != nil {
		return energy.Summary{}, ErrorStats{}, err
	}
	errs := TrackingError(tr, reports())
	return acct.Summary(), Stats(errs), nil
}
