// Package eval is the experiment harness: it rebuilds each evaluation
// artifact of the paper (DESIGN.md §4, experiments E1–E8) on the
// simulated substrates and renders the tables recorded in
// EXPERIMENTS.md. Every experiment is deterministic given its seed.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"perpos/internal/geo"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// ErrorStats summarises a sample of positioning errors.
type ErrorStats struct {
	N      int
	Mean   float64
	Median float64
	P95    float64
	RMSE   float64
	Max    float64
}

// Stats computes ErrorStats over errs (metres).
func Stats(errs []float64) ErrorStats {
	if len(errs) == 0 {
		return ErrorStats{}
	}
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, e := range sorted {
		sum += e
		sumSq += e * e
	}
	return ErrorStats{
		N:      len(sorted),
		Mean:   sum / float64(len(sorted)),
		Median: quantile(sorted, 0.5),
		P95:    quantile(sorted, 0.95),
		RMSE:   math.Sqrt(sumSq / float64(len(sorted))),
		Max:    sorted[len(sorted)-1],
	}
}

// quantile returns the q-quantile of sorted values by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	f := pos - float64(lo)
	return sorted[lo]*(1-f) + sorted[hi]*f
}

// CDF returns (value, cumulative fraction) pairs at the given
// probability steps — the series behind error-CDF figures.
func CDF(errs []float64, steps int) [][2]float64 {
	if len(errs) == 0 || steps <= 0 {
		return nil
	}
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	out := make([][2]float64, 0, steps+1)
	for i := 0; i <= steps; i++ {
		q := float64(i) / float64(steps)
		out = append(out, [2]float64{quantile(sorted, q), q})
	}
	return out
}

// TrackingError samples, once per second, the distance between the
// ground truth and the most recent reported position — the server-side
// view of a tracked target used by the EnTracked experiments.
func TrackingError(tr *trace.Trace, reports []positioning.Position) []float64 {
	if len(reports) == 0 || tr.Len() == 0 {
		return nil
	}
	proj := geo.NewProjection(tr.Origin)
	var out []float64
	ri := -1
	for ts := tr.Points[0].Time; !ts.After(tr.Points[tr.Len()-1].Time); ts = ts.Add(time.Second) {
		for ri+1 < len(reports) && !reports[ri+1].Time.After(ts) {
			ri++
		}
		if ri < 0 {
			continue
		}
		truth, _ := tr.At(ts)
		out = append(out, proj.ToLocal(reports[ri].Global).Distance(truth.Local))
	}
	return out
}

// PositionErrors computes per-report errors against ground truth.
func PositionErrors(tr *trace.Trace, reports []positioning.Position) []float64 {
	proj := geo.NewProjection(tr.Origin)
	out := make([]float64, 0, len(reports))
	for _, pos := range reports {
		truth, ok := tr.At(pos.Time)
		if !ok {
			continue
		}
		local := pos.Local
		if !pos.HasLocal {
			local = proj.ToLocal(pos.Global)
		}
		out = append(out, local.Distance(truth.Local))
	}
	return out
}

// Result is one experiment's rendered outcome.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Samples counts the positioning samples the experiment processed
	// (0 when the experiment doesn't track a sample count) — the basis
	// for throughput reporting in perpos-bench -json.
	Samples int
}

// Table renders the result as an aligned text table.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
