package eval

import (
	"fmt"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/trace"
	"perpos/internal/transport"
)

// E9Config parameterizes the transportation-mode experiment.
type E9Config struct {
	Seed int64
}

func (c E9Config) withDefaults() E9Config {
	if c.Seed == 0 {
		c.Seed = 100
	}
	return c
}

// RunE9 evaluates the transportation-mode reasoning pipeline the paper
// cites as a motivating application ([4]: segmentation, feature
// extraction, decision-tree classification, HMM post-processing),
// built entirely from Processing Components. The ablation compares the
// raw classifier with the HMM-smoothed output: the HMM must raise
// accuracy and cut mode flicker.
func RunE9(cfg E9Config) (Result, error) {
	cfg = cfg.withDefaults()
	origin := geo.Point{Lat: 56.1629, Lon: 10.2039}

	run := func(withHMM bool, seed int64) (acc float64, transitions int, segments int, err error) {
		tr := trace.Multimodal(origin, seed, time.Second)
		g := core.New()
		comps := []core.Component{
			gps.NewReceiver("gps", tr, gps.Config{Seed: seed + 1, ColdStart: 2 * time.Second}),
			gps.NewParser("parser"),
			gps.NewInterpreter("interpreter", 0),
			transport.NewSegmenter("segmenter", 30*time.Second),
			transport.NewFeatureExtractor("features"),
			transport.NewClassifier("classifier"),
		}
		order := []string{"gps", "parser", "interpreter", "segmenter", "features", "classifier"}
		if withHMM {
			comps = append(comps, transport.NewHMMSmoother("hmm", 0))
			order = append(order, "hmm")
		}
		sink := core.NewSink("app", []core.Kind{transport.KindMode})
		comps = append(comps, sink)
		order = append(order, "app")
		for _, c := range comps {
			if _, aerr := g.Add(c); aerr != nil {
				return 0, 0, 0, aerr
			}
		}
		for i := 0; i < len(order)-1; i++ {
			if cerr := g.Connect(order[i], order[i+1], 0); cerr != nil {
				return 0, 0, 0, cerr
			}
		}
		if _, rerr := g.Run(0); rerr != nil {
			return 0, 0, 0, rerr
		}

		var hits, total int
		var last transport.Mode
		for _, s := range sink.Received() {
			est, ok := s.Payload.(transport.ModeEstimate)
			if !ok {
				continue
			}
			mid := est.Start.Add(est.End.Sub(est.Start) / 2)
			truth, found := tr.At(mid)
			if !found || truth.Mode == "" {
				continue
			}
			total++
			if est.Mode.String() == truth.Mode {
				hits++
			}
			if last != 0 && est.Mode != last {
				transitions++
			}
			last = est.Mode
		}
		if total == 0 {
			return 0, 0, 0, fmt.Errorf("no scored segments")
		}
		return float64(hits) / float64(total), transitions, total, nil
	}

	// Average over several trace seeds: single runs are dominated by
	// where the blips happen to fall.
	const runs = 5
	var rawAcc, hmmAcc float64
	var rawTrans, hmmTrans, segments int
	for i := int64(0); i < runs; i++ {
		a, tr1, seg, err := run(false, cfg.Seed+i*17)
		if err != nil {
			return Result{}, err
		}
		rawAcc += a / runs
		rawTrans += tr1
		segments += seg
		a, tr2, _, err := run(true, cfg.Seed+i*17)
		if err != nil {
			return Result{}, err
		}
		hmmAcc += a / runs
		hmmTrans += tr2
	}

	// Each trace has 5 true mode transitions (still-walk-bike-drive-
	// walk-still).
	const trueTransitions = 5 * runs

	res := Result{
		ID:     "E9",
		Title:  "Transportation-mode pipeline: classifier vs HMM post-processing ([4])",
		Header: []string{"pipeline", "segments", "accuracy", "mode transitions"},
		Rows: [][]string{
			{"classifier only", itoa(segments), pct(rawAcc), itoa(rawTrans)},
			{"classifier + HMM", itoa(segments), pct(hmmAcc), itoa(hmmTrans)},
			{"ground truth", itoa(segments), "100%", itoa(trueTransitions)},
		},
	}
	if hmmAcc < rawAcc {
		res.Notes = append(res.Notes, "SHAPE VIOLATION: HMM lowered accuracy")
	}
	if hmmTrans > rawTrans {
		res.Notes = append(res.Notes, "SHAPE VIOLATION: HMM increased flicker")
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"HMM post-processing: accuracy %s -> %s, transitions %d -> %d (true: %d)",
		pct(rawAcc), pct(hmmAcc), rawTrans, hmmTrans, trueTransitions))
	return res, nil
}
