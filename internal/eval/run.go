package eval

import (
	"fmt"
	"sort"
	"strconv"
)

// Runner executes one experiment with default configuration.
type Runner func() (Result, error)

// Experiments maps experiment IDs to their runners with default
// configurations — the per-experiment index of DESIGN.md §4.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"E1":  func() (Result, error) { return RunE1(E1Config{}) },
		"E2":  RunE2,
		"E3":  RunE3,
		"E4":  func() (Result, error) { return RunE4(E4Config{}) },
		"E5":  func() (Result, error) { return RunE5(E5Config{}) },
		"E6":  func() (Result, error) { return RunE6(E6Config{}) },
		"E7":  func() (Result, error) { return RunE7(E7Config{}) },
		"E8":  func() (Result, error) { return RunE8(E8Config{}) },
		"E9":  func() (Result, error) { return RunE9(E9Config{}) },
		"E10": func() (Result, error) { return RunE10(E10Config{}) },
	}
}

// IDs returns the experiment IDs in numeric order (E1, E2, ..., E10).
func IDs() []string {
	exps := Experiments()
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, _ := strconv.Atoi(ids[i][1:])
		b, _ := strconv.Atoi(ids[j][1:])
		return a < b
	})
	return ids
}

// RunAll executes every experiment and returns the results in ID order.
func RunAll() ([]Result, error) {
	exps := Experiments()
	var out []Result
	for _, id := range IDs() {
		r, err := exps[id]()
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
