package eval

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"perpos/internal/geo"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

func TestStats(t *testing.T) {
	s := Stats([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Max != 5 {
		t.Errorf("Stats = %+v", s)
	}
	if math.Abs(s.RMSE-math.Sqrt(11)) > 1e-9 {
		t.Errorf("RMSE = %v, want sqrt(11)", s.RMSE)
	}
	if s.P95 < 4.5 || s.P95 > 5 {
		t.Errorf("P95 = %v", s.P95)
	}
	empty := Stats(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty Stats = %+v", empty)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10}
	if q := quantile(sorted, 0.5); q != 5 {
		t.Errorf("quantile(0.5) = %v, want 5 (interpolated)", q)
	}
	if q := quantile(sorted, 0); q != 0 {
		t.Errorf("quantile(0) = %v", q)
	}
	if q := quantile(sorted, 1); q != 10 {
		t.Errorf("quantile(1) = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("quantile(nil) = %v", q)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4}, 4)
	if len(cdf) != 5 {
		t.Fatalf("CDF = %d points", len(cdf))
	}
	if cdf[0][0] != 1 || cdf[0][1] != 0 {
		t.Errorf("first = %v", cdf[0])
	}
	if cdf[4][0] != 4 || cdf[4][1] != 1 {
		t.Errorf("last = %v", cdf[4])
	}
	if CDF(nil, 4) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestTrackingErrorStaleReports(t *testing.T) {
	origin := geo.Point{Lat: 56.16, Lon: 10.2}
	proj := geo.NewProjection(origin)
	start := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	// Target walks east 1 m/s for 100 s; a single report at t=0.
	tr := &trace.Trace{Origin: origin}
	for i := 0; i <= 100; i++ {
		tr.Points = append(tr.Points, trace.Point{
			Time:  start.Add(time.Duration(i) * time.Second),
			Local: geo.ENU{East: float64(i)},
		})
	}
	reports := []positioning.Position{{Time: start, Global: proj.ToGlobal(geo.ENU{})}}
	errs := TrackingError(tr, reports)
	if len(errs) != 101 {
		t.Fatalf("errs = %d, want 101", len(errs))
	}
	// The error grows linearly to ~100 m.
	if errs[0] > 0.5 || math.Abs(errs[100]-100) > 1 {
		t.Errorf("errs[0]=%v errs[100]=%v", errs[0], errs[100])
	}
	if TrackingError(tr, nil) != nil {
		t.Error("no reports should yield nil")
	}
}

func TestResultTable(t *testing.T) {
	r := Result{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"longer", "x"}},
		Notes:  []string{"a note"},
	}
	tbl := r.Table()
	for _, want := range []string{"== EX: demo ==", "a note", "longer"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func getRow(t *testing.T, r Result, key string) []string {
	t.Helper()
	for _, row := range r.Rows {
		if row[0] == key {
			return row
		}
	}
	t.Fatalf("%s: no row %q in %v", r.ID, key, r.Rows)
	return nil
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestRunE1Shape(t *testing.T) {
	r, err := RunE1(E1Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "invalid") {
			t.Errorf("note: %s", n)
		}
	}
	outdoorErr := parseF(t, getRow(t, r, "outdoor mean error (m)")[1])
	if outdoorErr <= 0 || outdoorErr > 10 {
		t.Errorf("outdoor mean error = %v, want (0, 10]", outdoorErr)
	}
	roomAcc := parseF(t, getRow(t, r, "indoor room accuracy")[1])
	if roomAcc < 50 {
		t.Errorf("room accuracy = %v%%, want >= 50%%", roomAcc)
	}
	t.Log("\n" + r.Table())
}

func TestRunE2Shape(t *testing.T) {
	r, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) != 0 {
		t.Errorf("structure mismatches: %v", r.Notes)
	}
	t.Log("\n" + r.Table())
}

func TestRunE3Shape(t *testing.T) {
	r, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	layered := parseF(t, getRow(t, r, "trees with 3 layers")[1])
	if layered < 90 {
		t.Errorf("3-layer trees = %v%%, want >= 90%%", layered)
	}
	raws := parseF(t, getRow(t, r, "mean raw strings per tree")[1])
	if raws < 2 {
		t.Errorf("raw strings per tree = %v, want >= 2 (GGA+RMC+GSA grouped)", raws)
	}
	t.Log("\n" + r.Table())
}

func TestRunE4Shape(t *testing.T) {
	r, err := RunE4(E4Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "leaked") || strings.Contains(n, "did not reduce") {
			t.Errorf("shape violation: %s", n)
		}
	}
	withRow := getRow(t, r, "with filter")
	withoutRow := getRow(t, r, "without filter")
	if parseF(t, withRow[3]) >= parseF(t, withoutRow[3]) {
		t.Errorf("filter mean error %s !< unfiltered %s", withRow[3], withoutRow[3])
	}
	if parseF(t, withRow[2]) != 0 {
		t.Errorf("low-sat fixes leaked: %s", withRow[2])
	}
	t.Log("\n" + r.Table())
}

func TestRunE5Shape(t *testing.T) {
	r, err := RunE5(E5Config{Series: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "SHAPE VIOLATION") {
			t.Error(n)
		}
	}
	var raw, pf float64
	for _, row := range r.Rows {
		switch row[0] {
		case "raw gps":
			raw = parseF(t, row[5])
		case "particle filter":
			pf = parseF(t, row[5])
		}
	}
	if pf <= 0 || raw/pf < 1.5 {
		t.Errorf("PF improvement %.2fx, want >= 1.5x (raw %.1f, pf %.1f)", raw/pf, raw, pf)
	}
	// Series data present for plotting.
	sawSeries := false
	for _, n := range r.Notes {
		if strings.HasPrefix(n, "series:") {
			sawSeries = true
			break
		}
	}
	if !sawSeries {
		t.Error("no series emitted with Series=true")
	}
	t.Log("\n" + r.Table())
}

func TestRunE6Shape(t *testing.T) {
	r, err := RunE6(E6Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "SHAPE VIOLATION") {
			t.Error(n)
		}
	}
	// Monotonicity: larger EnTracked thresholds must not cost more
	// energy.
	var prevJ float64 = math.Inf(1)
	for _, row := range r.Rows {
		if !strings.HasPrefix(row[0], "entracked") {
			continue
		}
		j := parseF(t, row[1])
		if j > prevJ*1.1 {
			t.Errorf("energy not roughly monotone over thresholds: %s uses %.0f J after %.0f J",
				row[0], j, prevJ)
		}
		prevJ = j
	}
	t.Log("\n" + r.Table())
}

func TestRunE7Shape(t *testing.T) {
	r, err := RunE7(E7Config{Samples: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 variants", len(r.Rows))
	}
	for _, row := range r.Rows {
		if parseF(t, row[3]) <= 0 {
			t.Errorf("non-positive throughput in %v", row)
		}
	}
	t.Log("\n" + r.Table())
}

func TestRunE8Shape(t *testing.T) {
	r, err := RunE8(E8Config{PoolSizes: []int{0, 10, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) != 0 {
		t.Errorf("notes: %v", r.Notes)
	}
	for _, row := range r.Rows {
		if row[3] != "true" {
			t.Errorf("pipeline broken at pool %s", row[0])
		}
		if row[1] != "2" {
			t.Errorf("created %s components at pool %s, want 2", row[1], row[0])
		}
	}
	t.Log("\n" + r.Table())
}

func TestRunE9Shape(t *testing.T) {
	r, err := RunE9(E9Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "SHAPE VIOLATION") {
			t.Error(n)
		}
	}
	var rawTrans, hmmTrans float64
	var rawAcc, hmmAcc float64
	for _, row := range r.Rows {
		switch row[0] {
		case "classifier only":
			rawAcc = parseF(t, row[2])
			rawTrans = parseF(t, row[3])
		case "classifier + HMM":
			hmmAcc = parseF(t, row[2])
			hmmTrans = parseF(t, row[3])
		}
	}
	if hmmAcc < rawAcc {
		t.Errorf("HMM accuracy %.0f%% below classifier %.0f%%", hmmAcc, rawAcc)
	}
	if hmmTrans >= rawTrans/2 {
		t.Errorf("HMM transitions %v not well below classifier flicker %v", hmmTrans, rawTrans)
	}
	t.Log("\n" + r.Table())
}

func TestRunAllAndIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	ids := IDs()
	if len(ids) != 10 || ids[0] != "E1" || ids[9] != "E10" {
		t.Fatalf("IDs = %v", ids)
	}
	results, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Errorf("results = %d", len(results))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Errorf("result %d = %s, want %s", i, r.ID, ids[i])
		}
	}
}

func TestRunE10Shape(t *testing.T) {
	r, err := RunE10(E10Config{Particles: []int{50, 400}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	small := parseF(t, r.Rows[0][2])
	large := parseF(t, r.Rows[1][2])
	// Larger populations must not be dramatically worse.
	if large > small*1.3 {
		t.Errorf("RMSE grew with population: %v -> %v", small, large)
	}
	for _, row := range r.Rows {
		if parseF(t, row[4]) <= 0 {
			t.Errorf("non-positive cost in %v", row)
		}
	}
	t.Log("\n" + r.Table())
}
