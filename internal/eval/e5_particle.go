package eval

import (
	"fmt"
	"time"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// E5Config parameterizes the particle-filter experiment.
type E5Config struct {
	Seed      int64
	Particles int
	// Series, when true, adds the per-step truth/raw/filtered series to
	// the notes (the data behind a Fig. 6 style plot).
	Series bool
}

func (c E5Config) withDefaults() E5Config {
	if c.Seed == 0 {
		c.Seed = 70
	}
	if c.Particles == 0 {
		c.Particles = 400
	}
	return c
}

// RunE5 reproduces §3.2 / Figs. 5–6: the particle filter integrated via
// the middleware's adaptation API (HDOP Component Feature + Likelihood
// Channel Feature + wall constraints), compared against raw GPS and a
// moving-average smoother on an indoor corridor walk.
func RunE5(cfg E5Config) (Result, error) {
	cfg = cfg.withDefaults()
	b := building.Evaluation()

	type variant struct {
		name  string
		build func(g *core.Graph, layer *channel.Layer) (consumerID string, err error)
	}

	variants := []variant{
		{name: "raw gps", build: func(g *core.Graph, _ *channel.Layer) (string, error) {
			return "interpreter", nil
		}},
		{name: "moving average (w=5)", build: func(g *core.Graph, _ *channel.Layer) (string, error) {
			ma := filter.NewMovingAverage("smoother", 5)
			if _, err := g.Add(ma); err != nil {
				return "", err
			}
			if err := g.Disconnect("interpreter", "app", 0); err != nil {
				return "", err
			}
			if err := g.Connect("interpreter", "smoother", 0); err != nil {
				return "", err
			}
			if err := g.Connect("smoother", "app", 0); err != nil {
				return "", err
			}
			return "smoother", nil
		}},
		{name: "kalman (cv)", build: func(g *core.Graph, _ *channel.Layer) (string, error) {
			kf := filter.NewKalmanFilter("kalman", 0.5, b.Projection())
			if _, err := g.Add(kf); err != nil {
				return "", err
			}
			if err := g.Disconnect("interpreter", "app", 0); err != nil {
				return "", err
			}
			if err := g.Connect("interpreter", "kalman", 0); err != nil {
				return "", err
			}
			if err := g.Connect("kalman", "app", 0); err != nil {
				return "", err
			}
			return "kalman", nil
		}},
		{name: "particle filter", build: func(g *core.Graph, layer *channel.Layer) (string, error) {
			pf := filter.NewParticleFilter("particle-filter", b,
				filter.Config{Particles: cfg.Particles, Seed: cfg.Seed + 9})
			if _, err := g.Add(pf); err != nil {
				return "", err
			}
			if err := g.Disconnect("interpreter", "app", 0); err != nil {
				return "", err
			}
			if err := g.Connect("interpreter", "particle-filter", 0); err != nil {
				return "", err
			}
			if err := g.Connect("particle-filter", "app", 0); err != nil {
				return "", err
			}
			layer.Refresh()
			ch, ok := layer.ChannelInto("particle-filter", 0)
			if !ok {
				return "", fmt.Errorf("eval: no channel into particle filter")
			}
			like := filter.NewHDOPLikelihood(0)
			if err := ch.AttachFeature(like); err != nil {
				return "", err
			}
			got, ok := ch.Feature(filter.FeatureLikelihood)
			if !ok {
				return "", fmt.Errorf("eval: likelihood feature not retrievable")
			}
			pf.UseLikelihood(got.(filter.Likelihood))
			return "particle-filter", nil
		}},
	}

	res := Result{
		ID:     "E5",
		Title:  "Particle filter via Channel Feature vs baselines (Figs. 5-6)",
		Header: []string{"estimator", "positions", "mean (m)", "median (m)", "p95 (m)", "rmse (m)"},
	}

	var rawRMSE, pfRMSE float64
	var series []string
	for _, v := range variants {
		tr := trace.CorridorWalk(b, cfg.Seed, 6, time.Second)
		// The Fig. 6 regime: indoors the GPS is very noisy
		// (HDOP-scaled) but not systematically drifting — the seam the
		// particle filter's HDOP likelihood and wall constraints can
		// actually exploit.
		g, layer, sink, err := BuildGPSChannelPipeline(tr, gps.Config{
			Seed:            cfg.Seed + 1,
			IndoorDriftRate: 0.2,
		})
		if err != nil {
			return Result{}, err
		}
		consumerID, err := v.build(g, layer)
		if err != nil {
			layer.Close()
			return Result{}, err
		}
		layer.Refresh()
		if _, err := g.Run(0); err != nil {
			layer.Close()
			return Result{}, err
		}

		var positions []positioning.Position
		for _, s := range sink.Received() {
			if pos, ok := s.Payload.(positioning.Position); ok {
				positions = append(positions, pos)
			}
		}
		stats := Stats(PositionErrors(tr, positions))
		res.Rows = append(res.Rows, []string{
			v.name, itoa(stats.N), f1(stats.Mean), f1(stats.Median), f1(stats.P95), f1(stats.RMSE),
		})
		switch v.name {
		case "raw gps":
			rawRMSE = stats.RMSE
		case "particle filter":
			pfRMSE = stats.RMSE
			if cfg.Series {
				series = e5Series(tr, positions)
			}
		}
		_ = consumerID
		layer.Close()
	}

	if pfRMSE > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("particle filter improves raw GPS RMSE by %.1fx", rawRMSE/pfRMSE))
	}
	if pfRMSE >= rawRMSE {
		res.Notes = append(res.Notes, "SHAPE VIOLATION: particle filter did not beat raw GPS")
	}
	res.Notes = append(res.Notes, series...)
	return res, nil
}

// e5Series renders a truth-vs-estimate series for plotting (Fig. 6's
// blue line data).
func e5Series(tr *trace.Trace, estimates []positioning.Position) []string {
	proj := geo.NewProjection(tr.Origin)
	out := []string{"series: t(s) truthE truthN estE estN err(m)"}
	if tr.Len() == 0 {
		return out
	}
	start := tr.Points[0].Time
	for i, pos := range estimates {
		if i%10 != 0 {
			continue
		}
		truth, ok := tr.At(pos.Time)
		if !ok {
			continue
		}
		local := pos.Local
		if !pos.HasLocal {
			local = proj.ToLocal(pos.Global)
		}
		out = append(out, fmt.Sprintf("series: %.0f %.1f %.1f %.1f %.1f %.1f",
			pos.Time.Sub(start).Seconds(),
			truth.Local.East, truth.Local.North,
			local.East, local.North,
			local.Distance(truth.Local)))
	}
	return out
}
