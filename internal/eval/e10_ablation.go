package eval

import (
	"fmt"
	"time"

	"perpos/internal/building"
	"perpos/internal/filter"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// E10Config parameterizes the particle-count ablation.
type E10Config struct {
	Seed      int64
	Particles []int
}

func (c E10Config) withDefaults() E10Config {
	if c.Seed == 0 {
		c.Seed = 110
	}
	if len(c.Particles) == 0 {
		c.Particles = []int{50, 100, 200, 400, 800, 1600}
	}
	return c
}

// RunE10 sweeps the particle filter's population size over the E5
// scenario — the accuracy/cost design-choice ablation DESIGN.md calls
// out. Expected shape: accuracy improves with population and saturates;
// cost grows linearly.
func RunE10(cfg E10Config) (Result, error) {
	cfg = cfg.withDefaults()
	b := building.Evaluation()

	res := Result{
		ID:     "E10",
		Title:  "Particle-count ablation over the Fig. 6 scenario",
		Header: []string{"particles", "mean (m)", "rmse (m)", "p95 (m)", "us/update"},
	}

	var firstRMSE, lastRMSE float64
	for _, particles := range cfg.Particles {
		tr := trace.CorridorWalk(b, cfg.Seed, 6, time.Second)
		g, layer, sink, err := BuildGPSChannelPipeline(tr, gps.Config{
			Seed:            cfg.Seed + 1,
			IndoorDriftRate: 0.2,
		})
		if err != nil {
			return Result{}, err
		}
		pf := filter.NewParticleFilter("particle-filter", b,
			filter.Config{Particles: particles, Seed: cfg.Seed + 2})
		if _, err := g.Add(pf); err != nil {
			layer.Close()
			return Result{}, err
		}
		if err := g.Disconnect("interpreter", "app", 0); err != nil {
			layer.Close()
			return Result{}, err
		}
		if err := g.Connect("interpreter", "particle-filter", 0); err != nil {
			layer.Close()
			return Result{}, err
		}
		if err := g.Connect("particle-filter", "app", 0); err != nil {
			layer.Close()
			return Result{}, err
		}
		layer.Refresh()
		ch, ok := layer.ChannelInto("particle-filter", 0)
		if !ok {
			layer.Close()
			return Result{}, fmt.Errorf("e10: no channel into the filter")
		}
		like := filter.NewHDOPLikelihood(0)
		if err := ch.AttachFeature(like); err != nil {
			layer.Close()
			return Result{}, err
		}
		pf.UseLikelihood(like)

		start := time.Now()
		if _, err := g.Run(0); err != nil {
			layer.Close()
			return Result{}, err
		}
		elapsed := time.Since(start)
		layer.Close()

		var positions []positioning.Position
		for _, s := range sink.Received() {
			if pos, ok := s.Payload.(positioning.Position); ok {
				positions = append(positions, pos)
			}
		}
		stats := Stats(PositionErrors(tr, positions))
		updates, _, _ := pf.Stats()
		usPerUpdate := 0.0
		if updates > 0 {
			usPerUpdate = float64(elapsed.Microseconds()) / float64(updates)
		}
		res.Rows = append(res.Rows, []string{
			itoa(particles), f1(stats.Mean), f1(stats.RMSE), f1(stats.P95),
			f1(usPerUpdate),
		})
		if firstRMSE == 0 {
			firstRMSE = stats.RMSE
		}
		lastRMSE = stats.RMSE
	}

	if lastRMSE > firstRMSE {
		res.Notes = append(res.Notes,
			"note: accuracy did not improve from smallest to largest population")
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("RMSE %s m at %d particles vs %s m at %d",
			f1(firstRMSE), cfg.Particles[0], f1(lastRMSE), cfg.Particles[len(cfg.Particles)-1]))
	return res, nil
}
