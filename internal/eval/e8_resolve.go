package eval

import (
	"fmt"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/registry"
	"perpos/internal/trace"
)

// E8Config parameterizes the dependency-resolution experiment.
type E8Config struct {
	// PoolSizes are the numbers of distractor component types to sweep.
	PoolSizes []int
}

func (c E8Config) withDefaults() E8Config {
	if len(c.PoolSizes) == 0 {
		c.PoolSizes = []int{0, 10, 100, 1000}
	}
	return c
}

// RunE8 measures the OSGi-analog dependency resolution (§2.1): the
// resolver must assemble the Fig. 1 GPS pipeline from declared
// requirements alone, in the presence of growing pools of irrelevant
// registered component types, and the assembled pipeline must work.
func RunE8(cfg E8Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:     "E8",
		Title:  "Declarative assembly: resolution vs registry size (§2.1)",
		Header: []string{"distractor types", "created components", "resolve time", "pipeline works"},
	}

	for _, pool := range cfg.PoolSizes {
		reg := &registry.Registry{}
		// Distractors: kinds nothing requires.
		for i := 0; i < pool; i++ {
			i := i
			err := reg.Register(registry.Registration{
				Name: fmt.Sprintf("Noise%d", i),
				Spec: core.Spec{
					Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{core.Kind(fmt.Sprintf("noise.%d", i))}}},
					Output: core.OutputSpec{Kind: core.Kind(fmt.Sprintf("noise.%d.out", i))},
				},
				New: func(id string) core.Component {
					return core.NewTransform(id, core.Kind(fmt.Sprintf("noise.%d", i)),
						core.Kind(fmt.Sprintf("noise.%d.out", i)),
						func(s core.Sample) (core.Sample, bool) { return s, true })
				},
			})
			if err != nil {
				return Result{}, err
			}
		}
		// The real types.
		if err := reg.Register(registry.Registration{
			Name: "Parser",
			Spec: gps.NewParser("proto").Spec(),
			New:  func(id string) core.Component { return gps.NewParser(id) },
		}); err != nil {
			return Result{}, err
		}
		if err := reg.Register(registry.Registration{
			Name: "Interpreter",
			Spec: gps.NewInterpreter("proto", 0).Spec(),
			New:  func(id string) core.Component { return gps.NewInterpreter(id, 0) },
		}); err != nil {
			return Result{}, err
		}

		g := core.New()
		tr := trace.OutdoorTrack(geo.Point{Lat: 56.16, Lon: 10.2}, 90, 2, 100, 1.4, time.Second)
		if _, err := g.Add(gps.NewReceiver("gps", tr, gps.Config{Seed: 91, ColdStart: time.Second})); err != nil {
			return Result{}, err
		}
		sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
		if _, err := g.Add(sink); err != nil {
			return Result{}, err
		}

		start := time.Now()
		created, err := reg.Resolve(g)
		elapsed := time.Since(start)
		if err != nil {
			return Result{}, fmt.Errorf("resolve with pool %d: %w", pool, err)
		}
		if _, err := g.Run(0); err != nil {
			return Result{}, err
		}
		works := sink.Len() > 0

		res.Rows = append(res.Rows, []string{
			itoa(pool), itoa(len(created)), elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%v", works),
		})
		if !works {
			res.Notes = append(res.Notes,
				fmt.Sprintf("pool %d: assembled pipeline delivered nothing", pool))
		}
	}
	return res, nil
}
