package eval

import (
	"fmt"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

// E1Config parameterizes the Room Number experiment.
type E1Config struct {
	// Seed drives trace and sensor noise.
	Seed int64
	// Approach is the outdoor approach distance in metres.
	Approach float64
}

func (c E1Config) withDefaults() E1Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Approach <= 0 {
		c.Approach = 150
	}
	return c
}

// RunE1 reproduces Fig. 1 and the intro application: a commute trace
// drives both the GPS pipeline (outdoor point on a map) and the WiFi
// pipeline (indoor room highlighting). The application prefers room
// output when the WiFi system delivers it and falls back to GPS
// positions outdoors. Reported: outdoor position error, indoor room
// accuracy, and handover behaviour.
func RunE1(cfg E1Config) (Result, error) {
	cfg = cfg.withDefaults()
	b := building.Evaluation()
	tr := trace.Commute(b, cfg.Seed, cfg.Approach, 500*time.Millisecond)
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: cfg.Seed + 1})

	g := core.New()
	add := func(c core.Component) error {
		_, err := g.Add(c)
		return err
	}
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: cfg.Seed + 2, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		wifi.NewSensor("wifi", network, tr, 2*time.Second, cfg.Seed+3),
		wifi.NewEngine("positioning", db, b, 3),
		wifi.NewResolver("resolver", b),
	}
	for _, c := range comps {
		if err := add(c); err != nil {
			return Result{}, err
		}
	}

	// The application: room IDs from the WiFi branch, WGS84 points from
	// the GPS branch.
	type roomAt struct {
		at   time.Time
		room string
	}
	var rooms []roomAt
	var gpsPositions []positioning.Position
	app := &core.FuncComponent{
		CompID: "app",
		CompSpec: core.Spec{
			Name: "RoomNumberApp",
			Inputs: []core.PortSpec{
				{Name: "gps", Accepts: []core.Kind{positioning.KindPosition}},
				{Name: "room", Accepts: []core.Kind{positioning.KindRoom}},
			},
		},
		Fn: func(port int, in core.Sample, _ core.Emit) error {
			switch port {
			case 0:
				if pos, ok := in.Payload.(positioning.Position); ok {
					gpsPositions = append(gpsPositions, pos)
				}
			case 1:
				if room, ok := in.Payload.(string); ok {
					rooms = append(rooms, roomAt{at: in.Time, room: room})
				}
			}
			return nil
		},
	}
	if err := add(app); err != nil {
		return Result{}, err
	}
	for _, c := range []struct {
		from, to string
		port     int
	}{
		{"gps", "parser", 0},
		{"parser", "interpreter", 0},
		{"interpreter", "app", 0},
		{"wifi", "positioning", 0},
		{"positioning", "resolver", 0},
		{"resolver", "app", 1},
	} {
		if err := g.Connect(c.from, c.to, c.port); err != nil {
			return Result{}, err
		}
	}

	if _, err := g.Run(0); err != nil {
		return Result{}, err
	}

	// Outdoor GPS error: positions while the truth was outdoors.
	proj := geo.NewProjection(tr.Origin)
	var outdoorErrs []float64
	for _, pos := range gpsPositions {
		truth, ok := tr.At(pos.Time)
		if !ok || truth.Indoor {
			continue
		}
		outdoorErrs = append(outdoorErrs, proj.ToLocal(pos.Global).Distance(truth.Local))
	}

	// Indoor room accuracy: room stream vs ground truth.
	var roomHits, roomTotal int
	for _, r := range rooms {
		truth, ok := tr.At(r.at)
		if !ok || !truth.Indoor {
			continue
		}
		roomTotal++
		if truth.RoomID == r.room {
			roomHits++
		}
	}

	// Handover: delay from entering the building until the first room
	// event while indoors. Room events before entering (WiFi heard
	// through the facade) are reported separately — they are a seam of
	// the deployment, not a middleware defect.
	var firstIndoor, firstRoom time.Time
	for _, p := range tr.Points {
		if p.Indoor {
			firstIndoor = p.Time
			break
		}
	}
	var premature int
	for _, r := range rooms {
		if r.at.Before(firstIndoor) {
			premature++
			continue
		}
		if firstRoom.IsZero() {
			firstRoom = r.at
		}
	}

	out := Stats(outdoorErrs)
	res := Result{
		Samples: out.N + len(rooms),
		ID:      "E1",
		Title:  "Room Number application (Fig. 1): GPS outdoors, WiFi room indoors",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"trace duration", tr.Duration().String()},
			{"outdoor GPS fixes", itoa(out.N)},
			{"outdoor mean error (m)", f1(out.Mean)},
			{"outdoor p95 error (m)", f1(out.P95)},
			{"room events", itoa(len(rooms))},
			{"premature room events (outdoor)", itoa(premature)},
			{"indoor room accuracy", pct(safeDiv(roomHits, roomTotal))},
			{"handover delay (s)", f1(firstRoom.Sub(firstIndoor).Seconds())},
		},
	}
	if roomTotal == 0 {
		res.Notes = append(res.Notes, "no indoor room events — experiment invalid")
	}
	if premature > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%d room events fired before entry: WiFi audible through the facade (a seam the app can filter on apCount)", premature))
	}
	return res, nil
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
