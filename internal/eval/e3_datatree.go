package eval

import (
	"fmt"
	"time"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// BuildGPSChannelPipeline assembles the Fig. 4 pipeline — GPS ->
// Parser -> Interpreter -> app — over the given trace, returning the
// graph and channel layer. The HDOP feature is attached so data trees
// carry feature data, as in Fig. 5. Zero fields of cfg take the
// receiver defaults.
func BuildGPSChannelPipeline(tr *trace.Trace, cfg gps.Config) (*core.Graph, *channel.Layer, *core.Sink, error) {
	if cfg.ColdStart == 0 {
		cfg.ColdStart = 2 * time.Second
	}
	g := core.New()
	comps := []core.Component{
		gps.NewReceiver("gps", tr, cfg),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return nil, nil, nil, err
		}
	}
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		return nil, nil, nil, err
	}
	parserNode, _ := g.Node("parser")
	if err := parserNode.AttachFeature(gps.NewHDOPFeature()); err != nil {
		return nil, nil, nil, err
	}
	for _, c := range []struct{ from, to string }{
		{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
	} {
		if err := g.Connect(c.from, c.to, 0); err != nil {
			return nil, nil, nil, err
		}
	}
	layer := channel.NewLayer(g)
	return g, layer, sink, nil
}

// RunE3 reproduces the Fig. 4 data tree for the GPS channel: every
// delivered position groups the NMEA sentences and raw strings that
// produced it, ordered by logical time. Reported: tree shape statistics
// over a full run plus one concrete rendered tree.
func RunE3() (Result, error) {
	b := building.Evaluation()
	tr := trace.CorridorWalk(b, 50, 4, time.Second)
	g, layer, _, err := BuildGPSChannelPipeline(tr, gps.Config{Seed: 51})
	if err != nil {
		return Result{}, err
	}
	defer layer.Close()

	ch, ok := layer.ChannelInto("app", 0)
	if !ok {
		return Result{}, fmt.Errorf("eval: no channel into app")
	}

	var trees, depth3 int
	var sizeSum, rawSum, nmeaSum, hdopSum int
	var example string
	collect := &treeCollector{}
	if err := ch.AttachFeature(collect); err != nil {
		return Result{}, err
	}

	if _, err := g.Run(0); err != nil {
		return Result{}, err
	}

	for _, tree := range collect.trees {
		trees++
		if tree.Depth() == 3 {
			depth3++
		}
		sizeSum += tree.Size()
		rawSum += len(tree.Data(gps.KindRaw))
		nmeaSum += len(tree.Data(gps.KindSentence))
		for _, e := range tree.All() {
			if e.Sample.FromFeature == gps.FeatureHDOP {
				hdopSum++
			}
		}
		if example == "" && tree.Size() >= 6 {
			example = tree.String()
		}
	}
	if trees == 0 {
		return Result{}, fmt.Errorf("eval: no data trees delivered")
	}

	res := Result{
		ID:     "E3",
		Title:  "GPS channel data trees with logical time (Fig. 4)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"channel deliveries (trees)", itoa(trees)},
			{"trees with 3 layers", pct(float64(depth3) / float64(trees))},
			{"mean tree size (elements)", f1(float64(sizeSum) / float64(trees))},
			{"mean raw strings per tree", f1(float64(rawSum) / float64(trees))},
			{"mean NMEA sentences per tree", f1(float64(nmeaSum) / float64(trees))},
			{"feature-data elements total", itoa(hdopSum)},
		},
		Notes: []string{"example tree:\n" + example},
	}
	return res, nil
}

// treeCollector is a channel feature that stores every delivered tree.
// Delivered trees are pool-owned, so each one is detached before being
// retained.
type treeCollector struct {
	trees []*channel.DataTree
}

func (t *treeCollector) FeatureName() string { return "tree-collector" }

func (t *treeCollector) Apply(tree *channel.DataTree) {
	t.trees = append(t.trees, tree.Detach())
}
