package eval

import (
	"fmt"
	"strings"
	"time"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

// BuildFig2 assembles the pipeline of Fig. 2 — GPS -> Parser ->
// Interpreter and WiFi -> Positioning feeding a Particle Filter, whose
// output reaches the application — and returns the graph, the channel
// layer, the particle filter, and the provider the application uses.
// It is shared by E2, E3, E7 and the inspection tooling.
func BuildFig2(seed int64) (*core.Graph, *channel.Layer, *filter.ParticleFilter, *positioning.Provider, error) {
	b := building.Evaluation()
	tr := trace.CorridorWalk(b, seed, 5, time.Second)
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: seed + 1})

	g := core.New()
	pf := filter.NewParticleFilter("particle-filter", b, filter.Config{Particles: 300, Seed: seed + 2})
	// The provider's feature lookup closes over channels assigned once
	// the channel layer exists below.
	var appChannel, gpsChannel *channel.Channel
	providerLookup := func(name string) (any, bool) {
		for _, c := range []*channel.Channel{appChannel, gpsChannel} {
			if c == nil {
				continue
			}
			if f, ok := c.Feature(name); ok {
				return f, true
			}
		}
		return nil, false
	}
	provider := positioning.NewProvider("fused", positioning.ProviderInfo{
		Technology:      "particle-filter",
		TypicalAccuracy: 3,
		RoomLevel:       true,
	}, providerLookup)

	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: seed + 3, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		wifi.NewSensor("wifi", network, tr, 2*time.Second, seed+4),
		wifi.NewEngine("wifi-positioning", db, b, 3),
		pf,
		positioning.NewProviderSink("app", provider),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	parserNode, _ := g.Node("parser")
	if err := parserNode.AttachFeature(gps.NewHDOPFeature()); err != nil {
		return nil, nil, nil, nil, err
	}
	for _, c := range []struct {
		from, to string
		port     int
	}{
		{"gps", "parser", 0},
		{"parser", "interpreter", 0},
		{"interpreter", "particle-filter", 0},
		{"wifi", "wifi-positioning", 0},
		{"wifi-positioning", "particle-filter", 1},
		{"particle-filter", "app", 0},
	} {
		if err := g.Connect(c.from, c.to, c.port); err != nil {
			return nil, nil, nil, nil, err
		}
	}

	layer := channel.NewLayer(g)
	like := filter.NewHDOPLikelihood(0)
	ch, ok := layer.ChannelInto("particle-filter", 0)
	if !ok {
		layer.Close()
		return nil, nil, nil, nil, fmt.Errorf("eval: no GPS channel into the particle filter")
	}
	if err := ch.AttachFeature(like); err != nil {
		layer.Close()
		return nil, nil, nil, nil, err
	}
	pf.UseLikelihood(like)

	// Expose the channels' features at the Positioning Layer through
	// the provider's lookup (assigning the closed-over channels).
	gpsChannel = ch
	appChannel, _ = layer.ChannelInto("app", 0)

	return g, layer, pf, provider, nil
}

// RunE2 verifies the three levels of abstraction of Fig. 2 against the
// structure the figure shows: the PSL component tree, the PCL channel
// view, and the Positioning Layer provider view with features visible
// at the top.
func RunE2() (Result, error) {
	g, layer, _, provider, err := BuildFig2(40)
	if err != nil {
		return Result{}, err
	}
	defer layer.Close()

	psComponents := len(g.Nodes())
	psEdges := len(g.Edges())
	view := layer.View()

	_, likelihoodVisible := provider.Feature(filter.FeatureLikelihood)

	var channelIDs []string
	for _, c := range view.Channels {
		channelIDs = append(channelIDs, c.ID)
	}

	res := Result{
		ID:     "E2",
		Title:  "Three levels of abstraction (Fig. 2)",
		Header: []string{"layer", "element", "value"},
		Rows: [][]string{
			{"PSL", "processing components", itoa(psComponents)},
			{"PSL", "connections", itoa(psEdges)},
			{"PCL", "data sources", strings.Join(view.Sources, ", ")},
			{"PCL", "merge components", strings.Join(view.Merges, ", ")},
			{"PCL", "channels", itoa(len(view.Channels))},
			{"PCL", "channel ids", strings.Join(channelIDs, ", ")},
			{"PL", "provider", provider.Name()},
			{"PL", "likelihood feature visible", fmt.Sprintf("%v", likelihoodVisible)},
		},
	}
	// Structural expectations from the figure.
	if psComponents != 7 {
		res.Notes = append(res.Notes, fmt.Sprintf("expected 7 PSL components, got %d", psComponents))
	}
	if len(view.Sources) != 2 || len(view.Merges) != 1 || len(view.Channels) != 3 {
		res.Notes = append(res.Notes, "PCL view does not match Fig. 2 (2 sources, 1 merge, 3 channels)")
	}
	if !likelihoodVisible {
		res.Notes = append(res.Notes, "likelihood feature not visible at the Positioning Layer")
	}
	return res, nil
}
