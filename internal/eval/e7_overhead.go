package eval

import (
	"context"
	"fmt"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
)

// E7Config parameterizes the overhead ablation.
type E7Config struct {
	// Samples is how many samples to push per configuration.
	Samples int
}

func (c E7Config) withDefaults() E7Config {
	if c.Samples <= 0 {
		c.Samples = 50_000
	}
	return c
}

// noopFeature is a minimal produce hook used to measure per-feature
// cost.
type noopFeature struct{ name string }

func (f noopFeature) FeatureName() string { return f.name }

func (f noopFeature) Produce(out core.Sample) (core.Sample, bool) { return out, true }

// BuildOverheadPipeline assembles source -> a -> b -> sink with the
// given number of no-op features on each transform. It is shared with
// the top-level benchmark harness.
func BuildOverheadPipeline(nSamples, features int) (*core.Graph, *core.Sink, error) {
	g := core.New()
	samples := make([]core.Sample, nSamples)
	base := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := range samples {
		samples[i] = core.NewSample("bench.raw", i, base.Add(time.Duration(i)*time.Millisecond))
	}
	src := &core.SliceSource{CompID: "src", Out: core.OutputSpec{Kind: "bench.raw"}, Samples: samples}
	if _, err := g.Add(src); err != nil {
		return nil, nil, err
	}
	a := core.NewTransform("a", "bench.raw", "bench.mid", func(s core.Sample) (core.Sample, bool) {
		return s, true
	})
	bComp := core.NewTransform("b", "bench.mid", "bench.pos", func(s core.Sample) (core.Sample, bool) {
		return s, true
	})
	if _, err := g.Add(a); err != nil {
		return nil, nil, err
	}
	if _, err := g.Add(bComp); err != nil {
		return nil, nil, err
	}
	sink := core.NewSink("app", []core.Kind{"bench.pos"})
	if _, err := g.Add(sink); err != nil {
		return nil, nil, err
	}
	for _, c := range []struct{ from, to string }{{"src", "a"}, {"a", "b"}, {"b", "app"}} {
		if err := g.Connect(c.from, c.to, 0); err != nil {
			return nil, nil, err
		}
	}
	for _, id := range []string{"a", "b"} {
		node, _ := g.Node(id)
		for i := 0; i < features; i++ {
			if err := node.AttachFeature(noopFeature{name: fmt.Sprintf("noop-%d", i)}); err != nil {
				return nil, nil, err
			}
		}
	}
	return g, sink, nil
}

// RunE7 measures the middleware's translucency overhead: throughput of
// a three-component pipeline under the synchronous and asynchronous
// engines, with 0/1/4 Component Features per component, and with the
// Process Channel Layer's reification on or off. This is the repo's
// ablation for the paper's future-work performance question (§6).
func RunE7(cfg E7Config) (Result, error) {
	cfg = cfg.withDefaults()

	res := Result{
		ID:     "E7",
		Title:  "Translucency overhead ablation (engine x features x reification)",
		Header: []string{"engine", "features", "channel layer", "samples/s", "ns/sample"},
	}

	type variant struct {
		engine   string
		features int
		reify    bool
	}
	var variants []variant
	for _, engine := range []string{"sync", "async"} {
		for _, features := range []int{0, 1, 4} {
			for _, reify := range []bool{false, true} {
				variants = append(variants, variant{engine, features, reify})
			}
		}
	}

	var baseline float64
	for _, v := range variants {
		g, sink, err := BuildOverheadPipeline(cfg.Samples, v.features)
		if err != nil {
			return Result{}, err
		}
		var layer *channel.Layer
		if v.reify {
			layer = channel.NewLayer(g)
		}

		start := time.Now()
		switch v.engine {
		case "sync":
			if _, err := g.Run(0); err != nil {
				return Result{}, err
			}
		case "async":
			r := core.NewRunner(g)
			if err := r.Start(context.Background()); err != nil {
				return Result{}, err
			}
			r.WaitSources()
			if err := r.Stop(); err != nil {
				return Result{}, err
			}
		}
		elapsed := time.Since(start)
		if layer != nil {
			layer.Close()
		}
		if sink.Len() != cfg.Samples {
			return Result{}, fmt.Errorf("e7: sink got %d of %d samples (%+v)", sink.Len(), cfg.Samples, v)
		}

		perSample := float64(elapsed.Nanoseconds()) / float64(cfg.Samples)
		throughput := float64(cfg.Samples) / elapsed.Seconds()
		if v.engine == "sync" && v.features == 0 && !v.reify {
			baseline = perSample
		}
		res.Rows = append(res.Rows, []string{
			v.engine, itoa(v.features), onOff(v.reify),
			fmt.Sprintf("%.0f", throughput), fmt.Sprintf("%.0f", perSample),
		})
	}

	if baseline > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"baseline (sync, 0 features, no reification): %.0f ns/sample", baseline))
	}
	res.Samples = cfg.Samples * len(variants)
	return res, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
