package eval

import (
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// E4Config parameterizes the satellite-filter experiment.
type E4Config struct {
	Seed    int64
	MinSats int
}

func (c E4Config) withDefaults() E4Config {
	if c.Seed == 0 {
		c.Seed = 60
	}
	if c.MinSats == 0 {
		c.MinSats = 6
	}
	return c
}

// RunE4 reproduces §3.1: detecting unreliable GPS readings with the
// NumberOfSatellites Component Feature and an inserted filter
// component. A walk that moves indoors makes the receiver emit
// drifting low-satellite ghost fixes; the experiment compares the
// position stream with and without the filter.
func RunE4(cfg E4Config) (Result, error) {
	cfg = cfg.withDefaults()
	b := building.Evaluation()

	run := func(withFilter bool) (delivered int, unreliable int, stats ErrorStats, err error) {
		// The commute trace walks in from outdoors: good fixes outside,
		// drifting low-satellite ghosts inside — the filter must drop
		// the ghosts and keep the outdoor stream.
		tr := trace.Commute(b, cfg.Seed, 200, 500*time.Millisecond)
		g := core.New()
		comps := []core.Component{
			gps.NewReceiver("gps", tr, gps.Config{Seed: cfg.Seed + 1, ColdStart: 2 * time.Second}),
			gps.NewParser("parser"),
			gps.NewInterpreter("interpreter", 0),
		}
		for _, c := range comps {
			if _, aerr := g.Add(c); aerr != nil {
				return 0, 0, ErrorStats{}, aerr
			}
		}
		sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
		if _, aerr := g.Add(sink); aerr != nil {
			return 0, 0, ErrorStats{}, aerr
		}
		parserNode, _ := g.Node("parser")
		if aerr := parserNode.AttachFeature(gps.NewSatellitesFeature()); aerr != nil {
			return 0, 0, ErrorStats{}, aerr
		}
		for _, c := range []struct{ from, to string }{
			{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
		} {
			if aerr := g.Connect(c.from, c.to, 0); aerr != nil {
				return 0, 0, ErrorStats{}, aerr
			}
		}
		if withFilter {
			// The §3.1 adaptation: splice the filter in after the Parser
			// without touching any component's code.
			if aerr := g.InsertBetween(gps.NewSatelliteFilter("satfilter", cfg.MinSats),
				"parser", "interpreter", 0, 0); aerr != nil {
				return 0, 0, ErrorStats{}, aerr
			}
		}
		if _, rerr := g.Run(0); rerr != nil {
			return 0, 0, ErrorStats{}, rerr
		}

		var positions []positioning.Position
		for _, s := range sink.Received() {
			pos, ok := s.Payload.(positioning.Position)
			if !ok {
				continue
			}
			positions = append(positions, pos)
			if n, ok := s.IntAttr(gps.AttrSatellites); ok && n < cfg.MinSats {
				unreliable++
			}
		}
		errs := PositionErrors(tr, positions)
		return len(positions), unreliable, Stats(errs), nil
	}

	without, unWithout, statsWithout, err := run(false)
	if err != nil {
		return Result{}, err
	}
	with, unWith, statsWith, err := run(true)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:     "E4",
		Title:  "Unreliable-reading filter via NumberOfSatellites feature (§3.1)",
		Header: []string{"pipeline", "fixes delivered", "low-sat fixes", "mean err (m)", "p95 err (m)"},
		Rows: [][]string{
			{"without filter", itoa(without), itoa(unWithout), f1(statsWithout.Mean), f1(statsWithout.P95)},
			{"with filter", itoa(with), itoa(unWith), f1(statsWith.Mean), f1(statsWith.P95)},
		},
	}
	if unWith > 0 {
		res.Notes = append(res.Notes, "filter leaked low-satellite fixes")
	}
	if statsWith.Mean >= statsWithout.Mean {
		res.Notes = append(res.Notes, "filter did not reduce mean error")
	}
	removed := 1 - safeDiv(with, without)
	res.Notes = append(res.Notes,
		"filter removed "+pct(removed)+" of delivered fixes (ghost fixes while indoors)")
	return res, nil
}
