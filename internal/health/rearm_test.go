package health

import (
	"testing"
	"time"

	"perpos/internal/core"
)

// TestWatchdogRearmsAfterProbeRecovery walks the full silence →
// quarantine → half-open probe → recovery → silence cycle while a
// reroute is engaged, and checks the watchdog is armed again after the
// recovery: a second silence must trip the breaker a second time and
// re-engage the reroute. Also pins the OnReroute hook sequence
// (engage, disengage, engage).
func TestWatchdogRearmsAfterProbeRecovery(t *testing.T) {
	g := fusionTestGraph(t)
	now := t0
	m := NewMonitor(Policy{
		MaxConsecutiveErrors: 3,
		Deadlines:            map[string]time.Duration{"wifi": 100 * time.Millisecond},
		RecoveryEmissions:    1,
		ProbeInterval:        10 * time.Millisecond,
	}, WithClock(func() time.Time { return now }))
	adapter := AdapterFunc(func(edit func(*core.Graph) error) error { return edit(g) })
	sup := NewSupervisor(m, adapter, []Reroute{{
		Watch: "wifi",
		Break: core.Edge{From: "fuse", To: "app", Port: 0},
		Make:  core.Edge{From: "gps", To: "app", Port: 0},
	}})
	var reroutes []bool
	sup.OnReroute(func(engaged bool) { reroutes = append(reroutes, engaged) })

	// First output arms the watchdog; within the deadline nothing trips.
	m.Tap("wifi", core.Sample{})
	sup.Sweep(t0.Add(50 * time.Millisecond))
	if sup.Degraded() {
		t.Fatal("degraded before the deadline elapsed")
	}

	// Silence past the deadline: trip #1, reroute engaged.
	sup.Sweep(t0.Add(200 * time.Millisecond))
	if !sup.Degraded() {
		t.Fatal("not degraded after silence past the deadline")
	}
	if hasEdge(g, "fuse", "app") || !hasEdge(g, "gps", "app") {
		t.Fatalf("degraded edges wrong: %v", g.Edges())
	}

	// Half-open probe: one delivery is admitted after ProbeInterval and
	// the node answers with an emission.
	now = t0.Add(220 * time.Millisecond)
	if !m.Allow("wifi") {
		t.Fatal("probe not admitted after ProbeInterval")
	}
	if m.Allow("wifi") {
		t.Fatal("second delivery admitted inside the probe interval")
	}
	m.Tap("wifi", core.Sample{})

	// Recovery sweep: breaker closes, reroute disengages.
	sup.Sweep(t0.Add(230 * time.Millisecond))
	if sup.Degraded() {
		t.Fatal("still degraded after the probe succeeded")
	}
	if !hasEdge(g, "fuse", "app") || hasEdge(g, "gps", "app") {
		t.Fatalf("restored edges wrong: %v", g.Edges())
	}
	if h, _ := m.Health("wifi"); h.Trips != 1 {
		t.Fatalf("trips after recovery = %d, want 1", h.Trips)
	}

	// The watchdog must still be armed: a second silence trips again.
	sup.Sweep(t0.Add(400 * time.Millisecond))
	if !sup.Degraded() {
		t.Fatal("watchdog did not re-arm: second silence left the node healthy")
	}
	if hasEdge(g, "fuse", "app") || !hasEdge(g, "gps", "app") {
		t.Fatalf("re-degraded edges wrong: %v", g.Edges())
	}
	h, _ := m.Health("wifi")
	if h.Trips != 2 {
		t.Errorf("trips = %d, want 2", h.Trips)
	}
	want := []bool{true, false, true}
	if len(reroutes) != len(want) {
		t.Fatalf("reroute hook calls = %v, want %v", reroutes, want)
	}
	for i := range want {
		if reroutes[i] != want[i] {
			t.Fatalf("reroute hook calls = %v, want %v", reroutes, want)
		}
	}
}
