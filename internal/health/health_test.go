package health

import (
	"errors"
	"testing"
	"time"

	"perpos/internal/core"
)

var t0 = time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)

func TestBreakerTripsOnConsecutiveErrors(t *testing.T) {
	m := NewMonitor(Policy{MaxConsecutiveErrors: 3})
	boom := errors.New("boom")
	m.NodeResult("wifi", boom)
	m.NodeResult("wifi", boom)
	if ev := m.Advance(t0); len(ev) != 0 {
		t.Fatalf("tripped after 2 errors: %v", ev)
	}
	m.NodeResult("wifi", boom)
	ev := m.Advance(t0)
	if len(ev) != 1 || ev[0].Up || ev[0].Reason != "errors" {
		t.Fatalf("events = %+v, want one down(errors)", ev)
	}
	if !errors.Is(ev[0].Err, boom) {
		t.Errorf("event error = %v, want the tripping error", ev[0].Err)
	}
	h, ok := m.Health("wifi")
	if !ok || h.State != StateDown || h.Trips != 1 {
		t.Errorf("health = %+v, want down with 1 trip", h)
	}
}

func TestSuccessBreaksTheStreak(t *testing.T) {
	m := NewMonitor(Policy{MaxConsecutiveErrors: 2})
	boom := errors.New("boom")
	m.NodeResult("wifi", boom)
	m.NodeResult("wifi", nil)
	m.NodeResult("wifi", boom)
	if ev := m.Advance(t0); len(ev) != 0 {
		t.Fatalf("tripped on a broken streak: %v", ev)
	}
}

func TestWatchdogTripsOnSilenceOnlyAfterFirstOutput(t *testing.T) {
	m := NewMonitor(Policy{Deadline: time.Second})
	m.Watch("wifi")
	// Never emitted: no deadline, however much time passes (cold start).
	if ev := m.Advance(t0.Add(time.Hour)); len(ev) != 0 {
		t.Fatalf("cold-start watchdog tripped: %v", ev)
	}
	m.Tap("wifi", core.Sample{}) // monitor clock stamps real time here
	h, _ := m.Health("wifi")
	if ev := m.Advance(h.LastOutput.Add(500 * time.Millisecond)); len(ev) != 0 {
		t.Fatalf("tripped within deadline: %v", ev)
	}
	ev := m.Advance(h.LastOutput.Add(2 * time.Second))
	if len(ev) != 1 || ev[0].Up || ev[0].Reason != "silence" {
		t.Fatalf("events = %+v, want one down(silence)", ev)
	}
}

func TestUnwatchedNodesNeverDeadlineTrip(t *testing.T) {
	m := NewMonitor(Policy{Deadline: time.Second})
	m.Tap("lazy", core.Sample{})
	h, _ := m.Health("lazy")
	if ev := m.Advance(h.LastOutput.Add(time.Hour)); len(ev) != 0 {
		t.Fatalf("unwatched node tripped: %v", ev)
	}
}

func TestPerNodeDeadlineOverride(t *testing.T) {
	m := NewMonitor(Policy{
		Deadline:  time.Hour,
		Deadlines: map[string]time.Duration{"wifi": 100 * time.Millisecond},
	})
	m.Tap("wifi", core.Sample{})
	h, _ := m.Health("wifi")
	ev := m.Advance(h.LastOutput.Add(200 * time.Millisecond))
	if len(ev) != 1 || ev[0].Reason != "silence" {
		t.Fatalf("events = %+v, want the per-node deadline to trip", ev)
	}
}

func TestRecoveryNeedsEmissionsAndNoStreak(t *testing.T) {
	m := NewMonitor(Policy{MaxConsecutiveErrors: 1, RecoveryEmissions: 2})
	m.NodeResult("wifi", errors.New("boom"))
	if ev := m.Advance(t0); len(ev) != 1 || ev[0].Up {
		t.Fatalf("setup: want a down event, got %v", ev)
	}
	// One emission: not enough.
	m.Tap("wifi", core.Sample{})
	if ev := m.Advance(t0.Add(time.Second)); len(ev) != 0 {
		t.Fatalf("recovered after 1 emission, want 2: %v", ev)
	}
	// Second emission, but the error streak is still standing — the
	// consecutive counter must be cleared by a success first.
	m.Tap("wifi", core.Sample{})
	if ev := m.Advance(t0.Add(2 * time.Second)); len(ev) != 0 {
		t.Fatalf("recovered with a standing error streak: %v", ev)
	}
	m.NodeResult("wifi", nil)
	ev := m.Advance(t0.Add(3 * time.Second))
	if len(ev) != 1 || !ev[0].Up || ev[0].Reason != "recovered" {
		t.Fatalf("events = %+v, want one up(recovered)", ev)
	}
	if m.AnyDown() {
		t.Error("AnyDown after recovery")
	}
}

func TestGateQuarantinesWithProbes(t *testing.T) {
	now := t0
	m := NewMonitor(
		Policy{MaxConsecutiveErrors: 1, ProbeInterval: time.Second},
		WithClock(func() time.Time { return now }),
	)
	if !m.Allow("wifi") {
		t.Fatal("healthy node gated off")
	}
	m.NodeResult("wifi", errors.New("boom"))
	m.Advance(now)
	if m.Allow("wifi") {
		t.Fatal("quarantined node admitted before the probe interval")
	}
	now = now.Add(2 * time.Second)
	if !m.Allow("wifi") {
		t.Fatal("probe not admitted after the interval")
	}
	if m.Allow("wifi") {
		t.Fatal("second probe admitted immediately — probes must be paced")
	}
}

func TestSupervisorAppliesAndReversesReroute(t *testing.T) {
	g := core.New()
	for _, c := range []core.Component{
		&core.SliceSource{CompID: "gps", Out: core.OutputSpec{Kind: "pos"}},
		&core.SliceSource{CompID: "wifi", Out: core.OutputSpec{Kind: "pos"}},
		&core.FuncComponent{
			CompID: "fuse",
			CompSpec: core.Spec{
				Name: "fuse",
				Inputs: []core.PortSpec{
					{Name: "primary", Accepts: []core.Kind{"pos"}},
					{Name: "secondary", Accepts: []core.Kind{"pos"}},
				},
				Output: core.OutputSpec{Kind: "pos"},
			},
			Fn: func(_ int, in core.Sample, emit core.Emit) error {
				emit(in)
				return nil
			},
		},
		core.NewSink("app", []core.Kind{"pos"}),
	} {
		if _, err := g.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][3]any{{"gps", "fuse", 0}, {"wifi", "fuse", 1}, {"fuse", "app", 0}} {
		if err := g.Connect(e[0].(string), e[1].(string), e[2].(int)); err != nil {
			t.Fatal(err)
		}
	}

	m := NewMonitor(Policy{MaxConsecutiveErrors: 1})
	var edits int
	adapter := AdapterFunc(func(edit func(*core.Graph) error) error {
		edits++
		return edit(g)
	})
	sup := NewSupervisor(m, adapter, []Reroute{{
		Watch: "wifi",
		Break: core.Edge{From: "fuse", To: "app", Port: 0},
		Make:  core.Edge{From: "gps", To: "app", Port: 0},
	}})

	var events []Event
	sup.OnEvent(func(e Event) { events = append(events, e) })

	hasEdge := func(from, to string) bool {
		for _, e := range g.Edges() {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}

	m.NodeResult("wifi", errors.New("boom"))
	sup.Sweep(t0)
	if !sup.Degraded() {
		t.Fatal("not degraded after the breaker opened")
	}
	if hasEdge("fuse", "app") || !hasEdge("gps", "app") {
		t.Fatalf("degraded edges wrong: %v", g.Edges())
	}

	m.NodeResult("wifi", nil)
	m.Tap("wifi", core.Sample{})
	sup.Sweep(t0.Add(time.Second))
	if sup.Degraded() {
		t.Fatal("still degraded after recovery")
	}
	if !hasEdge("fuse", "app") || hasEdge("gps", "app") {
		t.Fatalf("restored edges wrong: %v", g.Edges())
	}
	if edits != 2 {
		t.Errorf("edits = %d, want 2 (degrade + restore)", edits)
	}
	if len(events) != 2 || events[0].Up || !events[1].Up {
		t.Errorf("events = %+v, want [down, up]", events)
	}
}

// fusionTestGraph builds the two-branch fixture the reroute tests share:
// gps and wifi sources feeding a fuse component whose output drains to app.
func fusionTestGraph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.New()
	for _, c := range []core.Component{
		&core.SliceSource{CompID: "gps", Out: core.OutputSpec{Kind: "pos"}},
		&core.SliceSource{CompID: "wifi", Out: core.OutputSpec{Kind: "pos"}},
		&core.FuncComponent{
			CompID: "fuse",
			CompSpec: core.Spec{
				Name: "fuse",
				Inputs: []core.PortSpec{
					{Name: "primary", Accepts: []core.Kind{"pos"}},
					{Name: "secondary", Accepts: []core.Kind{"pos"}},
				},
				Output: core.OutputSpec{Kind: "pos"},
			},
			Fn: func(_ int, in core.Sample, emit core.Emit) error {
				emit(in)
				return nil
			},
		},
		core.NewSink("app", []core.Kind{"pos"}),
	} {
		if _, err := g.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][3]any{{"gps", "fuse", 0}, {"wifi", "fuse", 1}, {"fuse", "app", 0}} {
		if err := g.Connect(e[0].(string), e[1].(string), e[2].(int)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func hasEdge(g *core.Graph, from, to string) bool {
	for _, e := range g.Edges() {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

// Both fusion branches fail at once: the conflict group must engage
// exactly one rule — the lowest priority — and switch directly to the
// other rule when the preferred branch's failure becomes the only one
// left to route around.
func TestSupervisorPriorityOrderedFallback(t *testing.T) {
	g := fusionTestGraph(t)
	m := NewMonitor(Policy{MaxConsecutiveErrors: 1})
	var edits int
	adapter := AdapterFunc(func(edit func(*core.Graph) error) error {
		edits++
		return edit(g)
	})
	fused := core.Edge{From: "fuse", To: "app", Port: 0}
	sup := NewSupervisor(m, adapter, []Reroute{
		{Watch: "wifi", Break: fused, Make: core.Edge{From: "gps", To: "app", Port: 0}, Priority: 0},
		{Watch: "gps", Break: fused, Make: core.Edge{From: "wifi", To: "app", Port: 0}, Priority: 1},
	})

	boom := errors.New("boom")
	m.NodeResult("wifi", boom)
	m.NodeResult("gps", boom)
	if ev := sup.Sweep(t0); len(ev) != 2 {
		t.Fatalf("events = %+v, want both branches down", ev)
	}
	if !sup.Degraded() {
		t.Fatal("not degraded with both branches down")
	}
	if hasEdge(g, "fuse", "app") || !hasEdge(g, "gps", "app") || hasEdge(g, "wifi", "app") {
		t.Fatalf("both-down edges wrong (want priority-0 gps bypass only): %v", g.Edges())
	}
	if edits != 1 {
		t.Fatalf("edits = %d, want a single engage for the whole group", edits)
	}

	// The preferred rule's watch recovers while gps stays down: the group
	// must switch straight to the priority-1 rule in one edit, never
	// touching the broken fused edge in between.
	m.NodeResult("wifi", nil)
	m.Tap("wifi", core.Sample{})
	sup.Sweep(t0.Add(time.Second))
	if !sup.Degraded() {
		t.Fatal("not degraded while gps is still down")
	}
	if hasEdge(g, "fuse", "app") || hasEdge(g, "gps", "app") || !hasEdge(g, "wifi", "app") {
		t.Fatalf("post-switch edges wrong (want wifi bypass only): %v", g.Edges())
	}
	if edits != 2 {
		t.Fatalf("edits = %d, want the switch to be one atomic edit", edits)
	}

	// Full recovery restores the fused edge.
	m.NodeResult("gps", nil)
	m.Tap("gps", core.Sample{})
	sup.Sweep(t0.Add(2 * time.Second))
	if sup.Degraded() {
		t.Fatal("still degraded after full recovery")
	}
	if !hasEdge(g, "fuse", "app") || hasEdge(g, "gps", "app") || hasEdge(g, "wifi", "app") {
		t.Fatalf("restored edges wrong: %v", g.Edges())
	}
	if edits != 3 {
		t.Errorf("edits = %d, want engage + switch + restore", edits)
	}
}

// Equal priorities fall back to declaration order, deterministically:
// every fresh supervisor over the same rule set must pick the same rule
// when both watches are down in the same sweep.
func TestSupervisorTieBreakIsDeclarationOrder(t *testing.T) {
	fused := core.Edge{From: "fuse", To: "app", Port: 0}
	for run := 0; run < 5; run++ {
		g := fusionTestGraph(t)
		m := NewMonitor(Policy{MaxConsecutiveErrors: 1})
		adapter := AdapterFunc(func(edit func(*core.Graph) error) error { return edit(g) })
		sup := NewSupervisor(m, adapter, []Reroute{
			{Watch: "gps", Break: fused, Make: core.Edge{From: "wifi", To: "app", Port: 0}, Priority: 2},
			{Watch: "wifi", Break: fused, Make: core.Edge{From: "gps", To: "app", Port: 0}, Priority: 2},
		})
		boom := errors.New("boom")
		m.NodeResult("gps", boom)
		m.NodeResult("wifi", boom)
		sup.Sweep(t0)
		if !hasEdge(g, "wifi", "app") || hasEdge(g, "gps", "app") || hasEdge(g, "fuse", "app") {
			t.Fatalf("run %d: tie broke to the wrong rule: %v", run, g.Edges())
		}
	}
}

func TestSupervisorReportsFailedReroute(t *testing.T) {
	m := NewMonitor(Policy{MaxConsecutiveErrors: 1})
	adapter := AdapterFunc(func(func(*core.Graph) error) error {
		return errors.New("graph says no")
	})
	sup := NewSupervisor(m, adapter, []Reroute{{Watch: "wifi"}})
	var events []Event
	sup.OnEvent(func(e Event) { events = append(events, e) })
	m.NodeResult("wifi", errors.New("boom"))
	sup.Sweep(t0)
	if len(events) != 1 || events[0].Reason != "reroute-failed" {
		t.Fatalf("events = %+v, want one reroute-failed", events)
	}
	if sup.Degraded() {
		t.Error("Degraded() true after a failed edit")
	}
}

func TestSnapshotSorted(t *testing.T) {
	m := NewMonitor(Policy{})
	m.NodeResult("b", nil)
	m.NodeResult("a", nil)
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Node != "a" || snap[1].Node != "b" {
		t.Fatalf("snapshot = %+v, want sorted [a b]", snap)
	}
}
