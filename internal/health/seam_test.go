package health

import (
	"errors"
	"testing"
	"time"

	"perpos/internal/core"
)

// OnSweep hooks run once per sweep, after reconciliation, in
// registration order.
func TestSupervisorOnSweep(t *testing.T) {
	g := fusionTestGraph(t)
	m := NewMonitor(Policy{MaxConsecutiveErrors: 1})
	adapter := AdapterFunc(func(edit func(*core.Graph) error) error { return edit(g) })
	sup := NewSupervisor(m, adapter, []Reroute{{
		Watch: "wifi",
		Break: core.Edge{From: "fuse", To: "app", Port: 0},
		Make:  core.Edge{From: "gps", To: "app", Port: 0},
	}})

	var order []string
	var stamps []time.Time
	sup.OnSweep(func(now time.Time) {
		order = append(order, "a")
		stamps = append(stamps, now)
		// The hook observes the post-reconcile graph: after the wifi
		// breaker opens, the reroute is already engaged here.
	})
	sup.OnSweep(func(time.Time) { order = append(order, "b") })
	sup.OnSweep(nil) // ignored

	sup.Sweep(t0)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("hook order = %v, want [a b]", order)
	}
	if !stamps[0].Equal(t0) {
		t.Fatalf("hook time = %v, want %v", stamps[0], t0)
	}

	// The hook sees the sweep's own reroute already applied.
	var sawBypass bool
	sup.OnSweep(func(time.Time) { sawBypass = hasEdge(g, "gps", "app") })
	m.NodeResult("wifi", errors.New("boom"))
	sup.Sweep(t0.Add(time.Second))
	if !sawBypass {
		t.Fatal("OnSweep hook ran before the supervisor reconciled its reroutes")
	}
}

// ClaimedEdges must cover both reroutes the supervisor has engaged and
// reroutes it wants (watch down) but has not applied yet — the rules
// engine uses the union to stay out of the supervisor's way.
func TestSupervisorClaimedEdges(t *testing.T) {
	g := fusionTestGraph(t)
	m := NewMonitor(Policy{MaxConsecutiveErrors: 1})
	fail := true
	adapter := AdapterFunc(func(edit func(*core.Graph) error) error {
		if fail {
			return errors.New("blocked")
		}
		return edit(g)
	})
	fused := core.Edge{From: "fuse", To: "app", Port: 0}
	bypass := core.Edge{From: "gps", To: "app", Port: 0}
	sup := NewSupervisor(m, adapter, []Reroute{{Watch: "wifi", Break: fused, Make: bypass}})

	if claimed := sup.ClaimedEdges(nil); len(claimed) != 0 {
		t.Fatalf("claims with everything healthy: %v", claimed)
	}

	// Watch down but the edit failing: the reroute is wanted, not
	// engaged — the edges must be claimed anyway.
	m.NodeResult("wifi", errors.New("boom"))
	sup.Sweep(t0)
	claimed := sup.ClaimedEdges(nil)
	if !containsEdge(claimed, fused) || !containsEdge(claimed, bypass) {
		t.Fatalf("down-watch claims = %v, want both %v and %v", claimed, fused, bypass)
	}

	// Edit now succeeds: engaged reroute keeps the claim.
	fail = false
	sup.Sweep(t0.Add(time.Second))
	if !sup.Degraded() {
		t.Fatal("reroute not engaged after the adapter recovered")
	}
	claimed = sup.ClaimedEdges(claimed[:0])
	if !containsEdge(claimed, fused) || !containsEdge(claimed, bypass) {
		t.Fatalf("engaged claims = %v", claimed)
	}

	// Recovery releases the claim.
	m.NodeResult("wifi", nil)
	m.Tap("wifi", core.Sample{})
	sup.Sweep(t0.Add(2 * time.Second))
	if claimed = sup.ClaimedEdges(claimed[:0]); len(claimed) != 0 {
		t.Fatalf("claims after recovery: %v", claimed)
	}
}

// A reroute whose edit fails must be retried on a later sweep even when
// no breaker transitions again — the window where a rule held the edge
// and then let go arrives between transitions.
func TestSupervisorRetriesFailedRerouteWithoutTransition(t *testing.T) {
	g := fusionTestGraph(t)
	m := NewMonitor(Policy{MaxConsecutiveErrors: 1})
	fail := true
	var edits int
	adapter := AdapterFunc(func(edit func(*core.Graph) error) error {
		edits++
		if fail {
			return errors.New("edge held elsewhere")
		}
		return edit(g)
	})
	sup := NewSupervisor(m, adapter, []Reroute{{
		Watch: "wifi",
		Break: core.Edge{From: "fuse", To: "app", Port: 0},
		Make:  core.Edge{From: "gps", To: "app", Port: 0},
	}})

	m.NodeResult("wifi", errors.New("boom"))
	sup.Sweep(t0)
	if edits != 1 || sup.Degraded() {
		t.Fatalf("edits=%d degraded=%v after failed engage", edits, sup.Degraded())
	}

	// No new breaker events — the sweep must still retry the edit.
	fail = false
	sup.Sweep(t0.Add(time.Second))
	if edits != 2 {
		t.Fatalf("edits = %d, want the failed reroute retried", edits)
	}
	if !sup.Degraded() || !hasEdge(g, "gps", "app") {
		t.Fatalf("reroute not engaged on retry: %v", g.Edges())
	}

	// Converged: further sweeps are edit-free.
	sup.Sweep(t0.Add(2 * time.Second))
	if edits != 2 {
		t.Fatalf("edits = %d after convergence, want no further edits", edits)
	}
}

func containsEdge(edges []core.Edge, e core.Edge) bool {
	for _, have := range edges {
		if have == e {
			return true
		}
	}
	return false
}
