// Package health makes pipelines self-healing: per-node health
// tracking (error/panic rates fed by the runner, a last-output
// watchdog fed by graph taps), a circuit breaker that quarantines a
// persistently failing node, and a Supervisor that reacts to breaker
// transitions with the paper's own adaptation machinery — PSL graph
// manipulation that degrades a fused pipeline to its surviving branch
// and restores the full graph on recovery.
//
// The node state machine:
//
//	            consecutive errors >= MaxConsecutiveErrors
//	            or silence > deadline (watched nodes)
//	  Healthy ────────────────────────────────────────────▶ Down
//	     ▲                                                   │
//	     └───────────────────────────────────────────────────┘
//	            RecoveryEmissions outputs observed
//	            and the error streak broken
//
// While Down, the breaker quarantines the node (the runner's delivery
// gate drops its inbox traffic) except for a half-open probe admitted
// every ProbeInterval — the sample that lets a recovered component
// prove itself. Sources are not gated; a dead source is restarted by
// the runner with exponential backoff instead.
package health

import (
	"errors"
	"sort"
	"sync"
	"time"

	"perpos/internal/core"
)

// State is a node's breaker state.
type State int

const (
	// StateHealthy: the node processes and emits normally.
	StateHealthy State = iota
	// StateDown: the breaker is open — the node is quarantined and a
	// degradation reroute (if configured) is engaged.
	StateDown
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// Event is one node transition observed by the monitor.
type Event struct {
	// Node is the component ID.
	Node string
	// Up is true for Down→Healthy, false for Healthy→Down.
	Up bool
	// Reason explains the transition ("errors", "silence", "recovered",
	// "reroute-failed", "restore-failed").
	Reason string
	// Err carries the triggering error, when there is one.
	Err error
	// At is the transition time (monitor clock).
	At time.Time
}

// Policy tunes supervision. The zero value enables error-rate breaking
// with defaults and no watchdog.
type Policy struct {
	// MaxConsecutiveErrors trips a node's breaker (default 3).
	MaxConsecutiveErrors int
	// Deadline is the default last-output watchdog deadline for
	// watched nodes; 0 disables the default watchdog. A node is only
	// held to its deadline after its first observed output, so cold
	// starts (GPS acquisition) don't false-trip.
	Deadline time.Duration
	// Deadlines overrides the watchdog deadline per node; listing a
	// node here also marks it watched.
	Deadlines map[string]time.Duration
	// RecoveryEmissions is how many outputs a Down node must produce
	// before the breaker closes again (default 1).
	RecoveryEmissions int
	// ProbeInterval paces half-open probes to quarantined non-source
	// nodes (default 500ms).
	ProbeInterval time.Duration
	// Sweep is the supervisor's evaluation period (default 50ms).
	Sweep time.Duration
	// Restart is the runner's backoff policy for Restartable sources.
	Restart core.RestartPolicy
}

func (p Policy) withDefaults() Policy {
	if p.MaxConsecutiveErrors <= 0 {
		p.MaxConsecutiveErrors = 3
	}
	if p.RecoveryEmissions <= 0 {
		p.RecoveryEmissions = 1
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = 500 * time.Millisecond
	}
	if p.Sweep <= 0 {
		p.Sweep = 50 * time.Millisecond
	}
	return p
}

// deadlineFor returns the watchdog deadline for a node (0 = unwatched).
func (p Policy) deadlineFor(node string) time.Duration {
	if d, ok := p.Deadlines[node]; ok {
		return d
	}
	return p.Deadline
}

// NodeHealth is the externally visible health snapshot of one node.
type NodeHealth struct {
	Node              string
	State             State
	Errors            uint64
	Panics            uint64
	Successes         uint64
	Restarts          uint64
	ConsecutiveErrors int
	LastOutput        time.Time
	DownSince         time.Time
	Trips             uint64
}

// nodeState is the monitor's mutable per-node record.
type nodeState struct {
	NodeHealth
	hasOutput     bool
	emissionsDown int       // outputs observed since the breaker opened
	lastProbe     time.Time // last half-open probe admitted while Down
	lastErr       error
	watched       bool // held to a watchdog deadline
}

// Monitor tracks per-node health. It implements core.RunnerObserver
// (error/panic accounting from the engine) and core.DeliveryGate (the
// quarantine), and its Tap method is a core.TapFunc feeding the
// last-output watchdog. All methods are safe for concurrent use.
type Monitor struct {
	mu     sync.Mutex
	policy Policy
	clock  func() time.Time
	nodes  map[string]*nodeState
}

var (
	_ core.RunnerObserver = (*Monitor)(nil)
	_ core.DeliveryGate   = (*Monitor)(nil)
)

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithClock substitutes the monitor clock (tests).
func WithClock(now func() time.Time) MonitorOption {
	return func(m *Monitor) {
		if now != nil {
			m.clock = now
		}
	}
}

// NewMonitor returns a monitor for the given policy.
func NewMonitor(policy Policy, opts ...MonitorOption) *Monitor {
	m := &Monitor{
		policy: policy.withDefaults(),
		clock:  time.Now,
		nodes:  make(map[string]*nodeState),
	}
	for _, opt := range opts {
		opt(m)
	}
	for node := range m.policy.Deadlines {
		m.Watch(node)
	}
	return m
}

// Policy returns the effective (defaulted) policy.
func (m *Monitor) Policy() Policy { return m.policy }

// Watch registers a node for supervision ahead of traffic, arming its
// watchdog deadline (if one is configured). Unwatched nodes are still
// tracked lazily for error rates, but never deadline-tripped.
func (m *Monitor) Watch(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.nodeLocked(node)
	st.watched = true
}

// nodeLocked returns (creating on demand) the node's record.
func (m *Monitor) nodeLocked(node string) *nodeState {
	st, ok := m.nodes[node]
	if !ok {
		st = &nodeState{NodeHealth: NodeHealth{Node: node}}
		m.nodes[node] = st
	}
	return st
}

// NodeResult implements core.RunnerObserver.
func (m *Monitor) NodeResult(node string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.nodeLocked(node)
	if err == nil {
		st.Successes++
		st.ConsecutiveErrors = 0
		st.lastErr = nil
		return
	}
	st.Errors++
	st.ConsecutiveErrors++
	st.lastErr = err
	if errors.Is(err, core.ErrPanicked) {
		st.Panics++
	}
}

// SourceExhausted implements core.RunnerObserver.
func (m *Monitor) SourceExhausted(string) {}

// SourceRestarted implements core.RunnerObserver.
func (m *Monitor) SourceRestarted(node string, _ int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodeLocked(node).Restarts++
}

// Tap is a core.TapFunc: every emission anywhere in the graph stamps
// the emitting node's last-output time and counts toward recovery.
func (m *Monitor) Tap(node string, _ core.Sample) {
	now := m.clock()
	m.mu.Lock()
	st := m.nodeLocked(node)
	st.LastOutput = now
	st.hasOutput = true
	if st.State == StateDown {
		st.emissionsDown++
	}
	m.mu.Unlock()
}

// Allow implements core.DeliveryGate: quarantined nodes receive no
// traffic except a half-open probe every ProbeInterval.
func (m *Monitor) Allow(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.nodes[node]
	if !ok || st.State != StateDown {
		return true
	}
	now := m.clock()
	if now.Sub(st.lastProbe) >= m.policy.ProbeInterval {
		st.lastProbe = now
		return true
	}
	return false
}

// Advance evaluates every node's breaker at the given time and returns
// the transitions that occurred, in node order. The supervisor calls
// this from its sweep loop; tests can drive it directly.
func (m *Monitor) Advance(now time.Time) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var events []Event
	for _, st := range m.nodes {
		switch st.State {
		case StateHealthy:
			if st.ConsecutiveErrors >= m.policy.MaxConsecutiveErrors {
				events = append(events, m.tripLocked(st, now, "errors"))
				continue
			}
			if d := m.policy.deadlineFor(st.Node); d > 0 && st.watched && st.hasOutput &&
				now.Sub(st.LastOutput) > d {
				events = append(events, m.tripLocked(st, now, "silence"))
			}
		case StateDown:
			if st.emissionsDown >= m.policy.RecoveryEmissions && st.ConsecutiveErrors == 0 {
				st.State = StateHealthy
				st.DownSince = time.Time{}
				st.emissionsDown = 0
				events = append(events, Event{Node: st.Node, Up: true, Reason: "recovered", At: now})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Node < events[j].Node })
	return events
}

// tripLocked opens a node's breaker. Called with m.mu held.
func (m *Monitor) tripLocked(st *nodeState, now time.Time, reason string) Event {
	st.State = StateDown
	st.DownSince = now
	st.emissionsDown = 0
	st.lastProbe = now // first probe waits a full interval
	st.Trips++
	return Event{Node: st.Node, Up: false, Reason: reason, Err: st.lastErr, At: now}
}

// Health returns the node's current health snapshot.
func (m *Monitor) Health(node string) (NodeHealth, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.nodes[node]
	if !ok {
		return NodeHealth{}, false
	}
	return st.NodeHealth, true
}

// Snapshot returns every tracked node's health, sorted by node ID.
func (m *Monitor) Snapshot() []NodeHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeHealth, 0, len(m.nodes))
	for _, st := range m.nodes {
		out = append(out, st.NodeHealth)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// AnyDown reports whether any tracked node's breaker is open.
func (m *Monitor) AnyDown() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.nodes {
		if st.State == StateDown {
			return true
		}
	}
	return false
}
