package health

import (
	"context"
	"fmt"
	"sync"
	"time"

	"perpos/internal/core"
)

// Adapter applies a structural edit to a pipeline's graph. The graph is
// frozen while its async runner is active, so the owner (in practice
// runtime.Session) must pause propagation, apply the edit, refresh the
// positioning layer and resume — ApplyEdit encapsulates that dance.
type Adapter interface {
	ApplyEdit(edit func(*core.Graph) error) error
}

// AdapterFunc adapts a function to the Adapter interface.
type AdapterFunc func(edit func(*core.Graph) error) error

// ApplyEdit implements Adapter.
func (f AdapterFunc) ApplyEdit(edit func(*core.Graph) error) error { return f(edit) }

// Reroute is a degradation rule: when the watched node's breaker opens,
// Break is disconnected and Make is connected — the PSL adaptation that
// routes the pipeline around the failed branch. When the node recovers,
// the edit is reversed, restoring the full graph.
//
// Rules sharing the same Break edge form a conflict group: they are
// alternative routings of the same spot in the pipeline, so at most one
// of them is engaged at a time. Within a group the supervisor engages
// the best applicable rule — lowest Priority first, declaration order
// breaking ties — and switches rules atomically when breaker states
// change. That gives multi-failure scenarios a deterministic, ordered
// fallback: with both fusion branches down, the group's top-priority
// rule stays engaged rather than two rules fighting over the edge.
type Reroute struct {
	// Watch is the node whose breaker drives this rule.
	Watch string
	// Break is the edge removed while degraded (typically the failed
	// branch's hand-off into the fusion component, or the fusion
	// component's own output edge). Also the conflict-group key.
	Break core.Edge
	// Make is the edge added while degraded (the surviving branch's
	// bypass to the sink).
	Make core.Edge
	// Priority orders rules within a conflict group: lower engages
	// first when several rules' watches are down simultaneously. Equal
	// priorities fall back to declaration order, so the zero value keeps
	// the pre-priority behaviour deterministic.
	Priority int
}

// Supervisor closes the loop from health monitoring to adaptation: a
// sweep goroutine periodically advances the monitor's breakers, applies
// the configured degradation reroutes through the Adapter, and notifies
// listeners of every transition. Listener callbacks and reroute edits
// run on the supervisor's own goroutine — never on engine goroutines —
// so an edit can safely stop and restart the runner.
type Supervisor struct {
	mon      *Monitor
	adapter  Adapter
	reroutes []Reroute
	groups   [][]int // conflict groups: reroute indexes sharing a Break edge, in declaration order

	mu        sync.Mutex
	engaged   map[int]int // group index → engaged reroute index
	listeners []func(Event)
	onReroute []func(engaged bool)
	onSweep   []func(now time.Time)
	sweepBuf  []func(now time.Time) // reused snapshot; Sweep is single-goroutine
	cancel    context.CancelFunc
	done      chan struct{}
}

// NewSupervisor wires a supervisor over the monitor. adapter may be nil
// when no reroutes are configured. Every watched node named by a
// reroute is pre-registered with the monitor, and rules are partitioned
// into conflict groups by their Break edge.
func NewSupervisor(mon *Monitor, adapter Adapter, reroutes []Reroute) *Supervisor {
	s := &Supervisor{
		mon:      mon,
		adapter:  adapter,
		reroutes: reroutes,
		engaged:  make(map[int]int, len(reroutes)),
	}
	byBreak := make(map[core.Edge]int)
	for i, r := range reroutes {
		mon.Watch(r.Watch)
		gi, ok := byBreak[r.Break]
		if !ok {
			gi = len(s.groups)
			byBreak[r.Break] = gi
			s.groups = append(s.groups, nil)
		}
		s.groups[gi] = append(s.groups[gi], i)
	}
	return s
}

// Monitor returns the underlying monitor.
func (s *Supervisor) Monitor() *Monitor { return s.mon }

// OnEvent registers a listener for node transitions. Register before
// Start; callbacks run serially on the supervisor goroutine (or the
// Sweep caller).
func (s *Supervisor) OnEvent(fn func(Event)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.listeners = append(s.listeners, fn)
	s.mu.Unlock()
}

// OnReroute registers a listener for successful adaptation edits:
// engaged is true when a rule was engaged or switched, false when the
// pristine graph was restored. Unlike OnEvent it fires only when an
// edit actually landed, making it the natural seam for counting
// supervisor churn. Register before Start; callbacks run on the
// supervisor goroutine (or the Sweep caller).
func (s *Supervisor) OnReroute(fn func(engaged bool)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.onReroute = append(s.onReroute, fn)
	s.mu.Unlock()
}

// OnSweep registers a hook that runs at the end of every sweep, after
// breakers have advanced and reroutes have been reconciled — the seam
// the rules engine piggybacks on, so rule evaluation always sees the
// supervisor's claims for the same instant. Hooks run serially on the
// supervisor goroutine (or the Sweep caller) and may apply edits
// through the same adapter. Register before Start.
func (s *Supervisor) OnSweep(fn func(now time.Time)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.onSweep = append(s.onSweep, fn)
	s.mu.Unlock()
}

// ClaimedEdges appends the Break and Make edges of every reroute that
// is currently engaged or whose watched node is down — i.e. every edge
// the supervisor is using, or is about to use, for degradation routing
// — and returns the extended slice. The rules engine calls this each
// sweep to keep declarative adaptations off those edges: supervisor
// edits always win. Pass a reused buffer to avoid allocation; entries
// may repeat.
func (s *Supervisor) ClaimedEdges(buf []core.Edge) []core.Edge {
	s.mu.Lock()
	for _, ri := range s.engaged {
		buf = append(buf, s.reroutes[ri].Break, s.reroutes[ri].Make)
	}
	s.mu.Unlock()
	for _, r := range s.reroutes {
		if h, ok := s.mon.Health(r.Watch); ok && h.State == StateDown {
			buf = append(buf, r.Break, r.Make)
		}
	}
	return buf
}

// Start launches the sweep loop. Stop must be called to release it.
func (s *Supervisor) Start(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done != nil {
		return
	}
	ctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	done := make(chan struct{})
	s.done = done
	period := s.mon.Policy().Sweep
	go func() {
		defer close(done)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-ticker.C:
				s.Sweep(now)
			}
		}
	}()
}

// Stop halts the sweep loop and waits for it to exit.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel, s.done = nil, nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Sweep runs one supervision pass at the given time: advance breakers,
// apply or reverse reroutes for any transitions, notify listeners.
// Exposed so tests (and synchronous drivers) can supervise without the
// background goroutine.
func (s *Supervisor) Sweep(now time.Time) []Event {
	events := s.mon.Advance(now)
	// Reconcile every pass, not only on breaker transitions: an edit
	// that failed earlier (for example because a rules-engine edit
	// still held the edge) is retried on the next sweep even when no
	// breaker moves. When engaged state already matches the desired
	// state this is a cheap no-op scan.
	s.reconcile(events)
	if len(events) > 0 {
		s.mu.Lock()
		listeners := make([]func(Event), len(s.listeners))
		copy(listeners, s.listeners)
		s.mu.Unlock()
		for _, e := range events {
			for _, fn := range listeners {
				fn(e)
			}
		}
	}
	s.mu.Lock()
	s.sweepBuf = append(s.sweepBuf[:0], s.onSweep...)
	hooks := s.sweepBuf
	s.mu.Unlock()
	for _, fn := range hooks {
		fn(now)
	}
	return events
}

// reconcile drives every conflict group toward its desired rule after a
// batch of breaker transitions: the first rule by (Priority, declaration
// order) whose watched node is currently down, or none when all watches
// are healthy. Each group transition — engage, disengage, or a direct
// switch between rules — is applied as a single atomic edit. A failed
// edit annotates the triggering event so listeners see that adaptation
// did not land; the group is retried on the next sweep.
func (s *Supervisor) reconcile(events []Event) {
	if s.adapter == nil {
		return
	}
	for gi, group := range s.groups {
		want := -1
		for _, ri := range group {
			r := s.reroutes[ri]
			h, ok := s.mon.Health(r.Watch)
			if !ok || h.State != StateDown {
				continue
			}
			// Strictly-lower priority wins; ties keep the earlier
			// declaration (group holds indexes in declaration order).
			if want < 0 || r.Priority < s.reroutes[want].Priority {
				want = ri
			}
		}

		s.mu.Lock()
		have, engaged := s.engaged[gi]
		s.mu.Unlock()
		if !engaged {
			have = -1
		}
		if have == want {
			continue
		}

		var edit func(*core.Graph) error
		switch {
		case have < 0: // engage want from the pristine graph
			br, mk := s.reroutes[want].Break, s.reroutes[want].Make
			edit = func(g *core.Graph) error {
				if err := g.Disconnect(br.From, br.To, br.Port); err != nil {
					return err
				}
				return g.Connect(mk.From, mk.To, mk.Port)
			}
		case want < 0: // disengage have, restoring the broken edge
			old, br := s.reroutes[have].Make, s.reroutes[have].Break
			edit = func(g *core.Graph) error {
				if err := g.Disconnect(old.From, old.To, old.Port); err != nil {
					return err
				}
				return g.Connect(br.From, br.To, br.Port)
			}
		default: // switch rules without an intermediate restore
			old, mk := s.reroutes[have].Make, s.reroutes[want].Make
			edit = func(g *core.Graph) error {
				if err := g.Disconnect(old.From, old.To, old.Port); err != nil {
					return err
				}
				return g.Connect(mk.From, mk.To, mk.Port)
			}
		}

		if err := s.adapter.ApplyEdit(edit); err != nil {
			s.annotate(events, group, want >= 0, err)
			continue
		}
		s.mu.Lock()
		if want < 0 {
			delete(s.engaged, gi)
		} else {
			s.engaged[gi] = want
		}
		hooks := make([]func(bool), len(s.onReroute))
		copy(hooks, s.onReroute)
		s.mu.Unlock()
		for _, fn := range hooks {
			fn(want >= 0)
		}
	}
}

// annotate marks the first event from one of the group's watched nodes
// with the edit failure, so the listener batch carries the outcome.
func (s *Supervisor) annotate(events []Event, group []int, engaging bool, err error) {
	watched := make(map[string]bool, len(group))
	for _, ri := range group {
		watched[s.reroutes[ri].Watch] = true
	}
	for i := range events {
		if !watched[events[i].Node] {
			continue
		}
		if engaging {
			events[i].Reason = "reroute-failed"
			events[i].Err = fmt.Errorf("health: degrade %q: %w", events[i].Node, err)
		} else {
			events[i].Reason = "restore-failed"
			events[i].Err = fmt.Errorf("health: restore %q: %w", events[i].Node, err)
		}
		return
	}
}

// Degraded reports whether any reroute is currently engaged.
func (s *Supervisor) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.engaged) > 0
}
