package health

import (
	"context"
	"fmt"
	"sync"
	"time"

	"perpos/internal/core"
)

// Adapter applies a structural edit to a pipeline's graph. The graph is
// frozen while its async runner is active, so the owner (in practice
// runtime.Session) must pause propagation, apply the edit, refresh the
// positioning layer and resume — ApplyEdit encapsulates that dance.
type Adapter interface {
	ApplyEdit(edit func(*core.Graph) error) error
}

// AdapterFunc adapts a function to the Adapter interface.
type AdapterFunc func(edit func(*core.Graph) error) error

// ApplyEdit implements Adapter.
func (f AdapterFunc) ApplyEdit(edit func(*core.Graph) error) error { return f(edit) }

// Reroute is a degradation rule: when the watched node's breaker opens,
// Break is disconnected and Make is connected — the PSL adaptation that
// routes the pipeline around the failed branch. When the node recovers,
// the edit is reversed, restoring the full graph.
type Reroute struct {
	// Watch is the node whose breaker drives this rule.
	Watch string
	// Break is the edge removed while degraded (typically the failed
	// branch's hand-off into the fusion component, or the fusion
	// component's own output edge).
	Break core.Edge
	// Make is the edge added while degraded (the surviving branch's
	// bypass to the sink).
	Make core.Edge
}

// Supervisor closes the loop from health monitoring to adaptation: a
// sweep goroutine periodically advances the monitor's breakers, applies
// the configured degradation reroutes through the Adapter, and notifies
// listeners of every transition. Listener callbacks and reroute edits
// run on the supervisor's own goroutine — never on engine goroutines —
// so an edit can safely stop and restart the runner.
type Supervisor struct {
	mon      *Monitor
	adapter  Adapter
	reroutes []Reroute

	mu        sync.Mutex
	engaged   map[int]bool // reroute index → currently applied
	listeners []func(Event)
	cancel    context.CancelFunc
	done      chan struct{}
}

// NewSupervisor wires a supervisor over the monitor. adapter may be nil
// when no reroutes are configured. Every watched node named by a
// reroute is pre-registered with the monitor.
func NewSupervisor(mon *Monitor, adapter Adapter, reroutes []Reroute) *Supervisor {
	s := &Supervisor{
		mon:      mon,
		adapter:  adapter,
		reroutes: reroutes,
		engaged:  make(map[int]bool, len(reroutes)),
	}
	for _, r := range reroutes {
		mon.Watch(r.Watch)
	}
	return s
}

// Monitor returns the underlying monitor.
func (s *Supervisor) Monitor() *Monitor { return s.mon }

// OnEvent registers a listener for node transitions. Register before
// Start; callbacks run serially on the supervisor goroutine (or the
// Sweep caller).
func (s *Supervisor) OnEvent(fn func(Event)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.listeners = append(s.listeners, fn)
	s.mu.Unlock()
}

// Start launches the sweep loop. Stop must be called to release it.
func (s *Supervisor) Start(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done != nil {
		return
	}
	ctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	done := make(chan struct{})
	s.done = done
	period := s.mon.Policy().Sweep
	go func() {
		defer close(done)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-ticker.C:
				s.Sweep(now)
			}
		}
	}()
}

// Stop halts the sweep loop and waits for it to exit.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel, s.done = nil, nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Sweep runs one supervision pass at the given time: advance breakers,
// apply or reverse reroutes for any transitions, notify listeners.
// Exposed so tests (and synchronous drivers) can supervise without the
// background goroutine.
func (s *Supervisor) Sweep(now time.Time) []Event {
	events := s.mon.Advance(now)
	for i := range events {
		s.apply(&events[i])
	}
	if len(events) > 0 {
		s.mu.Lock()
		listeners := make([]func(Event), len(s.listeners))
		copy(listeners, s.listeners)
		s.mu.Unlock()
		for _, e := range events {
			for _, fn := range listeners {
				fn(e)
			}
		}
	}
	return events
}

// apply engages or disengages the reroutes watching the transitioned
// node. A failed edit downgrades the event's Reason so listeners see
// that adaptation did not land.
func (s *Supervisor) apply(e *Event) {
	if s.adapter == nil {
		return
	}
	for i, r := range s.reroutes {
		if r.Watch != e.Node {
			continue
		}
		s.mu.Lock()
		engaged := s.engaged[i]
		s.mu.Unlock()
		switch {
		case !e.Up && !engaged:
			err := s.adapter.ApplyEdit(func(g *core.Graph) error {
				if derr := g.Disconnect(r.Break.From, r.Break.To, r.Break.Port); derr != nil {
					return derr
				}
				return g.Connect(r.Make.From, r.Make.To, r.Make.Port)
			})
			if err != nil {
				e.Reason = "reroute-failed"
				e.Err = fmt.Errorf("health: degrade %q: %w", e.Node, err)
				continue
			}
			s.mu.Lock()
			s.engaged[i] = true
			s.mu.Unlock()
		case e.Up && engaged:
			err := s.adapter.ApplyEdit(func(g *core.Graph) error {
				if derr := g.Disconnect(r.Make.From, r.Make.To, r.Make.Port); derr != nil {
					return derr
				}
				return g.Connect(r.Break.From, r.Break.To, r.Break.Port)
			})
			if err != nil {
				e.Reason = "restore-failed"
				e.Err = fmt.Errorf("health: restore %q: %w", e.Node, err)
				continue
			}
			s.mu.Lock()
			s.engaged[i] = false
			s.mu.Unlock()
		}
	}
}

// Degraded reports whether any reroute is currently engaged.
func (s *Supervisor) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, on := range s.engaged {
		if on {
			return true
		}
	}
	return false
}
