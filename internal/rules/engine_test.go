package rules

import (
	"errors"
	"strings"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/health"
)

// fakeAction counts Apply/Revert calls and can be told to fail either.
type fakeAction struct {
	edges     []core.Edge
	applies   int
	reverts   int
	failApply error
	failRevrt error
}

func (a *fakeAction) Describe() string   { return "fake" }
func (a *fakeAction) Edges() []core.Edge { return a.edges }
func (a *fakeAction) Apply(*core.Graph) error {
	a.applies++
	return a.failApply
}
func (a *fakeAction) Revert(*core.Graph) error {
	a.reverts++
	return a.failRevrt
}

// passAdapter runs the edit against a nil graph — fakeAction ignores it.
var passAdapter = health.AdapterFunc(func(edit func(*core.Graph) error) error { return edit(nil) })

// fakeClaimer returns a fixed claimed-edge set.
type fakeClaimer struct{ edges []core.Edge }

func (c *fakeClaimer) ClaimedEdges(buf []core.Edge) []core.Edge {
	return append(buf, c.edges...)
}

// feed pushes an attribute observation into the engine's probes.
func feed(e *Engine, node, key string, v float64) {
	s := core.NewSample(core.KindAny, nil, time.Time{}).WithAttr(key, v)
	e.Tap(node, s)
}

func newTestEngine(t *testing.T, rs []Rule, cfg Config) *Engine {
	t.Helper()
	cfg.Rules = rs
	if cfg.Adapter == nil {
		cfg.Adapter = passAdapter
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestEngineHysteresis(t *testing.T) {
	act := &fakeAction{}
	rs := []Rule{{
		Name:           "r",
		When:           Condition{Signal: "attr:hdop", Op: OpGT, Value: 4},
		ClearWhen:      &Condition{Signal: "attr:hdop", Op: OpLT, Value: 2.5},
		EngageAfter:    100 * time.Millisecond,
		DisengageAfter: 100 * time.Millisecond,
		Cooldown:       time.Millisecond,
		Action:         act,
	}}
	e := newTestEngine(t, rs, Config{})
	if !e.NeedsTap() {
		t.Fatal("attr rule must need a tap")
	}
	now := time.Unix(0, 0)

	// Unknown signal: no engagement no matter how long we sweep.
	for i := 0; i < 100; i++ {
		now = now.Add(10 * time.Millisecond)
		e.Sweep(now)
	}
	if act.applies != 0 {
		t.Fatalf("engaged on unknown signal: %d applies", act.applies)
	}

	// Degraded signal: engages only after the dwell.
	feed(e, "parser", "hdop", 9.9)
	now = now.Add(time.Millisecond)
	e.Sweep(now) // anchors condSince
	if e.Engaged("r") {
		t.Fatal("engaged before dwell")
	}
	now = now.Add(100 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") || act.applies != 1 {
		t.Fatalf("want engaged after dwell, applies=%d", act.applies)
	}

	// Signal inside the hysteresis band (below engage, above clear):
	// stays engaged forever.
	feed(e, "parser", "hdop", 3.5)
	for i := 0; i < 100; i++ {
		now = now.Add(10 * time.Millisecond)
		e.Sweep(now)
	}
	if !e.Engaged("r") {
		t.Fatal("disengaged inside the hysteresis band")
	}

	// Recovered below the clear threshold: disengages after its dwell.
	feed(e, "parser", "hdop", 1.0)
	now = now.Add(time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("disengaged before clear dwell")
	}
	now = now.Add(100 * time.Millisecond)
	e.Sweep(now)
	if e.Engaged("r") || act.reverts != 1 {
		t.Fatalf("want disengaged after clear dwell, reverts=%d", act.reverts)
	}

	st := e.Status()[0]
	if st.Engagements != 1 || st.Disengagements != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestEngineDefaultClearRequiresSignal(t *testing.T) {
	// With no explicit ClearWhen the clear condition is ¬When — but an
	// errors: signal for a node the monitor has never seen is unknown,
	// so an engaged rule must NOT disengage just because the signal
	// disappeared.
	act := &fakeAction{}
	rs := []Rule{{
		Name:   "r",
		When:   Condition{Signal: "attr:x", Op: OpGT, Value: 1},
		Action: act,
	}}
	e := newTestEngine(t, rs, Config{})
	now := time.Unix(0, 0)
	feed(e, "n", "x", 5)
	e.Sweep(now)
	now = now.Add(time.Millisecond)
	e.Sweep(now) // EngageAfter 0 → engages on the second sweep
	if !e.Engaged("r") {
		t.Fatal("not engaged")
	}
	// The probe keeps its last value (5 > 1), so ¬When is false: the
	// rule stays engaged across any number of sweeps.
	for i := 0; i < 50; i++ {
		now = now.Add(100 * time.Millisecond)
		e.Sweep(now)
	}
	if !e.Engaged("r") {
		t.Fatal("disengaged while When still held")
	}
	// Value drops: default clear holds, disengage after the dwell.
	feed(e, "n", "x", 0)
	now = now.Add(time.Millisecond)
	e.Sweep(now)
	now = now.Add(DefaultDisengageAfter)
	e.Sweep(now)
	if e.Engaged("r") {
		t.Fatal("still engaged after default clear dwell")
	}
}

func TestEngineCooldown(t *testing.T) {
	act := &fakeAction{}
	rs := []Rule{{
		Name:           "r",
		When:           Condition{Signal: "attr:x", Op: OpGT, Value: 1},
		EngageAfter:    time.Millisecond,
		DisengageAfter: time.Millisecond,
		Cooldown:       5 * time.Second,
		MaxFlaps:       100, // keep flap damping out of this test
		Action:         act,
	}}
	e := newTestEngine(t, rs, Config{})
	now := time.Unix(0, 0)
	feed(e, "n", "x", 5)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("not engaged")
	}
	feed(e, "n", "x", 0)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if e.Engaged("r") {
		t.Fatal("not disengaged")
	}
	// Condition returns immediately — but cooldown blocks re-engagement.
	feed(e, "n", "x", 5)
	for i := 0; i < 10; i++ {
		now = now.Add(10 * time.Millisecond)
		e.Sweep(now)
	}
	if e.Engaged("r") {
		t.Fatal("re-engaged inside cooldown")
	}
	now = now.Add(5 * time.Second)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("did not re-engage after cooldown")
	}
}

func TestEngineFlapQuarantine(t *testing.T) {
	act := &fakeAction{}
	rs := []Rule{{
		Name:           "r",
		When:           Condition{Signal: "attr:x", Op: OpGT, Value: 1},
		EngageAfter:    time.Millisecond,
		DisengageAfter: time.Millisecond,
		Cooldown:       time.Millisecond,
		MaxFlaps:       3,
		FlapWindow:     time.Minute,
		QuarantineFor:  30 * time.Second,
		Action:         act,
	}}
	e := newTestEngine(t, rs, Config{})
	var events []Event
	e.OnEvent(func(ev Event) { events = append(events, ev) })
	now := time.Unix(0, 0)

	flip := func(v float64) {
		feed(e, "n", "x", v)
		now = now.Add(2 * time.Millisecond)
		e.Sweep(now)
		now = now.Add(2 * time.Millisecond)
		e.Sweep(now)
	}
	// Each engage+disengage is 2 transitions; the 4th transition blows
	// the budget of 3.
	flip(5) // engage (1)
	flip(0) // disengage (2)
	flip(5) // engage (3)
	flip(0) // disengage (4) → quarantine
	st := e.Status()[0]
	if !st.Quarantined {
		t.Fatalf("want quarantined, got %+v", st)
	}
	quarantined := false
	for _, ev := range events {
		if ev.Type == EventQuarantined && ev.Reason == "flapping" {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("no quarantine event in %v", events)
	}
	// Benched: the condition holding does nothing.
	feed(e, "n", "x", 5)
	for i := 0; i < 10; i++ {
		now = now.Add(10 * time.Millisecond)
		e.Sweep(now)
	}
	if e.Engaged("r") {
		t.Fatal("engaged while quarantined")
	}
	// Quarantine expires → rule evaluates again.
	now = now.Add(30 * time.Second)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("did not re-engage after quarantine expiry")
	}
}

func TestEngineGuardRollback(t *testing.T) {
	for _, tc := range []struct {
		name  string
		delta bool
		// error counts fed before engagement and during probation
		before, during float64
		wantRollback   bool
	}{
		// Delta guard: growth since engagement > 0 trips.
		{"delta-trips", true, 10, 12, true},
		{"delta-holds", true, 10, 10, false},
		// Absolute guard: value > 0 trips regardless of history.
		{"absolute-trips", false, 0, 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			act := &fakeAction{}
			rs := []Rule{{
				Name:        "r",
				When:        Condition{Signal: "attr:x", Op: OpGT, Value: 1},
				EngageAfter: time.Millisecond,
				Guard: &Guard{
					Condition: Condition{Signal: "attr:err", Op: OpGT, Value: 0},
					Delta:     tc.delta,
					Probation: time.Second,
				},
				Action: act,
			}}
			e := newTestEngine(t, rs, Config{})
			var rolled bool
			e.OnEvent(func(ev Event) {
				if ev.Type == EventRolledBack {
					rolled = true
				}
			})
			now := time.Unix(0, 0)
			feed(e, "n", "x", 5)
			feed(e, "n", "err", tc.before)
			e.Sweep(now)
			now = now.Add(2 * time.Millisecond)
			e.Sweep(now)
			if !e.Engaged("r") {
				t.Fatal("not engaged")
			}
			feed(e, "n", "err", tc.during)
			now = now.Add(100 * time.Millisecond) // inside probation
			e.Sweep(now)
			st := e.Status()[0]
			if tc.wantRollback {
				if e.Engaged("r") || st.Rollbacks != 1 || !st.Quarantined || !rolled {
					t.Fatalf("want rollback+quarantine, got %+v rolled=%v", st, rolled)
				}
			} else if !e.Engaged("r") || st.Rollbacks != 0 {
				t.Fatalf("spurious rollback: %+v", st)
			}
		})
	}
}

func TestEngineGuardExpiresWithProbation(t *testing.T) {
	act := &fakeAction{}
	rs := []Rule{{
		Name:        "r",
		When:        Condition{Signal: "attr:x", Op: OpGT, Value: 1},
		EngageAfter: time.Millisecond,
		Guard: &Guard{
			Condition: Condition{Signal: "attr:err", Op: OpGT, Value: 0},
			Probation: 100 * time.Millisecond,
		},
		Action: act,
	}}
	e := newTestEngine(t, rs, Config{})
	now := time.Unix(0, 0)
	feed(e, "n", "x", 5)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("not engaged")
	}
	// Guard signal trips AFTER probation ended: no rollback.
	now = now.Add(200 * time.Millisecond)
	feed(e, "n", "err", 5)
	e.Sweep(now)
	if !e.Engaged("r") || e.Status()[0].Rollbacks != 0 {
		t.Fatalf("rolled back outside probation: %+v", e.Status()[0])
	}
}

func TestEngineGroupArbitration(t *testing.T) {
	actLo := &fakeAction{}
	actHi := &fakeAction{}
	mk := func(name string, prio int, act Action) Rule {
		return Rule{
			Name:        name,
			When:        Condition{Signal: "attr:x", Op: OpGT, Value: 1},
			EngageAfter: time.Millisecond,
			Cooldown:    time.Millisecond,
			Priority:    prio,
			Group:       "g",
			Action:      act,
		}
	}
	// Declared high-priority-number first: arbitration must still pick
	// the lower number.
	e := newTestEngine(t, []Rule{mk("hi", 10, actHi), mk("lo", 1, actLo)}, Config{})
	now := time.Unix(0, 0)
	feed(e, "n", "x", 5)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("lo") || e.Engaged("hi") {
		t.Fatalf("want lo engaged: lo=%v hi=%v", e.Engaged("lo"), e.Engaged("hi"))
	}
	// hi is deferred with group-occupied.
	var deferred bool
	e.OnEvent(func(ev Event) {
		if ev.Rule == "hi" && ev.Type == EventDeferred && ev.Reason == "group-occupied" {
			deferred = true
		}
	})
	now = now.Add(10 * time.Millisecond)
	e.Sweep(now)
	if !deferred {
		t.Fatal("hi not deferred while lo holds the group")
	}
	if actHi.applies != 0 {
		t.Fatal("hi applied while group occupied")
	}
}

func TestEngineGroupPreemption(t *testing.T) {
	actLo := &fakeAction{}
	actHi := &fakeAction{}
	rs := []Rule{
		{
			Name:        "hi",
			When:        Condition{Signal: "attr:hi", Op: OpGT, Value: 1},
			EngageAfter: time.Millisecond,
			Cooldown:    time.Millisecond,
			Priority:    10,
			Group:       "g",
			Action:      actHi,
		},
		{
			Name:        "lo",
			When:        Condition{Signal: "attr:lo", Op: OpGT, Value: 1},
			EngageAfter: time.Millisecond,
			Cooldown:    time.Millisecond,
			Priority:    1,
			Group:       "g",
			Action:      actLo,
		},
	}
	e := newTestEngine(t, rs, Config{})
	now := time.Unix(0, 0)
	// hi engages first (lo's condition not holding yet).
	feed(e, "n", "hi", 5)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("hi") {
		t.Fatal("hi not engaged")
	}
	// lo's condition arrives: strictly lower priority number preempts.
	feed(e, "n", "lo", 5)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if e.Engaged("hi") || !e.Engaged("lo") {
		t.Fatalf("want preemption: hi=%v lo=%v", e.Engaged("hi"), e.Engaged("lo"))
	}
	if actHi.reverts != 1 {
		t.Fatalf("hi reverts=%d", actHi.reverts)
	}
}

func TestEngineSupervisorConflict(t *testing.T) {
	edge := core.Edge{From: "a", To: "b", Port: 0}
	act := &fakeAction{edges: []core.Edge{edge}}
	claimer := &fakeClaimer{}
	rs := []Rule{{
		Name:        "r",
		When:        Condition{Signal: "attr:x", Op: OpGT, Value: 1},
		EngageAfter: time.Millisecond,
		Cooldown:    time.Millisecond,
		// Budget sized so the test's 6 engagements fit exactly; if the 5
		// supervisor-forced reverts also counted, it would quarantine.
		MaxFlaps:   6,
		FlapWindow: time.Minute,
		Action:     act,
	}}
	e := newTestEngine(t, rs, Config{Claimer: claimer})
	var events []Event
	e.OnEvent(func(ev Event) { events = append(events, ev) })
	now := time.Unix(0, 0)

	// Supervisor holds the edge from the start: the rule defers, never
	// engages.
	claimer.edges = []core.Edge{edge}
	feed(e, "n", "x", 5)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if e.Engaged("r") || act.applies != 0 {
		t.Fatal("engaged against a supervisor claim")
	}
	found := false
	for _, ev := range events {
		if ev.Type == EventDeferred && ev.Reason == "supervisor-claim" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no supervisor-claim deferral in %v", events)
	}

	// Claim released → rule engages.
	claimer.edges = nil
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("did not engage after claim release")
	}

	// Claim returns while engaged → immediate yield, not counted as a
	// flap even when repeated past MaxFlaps.
	for i := 0; i < 5; i++ {
		claimer.edges = []core.Edge{edge}
		now = now.Add(2 * time.Millisecond)
		e.Sweep(now)
		if e.Engaged("r") {
			t.Fatal("still engaged under supervisor claim")
		}
		claimer.edges = nil
		now = now.Add(2 * time.Millisecond)
		e.Sweep(now)
		if !e.Engaged("r") {
			t.Fatalf("round %d: did not re-engage", i)
		}
	}
	if e.Status()[0].Quarantined {
		t.Fatal("supervisor yields counted toward flap damping")
	}
}

func TestEngineActionFailures(t *testing.T) {
	act := &fakeAction{failApply: errors.New("boom")}
	rs := []Rule{{
		Name:        "r",
		When:        Condition{Signal: "attr:x", Op: OpGT, Value: 1},
		EngageAfter: time.Millisecond,
		Cooldown:    time.Second,
		Action:      act,
	}}
	e := newTestEngine(t, rs, Config{})
	now := time.Unix(0, 0)
	feed(e, "n", "x", 5)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if e.Engaged("r") || act.applies != 1 {
		t.Fatalf("engaged=%v applies=%d after failed apply", e.Engaged("r"), act.applies)
	}
	if e.Status()[0].LastErr == "" {
		t.Fatal("failed apply not recorded in status")
	}
	// Failed engage opens the cooldown: no retry until it passes.
	for i := 0; i < 10; i++ {
		now = now.Add(10 * time.Millisecond)
		e.Sweep(now)
	}
	if act.applies != 1 {
		t.Fatalf("retried inside cooldown: %d applies", act.applies)
	}
	act.failApply = nil
	now = now.Add(time.Second)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("did not engage after cooldown with apply fixed")
	}

	// Failed revert keeps the rule engaged; the next sweep retries.
	act.failRevrt = errors.New("stuck")
	feed(e, "n", "x", 0)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	now = now.Add(DefaultDisengageAfter)
	e.Sweep(now)
	if !e.Engaged("r") || act.reverts != 1 {
		t.Fatalf("engaged=%v reverts=%d after failed revert", e.Engaged("r"), act.reverts)
	}
	act.failRevrt = nil
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if e.Engaged("r") || act.reverts != 2 {
		t.Fatalf("revert not retried: engaged=%v reverts=%d", e.Engaged("r"), act.reverts)
	}
}

func TestEngineTapNodeFilter(t *testing.T) {
	act := &fakeAction{}
	rs := []Rule{{
		Name:        "r",
		When:        Condition{Signal: "attr:x@wanted", Op: OpGT, Value: 1},
		EngageAfter: time.Millisecond,
		Action:      act,
	}}
	e := newTestEngine(t, rs, Config{})
	now := time.Unix(0, 0)
	// Same attribute from the wrong node is invisible.
	feed(e, "other", "x", 5)
	e.Sweep(now)
	now = now.Add(10 * time.Millisecond)
	e.Sweep(now)
	if e.Engaged("r") {
		t.Fatal("engaged on an emission from the wrong node")
	}
	feed(e, "wanted", "x", 5)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("did not engage on the watched node")
	}
}

func TestEngineMonitorSignals(t *testing.T) {
	mon := health.NewMonitor(health.Policy{})
	act := &fakeAction{}
	rs := []Rule{{
		Name:        "r",
		When:        Condition{Signal: "errors:parser", Op: OpGE, Value: 2},
		EngageAfter: time.Millisecond,
		Action:      act,
	}}
	e := newTestEngine(t, rs, Config{Monitor: mon})
	if e.NeedsTap() {
		t.Fatal("monitor-only rule must not need a tap")
	}
	now := time.Unix(0, 0)
	e.Sweep(now) // node unknown → condition false, no panic
	mon.Tap("parser", core.Sample{})
	mon.NodeResult("parser", errors.New("e1"))
	mon.NodeResult("parser", errors.New("e2"))
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	now = now.Add(2 * time.Millisecond)
	e.Sweep(now)
	if !e.Engaged("r") {
		t.Fatal("did not engage on monitor error count")
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule Rule
		want string
	}{
		{"no-name", Rule{Action: &fakeAction{}}, "missing name"},
		{"no-action", Rule{Name: "r", When: Condition{Signal: "attr:x", Op: OpGT}}, "missing action"},
		{"bad-signal", Rule{Name: "r", When: Condition{Signal: "bogus", Op: OpGT}, Action: &fakeAction{}}, "unknown signal"},
		{"bare-colon", Rule{Name: "r", When: Condition{Signal: "errors:", Op: OpGT}, Action: &fakeAction{}}, "unknown signal"},
		{"empty-attr", Rule{Name: "r", When: Condition{Signal: "attr:@node", Op: OpGT}, Action: &fakeAction{}}, "empty attribute key"},
		{"bad-op", Rule{Name: "r", When: Condition{Signal: "attr:x", Op: "~"}, Action: &fakeAction{}}, "unknown operator"},
		{"bad-clear", Rule{Name: "r", When: Condition{Signal: "attr:x", Op: OpGT}, ClearWhen: &Condition{Signal: "nope", Op: OpLT}, Action: &fakeAction{}}, "clear_when"},
		{"bad-guard", Rule{Name: "r", When: Condition{Signal: "attr:x", Op: OpGT}, Guard: &Guard{Condition: Condition{Signal: "nope", Op: OpGT}}, Action: &fakeAction{}}, "guard"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(Config{Rules: []Rule{tc.rule}, Adapter: passAdapter}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
			if err := Validate(tc.rule); err == nil {
				t.Fatal("Validate accepted the bad rule")
			}
		})
	}
	if _, err := New(Config{Rules: []Rule{{Name: "r", When: Condition{Signal: "attr:x", Op: OpGT}, Action: &fakeAction{}}}}); err == nil {
		t.Fatal("New accepted rules without an adapter")
	}
}

func TestEngineProbeDedup(t *testing.T) {
	// Two rules on the same attribute share one probe.
	rs := []Rule{
		{Name: "a", When: Condition{Signal: "attr:x", Op: OpGT, Value: 1}, Action: &fakeAction{}},
		{Name: "b", When: Condition{Signal: "attr:x", Op: OpLT, Value: 0}, Action: &fakeAction{}},
		{Name: "c", When: Condition{Signal: "attr:x@n", Op: OpGT, Value: 1}, Action: &fakeAction{}},
	}
	e := newTestEngine(t, rs, Config{})
	if len(e.probes) != 2 {
		t.Fatalf("want 2 probes (x, x@n), got %d", len(e.probes))
	}
}

func TestEventTypeStrings(t *testing.T) {
	for ty, want := range map[EventType]string{
		EventEngaged:      "engaged",
		EventDisengaged:   "disengaged",
		EventRolledBack:   "rolled-back",
		EventQuarantined:  "quarantined",
		EventDeferred:     "deferred",
		EventActionFailed: "action-failed",
		EventType(99):     "unknown",
	} {
		if got := ty.String(); got != want {
			t.Fatalf("EventType(%d).String() = %q, want %q", ty, got, want)
		}
	}
}
