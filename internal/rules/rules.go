// Package rules closes the loop from observability to adaptation: a
// declarative self-adaptation engine whose conditions read live signals
// — per-node health counters, sample attributes flowing through the
// graph, provider availability — and whose actions are structural graph
// edits applied through the runtime's pause-edit-resume seam. It turns
// the paper's three hand-written case studies (§3.1–3.3: insert a
// filter when accuracy degrades, swap providers, change power strategy)
// into data.
//
// Robustness is the core of the design, not an afterthought:
//
//   - Hysteresis: separate engage and disengage conditions, each with
//     its own dwell time, so a signal hovering between the thresholds
//     causes no transitions at all.
//   - Cooldown and flap damping: after disengaging, a rule cannot
//     re-engage until its cooldown expires; a rule that still manages
//     more than MaxFlaps transitions inside FlapWindow is quarantined
//     (reverted and barred from engaging) for QuarantineFor.
//   - Conflict arbitration: supervisor degradation reroutes always win.
//     A rule whose action touches an edge the health.Supervisor has (or
//     wants) engaged is reverted/deferred until the supervisor lets go.
//     Rules also declare conflict groups of their own: within a group
//     at most one rule is engaged, lowest Priority first.
//   - Probation rollback: every engagement opens a probation window
//     during which an optional guard signal is watched; if the guard
//     trips, the edit is reverted and the rule quarantined.
//
// Evaluation piggybacks on the supervisor sweep (Supervisor.OnSweep),
// so cost is O(rules) per sweep and the per-sample tap does nothing but
// a few attribute probes with zero allocations.
package rules

import (
	"fmt"
	"strings"
	"time"
)

// Default tuning applied by normalize when a rule leaves the knob zero.
const (
	// DefaultDisengageAfter spaces disengagement behind the clear
	// condition so one clean sample cannot remove a needed adaptation.
	DefaultDisengageAfter = 500 * time.Millisecond
	// DefaultCooldown bars re-engagement right after a disengage.
	DefaultCooldown = 1 * time.Second
	// DefaultMaxFlaps is the transition budget within FlapWindow.
	DefaultMaxFlaps = 6
	// DefaultFlapWindow is the sliding window for flap counting.
	DefaultFlapWindow = 10 * time.Second
	// DefaultQuarantine is how long a flapping rule stays benched.
	DefaultQuarantine = 30 * time.Second
	// DefaultProbation is how long a fresh engagement is guarded.
	DefaultProbation = 2 * time.Second
)

// Op is a comparison operator in a rule condition.
type Op string

// Condition operators.
const (
	OpGT Op = ">"
	OpGE Op = ">="
	OpLT Op = "<"
	OpLE Op = "<="
	OpEQ Op = "=="
	OpNE Op = "!="
)

// Condition compares a named signal against a threshold. Signals:
//
//	attr:<key>          most recent value of sample attribute <key>
//	                    observed on any emission in the graph
//	attr:<key>@<node>   same, but only emissions from <node>
//	errors:<node>       total processing errors recorded by the monitor
//	consecutive_errors:<node>
//	restarts:<node>     restart count
//	trips:<node>        breaker trips
//	silence_ms:<node>   milliseconds since the node last emitted
//	availability        provider availability ordinal (0 = Available,
//	                    1 = TemporarilyUnavailable, 2 = OutOfService)
//
// A signal with no observation yet (attribute never seen, node unknown
// to the monitor) makes the condition evaluate false — unknown never
// engages and never clears.
type Condition struct {
	Signal string
	Op     Op
	Value  float64
}

func (c Condition) String() string {
	return fmt.Sprintf("%s %s %g", c.Signal, c.Op, c.Value)
}

// compare applies the operator.
func (c Condition) compare(v float64) bool {
	switch c.Op {
	case OpGT:
		return v > c.Value
	case OpGE:
		return v >= c.Value
	case OpLT:
		return v < c.Value
	case OpLE:
		return v <= c.Value
	case OpEQ:
		return v == c.Value
	case OpNE:
		return v != c.Value
	}
	return false
}

// Guard watches a signal during the probation window that follows an
// engagement. If the guarded signal crosses the threshold, the action
// is rolled back and the rule quarantined — the PR 7 rollout-gate
// logic, scoped to a single session edit.
type Guard struct {
	Condition
	// Delta, when true, compares the signal's growth since the moment
	// of engagement rather than its absolute value — the natural mode
	// for monotone counters like errors:<node>.
	Delta bool
	// Probation bounds how long the guard is evaluated after an
	// engagement; zero means DefaultProbation.
	Probation time.Duration
}

// Rule is one declarative adaptation: engage Action when When has held
// for EngageAfter, disengage when ClearWhen (or, if nil, the negation
// of When) has held for DisengageAfter.
type Rule struct {
	// Name identifies the rule in events, metrics, and status output.
	Name string
	// When is the engage condition.
	When Condition
	// ClearWhen is the disengage condition; nil means "not When". A
	// separate clear threshold is what creates the hysteresis band.
	ClearWhen *Condition
	// EngageAfter is how long When must hold before the action fires.
	EngageAfter time.Duration
	// DisengageAfter is how long ClearWhen must hold before the action
	// is reverted. Zero means DefaultDisengageAfter.
	DisengageAfter time.Duration
	// Cooldown bars re-engagement after a disengage. Zero means
	// DefaultCooldown.
	Cooldown time.Duration
	// MaxFlaps and FlapWindow bound transition churn: more than
	// MaxFlaps engage/disengage transitions within FlapWindow
	// quarantines the rule. Zeros mean the defaults.
	MaxFlaps   int
	FlapWindow time.Duration
	// QuarantineFor is how long a quarantined rule stays benched
	// before it may evaluate again. Zero means DefaultQuarantine.
	QuarantineFor time.Duration
	// Priority orders rules within a conflict Group: lower engages
	// first, declaration order breaking ties (the supervisor's model).
	Priority int
	// Group names the conflict group; rules sharing a Group have at
	// most one engaged at a time. Empty means the rule is its own
	// group.
	Group string
	// Action is the graph edit applied on engage and reverted on
	// disengage.
	Action Action
	// Guard optionally arms probation rollback for this rule.
	Guard *Guard
}

// normalize fills zero knobs with defaults and validates the rule.
func (r Rule) normalize(idx int) (Rule, error) {
	if r.Name == "" {
		return r, fmt.Errorf("rules: rule %d: missing name", idx)
	}
	if r.Action == nil {
		return r, fmt.Errorf("rules: rule %q: missing action", r.Name)
	}
	if err := validCondition(r.When); err != nil {
		return r, fmt.Errorf("rules: rule %q: when: %w", r.Name, err)
	}
	if r.ClearWhen != nil {
		if err := validCondition(*r.ClearWhen); err != nil {
			return r, fmt.Errorf("rules: rule %q: clear_when: %w", r.Name, err)
		}
	}
	if r.Guard != nil {
		if err := validCondition(r.Guard.Condition); err != nil {
			return r, fmt.Errorf("rules: rule %q: guard: %w", r.Name, err)
		}
		if r.Guard.Probation == 0 {
			r.Guard.Probation = DefaultProbation
		}
	}
	if r.DisengageAfter == 0 {
		r.DisengageAfter = DefaultDisengageAfter
	}
	if r.Cooldown == 0 {
		r.Cooldown = DefaultCooldown
	}
	if r.MaxFlaps == 0 {
		r.MaxFlaps = DefaultMaxFlaps
	}
	if r.FlapWindow == 0 {
		r.FlapWindow = DefaultFlapWindow
	}
	if r.QuarantineFor == 0 {
		r.QuarantineFor = DefaultQuarantine
	}
	if r.Group == "" {
		r.Group = r.Name
	}
	return r, nil
}

// Validate checks a rule's name, action, conditions and operators
// without building an engine, so config loaders can reject a bad rule
// at load time instead of at session creation.
func Validate(r Rule) error {
	_, err := r.normalize(0)
	return err
}

// signalKind classifies a parsed signal reference.
type signalKind int

const (
	sigAttr signalKind = iota
	sigErrors
	sigConsecutive
	sigRestarts
	sigTrips
	sigSilenceMS
	sigAvailability
)

// signalRef is a compiled signal: parsed once at engine construction so
// sweep-time evaluation is a switch and an atomic load.
type signalRef struct {
	kind  signalKind
	node  string     // monitor node, or attr node filter ("" = any)
	probe *attrProbe // sigAttr only
}

// parseSignal splits a signal string into its kind and operand. The
// attr probe is attached later by the engine (probes are deduplicated
// across rules).
func parseSignal(s string) (signalRef, string, error) {
	if s == "availability" {
		return signalRef{kind: sigAvailability}, "", nil
	}
	name, arg, ok := strings.Cut(s, ":")
	if !ok || arg == "" {
		return signalRef{}, "", fmt.Errorf("unknown signal %q", s)
	}
	switch name {
	case "attr":
		key, node, _ := strings.Cut(arg, "@")
		if key == "" {
			return signalRef{}, "", fmt.Errorf("signal %q: empty attribute key", s)
		}
		return signalRef{kind: sigAttr, node: node}, key, nil
	case "errors":
		return signalRef{kind: sigErrors, node: arg}, "", nil
	case "consecutive_errors":
		return signalRef{kind: sigConsecutive, node: arg}, "", nil
	case "restarts":
		return signalRef{kind: sigRestarts, node: arg}, "", nil
	case "trips":
		return signalRef{kind: sigTrips, node: arg}, "", nil
	case "silence_ms":
		return signalRef{kind: sigSilenceMS, node: arg}, "", nil
	}
	return signalRef{}, "", fmt.Errorf("unknown signal %q", s)
}

// validCondition checks the signal parses and the operator is known.
func validCondition(c Condition) error {
	if _, _, err := parseSignal(c.Signal); err != nil {
		return err
	}
	switch c.Op {
	case OpGT, OpGE, OpLT, OpLE, OpEQ, OpNE:
		return nil
	}
	return fmt.Errorf("unknown operator %q", c.Op)
}
