package rules

import (
	"errors"
	"fmt"

	"perpos/internal/core"
)

// Action is a reversible structural edit. Apply and Revert run inside
// the runtime's pause-edit-resume seam (the graph is stopped), on the
// supervisor goroutine. Edges declares the action's structural
// footprint so the engine can keep rules off edges the health
// supervisor has claimed for degradation routing.
type Action interface {
	// Describe returns a short human-readable summary for events.
	Describe() string
	// Edges returns the edges the action disconnects, connects, or
	// splices. Actions with no structural footprint (feature attach)
	// return nil and never conflict with supervisor reroutes.
	Edges() []core.Edge
	// Apply performs the edit. A failed Apply must leave the graph as
	// it found it (unwinding any partial work).
	Apply(g *core.Graph) error
	// Revert undoes a successful Apply. Revert is retried on failure,
	// so it must tolerate finding its own work half-done.
	Revert(g *core.Graph) error
}

// InsertAction splices a new component into an existing edge — the
// §3.1 case study (insert a filter when accuracy degrades). Each
// engagement builds a fresh component instance, so reverting discards
// any filter state rather than freezing it for the next engagement.
type InsertAction struct {
	// ID is the node ID the built component must carry.
	ID string
	// Build constructs the component; called once per engagement.
	Build core.ComponentFactory
	// From → To:Port is the edge to splice into.
	From string
	To   string
	Port int
	// InPort is the inserted component's input port (usually 0).
	InPort int
}

// Describe implements Action.
func (a *InsertAction) Describe() string {
	return fmt.Sprintf("insert %s between %s and %s", a.ID, a.From, a.To)
}

// Edges implements Action: the spliced edge plus the two halves it
// becomes, so a supervisor claim on any of them blocks the rule.
func (a *InsertAction) Edges() []core.Edge {
	return []core.Edge{
		{From: a.From, To: a.To, Port: a.Port},
		{From: a.From, To: a.ID, Port: a.InPort},
		{From: a.ID, To: a.To, Port: a.Port},
	}
}

// Apply implements Action. InsertBetween unwinds partial failures
// itself, so a failed Apply leaves the original edge intact.
func (a *InsertAction) Apply(g *core.Graph) error {
	return g.InsertBetween(a.Build(a.ID), a.From, a.To, a.Port, a.InPort)
}

// Revert implements Action: remove the inserted node (dropping both
// half-edges) and restore the original connection. A missing node is
// tolerated so a retried revert converges.
func (a *InsertAction) Revert(g *core.Graph) error {
	if _, ok := g.Node(a.ID); ok {
		if err := g.Remove(a.ID); err != nil {
			return err
		}
	}
	return g.Connect(a.From, a.To, a.Port)
}

// SwapAction breaks one edge and makes another — the §3.3 case study
// (swap provider slots), reusing the supervisor's Break/Make reroute
// model.
type SwapAction struct {
	Break core.Edge
	Make  core.Edge
}

// Describe implements Action.
func (a *SwapAction) Describe() string {
	return fmt.Sprintf("swap %s->%s for %s->%s", a.Break.From, a.Break.To, a.Make.From, a.Make.To)
}

// Edges implements Action.
func (a *SwapAction) Edges() []core.Edge { return []core.Edge{a.Break, a.Make} }

// Apply implements Action. If making the new edge fails the broken one
// is restored, so a failed Apply is a no-op.
func (a *SwapAction) Apply(g *core.Graph) error {
	if err := g.Disconnect(a.Break.From, a.Break.To, a.Break.Port); err != nil {
		return err
	}
	if err := g.Connect(a.Make.From, a.Make.To, a.Make.Port); err != nil {
		return errors.Join(err, g.Connect(a.Break.From, a.Break.To, a.Break.Port))
	}
	return nil
}

// Revert implements Action: drop the made edge (tolerating its
// absence, e.g. after a partially failed earlier revert) and restore
// the broken one.
func (a *SwapAction) Revert(g *core.Graph) error {
	if hasEdge(g, a.Make) {
		if err := g.Disconnect(a.Make.From, a.Make.To, a.Make.Port); err != nil {
			return err
		}
	}
	if hasEdge(g, a.Break) {
		return nil
	}
	return g.Connect(a.Break.From, a.Break.To, a.Break.Port)
}

// FeatureAction attaches a feature to a node — the §3.2 case study
// (change power strategy by attaching an energy strategy feature). It
// has no structural footprint, so it never conflicts with supervisor
// reroutes.
type FeatureAction struct {
	// Target is the node to attach to.
	Target string
	// Name labels the action in events; detaching uses the attached
	// feature's own FeatureName, which may differ from a config-side
	// factory key.
	Name string
	// Build constructs the feature; called once per engagement.
	Build func() core.Feature

	// applied is the FeatureName of the currently attached instance.
	applied string
}

// Describe implements Action.
func (a *FeatureAction) Describe() string {
	return fmt.Sprintf("attach feature %s to %s", a.Name, a.Target)
}

// Edges implements Action: no structural footprint.
func (a *FeatureAction) Edges() []core.Edge { return nil }

// Apply implements Action.
func (a *FeatureAction) Apply(g *core.Graph) error {
	n, ok := g.Node(a.Target)
	if !ok {
		return fmt.Errorf("rules: feature target %q not in graph", a.Target)
	}
	f := a.Build()
	if err := n.AttachFeature(f); err != nil {
		return err
	}
	a.applied = f.FeatureName()
	return nil
}

// Revert implements Action. An already-detached feature is tolerated.
func (a *FeatureAction) Revert(g *core.Graph) error {
	n, ok := g.Node(a.Target)
	if !ok {
		return fmt.Errorf("rules: feature target %q not in graph", a.Target)
	}
	name := a.applied
	if name == "" {
		name = a.Build().FeatureName()
	}
	if _, ok := n.Feature(name); !ok {
		return nil
	}
	return n.DetachFeature(name)
}

// hasEdge reports whether the graph currently carries the edge.
func hasEdge(g *core.Graph, e core.Edge) bool {
	for _, have := range g.Edges() {
		if have == e {
			return true
		}
	}
	return false
}
