package rules

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"perpos/internal/core"
	"perpos/internal/health"
)

// EdgeClaimer reports the edges the health supervisor currently has (or
// wants) engaged for degradation routing. *health.Supervisor implements
// it; the engine treats every claimed edge as off-limits — supervisor
// reroutes always win over rules.
type EdgeClaimer interface {
	ClaimedEdges(buf []core.Edge) []core.Edge
}

// EventType classifies a rule lifecycle event.
type EventType int

// Rule lifecycle events.
const (
	// EventEngaged: the rule's action was applied.
	EventEngaged EventType = iota
	// EventDisengaged: the action was reverted (condition cleared,
	// supervisor conflict, or preemption — see Reason).
	EventDisengaged
	// EventRolledBack: the probation guard tripped and the action was
	// reverted; the rule is quarantined.
	EventRolledBack
	// EventQuarantined: flap damping benched the rule.
	EventQuarantined
	// EventDeferred: the rule wanted to engage but was blocked by a
	// supervisor edge claim or an engaged group peer.
	EventDeferred
	// EventActionFailed: an Apply or Revert edit returned an error.
	EventActionFailed
)

// String returns the event type's wire name.
func (t EventType) String() string {
	switch t {
	case EventEngaged:
		return "engaged"
	case EventDisengaged:
		return "disengaged"
	case EventRolledBack:
		return "rolled-back"
	case EventQuarantined:
		return "quarantined"
	case EventDeferred:
		return "deferred"
	case EventActionFailed:
		return "action-failed"
	}
	return "unknown"
}

// Event is one rule lifecycle transition, delivered to OnEvent
// listeners on the sweep goroutine, outside the engine lock.
type Event struct {
	Time   time.Time
	Rule   string
	Type   EventType
	Reason string
	Err    error
}

// RuleStatus is a point-in-time snapshot of one rule's state.
type RuleStatus struct {
	Name           string
	Engaged        bool
	Quarantined    bool
	Engagements    uint64
	Disengagements uint64
	Rollbacks      uint64
	Deferrals      uint64
	LastErr        string
}

// attrProbe holds the most recent observation of one sample attribute,
// written lock-free from the per-emission tap and read by the sweep.
type attrProbe struct {
	key  string
	node string // "" = any node
	bits atomic.Uint64
	seen atomic.Bool
}

// ruleState is the per-rule state machine.
type ruleState struct {
	rule      Rule
	when      signalRef
	clear     signalRef   // valid when rule.ClearWhen != nil
	guard     signalRef   // valid when rule.Guard != nil
	footprint []core.Edge // action edges, precomputed at construction

	condSince  time.Time // engage condition has held since (zero = not holding)
	clearSince time.Time // clear condition has held since

	engaged        bool
	cooldownUntil  time.Time
	quarantined    bool
	quarUntil      time.Time
	probationUntil time.Time
	guardBase      float64
	deferredNow    bool

	flapTimes []time.Time // recent transition timestamps within FlapWindow

	engagements    uint64
	disengagements uint64
	rollbacks      uint64
	deferrals      uint64
	lastErr        error
}

// Config wires an Engine.
type Config struct {
	// Rules is the declarative rule set, evaluated in declaration
	// order.
	Rules []Rule
	// Adapter applies graph edits (runtime.Session's pause-edit-resume
	// seam). Required when Rules is non-empty.
	Adapter health.Adapter
	// Monitor supplies per-node health signals (errors:, restarts:,
	// silence_ms:, …). Optional; without it those signals read as
	// unknown.
	Monitor *health.Monitor
	// Claimer supplies supervisor edge claims for arbitration.
	// Optional; without it rules never yield to the supervisor.
	Claimer EdgeClaimer
	// Availability supplies the provider availability ordinal for the
	// "availability" signal. Optional.
	Availability func() float64
}

// Engine evaluates a rule set against live signals on every supervisor
// sweep and drives each rule's hysteresis / cooldown / quarantine /
// probation state machine. All mutation happens on the sweep
// goroutine; Status and Engaged may be called from anywhere.
type Engine struct {
	adapter health.Adapter
	mon     *health.Monitor
	claimer EdgeClaimer
	avail   func() float64

	probes []*attrProbe

	mu        sync.Mutex
	states    []ruleState
	groups    [][]int // conflict groups: rule indexes in declaration order
	listeners []func(Event)
	pending   []Event
	claimed   []core.Edge // reused per sweep
	lsnapshot []func(Event)
}

// New compiles the rule set. Signal references and operators are
// validated here so a bad rule is a construction error, not a silent
// no-op at sweep time.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Rules) > 0 && cfg.Adapter == nil {
		return nil, errors.New("rules: adapter required")
	}
	e := &Engine{
		adapter: cfg.Adapter,
		mon:     cfg.Monitor,
		claimer: cfg.Claimer,
		avail:   cfg.Availability,
	}
	groupIdx := make(map[string]int)
	for i, r := range cfg.Rules {
		r, err := r.normalize(i)
		if err != nil {
			return nil, err
		}
		st := ruleState{rule: r, footprint: r.Action.Edges()}
		if st.when, err = e.compile(r.When); err != nil {
			return nil, err
		}
		if r.ClearWhen != nil {
			if st.clear, err = e.compile(*r.ClearWhen); err != nil {
				return nil, err
			}
		}
		if r.Guard != nil {
			if st.guard, err = e.compile(r.Guard.Condition); err != nil {
				return nil, err
			}
		}
		gi, ok := groupIdx[r.Group]
		if !ok {
			gi = len(e.groups)
			groupIdx[r.Group] = gi
			e.groups = append(e.groups, nil)
		}
		e.groups[gi] = append(e.groups[gi], len(e.states))
		e.states = append(e.states, st)
	}
	return e, nil
}

// compile parses a condition's signal and attaches (deduplicating) the
// attribute probe it reads.
func (e *Engine) compile(c Condition) (signalRef, error) {
	ref, key, err := parseSignal(c.Signal)
	if err != nil {
		return ref, err
	}
	if ref.kind == sigAttr {
		for _, p := range e.probes {
			if p.key == key && p.node == ref.node {
				ref.probe = p
				return ref, nil
			}
		}
		p := &attrProbe{key: key, node: ref.node}
		e.probes = append(e.probes, p)
		ref.probe = p
	}
	return ref, nil
}

// NeedsTap reports whether any rule reads sample attributes, i.e.
// whether the owner must register Tap on the graph.
func (e *Engine) NeedsTap() bool { return len(e.probes) > 0 }

// Tap is the per-emission observer feeding attribute probes. It is
// called on engine goroutines for every emission and allocates
// nothing: a key lookup per declared probe and an atomic store.
func (e *Engine) Tap(componentID string, s core.Sample) {
	for _, p := range e.probes {
		if p.node != "" && p.node != componentID {
			continue
		}
		if v, ok := s.FloatAttr(p.key); ok {
			p.bits.Store(math.Float64bits(v))
			p.seen.Store(true)
		}
	}
}

// OnEvent registers a lifecycle listener. Callbacks run serially on the
// sweep goroutine, outside the engine lock.
func (e *Engine) OnEvent(fn func(Event)) {
	if fn == nil {
		return
	}
	e.mu.Lock()
	e.listeners = append(e.listeners, fn)
	e.mu.Unlock()
}

// Status snapshots every rule's state, in declaration order.
func (e *Engine) Status() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, len(e.states))
	for i := range e.states {
		st := &e.states[i]
		out[i] = RuleStatus{
			Name:           st.rule.Name,
			Engaged:        st.engaged,
			Quarantined:    st.quarantined,
			Engagements:    st.engagements,
			Disengagements: st.disengagements,
			Rollbacks:      st.rollbacks,
			Deferrals:      st.deferrals,
		}
		if st.lastErr != nil {
			out[i].LastErr = st.lastErr.Error()
		}
	}
	return out
}

// Engaged reports whether the named rule is currently engaged.
func (e *Engine) Engaged(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.states {
		if e.states[i].rule.Name == name {
			return e.states[i].engaged
		}
	}
	return false
}

// Sweep runs one evaluation pass at the given time. Call it from the
// supervisor's OnSweep hook (after the supervisor has reconciled its
// own reroutes) or drive it directly in tests. Not re-entrant: one
// goroutine at a time.
func (e *Engine) Sweep(now time.Time) {
	e.mu.Lock()

	e.claimed = e.claimed[:0]
	if e.claimer != nil {
		e.claimed = e.claimer.ClaimedEdges(e.claimed)
	}

	// Pass 1: evaluate conditions and run the lifecycle of engaged
	// rules — supervisor conflicts, probation guards, clear dwell.
	for i := range e.states {
		st := &e.states[i]
		if st.quarantined && !now.Before(st.quarUntil) {
			st.quarantined = false
		}

		e.track(&st.condSince, e.holds(&st.when, st.rule.When, now), now)

		if !st.engaged {
			continue
		}

		// Supervisor claims the edge → yield immediately. This is not
		// rule churn, so it does not count toward flap damping, and the
		// usual cooldown still applies before re-engaging.
		if e.conflicts(st) {
			e.revert(st, now, "supervisor-conflict", false)
			continue
		}

		// Probation guard: roll back a fresh engagement that makes the
		// guarded signal worse.
		if st.rule.Guard != nil && now.Before(st.probationUntil) {
			if v, ok := e.value(&st.guard, now); ok {
				if st.rule.Guard.Delta {
					v -= st.guardBase
				}
				if st.rule.Guard.compare(v) {
					if e.revert(st, now, "guard-tripped", false) == nil {
						st.rollbacks++
						e.quarantine(st, now, "guard-tripped")
						e.emit(Event{Time: now, Rule: st.rule.Name, Type: EventRolledBack, Reason: st.rule.Guard.String()})
					}
					continue
				}
			}
		}

		// Hysteresis: disengage only after the clear condition has
		// held for the full dwell.
		clear := false
		if st.rule.ClearWhen != nil {
			clear = e.holds(&st.clear, *st.rule.ClearWhen, now)
		} else if v, ok := e.value(&st.when, now); ok {
			// Default clear is the negation of When — but only when the
			// signal is actually observable. Unknown never transitions.
			clear = !st.rule.When.compare(v)
		}
		e.track(&st.clearSince, clear, now)
		if !st.clearSince.IsZero() && now.Sub(st.clearSince) >= st.rule.DisengageAfter {
			if e.revert(st, now, "cleared", true) == nil {
				st.clearSince = time.Time{}
			}
		}
	}

	// Pass 2: engagement, arbitrated per conflict group — lowest
	// Priority first, declaration order breaking ties, preempting a
	// higher-priority-number peer already engaged.
	for _, group := range e.groups {
		engagedIdx := -1
		for _, i := range group {
			if e.states[i].engaged {
				engagedIdx = i
				break
			}
		}
		best := -1
		for _, i := range group {
			st := &e.states[i]
			if st.engaged {
				continue
			}
			wants := !st.quarantined &&
				!st.condSince.IsZero() && now.Sub(st.condSince) >= st.rule.EngageAfter &&
				!now.Before(st.cooldownUntil)
			if !wants {
				st.deferredNow = false
				continue
			}
			if e.conflicts(st) {
				e.defer_(st, now, "supervisor-claim")
				continue
			}
			if best < 0 || st.rule.Priority < e.states[best].rule.Priority {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		st := &e.states[best]
		if engagedIdx >= 0 {
			if st.rule.Priority >= e.states[engagedIdx].rule.Priority {
				e.defer_(st, now, "group-occupied")
				continue
			}
			if e.revert(&e.states[engagedIdx], now, "preempted", true) != nil {
				continue
			}
		}
		st.deferredNow = false
		e.engage(st, now)
	}

	pending := e.pending
	e.pending = nil
	e.lsnapshot = append(e.lsnapshot[:0], e.listeners...)
	listeners := e.lsnapshot
	e.mu.Unlock()

	for _, ev := range pending {
		for _, fn := range listeners {
			fn(ev)
		}
	}
}

// track updates a dwell anchor: set when the condition starts holding,
// cleared the moment it stops.
func (e *Engine) track(since *time.Time, holding bool, now time.Time) {
	if holding {
		if since.IsZero() {
			*since = now
		}
	} else {
		*since = time.Time{}
	}
}

// holds evaluates a condition; unknown signals never hold.
func (e *Engine) holds(ref *signalRef, c Condition, now time.Time) bool {
	v, ok := e.value(ref, now)
	return ok && c.compare(v)
}

// value reads a compiled signal.
func (e *Engine) value(ref *signalRef, now time.Time) (float64, bool) {
	switch ref.kind {
	case sigAttr:
		if !ref.probe.seen.Load() {
			return 0, false
		}
		return math.Float64frombits(ref.probe.bits.Load()), true
	case sigAvailability:
		if e.avail == nil {
			return 0, false
		}
		return e.avail(), true
	}
	if e.mon == nil {
		return 0, false
	}
	h, ok := e.mon.Health(ref.node)
	if !ok {
		return 0, false
	}
	switch ref.kind {
	case sigErrors:
		return float64(h.Errors), true
	case sigConsecutive:
		return float64(h.ConsecutiveErrors), true
	case sigRestarts:
		return float64(h.Restarts), true
	case sigTrips:
		return float64(h.Trips), true
	case sigSilenceMS:
		if h.LastOutput.IsZero() {
			return 0, false
		}
		return float64(now.Sub(h.LastOutput).Milliseconds()), true
	}
	return 0, false
}

// conflicts reports whether the rule's action footprint intersects the
// supervisor's claimed edges.
func (e *Engine) conflicts(st *ruleState) bool {
	if len(e.claimed) == 0 {
		return false
	}
	for _, a := range st.footprint {
		for _, c := range e.claimed {
			if a == c {
				return true
			}
		}
	}
	return false
}

// engage applies the rule's action and opens probation. A failed edit
// starts the cooldown so a permanently failing action is retried at
// cooldown cadence, not every sweep.
func (e *Engine) engage(st *ruleState, now time.Time) {
	if err := e.adapter.ApplyEdit(st.rule.Action.Apply); err != nil {
		st.lastErr = err
		st.cooldownUntil = now.Add(st.rule.Cooldown)
		e.emit(Event{Time: now, Rule: st.rule.Name, Type: EventActionFailed, Reason: "apply", Err: err})
		return
	}
	st.engaged = true
	st.engagements++
	st.condSince = time.Time{}
	st.clearSince = time.Time{}
	if st.rule.Guard != nil {
		st.probationUntil = now.Add(st.rule.Guard.Probation)
		st.guardBase = 0
		if v, ok := e.value(&st.guard, now); ok {
			st.guardBase = v
		}
	}
	e.emit(Event{Time: now, Rule: st.rule.Name, Type: EventEngaged, Reason: st.rule.Action.Describe()})
	e.transition(st, now)
}

// revert undoes an engaged rule's action. On failure the rule stays
// engaged and the revert is retried next sweep (actions' Revert is
// idempotent). countFlap marks condition-driven churn; supervisor
// yields don't count against the rule.
func (e *Engine) revert(st *ruleState, now time.Time, reason string, countFlap bool) error {
	if err := e.adapter.ApplyEdit(st.rule.Action.Revert); err != nil {
		st.lastErr = err
		e.emit(Event{Time: now, Rule: st.rule.Name, Type: EventActionFailed, Reason: "revert", Err: err})
		return err
	}
	st.engaged = false
	st.disengagements++
	st.cooldownUntil = now.Add(st.rule.Cooldown)
	e.emit(Event{Time: now, Rule: st.rule.Name, Type: EventDisengaged, Reason: reason})
	if countFlap {
		e.transition(st, now)
	}
	return nil
}

// transition records one engage/disengage into the flap window and
// quarantines the rule when the budget is blown.
func (e *Engine) transition(st *ruleState, now time.Time) {
	cutoff := now.Add(-st.rule.FlapWindow)
	keep := st.flapTimes[:0]
	for _, t := range st.flapTimes {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	st.flapTimes = append(keep, now)
	if len(st.flapTimes) > st.rule.MaxFlaps {
		if st.engaged {
			if e.revert(st, now, "flapping", false) != nil {
				return
			}
		}
		e.quarantine(st, now, "flapping")
	}
}

// quarantine benches the rule and announces it.
func (e *Engine) quarantine(st *ruleState, now time.Time, reason string) {
	st.quarantined = true
	st.quarUntil = now.Add(st.rule.QuarantineFor)
	st.flapTimes = st.flapTimes[:0]
	e.emit(Event{Time: now, Rule: st.rule.Name, Type: EventQuarantined, Reason: reason})
}

// defer_ announces a blocked engagement once per deferral episode.
func (e *Engine) defer_(st *ruleState, now time.Time, reason string) {
	if st.deferredNow {
		return
	}
	st.deferredNow = true
	st.deferrals++
	e.emit(Event{Time: now, Rule: st.rule.Name, Type: EventDeferred, Reason: reason})
}

// emit queues an event for delivery after the engine lock is released.
func (e *Engine) emit(ev Event) { e.pending = append(e.pending, ev) }
