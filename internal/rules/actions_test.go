package rules

import (
	"testing"

	"perpos/internal/core"
)

const testKind core.Kind = "test.kind"

// passthrough builds a same-kind transform.
func passthrough(id string) *core.FuncComponent {
	return core.NewTransform(id, testKind, testKind, func(s core.Sample) (core.Sample, bool) { return s, true })
}

// actionGraph wires src -> mid -> app with a uniform kind so inserts
// and swaps stay type-correct.
func actionGraph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.New()
	src := &core.SliceSource{CompID: "src", Out: core.OutputSpec{Kind: testKind}}
	for _, c := range []core.Component{src, passthrough("mid"), core.NewSink("app", []core.Kind{testKind})} {
		if _, err := g.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []core.Edge{{From: "src", To: "mid", Port: 0}, {From: "mid", To: "app", Port: 0}} {
		if err := g.Connect(e.From, e.To, e.Port); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func edgeSet(g *core.Graph) map[core.Edge]bool {
	out := map[core.Edge]bool{}
	for _, e := range g.Edges() {
		out[e] = true
	}
	return out
}

func TestInsertActionRoundTrip(t *testing.T) {
	g := actionGraph(t)
	a := &InsertAction{
		ID:    "flt",
		Build: func(id string) core.Component { return passthrough(id) },
		From:  "mid",
		To:    "app",
		Port:  0,
	}
	if got := len(a.Edges()); got != 3 {
		t.Fatalf("footprint edges = %d, want 3 (spliced edge + both halves)", got)
	}
	if err := a.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	es := edgeSet(g)
	if !es[core.Edge{From: "mid", To: "flt", Port: 0}] || !es[core.Edge{From: "flt", To: "app", Port: 0}] {
		t.Fatalf("splice missing: %v", g.Edges())
	}
	if es[core.Edge{From: "mid", To: "app", Port: 0}] {
		t.Fatal("original edge survived the splice")
	}
	if err := a.Revert(g); err != nil {
		t.Fatalf("Revert: %v", err)
	}
	if _, ok := g.Node("flt"); ok {
		t.Fatal("inserted node survived the revert")
	}
	if !edgeSet(g)[core.Edge{From: "mid", To: "app", Port: 0}] {
		t.Fatal("original edge not restored")
	}
	// Second engagement must work (fresh component instance).
	if err := a.Apply(g); err != nil {
		t.Fatalf("second Apply: %v", err)
	}
	if err := a.Revert(g); err != nil {
		t.Fatalf("second Revert: %v", err)
	}
}

func TestInsertActionFailedApplyLeavesGraphIntact(t *testing.T) {
	g := actionGraph(t)
	a := &InsertAction{
		ID: "flt",
		// Wrong kind: the splice cannot connect, InsertBetween unwinds.
		Build: func(id string) core.Component {
			return core.NewTransform(id, "other.kind", "other.kind", func(s core.Sample) (core.Sample, bool) { return s, true })
		},
		From: "mid",
		To:   "app",
	}
	if err := a.Apply(g); err == nil {
		t.Fatal("Apply succeeded with a type-incompatible component")
	}
	if !edgeSet(g)[core.Edge{From: "mid", To: "app", Port: 0}] {
		t.Fatal("failed Apply did not leave the original edge intact")
	}
	if _, ok := g.Node("flt"); ok {
		t.Fatal("failed Apply left the component behind")
	}
}

func TestInsertActionRevertToleratesMissingNode(t *testing.T) {
	g := actionGraph(t)
	a := &InsertAction{
		ID:    "flt",
		Build: func(id string) core.Component { return passthrough(id) },
		From:  "mid",
		To:    "app",
	}
	if err := a.Apply(g); err != nil {
		t.Fatal(err)
	}
	// Someone else already removed the node and reconnected — a retried
	// revert must converge, not error.
	if err := g.Remove("flt"); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("mid", "app", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Revert(g); err == nil {
		// Connect on an existing edge may error; either way the graph
		// must end with the original edge present exactly once.
		if !edgeSet(g)[core.Edge{From: "mid", To: "app", Port: 0}] {
			t.Fatal("edge lost")
		}
	}
}

func TestSwapActionRoundTrip(t *testing.T) {
	g := actionGraph(t)
	// Add an alternate producer for the swap target.
	if _, err := g.Add(passthrough("alt")); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "alt", 0); err != nil {
		t.Fatal(err)
	}
	a := &SwapAction{
		Break: core.Edge{From: "mid", To: "app", Port: 0},
		Make:  core.Edge{From: "alt", To: "app", Port: 0},
	}
	if got := len(a.Edges()); got != 2 {
		t.Fatalf("footprint edges = %d, want 2", got)
	}
	if err := a.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	es := edgeSet(g)
	if es[a.Break] || !es[a.Make] {
		t.Fatalf("swap not applied: %v", g.Edges())
	}
	if err := a.Revert(g); err != nil {
		t.Fatalf("Revert: %v", err)
	}
	es = edgeSet(g)
	if !es[a.Break] || es[a.Make] {
		t.Fatalf("swap not reverted: %v", g.Edges())
	}
	// Revert is idempotent: running it again on the restored graph is a
	// no-op, not an error.
	if err := a.Revert(g); err != nil {
		t.Fatalf("idempotent Revert: %v", err)
	}
}

func TestSwapActionFailedMakeRestoresBreak(t *testing.T) {
	g := actionGraph(t)
	a := &SwapAction{
		Break: core.Edge{From: "mid", To: "app", Port: 0},
		Make:  core.Edge{From: "ghost", To: "app", Port: 0},
	}
	if err := a.Apply(g); err == nil {
		t.Fatal("Apply succeeded with a missing make source")
	}
	if !edgeSet(g)[a.Break] {
		t.Fatal("failed Apply did not restore the broken edge")
	}
}

// namedFeature is a no-op feature with a configurable name.
type namedFeature struct{ name string }

func (f namedFeature) FeatureName() string { return f.name }

func TestFeatureActionRoundTrip(t *testing.T) {
	g := actionGraph(t)
	a := &FeatureAction{
		Target: "mid",
		Name:   "cfg-key", // deliberately differs from FeatureName
		Build:  func() core.Feature { return namedFeature{name: "real.name"} },
	}
	if a.Edges() != nil {
		t.Fatal("feature action must have no structural footprint")
	}
	if err := a.Apply(g); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	n, _ := g.Node("mid")
	if _, ok := n.Feature("real.name"); !ok {
		t.Fatal("feature not attached under its own name")
	}
	// Revert must detach by the attached instance's FeatureName, not
	// the config-side key.
	if err := a.Revert(g); err != nil {
		t.Fatalf("Revert: %v", err)
	}
	if _, ok := n.Feature("real.name"); ok {
		t.Fatal("feature still attached after revert")
	}
	// Idempotent revert.
	if err := a.Revert(g); err != nil {
		t.Fatalf("idempotent Revert: %v", err)
	}
}

func TestFeatureActionMissingTarget(t *testing.T) {
	g := actionGraph(t)
	a := &FeatureAction{
		Target: "ghost",
		Name:   "f",
		Build:  func() core.Feature { return namedFeature{name: "f"} },
	}
	if err := a.Apply(g); err == nil {
		t.Fatal("Apply succeeded on a missing target")
	}
	if err := a.Revert(g); err == nil {
		t.Fatal("Revert succeeded on a missing target")
	}
}
