package registry

import (
	"errors"
	"strings"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// gpsCatalog registers the Fig. 1 GPS pipeline component types.
func gpsCatalog(t *testing.T) *Registry {
	t.Helper()
	r := &Registry{}
	regs := []Registration{
		{
			Name: "Parser",
			Spec: gps.NewParser("proto").Spec(),
			New:  func(id string) core.Component { return gps.NewParser(id) },
		},
		{
			Name: "Interpreter",
			Spec: gps.NewInterpreter("proto", 0).Spec(),
			New:  func(id string) core.Component { return gps.NewInterpreter(id, 0) },
		},
	}
	for _, reg := range regs {
		if err := r.Register(reg); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func testTrace() *trace.Trace {
	return trace.OutdoorTrack(geo.Point{Lat: 56.16, Lon: 10.2}, 1, 2, 100, 1.4, time.Second)
}

func TestRegisterValidation(t *testing.T) {
	r := &Registry{}
	if err := r.Register(Registration{}); err == nil {
		t.Error("empty registration accepted")
	}
	reg := Registration{Name: "X", New: func(id string) core.Component { return nil }}
	if err := r.Register(reg); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(reg); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate error = %v, want ErrDuplicate", err)
	}
	if _, ok := r.Lookup("X"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := r.Lookup("Y"); ok {
		t.Error("Lookup found unregistered type")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "X" {
		t.Errorf("Names = %v", names)
	}
}

func TestResolveAssemblesFig1Pipeline(t *testing.T) {
	// Declared-dependency auto-assembly (E8): given only the sensor and
	// the application, the resolver instantiates Parser and Interpreter
	// and wires the chain.
	r := gpsCatalog(t)
	g := core.New()
	if _, err := g.Add(gps.NewReceiver("gps", testTrace(), gps.Config{Seed: 1, ColdStart: time.Second})); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}

	created, err := r.Resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 2 {
		t.Fatalf("created = %v, want Interpreter + Parser", created)
	}

	// The assembled pipeline must actually work.
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("auto-assembled pipeline delivered nothing")
	}

	// Verify the exact shape: gps -> Parser#1 -> Interpreter#1 -> app.
	edges := map[string]bool{}
	for _, e := range g.Edges() {
		edges[e.From+"->"+e.To] = true
	}
	for _, want := range []string{"gps->Parser#1", "Parser#1->Interpreter#1", "Interpreter#1->app"} {
		if !edges[want] {
			t.Errorf("missing edge %s (have %v)", want, edges)
		}
	}
}

func TestResolvePrefersExistingNodes(t *testing.T) {
	// With a parser already in the graph, the resolver wires it instead
	// of instantiating a second one.
	r := gpsCatalog(t)
	g := core.New()
	if _, err := g.Add(gps.NewReceiver("gps", testTrace(), gps.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(gps.NewParser("myparser")); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	created, err := r.Resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range created {
		if strings.HasPrefix(id, "Parser") {
			t.Errorf("resolver instantiated %s although myparser exists", id)
		}
	}
	myparser, _ := g.Node("myparser")
	if len(myparser.Downstream()) != 1 {
		t.Error("existing parser not wired into the pipeline")
	}
}

func TestResolveUnresolvable(t *testing.T) {
	r := &Registry{} // empty: nothing can provide positions
	g := core.New()
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	_, err := r.Resolve(g)
	if !errors.Is(err, ErrUnresolvable) {
		t.Errorf("error = %v, want ErrUnresolvable", err)
	}
}

func TestResolveRespectsRequiredFeatures(t *testing.T) {
	// A consumer requiring a feature must not be wired to a provider
	// without it.
	r := &Registry{}
	g := core.New()
	if _, err := g.Add(gps.NewParser("parser")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(gps.NewSatelliteFilter("filter", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(g); !errors.Is(err, ErrUnresolvable) {
		t.Error("resolver wired a connection missing a required feature")
	}

	// After attaching the feature the same resolution succeeds.
	parserNode, _ := g.Node("parser")
	if err := parserNode.AttachFeature(gps.NewSatellitesFeature()); err != nil {
		t.Fatal(err)
	}
	// The filter's own input is now satisfiable, but the parser's raw
	// input port has no provider; add one.
	if _, err := g.Add(gps.NewReceiver("gps", testTrace(), gps.Config{Seed: 2})); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(g); err != nil {
		t.Errorf("Resolve after attach: %v", err)
	}
}

func TestResolveCompleteGraphIsNoOp(t *testing.T) {
	r := gpsCatalog(t)
	g := core.New()
	if _, err := g.Add(gps.NewReceiver("gps", testTrace(), gps.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	created, err := r.Resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 0 {
		t.Errorf("created %v on a complete graph", created)
	}
}

func TestResolveSharesOutputsWhenNecessary(t *testing.T) {
	// Two sinks, one interpreter chain: the second sink forces fan-out
	// from the interpreter.
	r := gpsCatalog(t)
	g := core.New()
	if _, err := g.Add(gps.NewReceiver("gps", testTrace(), gps.Config{Seed: 1})); err != nil {
		t.Fatal(err)
	}
	a := core.NewSink("app-a", []core.Kind{positioning.KindPosition})
	b := core.NewSink("app-b", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(a); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(b); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(g); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || b.Len() == 0 {
		t.Errorf("deliveries a=%d b=%d; want both > 0", a.Len(), b.Len())
	}
}

func TestCatalog(t *testing.T) {
	r := gpsCatalog(t)
	cat := r.Catalog()
	if len(cat) != 2 {
		t.Fatalf("catalog = %v", cat)
	}
	if !strings.Contains(strings.Join(cat, "\n"), "Parser") {
		t.Errorf("catalog missing Parser: %v", cat)
	}
}

// selfFeeder is a type that consumes what it produces — resolution must
// not recurse through it.
func selfFeederReg() Registration {
	spec := core.Spec{
		Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{"loop.kind"}}},
		Output: core.OutputSpec{Kind: "loop.kind"},
	}
	return Registration{
		Name: "Loop",
		Spec: spec,
		New: func(id string) core.Component {
			return &core.FuncComponent{CompID: id, CompSpec: spec}
		},
	}
}

func TestResolveDoesNotRecurseSelfFeedingTypes(t *testing.T) {
	r := &Registry{}
	if err := r.Register(selfFeederReg()); err != nil {
		t.Fatal(err)
	}
	g := core.New()
	sink := core.NewSink("app", []core.Kind{"loop.kind"})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	// The only provider for loop.kind needs loop.kind itself: the
	// resolver must fail cleanly instead of instantiating a chain.
	_, err := r.Resolve(g)
	if !errors.Is(err, ErrUnresolvable) {
		t.Errorf("error = %v, want ErrUnresolvable", err)
	}
	if got := len(g.Nodes()); got != 1 {
		t.Errorf("graph has %d nodes after failed resolve, want 1 (rollback)", got)
	}
}

func TestResolveBacktracksDeadEndProvider(t *testing.T) {
	// Two providers of "pos": Dead needs an unobtainable input; Good is
	// registered AFTER Dead and needs nothing. Resolution must back out
	// of Dead and pick Good, leaving no Dead instances behind.
	r := &Registry{}
	deadSpec := core.Spec{
		Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{"unobtainium"}}},
		Output: core.OutputSpec{Kind: "pos"},
	}
	if err := r.Register(Registration{
		Name: "Dead",
		Spec: deadSpec,
		New: func(id string) core.Component {
			return &core.FuncComponent{CompID: id, CompSpec: deadSpec}
		},
	}); err != nil {
		t.Fatal(err)
	}
	goodSpec := core.Spec{Output: core.OutputSpec{Kind: "pos"}}
	if err := r.Register(Registration{
		Name: "Good",
		Spec: goodSpec,
		New: func(id string) core.Component {
			return &core.FuncComponent{CompID: id, CompSpec: goodSpec}
		},
	}); err != nil {
		t.Fatal(err)
	}

	g := core.New()
	if _, err := g.Add(core.NewSink("app", []core.Kind{"pos"})); err != nil {
		t.Fatal(err)
	}
	created, err := r.Resolve(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 1 || created[0] != "Good#1" {
		t.Errorf("created = %v, want [Good#1]", created)
	}
	if _, ok := g.Node("Dead#1"); ok {
		t.Error("dead-end instance left in the graph")
	}
}
