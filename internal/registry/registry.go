// Package registry is the PerPos analogue of the OSGi service platform
// the paper built on: a typed registry of Processing Component
// factories and a dependency resolver that assembles processing graphs
// automatically from declared requirements and capabilities ("as custom
// components are added to the PerPos middleware the dependencies are
// resolved and when satisfied the components are added to the
// processing graph appropriately and the classes implementing the
// Processing Component functionality is instantiated", §2.1).
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"perpos/internal/core"
)

// Errors returned by registration and resolution.
var (
	// ErrDuplicate indicates a component type registered twice.
	ErrDuplicate = errors.New("registry: duplicate registration")
	// ErrUnresolvable indicates an input port no capability can satisfy.
	ErrUnresolvable = errors.New("registry: no provider for requirement")
	// ErrDepth indicates resolution exceeded the dependency-chain bound.
	ErrDepth = errors.New("registry: resolution depth exceeded")
)

// Factory instantiates a registered component type under a fresh
// instance ID.
type Factory func(instanceID string) core.Component

// Registration declares a component type: its prototype spec and
// factory.
type Registration struct {
	// Name is the unique component type name.
	Name string
	// Spec is the declared ports and capabilities of instances.
	Spec core.Spec
	// New instantiates the type.
	New Factory
}

// Registry holds component type registrations. The zero value is ready
// to use.
type Registry struct {
	mu    sync.RWMutex
	regs  map[string]Registration
	order []string
}

// Register adds a component type.
func (r *Registry) Register(reg Registration) error {
	if reg.Name == "" || reg.New == nil {
		return fmt.Errorf("registry: registration needs name and factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.regs == nil {
		r.regs = make(map[string]Registration)
	}
	if _, ok := r.regs[reg.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, reg.Name)
	}
	r.regs[reg.Name] = reg
	r.order = append(r.order, reg.Name)
	return nil
}

// Lookup returns a registration by type name.
func (r *Registry) Lookup(name string) (Registration, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.regs[name]
	return reg, ok
}

// Names returns the registered type names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Instantiated records one component the resolver created: its fresh
// instance ID and the registered type it came from. The pairing is what
// lets a Blueprint replay the resolved structure with new instances —
// resolution runs once, instantiation many times.
type Instantiated struct {
	ID   string
	Type string
}

// Resolve connects every unconnected input port in g, preferring
// existing nodes and instantiating registered component types when no
// existing output satisfies a requirement. Newly instantiated
// components get IDs "<type>#<n>". It returns the IDs of the components
// it instantiated, in instantiation order.
//
// Resolution is deterministic (candidates in graph insertion order,
// registrations in registration order) and backtracks: a type whose own
// requirements turn out to be unsatisfiable is removed again and the
// next candidate tried. A registration is never used recursively inside
// its own provider chain, which keeps self-feeding types (e.g. fusion
// components that consume and produce positions) from recursing.
func (r *Registry) Resolve(g *core.Graph) ([]string, error) {
	plan, err := r.ResolvePlan(g)
	ids := make([]string, len(plan))
	for i, inst := range plan {
		ids[i] = inst.ID
	}
	return ids, err
}

// ResolvePlan is Resolve returning the full instantiation plan —
// (instance ID, type) pairs in instantiation order — so callers can
// reify the resolved structure into a reusable core.Blueprint instead
// of keeping only the one live graph.
func (r *Registry) ResolvePlan(g *core.Graph) ([]Instantiated, error) {
	var created []Instantiated
	instances := make(map[string]int)

	for {
		port, ok := firstOpenPort(g)
		if !ok {
			return created, nil
		}
		sub, err := r.satisfy(g, port, instances, make(map[string]bool), 0)
		if err != nil {
			return created, err
		}
		created = append(created, sub...)
	}
}

// openPort identifies one unconnected input port.
type openPort struct {
	node *core.Node
	port int
	spec core.PortSpec
}

func firstOpenPort(g *core.Graph) (openPort, bool) {
	for _, n := range g.Nodes() {
		up := n.Upstream()
		for i, u := range up {
			if u == nil {
				return openPort{node: n, port: i, spec: n.Spec().Inputs[i]}, true
			}
		}
	}
	return openPort{}, false
}

// satisfy connects one open port, instantiating (and if necessary
// backtracking) a provider chain. path holds the registration names on
// the current recursion path. It returns the IDs it instantiated.
func (r *Registry) satisfy(g *core.Graph, p openPort, instances map[string]int, path map[string]bool, depth int) ([]Instantiated, error) {
	if depth > 32 {
		return nil, ErrDepth
	}

	// 1. An existing node whose output is compatible and not yet
	// consumed (keeps pipelines linear).
	var fallback *core.Node
	for _, cand := range g.Nodes() {
		if cand == p.node {
			continue
		}
		if !outputSatisfies(cand.Spec().Output, cand.Capabilities(), p.spec) {
			continue
		}
		if len(cand.Downstream()) == 0 {
			if err := g.Connect(cand.ID(), p.node.ID(), p.port); err == nil {
				return nil, nil
			}
			continue
		}
		if fallback == nil {
			fallback = cand
		}
	}

	// 2. Instantiate a registered type whose output fits and whose own
	// requirements can be satisfied; undo and try the next on failure.
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	for _, name := range names {
		if path[name] {
			continue
		}
		reg, _ := r.Lookup(name)
		if !outputSatisfies(reg.Spec.Output, reg.Spec.Output.Features, p.spec) {
			continue
		}
		instances[name]++
		id := fmt.Sprintf("%s#%d", name, instances[name])
		comp := reg.New(id)
		if _, err := g.Add(comp); err != nil {
			return nil, fmt.Errorf("instantiate %q: %w", name, err)
		}
		if err := g.Connect(id, p.node.ID(), p.port); err != nil {
			_ = g.Remove(id)
			continue
		}
		created := []Instantiated{{ID: id, Type: name}}

		// Satisfy the new component's own inputs.
		path[name] = true
		node, _ := g.Node(id)
		ok := true
		for i := range reg.Spec.Inputs {
			sub, err := r.satisfy(g, openPort{node: node, port: i, spec: reg.Spec.Inputs[i]},
				instances, path, depth+1)
			if err != nil {
				ok = false
				break
			}
			created = append(created, sub...)
		}
		delete(path, name)

		if ok {
			return created, nil
		}
		// Backtrack: remove everything this attempt instantiated
		// (reverse order; Remove detaches edges).
		for i := len(created) - 1; i >= 0; i-- {
			_ = g.Remove(created[i].ID)
		}
	}

	// 3. Last resort: share an already-consumed output (fan-out).
	if fallback != nil {
		if err := g.Connect(fallback.ID(), p.node.ID(), p.port); err == nil {
			return nil, nil
		}
	}

	return nil, fmt.Errorf("%w: %s port %d (%s accepts %v, requires %v)",
		ErrUnresolvable, p.node.ID(), p.port, p.spec.Name, p.spec.Accepts, p.spec.RequiresFeatures)
}

// outputSatisfies reports whether an output (with effective feature
// capabilities) satisfies an input port's kinds and required features.
func outputSatisfies(out core.OutputSpec, capabilities []string, in core.PortSpec) bool {
	kindOK := false
	for _, k := range in.Accepts {
		if k == core.KindAny || k == out.Kind {
			kindOK = true
			break
		}
		for _, extra := range out.ExtraKinds {
			if k == extra {
				kindOK = true
				break
			}
		}
	}
	if !kindOK {
		return false
	}
	caps := make(map[string]bool, len(capabilities)+len(out.Features))
	for _, c := range capabilities {
		caps[c] = true
	}
	for _, c := range out.Features {
		caps[c] = true
	}
	for _, req := range in.RequiresFeatures {
		if !caps[req] {
			return false
		}
	}
	return true
}

// Catalog returns a human-readable listing of the registry for
// inspection tools.
func (r *Registry) Catalog() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.order))
	for _, name := range r.order {
		reg := r.regs[name]
		out = append(out, fmt.Sprintf("%s: %d input(s) -> %s", name, len(reg.Spec.Inputs), reg.Spec.Output.Kind))
	}
	sort.Strings(out)
	return out
}
