package config

import (
	"strings"
	"testing"
	"time"
)

const supervisedPipeline = `{
  "name": "fusion",
  "components": [
    {"id": "gps"},
    {"id": "app"}
  ],
  "connections": [
    {"from": "gps", "to": "app", "port": 0}
  ],
  "supervision": {
    "max_consecutive_errors": 2,
    "deadline_ms": 1000,
    "deadlines_ms": {"wifi": 150},
    "recovery_emissions": 3,
    "probe_interval_ms": 20,
    "sweep_ms": 10,
    "restart": {"max_restarts": 5, "base_ms": 2, "max_ms": 40, "multiplier": 2},
    "reroutes": [
      {
        "watch": "wifi",
        "break": {"from": "particle-filter", "to": "app", "port": 0},
        "make": {"from": "interpreter", "to": "app", "port": 0}
      }
    ]
  }
}`

func TestParseSupervision(t *testing.T) {
	p, err := Parse(strings.NewReader(supervisedPipeline))
	if err != nil {
		t.Fatal(err)
	}
	if p.Supervision == nil {
		t.Fatal("supervision block dropped")
	}

	pol := p.Supervision.Policy()
	if pol.MaxConsecutiveErrors != 2 {
		t.Errorf("MaxConsecutiveErrors = %d, want 2", pol.MaxConsecutiveErrors)
	}
	if pol.Deadline != time.Second {
		t.Errorf("Deadline = %v, want 1s", pol.Deadline)
	}
	if got := pol.Deadlines["wifi"]; got != 150*time.Millisecond {
		t.Errorf("Deadlines[wifi] = %v, want 150ms", got)
	}
	if pol.RecoveryEmissions != 3 {
		t.Errorf("RecoveryEmissions = %d, want 3", pol.RecoveryEmissions)
	}
	if pol.ProbeInterval != 20*time.Millisecond {
		t.Errorf("ProbeInterval = %v, want 20ms", pol.ProbeInterval)
	}
	if pol.Sweep != 10*time.Millisecond {
		t.Errorf("Sweep = %v, want 10ms", pol.Sweep)
	}
	r := pol.Restart
	if r.MaxRestarts != 5 || r.Base != 2*time.Millisecond || r.Max != 40*time.Millisecond || r.Multiplier != 2 {
		t.Errorf("Restart = %+v, want {5 2ms 40ms 2}", r)
	}

	rr := p.Supervision.HealthReroutes()
	if len(rr) != 1 {
		t.Fatalf("reroutes = %d, want 1", len(rr))
	}
	if rr[0].Watch != "wifi" {
		t.Errorf("Watch = %q, want wifi", rr[0].Watch)
	}
	if rr[0].Break.From != "particle-filter" || rr[0].Break.To != "app" || rr[0].Break.Port != 0 {
		t.Errorf("Break = %+v", rr[0].Break)
	}
	if rr[0].Make.From != "interpreter" || rr[0].Make.To != "app" || rr[0].Make.Port != 0 {
		t.Errorf("Make = %+v", rr[0].Make)
	}
}

func TestParseWithoutSupervision(t *testing.T) {
	p, err := Parse(strings.NewReader(`{"name": "bare", "components": [{"id": "gps"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Supervision != nil {
		t.Errorf("Supervision = %+v, want nil when absent", p.Supervision)
	}
}
