package config

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/core"
	"perpos/internal/rules"
	"perpos/internal/wifi"
)

const ruledPipeline = `{
  "name": "ruled",
  "components": [
    {"id": "gps"},
    {"id": "parser", "type": "Parser"},
    {"id": "interpreter", "type": "Interpreter"},
    {"id": "app"}
  ],
  "connections": [
    {"from": "gps", "to": "parser", "port": 0},
    {"from": "parser", "to": "interpreter", "port": 0},
    {"from": "interpreter", "to": "app", "port": 0}
  ],
  "rules": {
    "rules": [
      {
        "name": "accuracy-filter",
        "when": {"signal": "attr:hdop", "op": ">", "value": 4},
        "clear_when": {"signal": "attr:hdop", "op": "<", "value": 2.5},
        "engage_after_ms": 100,
        "disengage_after_ms": 200,
        "cooldown_ms": 300,
        "max_flaps": 4,
        "flap_window_ms": 5000,
        "quarantine_ms": 10000,
        "priority": 1,
        "group": "accuracy",
        "action": {
          "kind": "insert",
          "component": {"id": "hdop-filter", "type": "HDOPFilter"},
          "at": {"from": "parser", "to": "interpreter", "port": 0}
        },
        "guard": {
          "signal": "errors:hdop-filter",
          "op": ">",
          "value": 0,
          "delta": true,
          "probation_ms": 700
        }
      },
      {
        "name": "swap",
        "when": {"signal": "availability", "op": ">=", "value": 1},
        "action": {
          "kind": "swap",
          "break": {"from": "interpreter", "to": "app", "port": 0},
          "make": {"from": "parser", "to": "app", "port": 0}
        }
      },
      {
        "name": "power",
        "when": {"signal": "attr:speedMS@interpreter", "op": "<", "value": 0.3},
        "action": {"kind": "feature", "target": "gps", "feature": "periodic"}
      }
    ]
  }
}`

func TestParseAndReifyRules(t *testing.T) {
	p, err := Parse(strings.NewReader(ruledPipeline))
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules == nil || len(p.Rules.Rules) != 3 {
		t.Fatalf("rules block dropped: %+v", p.Rules)
	}

	l, _ := newLoader(t)
	l.Features["periodic"] = l.Features["satellites"] // any factory will do
	rs, err := l.Rules(p.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d rules, want 3", len(rs))
	}

	r := rs[0]
	if r.Name != "accuracy-filter" ||
		r.When != (rules.Condition{Signal: "attr:hdop", Op: rules.OpGT, Value: 4}) ||
		r.ClearWhen == nil || r.ClearWhen.Op != rules.OpLT ||
		r.EngageAfter != 100*time.Millisecond ||
		r.DisengageAfter != 200*time.Millisecond ||
		r.Cooldown != 300*time.Millisecond ||
		r.MaxFlaps != 4 || r.FlapWindow != 5*time.Second ||
		r.QuarantineFor != 10*time.Second ||
		r.Priority != 1 || r.Group != "accuracy" {
		t.Fatalf("rule 0 conversion wrong: %+v", r)
	}
	ia, ok := r.Action.(*rules.InsertAction)
	if !ok || ia.ID != "hdop-filter" || ia.From != "parser" || ia.To != "interpreter" {
		t.Fatalf("rule 0 action wrong: %#v", r.Action)
	}
	if c := ia.Build("x"); c.ID() != "x" {
		t.Fatalf("insert factory built %q, want the requested id", c.ID())
	}
	if r.Guard == nil || !r.Guard.Delta || r.Guard.Probation != 700*time.Millisecond ||
		r.Guard.Signal != "errors:hdop-filter" {
		t.Fatalf("rule 0 guard wrong: %+v", r.Guard)
	}

	if _, ok := rs[1].Action.(*rules.SwapAction); !ok {
		t.Fatalf("rule 1 action wrong: %#v", rs[1].Action)
	}
	fa, ok := rs[2].Action.(*rules.FeatureAction)
	if !ok || fa.Target != "gps" {
		t.Fatalf("rule 2 action wrong: %#v", rs[2].Action)
	}

	// Nil def is a no-op, not an error.
	if rs, err := l.Rules(nil); err != nil || rs != nil {
		t.Fatalf("Rules(nil) = %v, %v", rs, err)
	}
}

func TestRulesErrorsWrapErrBadRule(t *testing.T) {
	l, _ := newLoader(t)
	for name, d := range map[string]*RulesDef{
		"bad-signal": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "bogus", Op: ">"},
			Action: RuleActionDef{Kind: "swap", Break: &ConnectionDef{From: "a", To: "b"}, Make: &ConnectionDef{From: "c", To: "b"}},
		}}},
		"bad-op": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "attr:x", Op: "~"},
			Action: RuleActionDef{Kind: "swap", Break: &ConnectionDef{From: "a", To: "b"}, Make: &ConnectionDef{From: "c", To: "b"}},
		}}},
		"unknown-kind": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "attr:x", Op: ">"},
			Action: RuleActionDef{Kind: "explode"},
		}}},
		"insert-no-type": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "attr:x", Op: ">"},
			Action: RuleActionDef{Kind: "insert", Component: ComponentDef{ID: "f"}, At: &ConnectionDef{From: "a", To: "b"}},
		}}},
		"insert-unknown-type": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "attr:x", Op: ">"},
			Action: RuleActionDef{Kind: "insert", Component: ComponentDef{ID: "f", Type: "NoSuchThing"}, At: &ConnectionDef{From: "a", To: "b"}},
		}}},
		"insert-no-at": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "attr:x", Op: ">"},
			Action: RuleActionDef{Kind: "insert", Component: ComponentDef{ID: "f", Type: "HDOPFilter"}},
		}}},
		"swap-half": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "attr:x", Op: ">"},
			Action: RuleActionDef{Kind: "swap", Break: &ConnectionDef{From: "a", To: "b"}},
		}}},
		"feature-unknown": {Rules: []RuleDef{{
			Name:   "r",
			When:   RuleConditionDef{Signal: "attr:x", Op: ">"},
			Action: RuleActionDef{Kind: "feature", Target: "gps", Feature: "no-such-feature"},
		}}},
		"no-name": {Rules: []RuleDef{{
			When:   RuleConditionDef{Signal: "attr:x", Op: ">"},
			Action: RuleActionDef{Kind: "feature", Target: "gps", Feature: "satellites"},
		}}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := l.Rules(d); !errors.Is(err, ErrBadRule) {
				t.Fatalf("want ErrBadRule, got %v", err)
			}
		})
	}
}

// The shipped demo config must parse, reify against the standard
// catalog, and line up with the supervision block it shares edges with.
func TestRulesFusionExampleConfig(t *testing.T) {
	f, err := os.Open("../../examples/configs/rules-fusion.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules == nil || p.Supervision == nil {
		t.Fatal("example config must declare both rules and supervision")
	}

	b := building.Evaluation()
	db := wifi.Survey(wifi.DefaultDeployment(b), 0, wifi.SurveyConfig{})
	reg, err := catalog.Standard(catalog.Deps{Building: b, Database: db})
	if err != nil {
		t.Fatal(err)
	}
	l := &Loader{
		Registry: reg,
		Features: map[string]func() core.Feature{
			"hdop":     nil, // never built here; reify only needs the rules' own keys
			"periodic": func() core.Feature { return nil },
		},
	}
	rs, err := l.Rules(p.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("example ships %d rules, want the three case studies", len(rs))
	}

	// The provider-swap rule must deliberately share an edge with the
	// supervisor's reroutes so arbitration has something to arbitrate.
	var swap *rules.SwapAction
	for _, r := range rs {
		if a, ok := r.Action.(*rules.SwapAction); ok {
			swap = a
		}
	}
	if swap == nil {
		t.Fatal("example has no swap rule")
	}
	shared := false
	for _, rr := range p.Supervision.HealthReroutes() {
		if rr.Break == swap.Break || rr.Make == swap.Break || rr.Break == swap.Make || rr.Make == swap.Make {
			shared = true
		}
	}
	if !shared {
		t.Fatal("swap rule shares no edge with the supervision reroutes")
	}
}
