package config

import (
	"time"

	"perpos/internal/core"
	"perpos/internal/health"
)

// SupervisionDef is the JSON schema for a pipeline's supervision
// policy: the breaker thresholds, watchdog deadlines, source restart
// backoff and degradation reroutes a deployment declares alongside its
// wiring. Durations are milliseconds, matching the rest of the schema's
// integer fields.
type SupervisionDef struct {
	// MaxConsecutiveErrors trips a node's breaker (0 = default 3).
	MaxConsecutiveErrors int `json:"max_consecutive_errors,omitempty"`
	// DeadlineMS is the default last-output watchdog deadline for
	// watched nodes (0 disables).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// DeadlinesMS overrides the watchdog deadline per component.
	DeadlinesMS map[string]int `json:"deadlines_ms,omitempty"`
	// RecoveryEmissions closes the breaker again (0 = default 1).
	RecoveryEmissions int `json:"recovery_emissions,omitempty"`
	// ProbeIntervalMS paces half-open probes (0 = default 500).
	ProbeIntervalMS int `json:"probe_interval_ms,omitempty"`
	// SweepMS is the supervisor's evaluation period (0 = default 50).
	SweepMS int `json:"sweep_ms,omitempty"`
	// Restart bounds source restart-with-backoff.
	Restart *RestartDef `json:"restart,omitempty"`
	// Reroutes are the degradation rules.
	Reroutes []RerouteDef `json:"reroutes,omitempty"`
}

// RestartDef is the JSON schema for a source restart policy.
type RestartDef struct {
	MaxRestarts int     `json:"max_restarts,omitempty"`
	BaseMS      int     `json:"base_ms,omitempty"`
	MaxMS       int     `json:"max_ms,omitempty"`
	Multiplier  float64 `json:"multiplier,omitempty"`
}

// RerouteDef is the JSON schema for one degradation rule: when the
// watched component's breaker opens, the break connection is cut and
// the make connection established; recovery reverses the edit. Rules
// sharing a break connection are a conflict group; priority (lower
// first, declaration order on ties) picks which engages when several
// watches are down at once.
type RerouteDef struct {
	Watch    string        `json:"watch"`
	Break    ConnectionDef `json:"break"`
	Make     ConnectionDef `json:"make"`
	Priority int           `json:"priority,omitempty"`
}

// Policy converts the definition to a health.Policy.
func (d SupervisionDef) Policy() health.Policy {
	p := health.Policy{
		MaxConsecutiveErrors: d.MaxConsecutiveErrors,
		Deadline:             time.Duration(d.DeadlineMS) * time.Millisecond,
		RecoveryEmissions:    d.RecoveryEmissions,
		ProbeInterval:        time.Duration(d.ProbeIntervalMS) * time.Millisecond,
		Sweep:                time.Duration(d.SweepMS) * time.Millisecond,
	}
	if len(d.DeadlinesMS) > 0 {
		p.Deadlines = make(map[string]time.Duration, len(d.DeadlinesMS))
		for node, ms := range d.DeadlinesMS {
			p.Deadlines[node] = time.Duration(ms) * time.Millisecond
		}
	}
	if d.Restart != nil {
		p.Restart = core.RestartPolicy{
			MaxRestarts: d.Restart.MaxRestarts,
			Base:        time.Duration(d.Restart.BaseMS) * time.Millisecond,
			Max:         time.Duration(d.Restart.MaxMS) * time.Millisecond,
			Multiplier:  d.Restart.Multiplier,
		}
	}
	return p
}

// HealthReroutes converts the definition's reroutes to health.Reroute
// rules.
func (d SupervisionDef) HealthReroutes() []health.Reroute {
	out := make([]health.Reroute, 0, len(d.Reroutes))
	for _, r := range d.Reroutes {
		out = append(out, health.Reroute{
			Watch:    r.Watch,
			Break:    core.Edge{From: r.Break.From, To: r.Break.To, Port: r.Break.Port},
			Make:     core.Edge{From: r.Make.From, To: r.Make.To, Port: r.Make.Port},
			Priority: r.Priority,
		})
	}
	return out
}
