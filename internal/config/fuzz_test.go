package config

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perpos/internal/core"
	"perpos/internal/registry"
)

// FuzzParsePipeline feeds arbitrary bytes through the full declarative
// surface: Parse, then every definition-to-runtime conversion a loaded
// pipeline can trigger (rules, supervision, rollout, chaos). The
// contract under fuzz: no panics, and every rejection is a typed error
// — a malformed config must never take down a process that loads it.
func FuzzParsePipeline(f *testing.F) {
	// Seed with the shipped example configs plus targeted hostile cases;
	// the checked-in corpus under testdata/fuzz extends this set.
	examples, _ := filepath.Glob("../../examples/configs/*.json")
	for _, path := range examples {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	for _, seed := range []string{
		``,
		`{}`,
		`{"rules": {"rules": [{}]}}`,
		`{"rules": {"rules": [{"name": "r", "when": {"signal": "attr:", "op": ">"}, "action": {"kind": "swap"}}]}}`,
		`{"rules": {"rules": [{"name": "r", "when": {"signal": "attr:x@", "op": "≥", "value": 1e308}, "action": {"kind": "insert", "component": {"id": "", "type": ""}}}]}}`,
		`{"supervision": {"reroutes": [{"watch": ""}]}, "rules": {"rules": []}}`,
		`{"rollout": {"canary_fraction": -1, "max_p99_ms": -5}}`,
		`{"name": "\n\"", "components": [{"id": "a"}], "connections": [{"from": "a", "to": "a", "port": -1}]}`,
	} {
		f.Add([]byte(seed))
	}

	// A tiny registry so insert actions can resolve without dragging the
	// whole catalog (and its building geometry) into every fuzz exec.
	reg := &registry.Registry{}
	if err := reg.Register(registry.Registration{
		Name: "Pass",
		Spec: core.Spec{Name: "Pass", Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{"k"}}}, Output: core.OutputSpec{Kind: "k"}},
		New: func(id string) core.Component {
			return core.NewTransform(id, "k", "k", func(s core.Sample) (core.Sample, bool) { return s, true })
		},
	}); err != nil {
		f.Fatal(err)
	}
	l := &Loader{
		Registry: reg,
		Features: map[string]func() core.Feature{"f": func() core.Feature { return nil }},
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Parse(strings.NewReader(string(raw)))
		if err != nil {
			return // malformed JSON or unknown fields: rejected cleanly
		}
		if _, err := l.Rules(p.Rules); err != nil && !errors.Is(err, ErrBadRule) {
			t.Fatalf("Rules error not wrapped in ErrBadRule: %v", err)
		}
		if p.Supervision != nil {
			_ = p.Supervision.Policy()
			_ = p.Supervision.HealthReroutes()
		}
		if p.Rollout != nil {
			_ = p.Rollout.Config(2)
		}
		if p.Chaos != nil {
			_ = p.Chaos.Schedule()
		}
		if p.Checkpoint != nil {
			_ = p.Checkpoint.Every()
		}
	})
}
