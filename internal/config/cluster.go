package config

import (
	"time"

	"perpos/internal/cluster"
)

// ClusterDef is the JSON schema for the distributed session tier: how
// many nodes perpos-run starts, how the consistent-hash ring is shaped,
// and the failure-detection and handoff pacing the router uses.
type ClusterDef struct {
	// Nodes is the number of session-tier nodes to start (perpos-run's
	// -cluster flag overrides it).
	Nodes int `json:"nodes,omitempty"`
	// Replicas is the virtual-node count per member on the hash ring
	// (0 = router default, 64).
	Replicas int `json:"replicas,omitempty"`
	// ProbeIntervalMS is the health-sweep period (0 = default 250ms).
	ProbeIntervalMS int `json:"probe_interval_ms,omitempty"`
	// MaxConsecutiveErrors trips a node's breaker (0 = default 3).
	MaxConsecutiveErrors int `json:"max_consecutive_errors,omitempty"`
	// DeathAfterMS is how long a node stays quarantined before it is
	// declared dead and failed over (0 = default 8× probe interval).
	DeathAfterMS int `json:"death_after_ms,omitempty"`
	// HandoffConcurrency bounds parallel handoffs during a rebalance
	// (0 = default 4).
	HandoffConcurrency int `json:"handoff_concurrency,omitempty"`
	// DialTimeoutMS bounds one RPC dial (0 = default 1s).
	DialTimeoutMS int `json:"dial_timeout_ms,omitempty"`
	// CallTimeoutMS bounds one RPC round trip (0 = default 2s).
	CallTimeoutMS int `json:"call_timeout_ms,omitempty"`
	// Retries is the transport retry budget per RPC (-1 disables,
	// 0 = default 2).
	Retries int `json:"retries,omitempty"`
	// RetryBackoffMS is the initial retry backoff, doubled per attempt
	// (0 = default 20ms).
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
	// CheckpointEvery checkpoints each session every this many pump
	// rounds on every node (0 = node default 8, <0 disables).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Policy reifies the definition into the router's policy; zero fields
// fall through to the router defaults.
func (d ClusterDef) Policy() cluster.Policy {
	return cluster.Policy{
		Replicas:             d.Replicas,
		ProbeInterval:        time.Duration(d.ProbeIntervalMS) * time.Millisecond,
		MaxConsecutiveErrors: d.MaxConsecutiveErrors,
		DeathAfter:           time.Duration(d.DeathAfterMS) * time.Millisecond,
		HandoffConcurrency:   d.HandoffConcurrency,
		DialTimeout:          time.Duration(d.DialTimeoutMS) * time.Millisecond,
		CallTimeout:          time.Duration(d.CallTimeoutMS) * time.Millisecond,
		Retries:              d.Retries,
		RetryBackoff:         time.Duration(d.RetryBackoffMS) * time.Millisecond,
	}
}
