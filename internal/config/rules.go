package config

import (
	"errors"
	"fmt"
	"time"

	"perpos/internal/core"
	"perpos/internal/rules"
)

// ErrBadRule indicates a self-adaptation rule definition that cannot
// be reified: missing fields, an unknown action kind, or a condition
// the rules engine rejects.
var ErrBadRule = errors.New("config: invalid rule")

// RulesDef is the JSON schema for a pipeline's declarative
// self-adaptation rules — the paper's §3 case studies as data. Each
// rule watches a signal (sample attributes, per-node health counters,
// provider availability), engages a reversible graph edit when the
// condition has held for its dwell time, and reverts it when the clear
// condition holds. Durations are milliseconds like the rest of the
// schema; zero knobs take the engine's defaults.
type RulesDef struct {
	Rules []RuleDef `json:"rules"`
}

// RuleDef is one declarative adaptation rule.
type RuleDef struct {
	// Name identifies the rule in events and metrics.
	Name string `json:"name"`
	// When is the engage condition, e.g. {"signal": "attr:hdop",
	// "op": ">", "value": 4}.
	When RuleConditionDef `json:"when"`
	// ClearWhen is the disengage condition; omitted means "not When".
	// A separate clear threshold creates the hysteresis band.
	ClearWhen *RuleConditionDef `json:"clear_when,omitempty"`
	// EngageAfterMS is how long When must hold before the action fires.
	EngageAfterMS int `json:"engage_after_ms,omitempty"`
	// DisengageAfterMS is how long ClearWhen must hold before the
	// action is reverted (0 = engine default).
	DisengageAfterMS int `json:"disengage_after_ms,omitempty"`
	// CooldownMS bars re-engagement after a disengage (0 = default).
	CooldownMS int `json:"cooldown_ms,omitempty"`
	// MaxFlaps / FlapWindowMS bound transition churn before the rule
	// is quarantined (0 = defaults).
	MaxFlaps     int `json:"max_flaps,omitempty"`
	FlapWindowMS int `json:"flap_window_ms,omitempty"`
	// QuarantineMS is how long a flapping rule stays benched (0 =
	// default).
	QuarantineMS int `json:"quarantine_ms,omitempty"`
	// Priority and Group arbitrate conflicting rules: within a group at
	// most one rule is engaged, lowest priority first.
	Priority int    `json:"priority,omitempty"`
	Group    string `json:"group,omitempty"`
	// Action is the graph edit.
	Action RuleActionDef `json:"action"`
	// Guard optionally arms probation rollback.
	Guard *RuleGuardDef `json:"guard,omitempty"`
}

// RuleConditionDef compares a signal against a threshold. See the
// rules package for the signal grammar.
type RuleConditionDef struct {
	Signal string  `json:"signal"`
	Op     string  `json:"op"`
	Value  float64 `json:"value"`
}

// RuleGuardDef watches a signal during the probation window after an
// engagement; if it trips, the action is rolled back and the rule
// quarantined.
type RuleGuardDef struct {
	RuleConditionDef
	// Delta compares the signal's growth since engagement instead of
	// its absolute value (for monotone counters like errors:<node>).
	Delta bool `json:"delta,omitempty"`
	// ProbationMS bounds the guarded window (0 = engine default).
	ProbationMS int `json:"probation_ms,omitempty"`
}

// RuleActionDef is one reversible graph edit. Kind selects the shape:
//
//	"insert"  splice Component into the At edge (§3.1 filter insert)
//	"swap"    break one edge, make another (§3.3 provider swap)
//	"feature" attach Feature to Target (§3.2 power strategy)
type RuleActionDef struct {
	Kind string `json:"kind"`
	// Insert: the component to build (must carry a registry Type), the
	// edge to splice into, and the component's input port.
	Component ComponentDef   `json:"component,omitempty"`
	At        *ConnectionDef `json:"at,omitempty"`
	InPort    int            `json:"in_port,omitempty"`
	// Swap: the edge broken and the edge made while engaged.
	Break *ConnectionDef `json:"break,omitempty"`
	Make  *ConnectionDef `json:"make,omitempty"`
	// Feature: the feature (by loader factory name) and its host node.
	Target  string `json:"target,omitempty"`
	Feature string `json:"feature,omitempty"`
}

// Rules reifies the definition into engine rules, resolving insert
// component types against the loader's registry and feature names
// against its factories. All errors wrap ErrBadRule.
func (l *Loader) Rules(d *RulesDef) ([]rules.Rule, error) {
	if d == nil {
		return nil, nil
	}
	out := make([]rules.Rule, 0, len(d.Rules))
	for i, rd := range d.Rules {
		r, err := l.rule(rd)
		if err != nil {
			return nil, fmt.Errorf("%w: rule %d (%q): %w", ErrBadRule, i, rd.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func (l *Loader) rule(rd RuleDef) (rules.Rule, error) {
	action, err := l.ruleAction(rd.Action)
	if err != nil {
		return rules.Rule{}, err
	}
	r := rules.Rule{
		Name:           rd.Name,
		When:           ruleCondition(rd.When),
		EngageAfter:    time.Duration(rd.EngageAfterMS) * time.Millisecond,
		DisengageAfter: time.Duration(rd.DisengageAfterMS) * time.Millisecond,
		Cooldown:       time.Duration(rd.CooldownMS) * time.Millisecond,
		MaxFlaps:       rd.MaxFlaps,
		FlapWindow:     time.Duration(rd.FlapWindowMS) * time.Millisecond,
		QuarantineFor:  time.Duration(rd.QuarantineMS) * time.Millisecond,
		Priority:       rd.Priority,
		Group:          rd.Group,
		Action:         action,
	}
	if rd.ClearWhen != nil {
		c := ruleCondition(*rd.ClearWhen)
		r.ClearWhen = &c
	}
	if rd.Guard != nil {
		r.Guard = &rules.Guard{
			Condition: ruleCondition(rd.Guard.RuleConditionDef),
			Delta:     rd.Guard.Delta,
			Probation: time.Duration(rd.Guard.ProbationMS) * time.Millisecond,
		}
	}
	if err := rules.Validate(r); err != nil {
		return rules.Rule{}, err
	}
	return r, nil
}

func ruleCondition(d RuleConditionDef) rules.Condition {
	return rules.Condition{Signal: d.Signal, Op: rules.Op(d.Op), Value: d.Value}
}

func (l *Loader) ruleAction(d RuleActionDef) (rules.Action, error) {
	switch d.Kind {
	case "insert":
		if d.Component.ID == "" || d.Component.Type == "" {
			return nil, errors.New("insert action needs a component with id and type")
		}
		if d.At == nil {
			return nil, errors.New("insert action needs an at edge")
		}
		if l.Registry == nil {
			return nil, fmt.Errorf("%w: %q (loader has no registry)", ErrUnknownType, d.Component.Type)
		}
		reg, ok := l.Registry.Lookup(d.Component.Type)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownType, d.Component.Type)
		}
		return &rules.InsertAction{
			ID:     d.Component.ID,
			Build:  func(id string) core.Component { return reg.New(id) },
			From:   d.At.From,
			To:     d.At.To,
			Port:   d.At.Port,
			InPort: d.InPort,
		}, nil
	case "swap":
		if d.Break == nil || d.Make == nil {
			return nil, errors.New("swap action needs break and make edges")
		}
		return &rules.SwapAction{
			Break: core.Edge{From: d.Break.From, To: d.Break.To, Port: d.Break.Port},
			Make:  core.Edge{From: d.Make.From, To: d.Make.To, Port: d.Make.Port},
		}, nil
	case "feature":
		if d.Target == "" || d.Feature == "" {
			return nil, errors.New("feature action needs target and feature")
		}
		factory, ok := l.Features[d.Feature]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownFeature, d.Feature)
		}
		return &rules.FeatureAction{Target: d.Target, Name: d.Feature, Build: factory}, nil
	}
	return nil, fmt.Errorf("unknown action kind %q", d.Kind)
}
