package config

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perpos/internal/chaos"
	"perpos/internal/core"
	"perpos/internal/positioning"
	"perpos/internal/runtime"
)

const durablePipeline = `{
  "name": "durable",
  "components": [
    {"id": "gps"},
    {"id": "app"}
  ],
  "connections": [
    {"from": "gps", "to": "app", "port": 0}
  ],
  "supervision": {
    "max_consecutive_errors": 2,
    "reroutes": [
      {
        "watch": "gps",
        "break": {"from": "gps", "to": "app", "port": 0},
        "make": {"from": "gps", "to": "app", "port": 0},
        "priority": 3
      }
    ]
  },
  "checkpoint": {"dir": "", "every_ms": 100, "snapshot_every": 4},
  "chaos": {
    "steps": [
      {"at_ms": 5, "action": "kill", "target": "gps"},
      {"at_ms": 10, "action": "heal", "target": "gps"}
    ]
  }
}`

func TestLoaderManagerWiresSupervisionAndCheckpoints(t *testing.T) {
	p, err := Parse(strings.NewReader(durablePipeline))
	if err != nil {
		t.Fatal(err)
	}
	if p.Checkpoint == nil || p.Chaos == nil {
		t.Fatalf("checkpoint/chaos blocks dropped: %+v", p)
	}
	p.Checkpoint.Dir = t.TempDir()

	l := &Loader{
		InstanceFactories: map[string]core.ComponentFactory{
			"gps": func(id string) core.Component {
				return &core.SliceSource{CompID: id, Out: core.OutputSpec{Kind: positioning.KindPosition}}
			},
		},
	}
	m, err := l.Manager(p, runtime.SessionConfig{
		Provider: positioning.ProviderInfo{Technology: "test"},
		History:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := m.Checkpoints()
	if store == nil {
		t.Fatal("manager has no checkpoint store despite the checkpoint block")
	}
	defer store.Close()
	defer m.Close()

	s, err := m.GetOrCreate("alice")
	if err != nil {
		t.Fatal(err)
	}
	if s.Monitor() == nil || s.Supervisor() == nil {
		t.Fatal("supervision block did not reach the session")
	}
	if got := s.Monitor().Policy().MaxConsecutiveErrors; got != 2 {
		t.Errorf("MaxConsecutiveErrors = %d, want 2 from the definition", got)
	}

	// The declared store backs manual checkpoints.
	if _, err := s.Checkpoint(); err != nil {
		t.Fatalf("manual checkpoint: %v", err)
	}
	ids, err := store.Sessions()
	if err != nil || len(ids) != 1 || ids[0] != "alice" {
		t.Fatalf("store sessions = %v (%v), want [alice]", ids, err)
	}
}

func TestLoaderManagerBaseStoreWins(t *testing.T) {
	p, err := Parse(strings.NewReader(durablePipeline))
	if err != nil {
		t.Fatal(err)
	}
	defDir := t.TempDir()
	p.Checkpoint.Dir = defDir

	baseDir := t.TempDir()
	baseStore, err := CheckpointDef{Dir: baseDir}.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer baseStore.Close()

	l := &Loader{
		InstanceFactories: map[string]core.ComponentFactory{
			"gps": func(id string) core.Component {
				return &core.SliceSource{CompID: id, Out: core.OutputSpec{Kind: positioning.KindPosition}}
			},
		},
	}
	m, err := l.Manager(p, runtime.SessionConfig{Checkpoints: baseStore})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Checkpoints() != baseStore {
		t.Error("definition store overrode the base config's store")
	}
}

func TestCheckpointDefNeedsDir(t *testing.T) {
	if _, err := (CheckpointDef{}).Open(); err == nil {
		t.Fatal("Open with no dir succeeded")
	}
	if got := (CheckpointDef{EveryMS: 250}).Every(); got != 250*time.Millisecond {
		t.Errorf("Every = %v, want 250ms", got)
	}
}

type fakeControllable struct{ kills, heals int }

func (f *fakeControllable) Kill(error) { f.kills++ }
func (f *fakeControllable) Heal()      { f.heals++ }

func TestChaosDefScheduleRuns(t *testing.T) {
	d := ChaosDef{Steps: []ChaosStepDef{
		{AtMS: 0, Action: "kill", Target: "gps"},
		{AtMS: 1, Action: "heal", Target: "gps"},
	}}
	target := &fakeControllable{}
	if err := d.Schedule().Run(context.Background(), map[string]chaos.Controllable{"gps": target}); err != nil {
		t.Fatal(err)
	}
	if target.kills != 1 || target.heals != 1 {
		t.Errorf("kills=%d heals=%d, want 1/1", target.kills, target.heals)
	}
}

func TestChaosDefRejectsUnknownAction(t *testing.T) {
	d := ChaosDef{Steps: []ChaosStepDef{{AtMS: 0, Action: "explode", Target: "gps"}}}
	err := d.Schedule().Validate(map[string]chaos.Controllable{"gps": &fakeControllable{}})
	if err == nil {
		t.Fatal("unknown action validated")
	}
}

// The shipped example must stay parseable: it is the declarative
// counterpart of the soak test's hardcoded scenario.
func TestChaosFusionExampleParses(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "examples", "configs", "chaos-fusion.json"))
	if err != nil {
		t.Skipf("example config not reachable: %v", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Supervision == nil || p.Checkpoint == nil || p.Chaos == nil {
		t.Fatalf("example missing blocks: supervision=%v checkpoint=%v chaos=%v",
			p.Supervision != nil, p.Checkpoint != nil, p.Chaos != nil)
	}
	rr := p.Supervision.HealthReroutes()
	if len(rr) != 2 || rr[0].Priority != 0 || rr[1].Priority != 1 {
		t.Fatalf("example reroutes = %+v, want explicit priorities 0 and 1", rr)
	}
	if rr[0].Break != rr[1].Break {
		t.Error("example reroutes should share a Break edge (one conflict group)")
	}
	sched := p.Chaos.Schedule()
	if len(sched.Steps) != 2 || sched.Steps[0].Action != chaos.ActionKill || sched.Steps[0].At != 400*time.Millisecond {
		t.Fatalf("example schedule = %+v", sched.Steps)
	}
}
