package config

import (
	"errors"
	"strings"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

// fig1JSON is the GPS half of Fig. 1 as a system-level configuration,
// with the satellite feature attached declaratively.
const fig1JSON = `{
  "name": "fig1-gps",
  "components": [
    {"id": "gps"},
    {"id": "parser", "type": "Parser"},
    {"id": "interpreter", "type": "Interpreter"},
    {"id": "app"}
  ],
  "connections": [
    {"from": "gps", "to": "parser", "port": 0},
    {"from": "parser", "to": "interpreter", "port": 0},
    {"from": "interpreter", "to": "app", "port": 0}
  ],
  "features": [
    {"component": "parser", "feature": "satellites"}
  ]
}`

func newLoader(t *testing.T) (*Loader, *core.Sink) {
	t.Helper()
	reg, err := catalog.Standard(catalog.Deps{Building: building.Evaluation()})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.OutdoorTrack(testOrigin, 1, 2, 100, 1.4, time.Second)
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	return &Loader{
		Registry: reg,
		Instances: map[string]core.Component{
			"gps": gps.NewReceiver("gps", tr, gps.Config{Seed: 2, ColdStart: time.Second}),
			"app": sink,
		},
		Features: map[string]func() core.Feature{
			"satellites": func() core.Feature { return gps.NewSatellitesFeature() },
			"hdop":       func() core.Feature { return gps.NewHDOPFeature() },
		},
	}, sink
}

func TestParseAndBuildFig1(t *testing.T) {
	p, err := Parse(strings.NewReader(fig1JSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fig1-gps" || len(p.Components) != 4 || len(p.Connections) != 3 {
		t.Fatalf("parsed = %+v", p)
	}

	loader, sink := newLoader(t)
	g := core.New()
	if err := loader.Build(g, p); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The declaratively attached feature is live.
	parserNode, _ := g.Node("parser")
	if !parserNode.HasCapability(gps.FeatureSatellites) {
		t.Error("satellites feature not attached")
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("configured pipeline delivered nothing")
	}
	for _, s := range sink.Received() {
		if _, ok := s.IntAttr(gps.AttrSatellites); !ok {
			t.Error("positions missing the feature-attached satellite count")
			break
		}
	}
}

func TestBuildWithResolution(t *testing.T) {
	// Only endpoints declared; `resolve` fills the middle from the
	// registry.
	const partial = `{
      "name": "partial",
      "components": [{"id": "gps"}, {"id": "app"}],
      "connections": [],
      "resolve": true
    }`
	p, err := Parse(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	loader, sink := newLoader(t)
	g := core.New()
	if err := loader.Build(g, p); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("resolved pipeline delivered nothing")
	}
}

// blueprintLoader is newLoader plus per-instantiation factories, so
// blueprints built from the pipeline can be instantiated repeatedly.
func blueprintLoader(t *testing.T) *Loader {
	t.Helper()
	loader, _ := newLoader(t)
	tr := trace.OutdoorTrack(testOrigin, 1, 2, 100, 1.4, time.Second)
	loader.InstanceFactories = map[string]core.ComponentFactory{
		"gps": func(id string) core.Component {
			return gps.NewReceiver(id, tr, gps.Config{Seed: 2, ColdStart: time.Second})
		},
		"app": func(id string) core.Component {
			return core.NewSink(id, []core.Kind{positioning.KindPosition})
		},
	}
	return loader
}

func TestBlueprintFromPipeline(t *testing.T) {
	p, err := Parse(strings.NewReader(fig1JSON))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := blueprintLoader(t).Blueprint(p)
	if err != nil {
		t.Fatal(err)
	}

	// Two independent instances from one declaration.
	for i := 0; i < 2; i++ {
		g, err := bp.Instantiate()
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		parserNode, _ := g.Node("parser")
		if !parserNode.HasCapability(gps.FeatureSatellites) {
			t.Fatalf("instance %d: satellites feature not attached", i)
		}
		if _, err := g.Run(0); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		appNode, _ := g.Node("app")
		if appNode.Component().(*core.Sink).Len() == 0 {
			t.Fatalf("instance %d delivered nothing", i)
		}
	}
}

func TestBlueprintResolutionRunsOnce(t *testing.T) {
	// Only endpoints declared; resolution fills the middle ONCE, into
	// the blueprint — every instance replays the resolved structure.
	const partial = `{
	  "name": "partial",
	  "components": [{"id": "gps"}, {"id": "app"}],
	  "connections": [],
	  "resolve": true
	}`
	p, err := Parse(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := blueprintLoader(t).Blueprint(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bp.Components()); got <= 2 {
		t.Fatalf("blueprint has %d components, want endpoints plus resolved chain", got)
	}

	// The resolved blueprint matches the structure Build produces.
	loader, _ := newLoader(t)
	reference := core.New()
	if err := loader.Build(reference, p); err != nil {
		t.Fatal(err)
	}
	g, err := bp.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.Nodes()), len(reference.Nodes()); got != want {
		t.Errorf("instance has %d components, reference Build has %d", got, want)
	}
	if got, want := len(g.Edges()), len(reference.Edges()); got != want {
		t.Errorf("instance has %d edges, reference Build has %d", got, want)
	}

	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	appNode, _ := g.Node("app")
	if appNode.Component().(*core.Sink).Len() == 0 {
		t.Error("resolved blueprint instance delivered nothing")
	}

	// A second instance is independent and works too.
	g2, err := bp.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestBlueprintPlaceholders(t *testing.T) {
	// Without InstanceFactories, untyped defs become placeholders bound
	// at instantiation time — the runtime's per-target source hook.
	p, err := Parse(strings.NewReader(fig1JSON))
	if err != nil {
		t.Fatal(err)
	}
	loader, _ := newLoader(t)
	bp, err := loader.Blueprint(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.Placeholders(); len(got) != 2 {
		t.Fatalf("Placeholders = %v, want [gps app]", got)
	}
	if _, err := bp.Instantiate(); !errors.Is(err, core.ErrOverrideRequired) {
		t.Fatalf("Instantiate without overrides = %v, want ErrOverrideRequired", err)
	}
	tr := trace.OutdoorTrack(testOrigin, 1, 2, 100, 1.4, time.Second)
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	g, err := bp.Instantiate(
		core.WithComponentOverride("gps", func(id string) core.Component {
			return gps.NewReceiver(id, tr, gps.Config{Seed: 2, ColdStart: time.Second})
		}),
		core.WithComponentOverride("app", func(id string) core.Component { return sink }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("placeholder-bound instance delivered nothing")
	}
}

func TestBuildErrors(t *testing.T) {
	loader, _ := newLoader(t)

	tests := []struct {
		name string
		json string
		want error
	}{
		{
			"unknown type",
			`{"components": [{"id": "x", "type": "Nope"}]}`,
			ErrUnknownType,
		},
		{
			"unknown instance",
			`{"components": [{"id": "ghost"}]}`,
			ErrUnknownInstance,
		},
		{
			"unknown feature",
			`{"components": [{"id": "gps"}], "features": [{"component": "gps", "feature": "warp"}]}`,
			ErrUnknownFeature,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := Parse(strings.NewReader(tt.json))
			if err != nil {
				t.Fatal(err)
			}
			g := core.New()
			if err := loader.Build(g, p); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}

	t.Run("bad connection", func(t *testing.T) {
		p, err := Parse(strings.NewReader(
			`{"components": [{"id": "gps"}, {"id": "app"}],
			  "connections": [{"from": "gps", "to": "app", "port": 5}]}`))
		if err != nil {
			t.Fatal(err)
		}
		g := core.New()
		if err := loader.Build(g, p); err == nil {
			t.Error("bad port accepted")
		}
	})

	t.Run("unknown json field", func(t *testing.T) {
		if _, err := Parse(strings.NewReader(`{"nope": 1}`)); err == nil {
			t.Error("unknown field accepted")
		}
	})

	t.Run("resolution without registry", func(t *testing.T) {
		l := &Loader{Instances: loader.Instances}
		p := Pipeline{Components: []ComponentDef{{ID: "gps"}}, Resolve: true}
		g := core.New()
		if err := l.Build(g, p); err == nil {
			t.Error("resolution without registry accepted")
		}
	})
}
