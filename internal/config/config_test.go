package config

import (
	"errors"
	"strings"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

// fig1JSON is the GPS half of Fig. 1 as a system-level configuration,
// with the satellite feature attached declaratively.
const fig1JSON = `{
  "name": "fig1-gps",
  "components": [
    {"id": "gps"},
    {"id": "parser", "type": "Parser"},
    {"id": "interpreter", "type": "Interpreter"},
    {"id": "app"}
  ],
  "connections": [
    {"from": "gps", "to": "parser", "port": 0},
    {"from": "parser", "to": "interpreter", "port": 0},
    {"from": "interpreter", "to": "app", "port": 0}
  ],
  "features": [
    {"component": "parser", "feature": "satellites"}
  ]
}`

func newLoader(t *testing.T) (*Loader, *core.Sink) {
	t.Helper()
	reg, err := catalog.Standard(catalog.Deps{Building: building.Evaluation()})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.OutdoorTrack(testOrigin, 1, 2, 100, 1.4, time.Second)
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	return &Loader{
		Registry: reg,
		Instances: map[string]core.Component{
			"gps": gps.NewReceiver("gps", tr, gps.Config{Seed: 2, ColdStart: time.Second}),
			"app": sink,
		},
		Features: map[string]func() core.Feature{
			"satellites": func() core.Feature { return gps.NewSatellitesFeature() },
			"hdop":       func() core.Feature { return gps.NewHDOPFeature() },
		},
	}, sink
}

func TestParseAndBuildFig1(t *testing.T) {
	p, err := Parse(strings.NewReader(fig1JSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fig1-gps" || len(p.Components) != 4 || len(p.Connections) != 3 {
		t.Fatalf("parsed = %+v", p)
	}

	loader, sink := newLoader(t)
	g := core.New()
	if err := loader.Build(g, p); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The declaratively attached feature is live.
	parserNode, _ := g.Node("parser")
	if !parserNode.HasCapability(gps.FeatureSatellites) {
		t.Error("satellites feature not attached")
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("configured pipeline delivered nothing")
	}
	for _, s := range sink.Received() {
		if _, ok := s.IntAttr(gps.AttrSatellites); !ok {
			t.Error("positions missing the feature-attached satellite count")
			break
		}
	}
}

func TestBuildWithResolution(t *testing.T) {
	// Only endpoints declared; `resolve` fills the middle from the
	// registry.
	const partial = `{
      "name": "partial",
      "components": [{"id": "gps"}, {"id": "app"}],
      "connections": [],
      "resolve": true
    }`
	p, err := Parse(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	loader, sink := newLoader(t)
	g := core.New()
	if err := loader.Build(g, p); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Error("resolved pipeline delivered nothing")
	}
}

func TestBuildErrors(t *testing.T) {
	loader, _ := newLoader(t)

	tests := []struct {
		name string
		json string
		want error
	}{
		{
			"unknown type",
			`{"components": [{"id": "x", "type": "Nope"}]}`,
			ErrUnknownType,
		},
		{
			"unknown instance",
			`{"components": [{"id": "ghost"}]}`,
			ErrUnknownInstance,
		},
		{
			"unknown feature",
			`{"components": [{"id": "gps"}], "features": [{"component": "gps", "feature": "warp"}]}`,
			ErrUnknownFeature,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := Parse(strings.NewReader(tt.json))
			if err != nil {
				t.Fatal(err)
			}
			g := core.New()
			if err := loader.Build(g, p); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}

	t.Run("bad connection", func(t *testing.T) {
		p, err := Parse(strings.NewReader(
			`{"components": [{"id": "gps"}, {"id": "app"}],
			  "connections": [{"from": "gps", "to": "app", "port": 5}]}`))
		if err != nil {
			t.Fatal(err)
		}
		g := core.New()
		if err := loader.Build(g, p); err == nil {
			t.Error("bad port accepted")
		}
	})

	t.Run("unknown json field", func(t *testing.T) {
		if _, err := Parse(strings.NewReader(`{"nope": 1}`)); err == nil {
			t.Error("unknown field accepted")
		}
	})

	t.Run("resolution without registry", func(t *testing.T) {
		l := &Loader{Instances: loader.Instances}
		p := Pipeline{Components: []ComponentDef{{ID: "gps"}}, Resolve: true}
		g := core.New()
		if err := l.Build(g, p); err == nil {
			t.Error("resolution without registry accepted")
		}
	})
}
