package config

import (
	"errors"
	"time"

	"perpos/internal/checkpoint"
	"perpos/internal/runtime"
)

// CheckpointDef is the JSON schema for durable session checkpointing:
// the on-disk store location and the cadence at which running sessions
// persist their component state.
type CheckpointDef struct {
	// Dir is the checkpoint store directory (created on open).
	Dir string `json:"dir"`
	// EveryMS checkpoints running sessions on this period; 0 keeps only
	// evict-time and manual checkpoints.
	EveryMS int `json:"every_ms,omitempty"`
	// SnapshotEvery compacts a session's journal into a snapshot after
	// this many appends (0 = store default).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Fsync forces an fsync after every journal append — maximum
	// durability, at a throughput cost.
	Fsync bool `json:"fsync,omitempty"`
}

// Open opens the checkpoint store the definition describes.
func (d CheckpointDef) Open() (*checkpoint.Store, error) {
	if d.Dir == "" {
		return nil, errors.New("config: checkpoint needs a dir")
	}
	return checkpoint.Open(d.Dir, checkpoint.Options{
		SnapshotEvery: d.SnapshotEvery,
		Fsync:         d.Fsync,
	})
}

// Every returns the periodic checkpoint cadence (0 = disabled).
func (d CheckpointDef) Every() time.Duration {
	return time.Duration(d.EveryMS) * time.Millisecond
}

// RolloutDef is the JSON schema for a pipeline's rolling-upgrade
// parameters: how large the canary cohort is, how long it soaks, and
// the metric gate that decides ramp versus rollback.
type RolloutDef struct {
	// CanaryFraction of live sessions migrated first (0 = driver
	// default, 5%).
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
	// CanaryWindowMS is the soak time before the gate is evaluated.
	CanaryWindowMS int `json:"canary_window_ms,omitempty"`
	// MaxErrors is the gate's error budget across watched nodes over the
	// canary window (0 = any new error trips).
	MaxErrors uint64 `json:"max_errors,omitempty"`
	// MaxP99MS bounds the watched nodes' p99 process latency over the
	// window (0 disables the latency check).
	MaxP99MS int `json:"max_p99_ms,omitempty"`
	// Nodes overrides the watched node set (default: the revision
	// diff's added and replaced components).
	Nodes []string `json:"nodes,omitempty"`
	// Concurrency bounds parallel per-session migrations (0 = driver
	// default).
	Concurrency int `json:"concurrency,omitempty"`
}

// Config reifies the definition into a driver config targeting the
// given revision.
func (d RolloutDef) Config(to int) runtime.RolloutConfig {
	return runtime.RolloutConfig{
		To:             to,
		CanaryFraction: d.CanaryFraction,
		CanaryWindow:   time.Duration(d.CanaryWindowMS) * time.Millisecond,
		Gate: runtime.GateConfig{
			Nodes:     d.Nodes,
			MaxErrors: d.MaxErrors,
			MaxP99:    time.Duration(d.MaxP99MS) * time.Millisecond,
		},
		Concurrency: d.Concurrency,
	}
}

// Manager reifies the pipeline definition into a blueprint and
// constructs the session manager that serves it: the declared
// supervision policy becomes the per-session health monitor and
// degradation reroutes, and the declared checkpoint store backs
// evict-time, manual and periodic state persistence. base supplies
// everything the definition doesn't carry — per-target overrides,
// provider info, history bounds; its Blueprint field is replaced, and
// its Checkpoints field, when already set, wins over the definition's
// (the caller owns that store's lifecycle either way — the manager
// never closes it).
func (l *Loader) Manager(p Pipeline, base runtime.SessionConfig, opts ...runtime.Option) (*runtime.Manager, error) {
	cfg := base
	if len(p.Revisions) > 0 {
		set, err := l.BlueprintSet(p)
		if err != nil {
			return nil, err
		}
		cfg.Blueprint = nil
		cfg.Blueprints = set
		cfg.InitialRevision = p.InitialRevision
	} else {
		bp, err := l.Blueprint(p)
		if err != nil {
			return nil, err
		}
		cfg.Blueprint = bp
	}
	if p.Supervision != nil {
		pol := p.Supervision.Policy()
		cfg.Health = &pol
		cfg.Reroutes = p.Supervision.HealthReroutes()
	}
	if p.Rules != nil {
		rs, err := l.Rules(p.Rules)
		if err != nil {
			return nil, err
		}
		cfg.Rules = rs
	}
	if p.Checkpoint != nil && cfg.Checkpoints == nil {
		store, err := p.Checkpoint.Open()
		if err != nil {
			return nil, err
		}
		cfg.Checkpoints = store
		cfg.CheckpointEvery = p.Checkpoint.Every()
	}
	return runtime.NewManager(cfg, opts...)
}
