// Package config assembles processing graphs from declarative JSON
// pipeline definitions — the paper's third wiring mechanism:
// connections "established either by direct calls to the graph
// manipulation API, based on explicitly defined system level
// configurations or through dynamic resolution of dependencies"
// (§2.1). This package is the middle one; it composes with the other
// two (pre-built instances are passed in, and leftover open ports can
// be handed to the registry resolver).
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"perpos/internal/core"
	"perpos/internal/registry"
)

// Errors returned by the loader.
var (
	// ErrUnknownType indicates a component type absent from the
	// registry.
	ErrUnknownType = errors.New("config: unknown component type")
	// ErrUnknownInstance indicates an instance ID absent from the
	// loader's instances map.
	ErrUnknownInstance = errors.New("config: unknown instance")
	// ErrUnknownFeature indicates a feature name without a factory.
	ErrUnknownFeature = errors.New("config: unknown feature")
)

// Pipeline is the JSON schema of a system-level configuration.
type Pipeline struct {
	// Name labels the pipeline.
	Name string `json:"name"`
	// Components to place in the graph. A component with a Type is
	// instantiated from the registry; one without refers to a pre-built
	// instance supplied to the Loader (sensors bound to hardware,
	// application sinks).
	Components []ComponentDef `json:"components"`
	// Connections wires output ports to input ports.
	Connections []ConnectionDef `json:"connections"`
	// Features attaches Component Features by factory name.
	Features []FeatureDef `json:"features,omitempty"`
	// Resolve, when true, runs registry dependency resolution for any
	// input ports the explicit connections left open.
	Resolve bool `json:"resolve,omitempty"`
}

// ComponentDef places one component.
type ComponentDef struct {
	ID   string `json:"id"`
	Type string `json:"type,omitempty"`
}

// ConnectionDef wires from's output to to's input port.
type ConnectionDef struct {
	From string `json:"from"`
	To   string `json:"to"`
	Port int    `json:"port"`
}

// FeatureDef attaches a feature to a component.
type FeatureDef struct {
	Component string `json:"component"`
	Feature   string `json:"feature"`
}

// Parse reads a Pipeline from JSON.
func Parse(r io.Reader) (Pipeline, error) {
	var p Pipeline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Pipeline{}, fmt.Errorf("config: parse pipeline: %w", err)
	}
	return p, nil
}

// Loader builds graphs from pipeline definitions.
type Loader struct {
	// Registry supplies component types (may be nil if every component
	// is a pre-built instance).
	Registry *registry.Registry
	// Instances are pre-built components referenced by ID when a
	// ComponentDef has no Type.
	Instances map[string]core.Component
	// Features maps feature names to factories.
	Features map[string]func() core.Feature
}

// Build places, wires and augments the pipeline into g.
func (l *Loader) Build(g *core.Graph, p Pipeline) error {
	for _, def := range p.Components {
		comp, err := l.instantiate(def)
		if err != nil {
			return err
		}
		if _, err := g.Add(comp); err != nil {
			return fmt.Errorf("config: add %q: %w", def.ID, err)
		}
	}
	for _, def := range p.Features {
		factory, ok := l.Features[def.Feature]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownFeature, def.Feature)
		}
		node, ok := g.Node(def.Component)
		if !ok {
			return fmt.Errorf("config: feature %q: component %q not in graph", def.Feature, def.Component)
		}
		if err := node.AttachFeature(factory()); err != nil {
			return fmt.Errorf("config: attach %q to %q: %w", def.Feature, def.Component, err)
		}
	}
	for _, c := range p.Connections {
		if err := g.Connect(c.From, c.To, c.Port); err != nil {
			return fmt.Errorf("config: connect %s -> %s:%d: %w", c.From, c.To, c.Port, err)
		}
	}
	if p.Resolve {
		if l.Registry == nil {
			return fmt.Errorf("config: pipeline requests resolution but loader has no registry")
		}
		if _, err := l.Registry.Resolve(g); err != nil {
			return fmt.Errorf("config: resolve: %w", err)
		}
	}
	return nil
}

func (l *Loader) instantiate(def ComponentDef) (core.Component, error) {
	if def.Type == "" {
		comp, ok := l.Instances[def.ID]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, def.ID)
		}
		return comp, nil
	}
	if l.Registry == nil {
		return nil, fmt.Errorf("%w: %q (loader has no registry)", ErrUnknownType, def.Type)
	}
	reg, ok := l.Registry.Lookup(def.Type)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, def.Type)
	}
	return reg.New(def.ID), nil
}
