// Package config assembles processing graphs from declarative JSON
// pipeline definitions — the paper's third wiring mechanism:
// connections "established either by direct calls to the graph
// manipulation API, based on explicitly defined system level
// configurations or through dynamic resolution of dependencies"
// (§2.1). This package is the middle one; it composes with the other
// two (pre-built instances are passed in, and leftover open ports can
// be handed to the registry resolver).
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"perpos/internal/core"
	"perpos/internal/registry"
)

// Errors returned by the loader.
var (
	// ErrUnknownType indicates a component type absent from the
	// registry.
	ErrUnknownType = errors.New("config: unknown component type")
	// ErrUnknownInstance indicates an instance ID absent from the
	// loader's instances map.
	ErrUnknownInstance = errors.New("config: unknown instance")
	// ErrUnknownFeature indicates a feature name without a factory.
	ErrUnknownFeature = errors.New("config: unknown feature")
)

// Pipeline is the JSON schema of a system-level configuration.
type Pipeline struct {
	// Name labels the pipeline.
	Name string `json:"name"`
	// Components to place in the graph. A component with a Type is
	// instantiated from the registry; one without refers to a pre-built
	// instance supplied to the Loader (sensors bound to hardware,
	// application sinks).
	Components []ComponentDef `json:"components"`
	// Connections wires output ports to input ports.
	Connections []ConnectionDef `json:"connections"`
	// Features attaches Component Features by factory name.
	Features []FeatureDef `json:"features,omitempty"`
	// Resolve, when true, runs registry dependency resolution for any
	// input ports the explicit connections left open.
	Resolve bool `json:"resolve,omitempty"`
	// Supervision declares the pipeline's self-healing policy: breaker
	// thresholds, watchdog deadlines, restart backoff and degradation
	// reroutes. Consumed by the session runtime; nil disables
	// supervision.
	Supervision *SupervisionDef `json:"supervision,omitempty"`
	// Checkpoint declares durable session checkpointing: where state
	// snapshots live on disk and how often running sessions persist.
	// Consumed by the session runtime; nil disables checkpointing.
	Checkpoint *CheckpointDef `json:"checkpoint,omitempty"`
	// Chaos declares a fault-injection script: timed kill/heal steps
	// against chaos-wrapped components. Consumed by soak tests and
	// perpos-run's chaos mode; nil means no injected faults.
	Chaos *ChaosDef `json:"chaos,omitempty"`
	// Revisions declares versioned variants of the pipeline: each entry
	// is a complete layout (components, connections, features) that
	// becomes one revision of a core.BlueprintSet, in order — revision 1
	// first. When set, the top-level Components/Connections/Features are
	// ignored by BlueprintSet and Manager; same-ID slots with the same
	// type (or the same instance binding) are identity-tagged, so
	// migrations between revisions keep their live instances and state.
	Revisions []RevisionDef `json:"revisions,omitempty"`
	// InitialRevision selects the revision new sessions start on
	// (0 = latest). Only meaningful with Revisions.
	InitialRevision int `json:"initial_revision,omitempty"`
	// Rules declares self-adaptation rules: conditions over live
	// signals driving reversible graph edits through the supervisor
	// sweep. Consumed by the session runtime; nil means no rules.
	Rules *RulesDef `json:"rules,omitempty"`
	// Cluster declares the distributed session tier: node count, hash
	// ring shape, failure detection and handoff pacing. Consumed by
	// perpos-run's cluster mode; nil means single-process.
	Cluster *ClusterDef `json:"cluster,omitempty"`
	// Rollout declares default rolling-upgrade parameters for the
	// pipeline's fleet: canary sizing, soak window, and the metric gate
	// that decides ramp versus rollback. Consumed by the session
	// runtime's Rollout driver; nil means drivers use their defaults.
	Rollout *RolloutDef `json:"rollout,omitempty"`
}

// RevisionDef is one complete pipeline layout inside a versioned
// definition — the same shape as the top-level pipeline's structural
// fields.
type RevisionDef struct {
	Components  []ComponentDef  `json:"components"`
	Connections []ConnectionDef `json:"connections"`
	Features    []FeatureDef    `json:"features,omitempty"`
	Resolve     bool            `json:"resolve,omitempty"`
}

// ComponentDef places one component.
type ComponentDef struct {
	ID   string `json:"id"`
	Type string `json:"type,omitempty"`
}

// ConnectionDef wires from's output to to's input port.
type ConnectionDef struct {
	From string `json:"from"`
	To   string `json:"to"`
	Port int    `json:"port"`
}

// FeatureDef attaches a feature to a component.
type FeatureDef struct {
	Component string `json:"component"`
	Feature   string `json:"feature"`
}

// Parse reads a Pipeline from JSON.
func Parse(r io.Reader) (Pipeline, error) {
	var p Pipeline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Pipeline{}, fmt.Errorf("config: parse pipeline: %w", err)
	}
	return p, nil
}

// Loader builds graphs and blueprints from pipeline definitions.
type Loader struct {
	// Registry supplies component types (may be nil if every component
	// is a pre-built instance).
	Registry *registry.Registry
	// Instances are pre-built components referenced by ID when a
	// ComponentDef has no Type. They are single components bound to one
	// graph — usable by Build, and by Blueprint only as resolution
	// stand-ins.
	Instances map[string]core.Component
	// InstanceFactories supplies per-instantiation factories for
	// ComponentDefs without a Type, so blueprints built from the
	// pipeline can be instantiated many times. Takes precedence over
	// Instances.
	InstanceFactories map[string]core.ComponentFactory
	// Features maps feature names to factories.
	Features map[string]func() core.Feature
}

// Build places, wires and augments the pipeline into g.
func (l *Loader) Build(g *core.Graph, p Pipeline) error {
	for _, def := range p.Components {
		comp, err := l.instantiate(def)
		if err != nil {
			return err
		}
		if _, err := g.Add(comp); err != nil {
			return fmt.Errorf("config: add %q: %w", def.ID, err)
		}
	}
	for _, def := range p.Features {
		factory, ok := l.Features[def.Feature]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownFeature, def.Feature)
		}
		node, ok := g.Node(def.Component)
		if !ok {
			return fmt.Errorf("config: feature %q: component %q not in graph", def.Feature, def.Component)
		}
		if err := node.AttachFeature(factory()); err != nil {
			return fmt.Errorf("config: attach %q to %q: %w", def.Feature, def.Component, err)
		}
	}
	for _, c := range p.Connections {
		if err := g.Connect(c.From, c.To, c.Port); err != nil {
			return fmt.Errorf("config: connect %s -> %s:%d: %w", c.From, c.To, c.Port, err)
		}
	}
	if p.Resolve {
		if l.Registry == nil {
			return fmt.Errorf("config: pipeline requests resolution but loader has no registry")
		}
		if _, err := l.Registry.Resolve(g); err != nil {
			return fmt.Errorf("config: resolve: %w", err)
		}
	}
	return nil
}

// Blueprint reifies the pipeline definition into a reusable
// core.Blueprint instead of one live graph: declared components become
// factory slots (registry factories for typed defs, InstanceFactories
// for instance defs, placeholders otherwise), and — when the pipeline
// requests Resolve — registry dependency resolution runs ONCE against a
// probe instance, with the resolved component set and wiring recorded
// in the blueprint. Every later Instantiate replays the resolved
// structure with fresh component instances and pays no resolution cost.
//
// Placeholder slots (no Type, no InstanceFactory) must be filled per
// instantiation with core.WithComponentOverride; when the pipeline
// needs resolution, a probe stand-in is taken from Instances.
func (l *Loader) Blueprint(p Pipeline) (*core.Blueprint, error) {
	return l.buildBlueprint(layout{p.Components, p.Connections, p.Features, p.Resolve})
}

// BlueprintSet reifies a versioned pipeline definition into a named
// core.BlueprintSet: each RevisionDef becomes one frozen revision, in
// declared order. A definition without Revisions yields a
// single-revision set wrapping Blueprint(p). Slots are identity-tagged
// by their registry type (or instance binding) and features by their
// factory name, so a revision diff sees structurally identical slots as
// Unchanged — the property migrations rely on to carry live state.
func (l *Loader) BlueprintSet(p Pipeline) (*core.BlueprintSet, error) {
	name := p.Name
	if name == "" {
		name = "pipeline"
	}
	set := core.NewBlueprintSet(name)
	if len(p.Revisions) == 0 {
		bp, err := l.Blueprint(p)
		if err != nil {
			return nil, err
		}
		if _, err := set.Add(bp); err != nil {
			return nil, fmt.Errorf("config: blueprint set: %w", err)
		}
		return set, nil
	}
	for i, rev := range p.Revisions {
		bp, err := l.buildBlueprint(layout{rev.Components, rev.Connections, rev.Features, rev.Resolve})
		if err != nil {
			return nil, fmt.Errorf("config: revision %d: %w", i+1, err)
		}
		if _, err := set.Add(bp); err != nil {
			return nil, fmt.Errorf("config: revision %d: %w", i+1, err)
		}
	}
	return set, nil
}

// layout is the structural subset a blueprint is built from — the
// top-level pipeline's fields or one RevisionDef's.
type layout struct {
	components  []ComponentDef
	connections []ConnectionDef
	features    []FeatureDef
	resolve     bool
}

func (l *Loader) buildBlueprint(p layout) (*core.Blueprint, error) {
	type slot struct {
		id      string
		tag     string // identity tag for revision diffing ("" = placeholder)
		factory core.ComponentFactory
	}
	slots := make([]slot, 0, len(p.components))
	for _, def := range p.components {
		switch {
		case def.Type != "":
			if l.Registry == nil {
				return nil, fmt.Errorf("%w: %q (loader has no registry)", ErrUnknownType, def.Type)
			}
			reg, ok := l.Registry.Lookup(def.Type)
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownType, def.Type)
			}
			// Every typed slot shares this one closure literal, so factory
			// pointer identity cannot distinguish types — the tag does.
			slots = append(slots, slot{id: def.ID, tag: "type:" + def.Type, factory: func(id string) core.Component { return reg.New(id) }})
		case l.InstanceFactories[def.ID] != nil:
			slots = append(slots, slot{id: def.ID, tag: "instance:" + def.ID, factory: l.InstanceFactories[def.ID]})
		default:
			slots = append(slots, slot{id: def.ID, factory: nil})
		}
	}

	type featureSlot struct {
		component string
		tag       string
		factory   core.FeatureFactory
	}
	features := make([]featureSlot, 0, len(p.features))
	for _, def := range p.features {
		factory, ok := l.Features[def.Feature]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownFeature, def.Feature)
		}
		features = append(features, featureSlot{def.Component, "feature:" + def.Feature, core.FeatureFactory(factory)})
	}

	connections := make([]core.Edge, 0, len(p.connections))
	for _, c := range p.connections {
		connections = append(connections, core.Edge{From: c.From, To: c.To, Port: c.Port})
	}

	if p.resolve {
		if l.Registry == nil {
			return nil, fmt.Errorf("config: pipeline requests resolution but loader has no registry")
		}
		// Build a throwaway probe instance, resolve it once, and record
		// the resolver's plan (created components and final wiring).
		probe := core.New()
		for _, s := range slots {
			comp, err := l.probeComponent(s.id, s.factory)
			if err != nil {
				return nil, err
			}
			if _, err := probe.Add(comp); err != nil {
				return nil, fmt.Errorf("config: add %q: %w", s.id, err)
			}
		}
		for _, f := range features {
			node, ok := probe.Node(f.component)
			if !ok {
				return nil, fmt.Errorf("config: feature on %q: component not in pipeline", f.component)
			}
			if err := node.AttachFeature(f.factory()); err != nil {
				return nil, fmt.Errorf("config: attach feature to %q: %w", f.component, err)
			}
		}
		for _, c := range connections {
			if err := probe.Connect(c.From, c.To, c.Port); err != nil {
				return nil, fmt.Errorf("config: connect %s -> %s:%d: %w", c.From, c.To, c.Port, err)
			}
		}
		plan, err := l.Registry.ResolvePlan(probe)
		if err != nil {
			return nil, fmt.Errorf("config: resolve: %w", err)
		}
		for _, inst := range plan {
			reg, ok := l.Registry.Lookup(inst.Type)
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownType, inst.Type)
			}
			slots = append(slots, slot{id: inst.ID, tag: "type:" + inst.Type, factory: func(id string) core.Component { return reg.New(id) }})
		}
		// The probe's edge set is the resolved wiring (explicit
		// connections plus everything the resolver added).
		connections = probe.Edges()
	}

	bp := core.NewBlueprint()
	for _, s := range slots {
		if err := bp.AddComponent(s.id, s.factory); err != nil {
			return nil, fmt.Errorf("config: blueprint: %w", err)
		}
		if s.tag != "" {
			if err := bp.TagComponent(s.id, s.tag); err != nil {
				return nil, fmt.Errorf("config: blueprint: %w", err)
			}
		}
	}
	for _, f := range features {
		if err := bp.AttachTaggedFeature(f.component, f.tag, f.factory); err != nil {
			return nil, fmt.Errorf("config: blueprint: %w", err)
		}
	}
	for _, c := range connections {
		if err := bp.Connect(c.From, c.To, c.Port); err != nil {
			return nil, fmt.Errorf("config: blueprint: %w", err)
		}
	}
	return bp, nil
}

// probeComponent supplies a component for the resolution probe: the
// slot's own factory, or a stand-in from Instances for placeholders.
func (l *Loader) probeComponent(id string, factory core.ComponentFactory) (core.Component, error) {
	if factory != nil {
		return factory(id), nil
	}
	if comp, ok := l.Instances[id]; ok {
		return comp, nil
	}
	return nil, fmt.Errorf("%w: %q (resolution needs an instance or factory as probe)", ErrUnknownInstance, id)
}

func (l *Loader) instantiate(def ComponentDef) (core.Component, error) {
	if def.Type == "" {
		comp, ok := l.Instances[def.ID]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, def.ID)
		}
		return comp, nil
	}
	if l.Registry == nil {
		return nil, fmt.Errorf("%w: %q (loader has no registry)", ErrUnknownType, def.Type)
	}
	reg, ok := l.Registry.Lookup(def.Type)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, def.Type)
	}
	return reg.New(def.ID), nil
}
