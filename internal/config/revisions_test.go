package config

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/runtime"
	"perpos/internal/trace"
)

// sessionBase supplies what the versioned definition doesn't carry:
// a per-target simulated receiver for the "gps" placeholder (the "app"
// sink placeholder is terminated by the manager itself).
func sessionBase() runtime.SessionConfig {
	tr := trace.OutdoorTrack(testOrigin, 1, 2, 100, 1.4, time.Second)
	return runtime.SessionConfig{
		Overrides: func(sessionID string) []core.InstantiateOption {
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(id string) core.Component {
					return gps.NewReceiver(id, tr, gps.Config{Seed: 2})
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		History:  8,
	}
}

// versionedJSON is a two-revision pipeline: revision 1 the plain GPS
// chain, revision 2 with a transport-mode Segmenter tapped off the
// interpreter. The shared slots carry the same type in both revisions,
// so a diff must see them as Unchanged.
const versionedJSON = `{
  "name": "versioned-gps",
  "initial_revision": 1,
  "revisions": [
    {
      "components": [
        {"id": "gps"},
        {"id": "parser", "type": "Parser"},
        {"id": "interpreter", "type": "Interpreter"},
        {"id": "app"}
      ],
      "connections": [
        {"from": "gps", "to": "parser", "port": 0},
        {"from": "parser", "to": "interpreter", "port": 0},
        {"from": "interpreter", "to": "app", "port": 0}
      ],
      "features": [
        {"component": "parser", "feature": "satellites"}
      ]
    },
    {
      "components": [
        {"id": "gps"},
        {"id": "parser", "type": "Parser"},
        {"id": "interpreter", "type": "Interpreter"},
        {"id": "segmenter", "type": "Segmenter"},
        {"id": "app"}
      ],
      "connections": [
        {"from": "gps", "to": "parser", "port": 0},
        {"from": "parser", "to": "interpreter", "port": 0},
        {"from": "interpreter", "to": "app", "port": 0},
        {"from": "interpreter", "to": "segmenter", "port": 0}
      ],
      "features": [
        {"component": "parser", "feature": "satellites"}
      ]
    }
  ],
  "rollout": {
    "canary_fraction": 0.2,
    "canary_window_ms": 250,
    "max_errors": 3,
    "max_p99_ms": 50,
    "concurrency": 4
  }
}`

func TestParseVersionedPipeline(t *testing.T) {
	p, err := Parse(strings.NewReader(versionedJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Revisions) != 2 {
		t.Fatalf("revisions = %d, want 2", len(p.Revisions))
	}
	if p.InitialRevision != 1 {
		t.Errorf("initial_revision = %d, want 1", p.InitialRevision)
	}
	if p.Rollout == nil {
		t.Fatal("rollout def missing")
	}
	cfg := p.Rollout.Config(2)
	want := runtime.RolloutConfig{
		To:             2,
		CanaryFraction: 0.2,
		CanaryWindow:   250 * time.Millisecond,
		Gate:           runtime.GateConfig{MaxErrors: 3, MaxP99: 50 * time.Millisecond},
		Concurrency:    4,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("RolloutDef.Config = %+v, want %+v", cfg, want)
	}
}

// TestBlueprintSetFromRevisions: the loader reifies each revision into
// a frozen blueprint and identity-tags typed slots, so the structural
// diff between the revisions is exactly the spliced smoother.
func TestBlueprintSetFromRevisions(t *testing.T) {
	p, err := Parse(strings.NewReader(versionedJSON))
	if err != nil {
		t.Fatal(err)
	}
	l, _ := newLoader(t)
	set, err := l.BlueprintSet(p)
	if err != nil {
		t.Fatal(err)
	}
	if set.Name() != "versioned-gps" {
		t.Errorf("set name = %q", set.Name())
	}
	if set.Latest() != 2 {
		t.Fatalf("Latest = %d, want 2", set.Latest())
	}
	d, err := set.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Added, []string{"segmenter"}) {
		t.Errorf("Added = %v, want [segmenter]", d.Added)
	}
	wantKept := []string{"app", "gps", "interpreter", "parser"}
	if !reflect.DeepEqual(d.Unchanged, wantKept) {
		t.Errorf("Unchanged = %v, want %v", d.Unchanged, wantKept)
	}
	// The satellites feature is named identically in both revisions:
	// no churn on the unchanged parser.
	if len(d.AttachFeatures) != 0 || len(d.DetachFeatures) != 0 {
		t.Errorf("feature churn = %v/%v, want none", d.AttachFeatures, d.DetachFeatures)
	}
	if len(d.DropEdges) != 0 {
		t.Errorf("DropEdges = %v, want none", d.DropEdges)
	}
	wantMake := []core.Edge{{From: "interpreter", To: "segmenter", Port: 0}}
	if !reflect.DeepEqual(d.MakeEdges, wantMake) {
		t.Errorf("MakeEdges = %v, want %v", d.MakeEdges, wantMake)
	}
}

// TestBlueprintSetSingleRevision: a plain pipeline definition wraps
// into a one-revision set, so versioned and unversioned configs share
// every downstream code path.
func TestBlueprintSetSingleRevision(t *testing.T) {
	p, err := Parse(strings.NewReader(fig1JSON))
	if err != nil {
		t.Fatal(err)
	}
	l, _ := newLoader(t)
	set, err := l.BlueprintSet(p)
	if err != nil {
		t.Fatal(err)
	}
	if set.Latest() != 1 {
		t.Fatalf("Latest = %d, want 1", set.Latest())
	}
	d, err := set.Diff(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("self-diff not empty: %+v", d)
	}
}

// TestManagerFromVersionedPipeline wires a versioned definition through
// Loader.Manager: sessions start on the declared initial revision and
// a rollout driven by the definition's own RolloutDef migrates them.
func TestManagerFromVersionedPipeline(t *testing.T) {
	p, err := Parse(strings.NewReader(versionedJSON))
	if err != nil {
		t.Fatal(err)
	}
	l, _ := newLoader(t)
	m, err := l.Manager(p, sessionBase())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.ActiveRevision(); got != 1 {
		t.Fatalf("active revision = %d, want 1", got)
	}
	s, err := m.GetOrCreate("alice")
	if err != nil {
		t.Fatal(err)
	}
	if s.Revision() != 1 {
		t.Fatalf("session revision = %d, want 1", s.Revision())
	}
	if _, ok := s.Graph().Node("segmenter"); ok {
		t.Fatal("revision 1 session has the revision 2 segmenter")
	}
	if _, err := s.StepN(3); err != nil {
		t.Fatal(err)
	}

	rep, err := m.Rollout(context.Background(), p.Rollout.Config(2))
	if err != nil {
		t.Fatalf("Rollout: %v (report %+v)", err, rep)
	}
	if s.Revision() != 2 {
		t.Fatalf("session revision after rollout = %d, want 2", s.Revision())
	}
	if _, ok := s.Graph().Node("segmenter"); !ok {
		t.Fatal("migrated session lacks the segmenter")
	}
	if _, err := s.StepN(3); err != nil {
		t.Fatal(err)
	}
}
