package config

import (
	"time"

	"perpos/internal/chaos"
)

// ChaosDef is the JSON schema for a declarative fault script: timed
// kill/heal transitions against named chaos-wrapped components. Keeping
// the script in the pipeline definition means a failure scenario lives
// next to the wiring it exercises and replays identically run-to-run —
// soak tests and perpos-run's chaos mode both read it from here instead
// of hardcoding outage timings.
type ChaosDef struct {
	// Steps are the script's transitions, applied in offset order.
	Steps []ChaosStepDef `json:"steps"`
}

// ChaosStepDef is one timed fault transition.
type ChaosStepDef struct {
	// AtMS is the step's offset from script start, in milliseconds.
	AtMS int `json:"at_ms"`
	// Action is "kill" or "heal".
	Action string `json:"action"`
	// Target names the chaos wrapper the action applies to.
	Target string `json:"target"`
}

// Schedule converts the definition to a runnable chaos.Schedule. Action
// and target validity are checked by the schedule itself (Validate/Run)
// against the live target set.
func (d ChaosDef) Schedule() chaos.Schedule {
	steps := make([]chaos.Step, 0, len(d.Steps))
	for _, s := range d.Steps {
		steps = append(steps, chaos.Step{
			At:     time.Duration(s.AtMS) * time.Millisecond,
			Action: chaos.Action(s.Action),
			Target: s.Target,
		})
	}
	return chaos.Schedule{Steps: steps}
}
