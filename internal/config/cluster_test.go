package config

import (
	"strings"
	"testing"
	"time"
)

const clusteredPipeline = `{
  "name": "fleet",
  "components": [
    {"id": "gps"},
    {"id": "app"}
  ],
  "connections": [
    {"from": "gps", "to": "app", "port": 0}
  ],
  "cluster": {
    "nodes": 3,
    "replicas": 128,
    "probe_interval_ms": 50,
    "max_consecutive_errors": 2,
    "death_after_ms": 400,
    "handoff_concurrency": 8,
    "dial_timeout_ms": 500,
    "call_timeout_ms": 1500,
    "retries": -1,
    "retry_backoff_ms": 10,
    "checkpoint_every": 16
  }
}`

func TestParseCluster(t *testing.T) {
	p, err := Parse(strings.NewReader(clusteredPipeline))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cluster == nil {
		t.Fatal("cluster block dropped")
	}
	if p.Cluster.Nodes != 3 {
		t.Errorf("Nodes = %d, want 3", p.Cluster.Nodes)
	}
	if p.Cluster.CheckpointEvery != 16 {
		t.Errorf("CheckpointEvery = %d, want 16", p.Cluster.CheckpointEvery)
	}

	pol := p.Cluster.Policy()
	if pol.Replicas != 128 {
		t.Errorf("Replicas = %d, want 128", pol.Replicas)
	}
	if pol.ProbeInterval != 50*time.Millisecond {
		t.Errorf("ProbeInterval = %v, want 50ms", pol.ProbeInterval)
	}
	if pol.MaxConsecutiveErrors != 2 {
		t.Errorf("MaxConsecutiveErrors = %d, want 2", pol.MaxConsecutiveErrors)
	}
	if pol.DeathAfter != 400*time.Millisecond {
		t.Errorf("DeathAfter = %v, want 400ms", pol.DeathAfter)
	}
	if pol.HandoffConcurrency != 8 {
		t.Errorf("HandoffConcurrency = %d, want 8", pol.HandoffConcurrency)
	}
	if pol.DialTimeout != 500*time.Millisecond {
		t.Errorf("DialTimeout = %v, want 500ms", pol.DialTimeout)
	}
	if pol.CallTimeout != 1500*time.Millisecond {
		t.Errorf("CallTimeout = %v, want 1.5s", pol.CallTimeout)
	}
	if pol.Retries != -1 {
		t.Errorf("Retries = %d, want -1", pol.Retries)
	}
	if pol.RetryBackoff != 10*time.Millisecond {
		t.Errorf("RetryBackoff = %v, want 10ms", pol.RetryBackoff)
	}
}

// TestParseClusterEmpty: an absent cluster block stays nil, and an
// empty one converts to the all-defaults policy signal (zero values).
func TestParseClusterEmpty(t *testing.T) {
	p, err := Parse(strings.NewReader(`{"name":"solo","components":[{"id":"a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cluster != nil {
		t.Fatalf("Cluster = %+v, want nil", p.Cluster)
	}
	p, err = Parse(strings.NewReader(`{"name":"fleet","components":[{"id":"a"}],"cluster":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cluster == nil {
		t.Fatal("empty cluster block dropped")
	}
	pol := p.Cluster.Policy()
	if pol.Replicas != 0 || pol.ProbeInterval != 0 || pol.Retries != 0 {
		t.Errorf("empty def policy = %+v, want zero values (router defaults)", pol)
	}
}
