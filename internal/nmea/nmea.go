// Package nmea implements the subset of the NMEA 0183 protocol produced
// by consumer GPS receivers and consumed by the PerPos GPS Parser
// component: sentence framing with checksum validation, and the GGA, RMC,
// GSA and GSV sentence types.
//
// The paper's GPS channel (Fig. 4) carries raw receiver strings that a
// Parser component turns into NMEA measurements; the HDOP and
// number-of-satellites Component Features of §3.1–3.2 read their values
// from these sentences.
package nmea

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Errors reported by the parser. They are matched with errors.Is by the
// Parser component's bad-sentence accounting.
var (
	ErrFraming     = errors.New("nmea: bad sentence framing")
	ErrChecksum    = errors.New("nmea: checksum mismatch")
	ErrUnknownType = errors.New("nmea: unknown sentence type")
	ErrFieldCount  = errors.New("nmea: wrong field count")
	ErrBadField    = errors.New("nmea: malformed field")
)

// FixQuality is the GGA fix-quality indicator.
type FixQuality int

// Fix quality values defined by NMEA 0183.
const (
	FixInvalid FixQuality = 0
	FixGPS     FixQuality = 1
	FixDGPS    FixQuality = 2
)

// String returns the conventional name of the fix quality.
func (q FixQuality) String() string {
	switch q {
	case FixInvalid:
		return "invalid"
	case FixGPS:
		return "gps"
	case FixDGPS:
		return "dgps"
	default:
		return fmt.Sprintf("quality(%d)", int(q))
	}
}

// Sentence is implemented by all parsed NMEA sentence types.
type Sentence interface {
	// Type returns the three-letter sentence type, e.g. "GGA".
	Type() string
}

// GGA is a Global Positioning System Fix Data sentence: time, position
// and fix-related data. It is the primary sentence for positioning and
// carries the HDOP and satellite count used by the §3.1–3.2 features.
type GGA struct {
	Time          time.Time // UTC time of fix (date-less; zero date)
	Lat, Lon      float64   // decimal degrees; sign encodes hemisphere
	Quality       FixQuality
	NumSatellites int
	HDOP          float64
	Altitude      float64 // metres above mean sea level
}

// Type implements Sentence.
func (GGA) Type() string { return "GGA" }

// RMC is a Recommended Minimum sentence: position, speed over ground and
// course over ground. EnTracked's motion model reads speed from RMC.
type RMC struct {
	Time     time.Time // UTC time of fix including date
	Valid    bool      // status A=valid, V=void
	Lat, Lon float64
	SpeedKn  float64 // speed over ground, knots
	CourseT  float64 // course over ground, degrees true
}

// Type implements Sentence.
func (RMC) Type() string { return "RMC" }

// SpeedMS returns the RMC ground speed in metres per second.
func (r RMC) SpeedMS() float64 { return r.SpeedKn * 0.514444 }

// GSA is a DOP and active-satellites sentence.
type GSA struct {
	Auto    bool  // A=automatic 2D/3D selection, M=manual
	FixMode int   // 1=no fix, 2=2D, 3=3D
	PRNs    []int // IDs of satellites used in the fix
	PDOP    float64
	HDOP    float64
	VDOP    float64
}

// Type implements Sentence.
func (GSA) Type() string { return "GSA" }

// SatelliteInView describes one satellite in a GSV sentence.
type SatelliteInView struct {
	PRN       int
	Elevation int // degrees, 0-90
	Azimuth   int // degrees, 0-359
	SNR       int // dB, 0 when not tracking
}

// GSV is a satellites-in-view sentence. A full view is reported as a
// numbered group of GSV sentences.
type GSV struct {
	TotalMsgs   int
	MsgNum      int
	TotalInView int
	Satellites  []SatelliteInView // up to 4 per sentence
}

// Type implements Sentence.
func (GSV) Type() string { return "GSV" }

// Checksum returns the NMEA checksum (XOR of bytes) of the payload
// between '$' and '*'.
func Checksum(payload string) byte {
	var sum byte
	for i := 0; i < len(payload); i++ {
		sum ^= payload[i]
	}
	return sum
}

// maxFields is the widest supported sentence: GSV with four satellite
// blocks (4 header + 4×4 fields).
const maxFields = 20

// splitFields splits the payload on commas into dst without allocating
// a fresh slice per sentence (this runs once per sentence on the
// saturated hot path). Returns the field count, or -1 when the payload
// has more fields than any supported sentence.
func splitFields(payload string, dst *[maxFields]string) int {
	n := 0
	for {
		if n == maxFields {
			return -1
		}
		i := strings.IndexByte(payload, ',')
		if i < 0 {
			dst[n] = payload
			return n + 1
		}
		dst[n] = payload[:i]
		n++
		payload = payload[i+1:]
	}
}

// Parse parses a single framed NMEA sentence ("$GPxxx,...*hh" with
// optional trailing CR/LF) into a typed Sentence value.
func Parse(raw string) (Sentence, error) {
	payload, err := unframe(raw)
	if err != nil {
		return nil, err
	}
	var fieldBuf [maxFields]string
	nf := splitFields(payload, &fieldBuf)
	if nf < 0 {
		return nil, fmt.Errorf("%w: too many fields in %q", ErrFieldCount, payload)
	}
	fields := fieldBuf[:nf]
	talkerType := fields[0]
	if len(talkerType) != 5 {
		return nil, fmt.Errorf("%w: bad talker/type %q", ErrFraming, talkerType)
	}
	switch talkerType[2:] {
	case "GGA":
		return parseGGA(fields)
	case "RMC":
		return parseRMC(fields)
	case "GSA":
		return parseGSA(fields)
	case "GSV":
		return parseGSV(fields)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, talkerType[2:])
	}
}

// unframe strips '$', optional "\r\n", validates and removes the "*hh"
// checksum, and returns the comma-separated payload.
func unframe(raw string) (string, error) {
	s := strings.TrimRight(raw, "\r\n")
	if len(s) < 9 || s[0] != '$' {
		return "", fmt.Errorf("%w: %q", ErrFraming, raw)
	}
	star := strings.LastIndexByte(s, '*')
	if star < 0 || star != len(s)-3 {
		return "", fmt.Errorf("%w: missing checksum in %q", ErrFraming, raw)
	}
	payload := s[1:star]
	want, err := strconv.ParseUint(s[star+1:], 16, 8)
	if err != nil {
		return "", fmt.Errorf("%w: unreadable checksum in %q", ErrFraming, raw)
	}
	if got := Checksum(payload); got != byte(want) {
		return "", fmt.Errorf("%w: got %02X want %02X", ErrChecksum, got, byte(want))
	}
	return payload, nil
}

func parseGGA(f []string) (Sentence, error) {
	var g GGA
	if err := parseGGAInto(f, &g); err != nil {
		return nil, err
	}
	return g, nil
}

// parseGGAInto parses into a caller-supplied GGA, overwriting every
// field, so pooled callers need not zero the destination first.
func parseGGAInto(f []string, g *GGA) error {
	// $GPGGA,hhmmss.ss,llll.ll,a,yyyyy.yy,a,x,xx,x.x,x.x,M,x.x,M,,*hh
	if len(f) != 15 {
		return fmt.Errorf("%w: GGA has %d fields, want 15", ErrFieldCount, len(f))
	}
	var err error
	if g.Time, err = parseUTC(f[1], ""); err != nil {
		return err
	}
	if g.Lat, err = parseLatLon(f[2], f[3], true); err != nil {
		return err
	}
	if g.Lon, err = parseLatLon(f[4], f[5], false); err != nil {
		return err
	}
	q, err := parseInt(f[6], "fix quality")
	if err != nil {
		return err
	}
	g.Quality = FixQuality(q)
	if g.NumSatellites, err = parseInt(f[7], "satellite count"); err != nil {
		return err
	}
	if g.HDOP, err = parseFloat(f[8], "hdop"); err != nil {
		return err
	}
	if g.Altitude, err = parseFloat(f[9], "altitude"); err != nil {
		return err
	}
	return nil
}

func parseRMC(f []string) (Sentence, error) {
	var r RMC
	if err := parseRMCInto(f, &r); err != nil {
		return nil, err
	}
	return r, nil
}

// parseRMCInto parses into a caller-supplied RMC, overwriting every
// field.
func parseRMCInto(f []string, r *RMC) error {
	// $GPRMC,hhmmss.ss,A,llll.ll,a,yyyyy.yy,a,x.x,x.x,ddmmyy,x.x,a*hh
	// Some receivers add a 13th mode field; accept 12 or 13.
	if len(f) != 12 && len(f) != 13 {
		return fmt.Errorf("%w: RMC has %d fields, want 12 or 13", ErrFieldCount, len(f))
	}
	var err error
	if r.Time, err = parseUTC(f[1], f[9]); err != nil {
		return err
	}
	switch f[2] {
	case "A":
		r.Valid = true
	case "V", "":
		r.Valid = false
	default:
		return fmt.Errorf("%w: RMC status %q", ErrBadField, f[2])
	}
	if r.Lat, err = parseLatLon(f[3], f[4], true); err != nil {
		return err
	}
	if r.Lon, err = parseLatLon(f[5], f[6], false); err != nil {
		return err
	}
	if r.SpeedKn, err = parseFloat(f[7], "speed"); err != nil {
		return err
	}
	if r.CourseT, err = parseFloat(f[8], "course"); err != nil {
		return err
	}
	return nil
}

func parseGSA(f []string) (Sentence, error) {
	var g GSA
	if err := parseGSAInto(f, &g, nil); err != nil {
		return nil, err
	}
	return g, nil
}

// parseGSAInto parses into a caller-supplied GSA, overwriting every
// field. PRNs are appended to prns (pooled callers pass a reusable
// zero-length buffer); when prns is nil a fresh slice is allocated on
// the first PRN, matching the legacy nil-when-empty behaviour.
func parseGSAInto(f []string, g *GSA, prns []int) error {
	// $GPGSA,A,3,prn*12,pdop,hdop,vdop*hh -> 18 fields
	if len(f) != 18 {
		return fmt.Errorf("%w: GSA has %d fields, want 18", ErrFieldCount, len(f))
	}
	switch f[1] {
	case "A":
		g.Auto = true
	case "M":
		g.Auto = false
	default:
		return fmt.Errorf("%w: GSA mode %q", ErrBadField, f[1])
	}
	var err error
	if g.FixMode, err = parseInt(f[2], "fix mode"); err != nil {
		return err
	}
	g.PRNs = prns
	for i := 3; i < 15; i++ {
		if f[i] == "" {
			continue
		}
		prn, err := parseInt(f[i], "prn")
		if err != nil {
			return err
		}
		if g.PRNs == nil {
			g.PRNs = make([]int, 0, 12)
		}
		g.PRNs = append(g.PRNs, prn)
	}
	if g.PDOP, err = parseFloat(f[15], "pdop"); err != nil {
		return err
	}
	if g.HDOP, err = parseFloat(f[16], "hdop"); err != nil {
		return err
	}
	if g.VDOP, err = parseFloat(f[17], "vdop"); err != nil {
		return err
	}
	return nil
}

func parseGSV(f []string) (Sentence, error) {
	var g GSV
	if err := parseGSVInto(f, &g, nil); err != nil {
		return nil, err
	}
	return g, nil
}

// parseGSVInto parses into a caller-supplied GSV, overwriting every
// field. Satellites are appended to sats (pooled callers pass a
// reusable zero-length buffer); when sats is nil a fresh slice is
// allocated.
func parseGSVInto(f []string, g *GSV, sats []SatelliteInView) error {
	// $GPGSV,total,num,inview,(prn,elev,az,snr)x1..4*hh
	if len(f) < 4 || (len(f)-4)%4 != 0 {
		return fmt.Errorf("%w: GSV has %d fields", ErrFieldCount, len(f))
	}
	var err error
	if g.TotalMsgs, err = parseInt(f[1], "total msgs"); err != nil {
		return err
	}
	if g.MsgNum, err = parseInt(f[2], "msg num"); err != nil {
		return err
	}
	if g.TotalInView, err = parseInt(f[3], "in view"); err != nil {
		return err
	}
	if sats == nil {
		sats = make([]SatelliteInView, 0, (len(f)-4)/4)
	}
	g.Satellites = sats
	for i := 4; i+4 <= len(f); i += 4 {
		var sv SatelliteInView
		if sv.PRN, err = parseInt(f[i], "prn"); err != nil {
			return err
		}
		if sv.Elevation, err = parseInt(f[i+1], "elevation"); err != nil {
			return err
		}
		if sv.Azimuth, err = parseInt(f[i+2], "azimuth"); err != nil {
			return err
		}
		if f[i+3] != "" {
			if sv.SNR, err = parseInt(f[i+3], "snr"); err != nil {
				return err
			}
		}
		g.Satellites = append(g.Satellites, sv)
	}
	return nil
}

// parseUTC parses hhmmss(.sss) plus an optional ddmmyy date field.
func parseUTC(hms, date string) (time.Time, error) {
	if hms == "" {
		return time.Time{}, nil
	}
	if len(hms) < 6 {
		return time.Time{}, fmt.Errorf("%w: time %q", ErrBadField, hms)
	}
	h, err1 := strconv.Atoi(hms[0:2])
	m, err2 := strconv.Atoi(hms[2:4])
	secf, ok := parseDecimal(hms[4:])
	var err3 error
	if !ok {
		secf, err3 = strconv.ParseFloat(hms[4:], 64)
	}
	if err1 != nil || err2 != nil || err3 != nil || h > 23 || m > 59 || secf >= 61 {
		return time.Time{}, fmt.Errorf("%w: time %q", ErrBadField, hms)
	}
	sec := int(secf)
	nsec := int((secf - float64(sec)) * 1e9)

	year, month, day := 0, time.January, 1
	if date != "" {
		if len(date) != 6 {
			return time.Time{}, fmt.Errorf("%w: date %q", ErrBadField, date)
		}
		d, err1 := strconv.Atoi(date[0:2])
		mo, err2 := strconv.Atoi(date[2:4])
		y, err3 := strconv.Atoi(date[4:6])
		if err1 != nil || err2 != nil || err3 != nil || mo < 1 || mo > 12 || d < 1 || d > 31 {
			return time.Time{}, fmt.Errorf("%w: date %q", ErrBadField, date)
		}
		year, month, day = 2000+y, time.Month(mo), d
	}
	return time.Date(year, month, day, h, m, sec, nsec, time.UTC), nil
}

// parseLatLon parses ddmm.mmmm (lat) or dddmm.mmmm (lon) with a
// hemisphere letter into signed decimal degrees. Empty fields parse to 0.
func parseLatLon(v, hemi string, isLat bool) (float64, error) {
	if v == "" {
		return 0, nil
	}
	degDigits := 2
	if !isLat {
		degDigits = 3
	}
	if len(v) < degDigits+2 {
		return 0, fmt.Errorf("%w: coordinate %q", ErrBadField, v)
	}
	deg, err := strconv.Atoi(v[:degDigits])
	if err != nil {
		return 0, fmt.Errorf("%w: coordinate %q", ErrBadField, v)
	}
	minutes, ok := parseDecimal(v[degDigits:])
	if !ok {
		var err error
		minutes, err = strconv.ParseFloat(v[degDigits:], 64)
		if err != nil {
			return 0, fmt.Errorf("%w: coordinate minutes %q", ErrBadField, v)
		}
	}
	if minutes >= 60 {
		return 0, fmt.Errorf("%w: coordinate minutes %q", ErrBadField, v)
	}
	dd := float64(deg) + minutes/60
	switch hemi {
	case "N", "E", "":
		return dd, nil
	case "S", "W":
		return -dd, nil
	default:
		return 0, fmt.Errorf("%w: hemisphere %q", ErrBadField, hemi)
	}
}

// parseDecimal parses a plain unsigned decimal ("x", "x.y") directly;
// ok=false sends the caller to strconv.ParseFloat for anything fancier
// (signs, exponents, overlong digit runs). Wire fields are short fixed
// forms, so this covers the hot path without strconv's general
// float-decoding machinery.
func parseDecimal(v string) (float64, bool) {
	n := len(v)
	if n == 0 || n > 18 {
		return 0, false
	}
	var ip uint64
	i := 0
	for ; i < n; i++ {
		c := v[i]
		if c == '.' {
			break
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		ip = ip*10 + uint64(c-'0')
	}
	if i == n {
		return float64(ip), true
	}
	i++ // skip '.'
	if i == n {
		return 0, false
	}
	var frac uint64
	scale := 1.0
	for ; i < n; i++ {
		c := v[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		frac = frac*10 + uint64(c-'0')
		scale *= 10
	}
	return float64(ip) + float64(frac)/scale, true
}

func parseInt(v, what string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q", ErrBadField, what, v)
	}
	return n, nil
}

func parseFloat(v, what string) (float64, error) {
	if v == "" {
		return 0, nil
	}
	s := v
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if f, ok := parseDecimal(s); ok {
		if neg {
			f = -f
		}
		return f, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q", ErrBadField, what, v)
	}
	return f, nil
}
