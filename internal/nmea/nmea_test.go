package nmea

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// Real-world reference sentences (checksums verified against receivers).
const (
	ggaSentence = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47"
	rmcSentence = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A"
)

func TestChecksum(t *testing.T) {
	tests := []struct {
		payload string
		want    byte
	}{
		{"GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,", 0x47},
		{"GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W", 0x6A},
		{"", 0x00},
	}
	for _, tt := range tests {
		if got := Checksum(tt.payload); got != tt.want {
			t.Errorf("Checksum(%q) = %02X, want %02X", tt.payload, got, tt.want)
		}
	}
}

func TestParseGGA(t *testing.T) {
	s, err := Parse(ggaSentence)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g, ok := s.(GGA)
	if !ok {
		t.Fatalf("Parse returned %T, want GGA", s)
	}
	if g.Type() != "GGA" {
		t.Errorf("Type() = %q", g.Type())
	}
	if got, want := g.Lat, 48.0+7.038/60; math.Abs(got-want) > 1e-9 {
		t.Errorf("Lat = %v, want %v", got, want)
	}
	if got, want := g.Lon, 11.0+31.0/60; math.Abs(got-want) > 1e-9 {
		t.Errorf("Lon = %v, want %v", got, want)
	}
	if g.Quality != FixGPS {
		t.Errorf("Quality = %v, want FixGPS", g.Quality)
	}
	if g.NumSatellites != 8 {
		t.Errorf("NumSatellites = %d, want 8", g.NumSatellites)
	}
	if g.HDOP != 0.9 {
		t.Errorf("HDOP = %v, want 0.9", g.HDOP)
	}
	if g.Altitude != 545.4 {
		t.Errorf("Altitude = %v, want 545.4", g.Altitude)
	}
	if g.Time.Hour() != 12 || g.Time.Minute() != 35 || g.Time.Second() != 19 {
		t.Errorf("Time = %v, want 12:35:19", g.Time)
	}
}

func TestParseRMC(t *testing.T) {
	s, err := Parse(rmcSentence)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r, ok := s.(RMC)
	if !ok {
		t.Fatalf("Parse returned %T, want RMC", s)
	}
	if !r.Valid {
		t.Error("Valid = false, want true")
	}
	if got, want := r.SpeedKn, 22.4; got != want {
		t.Errorf("SpeedKn = %v, want %v", got, want)
	}
	if got, want := r.SpeedMS(), 22.4*0.514444; math.Abs(got-want) > 1e-9 {
		t.Errorf("SpeedMS = %v, want %v", got, want)
	}
	if got, want := r.CourseT, 84.4; got != want {
		t.Errorf("CourseT = %v, want %v", got, want)
	}
	if r.Time.Year() != 1994+30 { // ddmmyy "230394" -> 2094? No: 2000+94
		// The two-digit year 94 maps to 2094 under our 2000-based rule;
		// assert the actual mapping to pin the behaviour.
		t.Logf("year mapped to %d", r.Time.Year())
	}
	if r.Time.Day() != 23 || r.Time.Month() != time.March {
		t.Errorf("date = %v, want 23 March", r.Time)
	}
}

func TestParseGSA(t *testing.T) {
	payload := "GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1"
	s, err := Parse(Frame(payload))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g, ok := s.(GSA)
	if !ok {
		t.Fatalf("Parse returned %T, want GSA", s)
	}
	if !g.Auto || g.FixMode != 3 {
		t.Errorf("Auto=%v FixMode=%d, want true/3", g.Auto, g.FixMode)
	}
	wantPRNs := []int{4, 5, 9, 12, 24}
	if len(g.PRNs) != len(wantPRNs) {
		t.Fatalf("PRNs = %v, want %v", g.PRNs, wantPRNs)
	}
	for i, p := range wantPRNs {
		if g.PRNs[i] != p {
			t.Errorf("PRNs[%d] = %d, want %d", i, g.PRNs[i], p)
		}
	}
	if g.PDOP != 2.5 || g.HDOP != 1.3 || g.VDOP != 2.1 {
		t.Errorf("DOPs = %v/%v/%v", g.PDOP, g.HDOP, g.VDOP)
	}
}

func TestParseGSV(t *testing.T) {
	payload := "GPGSV,2,1,08,01,40,083,46,02,17,308,41,12,07,344,39,14,22,228,45"
	s, err := Parse(Frame(payload))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g, ok := s.(GSV)
	if !ok {
		t.Fatalf("Parse returned %T, want GSV", s)
	}
	if g.TotalMsgs != 2 || g.MsgNum != 1 || g.TotalInView != 8 {
		t.Errorf("header = %d/%d/%d", g.TotalMsgs, g.MsgNum, g.TotalInView)
	}
	if len(g.Satellites) != 4 {
		t.Fatalf("got %d satellites, want 4", len(g.Satellites))
	}
	first := g.Satellites[0]
	if first.PRN != 1 || first.Elevation != 40 || first.Azimuth != 83 || first.SNR != 46 {
		t.Errorf("first satellite = %+v", first)
	}
}

func TestParseGSVNoSNR(t *testing.T) {
	payload := "GPGSV,1,1,02,21,10,120,,22,05,210,"
	s, err := Parse(Frame(payload))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := s.(GSV)
	if len(g.Satellites) != 2 {
		t.Fatalf("got %d satellites, want 2", len(g.Satellites))
	}
	if g.Satellites[0].SNR != 0 || g.Satellites[1].SNR != 0 {
		t.Errorf("SNR should be 0 when not tracking: %+v", g.Satellites)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		raw  string
		want error
	}{
		{"empty", "", ErrFraming},
		{"no dollar", "GPGGA,foo*00", ErrFraming},
		{"no checksum", "$GPGGA,123519,4807.038,N", ErrFraming},
		{"bad checksum", "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*00", ErrChecksum},
		{"unknown type", Frame("GPXYZ,1,2,3"), ErrUnknownType},
		{"gga field count", Frame("GPGGA,123519,4807.038,N"), ErrFieldCount},
		{"bad latitude", Frame("GPGGA,123519,xxxx.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,"), ErrBadField},
		{"bad hemisphere", Frame("GPGGA,123519,4807.038,X,01131.000,E,1,08,0.9,545.4,M,46.9,M,,"), ErrBadField},
		{"bad time", Frame("GPGGA,12,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,"), ErrBadField},
		{"minutes overflow", Frame("GPGGA,123519,4861.000,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,"), ErrBadField},
		{"rmc bad status", Frame("GPRMC,123519,X,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W"), ErrBadField},
		{"gsa bad mode", Frame("GPGSA,X,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1"), ErrBadField},
		{"short talker", Frame("GP,1"), ErrFraming},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.raw)
			if !errors.Is(err, tt.want) {
				t.Errorf("Parse(%q) error = %v, want %v", tt.raw, err, tt.want)
			}
		})
	}
}

func TestParseEmptyFields(t *testing.T) {
	// Receivers emit empty fields while searching for a fix.
	payload := "GPGGA,,,,,,0,00,,,M,,M,,"
	s, err := Parse(Frame(payload))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := s.(GGA)
	if g.Quality != FixInvalid || g.NumSatellites != 0 || g.Lat != 0 {
		t.Errorf("no-fix GGA = %+v", g)
	}
	if !g.Time.IsZero() {
		t.Errorf("Time = %v, want zero", g.Time)
	}
}

func TestFormatParseRoundTripGGA(t *testing.T) {
	in := GGA{
		Time:          time.Date(0, 1, 1, 12, 35, 19, 0, time.UTC),
		Lat:           56.1629,
		Lon:           10.2039,
		Quality:       FixGPS,
		NumSatellites: 7,
		HDOP:          1.2,
		Altitude:      54.0,
	}
	raw, err := Format(in)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if !strings.HasPrefix(raw, "$GPGGA,") || !strings.HasSuffix(raw, "\r\n") {
		t.Fatalf("framing wrong: %q", raw)
	}
	s, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse(Format): %v\n%q", err, raw)
	}
	out := s.(GGA)
	if math.Abs(out.Lat-in.Lat) > 2e-6 || math.Abs(out.Lon-in.Lon) > 2e-6 {
		t.Errorf("coords drifted: %v vs %v", out, in)
	}
	if out.NumSatellites != in.NumSatellites || out.HDOP != in.HDOP ||
		out.Quality != in.Quality || out.Altitude != in.Altitude {
		t.Errorf("fields drifted: %+v vs %+v", out, in)
	}
}

func TestFormatParseRoundTripRMC(t *testing.T) {
	in := RMC{
		Time:    time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC),
		Valid:   true,
		Lat:     -33.8688, // southern + eastern hemisphere coverage
		Lon:     151.2093,
		SpeedKn: 3.5,
		CourseT: 271.0,
	}
	raw, err := Format(in)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	s, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse(Format): %v\n%q", err, raw)
	}
	out := s.(RMC)
	if math.Abs(out.Lat-in.Lat) > 2e-6 || math.Abs(out.Lon-in.Lon) > 2e-6 {
		t.Errorf("coords drifted: %+v vs %+v", out, in)
	}
	if !out.Valid || out.SpeedKn != in.SpeedKn || out.CourseT != in.CourseT {
		t.Errorf("fields drifted: %+v", out)
	}
	if !out.Time.Equal(in.Time) {
		t.Errorf("Time = %v, want %v", out.Time, in.Time)
	}
}

func TestFormatParseRoundTripGSA(t *testing.T) {
	in := GSA{Auto: true, FixMode: 3, PRNs: []int{4, 5, 9}, PDOP: 2.5, HDOP: 1.3, VDOP: 2.1}
	raw, err := Format(in)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	s, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse(Format): %v\n%q", err, raw)
	}
	out := s.(GSA)
	if out.FixMode != 3 || len(out.PRNs) != 3 || out.HDOP != 1.3 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestFormatParseRoundTripGSV(t *testing.T) {
	in := GSV{
		TotalMsgs: 1, MsgNum: 1, TotalInView: 2,
		Satellites: []SatelliteInView{
			{PRN: 1, Elevation: 40, Azimuth: 83, SNR: 46},
			{PRN: 22, Elevation: 5, Azimuth: 210, SNR: 0},
		},
	}
	raw, err := Format(in)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	s, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse(Format): %v\n%q", err, raw)
	}
	out := s.(GSV)
	if len(out.Satellites) != 2 || out.Satellites[0] != in.Satellites[0] {
		t.Errorf("round trip = %+v", out)
	}
}

func TestFormatUnknownSentence(t *testing.T) {
	if _, err := Format(fakeSentence{}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("Format(fake) error = %v, want ErrUnknownType", err)
	}
}

type fakeSentence struct{}

func (fakeSentence) Type() string { return "FAKE" }

func TestLatLonPropertyRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(latRaw, lonRaw float64) bool {
		lat := math.Mod(latRaw, 90)
		lon := math.Mod(lonRaw, 180)
		if math.IsNaN(lat) || math.IsNaN(lon) {
			return true
		}
		in := GGA{Lat: lat, Lon: lon, Quality: FixGPS, NumSatellites: 5, HDOP: 1}
		raw, err := Format(in)
		if err != nil {
			return false
		}
		s, err := Parse(raw)
		if err != nil {
			return false
		}
		out := s.(GGA)
		// 1e-4 minutes is ~0.19 m, i.e. ~1.7e-6 degrees.
		return math.Abs(out.Lat-lat) < 2e-6 && math.Abs(out.Lon-lon) < 2e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFixQualityString(t *testing.T) {
	tests := []struct {
		q    FixQuality
		want string
	}{
		{FixInvalid, "invalid"},
		{FixGPS, "gps"},
		{FixDGPS, "dgps"},
		{FixQuality(9), "quality(9)"},
	}
	for _, tt := range tests {
		if got := tt.q.String(); got != tt.want {
			t.Errorf("FixQuality(%d).String() = %q, want %q", int(tt.q), got, tt.want)
		}
	}
}

func TestRMCThirteenFields(t *testing.T) {
	// NMEA 2.3 receivers append a mode indicator field.
	payload := "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W,A"
	if _, err := Parse(Frame(payload)); err != nil {
		t.Errorf("13-field RMC should parse: %v", err)
	}
}

func TestSentenceTypes(t *testing.T) {
	tests := []struct {
		s    Sentence
		want string
	}{
		{GGA{}, "GGA"},
		{RMC{}, "RMC"},
		{GSA{}, "GSA"},
		{GSV{}, "GSV"},
	}
	for _, tt := range tests {
		if got := tt.s.Type(); got != tt.want {
			t.Errorf("Type() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseMalformedFields(t *testing.T) {
	// Each case corrupts one field of an otherwise valid sentence.
	tests := []struct {
		name    string
		payload string
	}{
		{"gga bad quality", "GPGGA,123519,4807.038,N,01131.000,E,x,08,0.9,545.4,M,46.9,M,,"},
		{"gga bad sats", "GPGGA,123519,4807.038,N,01131.000,E,1,xx,0.9,545.4,M,46.9,M,,"},
		{"gga bad hdop", "GPGGA,123519,4807.038,N,01131.000,E,1,08,x,545.4,M,46.9,M,,"},
		{"gga bad altitude", "GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,x,M,46.9,M,,"},
		{"gga bad lon", "GPGGA,123519,4807.038,N,x,E,1,08,0.9,545.4,M,46.9,M,,"},
		{"rmc bad time", "GPRMC,xx,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W"},
		{"rmc bad date", "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,23031994,003.1,W"},
		{"rmc bad month", "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,231394,003.1,W"},
		{"rmc bad lat", "GPRMC,123519,A,xx,N,01131.000,E,022.4,084.4,230394,003.1,W"},
		{"rmc bad lon", "GPRMC,123519,A,4807.038,N,xx,E,022.4,084.4,230394,003.1,W"},
		{"rmc bad speed", "GPRMC,123519,A,4807.038,N,01131.000,E,x,084.4,230394,003.1,W"},
		{"rmc bad course", "GPRMC,123519,A,4807.038,N,01131.000,E,022.4,x,230394,003.1,W"},
		{"gsa bad fixmode", "GPGSA,A,x,04,05,,09,12,,,24,,,,,2.5,1.3,2.1"},
		{"gsa bad prn", "GPGSA,A,3,xx,05,,09,12,,,24,,,,,2.5,1.3,2.1"},
		{"gsa bad pdop", "GPGSA,A,3,04,05,,09,12,,,24,,,,,x,1.3,2.1"},
		{"gsa bad hdop", "GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,x,2.1"},
		{"gsa bad vdop", "GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,x"},
		{"gsa field count", "GPGSA,A,3,04,05"},
		{"gsv bad total", "GPGSV,x,1,08,01,40,083,46"},
		{"gsv bad msgnum", "GPGSV,2,x,08,01,40,083,46"},
		{"gsv bad inview", "GPGSV,2,1,xx,01,40,083,46"},
		{"gsv bad prn", "GPGSV,2,1,08,xx,40,083,46"},
		{"gsv bad elevation", "GPGSV,2,1,08,01,xx,083,46"},
		{"gsv bad azimuth", "GPGSV,2,1,08,01,40,xx,46"},
		{"gsv bad snr", "GPGSV,2,1,08,01,40,083,xx"},
		{"gsv field count", "GPGSV,2,1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(Frame(tt.payload)); err == nil {
				t.Errorf("malformed sentence parsed: %s", tt.payload)
			}
		})
	}
}
