package nmea

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

// pooledSentences covers all four supported types in framed form.
var pooledSentences = []string{
	ggaSentence,
	rmcSentence,
	Frame("GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1"),
	Frame("GPGSV,2,1,08,01,40,083,46,02,17,308,41,12,07,344,39,14,22,228,45"),
}

// TestParsePooledMatchesParse is the core equivalence contract: for
// every sentence type, ParsePooled's detached payload must be
// indistinguishable from what Parse returns.
func TestParsePooledMatchesParse(t *testing.T) {
	for _, raw := range pooledSentences {
		legacy, err := Parse(raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		p, err := ParsePooled([]byte(raw))
		if err != nil {
			t.Fatalf("ParsePooled(%q): %v", raw, err)
		}
		if p.Type() != legacy.Type() {
			t.Errorf("Type = %q, want %q", p.Type(), legacy.Type())
		}
		if got := p.DetachPayload(); !reflect.DeepEqual(got, legacy) {
			t.Errorf("DetachPayload(%q) =\n%+v\nwant\n%+v", raw, got, legacy)
		}
		// The floating zero reference is dropped implicitly: Release
		// pairs only with Retain.
		p.Retain()
		p.Release()
	}
}

// TestParsePooledViews checks the aliasing accessors agree with the
// legacy parse without detaching.
func TestParsePooledViews(t *testing.T) {
	p, err := ParsePooled([]byte(Frame("GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1")))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != KindGSA {
		t.Fatalf("Kind = %v, want KindGSA", p.Kind())
	}
	g := p.GSA()
	if want := []int{4, 5, 9, 12, 24}; !reflect.DeepEqual(g.PRNs, want) {
		t.Errorf("PRNs = %v, want %v", g.PRNs, want)
	}
	// Detached copy must not alias pooled storage: retain/release to
	// force a recycle, then reparse so the pool may hand the same
	// object back.
	det := p.DetachPayload().(GSA)
	p.Retain()
	p.Release()
	if _, err := ParsePooled([]byte(Frame("GPGSA,A,2,01,02,03,,,,,,,,,,9.9,9.9,9.9"))); err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 5, 9, 12, 24}; !reflect.DeepEqual(det.PRNs, want) {
		t.Errorf("detached PRNs corrupted by pool reuse: %v, want %v", det.PRNs, want)
	}
}

func TestParsePooledErrors(t *testing.T) {
	cases := []struct {
		raw  string
		want error
	}{
		{"", ErrFraming},
		{"$GPGGA,123519,4807.038,N", ErrFraming},
		{"$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*00", ErrChecksum},
		{Frame("GPZDA,123519,23,03,1994,00,00"), ErrUnknownType},
	}
	for _, c := range cases {
		if _, err := ParsePooled([]byte(c.raw)); !errors.Is(err, c.want) {
			t.Errorf("ParsePooled(%q) err = %v, want %v", c.raw, err, c.want)
		}
	}
}

// TestFormatRawRoundTrip renders each sentence type into a pooled Raw
// and parses it back.
func TestFormatRawRoundTrip(t *testing.T) {
	for _, raw := range pooledSentences {
		legacy, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		var r *Raw
		switch s := legacy.(type) {
		case GGA:
			r = FormatRaw(s)
		case RMC:
			r = FormatRaw(s)
		case GSA:
			r = FormatRaw(s)
		case GSV:
			r = FormatRaw(s)
		}
		want, err := Format(legacy)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.String(); got != want {
			t.Errorf("FormatRaw = %q, want %q", got, want)
		}
		if det, ok := r.DetachPayload().(string); !ok || det != r.String() {
			t.Errorf("DetachPayload = %v, want framed string", r.DetachPayload())
		}
		back, err := ParsePooled(r.Bytes())
		if err != nil {
			t.Fatalf("ParsePooled(FormatRaw(%q)): %v", raw, err)
		}
		if got := back.DetachPayload(); !reflect.DeepEqual(got, legacy) {
			t.Errorf("round trip = %+v, want %+v", got, legacy)
		}
		back.Retain()
		back.Release()
		r.Retain()
		r.Release()
	}
}

func TestParsedFormat(t *testing.T) {
	for _, raw := range pooledSentences {
		p, err := ParsePooled([]byte(raw))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Format(p)
		if err != nil {
			t.Fatalf("Format(Parsed %s): %v", p.Type(), err)
		}
		want, err := Format(p.DetachPayload().(Sentence))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Format(pooled) = %q, want %q", got, want)
		}
		p.Retain()
		p.Release()
	}
}

// TestReleaseBelowZeroPanics pins the refcount discipline: Release
// pairs only with Retain, so releasing the floating zero reference —
// a reference the caller does not own — must fail loudly rather than
// silently corrupt the pool.
func TestReleaseBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unowned release")
		}
	}()
	r := FormatRaw(GGA{Quality: FixGPS})
	r.Release() // never retained -> below zero -> panic
}

func TestParsedReleaseBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unowned release")
		}
	}()
	p, err := ParsePooled([]byte(ggaSentence))
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
}

// TestRetainPinsAcrossRecycling runs retained reads concurrently with a
// recycle-heavy loop. Under -race this catches any path where pooled
// storage is handed out while still referenced.
func TestRetainPinsAcrossRecycling(t *testing.T) {
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := ParsePooled([]byte(ggaSentence))
				if err != nil {
					t.Error(err)
					return
				}
				p.Retain() // simulate a history ring holding on
				if g := p.GGA(); g.NumSatellites != 8 {
					t.Errorf("NumSatellites = %d, want 8", g.NumSatellites)
					p.Release()
					return
				}
				det := p.DetachPayload().(GGA)
				p.Release() // ring drops -> zero -> recycled
				if det.HDOP != 0.9 {
					t.Errorf("detached HDOP = %v, want 0.9", det.HDOP)
					return
				}
			}
		}()
	}
	// Churn the pool from another goroutine so recycled objects
	// interleave with live readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			r := FormatRaw(RMC{Valid: true, SpeedKn: 1})
			r.Retain()
			r.Release()
		}
		close(stop)
	}()
	wg.Wait()
}
