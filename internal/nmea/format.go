package nmea

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Formatting is on the saturated hot path (the simulated receiver
// renders every epoch's sentence group), so sentences are assembled
// with strconv.Append* into a strings.Builder instead of fmt — one
// allocation per sentence (the final string), no interface boxing.

// Frame wraps a payload (without '$' or checksum) into a complete
// sentence with checksum and CRLF, ready to be emitted by a receiver.
func Frame(payload string) string {
	var b strings.Builder
	b.Grow(len(payload) + 7)
	b.WriteByte('$')
	b.WriteString(payload)
	writeChecksum(&b, Checksum(payload))
	return b.String()
}

// writeChecksum appends "*HH\r\n" for the given checksum byte.
func writeChecksum(b *strings.Builder, sum byte) {
	const hexDigits = "0123456789ABCDEF"
	b.WriteByte('*')
	b.WriteByte(hexDigits[sum>>4])
	b.WriteByte(hexDigits[sum&0xF])
	b.WriteString("\r\n")
}

// finish frames the payload accumulated in buf (which must NOT include
// the leading '$') into a complete sentence string.
func finish(buf []byte) string {
	var sum byte
	for _, c := range buf {
		sum ^= c
	}
	var b strings.Builder
	b.Grow(len(buf) + 6)
	b.WriteByte('$')
	b.Write(buf)
	writeChecksum(&b, sum)
	return b.String()
}

// Format renders a sentence back into its framed wire form. It supports
// the same sentence types as Parse; Parse(Format(s)) round-trips the
// fields up to the wire precision (1e-4 minutes, i.e. ~0.2 m).
//
// Hot-path producers that hold a concrete sentence value should call
// its Format method directly — passing through the Sentence interface
// boxes the value on the heap per call.
func Format(s Sentence) (string, error) {
	switch v := s.(type) {
	case GGA:
		return v.Format(), nil
	case RMC:
		return v.Format(), nil
	case GSA:
		return v.Format(), nil
	case GSV:
		return v.Format(), nil
	default:
		return "", fmt.Errorf("%w: %T", ErrUnknownType, s)
	}
}

// Format renders the sentence in framed wire form.
func (g GGA) Format() string { return formatGGA(g) }

// Format renders the sentence in framed wire form.
func (r RMC) Format() string { return formatRMC(r) }

// Format renders the sentence in framed wire form.
func (g GSA) Format() string { return formatGSA(g) }

// Format renders the sentence in framed wire form.
func (g GSV) Format() string { return formatGSV(g) }

// appendIntPad appends v zero-padded to the given width.
func appendIntPad(p []byte, v, width int) []byte {
	if v < 0 {
		v = 0
	}
	digits := 1
	for n := v; n >= 10; n /= 10 {
		digits++
	}
	for i := digits; i < width; i++ {
		p = append(p, '0')
	}
	return strconv.AppendInt(p, int64(v), 10)
}

// appendFixed appends v with one decimal place ("%.1f"). Wire fields
// using it are quantised to one decimal anyway, so the value is scaled
// to tenths and rendered with integer appends — strconv's general
// float-to-decimal path (rightShift/decimal.Assign) dominated the
// saturated-bench CPU profile before this.
func appendFixed(p []byte, v float64) []byte {
	if v < 0 {
		scaled := int64(-v*10 + 0.5)
		if scaled != 0 {
			p = append(p, '-')
		}
		return appendScaled(p, scaled, 1)
	}
	return appendScaled(p, int64(v*10+0.5), 1)
}

// appendScaled appends scaled/10^dec with exactly dec decimal digits.
func appendScaled(p []byte, scaled int64, dec int) []byte {
	pow := int64(1)
	for i := 0; i < dec; i++ {
		pow *= 10
	}
	p = strconv.AppendInt(p, scaled/pow, 10)
	p = append(p, '.')
	frac := scaled % pow
	for pow /= 10; pow > 1; pow /= 10 {
		if frac < pow {
			p = append(p, '0')
		}
	}
	return strconv.AppendInt(p, frac, 10)
}

func formatGGA(g GGA) string {
	buf := make([]byte, 0, 80)
	buf = append(buf, "GPGGA,"...)
	buf = appendUTC(buf, g.Time)
	buf = append(buf, ',')
	buf = appendLatLon(buf, g.Lat, true)
	buf = append(buf, ',')
	buf = appendLatLon(buf, g.Lon, false)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(g.Quality), 10)
	buf = append(buf, ',')
	buf = appendIntPad(buf, g.NumSatellites, 2)
	buf = append(buf, ',')
	buf = appendFixed(buf, g.HDOP)
	buf = append(buf, ',')
	buf = appendFixed(buf, g.Altitude)
	buf = append(buf, ",M,0.0,M,,"...)
	return finish(buf)
}

func formatRMC(r RMC) string {
	buf := make([]byte, 0, 80)
	buf = append(buf, "GPRMC,"...)
	buf = appendUTC(buf, r.Time)
	if r.Valid {
		buf = append(buf, ",A,"...)
	} else {
		buf = append(buf, ",V,"...)
	}
	buf = appendLatLon(buf, r.Lat, true)
	buf = append(buf, ',')
	buf = appendLatLon(buf, r.Lon, false)
	buf = append(buf, ',')
	buf = appendFixed(buf, r.SpeedKn)
	buf = append(buf, ',')
	buf = appendFixed(buf, r.CourseT)
	buf = append(buf, ',')
	if !r.Time.IsZero() {
		// ddmmyy
		buf = appendIntPad(buf, r.Time.Day(), 2)
		buf = appendIntPad(buf, int(r.Time.Month()), 2)
		buf = appendIntPad(buf, r.Time.Year()%100, 2)
	}
	buf = append(buf, ",,"...)
	return finish(buf)
}

func formatGSA(g GSA) string {
	buf := make([]byte, 0, 80)
	buf = append(buf, "GPGSA,"...)
	if g.Auto {
		buf = append(buf, 'A')
	} else {
		buf = append(buf, 'M')
	}
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(g.FixMode), 10)
	for i := 0; i < 12; i++ {
		buf = append(buf, ',')
		if i < len(g.PRNs) {
			buf = appendIntPad(buf, g.PRNs[i], 2)
		}
	}
	buf = append(buf, ',')
	buf = appendFixed(buf, g.PDOP)
	buf = append(buf, ',')
	buf = appendFixed(buf, g.HDOP)
	buf = append(buf, ',')
	buf = appendFixed(buf, g.VDOP)
	return finish(buf)
}

func formatGSV(g GSV) string {
	buf := make([]byte, 0, 96)
	buf = append(buf, "GPGSV,"...)
	buf = strconv.AppendInt(buf, int64(g.TotalMsgs), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(g.MsgNum), 10)
	buf = append(buf, ',')
	buf = appendIntPad(buf, g.TotalInView, 2)
	for _, sv := range g.Satellites {
		buf = append(buf, ',')
		buf = appendIntPad(buf, sv.PRN, 2)
		buf = append(buf, ',')
		buf = appendIntPad(buf, sv.Elevation, 2)
		buf = append(buf, ',')
		buf = appendIntPad(buf, sv.Azimuth, 3)
		buf = append(buf, ',')
		if sv.SNR > 0 {
			buf = appendIntPad(buf, sv.SNR, 2)
		}
	}
	return finish(buf)
}

// appendUTC appends hhmmss.ss. Zero times append an empty field.
func appendUTC(p []byte, t time.Time) []byte {
	if t.IsZero() {
		return p
	}
	p = appendIntPad(p, t.Hour(), 2)
	p = appendIntPad(p, t.Minute(), 2)
	p = appendIntPad(p, t.Second(), 2)
	p = append(p, '.')
	return appendIntPad(p, t.Nanosecond()/1e7, 2)
}

// appendLatLon appends signed decimal degrees as "ddmm.mmmm,H".
func appendLatLon(p []byte, dd float64, isLat bool) []byte {
	hemi := byte('N')
	if isLat {
		if dd < 0 {
			hemi = 'S'
		}
	} else {
		hemi = 'E'
		if dd < 0 {
			hemi = 'W'
		}
	}
	dd = math.Abs(dd)
	deg := math.Floor(dd)
	// Minutes carry four decimals on the wire, so they are rendered in
	// integer ten-thousandths; rounding up to 60.0000 carries into the
	// degrees instead.
	scaled := int64((dd-deg)*60*10000 + 0.5)
	if scaled >= 600000 {
		scaled = 0
		deg++
	}
	degWidth := 2
	if !isLat {
		degWidth = 3
	}
	p = appendIntPad(p, int(deg), degWidth)
	// %07.4f: minutes zero-padded to two integer digits.
	if scaled < 100000 {
		p = append(p, '0')
	}
	p = appendScaled(p, scaled, 4)
	p = append(p, ',', hemi)
	return p
}
