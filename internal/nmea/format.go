package nmea

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Frame wraps a payload (without '$' or checksum) into a complete
// sentence with checksum and CRLF, ready to be emitted by a receiver.
func Frame(payload string) string {
	return fmt.Sprintf("$%s*%02X\r\n", payload, Checksum(payload))
}

// Format renders a sentence back into its framed wire form. It supports
// the same sentence types as Parse; Parse(Format(s)) round-trips the
// fields up to the wire precision (1e-4 minutes, i.e. ~0.2 m).
func Format(s Sentence) (string, error) {
	switch v := s.(type) {
	case GGA:
		return formatGGA(v), nil
	case RMC:
		return formatRMC(v), nil
	case GSA:
		return formatGSA(v), nil
	case GSV:
		return formatGSV(v), nil
	default:
		return "", fmt.Errorf("%w: %T", ErrUnknownType, s)
	}
}

func formatGGA(g GGA) string {
	payload := fmt.Sprintf("GPGGA,%s,%s,%s,%d,%02d,%.1f,%.1f,M,0.0,M,,",
		formatUTC(g.Time),
		formatLatLon(g.Lat, true),
		formatLatLon(g.Lon, false),
		int(g.Quality),
		g.NumSatellites,
		g.HDOP,
		g.Altitude,
	)
	return Frame(payload)
}

func formatRMC(r RMC) string {
	status := "V"
	if r.Valid {
		status = "A"
	}
	date := ""
	if !r.Time.IsZero() {
		date = r.Time.Format("020106")
	}
	payload := fmt.Sprintf("GPRMC,%s,%s,%s,%s,%.1f,%.1f,%s,,",
		formatUTC(r.Time),
		status,
		formatLatLon(r.Lat, true),
		formatLatLon(r.Lon, false),
		r.SpeedKn,
		r.CourseT,
		date,
	)
	return Frame(payload)
}

func formatGSA(g GSA) string {
	mode := "M"
	if g.Auto {
		mode = "A"
	}
	prns := make([]string, 12)
	for i := range prns {
		if i < len(g.PRNs) {
			prns[i] = fmt.Sprintf("%02d", g.PRNs[i])
		}
	}
	payload := fmt.Sprintf("GPGSA,%s,%d,%s,%.1f,%.1f,%.1f",
		mode, g.FixMode, strings.Join(prns, ","), g.PDOP, g.HDOP, g.VDOP)
	return Frame(payload)
}

func formatGSV(g GSV) string {
	var b strings.Builder
	fmt.Fprintf(&b, "GPGSV,%d,%d,%02d", g.TotalMsgs, g.MsgNum, g.TotalInView)
	for _, sv := range g.Satellites {
		snr := ""
		if sv.SNR > 0 {
			snr = fmt.Sprintf("%02d", sv.SNR)
		}
		fmt.Fprintf(&b, ",%02d,%02d,%03d,%s", sv.PRN, sv.Elevation, sv.Azimuth, snr)
	}
	return Frame(b.String())
}

// formatUTC renders hhmmss.ss. Zero times render as an empty field.
func formatUTC(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format("150405.00")
}

// formatLatLon renders signed decimal degrees as "ddmm.mmmm,H".
func formatLatLon(dd float64, isLat bool) string {
	hemi := "N"
	if isLat {
		if dd < 0 {
			hemi = "S"
		}
	} else {
		hemi = "E"
		if dd < 0 {
			hemi = "W"
		}
	}
	dd = math.Abs(dd)
	deg := math.Floor(dd)
	minutes := (dd - deg) * 60
	// Guard against 60.0000 minutes after rounding.
	if minutes >= 59.99995 {
		minutes = 0
		deg++
	}
	if isLat {
		return fmt.Sprintf("%02d%07.4f,%s", int(deg), minutes, hemi)
	}
	return fmt.Sprintf("%03d%07.4f,%s", int(deg), minutes, hemi)
}
