package nmea

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Formatting is on the saturated hot path (the simulated receiver
// renders every epoch's sentence group), so sentences are assembled
// with strconv.Append* into a caller-supplied byte buffer — zero
// allocations when the caller recycles the buffer (see FormatRaw), one
// (the final string) for the legacy Format methods.

// Frame wraps a payload (without '$' or checksum) into a complete
// sentence with checksum and CRLF, ready to be emitted by a receiver.
func Frame(payload string) string {
	var b strings.Builder
	b.Grow(len(payload) + 7)
	b.WriteByte('$')
	b.WriteString(payload)
	writeChecksum(&b, Checksum(payload))
	return b.String()
}

// writeChecksum appends "*HH\r\n" for the given checksum byte.
func writeChecksum(b *strings.Builder, sum byte) {
	const hexDigits = "0123456789ABCDEF"
	b.WriteByte('*')
	b.WriteByte(hexDigits[sum>>4])
	b.WriteByte(hexDigits[sum&0xF])
	b.WriteString("\r\n")
}

// closeFrame checksums the payload appended since start (which must
// point at the '$' opening the frame) and appends "*HH\r\n".
func closeFrame(dst []byte, start int) []byte {
	const hexDigits = "0123456789ABCDEF"
	var sum byte
	for _, c := range dst[start+1:] {
		sum ^= c
	}
	return append(dst, '*', hexDigits[sum>>4], hexDigits[sum&0xF], '\r', '\n')
}

// Format renders a sentence back into its framed wire form. It supports
// the same sentence types as Parse; Parse(Format(s)) round-trips the
// fields up to the wire precision (1e-4 minutes, i.e. ~0.2 m).
//
// Hot-path producers that hold a concrete sentence value should call
// its Format or AppendFormat method directly — passing through the
// Sentence interface boxes the value on the heap per call.
func Format(s Sentence) (string, error) {
	switch v := s.(type) {
	case GGA:
		return v.Format(), nil
	case RMC:
		return v.Format(), nil
	case GSA:
		return v.Format(), nil
	case GSV:
		return v.Format(), nil
	case *Parsed:
		return v.format()
	default:
		return "", fmt.Errorf("%w: %T", ErrUnknownType, s)
	}
}

// Format renders the sentence in framed wire form.
func (g GGA) Format() string { return string(g.AppendFormat(make([]byte, 0, 96))) }

// Format renders the sentence in framed wire form.
func (r RMC) Format() string { return string(r.AppendFormat(make([]byte, 0, 96))) }

// Format renders the sentence in framed wire form.
func (g GSA) Format() string { return string(g.AppendFormat(make([]byte, 0, 96))) }

// Format renders the sentence in framed wire form.
func (g GSV) Format() string { return string(g.AppendFormat(make([]byte, 0, 112))) }

// appendIntPad appends v zero-padded to the given width.
func appendIntPad(p []byte, v, width int) []byte {
	if v < 0 {
		v = 0
	}
	digits := 1
	for n := v; n >= 10; n /= 10 {
		digits++
	}
	for i := digits; i < width; i++ {
		p = append(p, '0')
	}
	return strconv.AppendInt(p, int64(v), 10)
}

// appendFixed appends v with one decimal place ("%.1f"). Wire fields
// using it are quantised to one decimal anyway, so the value is scaled
// to tenths and rendered with integer appends — strconv's general
// float-to-decimal path (rightShift/decimal.Assign) dominated the
// saturated-bench CPU profile before this.
func appendFixed(p []byte, v float64) []byte {
	if v < 0 {
		scaled := int64(-v*10 + 0.5)
		if scaled != 0 {
			p = append(p, '-')
		}
		return appendScaled(p, scaled, 1)
	}
	return appendScaled(p, int64(v*10+0.5), 1)
}

// appendScaled appends scaled/10^dec with exactly dec decimal digits.
func appendScaled(p []byte, scaled int64, dec int) []byte {
	pow := int64(1)
	for i := 0; i < dec; i++ {
		pow *= 10
	}
	p = strconv.AppendInt(p, scaled/pow, 10)
	p = append(p, '.')
	frac := scaled % pow
	for pow /= 10; pow > 1; pow /= 10 {
		if frac < pow {
			p = append(p, '0')
		}
	}
	return strconv.AppendInt(p, frac, 10)
}

// AppendFormat appends the complete framed wire form ("$GPGGA,...*HH\r\n")
// to dst and returns the extended buffer.
func (g GGA) AppendFormat(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, "$GPGGA,"...)
	dst = appendUTC(dst, g.Time)
	dst = append(dst, ',')
	dst = appendLatLon(dst, g.Lat, true)
	dst = append(dst, ',')
	dst = appendLatLon(dst, g.Lon, false)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(g.Quality), 10)
	dst = append(dst, ',')
	dst = appendIntPad(dst, g.NumSatellites, 2)
	dst = append(dst, ',')
	dst = appendFixed(dst, g.HDOP)
	dst = append(dst, ',')
	dst = appendFixed(dst, g.Altitude)
	dst = append(dst, ",M,0.0,M,,"...)
	return closeFrame(dst, start)
}

// AppendFormat appends the complete framed wire form to dst.
func (r RMC) AppendFormat(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, "$GPRMC,"...)
	dst = appendUTC(dst, r.Time)
	if r.Valid {
		dst = append(dst, ",A,"...)
	} else {
		dst = append(dst, ",V,"...)
	}
	dst = appendLatLon(dst, r.Lat, true)
	dst = append(dst, ',')
	dst = appendLatLon(dst, r.Lon, false)
	dst = append(dst, ',')
	dst = appendFixed(dst, r.SpeedKn)
	dst = append(dst, ',')
	dst = appendFixed(dst, r.CourseT)
	dst = append(dst, ',')
	if !r.Time.IsZero() {
		// ddmmyy
		dst = appendIntPad(dst, r.Time.Day(), 2)
		dst = appendIntPad(dst, int(r.Time.Month()), 2)
		dst = appendIntPad(dst, r.Time.Year()%100, 2)
	}
	dst = append(dst, ",,"...)
	return closeFrame(dst, start)
}

// AppendFormat appends the complete framed wire form to dst.
func (g GSA) AppendFormat(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, "$GPGSA,"...)
	if g.Auto {
		dst = append(dst, 'A')
	} else {
		dst = append(dst, 'M')
	}
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(g.FixMode), 10)
	for i := 0; i < 12; i++ {
		dst = append(dst, ',')
		if i < len(g.PRNs) {
			dst = appendIntPad(dst, g.PRNs[i], 2)
		}
	}
	dst = append(dst, ',')
	dst = appendFixed(dst, g.PDOP)
	dst = append(dst, ',')
	dst = appendFixed(dst, g.HDOP)
	dst = append(dst, ',')
	dst = appendFixed(dst, g.VDOP)
	return closeFrame(dst, start)
}

// AppendFormat appends the complete framed wire form to dst.
func (g GSV) AppendFormat(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, "$GPGSV,"...)
	dst = strconv.AppendInt(dst, int64(g.TotalMsgs), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(g.MsgNum), 10)
	dst = append(dst, ',')
	dst = appendIntPad(dst, g.TotalInView, 2)
	for _, sv := range g.Satellites {
		dst = append(dst, ',')
		dst = appendIntPad(dst, sv.PRN, 2)
		dst = append(dst, ',')
		dst = appendIntPad(dst, sv.Elevation, 2)
		dst = append(dst, ',')
		dst = appendIntPad(dst, sv.Azimuth, 3)
		dst = append(dst, ',')
		if sv.SNR > 0 {
			dst = appendIntPad(dst, sv.SNR, 2)
		}
	}
	return closeFrame(dst, start)
}

// appendUTC appends hhmmss.ss. Zero times append an empty field.
func appendUTC(p []byte, t time.Time) []byte {
	if t.IsZero() {
		return p
	}
	p = appendIntPad(p, t.Hour(), 2)
	p = appendIntPad(p, t.Minute(), 2)
	p = appendIntPad(p, t.Second(), 2)
	p = append(p, '.')
	return appendIntPad(p, t.Nanosecond()/1e7, 2)
}

// appendLatLon appends signed decimal degrees as "ddmm.mmmm,H".
func appendLatLon(p []byte, dd float64, isLat bool) []byte {
	hemi := byte('N')
	if isLat {
		if dd < 0 {
			hemi = 'S'
		}
	} else {
		hemi = 'E'
		if dd < 0 {
			hemi = 'W'
		}
	}
	dd = math.Abs(dd)
	deg := math.Floor(dd)
	// Minutes carry four decimals on the wire, so they are rendered in
	// integer ten-thousandths; rounding up to 60.0000 carries into the
	// degrees instead.
	scaled := int64((dd-deg)*60*10000 + 0.5)
	if scaled >= 600000 {
		scaled = 0
		deg++
	}
	degWidth := 2
	if !isLat {
		degWidth = 3
	}
	p = appendIntPad(p, int(deg), degWidth)
	// %07.4f: minutes zero-padded to two integer digits.
	if scaled < 100000 {
		p = append(p, '0')
	}
	p = appendScaled(p, scaled, 4)
	p = append(p, ',', hemi)
	return p
}
