package nmea

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Pooled payload carriers for the saturated hot path. A simulated
// receiver renders ~4 sentences per epoch and the parser re-boxes each
// of them; with string/interface payloads that is ~13 heap allocations
// per source step. Raw and Parsed are reference-counted pool objects
// implementing the core.PooledPayload contract (DESIGN.md §13): the
// channel layer's history ring and data-tree roots Retain/Release them,
// and DetachPayload converts back to the legacy payload form (string /
// boxed sentence value) whenever a sample escapes the pool's ownership
// domain (Sample.Detach, sink retention, remote encoding).
//
// Refcounts float at zero: a payload that is never retained is simply
// garbage-collected and the pool misses one recycle — correctness never
// depends on reaching zero. Releasing below zero panics, as that means
// some holder released a reference it did not own.

// Raw is a pooled framed NMEA sentence ("$GPGGA,...*HH\r\n") carried as
// bytes. It is produced by FormatRaw and consumed by ParsePooled.
type Raw struct {
	buf  []byte
	refs atomic.Int32
}

var rawPool = sync.Pool{New: func() any { return &Raw{buf: make([]byte, 0, 96)} }}

// Bytes returns the framed sentence. The slice is valid only while the
// caller holds a reference; it must not be modified or retained past
// Release.
func (r *Raw) Bytes() []byte { return r.buf }

// String copies the framed sentence into a fresh string.
func (r *Raw) String() string { return string(r.buf) }

// Retain adds a reference.
func (r *Raw) Retain() { r.refs.Add(1) }

// Release drops a reference, recycling the object when the count
// returns to zero. Releasing below zero panics.
func (r *Raw) Release() {
	switch n := r.refs.Add(-1); {
	case n > 0:
	case n == 0:
		r.buf = r.buf[:0]
		rawPool.Put(r)
	default:
		panic("nmea: Raw released below zero")
	}
}

// DetachPayload returns the legacy payload form: the framed sentence as
// a string.
func (r *Raw) DetachPayload() any { return string(r.buf) }

// Appender is satisfied by sentence values that can render their framed
// wire form into a caller-supplied buffer. It is a type constraint, not
// a boxing surface: FormatRaw is generic so value sentences stay on the
// stack.
type Appender interface {
	AppendFormat(dst []byte) []byte
}

// FormatRaw renders s into a pooled Raw. The caller owns the floating
// (zero) reference: emit it as a sample payload and the channel layer's
// retention takes over.
func FormatRaw[S Appender](s S) *Raw {
	r := rawPool.Get().(*Raw)
	r.buf = s.AppendFormat(r.buf[:0])
	return r
}

// SentenceKind discriminates the union held by a Parsed payload.
type SentenceKind uint8

// Sentence kinds stored in Parsed.
const (
	KindUnknown SentenceKind = iota
	KindGGA
	KindRMC
	KindGSA
	KindGSV
)

// Parsed is a pooled parsed sentence: a tagged union of the four
// supported types whose PRN/satellite slices alias internal fixed
// buffers, so parsing a sentence group costs zero heap allocations.
// Parsed is always handled by pointer — copying the struct would break
// the internal aliasing.
type Parsed struct {
	kind SentenceKind
	gga  GGA
	rmc  RMC
	gsa  GSA
	gsv  GSV

	prnBuf [12]int
	satBuf [4]SatelliteInView
	refs   atomic.Int32
}

var parsedPool = sync.Pool{New: func() any { return new(Parsed) }}

// Type implements Sentence.
func (p *Parsed) Type() string {
	switch p.kind {
	case KindGGA:
		return "GGA"
	case KindRMC:
		return "RMC"
	case KindGSA:
		return "GSA"
	case KindGSV:
		return "GSV"
	default:
		return "???"
	}
}

// Kind returns the sentence kind held by the union.
func (p *Parsed) Kind() SentenceKind { return p.kind }

// GGA returns the parsed GGA value. Valid only when Kind is KindGGA.
func (p *Parsed) GGA() GGA { return p.gga }

// RMC returns the parsed RMC value. Valid only when Kind is KindRMC.
func (p *Parsed) RMC() RMC { return p.rmc }

// GSA returns a view of the parsed GSA. The PRNs slice aliases pooled
// storage and is valid only while the caller holds a reference.
func (p *Parsed) GSA() GSA { return p.gsa }

// GSV returns a view of the parsed GSV. The Satellites slice aliases
// pooled storage and is valid only while the caller holds a reference.
func (p *Parsed) GSV() GSV { return p.gsv }

// Retain adds a reference.
func (p *Parsed) Retain() { p.refs.Add(1) }

// Release drops a reference, recycling the object when the count
// returns to zero. Releasing below zero panics.
func (p *Parsed) Release() {
	switch n := p.refs.Add(-1); {
	case n > 0:
	case n == 0:
		p.kind = KindUnknown
		parsedPool.Put(p)
	default:
		panic("nmea: Parsed released below zero")
	}
}

// DetachPayload returns the legacy payload form: the boxed sentence
// value with slices deep-copied out of pooled storage, indistinguishable
// from what Parse would have returned.
func (p *Parsed) DetachPayload() any {
	switch p.kind {
	case KindGGA:
		return p.gga
	case KindRMC:
		return p.rmc
	case KindGSA:
		g := p.gsa
		if g.PRNs != nil {
			g.PRNs = append(make([]int, 0, len(g.PRNs)), g.PRNs...)
		}
		return g
	case KindGSV:
		g := p.gsv
		g.Satellites = append(make([]SatelliteInView, 0, len(g.Satellites)), g.Satellites...)
		return g
	default:
		return nil
	}
}

// format renders the held sentence in framed wire form.
func (p *Parsed) format() (string, error) {
	switch p.kind {
	case KindGGA:
		return p.gga.Format(), nil
	case KindRMC:
		return p.rmc.Format(), nil
	case KindGSA:
		return p.gsa.Format(), nil
	case KindGSV:
		return p.gsv.Format(), nil
	default:
		return "", fmt.Errorf("%w: empty pooled sentence", ErrUnknownType)
	}
}

// ParsePooled parses a framed sentence from bytes into a pooled Parsed.
// The input is only read during the call — error values copy any quoted
// fragment eagerly (fmt %q) and the parsers retain no substrings — so
// the caller may release or reuse raw immediately after. The returned
// Parsed carries a floating (zero) reference, like FormatRaw.
func ParsePooled(raw []byte) (*Parsed, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("%w: empty sentence", ErrFraming)
	}
	// Zero-copy view: the parse helpers below never retain substrings of
	// the payload (verified field by field — only numeric, time and bool
	// fields survive), so viewing the caller's bytes as a string is safe
	// even though the bytes may be recycled after we return.
	s := unsafe.String(unsafe.SliceData(raw), len(raw))
	payload, err := unframe(s)
	if err != nil {
		return nil, err
	}
	var fieldBuf [maxFields]string
	nf := splitFields(payload, &fieldBuf)
	if nf < 0 {
		return nil, fmt.Errorf("%w: too many fields in %q", ErrFieldCount, payload)
	}
	fields := fieldBuf[:nf]
	talkerType := fields[0]
	if len(talkerType) != 5 {
		return nil, fmt.Errorf("%w: bad talker/type %q", ErrFraming, talkerType)
	}
	p := parsedPool.Get().(*Parsed)
	switch talkerType[2:] {
	case "GGA":
		p.kind = KindGGA
		err = parseGGAInto(fields, &p.gga)
	case "RMC":
		p.kind = KindRMC
		err = parseRMCInto(fields, &p.rmc)
	case "GSA":
		p.kind = KindGSA
		err = parseGSAInto(fields, &p.gsa, p.prnBuf[:0])
	case "GSV":
		p.kind = KindGSV
		err = parseGSVInto(fields, &p.gsv, p.satBuf[:0])
	default:
		err = fmt.Errorf("%w: %q", ErrUnknownType, talkerType[2:])
	}
	if err != nil {
		p.kind = KindUnknown
		parsedPool.Put(p)
		return nil, err
	}
	return p, nil
}
