// Package channel implements the PerPos Process Channel Layer (PCL):
// the positioning process abstracted to data sources, merge components
// and the application, connected by Channels (paper §2.2).
//
// A Channel encapsulates the linear pipeline between its end points and
// groups, for every datum it delivers, all intermediate data that
// logically contributed to it into a hierarchical data tree ordered by
// logical time (Fig. 4). Channel Features (the Likelihood and EnTracked
// features of §3.2–3.3) receive each tree through Apply and expose
// cross-step functionality that no single Processing Component could
// provide.
package channel

import (
	"fmt"
	"strings"
	"sync"

	"perpos/internal/core"
)

// TreeNode is one datum in a data tree together with the ID of the
// Processing Component that produced it. Children are the data elements
// from the next component upstream whose logical times fall within this
// datum's consumption span — exactly the Fig. 4 grouping.
type TreeNode struct {
	Sample   core.Sample
	Children []*TreeNode
}

// DataTree is the hierarchical grouping of every intermediate data
// element that contributed to one Channel output (Fig. 4). The root is
// the sample delivered by the Channel end point; leaves are sensor data.
//
// Ownership: trees handed to Channel Features via Apply (and to the
// layer's tree observer) are owned by the middleware and recycled after
// the channel's NEXT delivery. Reading during Apply is free; retaining
// the tree (or any node reached through it) past Apply requires Detach.
type DataTree struct {
	Root *TreeNode
}

// Trees are built for every endpoint emission, so their nodes are the
// highest-volume heap objects in the PCL. They are pooled: the layer
// allocates from the pool at build time and recycles a channel's
// previous tree when the next delivery replaces it.
var (
	nodePool = sync.Pool{New: func() any { return new(TreeNode) }}
	treePool = sync.Pool{New: func() any { return new(DataTree) }}
)

// newTree allocates a pooled tree shell.
func newTree() *DataTree { return treePool.Get().(*DataTree) }

// newTreeNode allocates a pooled node carrying s, with zero children
// (but retained child capacity from its previous life). The node holds
// a payload reference until releaseNode.
func newTreeNode(s core.Sample) *TreeNode {
	n := nodePool.Get().(*TreeNode)
	core.RetainPayload(s.Payload)
	n.Sample = s
	return n
}

// releaseTree returns a tree and all of its nodes to the pool. Nodes are
// fully reset (zero Sample, zero-length children) before being pooled so
// a recycled node can never leak a previous delivery's data.
func releaseTree(t *DataTree) {
	if t == nil {
		return
	}
	releaseNode(t.Root)
	t.Root = nil
	treePool.Put(t)
}

func releaseNode(n *TreeNode) {
	if n == nil {
		return
	}
	for i, c := range n.Children {
		releaseNode(c)
		n.Children[i] = nil
	}
	n.Children = n.Children[:0]
	core.ReleasePayload(n.Sample.Payload)
	n.Sample = core.Sample{}
	nodePool.Put(n)
}

// Detach returns a deep copy of the tree that the caller owns outright:
// its nodes are not pool-managed and its samples share no mutable state
// (spans, attributes) with the middleware. Channel Features that keep
// delivered trees past Apply must detach them first.
func (t *DataTree) Detach() *DataTree {
	if t == nil {
		return nil
	}
	return &DataTree{Root: t.Root.Detach()}
}

// Detach returns an owned deep copy of the subtree rooted at n.
func (n *TreeNode) Detach() *TreeNode {
	if n == nil {
		return nil
	}
	out := &TreeNode{Sample: n.Sample.Detach()}
	if len(n.Children) > 0 {
		out.Children = make([]*TreeNode, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Detach()
		}
	}
	return out
}

// Entry pairs a sample with the component that produced it, as returned
// by Data — the (component, nmeaSentence) iteration of Fig. 5.
type Entry struct {
	ComponentID string
	Sample      core.Sample
}

// Data returns every sample in the tree with the given kind, in
// depth-first pre-order. This is the dataTree.getData(NMEASentence.class)
// operation from Fig. 5: Channel Features must cope with any number of
// matches at any depth, because intermediate filter components may have
// been inserted without their knowledge.
func (t *DataTree) Data(kind core.Kind) []Entry {
	var out []Entry
	t.walk(func(n *TreeNode) {
		if n.Sample.Kind == kind {
			out = append(out, Entry{ComponentID: n.Sample.Source, Sample: n.Sample})
		}
	})
	return out
}

// All returns every entry in the tree in depth-first pre-order.
func (t *DataTree) All() []Entry {
	var out []Entry
	t.walk(func(n *TreeNode) {
		out = append(out, Entry{ComponentID: n.Sample.Source, Sample: n.Sample})
	})
	return out
}

// Depth returns the number of layers in the tree (1 for a bare root).
// Fig. 4's GPS channel tree has depth 3: WGS84 <- NMEA <- strings.
func (t *DataTree) Depth() int {
	var depth func(n *TreeNode) int
	depth = func(n *TreeNode) int {
		max := 0
		for _, c := range n.Children {
			if d := depth(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	if t == nil || t.Root == nil {
		return 0
	}
	return depth(t.Root)
}

// Size returns the total number of data elements in the tree.
func (t *DataTree) Size() int {
	n := 0
	t.walk(func(*TreeNode) { n++ })
	return n
}

func (t *DataTree) walk(fn func(*TreeNode)) {
	if t == nil || t.Root == nil {
		return
	}
	var rec func(n *TreeNode)
	rec = func(n *TreeNode) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// String renders the tree in the Fig. 4 tuple style, one line per datum,
// indented by layer.
func (t *DataTree) String() string {
	var b strings.Builder
	var rec func(n *TreeNode, depth int)
	rec = func(n *TreeNode, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), n.Sample)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if t != nil && t.Root != nil {
		rec(t.Root, 0)
	}
	return b.String()
}
