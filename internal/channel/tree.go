// Package channel implements the PerPos Process Channel Layer (PCL):
// the positioning process abstracted to data sources, merge components
// and the application, connected by Channels (paper §2.2).
//
// A Channel encapsulates the linear pipeline between its end points and
// groups, for every datum it delivers, all intermediate data that
// logically contributed to it into a hierarchical data tree ordered by
// logical time (Fig. 4). Channel Features (the Likelihood and EnTracked
// features of §3.2–3.3) receive each tree through Apply and expose
// cross-step functionality that no single Processing Component could
// provide.
package channel

import (
	"fmt"
	"strings"

	"perpos/internal/core"
)

// TreeNode is one datum in a data tree together with the ID of the
// Processing Component that produced it. Children are the data elements
// from the next component upstream whose logical times fall within this
// datum's consumption span — exactly the Fig. 4 grouping.
type TreeNode struct {
	Sample   core.Sample
	Children []*TreeNode
}

// DataTree is the hierarchical grouping of every intermediate data
// element that contributed to one Channel output (Fig. 4). The root is
// the sample delivered by the Channel end point; leaves are sensor data.
type DataTree struct {
	Root *TreeNode
}

// Entry pairs a sample with the component that produced it, as returned
// by Data — the (component, nmeaSentence) iteration of Fig. 5.
type Entry struct {
	ComponentID string
	Sample      core.Sample
}

// Data returns every sample in the tree with the given kind, in
// depth-first pre-order. This is the dataTree.getData(NMEASentence.class)
// operation from Fig. 5: Channel Features must cope with any number of
// matches at any depth, because intermediate filter components may have
// been inserted without their knowledge.
func (t *DataTree) Data(kind core.Kind) []Entry {
	var out []Entry
	t.walk(func(n *TreeNode) {
		if n.Sample.Kind == kind {
			out = append(out, Entry{ComponentID: n.Sample.Source, Sample: n.Sample})
		}
	})
	return out
}

// All returns every entry in the tree in depth-first pre-order.
func (t *DataTree) All() []Entry {
	var out []Entry
	t.walk(func(n *TreeNode) {
		out = append(out, Entry{ComponentID: n.Sample.Source, Sample: n.Sample})
	})
	return out
}

// Depth returns the number of layers in the tree (1 for a bare root).
// Fig. 4's GPS channel tree has depth 3: WGS84 <- NMEA <- strings.
func (t *DataTree) Depth() int {
	var depth func(n *TreeNode) int
	depth = func(n *TreeNode) int {
		max := 0
		for _, c := range n.Children {
			if d := depth(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	if t == nil || t.Root == nil {
		return 0
	}
	return depth(t.Root)
}

// Size returns the total number of data elements in the tree.
func (t *DataTree) Size() int {
	n := 0
	t.walk(func(*TreeNode) { n++ })
	return n
}

func (t *DataTree) walk(fn func(*TreeNode)) {
	if t == nil || t.Root == nil {
		return
	}
	var rec func(n *TreeNode)
	rec = func(n *TreeNode) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// String renders the tree in the Fig. 4 tuple style, one line per datum,
// indented by layer.
func (t *DataTree) String() string {
	var b strings.Builder
	var rec func(n *TreeNode, depth int)
	rec = func(n *TreeNode, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), n.Sample)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if t != nil && t.Root != nil {
		rec(t.Root, 0)
	}
	return b.String()
}
