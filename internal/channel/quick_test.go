package channel

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"perpos/internal/core"
)

// buildRandomTree builds a graph with `sources` linear pipelines of
// `depth` transforms each feeding one merge, which feeds the app.
func buildRandomTree(t *testing.T, sources, depth int) *core.Graph {
	t.Helper()
	g := core.New()

	// A fusion component declares at least two ports (a single-input
	// component would rightly not count as a PCL merge), even if only
	// `sources` of them get wired.
	nPorts := sources
	if nPorts < 2 {
		nPorts = 2
	}
	inputs := make([]core.PortSpec, nPorts)
	for i := range inputs {
		inputs[i] = core.PortSpec{
			Name:    fmt.Sprintf("in%d", i),
			Accepts: []core.Kind{core.Kind(fmt.Sprintf("leaf%d.k%d", i, depth))},
		}
	}
	merge := &core.FuncComponent{
		CompID: "merge",
		CompSpec: core.Spec{
			Name:   "merge",
			Inputs: inputs,
			Output: core.OutputSpec{Kind: kindEst},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			out := in
			out.Kind = kindEst
			emit(out)
			return nil
		},
	}
	mustAdd(t, g, merge)
	sink := core.NewSink("app", []core.Kind{kindEst})
	mustAdd(t, g, sink)
	mustConnect(t, g, "merge", "app", 0)

	for s := 0; s < sources; s++ {
		srcID := fmt.Sprintf("leaf%d", s)
		mustAdd(t, g, rawSource(srcID, core.Kind(fmt.Sprintf("leaf%d.k0", s)), 2))
		prev := srcID
		for d := 1; d <= depth; d++ {
			id := fmt.Sprintf("leaf%d.t%d", s, d)
			mustAdd(t, g, passthrough(id,
				core.Kind(fmt.Sprintf("leaf%d.k%d", s, d-1)),
				core.Kind(fmt.Sprintf("leaf%d.k%d", s, d))))
			mustConnect(t, g, prev, id, 0)
			prev = id
		}
		mustConnect(t, g, prev, "merge", s)
	}
	return g
}

// TestPropertyChannelPartition: in a sources-merge-app tree, derivation
// yields sources+1 channels, every non-sink component appears in
// exactly one channel, and each channel's nodes form the path from its
// source to its endpoint.
func TestPropertyChannelPartition(t *testing.T) {
	f := func(sourcesRaw, depthRaw uint8) bool {
		sources := int(sourcesRaw%4) + 1
		depth := int(depthRaw % 4)
		g := buildRandomTree(t, sources, depth)
		l := NewLayer(g)
		defer l.Close()

		channels := l.Channels()
		if len(channels) != sources+1 {
			t.Logf("sources=%d depth=%d channels=%d", sources, depth, len(channels))
			return false
		}
		seen := map[string]int{}
		for _, c := range channels {
			for _, id := range c.NodeIDs() {
				seen[id]++
			}
		}
		for _, n := range g.Nodes() {
			if n.Spec().IsSink() {
				if seen[n.ID()] != 0 {
					t.Logf("sink %s inside a channel", n.ID())
					return false
				}
				continue
			}
			if seen[n.ID()] != 1 {
				t.Logf("component %s in %d channels", n.ID(), seen[n.ID()])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTreeCoversEmissions: over a full run, each delivered
// tree's size is positive and bounded by the total number of samples
// recorded in the channel, and every entry's component belongs to the
// channel.
func TestPropertyTreeCoversEmissions(t *testing.T) {
	f := func(depthRaw uint8) bool {
		depth := int(depthRaw % 4)
		g := buildRandomTree(t, 1, depth)
		l := NewLayer(g)
		defer l.Close()

		ch, ok := l.ChannelInto("merge", 0)
		if !ok {
			return false
		}
		members := map[string]bool{}
		for _, id := range ch.NodeIDs() {
			members[id] = true
		}
		collect := &recordingFeature{name: "rec"}
		if err := ch.AttachFeature(collect); err != nil {
			return false
		}
		if _, err := g.Run(0); err != nil {
			return false
		}
		if len(collect.trees) == 0 {
			return false
		}
		for _, tree := range collect.trees {
			if tree.Size() < 1 || tree.Size() > 2*(depth+1)+1 {
				t.Logf("depth=%d tree size %d", depth, tree.Size())
				return false
			}
			if got := tree.Depth(); got != depth+1 {
				t.Logf("depth=%d tree depth %d, want %d", depth, got, depth+1)
				return false
			}
			for _, e := range tree.All() {
				if !members[e.ComponentID] {
					t.Logf("tree entry from non-member %s", e.ComponentID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRefreshIdempotent: refreshing the layer any number of
// times without graph edits leaves the channel set unchanged.
func TestPropertyRefreshIdempotent(t *testing.T) {
	f := func(sourcesRaw, refreshes uint8) bool {
		sources := int(sourcesRaw%3) + 1
		g := buildRandomTree(t, sources, 1)
		l := NewLayer(g)
		defer l.Close()

		before := channelIDs(l.Channels())
		for i := 0; i < int(refreshes%5); i++ {
			l.Refresh()
		}
		after := channelIDs(l.Channels())
		return equalStrings(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDataTreesDeterministic: two identical runs produce
// identical tree renderings.
func TestPropertyDataTreesDeterministic(t *testing.T) {
	render := func() string {
		g, _ := buildFig4Graph(t)
		l := NewLayer(g)
		defer l.Close()
		if _, err := g.Run(0); err != nil {
			t.Fatal(err)
		}
		c, _ := l.ChannelInto("app", 0)
		tree, ok := c.LastTree()
		if !ok {
			t.Fatal("no tree")
		}
		return tree.String()
	}
	a := render()
	time.Sleep(time.Millisecond)
	b := render()
	if a != b {
		t.Errorf("non-deterministic trees:\n%s\nvs\n%s", a, b)
	}
}
