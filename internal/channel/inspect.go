package channel

import (
	"reflect"
	"sort"
)

// FeatureMethods returns the exported method names of the named feature
// (Channel Feature or a member component's Component Feature) — the
// paper's "inspection of the Channels and the methods they provide",
// which is what lets a developer discover, e.g., that the likelihood
// feature offers getLikelihood before type-asserting to its interface.
func (c *Channel) FeatureMethods(name string) ([]string, bool) {
	f, ok := c.Feature(name)
	if !ok {
		return nil, false
	}
	return MethodsOf(f), true
}

// MethodsOf lists the exported methods of any feature value, sorted.
func MethodsOf(v any) []string {
	if v == nil {
		return nil
	}
	t := reflect.TypeOf(v)
	out := make([]string, 0, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		out = append(out, t.Method(i).Name)
	}
	sort.Strings(out)
	return out
}

// Describe summarises a channel for inspection tooling: nodes, consumer
// and the methods of every attached feature.
type Description struct {
	ID       string
	Nodes    []string
	Consumer string
	Features []FeatureDescription
}

// FeatureDescription is one feature's inspection record.
type FeatureDescription struct {
	Name    string
	Methods []string
}

// Describe returns the channel's inspection record.
func (c *Channel) Describe() Description {
	d := Description{
		ID:    c.ID(),
		Nodes: c.NodeIDs(),
	}
	if c.consumer != nil {
		d.Consumer = c.consumer.ID()
	}
	for _, name := range c.FeatureNames() {
		methods, _ := c.FeatureMethods(name)
		d.Features = append(d.Features, FeatureDescription{Name: name, Methods: methods})
	}
	return d
}
