package channel

import (
	"fmt"
	"strings"
	"testing"

	"perpos/internal/core"
)

// layerTreeSignature flattens every channel's current tree for
// comparison across delivery modes.
func layerTreeSignature(l *Layer) string {
	var sb strings.Builder
	for _, c := range l.Channels() {
		tree, ok := c.LastTree()
		if !ok {
			fmt.Fprintf(&sb, "%s: <none>\n", c.ID())
			continue
		}
		fmt.Fprintf(&sb, "%s:", c.ID())
		var walk func(n *TreeNode)
		walk = func(n *TreeNode) {
			s := n.Sample.Detach()
			fmt.Fprintf(&sb, " [%s %v @%d]", s.Source, s.Payload, s.Logical)
			for _, ch := range n.Children {
				walk(ch)
			}
		}
		walk(tree.Root)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestLayerBatchedMatchesPerEmission is the layer-level batching
// contract: driving the same graph inside a burst must leave the
// channel layer with exactly the trees per-emission delivery builds.
func TestLayerBatchedMatchesPerEmission(t *testing.T) {
	const steps = 5

	run := func(burst bool) string {
		g, _ := buildFig2Graph(t, steps)
		l := NewLayer(g)
		defer l.Close()
		var b *core.Burst
		if burst {
			b = g.BeginBurst(0)
			if b == nil {
				t.Fatal("BeginBurst returned nil — layer did not register as a batch tap")
			}
		}
		for i := 0; i < steps; i++ {
			if _, err := g.StepAll(); err != nil {
				t.Fatal(err)
			}
		}
		b.End()
		return layerTreeSignature(l)
	}

	batched := run(true)
	single := run(false)
	if batched != single {
		t.Errorf("trees diverge:\nbatched:\n%s\nper-emission:\n%s", batched, single)
	}
	if !strings.Contains(batched, "particle-filter") {
		t.Errorf("signature looks empty:\n%s", batched)
	}
}

// TestLayerEagerDuringBurst: attaching a channel feature flips the
// layer to NeedsSync, so features keep seeing every delivery even while
// a burst is open, in order.
func TestLayerEagerDuringBurst(t *testing.T) {
	g, _ := buildFig2Graph(t, 3)
	l := NewLayer(g)
	defer l.Close()

	if l.NeedsSync("", core.Sample{}) {
		t.Fatal("layer eager with no features attached")
	}
	c, ok := l.ChannelInto("particle-filter", 0)
	if !ok {
		t.Fatal("no channel into particle-filter")
	}
	f := &plainFeature{name: "counter"}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}
	if !l.NeedsSync("", core.Sample{}) {
		t.Fatal("layer not eager after AttachFeature")
	}

	b := g.BeginBurst(0)
	for i := 0; i < 3; i++ {
		if _, err := g.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	if f.count != 3 {
		t.Errorf("feature applied %d times during burst, want 3 (sync escape)", f.count)
	}
	b.End()

	// Detaching the only feature drops eagerness again.
	if err := c.DetachFeature("counter"); err != nil {
		t.Fatal(err)
	}
	if l.NeedsSync("", core.Sample{}) {
		t.Error("layer still eager after DetachFeature")
	}
}

// TestLayerTreeObserverForcesEager: a tree observer consumes every
// delivery, so the layer must refuse to defer any.
func TestLayerTreeObserverForcesEager(t *testing.T) {
	g, _ := buildFig2Graph(t, 2)
	seen := 0
	l := NewLayer(g, WithTreeObserver(func(*Channel, *DataTree) { seen++ }))
	defer l.Close()
	if !l.NeedsSync("", core.Sample{}) {
		t.Fatal("layer with tree observer must be eager")
	}
	b := g.BeginBurst(0)
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	b.End()
	if seen == 0 {
		t.Error("tree observer saw nothing during burst")
	}
}
