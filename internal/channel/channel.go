package channel

import (
	"errors"
	"fmt"
	"sync"

	"perpos/internal/core"
)

// Errors returned by the Process Channel Layer.
var (
	// ErrUnmetRequirement indicates a Channel Feature whose declared
	// requirements are not satisfied by the channel.
	ErrUnmetRequirement = errors.New("channel: feature requirement not satisfied")
	// ErrFeatureExists indicates a duplicate channel feature name.
	ErrFeatureExists = errors.New("channel: feature already attached")
	// ErrNotFound indicates a missing channel or feature.
	ErrNotFound = errors.New("channel: not found")
)

// Feature is a Channel Feature (paper §2.2): functionality that depends
// on data produced at several intermediate steps of the positioning
// process. Apply is called by the middleware every time the Channel
// delivers a data element, with the data tree that produced it; the
// feature updates its internal state from the tree. Richer functionality
// (e.g. Likelihood.getLikelihood) is exposed by type-asserting the
// feature, exactly like Component Features.
type Feature interface {
	// FeatureName returns the unique name the feature is attached under.
	FeatureName() string
	// Apply is invoked once per channel delivery, before the consumer
	// processes the delivered sample, so the feature's state always
	// corresponds to the sample the consumer is about to see.
	//
	// The tree is owned by the middleware and its nodes are recycled
	// after the channel's next delivery: reading during Apply is safe,
	// but an implementation that retains the tree (or samples reached
	// through it) must call DataTree.Detach / Sample.Detach first.
	Apply(tree *DataTree)
}

// Requirements declares what a Channel Feature needs from its channel
// (paper: "input requirements may include Component Features, Channel
// Features, and Processing Components").
type Requirements struct {
	// ComponentFeatures must each be provided by at least one Processing
	// Component in the channel.
	ComponentFeatures []string
	// ChannelFeatures must already be attached to the channel.
	ChannelFeatures []string
	// Components are component type names (Spec.Name) that must be
	// present in the channel.
	Components []string
}

// RequiringFeature is implemented by Channel Features that declare
// requirements; they are validated at attach time.
type RequiringFeature interface {
	Feature
	Requires() Requirements
}

// Channel is the PCL connection between two end points: a data source
// (sensor or merge component) and a consumer (merge component or the
// application). It encapsulates the positioning process taking place
// between them (paper §2.2).
type Channel struct {
	id       string
	source   *core.Node
	nodes    []*core.Node // source .. endpoint, in flow order
	endpoint *core.Node
	consumer *core.Node
	port     int // consumer input port the channel feeds

	layer *Layer // owning layer; set at derive time, used for lazy trees

	mu       sync.RWMutex
	features []Feature
	lastTree *DataTree
	// lastRoot/hasRoot record the latest delivery when no tree was built
	// eagerly (no features attached, no tree observer): LastTree
	// reconstructs the tree from the layer's history on demand instead of
	// paying for tree construction on every delivery.
	lastRoot core.Sample
	hasRoot  bool
}

// ID returns the channel identifier, "<source>-><consumer>:<port>".
func (c *Channel) ID() string { return c.id }

// Source returns the node producing into the channel (a sensor or merge
// component — the PCL data source).
func (c *Channel) Source() *core.Node { return c.source }

// Endpoint returns the last Processing Component inside the channel; its
// output is what the channel delivers.
func (c *Channel) Endpoint() *core.Node { return c.endpoint }

// Consumer returns the merge component or application sink fed by the
// channel.
func (c *Channel) Consumer() *core.Node { return c.consumer }

// ConsumerPort returns the consumer input port the channel feeds.
func (c *Channel) ConsumerPort() int { return c.port }

// Nodes returns the Processing Components inside the channel in flow
// order (source first). The slice is a copy.
func (c *Channel) Nodes() []*core.Node {
	out := make([]*core.Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// NodeIDs returns the component IDs inside the channel in flow order.
func (c *Channel) NodeIDs() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.ID()
	}
	return out
}

// AttachFeature adds a Channel Feature, validating any declared
// requirements against the channel's components, their Component
// Features, and previously attached Channel Features.
func (c *Channel) AttachFeature(f Feature) error {
	c.mu.Lock()
	err := c.attachFeatureLocked(f)
	c.mu.Unlock()
	if err == nil && c.layer != nil {
		// Attached features make the channel an eager tree consumer,
		// which the layer's batch path must route synchronously.
		c.layer.recomputeEager()
	}
	return err
}

func (c *Channel) attachFeatureLocked(f Feature) error {
	for _, existing := range c.features {
		if existing.FeatureName() == f.FeatureName() {
			return fmt.Errorf("%w: %q on %q", ErrFeatureExists, f.FeatureName(), c.id)
		}
	}
	if rf, ok := f.(RequiringFeature); ok {
		if err := c.checkRequirements(rf.Requires()); err != nil {
			return fmt.Errorf("attach %q to %q: %w", f.FeatureName(), c.id, err)
		}
	}
	c.features = append(c.features, f)
	return nil
}

// checkRequirements validates req against the channel. Called with c.mu
// held.
func (c *Channel) checkRequirements(req Requirements) error {
	for _, want := range req.ComponentFeatures {
		found := false
		for _, n := range c.nodes {
			if n.HasCapability(want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: component feature %q", ErrUnmetRequirement, want)
		}
	}
	for _, want := range req.ChannelFeatures {
		found := false
		for _, f := range c.features {
			if f.FeatureName() == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: channel feature %q", ErrUnmetRequirement, want)
		}
	}
	for _, want := range req.Components {
		found := false
		for _, n := range c.nodes {
			if n.Spec().Name == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: component %q", ErrUnmetRequirement, want)
		}
	}
	return nil
}

// DetachFeature removes the named Channel Feature.
func (c *Channel) DetachFeature(name string) error {
	c.mu.Lock()
	err := c.detachFeatureLocked(name)
	c.mu.Unlock()
	if err == nil && c.layer != nil {
		c.layer.recomputeEager()
	}
	return err
}

func (c *Channel) detachFeatureLocked(name string) error {
	for i, f := range c.features {
		if f.FeatureName() == name {
			// Copy-on-write: deliver iterates a lock-free snapshot of
			// this slice, so removal must not shift the shared backing
			// array in place.
			kept := make([]Feature, 0, len(c.features)-1)
			kept = append(kept, c.features[:i]...)
			kept = append(kept, c.features[i+1:]...)
			c.features = kept
			return nil
		}
	}
	return fmt.Errorf("%w: channel feature %q on %q", ErrNotFound, name, c.id)
}

// Feature returns the named feature. It searches attached Channel
// Features first, then the end point's Component Features ("a Channel
// Feature is semantically equivalent to a Component Feature attached to
// the last Processing Component of the Channel" — and vice versa for
// lookups), and finally the Component Features of the other components
// in the channel, walking upstream. The last rule is what lets the
// EnTracked Channel Feature find the Power Strategy feature sitting on
// the sensor wrapper at the far end of the channel (§3.3).
func (c *Channel) Feature(name string) (any, bool) {
	c.mu.RLock()
	for _, f := range c.features {
		if f.FeatureName() == name {
			c.mu.RUnlock()
			return f, true
		}
	}
	c.mu.RUnlock()
	for i := len(c.nodes) - 1; i >= 0; i-- {
		if cf, ok := c.nodes[i].Feature(name); ok {
			return cf, true
		}
	}
	return nil, false
}

// Features returns the attached Channel Features in attach order.
func (c *Channel) Features() []Feature {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Feature, len(c.features))
	copy(out, c.features)
	return out
}

// FeatureNames returns the names of attached Channel Features.
func (c *Channel) FeatureNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.features))
	for i, f := range c.features {
		out[i] = f.FeatureName()
	}
	return out
}

// LastTree returns the data tree of the most recent delivery, if any.
// PSL-averse developers can use this for ad-hoc inspection; Channel
// Features should rely on Apply instead. The returned tree is a
// detached copy the caller owns — the channel's internal tree is pooled
// and recycled on the next delivery.
// If the channel had no eager tree consumers at delivery time the tree
// is reconstructed from the layer's history; contributions the history
// ring has since evicted are absent from the reconstruction.
func (c *Channel) LastTree() (*DataTree, bool) {
	c.mu.RLock()
	if c.lastTree != nil {
		t := c.lastTree.Detach()
		c.mu.RUnlock()
		return t, true
	}
	if !c.hasRoot || c.layer == nil {
		c.mu.RUnlock()
		return nil, false
	}
	root := c.lastRoot
	// Pin a pooled root payload while we hold the read lock (the writer
	// that could release the channel's reference is excluded), so a
	// delivery racing the build below cannot recycle it mid-copy.
	core.RetainPayload(root.Payload)
	c.mu.RUnlock()
	// Build outside c.mu: the layer lock is ordered before the channel
	// lock everywhere else (observe -> deliver).
	t := c.layer.buildDetachedTree(c, root)
	core.ReleasePayload(root.Payload)
	return t, true
}

// deliver is called by the Layer when the channel end point emits a
// sample: it stores the tree and applies every Channel Feature. It
// returns the previously held tree, whose ownership passes back to the
// caller (the layer recycles it).
func (c *Channel) deliver(tree *DataTree) *DataTree {
	c.mu.Lock()
	prev := c.lastTree
	c.lastTree = tree
	if c.hasRoot {
		// Drop the reference a preceding lazy delivery pinned on its
		// root payload, or the pool never gets the object back.
		c.hasRoot = false
		core.ReleasePayload(c.lastRoot.Payload)
		c.lastRoot = core.Sample{}
	}
	features := c.features
	c.mu.Unlock()
	for _, f := range features {
		f.Apply(tree)
	}
	return prev
}

// deliverRoot is the lazy counterpart of deliver, used when nothing
// consumes the tree eagerly: it records only the delivered root sample
// (LastTree reconstructs the tree from history when asked) and returns
// any previously held tree for recycling.
func (c *Channel) deliverRoot(root core.Sample) *DataTree {
	// The channel holds one payload reference for the recorded root
	// (released when the next delivery replaces it).
	core.RetainPayload(root.Payload)
	c.mu.Lock()
	prev := c.lastTree
	c.lastTree = nil
	if c.hasRoot {
		core.ReleasePayload(c.lastRoot.Payload)
	}
	c.lastRoot = root
	c.hasRoot = true
	c.mu.Unlock()
	return prev
}

// hasFeatures reports whether any Channel Feature is attached — the
// per-delivery check deciding eager versus lazy tree construction.
func (c *Channel) hasFeatures() bool {
	c.mu.RLock()
	n := len(c.features)
	c.mu.RUnlock()
	return n > 0
}

// contains reports whether the channel includes the given component.
func (c *Channel) contains(id string) bool {
	for _, n := range c.nodes {
		if n.ID() == id {
			return true
		}
	}
	return false
}
