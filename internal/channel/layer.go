package channel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"perpos/internal/core"
)

// Layer is the Process Channel Layer view of a graph: it derives the
// Channels from the PSL structure (so the causal connection survives
// graph edits — call Refresh after structural changes), records every
// emission, and builds the Fig. 4 data tree for each channel delivery.
type Layer struct {
	g *core.Graph

	mu       sync.Mutex
	channels []*Channel
	// byEndpoint maps endpoint component ID -> channels delivering from
	// it (a fan-out endpoint can feed several consumers).
	byEndpoint map[string][]*Channel
	// history holds recent samples per component for tree construction.
	history map[string]*ring
	keep    int
	// onTree, when set, is invoked for every built data tree (after the
	// layer lock is released, alongside feature delivery).
	onTree func(c *Channel, t *DataTree)

	// eager mirrors "some delivery consumes trees at delivery time"
	// (tree observer set, or any channel has features attached). It
	// decides, per emission and without locks, whether the batch path
	// must fall back to synchronous per-emission delivery (NeedsSync).
	eager atomic.Bool

	cancelTap func()
}

// LayerOption configures a Layer.
type LayerOption func(*Layer)

// WithHistory sets how many recent samples per component are retained
// for data-tree construction (default 1024).
func WithHistory(n int) LayerOption {
	return func(l *Layer) {
		if n > 0 {
			l.keep = n
		}
	}
}

// WithTreeObserver registers fn to be called with every data tree the
// layer builds, right after the channel's own features received it.
// The callback runs outside the layer lock on the emitting goroutine,
// so it must be cheap and safe for concurrent use — the intended
// client is metrics (tree-depth histograms), not feature logic.
func WithTreeObserver(fn func(c *Channel, t *DataTree)) LayerOption {
	return func(l *Layer) {
		l.onTree = fn
	}
}

// NewLayer derives the channels of g and starts observing its
// emissions. Call Close when done.
func NewLayer(g *core.Graph, opts ...LayerOption) *Layer {
	l := &Layer{
		g:    g,
		keep: 1024,
	}
	for _, opt := range opts {
		opt(l)
	}
	l.rebuild(nil)
	l.recomputeEager()
	// The layer registers as a batch-capable tap: synchronous burst
	// drivers amortize its per-emission locking across a whole run of
	// emissions (see TapBatch), while per-emission behaviour is
	// unchanged outside bursts.
	l.cancelTap = g.TapBatch(l)
	return l
}

// Close detaches the layer from the graph.
func (l *Layer) Close() {
	if l.cancelTap != nil {
		l.cancelTap()
		l.cancelTap = nil
	}
}

// Channels returns the current channels in deterministic order.
func (l *Layer) Channels() []*Channel {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Channel, len(l.channels))
	copy(out, l.channels)
	return out
}

// Channel returns the channel with the given ID.
func (l *Layer) Channel(id string) (*Channel, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.channels {
		if c.id == id {
			return c, true
		}
	}
	return nil, false
}

// ChannelInto returns the channel feeding the given consumer input port
// — the Fig. 5 "inputChannel" the particle filter asks for.
func (l *Layer) ChannelInto(consumerID string, port int) (*Channel, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.channels {
		if c.consumer != nil && c.consumer.ID() == consumerID && c.port == port {
			return c, true
		}
	}
	return nil, false
}

// ChannelsFrom returns the channels whose data source is the given
// component.
func (l *Layer) ChannelsFrom(sourceID string) []*Channel {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Channel
	for _, c := range l.channels {
		if c.source.ID() == sourceID {
			out = append(out, c)
		}
	}
	return out
}

// Refresh re-derives the channels after a graph edit, preserving the
// Channel Features of channels whose identity (source, consumer, port)
// is unchanged — this is what maintains the reflection layer's causal
// connection to the positioning system.
func (l *Layer) Refresh() {
	l.mu.Lock()
	old := l.channels
	l.mu.Unlock()
	l.rebuild(old)
	l.recomputeEager()
}

// recomputeEager refreshes the eager flag after feature attach/detach
// or a channel rebuild. Channels are snapshotted under l.mu and
// inspected outside it (the layer lock is ordered before the channel
// lock).
func (l *Layer) recomputeEager() {
	if l.onTree != nil {
		l.eager.Store(true)
		return
	}
	l.mu.Lock()
	channels := make([]*Channel, len(l.channels))
	copy(channels, l.channels)
	l.mu.Unlock()
	eager := false
	for _, c := range channels {
		if c.hasFeatures() {
			eager = true
			break
		}
	}
	l.eager.Store(eager)
}

func (l *Layer) rebuild(old []*Channel) {
	oldFeatures := make(map[string][]Feature, len(old))
	oldTrees := make(map[string]*DataTree, len(old))
	oldRoots := make(map[string]core.Sample, len(old))
	for _, c := range old {
		oldFeatures[c.id] = c.Features()
		// Transfer lastTree ownership from the old channel object to its
		// successor (trees are pooled; exactly one owner may recycle).
		c.mu.Lock()
		if c.lastTree != nil {
			oldTrees[c.id] = c.lastTree
			c.lastTree = nil
		}
		if c.hasRoot {
			oldRoots[c.id] = c.lastRoot
		}
		c.mu.Unlock()
	}

	channels := derive(l.g)
	byEndpoint := make(map[string][]*Channel)
	for _, c := range channels {
		c.layer = l
		if fs, ok := oldFeatures[c.id]; ok {
			c.features = fs
			c.lastTree = oldTrees[c.id]
			if root, ok := oldRoots[c.id]; ok {
				c.lastRoot = root
				c.hasRoot = true
			}
		}
		epID := c.endpoint.ID()
		byEndpoint[epID] = append(byEndpoint[epID], c)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.channels = channels
	l.byEndpoint = byEndpoint
	if l.history == nil {
		l.history = make(map[string]*ring)
	}
}

// observe is the graph tap: record the sample, and when the emitting
// component is a channel end point, build and deliver the data tree.
func (l *Layer) observe(componentID string, s core.Sample) {
	l.mu.Lock()
	r, ok := l.history[componentID]
	if !ok {
		r = newRing(l.keep)
		l.history[componentID] = r
	}
	r.add(s)

	// Small stack buffer: an endpoint almost always feeds one channel,
	// so the common case builds the delivery batch without allocating.
	var dbuf [4]delivery
	deliveries := dbuf[:0]
	if s.FromFeature == "" {
		for _, c := range l.byEndpoint[componentID] {
			// Trees are built eagerly only when something consumes them at
			// delivery time (attached features, tree observer). Otherwise
			// the delivery records just the root sample and LastTree
			// reconstructs the tree from history on demand — saturated
			// pipelines with no tree consumers skip construction entirely.
			if l.onTree != nil || c.hasFeatures() {
				deliveries = append(deliveries, delivery{c: c, tree: l.buildTreeLocked(c, s)})
			} else {
				deliveries = append(deliveries, delivery{c: c})
			}
		}
	}
	l.mu.Unlock()

	// Apply features outside the layer lock: Apply implementations may
	// call back into the layer or the graph.
	for _, d := range deliveries {
		if d.tree == nil {
			if prev := d.c.deliverRoot(s); prev != nil {
				releaseTree(prev)
			}
			continue
		}
		// Ownership handoff: the channel takes the new tree and returns
		// the one it held, which nothing else may reference any more
		// (LastTree hands out detached copies) — recycle it.
		if prev := d.c.deliver(d.tree); prev != nil {
			releaseTree(prev)
		}
		if l.onTree != nil {
			l.onTree(d.c, d.tree)
		}
	}
}

type delivery struct {
	c    *Channel
	tree *DataTree
}

// Tap implements core.BatchTap: per-emission delivery, identical to the
// pre-batching tap behaviour.
func (l *Layer) Tap(componentID string, s core.Sample) { l.observe(componentID, s) }

// NeedsSync implements core.BatchTap. Eager tree consumers (attached
// features, a tree observer) must see every delivery before propagation
// continues — the Feature.Apply contract says a feature's state always
// corresponds to the sample the consumer is about to process — so those
// emissions bypass burst buffering.
func (l *Layer) NeedsSync(string, core.Sample) bool { return l.eager.Load() }

// rootDelivery records the final root delivered to one channel during a
// burst flush.
type rootDelivery struct {
	c    *Channel
	root core.Sample
}

// TapBatch implements core.BatchTap: it absorbs a whole burst of
// emissions under ONE layer-lock acquisition — recording every sample
// into history in emission order — and then delivers each touched
// channel's FINAL root. Intermediate roots within a flush are not
// observable: only lazy channels reach this path (NeedsSync routes
// eager emissions synchronously, and feature changes cannot interleave
// a burst — the runtime's step lock serializes them), and a lazy
// channel's root is only read through LastTree, which reflects the
// latest delivery anyway.
func (l *Layer) TapBatch(events []core.TapEvent) {
	var rbuf [4]rootDelivery
	roots := rbuf[:0]
	l.mu.Lock()
	for i := range events {
		ev := &events[i]
		r, ok := l.history[ev.ComponentID]
		if !ok {
			r = newRing(l.keep)
			l.history[ev.ComponentID] = r
		}
		r.add(ev.Sample)
		if ev.Sample.FromFeature != "" {
			continue
		}
		for _, c := range l.byEndpoint[ev.ComponentID] {
			found := false
			for j := range roots {
				if roots[j].c == c {
					roots[j].root = ev.Sample
					found = true
					break
				}
			}
			if !found {
				roots = append(roots, rootDelivery{c: c, root: ev.Sample})
			}
		}
	}
	l.mu.Unlock()
	for i := range roots {
		if prev := roots[i].c.deliverRoot(roots[i].root); prev != nil {
			releaseTree(prev)
		}
	}
}

// buildTreeLocked builds the Fig. 4 data tree for one endpoint sample by
// resolving consumption spans against recorded history, bounded to the
// channel's own components. Trees and nodes come from the package pool;
// the channel's previous tree is recycled when deliver replaces it.
func (l *Layer) buildTreeLocked(c *Channel, root core.Sample) *DataTree {
	t := newTree()
	t.Root = l.buildNodeLocked(c, root)
	return t
}

// buildDetachedTree reconstructs a delivery's data tree from history for
// a channel that delivered lazily (no eager tree consumers). The result
// is caller-owned; the pooled intermediate is recycled immediately.
func (l *Layer) buildDetachedTree(c *Channel, root core.Sample) *DataTree {
	l.mu.Lock()
	t := l.buildTreeLocked(c, root)
	l.mu.Unlock()
	d := t.Detach()
	releaseTree(t)
	return d
}

func (l *Layer) buildNodeLocked(c *Channel, s core.Sample) *TreeNode {
	node := newTreeNode(s)
	for _, span := range s.Spans {
		if !c.contains(span.Source) {
			// The span refers outside the channel (e.g. a merge
			// source consuming its own input channels) — the tree
			// stops at the channel boundary.
			continue
		}
		r, ok := l.history[span.Source]
		if !ok {
			continue
		}
		// Scan the ring's two contiguous segments directly rather than
		// materializing an inRange slice per span per node.
		lo, hi := r.segments()
		for _, seg := range [2][]core.Sample{lo, hi} {
			for i := range seg {
				if seg[i].Logical >= span.From && seg[i].Logical <= span.To {
					node.Children = append(node.Children, l.buildNodeLocked(c, seg[i]))
				}
			}
		}
	}
	return node
}

// View is a structural snapshot of the PCL for inspection tooling: the
// middle layer of Fig. 2.
type View struct {
	Sources  []string
	Merges   []string
	Sinks    []string
	Channels []ChannelInfo
}

// ChannelInfo summarizes one channel for inspection.
type ChannelInfo struct {
	ID       string
	Nodes    []string
	Consumer string
	Features []string
}

// View returns the current PCL structure.
func (l *Layer) View() View {
	var v View
	for _, n := range l.g.Nodes() {
		spec := n.Spec()
		switch {
		case spec.IsSource():
			v.Sources = append(v.Sources, n.ID())
		case spec.IsSink():
			v.Sinks = append(v.Sinks, n.ID())
		case spec.IsMerge():
			v.Merges = append(v.Merges, n.ID())
		}
	}
	for _, c := range l.Channels() {
		info := ChannelInfo{
			ID:       c.ID(),
			Nodes:    c.NodeIDs(),
			Features: c.FeatureNames(),
		}
		if c.consumer != nil {
			info.Consumer = c.consumer.ID()
		}
		v.Channels = append(v.Channels, info)
	}
	return v
}

// derive computes the channels of a graph: one channel per linear
// pipeline from a data source (graph source or merge component) to the
// next merge component or sink.
func derive(g *core.Graph) []*Channel {
	// adjacency: from -> outgoing edges, in deterministic order.
	adj := make(map[string][]core.Edge)
	for _, e := range g.Edges() {
		adj[e.From] = append(adj[e.From], e)
	}
	nodeByID := make(map[string]*core.Node)
	for _, n := range g.Nodes() {
		nodeByID[n.ID()] = n
	}

	var channels []*Channel
	var follow func(source *core.Node, path []*core.Node, e core.Edge)
	follow = func(source *core.Node, path []*core.Node, e core.Edge) {
		next := nodeByID[e.To]
		spec := next.Spec()
		if spec.IsMerge() || spec.IsSink() {
			endpoint := path[len(path)-1]
			channels = append(channels, &Channel{
				id:       fmt.Sprintf("%s->%s:%d", source.ID(), next.ID(), e.Port),
				source:   source,
				nodes:    append([]*core.Node(nil), path...),
				endpoint: endpoint,
				consumer: next,
				port:     e.Port,
			})
			return
		}
		// One preallocated copy per extension. The copy (rather than
		// append(path, next)) is what keeps sibling branches of a fan-out
		// from aliasing one backing array and overwriting each other's
		// tails; the previous version copied the path twice per step.
		extended := make([]*core.Node, len(path)+1)
		copy(extended, path)
		extended[len(path)] = next
		outs := adj[next.ID()]
		if len(outs) == 0 {
			// Dangling pipeline: a channel without a consumer yet.
			channels = append(channels, &Channel{
				id:       fmt.Sprintf("%s->(unconnected)", source.ID()),
				source:   source,
				nodes:    extended,
				endpoint: next,
				consumer: nil,
				port:     -1,
			})
			return
		}
		for _, out := range outs {
			follow(source, extended, out)
		}
	}

	for _, n := range g.Nodes() {
		spec := n.Spec()
		if !spec.IsSource() && !spec.IsMerge() {
			continue
		}
		for _, e := range adj[n.ID()] {
			follow(n, []*core.Node{n}, e)
		}
	}
	return channels
}

// ring is a fixed-capacity history of samples from one component,
// ordered by logical time.
type ring struct {
	buf  []core.Sample
	next int
	full bool
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]core.Sample, capacity)}
}

func (r *ring) add(s core.Sample) {
	// The ring owns one payload reference per recorded sample: retain
	// on entry, release the sample being overwritten on wrap.
	if r.full {
		core.ReleasePayload(r.buf[r.next].Payload)
	}
	core.RetainPayload(s.Payload)
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// segments returns the ring contents oldest-first as up to two
// contiguous views of the backing buffer, without copying.
func (r *ring) segments() ([]core.Sample, []core.Sample) {
	if r.full {
		return r.buf[r.next:], r.buf[:r.next]
	}
	return r.buf[:r.next], nil
}

// inRange returns the recorded samples with logical time in [from, to],
// in logical order. Feature-emitted samples interleaved in the range are
// included — they contributed to the channel output's grouping window.
func (r *ring) inRange(from, to core.LogicalTime) []core.Sample {
	var out []core.Sample
	lo, hi := r.segments()
	for _, seg := range [2][]core.Sample{lo, hi} {
		for i := range seg {
			if seg[i].Logical >= from && seg[i].Logical <= to {
				out = append(out, seg[i])
			}
		}
	}
	return out
}
