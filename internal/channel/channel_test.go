package channel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"perpos/internal/core"
)

const (
	kindRaw  core.Kind = "gps.raw"
	kindNMEA core.Kind = "nmea"
	kindPos  core.Kind = "wgs84"
	kindScan core.Kind = "wifi.scan"
	kindEst  core.Kind = "position.estimate"
)

// mustAdd adds a component or fails the test.
func mustAdd(t *testing.T, g *core.Graph, c core.Component) *core.Node {
	t.Helper()
	n, err := g.Add(c)
	if err != nil {
		t.Fatalf("Add(%s): %v", c.ID(), err)
	}
	return n
}

func mustConnect(t *testing.T, g *core.Graph, from, to string, port int) {
	t.Helper()
	if err := g.Connect(from, to, port); err != nil {
		t.Fatalf("Connect(%s->%s:%d): %v", from, to, port, err)
	}
}

// rawSource returns n raw samples from a source with the given id.
func rawSource(id string, kind core.Kind, n int) *core.SliceSource {
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	samples := make([]core.Sample, n)
	for i := range samples {
		samples[i] = core.NewSample(kind, i+1, base.Add(time.Duration(i)*time.Second))
	}
	return &core.SliceSource{CompID: id, Out: core.OutputSpec{Kind: kind}, Samples: samples}
}

// passthrough forwards payloads, rewriting the kind.
func passthrough(id string, in, out core.Kind) *core.FuncComponent {
	return core.NewTransform(id, in, out, func(s core.Sample) (core.Sample, bool) {
		return s, true
	})
}

// buildFig2Graph builds the Fig. 2 pipeline: GPS -> Parser ->
// Interpreter -> ParticleFilter <- WiFi, ParticleFilter -> app.
func buildFig2Graph(t *testing.T, n int) (*core.Graph, *core.Sink) {
	t.Helper()
	g := core.New()
	mustAdd(t, g, rawSource("gps", kindRaw, n))
	mustAdd(t, g, passthrough("parser", kindRaw, kindNMEA))
	mustAdd(t, g, passthrough("interpreter", kindNMEA, kindPos))
	mustAdd(t, g, rawSource("wifi", kindScan, n))
	pf := &core.FuncComponent{
		CompID: "particle-filter",
		CompSpec: core.Spec{
			Name: "ParticleFilter",
			Inputs: []core.PortSpec{
				{Name: "gps", Accepts: []core.Kind{kindPos}},
				{Name: "wifi", Accepts: []core.Kind{kindScan}},
			},
			Output: core.OutputSpec{Kind: kindEst},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			out := in
			out.Kind = kindEst
			emit(out)
			return nil
		},
	}
	mustAdd(t, g, pf)
	sink := core.NewSink("app", []core.Kind{kindEst})
	mustAdd(t, g, sink)
	mustConnect(t, g, "gps", "parser", 0)
	mustConnect(t, g, "parser", "interpreter", 0)
	mustConnect(t, g, "interpreter", "particle-filter", 0)
	mustConnect(t, g, "wifi", "particle-filter", 1)
	mustConnect(t, g, "particle-filter", "app", 0)
	return g, sink
}

func TestDeriveFig2Channels(t *testing.T) {
	g, _ := buildFig2Graph(t, 1)
	l := NewLayer(g)
	defer l.Close()

	channels := l.Channels()
	if len(channels) != 3 {
		t.Fatalf("derived %d channels, want 3: %v", len(channels), channelIDs(channels))
	}

	byID := make(map[string]*Channel)
	for _, c := range channels {
		byID[c.ID()] = c
	}

	gps, ok := byID["gps->particle-filter:0"]
	if !ok {
		t.Fatalf("missing gps channel; got %v", channelIDs(channels))
	}
	wantNodes := []string{"gps", "parser", "interpreter"}
	if got := gps.NodeIDs(); !equalStrings(got, wantNodes) {
		t.Errorf("gps channel nodes = %v, want %v", got, wantNodes)
	}
	if gps.Endpoint().ID() != "interpreter" {
		t.Errorf("gps endpoint = %q, want interpreter", gps.Endpoint().ID())
	}
	if gps.Consumer().ID() != "particle-filter" || gps.ConsumerPort() != 0 {
		t.Errorf("gps consumer = %q:%d", gps.Consumer().ID(), gps.ConsumerPort())
	}

	wifi, ok := byID["wifi->particle-filter:1"]
	if !ok {
		t.Fatalf("missing wifi channel; got %v", channelIDs(channels))
	}
	if got := wifi.NodeIDs(); !equalStrings(got, []string{"wifi"}) {
		t.Errorf("wifi channel nodes = %v", got)
	}

	pfApp, ok := byID["particle-filter->app:0"]
	if !ok {
		t.Fatalf("missing pf->app channel; got %v", channelIDs(channels))
	}
	if got := pfApp.NodeIDs(); !equalStrings(got, []string{"particle-filter"}) {
		t.Errorf("pf->app channel nodes = %v", got)
	}
	if pfApp.Source().ID() != "particle-filter" {
		t.Errorf("pf->app source = %q", pfApp.Source().ID())
	}
}

// TestDeriveDeepFanOutPathsIndependent is the regression test for the
// derive path-extension bug: following a fan-out, sibling branches must
// not alias one backing array (an append-based extension could overwrite
// a sibling's tail, corrupting its channel's node list).
func TestDeriveDeepFanOutPathsIndependent(t *testing.T) {
	g := core.New()
	mustAdd(t, g, rawSource("src", kindRaw, 1))
	mustAdd(t, g, passthrough("a", kindRaw, kindRaw))
	mustAdd(t, g, passthrough("b", kindRaw, kindRaw))
	// Fan-out at b into two deep branches, plus a nested fan-out on the
	// first branch — the shapes that stress shared path prefixes.
	for _, id := range []string{"c1", "d1", "e1", "c2", "d2", "e2", "f1"} {
		mustAdd(t, g, passthrough(id, kindRaw, kindRaw))
	}
	for _, sink := range []string{"app1", "app2", "app3"} {
		mustAdd(t, g, core.NewSink(sink, []core.Kind{kindRaw}))
	}
	mustConnect(t, g, "src", "a", 0)
	mustConnect(t, g, "a", "b", 0)
	mustConnect(t, g, "b", "c1", 0)
	mustConnect(t, g, "c1", "d1", 0)
	mustConnect(t, g, "d1", "e1", 0)
	mustConnect(t, g, "e1", "app1", 0)
	mustConnect(t, g, "b", "c2", 0)
	mustConnect(t, g, "c2", "d2", 0)
	mustConnect(t, g, "d2", "e2", 0)
	mustConnect(t, g, "e2", "app2", 0)
	// Nested fan-out: d1 also feeds a third branch.
	mustConnect(t, g, "d1", "f1", 0)
	mustConnect(t, g, "f1", "app3", 0)

	l := NewLayer(g)
	defer l.Close()

	want := map[string][]string{
		"src->app1:0": {"src", "a", "b", "c1", "d1", "e1"},
		"src->app2:0": {"src", "a", "b", "c2", "d2", "e2"},
		"src->app3:0": {"src", "a", "b", "c1", "d1", "f1"},
	}
	channels := l.Channels()
	if len(channels) != len(want) {
		t.Fatalf("derived %d channels, want %d: %v", len(channels), len(want), channelIDs(channels))
	}
	for _, c := range channels {
		wantNodes, ok := want[c.ID()]
		if !ok {
			t.Errorf("unexpected channel %q", c.ID())
			continue
		}
		if got := c.NodeIDs(); !equalStrings(got, wantNodes) {
			t.Errorf("channel %q nodes = %v, want %v", c.ID(), got, wantNodes)
		}
	}
}

func TestViewMatchesFig2Structure(t *testing.T) {
	g, _ := buildFig2Graph(t, 1)
	l := NewLayer(g)
	defer l.Close()

	v := l.View()
	if !equalStrings(v.Sources, []string{"gps", "wifi"}) {
		t.Errorf("Sources = %v, want [gps wifi]", v.Sources)
	}
	if !equalStrings(v.Merges, []string{"particle-filter"}) {
		t.Errorf("Merges = %v, want [particle-filter]", v.Merges)
	}
	if !equalStrings(v.Sinks, []string{"app"}) {
		t.Errorf("Sinks = %v, want [app]", v.Sinks)
	}
	if len(v.Channels) != 3 {
		t.Errorf("Channels = %d, want 3", len(v.Channels))
	}
}

func TestChannelInto(t *testing.T) {
	g, _ := buildFig2Graph(t, 1)
	l := NewLayer(g)
	defer l.Close()

	c, ok := l.ChannelInto("particle-filter", 0)
	if !ok || c.Source().ID() != "gps" {
		t.Errorf("ChannelInto(pf, 0) = %v, %v; want gps channel", c, ok)
	}
	c, ok = l.ChannelInto("particle-filter", 1)
	if !ok || c.Source().ID() != "wifi" {
		t.Errorf("ChannelInto(pf, 1) = %v, %v; want wifi channel", c, ok)
	}
	if _, ok := l.ChannelInto("particle-filter", 9); ok {
		t.Error("ChannelInto with bad port should report !ok")
	}
	if _, ok := l.ChannelInto("ghost", 0); ok {
		t.Error("ChannelInto with unknown consumer should report !ok")
	}
}

func TestChannelsFrom(t *testing.T) {
	g, _ := buildFig2Graph(t, 1)
	l := NewLayer(g)
	defer l.Close()
	if cs := l.ChannelsFrom("gps"); len(cs) != 1 {
		t.Errorf("ChannelsFrom(gps) = %d channels, want 1", len(cs))
	}
	if cs := l.ChannelsFrom("parser"); len(cs) != 0 {
		t.Errorf("ChannelsFrom(parser) = %d channels, want 0 (not a PCL source)", len(cs))
	}
}

func TestDanglingChannel(t *testing.T) {
	g := core.New()
	mustAdd(t, g, rawSource("gps", kindRaw, 1))
	mustAdd(t, g, passthrough("parser", kindRaw, kindNMEA))
	mustConnect(t, g, "gps", "parser", 0)
	l := NewLayer(g)
	defer l.Close()

	channels := l.Channels()
	if len(channels) != 1 {
		t.Fatalf("channels = %v, want 1 dangling", channelIDs(channels))
	}
	if channels[0].Consumer() != nil {
		t.Error("dangling channel should have nil consumer")
	}
	if channels[0].ConsumerPort() != -1 {
		t.Errorf("dangling port = %d, want -1", channels[0].ConsumerPort())
	}
}

// buildFig4Graph builds the exact Fig. 4 batching pipeline used for tree
// tests: gps emits 5 strings, parser batches 2 then 3, interpreter needs
// 2 sentences for one position.
func buildFig4Graph(t *testing.T) (*core.Graph, *core.Sink) {
	t.Helper()
	g := core.New()
	mustAdd(t, g, rawSource("gps", kindRaw, 5))

	batch := []int{2, 3}
	var consumed, batchIdx, sentence int
	parser := &core.FuncComponent{
		CompID: "parser",
		CompSpec: core.Spec{
			Name:   "Parser",
			Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{kindRaw}}},
			Output: core.OutputSpec{Kind: kindNMEA},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			consumed++
			if batchIdx < len(batch) && consumed == batch[batchIdx] {
				consumed = 0
				batchIdx++
				sentence++
				emit(core.NewSample(kindNMEA, fmt.Sprintf("NMEA%d", sentence), in.Time))
			}
			return nil
		},
	}
	mustAdd(t, g, parser)

	var seen int
	interp := &core.FuncComponent{
		CompID: "interpreter",
		CompSpec: core.Spec{
			Name:   "Interpreter",
			Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{kindNMEA}}},
			Output: core.OutputSpec{Kind: kindPos},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			seen++
			if seen == 2 {
				emit(core.NewSample(kindPos, "WGS84_1", in.Time))
			}
			return nil
		},
	}
	mustAdd(t, g, interp)
	sink := core.NewSink("app", []core.Kind{kindPos})
	mustAdd(t, g, sink)
	mustConnect(t, g, "gps", "parser", 0)
	mustConnect(t, g, "parser", "interpreter", 0)
	mustConnect(t, g, "interpreter", "app", 0)
	return g, sink
}

func TestFig4DataTree(t *testing.T) {
	g, _ := buildFig4Graph(t)
	l := NewLayer(g)
	defer l.Close()

	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	c, ok := l.ChannelInto("app", 0)
	if !ok {
		t.Fatal("no channel into app")
	}
	tree, ok := c.LastTree()
	if !ok {
		t.Fatal("no tree delivered")
	}

	// Fig. 4: root WGS84_1 <- {NMEA1 <- strings 1-2, NMEA2 <- strings 3-5}.
	if got := tree.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3\n%s", got, tree)
	}
	if got := tree.Size(); got != 8 { // 1 wgs84 + 2 nmea + 5 strings
		t.Errorf("Size = %d, want 8\n%s", got, tree)
	}
	if tree.Root.Sample.Payload != "WGS84_1" {
		t.Errorf("root = %v", tree.Root.Sample)
	}

	nmea := tree.Data(kindNMEA)
	if len(nmea) != 2 {
		t.Fatalf("Data(nmea) = %d entries, want 2", len(nmea))
	}
	for i, e := range nmea {
		if e.ComponentID != "parser" {
			t.Errorf("nmea %d component = %q, want parser", i, e.ComponentID)
		}
	}
	if nmea[0].Sample.Payload != "NMEA1" || nmea[1].Sample.Payload != "NMEA2" {
		t.Errorf("nmea payloads = %v, %v", nmea[0].Sample.Payload, nmea[1].Sample.Payload)
	}

	raw := tree.Data(kindRaw)
	if len(raw) != 5 {
		t.Fatalf("Data(raw) = %d entries, want 5", len(raw))
	}

	// Spot-check the grouping: NMEA1 has strings 1-2 as children.
	nmea1 := tree.Root.Children[0]
	if len(nmea1.Children) != 2 {
		t.Errorf("NMEA1 children = %d, want 2\n%s", len(nmea1.Children), tree)
	}
	nmea2 := tree.Root.Children[1]
	if len(nmea2.Children) != 3 {
		t.Errorf("NMEA2 children = %d, want 3\n%s", len(nmea2.Children), tree)
	}

	// All() covers everything in pre-order, root first.
	all := tree.All()
	if len(all) != 8 || all[0].Sample.Payload != "WGS84_1" {
		t.Errorf("All() = %d entries, first %v", len(all), all[0].Sample)
	}
}

func TestDataTreeString(t *testing.T) {
	g, _ := buildFig4Graph(t)
	l := NewLayer(g)
	defer l.Close()
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	c, _ := l.ChannelInto("app", 0)
	tree, _ := c.LastTree()
	s := tree.String()
	if !strings.Contains(s, "wgs84@interpreter:1") {
		t.Errorf("tree rendering missing root line:\n%s", s)
	}
	if strings.Count(s, "\n") != 8 {
		t.Errorf("tree rendering has %d lines, want 8:\n%s", strings.Count(s, "\n"), s)
	}
}

func TestEmptyTreeHelpers(t *testing.T) {
	var nilTree *DataTree
	if nilTree.Depth() != 0 || nilTree.Size() != 0 {
		t.Error("nil tree should have zero depth and size")
	}
	if nilTree.String() != "" {
		t.Error("nil tree should render empty")
	}
	empty := &DataTree{}
	if empty.Depth() != 0 || len(empty.Data(kindRaw)) != 0 {
		t.Error("empty tree should have no data")
	}
}

// recordingFeature counts Apply calls and remembers trees.
type recordingFeature struct {
	name   string
	trees  []*DataTree
	reqs   Requirements
	hasReq bool
}

func (f *recordingFeature) FeatureName() string { return f.name }

// Apply detaches: delivered trees are pool-owned and recycled after the
// next delivery, so retained ones must be deep-copied.
func (f *recordingFeature) Apply(tree *DataTree) { f.trees = append(f.trees, tree.Detach()) }

func (f *recordingFeature) Requires() Requirements { return f.reqs }

// plainFeature has no requirements.
type plainFeature struct {
	name  string
	count int
}

func (f *plainFeature) FeatureName() string { return f.name }
func (f *plainFeature) Apply(*DataTree)     { f.count++ }

func TestChannelFeatureAppliedPerDelivery(t *testing.T) {
	g, sink := buildFig2Graph(t, 3)
	l := NewLayer(g)
	defer l.Close()

	c, _ := l.ChannelInto("particle-filter", 0)
	f := &plainFeature{name: "counter"}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	// Three positions flow through the gps channel into the PF.
	if f.count != 3 {
		t.Errorf("Apply called %d times, want 3", f.count)
	}
	if sink.Len() != 6 { // 3 via gps + 3 via wifi
		t.Errorf("sink received %d, want 6", sink.Len())
	}
}

func TestChannelFeatureAppliesBeforeConsumer(t *testing.T) {
	// The Fig. 5 contract: when the consumer receives a position, the
	// channel feature state already reflects that position's tree.
	g := core.New()
	mustAdd(t, g, rawSource("gps", kindRaw, 3))
	mustAdd(t, g, passthrough("interp", kindRaw, kindPos))

	var observedCounts []int
	f := &plainFeature{name: "counter"}
	sink := core.NewSink("app", []core.Kind{kindPos}, core.WithCallback(func(core.Sample) {
		observedCounts = append(observedCounts, f.count)
	}))
	mustAdd(t, g, sink)
	mustConnect(t, g, "gps", "interp", 0)
	mustConnect(t, g, "interp", "app", 0)

	l := NewLayer(g)
	defer l.Close()
	c, ok := l.ChannelInto("app", 0)
	if !ok {
		t.Fatal("no channel into app")
	}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(observedCounts) != 3 {
		t.Fatalf("observed %v", observedCounts)
	}
	for i := range want {
		if observedCounts[i] != want[i] {
			t.Errorf("delivery %d saw feature count %d, want %d (Apply must precede consumer)",
				i, observedCounts[i], want[i])
		}
	}
}

func TestFeatureRequirements(t *testing.T) {
	g, _ := buildFig2Graph(t, 1)
	l := NewLayer(g)
	defer l.Close()
	c, _ := l.ChannelInto("particle-filter", 0)

	t.Run("missing component feature", func(t *testing.T) {
		f := &recordingFeature{name: "needsHDOP", reqs: Requirements{ComponentFeatures: []string{"hdop"}}}
		if err := c.AttachFeature(f); !errors.Is(err, ErrUnmetRequirement) {
			t.Errorf("error = %v, want ErrUnmetRequirement", err)
		}
	})
	t.Run("satisfied after attaching component feature", func(t *testing.T) {
		parser, _ := g.Node("parser")
		if err := parser.AttachFeature(namedFeature("hdop")); err != nil {
			t.Fatal(err)
		}
		f := &recordingFeature{name: "needsHDOP", reqs: Requirements{ComponentFeatures: []string{"hdop"}}}
		if err := c.AttachFeature(f); err != nil {
			t.Errorf("attach after capability present: %v", err)
		}
	})
	t.Run("missing channel feature", func(t *testing.T) {
		f := &recordingFeature{name: "dependent", reqs: Requirements{ChannelFeatures: []string{"absent"}}}
		if err := c.AttachFeature(f); !errors.Is(err, ErrUnmetRequirement) {
			t.Errorf("error = %v, want ErrUnmetRequirement", err)
		}
	})
	t.Run("present channel feature", func(t *testing.T) {
		f := &recordingFeature{name: "dependent2", reqs: Requirements{ChannelFeatures: []string{"needsHDOP"}}}
		if err := c.AttachFeature(f); err != nil {
			t.Errorf("attach: %v", err)
		}
	})
	t.Run("missing component", func(t *testing.T) {
		f := &recordingFeature{name: "needsKalman", reqs: Requirements{Components: []string{"Kalman"}}}
		if err := c.AttachFeature(f); !errors.Is(err, ErrUnmetRequirement) {
			t.Errorf("error = %v, want ErrUnmetRequirement", err)
		}
	})
	t.Run("present component", func(t *testing.T) {
		f := &recordingFeature{name: "needsParser", reqs: Requirements{Components: []string{"parser"}}}
		if err := c.AttachFeature(f); err != nil {
			t.Errorf("attach: %v", err)
		}
	})
	t.Run("duplicate name", func(t *testing.T) {
		f := &recordingFeature{name: "needsParser"}
		if err := c.AttachFeature(f); !errors.Is(err, ErrFeatureExists) {
			t.Errorf("error = %v, want ErrFeatureExists", err)
		}
	})
}

// namedFeature is a bare component feature for capability tests.
type namedFeature string

func (f namedFeature) FeatureName() string { return string(f) }

func TestDetachChannelFeature(t *testing.T) {
	g, _ := buildFig2Graph(t, 2)
	l := NewLayer(g)
	defer l.Close()
	c, _ := l.ChannelInto("particle-filter", 0)
	f := &plainFeature{name: "counter"}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}
	if err := c.DetachFeature("counter"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if f.count != 0 {
		t.Errorf("detached feature applied %d times", f.count)
	}
	if err := c.DetachFeature("counter"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double detach = %v, want ErrNotFound", err)
	}
}

func TestChannelFeatureLookupFallsBackToEndpoint(t *testing.T) {
	// A Component Feature on the channel's last component is visible
	// through Channel.Feature — the semantic-equivalence rule.
	g, _ := buildFig2Graph(t, 1)
	l := NewLayer(g)
	defer l.Close()
	c, _ := l.ChannelInto("particle-filter", 0)

	interp, _ := g.Node("interpreter")
	if err := interp.AttachFeature(namedFeature("accuracy")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Feature("accuracy")
	if !ok {
		t.Fatal("endpoint component feature not visible through channel")
	}
	if got.(core.Feature).FeatureName() != "accuracy" {
		t.Errorf("lookup returned %v", got)
	}
	if _, ok := c.Feature("missing"); ok {
		t.Error("missing feature lookup should fail")
	}
}

func TestRefreshPreservesFeaturesAcrossInsert(t *testing.T) {
	g, _ := buildFig2Graph(t, 0)
	l := NewLayer(g)
	defer l.Close()

	c, _ := l.ChannelInto("particle-filter", 0)
	f := &plainFeature{name: "counter"}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}

	// Insert a filter after the parser (§3.1) and refresh the layer.
	filter := core.NewFilter("satfilter", kindNMEA, func(core.Sample) bool { return true })
	if err := g.InsertBetween(filter, "parser", "interpreter", 0, 0); err != nil {
		t.Fatal(err)
	}
	l.Refresh()

	c2, ok := l.ChannelInto("particle-filter", 0)
	if !ok {
		t.Fatal("gps channel lost after refresh")
	}
	wantNodes := []string{"gps", "parser", "satfilter", "interpreter"}
	if got := c2.NodeIDs(); !equalStrings(got, wantNodes) {
		t.Errorf("nodes after insert = %v, want %v", got, wantNodes)
	}
	names := c2.FeatureNames()
	if len(names) != 1 || names[0] != "counter" {
		t.Errorf("features after refresh = %v, want [counter]", names)
	}

	// The preserved feature still fires.
	if err := g.Inject("gps", core.NewSample(kindRaw, 1, time.Time{})); err != nil {
		t.Fatal(err)
	}
	if f.count != 1 {
		t.Errorf("feature count = %d, want 1", f.count)
	}
}

func TestHistoryLimitBoundsTree(t *testing.T) {
	// With a tiny history, old contributing samples fall out of the
	// ring and the tree degrades gracefully (fewer leaves, no panic).
	g, _ := buildFig4Graph(t)
	l := NewLayer(g, WithHistory(2))
	defer l.Close()
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	c, _ := l.ChannelInto("app", 0)
	tree, ok := c.LastTree()
	if !ok {
		t.Fatal("no tree")
	}
	if tree.Size() > 8 {
		t.Errorf("tree size = %d, should not exceed full size", tree.Size())
	}
	if tree.Root.Sample.Payload != "WGS84_1" {
		t.Errorf("root = %v", tree.Root.Sample)
	}
}

func channelIDs(cs []*Channel) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFeatureMethodsInspection(t *testing.T) {
	g, _ := buildFig2Graph(t, 1)
	l := NewLayer(g)
	defer l.Close()
	c, _ := l.ChannelInto("particle-filter", 0)

	f := &recordingFeature{name: "rec"}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}
	methods, ok := c.FeatureMethods("rec")
	if !ok {
		t.Fatal("feature not found")
	}
	want := map[string]bool{"Apply": true, "FeatureName": true, "Requires": true}
	for _, m := range methods {
		delete(want, m)
	}
	if len(want) != 0 {
		t.Errorf("methods %v missing %v", methods, want)
	}
	if _, ok := c.FeatureMethods("absent"); ok {
		t.Error("methods of absent feature")
	}
	if MethodsOf(nil) != nil {
		t.Error("MethodsOf(nil) should be nil")
	}

	d := c.Describe()
	if d.ID != c.ID() || d.Consumer != "particle-filter" {
		t.Errorf("Describe = %+v", d)
	}
	if len(d.Features) != 1 || d.Features[0].Name != "rec" {
		t.Errorf("Describe features = %+v", d.Features)
	}
}

// TestAsyncEngineWithChannelLayer: the layer's taps and tree building
// run on node goroutines under the async runner; this is the race test
// for the PCL's locking.
func TestAsyncEngineWithChannelLayer(t *testing.T) {
	g, sink := buildFig2Graph(t, 50)
	l := NewLayer(g)
	defer l.Close()
	c, _ := l.ChannelInto("particle-filter", 0)
	f := &plainFeature{name: "counter"}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}

	r := core.NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 100 { // 50 gps + 50 wifi through the pass-through PF
		t.Errorf("sink received %d, want 100", sink.Len())
	}
	if f.count != 50 {
		t.Errorf("channel feature applied %d times, want 50", f.count)
	}
	if _, ok := c.LastTree(); !ok {
		t.Error("no tree delivered under async engine")
	}
}
