package channel

import (
	"context"
	"sync"
	"testing"

	"perpos/internal/core"
)

// TestReleaseNodeFullyResets verifies the pool contract: a released
// node leaks nothing from its previous life — zero Sample, zero-length
// children — so a recycled node can never surface stale delivery data.
func TestReleaseNodeFullyResets(t *testing.T) {
	s := core.Sample{
		Kind:    kindRaw,
		Payload: "secret",
		Source:  "src",
		Logical: 7,
		Spans:   []core.Span{{Source: "up", From: 1, To: 3}},
		Attrs:   map[string]any{"hdop": 1.2},
	}
	root := newTreeNode(s)
	root.Children = append(root.Children, newTreeNode(s), newTreeNode(s))
	child := root.Children[0]

	releaseNode(root)

	for name, n := range map[string]*TreeNode{"root": root, "child": child} {
		if n.Sample.Payload != nil || n.Sample.Source != "" || n.Sample.Logical != 0 ||
			n.Sample.Spans != nil || n.Sample.Attrs != nil {
			t.Errorf("%s sample not reset after release: %+v", name, n.Sample)
		}
		if len(n.Children) != 0 {
			t.Errorf("%s has %d children after release, want 0", name, len(n.Children))
		}
	}
}

// TestReleaseTreeResets verifies the tree shell is cleared before
// pooling.
func TestReleaseTreeResets(t *testing.T) {
	tree := newTree()
	tree.Root = newTreeNode(core.Sample{Kind: kindRaw, Payload: 1})
	releaseTree(tree)
	if tree.Root != nil {
		t.Error("tree root not cleared by releaseTree")
	}
	releaseTree(nil) // must not panic
}

// retainingFeature keeps a detached copy of every delivered tree — the
// documented pattern for consumers that hold data past Apply.
type retainingFeature struct {
	mu    sync.Mutex
	trees []*DataTree
}

func (f *retainingFeature) FeatureName() string { return "retainer" }

func (f *retainingFeature) Apply(tree *DataTree) {
	f.mu.Lock()
	f.trees = append(f.trees, tree.Detach())
	f.mu.Unlock()
}

// TestRetainedTreesSurviveRecycling drives enough deliveries through a
// channel that its pooled trees are recycled many times over, while a
// feature retains a detached copy of each. Every retained tree must
// still describe its own delivery afterwards — a detached copy sharing
// state with a pooled node would have been wiped or overwritten.
func TestRetainedTreesSurviveRecycling(t *testing.T) {
	const n = 200
	g := core.New()
	mustAdd(t, g, rawSource("src", kindRaw, n))
	mustAdd(t, g, passthrough("proc", kindRaw, kindNMEA))
	mustAdd(t, g, core.NewSink("app", []core.Kind{kindNMEA}))
	mustConnect(t, g, "src", "proc", 0)
	mustConnect(t, g, "proc", "app", 0)

	l := NewLayer(g, WithHistory(4))
	defer l.Close()
	c, ok := l.ChannelInto("app", 0)
	if !ok {
		t.Fatal("no channel into app")
	}
	f := &retainingFeature{}
	if err := c.AttachFeature(f); err != nil {
		t.Fatal(err)
	}

	for {
		more, err := g.StepAll()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.trees) != n {
		t.Fatalf("retained %d trees, want %d", len(f.trees), n)
	}
	for i, tree := range f.trees {
		root := tree.Root
		if root == nil {
			t.Fatalf("tree %d lost its root after recycling", i)
		}
		if root.Sample.Source != "proc" || root.Sample.Logical != core.LogicalTime(i+1) {
			t.Fatalf("tree %d root = %s, want proc:%d — recycled node leaked into a detached tree",
				i, root.Sample, i+1)
		}
		if len(root.Children) != 1 || root.Children[0].Sample.Source != "src" {
			t.Fatalf("tree %d children = %v, want one src child", i, root.Children)
		}
		if root.Children[0].Sample.Logical != core.LogicalTime(i+1) {
			t.Fatalf("tree %d child logical = %d, want %d",
				i, root.Children[0].Sample.Logical, i+1)
		}
	}
}

// TestLastTreeConcurrentWithDeliveries hammers LastTree (which detaches
// eager trees or lazily rebuilds from history) from a reader goroutine
// while the async engine delivers — run under -race this is the
// regression test for pooled-tree recycling racing a reader.
func TestLastTreeConcurrentWithDeliveries(t *testing.T) {
	const n = 500
	g := core.New()
	mustAdd(t, g, rawSource("src", kindRaw, n))
	mustAdd(t, g, passthrough("proc", kindRaw, kindNMEA))
	mustAdd(t, g, core.NewSink("app", []core.Kind{kindNMEA}))
	mustConnect(t, g, "src", "proc", 0)
	mustConnect(t, g, "proc", "app", 0)

	l := NewLayer(g, WithHistory(8))
	defer l.Close()
	c, ok := l.ChannelInto("app", 0)
	if !ok {
		t.Fatal("no channel into app")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if tree, ok := c.LastTree(); ok {
				// The detached copy must be internally consistent no
				// matter when it was taken.
				if tree.Root == nil || tree.Root.Sample.Source != "proc" {
					t.Error("LastTree returned an inconsistent tree")
					return
				}
				_ = tree.Depth()
			}
		}
	}()

	r := core.NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	tree, ok := c.LastTree()
	if !ok {
		t.Fatal("no LastTree after the run")
	}
	if tree.Root.Sample.Logical != n {
		t.Errorf("final tree logical = %d, want %d", tree.Root.Sample.Logical, n)
	}
}
