package channel

import (
	"sync"
	"testing"
)

// TestWithTreeObserver checks that the layer invokes the observer for
// every built data tree, alongside feature delivery, with the owning
// channel attached.
func TestWithTreeObserver(t *testing.T) {
	g, _ := buildFig4Graph(t)

	var mu sync.Mutex
	var depths []int
	var channels []string
	l := NewLayer(g, WithTreeObserver(func(c *Channel, tree *DataTree) {
		mu.Lock()
		defer mu.Unlock()
		depths = append(depths, tree.Depth())
		channels = append(channels, c.ID())
	}))
	defer l.Close()

	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(depths) == 0 {
		t.Fatal("tree observer never invoked")
	}
	// The Fig. 4 delivery into the app has depth 3 (WGS84 <- NMEA <- raw).
	max := 0
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	if max != 3 {
		t.Errorf("max observed depth = %d, want 3", max)
	}
	for _, id := range channels {
		if id == "" {
			t.Error("observer received channel with empty ID")
		}
	}
}
