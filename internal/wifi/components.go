package wifi

import (
	"math/rand"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// timeZero is the survey timestamp placeholder.
var timeZero = time.Time{}

// Sensor is the WiFi sensor source of Fig. 1: a Producer that walks a
// ground-truth trace and emits a Scan every scan interval. Outside the
// building (no APs heard) it emits empty scans, mirroring a phone
// scanning without infrastructure.
type Sensor struct {
	id      string
	network *Network
	tr      *trace.Trace
	rng     *rand.Rand
	seed    int64
	period  time.Duration

	now     time.Time
	end     time.Time
	stepped int
}

var _ core.Producer = (*Sensor)(nil)

// NewSensor returns a WiFi sensor replaying the given ground truth,
// scanning every period (default 2 s).
func NewSensor(id string, network *Network, tr *trace.Trace, period time.Duration, seed int64) *Sensor {
	if period <= 0 {
		period = 2 * time.Second
	}
	s := &Sensor{
		id:      id,
		network: network,
		tr:      tr,
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		period:  period,
	}
	if tr.Len() > 0 {
		s.now = tr.Points[0].Time
		s.end = tr.Points[tr.Len()-1].Time
	}
	return s
}

// ID implements core.Component.
func (s *Sensor) ID() string { return s.id }

// Spec implements core.Component.
func (s *Sensor) Spec() core.Spec {
	return core.Spec{
		Name:   "WiFiSensor",
		Output: core.OutputSpec{Kind: KindScan},
	}
}

// Process implements core.Component; sources receive no input.
func (s *Sensor) Process(int, core.Sample, core.Emit) error { return nil }

// Step implements core.Producer.
func (s *Sensor) Step(emit core.Emit) (bool, error) {
	if s.tr.Len() == 0 || s.now.After(s.end) {
		return false, nil
	}
	truth, _ := s.tr.At(s.now)
	scan := s.network.ScanAt(truth.Local, 0, s.now, s.rng)
	emit(core.NewSample(KindScan, scan, s.now))
	s.now = s.now.Add(s.period)
	s.stepped++
	return !s.now.After(s.end), nil
}

// Engine is the WiFi positioning Processing Component of Fig. 1: it
// matches scans against the fingerprint database and emits positions.
// Scans that hear too few APs produce nothing — outdoors the WiFi
// pipeline goes silent and the application falls back to GPS.
type Engine struct {
	id     string
	db     *Database
	b      *building.Building
	k      int
	minAPs int

	located int
}

var _ core.Component = (*Engine)(nil)

// NewEngine returns a positioning engine over the given database.
func NewEngine(id string, db *Database, b *building.Building, k int) *Engine {
	if k <= 0 {
		k = 3
	}
	// Require three audible APs before positioning: fewer means the
	// device is at the fringe (typically outside the building), where
	// k-NN matches are meaningless.
	return &Engine{id: id, db: db, b: b, k: k, minAPs: 3}
}

// ID implements core.Component.
func (e *Engine) ID() string { return e.id }

// Spec implements core.Component.
func (e *Engine) Spec() core.Spec {
	return core.Spec{
		Name:   "WiFiPositioning",
		Inputs: []core.PortSpec{{Name: "scan", Accepts: []core.Kind{KindScan}}},
		Output: core.OutputSpec{Kind: positioning.KindPosition},
	}
}

// Process implements core.Component.
func (e *Engine) Process(_ int, in core.Sample, emit core.Emit) error {
	scan, ok := in.Payload.(*Scan)
	if !ok || len(scan.Readings) < e.minAPs {
		return nil
	}
	est, err := e.db.Locate(scan, e.k)
	if err != nil {
		// Empty database means the engine is mis-deployed; surface it.
		return err
	}
	pos := positioning.Position{
		Time:     in.Time,
		Global:   e.b.Projection().ToGlobal(est.Pos),
		Local:    est.Pos,
		HasLocal: true,
		Floor:    est.Floor,
		Accuracy: est.Accuracy,
		Source:   "wifi",
		RoomID:   est.RoomID,
	}
	e.located++
	out := core.NewSample(positioning.KindPosition, pos, in.Time)
	out = out.WithAttr("apCount", len(scan.Readings))
	emit(out)
	return nil
}

// Located returns the number of positions produced.
func (e *Engine) Located() int { return e.located }

// NewResolver returns the Resolver component of Fig. 1: it maps
// positions to symbolic room IDs using the building model, emitting
// room-ID samples. Positions that resolve to no room (outdoors) are
// dropped.
func NewResolver(id string, b *building.Building) *core.FuncComponent {
	return &core.FuncComponent{
		CompID: id,
		CompSpec: core.Spec{
			Name: "Resolver",
			Inputs: []core.PortSpec{{
				Name:    "position",
				Accepts: []core.Kind{positioning.KindPosition},
			}},
			Output: core.OutputSpec{Kind: positioning.KindRoom},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			pos, ok := in.Payload.(positioning.Position)
			if !ok {
				return nil
			}
			roomID := pos.RoomID
			if roomID == "" {
				local := pos.Local
				if !pos.HasLocal {
					local = b.Projection().ToLocal(pos.Global)
				}
				room, found := b.RoomAt(local, pos.Floor)
				if !found {
					return nil
				}
				roomID = room.ID
			}
			emit(core.NewSample(positioning.KindRoom, roomID, in.Time))
			return nil
		},
	}
}
