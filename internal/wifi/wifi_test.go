package wifi

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

func testNetwork() *Network {
	return DefaultDeployment(building.Evaluation())
}

func TestMeanRSSIDecreasesWithDistance(t *testing.T) {
	n := testNetwork()
	ap := n.APs()[1] // corridor centre, (20, 6)
	near, okNear := n.MeanRSSI(ap, geo.ENU{East: 21, North: 6}, 0)
	far, okFar := n.MeanRSSI(ap, geo.ENU{East: 32, North: 6}, 0)
	if !okNear || !okFar {
		t.Fatalf("both positions should hear the corridor AP: %v %v", okNear, okFar)
	}
	if near <= far {
		t.Errorf("RSSI near (%.1f) should exceed far (%.1f)", near, far)
	}
}

func TestMeanRSSIWallAttenuation(t *testing.T) {
	n := testNetwork()
	ap := n.APs()[1] // (20, 6) corridor
	d := 5.374       // |(3.8, 3.8)|
	inCorridor, ok1 := n.MeanRSSI(ap, geo.ENU{East: 20 + d, North: 6}, 0)
	// Same distance but into office N3 through the corridor wall,
	// crossing y=7 at x=19.0 — away from N3's door gap (19.4..20.6).
	throughWall, ok2 := n.MeanRSSI(ap, geo.ENU{East: 20 - 3.8, North: 6 + 3.8}, 0)
	if !ok1 || !ok2 {
		t.Fatalf("hearability: %v %v", ok1, ok2)
	}
	if inCorridor-throughWall < 3 {
		t.Errorf("wall should cost ~5 dB: corridor %.1f vs through-wall %.1f", inCorridor, throughWall)
	}
}

func TestMeanRSSISensitivityFloor(t *testing.T) {
	b := building.Evaluation()
	n := NewNetwork(b, []AP{{BSSID: "x", Pos: geo.ENU{}, TxPower: 15}}, PropagationConfig{})
	if _, ok := n.MeanRSSI(n.APs()[0], geo.ENU{East: 3000}, 0); ok {
		t.Error("AP 3 km away should be below sensitivity")
	}
}

func TestScanAtDeterministicPerSeed(t *testing.T) {
	n := testNetwork()
	p := geo.ENU{East: 20, North: 6}
	s1 := n.ScanAt(p, 0, time.Time{}, rand.New(rand.NewSource(1)))
	s2 := n.ScanAt(p, 0, time.Time{}, rand.New(rand.NewSource(1)))
	if len(s1.Readings) != len(s2.Readings) {
		t.Fatalf("scan lengths differ: %d vs %d", len(s1.Readings), len(s2.Readings))
	}
	for i := range s1.Readings {
		if s1.Readings[i] != s2.Readings[i] {
			t.Errorf("reading %d differs: %v vs %v", i, s1.Readings[i], s2.Readings[i])
		}
	}
}

func TestScanHearsMultipleAPsInCorridor(t *testing.T) {
	n := testNetwork()
	scan := n.ScanAt(geo.ENU{East: 20, North: 6}, 0, time.Time{}, rand.New(rand.NewSource(2)))
	if len(scan.Readings) < 3 {
		t.Errorf("corridor centre hears %d APs, want >= 3", len(scan.Readings))
	}
	if _, ok := scan.Get(scan.Readings[0].BSSID); !ok {
		t.Error("Get failed for present BSSID")
	}
	if _, ok := scan.Get("absent"); ok {
		t.Error("Get succeeded for absent BSSID")
	}
}

func TestSurveyCoversRooms(t *testing.T) {
	n := testNetwork()
	db := Survey(n, 0, SurveyConfig{Seed: 3})
	if db.Len() < 50 {
		t.Fatalf("survey produced %d cells, want >= 50", db.Len())
	}
	rooms := map[string]bool{}
	for _, fp := range db.Fingerprints() {
		rooms[fp.RoomID] = true
		if len(fp.RSSI) == 0 {
			t.Fatalf("fingerprint at %v has no APs", fp.Pos)
		}
	}
	// All 11 rooms must be surveyed.
	if len(rooms) != 11 {
		t.Errorf("survey covers %d rooms, want 11: %v", len(rooms), rooms)
	}
}

func TestLocateAccuracy(t *testing.T) {
	n := testNetwork()
	db := Survey(n, 0, SurveyConfig{Seed: 4})
	rng := rand.New(rand.NewSource(5))

	positions := []geo.ENU{
		{East: 10, North: 6},  // corridor
		{East: 4, North: 9},   // office N1
		{East: 20, North: 10}, // office N3
		{East: 28, North: 2},  // office S4
	}
	var sumErr float64
	var roomHits, total int
	for _, truth := range positions {
		for trial := 0; trial < 20; trial++ {
			scan := n.ScanAt(truth, 0, time.Time{}, rng)
			est, err := db.Locate(scan, 3)
			if err != nil {
				t.Fatal(err)
			}
			sumErr += est.Pos.Distance(truth)
			truthRoom, _ := n.Building().RoomAt(truth, 0)
			if est.RoomID == truthRoom.ID {
				roomHits++
			}
			total++
			if est.Accuracy <= 0 {
				t.Fatalf("non-positive accuracy estimate %v", est.Accuracy)
			}
		}
	}
	meanErr := sumErr / float64(total)
	if meanErr > 5 {
		t.Errorf("mean positioning error = %.2f m, want <= 5 m", meanErr)
	}
	roomAcc := float64(roomHits) / float64(total)
	if roomAcc < 0.6 {
		t.Errorf("room accuracy = %.2f, want >= 0.6", roomAcc)
	}
	t.Logf("wifi kNN: mean error %.2f m, room accuracy %.0f%%", meanErr, roomAcc*100)
}

func TestLocateEmptyDatabase(t *testing.T) {
	db := &Database{}
	_, err := db.Locate(&Scan{}, 3)
	if !errors.Is(err, ErrEmptyDatabase) {
		t.Errorf("error = %v, want ErrEmptyDatabase", err)
	}
}

func TestLocateKLargerThanDB(t *testing.T) {
	n := testNetwork()
	db := Survey(n, 0, SurveyConfig{Seed: 4, GridStep: 15})
	scan := n.ScanAt(geo.ENU{East: 20, North: 6}, 0, time.Time{}, rand.New(rand.NewSource(1)))
	if _, err := db.Locate(scan, 10_000); err != nil {
		t.Errorf("huge k should clamp, got %v", err)
	}
	if _, err := db.Locate(scan, 0); err != nil {
		t.Errorf("zero k should default, got %v", err)
	}
}

func TestSensorEmitsScansAlongTrace(t *testing.T) {
	b := building.Evaluation()
	n := DefaultDeployment(b)
	tr := trace.CorridorWalk(b, 6, 3, time.Second)
	sensor := NewSensor("wifi", n, tr, 2*time.Second, 7)

	var scans []*Scan
	emit := func(s core.Sample) { scans = append(scans, s.Payload.(*Scan)) }
	for {
		more, err := sensor.Step(emit)
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	if len(scans) < tr.Len()/3 {
		t.Fatalf("only %d scans for %d trace points", len(scans), tr.Len())
	}
	for i, s := range scans {
		if len(s.Readings) == 0 {
			t.Errorf("scan %d heard nothing inside the building", i)
		}
	}
}

func TestEndToEndPipelineRoomStream(t *testing.T) {
	// Fig. 1 indoor half: sensor -> engine -> resolver -> app.
	b := building.Evaluation()
	n := DefaultDeployment(b)
	db := Survey(n, 0, SurveyConfig{Seed: 8})
	tr := trace.CorridorWalk(b, 9, 4, time.Second)

	g := core.New()
	mustAdd(t, g, NewSensor("wifi", n, tr, 2*time.Second, 10))
	engine := NewEngine("positioning", db, b, 3)
	mustAdd(t, g, engine)
	mustAdd(t, g, NewResolver("resolver", b))
	sink := core.NewSink("app", []core.Kind{positioning.KindRoom})
	mustAdd(t, g, sink)
	mustConnect(t, g, "wifi", "positioning", 0)
	mustConnect(t, g, "positioning", "resolver", 0)
	mustConnect(t, g, "resolver", "app", 0)

	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() == 0 {
		t.Fatal("no room IDs delivered")
	}
	if engine.Located() == 0 {
		t.Fatal("engine located nothing")
	}

	// Room-stream accuracy against ground truth.
	hits, total := 0, 0
	for _, s := range sink.Received() {
		roomID := s.Payload.(string)
		truth, _ := tr.At(s.Time)
		total++
		if truth.RoomID == roomID {
			hits++
		}
	}
	acc := float64(hits) / float64(total)
	if acc < 0.5 {
		t.Errorf("room stream accuracy = %.2f, want >= 0.5", acc)
	}
	t.Logf("room stream accuracy: %.0f%% (%d/%d)", acc*100, hits, total)
}

func TestEngineIgnoresSparseScans(t *testing.T) {
	b := building.Evaluation()
	n := DefaultDeployment(b)
	db := Survey(n, 0, SurveyConfig{Seed: 1})
	e := NewEngine("eng", db, b, 3)
	emitted := 0
	emit := func(core.Sample) { emitted++ }

	empty := &Scan{}
	if err := e.Process(0, core.NewSample(KindScan, empty, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	single := &Scan{Readings: []Reading{{BSSID: "x", RSSI: -50}}}
	if err := e.Process(0, core.NewSample(KindScan, single, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	if emitted != 0 {
		t.Errorf("sparse scans produced %d positions", emitted)
	}
}

func TestResolverResolvesUnroomedPositions(t *testing.T) {
	b := building.Evaluation()
	resolver := NewResolver("resolver", b)
	var got []string
	emit := func(s core.Sample) { got = append(got, s.Payload.(string)) }

	// A GPS-style position (global only) inside office N1.
	global := b.Projection().ToGlobal(geo.ENU{East: 4, North: 9})
	pos := positioning.Position{Global: global, Source: "gps"}
	if err := resolver.Process(0, core.NewSample(positioning.KindPosition, pos, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "N1" {
		t.Errorf("resolved = %v, want [N1]", got)
	}

	// An outdoor position resolves to nothing.
	outdoor := positioning.Position{Global: b.Projection().ToGlobal(geo.ENU{East: -500})}
	if err := resolver.Process(0, core.NewSample(positioning.KindPosition, outdoor, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("outdoor position produced a room: %v", got)
	}
}

func mustAdd(t *testing.T, g *core.Graph, c core.Component) {
	t.Helper()
	if _, err := g.Add(c); err != nil {
		t.Fatalf("Add(%s): %v", c.ID(), err)
	}
}

func mustConnect(t *testing.T, g *core.Graph, from, to string, port int) {
	t.Helper()
	if err := g.Connect(from, to, port); err != nil {
		t.Fatalf("Connect(%s->%s): %v", from, to, err)
	}
}

func TestDatabaseWriteReadRoundTrip(t *testing.T) {
	n := testNetwork()
	db := Survey(n, 0, SurveyConfig{Seed: 11, GridStep: 4})
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip: %d cells, want %d", got.Len(), db.Len())
	}
	// The loaded database must position identically.
	scan := n.ScanAt(geo.ENU{East: 20, North: 6}, 0, time.Time{}, rand.New(rand.NewSource(3)))
	a, err := db.Locate(scan, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Locate(scan, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pos != b.Pos || a.RoomID != b.RoomID {
		t.Errorf("loaded database locates differently: %+v vs %+v", a, b)
	}
}

func TestReadDatabaseGarbage(t *testing.T) {
	if _, err := ReadDatabase(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := ReadDatabase(bytes.NewBufferString("{\"count\":1}\nnope")); err == nil {
		t.Error("garbage record accepted")
	}
}

func TestLocateDegradesGracefullyWithDeadAP(t *testing.T) {
	// Survey with the full deployment, then position with one AP dead —
	// the engine must keep working with moderately worse accuracy.
	b := building.Evaluation()
	full := DefaultDeployment(b)
	db := Survey(full, 0, SurveyConfig{Seed: 21})

	aps := full.APs()
	degraded := NewNetwork(b, aps[1:], PropagationConfig{}) // ap-1 dead
	rng := rand.New(rand.NewSource(22))

	var sumFull, sumDegraded float64
	trials := 0
	for _, truth := range []geo.ENU{{East: 10, North: 6}, {East: 20, North: 10}, {East: 28, North: 2}} {
		for i := 0; i < 10; i++ {
			sf, err := db.Locate(full.ScanAt(truth, 0, time.Time{}, rng), 3)
			if err != nil {
				t.Fatal(err)
			}
			sd, err := db.Locate(degraded.ScanAt(truth, 0, time.Time{}, rng), 3)
			if err != nil {
				t.Fatal(err)
			}
			sumFull += sf.Pos.Distance(truth)
			sumDegraded += sd.Pos.Distance(truth)
			trials++
		}
	}
	meanFull := sumFull / float64(trials)
	meanDegraded := sumDegraded / float64(trials)
	t.Logf("dead AP: mean error %.2f -> %.2f m", meanFull, meanDegraded)
	if meanDegraded > 12 {
		t.Errorf("degraded error %.2f m too large; engine should survive one dead AP", meanDegraded)
	}
}

func TestSurveySecondFloor(t *testing.T) {
	b := building.EvaluationTwoFloors()
	// Move the deployment up one floor.
	var aps []AP
	for _, ap := range DefaultDeployment(b).APs() {
		ap.Floor = 1
		aps = append(aps, ap)
	}
	n := NewNetwork(b, aps, PropagationConfig{})
	db := Survey(n, 1, SurveyConfig{Seed: 23, GridStep: 4})
	if db.Len() == 0 {
		t.Fatal("no fingerprints on floor 1")
	}
	for _, fp := range db.Fingerprints() {
		if fp.Floor != 1 {
			t.Fatalf("fingerprint floor = %d", fp.Floor)
		}
		if len(fp.RoomID) < 2 || fp.RoomID[:2] != "1-" {
			t.Fatalf("fingerprint room = %q, want 1-*", fp.RoomID)
		}
	}
	scan := n.ScanAt(geo.ENU{East: 20, North: 6}, 1, time.Time{}, rand.New(rand.NewSource(24)))
	est, err := db.Locate(scan, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Floor != 1 {
		t.Errorf("estimate floor = %d, want 1", est.Floor)
	}
}
