package wifi

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"perpos/internal/geo"
)

// ErrEmptyDatabase indicates positioning against an unsurveyed database.
var ErrEmptyDatabase = errors.New("wifi: empty fingerprint database")

// Fingerprint is one surveyed grid cell: the mean RSSI per heard AP.
type Fingerprint struct {
	Pos    geo.ENU
	Floor  int
	RoomID string
	RSSI   map[string]float64
}

// Database is an offline radio map built by a survey.
type Database struct {
	fingerprints []Fingerprint
}

// Len returns the number of surveyed cells.
func (db *Database) Len() int { return len(db.fingerprints) }

// Fingerprints returns the surveyed cells.
func (db *Database) Fingerprints() []Fingerprint {
	out := make([]Fingerprint, len(db.fingerprints))
	copy(out, db.fingerprints)
	return out
}

// SurveyConfig parameterizes the offline survey.
type SurveyConfig struct {
	// GridStep is the survey cell size in metres (default 2).
	GridStep float64
	// ScansPerCell is how many scans are averaged per cell (default 4).
	ScansPerCell int
	// Seed makes survey fading deterministic.
	Seed int64
}

func (c SurveyConfig) withDefaults() SurveyConfig {
	if c.GridStep <= 0 {
		c.GridStep = 2
	}
	if c.ScansPerCell <= 0 {
		c.ScansPerCell = 4
	}
	return c
}

// Survey walks the floor grid and records mean fingerprints — the
// offline phase of fingerprint positioning.
func Survey(n *Network, floor int, cfg SurveyConfig) *Database {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &Database{}

	min, max, ok := n.Building().Bounds(floor)
	if !ok {
		return db
	}
	for e := min.East + cfg.GridStep/2; e <= max.East; e += cfg.GridStep {
		for no := min.North + cfg.GridStep/2; no <= max.North; no += cfg.GridStep {
			p := geo.ENU{East: e, North: no}
			room, inRoom := n.Building().RoomAt(p, floor)
			if !inRoom {
				continue
			}
			sums := make(map[string]float64)
			counts := make(map[string]int)
			for s := 0; s < cfg.ScansPerCell; s++ {
				scan := n.ScanAt(p, floor, timeZero, rng)
				for _, r := range scan.Readings {
					sums[r.BSSID] += r.RSSI
					counts[r.BSSID]++
				}
			}
			if len(sums) == 0 {
				continue
			}
			rssi := make(map[string]float64, len(sums))
			for b, sum := range sums {
				rssi[b] = sum / float64(counts[b])
			}
			db.fingerprints = append(db.fingerprints, Fingerprint{
				Pos:    p,
				Floor:  floor,
				RoomID: room.ID,
				RSSI:   rssi,
			})
		}
	}
	return db
}

// Estimate is an online positioning result.
type Estimate struct {
	Pos    geo.ENU
	Floor  int
	RoomID string
	// Accuracy is a 1-sigma error estimate from neighbour spread, in
	// metres.
	Accuracy float64
}

// missingPenalty is the squared-dB penalty for an AP heard in exactly
// one of (scan, fingerprint) — treating absence as a very weak signal.
const missingPenalty = 15.0

// Locate matches a scan against the database with k-nearest-neighbour
// matching in signal space and returns the weighted-centroid estimate.
func (db *Database) Locate(scan *Scan, k int) (Estimate, error) {
	if len(db.fingerprints) == 0 {
		return Estimate{}, ErrEmptyDatabase
	}
	if k <= 0 {
		k = 3
	}
	type scored struct {
		fp   *Fingerprint
		dist float64
	}
	scores := make([]scored, 0, len(db.fingerprints))
	for i := range db.fingerprints {
		fp := &db.fingerprints[i]
		scores = append(scores, scored{fp: fp, dist: signalDistance(scan, fp)})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].dist < scores[j].dist })
	if k > len(scores) {
		k = len(scores)
	}
	best := scores[:k]

	// Inverse-distance weighted centroid.
	var wSum, e, n float64
	for _, s := range best {
		w := 1 / (s.dist + 0.1)
		wSum += w
		e += w * s.fp.Pos.East
		n += w * s.fp.Pos.North
	}
	pos := geo.ENU{East: e / wSum, North: n / wSum}

	// Spread of the k neighbours around the centroid as accuracy.
	var spread float64
	for _, s := range best {
		spread += s.fp.Pos.Distance(pos) * s.fp.Pos.Distance(pos)
	}
	spread = math.Sqrt(spread / float64(k))
	if spread < 1 {
		spread = 1
	}

	// Room by nearest-cell vote among the neighbours.
	votes := make(map[string]int)
	for _, s := range best {
		votes[s.fp.RoomID]++
	}
	room := best[0].fp.RoomID
	bestVotes := 0
	for id, v := range votes {
		if v > bestVotes || (v == bestVotes && id < room) {
			room = id
			bestVotes = v
		}
	}

	return Estimate{
		Pos:      pos,
		Floor:    best[0].fp.Floor,
		RoomID:   room,
		Accuracy: spread,
	}, nil
}

// signalDistance is the mean squared dB distance between a scan and a
// fingerprint over the union of their APs, with a fixed penalty for APs
// heard on only one side.
func signalDistance(scan *Scan, fp *Fingerprint) float64 {
	var sum float64
	var n int
	for _, r := range scan.Readings {
		if ref, ok := fp.RSSI[r.BSSID]; ok {
			d := r.RSSI - ref
			sum += d * d
		} else {
			sum += missingPenalty * missingPenalty
		}
		n++
	}
	for bssid := range fp.RSSI {
		if _, ok := scan.Get(bssid); !ok {
			sum += missingPenalty * missingPenalty
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(sum / float64(n))
}
