package wifi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"perpos/internal/geo"
)

// fingerprintRecord is the JSONL wire form of one surveyed cell.
type fingerprintRecord struct {
	Pos    geo.ENU            `json:"pos"`
	Floor  int                `json:"floor"`
	RoomID string             `json:"roomId"`
	RSSI   map[string]float64 `json:"rssi"`
}

// WriteDatabase serialises a fingerprint database as JSONL, one cell
// per line — the radio map artifact an operator would survey once and
// deploy to every positioning engine.
func WriteDatabase(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := struct {
		Count int `json:"count"`
	}{db.Len()}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("wifi: database header: %w", err)
	}
	for i, fp := range db.fingerprints {
		rec := fingerprintRecord{Pos: fp.Pos, Floor: fp.Floor, RoomID: fp.RoomID, RSSI: fp.RSSI}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("wifi: fingerprint %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadDatabase parses a database written by WriteDatabase.
func ReadDatabase(r io.Reader) (*Database, error) {
	dec := json.NewDecoder(r)
	var header struct {
		Count int `json:"count"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("wifi: database header: %w", err)
	}
	db := &Database{fingerprints: make([]Fingerprint, 0, header.Count)}
	for {
		var rec fingerprintRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return db, nil
			}
			return nil, fmt.Errorf("wifi: fingerprint %d: %w", db.Len(), err)
		}
		db.fingerprints = append(db.fingerprints, Fingerprint{
			Pos:    rec.Pos,
			Floor:  rec.Floor,
			RoomID: rec.RoomID,
			RSSI:   rec.RSSI,
		})
	}
}
