// Package wifi simulates an indoor WiFi positioning system: access
// points, log-distance path-loss signal propagation with wall
// attenuation, an offline fingerprint survey and an online k-nearest
// -neighbour positioning engine — the indoor half of the Room Number
// application (Fig. 1: WiFi sensor -> WiFi positioning -> Resolver).
//
// Substitution note (DESIGN.md): the paper used a campus WiFi
// deployment. The simulated deployment reproduces what the case studies
// rely on: room-level positioning with realistic, wall-dependent error.
package wifi

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/geo"
)

// KindScan is the sample kind carrying *Scan payloads.
const KindScan core.Kind = "wifi.scan"

// Reading is one access point observation in a scan.
type Reading struct {
	BSSID string  `json:"bssid"`
	RSSI  float64 `json:"rssi"` // dBm
}

// Scan is one WiFi measurement: the set of heard APs.
type Scan struct {
	Time     time.Time `json:"time"`
	Readings []Reading `json:"readings"`
}

// Get returns the RSSI for a BSSID and whether it was heard.
func (s *Scan) Get(bssid string) (float64, bool) {
	for _, r := range s.Readings {
		if r.BSSID == bssid {
			return r.RSSI, true
		}
	}
	return 0, false
}

// AP is a deployed access point.
type AP struct {
	BSSID string
	Name  string
	Pos   geo.ENU
	Floor int
	// TxPower is the transmit power in dBm (default 15 used by
	// DefaultDeployment).
	TxPower float64
}

// PropagationConfig parameterizes the log-distance path-loss model:
//
//	RSSI(d) = TxPower - PL0 - 10*N*log10(max(d,1)) - WallLoss*walls + X(Shadow)
type PropagationConfig struct {
	// PL0 is the path loss at 1 m in dB (default 40).
	PL0 float64
	// N is the path-loss exponent (default 3.0 for office interiors).
	N float64
	// WallLoss is the per-wall attenuation in dB (default 5).
	WallLoss float64
	// Shadow is the lognormal shadow-fading sigma in dB (default 3).
	Shadow float64
	// Sensitivity is the receive floor in dBm; weaker APs are not heard
	// (default -88).
	Sensitivity float64
}

func (c PropagationConfig) withDefaults() PropagationConfig {
	if c.PL0 == 0 {
		c.PL0 = 40
	}
	if c.N == 0 {
		c.N = 3.0
	}
	if c.WallLoss == 0 {
		c.WallLoss = 5
	}
	if c.Shadow == 0 {
		c.Shadow = 3
	}
	if c.Sensitivity == 0 {
		c.Sensitivity = -88
	}
	return c
}

// Network is a deployed WiFi infrastructure inside one building.
type Network struct {
	b   *building.Building
	aps []AP
	cfg PropagationConfig
}

// NewNetwork returns a network of the given APs in b.
func NewNetwork(b *building.Building, aps []AP, cfg PropagationConfig) *Network {
	return &Network{b: b, aps: aps, cfg: cfg.withDefaults()}
}

// Building returns the network's building.
func (n *Network) Building() *building.Building { return n.b }

// APs returns the deployed access points.
func (n *Network) APs() []AP {
	out := make([]AP, len(n.aps))
	copy(out, n.aps)
	return out
}

// MeanRSSI returns the noise-free expected RSSI of ap at p, or false
// when below sensitivity.
func (n *Network) MeanRSSI(ap AP, p geo.ENU, floor int) (float64, bool) {
	d := ap.Pos.Distance(p)
	if d < 1 {
		d = 1
	}
	walls := n.b.WallsBetween(ap.Pos, p, floor)
	rssi := ap.TxPower - n.cfg.PL0 - 10*n.cfg.N*math.Log10(d) - n.cfg.WallLoss*float64(walls)
	if rssi < n.cfg.Sensitivity {
		return 0, false
	}
	return rssi, true
}

// ScanAt simulates one scan at position p using rng for shadow fading.
func (n *Network) ScanAt(p geo.ENU, floor int, at time.Time, rng *rand.Rand) *Scan {
	scan := &Scan{Time: at}
	for _, ap := range n.aps {
		if ap.Floor != floor {
			continue
		}
		mean, heard := n.MeanRSSI(ap, p, floor)
		if !heard {
			continue
		}
		rssi := mean + rng.NormFloat64()*n.cfg.Shadow
		if rssi < n.cfg.Sensitivity {
			continue
		}
		scan.Readings = append(scan.Readings, Reading{BSSID: ap.BSSID, RSSI: rssi})
	}
	return scan
}

// DefaultDeployment places eight APs through the evaluation building:
// three along the corridor and five in alternating offices — enough
// overlap for room-level k-NN positioning everywhere on the floor.
func DefaultDeployment(b *building.Building) *Network {
	mk := func(i int, e, n float64) AP {
		return AP{
			BSSID:   fmt.Sprintf("00:17:9a:%02x:%02x:%02x", i, i*3+1, i*7+5),
			Name:    fmt.Sprintf("ap-%d", i),
			Pos:     geo.ENU{East: e, North: n},
			TxPower: 15,
		}
	}
	aps := []AP{
		mk(1, 6, 6),   // corridor west
		mk(2, 20, 6),  // corridor centre
		mk(3, 34, 6),  // corridor east
		mk(4, 4, 10),  // office N1
		mk(5, 20, 10), // office N3
		mk(6, 36, 10), // office N5
		mk(7, 12, 2),  // office S2
		mk(8, 28, 2),  // office S4
	}
	return NewNetwork(b, aps, PropagationConfig{})
}
