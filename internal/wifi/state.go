package wifi

import (
	"encoding/json"
	"math/rand"
	"time"

	"perpos/internal/core"
)

// StateAccess implementations for the WiFi pipeline.

var (
	_ core.StateAccess = (*Sensor)(nil)
	_ core.StateAccess = (*Engine)(nil)
)

type sensorState struct {
	Now     time.Time `json:"now"`
	Stepped int       `json:"stepped"`
}

// MarshalState implements core.StateAccess: the scan clock, so a
// restored sensor continues mid-trace.
func (s *Sensor) MarshalState() ([]byte, error) {
	return json.Marshal(sensorState{Now: s.now, Stepped: s.stepped})
}

// UnmarshalState implements core.StateAccess. The RSSI-noise RNG is
// reseeded deterministically from (seed, stepped) — see the note on the
// filter package's resumed RNGs.
func (s *Sensor) UnmarshalState(data []byte) error {
	var st sensorState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.now = st.Now
	s.stepped = st.Stepped
	const mix = 0x5851F42D4C957F2D // odd 63-bit mixing constant
	s.rng = rand.New(rand.NewSource(s.seed ^ (int64(st.Stepped)+1)*mix))
	return nil
}

type engineState struct {
	Located int `json:"located"`
}

// MarshalState implements core.StateAccess.
func (e *Engine) MarshalState() ([]byte, error) {
	return json.Marshal(engineState{Located: e.located})
}

// UnmarshalState implements core.StateAccess.
func (e *Engine) UnmarshalState(data []byte) error {
	var st engineState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	e.located = st.Located
	return nil
}
