package runtime

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/chaos"
	"perpos/internal/checkpoint"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/health"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

// localOf projects a delivered position into the test origin's frame.
func localOf(p positioning.Position) geo.ENU {
	if p.HasLocal {
		return p.Local
	}
	return geo.NewProjection(testOrigin).ToLocal(p.Global)
}

// TestEvictResumeContinuity: a step-driven GPS session is evicted
// (which checkpoints) and resumed — component state, logical clocks and
// the position stream must continue, not restart.
func TestEvictResumeContinuity(t *testing.T) {
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := gpsSessionConfig(t)
	cfg.Checkpoints = store
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	s, err := m.GetOrCreate("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	posBefore, ok := s.Provider().Last()
	if !ok {
		t.Fatal("no position before eviction")
	}
	nBefore, _ := s.Graph().Node("interpreter")
	clockBefore := nBefore.Clock()
	if clockBefore == 0 {
		t.Fatal("interpreter never emitted before eviction")
	}

	if !m.Evict("alice") {
		t.Fatal("evict found no session")
	}
	if m.Len() != 0 {
		t.Fatalf("manager still tracks %d sessions", m.Len())
	}

	s2, err := m.ResumeSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s {
		t.Fatal("resume returned the evicted session")
	}
	n2, _ := s2.Graph().Node("interpreter")
	if n2.Clock() != clockBefore {
		t.Fatalf("resumed interpreter clock = %d, want %d", n2.Clock(), clockBefore)
	}
	if got := s2.Provider().Availability(); got != positioning.Available {
		t.Fatalf("resumed availability = %v, want Available", got)
	}

	// The resumed source continues mid-trace: the next position is one
	// epoch of walking away from the last pre-evict fix, not back at the
	// start of the trace.
	for i := 0; i < 5; i++ {
		if _, err := s2.Step(); err != nil {
			t.Fatal(err)
		}
		if _, ok := s2.Provider().Last(); ok {
			break
		}
	}
	posAfter, ok := s2.Provider().Last()
	if !ok {
		t.Fatal("no position after resume")
	}
	if d := localOf(posAfter).Distance(localOf(posBefore)); d > 25 {
		t.Errorf("first resumed fix %.1f m from last pre-evict fix, want continuity (<= 25 m)", d)
	}
	// Logical time is monotonic across the resume: the interpreter's
	// clock continues past the checkpointed value, never restarts.
	if n2.Clock() <= clockBefore {
		t.Errorf("resumed interpreter clock = %d, want > %d (monotonic)", n2.Clock(), clockBefore)
	}
}

// TestResumeFromCorruptedTail: the newest journal record is damaged on
// disk; resume must fall back to the last good checkpoint (the manual
// mid-run one), not fail.
func TestResumeFromCorruptedTail(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(dir, checkpoint.Options{SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpsSessionConfig(t)
	cfg.Checkpoints = store
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}

	s, err := m.GetOrCreate("bob")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	nMid, _ := s.Graph().Node("interpreter")
	clockMid := nMid.Clock()
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m.Evict("bob") // appends the final (newer) record
	m.Close()
	store.Close()

	// Damage the final record's payload.
	path := filepath.Join(dir, "bob.journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) - 8; i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	cfg2 := gpsSessionConfig(t)
	cfg2.Checkpoints = store2
	m2, err := NewManager(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	s2, err := m2.ResumeSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := s2.Graph().Node("interpreter")
	if n2.Clock() != clockMid {
		t.Fatalf("resumed from corrupted tail: interpreter clock = %d, want %d (the mid-run checkpoint)", n2.Clock(), clockMid)
	}
}

// TestResumeUnknownSession: nothing durable means checkpoint.ErrNoState.
func TestResumeUnknownSession(t *testing.T) {
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := gpsSessionConfig(t)
	cfg.Checkpoints = store
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ResumeSession("ghost"); !errors.Is(err, checkpoint.ErrNoState) {
		t.Fatalf("ResumeSession = %v, want ErrNoState", err)
	}
	if _, ok := m.Get("ghost"); ok {
		t.Fatal("failed resume registered a session")
	}
}

// TestCheckpointUnconfigured: both seams fail cleanly without a store.
func TestCheckpointUnconfigured(t *testing.T) {
	m, err := NewManager(gpsSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.GetOrCreate("carol")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); !errors.Is(err, ErrNoCheckpoints) {
		t.Fatalf("Checkpoint = %v, want ErrNoCheckpoints", err)
	}
	if _, err := m.ResumeSession("carol"); !errors.Is(err, ErrNoCheckpoints) {
		t.Fatalf("ResumeSession = %v, want ErrNoCheckpoints", err)
	}
}

// TestSoakCrashRecovery is the crash-recovery soak: a supervised fusion
// session under a scripted chaos outage checkpoints periodically; the
// process "dies" (no graceful eviction — the durable trail is the
// periodic records plus a torn write at the journal tail), and a fresh
// manager over the same directory resumes the target with position
// continuity inside the filter's convergence bounds and a monotonic
// logical timeline.
func TestSoakCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	b := building.Evaluation()
	n := wifi.DefaultDeployment(b)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	bp, err := catalog.FusionBlueprint(catalog.Deps{Building: b, Database: db}, filter.Config{Particles: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.CorridorWalk(b, 11, 60, time.Second)

	var wifiChaos *chaos.Source
	mkCfg := func(store *checkpoint.Store) SessionConfig {
		return SessionConfig{
			Blueprint: bp,
			Overrides: func(sessionID string) []core.InstantiateOption {
				return []core.InstantiateOption{
					core.WithComponentOverride("gps", func(id string) core.Component {
						return gps.NewReceiver(id, tr, gps.Config{Seed: 21, ColdStart: time.Second})
					}),
					core.WithComponentOverride("wifi", func(id string) core.Component {
						wifiChaos = chaos.WrapSource(wifi.NewSensor(id, n, tr, time.Second, 31))
						return wifiChaos
					}),
				}
			},
			Provider: positioning.ProviderInfo{Technology: "fusion", TypicalAccuracy: 3},
			History:  16,
			Health: &health.Policy{
				MaxConsecutiveErrors: 2,
				Deadlines:            map[string]time.Duration{"wifi": 200 * time.Millisecond},
				RecoveryEmissions:    1,
				ProbeInterval:        10 * time.Millisecond,
				Sweep:                5 * time.Millisecond,
				Restart:              core.RestartPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
			},
			Reroutes:        catalog.FusionDegradation(),
			Checkpoints:     store,
			CheckpointEvery: 25 * time.Millisecond,
		}
	}

	store1, err := checkpoint.Open(dir, checkpoint.Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewManager(mkCfg(store1))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m1.GetOrCreate("soak")
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	s1.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s1.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	// Scripted outage: the WiFi branch dies mid-run and heals later —
	// the declarative form of the chaos scenario.
	script := chaos.Schedule{Steps: []chaos.Step{
		{At: 50 * time.Millisecond, Action: chaos.ActionKill, Target: "wifi"},
		{At: 150 * time.Millisecond, Action: chaos.ActionHeal, Target: "wifi"},
	}}
	scriptDone := script.Start(ctx, map[string]chaos.Controllable{"wifi": wifiChaos})

	waitFor(t, 10*time.Second, "positions before the crash", func() bool {
		return delivered.Load() >= 5
	})
	if err := <-scriptDone; err != nil {
		t.Fatalf("chaos script: %v", err)
	}
	waitFor(t, 10*time.Second, "recovery after the scripted outage", func() bool {
		return s1.Provider().Availability() == positioning.Available
	})
	// Periodic checkpoints must have landed by now.
	waitFor(t, 10*time.Second, "periodic checkpoints on disk", func() bool {
		st, err := store1.Load("soak")
		return err == nil && st.Seq >= 2
	})
	// One explicit checkpoint pins a healthy post-recovery state as the
	// newest record, then the "crash": stop without eviction, so nothing
	// newer is ever written — exactly what a killed process leaves.
	if _, err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckpt, err := store1.Load("soak")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	_ = s1.Stop()
	store1.Close()

	// The kill also tore a frame mid-write at the journal tail.
	f, err := os.OpenFile(filepath.Join(dir, "soak.journal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xC5, 0x9E, 0x40, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The checkpointed particle population is the recovery target: the
	// resumed stream must re-converge around it.
	var pfState struct {
		Particles []filter.Particle `json:"particles"`
	}
	for _, node := range ckpt.Graph.Nodes {
		if node.ID == "particle-filter" {
			if err := json.Unmarshal(node.Component, &pfState); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(pfState.Particles) == 0 {
		t.Fatal("checkpoint carries no particle population")
	}
	var mean geo.ENU
	for _, p := range pfState.Particles {
		mean.East += p.W * p.Pos.East
		mean.North += p.W * p.Pos.North
	}

	// Restart: fresh store, fresh manager, same directory.
	store2, err := checkpoint.Open(dir, checkpoint.Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	m2, err := NewManager(mkCfg(store2))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	s2, err := m2.ResumeSession("soak")
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Provider().Availability(); got != positioning.Available {
		t.Fatalf("resumed availability = %v, want Available (the checkpointed state)", got)
	}
	pfNode, _ := s2.Graph().Node("particle-filter")
	resumedClock := pfNode.Clock()
	if resumedClock == 0 {
		t.Fatal("resumed logical clock is zero — state did not carry over")
	}

	var delivered2 atomic.Int64
	var firstResumed atomic.Pointer[positioning.Position]
	s2.Provider().Subscribe(func(p positioning.Position) {
		firstResumed.CompareAndSwap(nil, &p)
		delivered2.Add(1)
	})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := s2.Start(ctx2, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "positions after the resume", func() bool {
		return delivered2.Load() >= 3
	})
	_ = s2.Stop()

	// Position continuity: the first post-resume estimate stays within
	// the filter's convergence bounds of the checkpointed population
	// (not back at the start of the walk, not re-acquiring from scratch).
	first := firstResumed.Load()
	if first == nil {
		t.Fatal("no resumed position recorded")
	}
	if d := first.Local.Distance(mean); d > 20 {
		t.Errorf("first resumed estimate %.1f m from checkpointed population mean, want <= 20 m", d)
	}
	// Logical time is monotonic across the crash.
	if pfNode.Clock() <= resumedClock {
		t.Errorf("particle-filter clock after resumed run = %d, want > %d (monotonic)", pfNode.Clock(), resumedClock)
	}
}
