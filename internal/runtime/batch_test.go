package runtime

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"perpos/internal/catalog"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

// loopConfig is the batch-contract fixture: an endless deterministic
// receiver so two sessions created under the same ID replay the same
// sentence stream, with pooling switchable.
func loopConfig(t testing.TB, pooled bool) SessionConfig {
	t.Helper()
	bp, err := catalog.GPSBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	return SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			seed := seedFrom(sessionID)
			tr := trace.OutdoorTrack(testOrigin, seed, 4, 200, 1.4, time.Second)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					var opts []gps.ReceiverOption
					if pooled {
						opts = append(opts, gps.WithPooledOutput())
					}
					return gps.NewReceiver(cid, tr, gps.Config{
						Seed:      seed,
						ColdStart: time.Nanosecond,
						Loop:      true,
					}, opts...)
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		History:  64,
	}
}

// collectPositions subscribes a recorder to the session's provider.
func collectPositions(s *Session) *[]positioning.Position {
	var got []positioning.Position
	s.Provider().Subscribe(func(p positioning.Position) { got = append(got, p) })
	return &got
}

// treeSignature flattens every channel's current data tree into a
// stable string: channel ID, then a pre-order walk of component sources
// and detached payload forms.
func treeSignature(t *testing.T, l *channel.Layer) string {
	t.Helper()
	var sb strings.Builder
	for _, c := range l.Channels() {
		tree, ok := c.LastTree()
		if !ok {
			fmt.Fprintf(&sb, "%s: <none>\n", c.ID())
			continue
		}
		fmt.Fprintf(&sb, "%s:", c.ID())
		var walk func(n *channel.TreeNode)
		walk = func(n *channel.TreeNode) {
			s := n.Sample.Detach()
			fmt.Fprintf(&sb, " [%s %s %v @%d]", s.Source, s.Kind, s.Payload, s.Logical)
			for _, ch := range n.Children {
				walk(ch)
			}
		}
		walk(tree.Root)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestBatchedDeliveryMatchesStepByStep is the batching contract: the
// same session driven through StepN (bursted tap delivery) and through
// single Steps (per-emission delivery) must produce identical position
// streams and identical end-state data trees.
func TestBatchedDeliveryMatchesStepByStep(t *testing.T) {
	const steps = 256

	mBatch, err := NewManager(loopConfig(t, true))
	if err != nil {
		t.Fatal(err)
	}
	defer mBatch.Close()
	mSingle, err := NewManager(loopConfig(t, true))
	if err != nil {
		t.Fatal(err)
	}
	defer mSingle.Close()

	sBatch, err := mBatch.GetOrCreate("target-contract")
	if err != nil {
		t.Fatal(err)
	}
	sSingle, err := mSingle.GetOrCreate("target-contract")
	if err != nil {
		t.Fatal(err)
	}

	gotBatch := collectPositions(sBatch)
	gotSingle := collectPositions(sSingle)

	for done := 0; done < steps; done += 32 {
		if _, err := sBatch.StepN(32); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < steps; i++ {
		if _, err := sSingle.Step(); err != nil {
			t.Fatal(err)
		}
	}

	if len(*gotBatch) == 0 {
		t.Fatal("no positions delivered")
	}
	if len(*gotBatch) != len(*gotSingle) {
		t.Fatalf("batched delivered %d positions, single-step %d",
			len(*gotBatch), len(*gotSingle))
	}
	for i := range *gotBatch {
		if (*gotBatch)[i] != (*gotSingle)[i] {
			t.Fatalf("position %d differs:\nbatch:  %+v\nsingle: %+v",
				i, (*gotBatch)[i], (*gotSingle)[i])
		}
	}

	sigBatch := treeSignature(t, sBatch.Layer())
	sigSingle := treeSignature(t, sSingle.Layer())
	if sigBatch != sigSingle {
		t.Errorf("data trees diverge:\nbatch:\n%s\nsingle:\n%s", sigBatch, sigSingle)
	}
	if !strings.Contains(sigBatch, "gps.raw") {
		t.Errorf("tree signature looks empty:\n%s", sigBatch)
	}
}

// TestPooledMatchesLegacyReceiver pins payload-pooling transparency:
// with pooling on and off, the same simulated target must yield exactly
// the same positions.
func TestPooledMatchesLegacyReceiver(t *testing.T) {
	const steps = 200

	mPooled, err := NewManager(loopConfig(t, true))
	if err != nil {
		t.Fatal(err)
	}
	defer mPooled.Close()
	mLegacy, err := NewManager(loopConfig(t, false))
	if err != nil {
		t.Fatal(err)
	}
	defer mLegacy.Close()

	sPooled, err := mPooled.GetOrCreate("target-pool")
	if err != nil {
		t.Fatal(err)
	}
	sLegacy, err := mLegacy.GetOrCreate("target-pool")
	if err != nil {
		t.Fatal(err)
	}

	gotPooled := collectPositions(sPooled)
	gotLegacy := collectPositions(sLegacy)

	if _, err := sPooled.StepN(steps); err != nil {
		t.Fatal(err)
	}
	if _, err := sLegacy.StepN(steps); err != nil {
		t.Fatal(err)
	}

	if len(*gotPooled) == 0 {
		t.Fatal("no positions delivered")
	}
	if len(*gotPooled) != len(*gotLegacy) {
		t.Fatalf("pooled delivered %d positions, legacy %d",
			len(*gotPooled), len(*gotLegacy))
	}
	for i := range *gotPooled {
		if (*gotPooled)[i] != (*gotLegacy)[i] {
			t.Fatalf("position %d differs:\npooled: %+v\nlegacy: %+v",
				i, (*gotPooled)[i], (*gotLegacy)[i])
		}
	}
}

// countingFeature counts channel deliveries; attaching it makes the
// layer eager.
type countingFeature struct{ seen int }

func (f *countingFeature) FeatureName() string          { return "count-trees" }
func (f *countingFeature) Apply(tree *channel.DataTree) { f.seen++ }

// TestBatchedDeliveryWithEagerFeature checks the NeedsSync escape: a
// channel feature makes the layer eager, so bursted StepN must still
// deliver every tree synchronously and the feature must see the same
// stream as under single-stepping.
func TestBatchedDeliveryWithEagerFeature(t *testing.T) {
	run := func(batch bool) (int, []positioning.Position) {
		m, err := NewManager(loopConfig(t, true))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		s, err := m.GetOrCreate("target-eager")
		if err != nil {
			t.Fatal(err)
		}
		f := &countingFeature{}
		err = s.Adapt(func(g *core.Graph, l *channel.Layer) error {
			chans := l.ChannelsFrom("gps")
			if len(chans) == 0 {
				return fmt.Errorf("no channel from gps")
			}
			return chans[0].AttachFeature(f)
		})
		if err != nil {
			t.Fatal(err)
		}
		got := collectPositions(s)
		if batch {
			if _, err := s.StepN(128); err != nil {
				t.Fatal(err)
			}
		} else {
			for i := 0; i < 128; i++ {
				if _, err := s.Step(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return f.seen, *got
	}

	seenBatch, posBatch := run(true)
	seenSingle, posSingle := run(false)
	if seenBatch == 0 {
		t.Fatal("eager feature saw no trees")
	}
	if seenBatch != seenSingle {
		t.Errorf("eager feature saw %d trees batched, %d single-stepped",
			seenBatch, seenSingle)
	}
	if len(posBatch) != len(posSingle) {
		t.Fatalf("positions: %d batched vs %d single", len(posBatch), len(posSingle))
	}
	for i := range posBatch {
		if posBatch[i] != posSingle[i] {
			t.Fatalf("position %d differs with eager feature", i)
		}
	}
}
