package runtime

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perpos/internal/core"
)

// Manager is the sharded session registry: one Session per tracked
// target, all instantiated from the shared blueprint in its
// SessionConfig. It implements positioning.ReleasingSource, so binding
// it to a positioning.Manager (BindSource) makes Track spin up a
// pipeline instance and Untrack reclaim it.
//
// Lock order: shard locks are leaves — no session method and no
// callback (onEvict) runs under a shard lock, so sources bound to a
// positioning.Manager cannot deadlock against it.
type Manager struct {
	cfg     SessionConfig
	set     *core.BlueprintSet
	shards  []shard
	clock   func() time.Time
	onEvict func(s *Session)

	// activeRev is the revision new sessions instantiate. Rollout moves
	// it when the ramp begins (forward) or the canary gate trips (back).
	activeRev atomic.Int64

	// rolloutMu serializes Rollout calls: two concurrent rollouts would
	// fight over the active revision and each other's canaries.
	rolloutMu sync.Mutex
}

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// Option configures a Manager.
type Option func(*Manager)

// WithShards sets the shard count (default 16). More shards cut lock
// contention between unrelated targets; one shard serializes everything.
func WithShards(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.shards = make([]shard, n)
		}
	}
}

// WithClock substitutes the idle-eviction clock (tests).
func WithClock(now func() time.Time) Option {
	return func(m *Manager) {
		if now != nil {
			m.clock = now
		}
	}
}

// WithOnEvict registers a callback fired after a session is removed and
// closed — e.g. to Untrack the target or record churn. It runs outside
// all manager locks.
func WithOnEvict(fn func(s *Session)) Option {
	return func(m *Manager) { m.onEvict = fn }
}

// NewManager returns a session manager for the given config. A lone
// cfg.Blueprint is wrapped into a single-revision set, so every code
// path — including Rollout — sees versioned blueprints; cfg.Blueprints
// takes precedence when both are set.
func NewManager(cfg SessionConfig, opts ...Option) (*Manager, error) {
	set := cfg.Blueprints
	if set == nil {
		if cfg.Blueprint == nil {
			return nil, ErrNoBlueprint
		}
		set = core.NewBlueprintSet("default")
		if _, err := set.Add(cfg.Blueprint); err != nil {
			return nil, err
		}
	}
	if set.Latest() == 0 {
		return nil, ErrNoBlueprint
	}
	m := &Manager{
		cfg:    cfg,
		set:    set,
		shards: make([]shard, 16),
		clock:  time.Now,
	}
	initial := cfg.InitialRevision
	if initial == 0 {
		initial = set.Latest()
	}
	if _, err := set.Revision(initial); err != nil {
		return nil, err
	}
	m.activeRev.Store(int64(initial))
	for _, opt := range opts {
		opt(m)
	}
	if m.cfg.Observability != nil {
		m.cfg.Observability.InitShards(len(m.shards))
	}
	return m, nil
}

// Blueprints returns the manager's revision set (a single-revision
// wrapper when the config supplied a lone Blueprint).
func (m *Manager) Blueprints() *core.BlueprintSet { return m.set }

// ActiveRevision returns the revision new sessions currently
// instantiate.
func (m *Manager) ActiveRevision() int { return int(m.activeRev.Load()) }

// SetActiveRevision points new sessions at the given revision. Live
// sessions are unaffected — Rollout migrates them.
func (m *Manager) SetActiveRevision(rev int) error {
	if _, err := m.set.Revision(rev); err != nil {
		return err
	}
	m.activeRev.Store(int64(rev))
	return nil
}

// activeBlueprint resolves the active revision to its blueprint.
func (m *Manager) activeBlueprint() (int, *core.Blueprint, error) {
	rev := m.ActiveRevision()
	bp, err := m.set.Revision(rev)
	if err != nil {
		return 0, nil, err
	}
	return rev, bp, nil
}

func (m *Manager) shardIndex(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(m.shards)))
}

func (m *Manager) shardFor(id string) *shard {
	return &m.shards[m.shardIndex(id)]
}

// noteCreated / noteRetired keep the hub's lifecycle counters, the
// per-shard live gauges and the per-revision gauges in step with the
// registry.
func (m *Manager) noteCreated(id string, rev int, resumed bool) {
	hub := m.cfg.Observability
	if hub == nil {
		return
	}
	if resumed {
		hub.SessionsResumed.Inc()
	} else {
		hub.SessionsCreated.Inc()
	}
	if g := hub.ShardLive(m.shardIndex(id)); g != nil {
		g.Inc()
	}
	hub.RevisionLive(rev).Inc()
}

func (m *Manager) noteRetired(id string, rev int) {
	hub := m.cfg.Observability
	if hub == nil {
		return
	}
	hub.SessionsEvicted.Inc()
	if g := hub.ShardLive(m.shardIndex(id)); g != nil {
		g.Dec()
	}
	hub.RevisionLive(rev).Dec()
}

// Get returns the live session for the target, if any.
func (m *Manager) Get(id string) (*Session, bool) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// GetOrCreate returns the target's session, instantiating the shared
// blueprint into a new one when the target is untracked. Creation runs
// under the target's shard lock, so concurrent callers for the same ID
// get the same session and the blueprint is instantiated exactly once
// per target; other shards proceed in parallel.
func (m *Manager) GetOrCreate(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if ok {
		s.touch()
		return s, nil
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.sessions[id]; ok {
		s.touch()
		return s, nil
	}
	rev, bp, err := m.activeBlueprint()
	if err != nil {
		return nil, err
	}
	ns, err := newSession(id, rev, bp, m.cfg, m.clock)
	if err != nil {
		return nil, err
	}
	if sh.sessions == nil {
		sh.sessions = make(map[string]*Session)
	}
	sh.sessions[id] = ns
	m.noteCreated(id, rev, false)
	return ns, nil
}

// Evict removes and closes the target's session, checkpointing its
// final state first when a checkpoint store is configured (so the
// target is resumable later via ResumeSession). The checkpoint, the
// close and the onEvict callback run outside the shard lock. It reports
// whether a session existed.
func (m *Manager) Evict(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	m.retire(s)
	return true
}

// retire checkpoints (best effort) and closes an already-deregistered
// session, then fires onEvict. Runs outside all manager locks.
func (m *Manager) retire(s *Session) {
	if m.cfg.Checkpoints != nil {
		// Best effort: a failed final checkpoint must not block eviction,
		// and the previous periodic record (if any) remains recoverable.
		_, _ = s.checkpointFinal()
	}
	s.close()
	m.noteRetired(s.id, s.Revision())
	if m.onEvict != nil {
		m.onEvict(s)
	}
}

// EvictIdle removes and closes every session idle for at least the
// given duration, returning how many were evicted.
func (m *Manager) EvictIdle(olderThan time.Duration) int {
	cutoff := m.clock().Add(-olderThan)
	var victims []*Session
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if !s.LastUsed().After(cutoff) {
				delete(sh.sessions, id)
				victims = append(victims, s)
			}
		}
		sh.mu.Unlock()
	}
	for _, s := range victims {
		m.retire(s)
	}
	return len(victims)
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns the live session IDs, sorted.
func (m *Manager) IDs() []string {
	var out []string
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id := range sh.sessions {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Close evicts every session.
func (m *Manager) Close() {
	for _, id := range m.IDs() {
		m.Evict(id)
	}
}
