package runtime

import (
	"fmt"
	"time"

	"perpos/internal/checkpoint"
	"perpos/internal/positioning"
)

// This file is the durability seam of the session layer: sessions
// checkpoint their PSL state (component state, logical clocks, span
// bookkeeping) plus the provider's JSR-179 availability into the
// configured checkpoint.Store, and the manager resumes evicted or
// crashed sessions from the newest surviving record. Graph STRUCTURE is
// never checkpointed — the shared Blueprint rebuilds it — so resumed
// sessions always run the current pipeline definition with the old
// state rehydrated onto matching node IDs (state for since-removed
// nodes is skipped by core.Graph.RestoreState).

// Checkpoint captures the session's state and appends it durably,
// returning the record's sequence number. Snapshots need a quiescent
// graph, so an active async runner is paused around the capture and
// restarted — the same pause the supervisor uses for graph edits; a
// Step/Run-driven session just holds the run lock. Fails with
// ErrNoCheckpoints when the manager has no store.
func (s *Session) Checkpoint() (uint64, error) {
	if s.store == nil {
		return 0, ErrNoCheckpoints
	}
	var seq uint64
	err := s.pauseAndRun(func() error {
		var err error
		seq, err = s.appendSnapshot()
		return err
	})
	return seq, err
}

// checkpointFinal is the evict-time variant: it stops the runner for
// good (the session is about to close) and captures the state the
// session dies with. The supervisor is stopped first so no graph edit
// interleaves with the teardown.
func (s *Session) checkpointFinal() (uint64, error) {
	if s.store == nil {
		return 0, ErrNoCheckpoints
	}
	if s.supervisor != nil {
		s.supervisor.Stop()
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	r := s.runner
	s.runner = nil
	s.stopCheckpointLoopLocked()
	s.mu.Unlock()
	if r != nil {
		_ = r.Stop()
	}
	return s.appendSnapshot()
}

// appendSnapshot captures the quiescent graph and appends one record.
// Caller holds runMu with no runner active.
func (s *Session) appendSnapshot() (uint64, error) {
	gs, err := s.graph.SnapshotState()
	if err != nil {
		return 0, fmt.Errorf("runtime: checkpoint session %q: %w", s.id, err)
	}
	return s.store.Append(checkpoint.SessionState{
		SessionID:    s.id,
		Taken:        s.clock(),
		Graph:        gs,
		Availability: int(s.provider.Availability()),
		Revision:     s.Revision(),
	})
}

// checkpointLoop periodically checkpoints a running session until its
// stop channel closes. Errors are deliberately dropped: a failed
// periodic checkpoint leaves the previous record in place, and the
// evict-time checkpoint still runs.
func (s *Session) checkpointLoop(stop <-chan struct{}) {
	t := time.NewTicker(s.ckptEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_, _ = s.Checkpoint()
		}
	}
}

// stopCheckpointLoopLocked halts the periodic ticker. Caller holds s.mu.
func (s *Session) stopCheckpointLoopLocked() {
	if s.ckptStop != nil {
		close(s.ckptStop)
		s.ckptStop = nil
	}
}

// Checkpoints returns the manager's checkpoint store (nil when
// checkpointing is disabled).
func (m *Manager) Checkpoints() *checkpoint.Store { return m.cfg.Checkpoints }

// ResumeSession rebuilds the target's session from its newest durable
// checkpoint: the blueprint is instantiated into a fresh, structurally
// current graph, then component state, logical clocks and the
// provider's availability are rehydrated. A torn journal tail is
// transparently skipped by the store (recovery falls back to the last
// intact record or the snapshot file). Returns the live session
// unchanged when the target is already tracked, and
// checkpoint.ErrNoState when nothing durable exists for it.
func (m *Manager) ResumeSession(id string) (*Session, error) {
	store := m.cfg.Checkpoints
	if store == nil {
		return nil, ErrNoCheckpoints
	}
	state, err := store.Load(id)
	if err != nil {
		return nil, err
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.sessions[id]; ok {
		s.touch()
		return s, nil
	}
	// Resume always rehydrates onto the ACTIVE revision, not the one
	// the checkpoint was captured at: state for nodes absent from the
	// active layout is skipped by RestoreState, so a checkpoint taken
	// before a rollout resumes cleanly after it.
	rev, bp, err := m.activeBlueprint()
	if err != nil {
		return nil, err
	}
	s, err := newSession(id, rev, bp, m.cfg, m.clock)
	if err != nil {
		return nil, err
	}
	if err := s.graph.RestoreState(state.Graph); err != nil {
		s.close()
		return nil, fmt.Errorf("runtime: resume session %q: %w", id, err)
	}
	s.provider.SetAvailability(positioning.Availability(state.Availability))
	if sh.sessions == nil {
		sh.sessions = make(map[string]*Session)
	}
	sh.sessions[id] = s
	m.noteCreated(id, rev, true)
	return s, nil
}
