// Package runtime is the multi-tenant session layer between the shared
// pipeline blueprints and the Positioning Layer: one pipeline instance
// per tracked target, spun up on demand from a shared core.Blueprint,
// with the immutable deps (building model, fingerprint database,
// catalog registrations) captured once in the blueprint's factories and
// shared by every instance. Sessions are adapted individually through
// the PSL/PCL — the translucency story of the paper applied per target
// — and evicted when tracking stops or the target idles out.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"perpos/internal/channel"
	"perpos/internal/checkpoint"
	"perpos/internal/core"
	"perpos/internal/health"
	"perpos/internal/obs"
	"perpos/internal/positioning"
	"perpos/internal/rules"
)

// Errors returned by sessions and the manager.
var (
	// ErrClosed indicates use of an evicted session.
	ErrClosed = errors.New("runtime: session closed")
	// ErrStarted indicates Start on an already-running session.
	ErrStarted = errors.New("runtime: session already started")
	// ErrNoBlueprint indicates a manager configured without a blueprint.
	ErrNoBlueprint = errors.New("runtime: config needs a blueprint")
	// ErrNoCheckpoints indicates a checkpoint operation on a manager or
	// session configured without a checkpoint store.
	ErrNoCheckpoints = errors.New("runtime: checkpointing not configured")
)

// SessionConfig describes how the manager turns the shared blueprint
// into one session per target.
type SessionConfig struct {
	// Blueprint is the shared pipeline structure every session
	// instantiates. Its factories close over the immutable shared deps.
	// Internally the manager wraps it into a single-revision
	// BlueprintSet; set Blueprints instead to run a versioned fleet.
	Blueprint *core.Blueprint
	// Blueprints is the versioned alternative to Blueprint: a named set
	// of revisions new sessions instantiate at the manager's active
	// revision, and Manager.Rollout migrates live sessions between.
	// Takes precedence over Blueprint when both are set.
	Blueprints *core.BlueprintSet
	// InitialRevision selects the revision new sessions start on
	// (0 = the set's latest at manager construction). Manager.Rollout
	// moves the active revision as it ramps.
	InitialRevision int
	// Overrides supplies the per-session instantiate options — typically
	// core.WithComponentOverride for the blueprint's sensor placeholders,
	// seeded or bound per target. May be nil when the blueprint has no
	// placeholders beyond the sink.
	Overrides func(sessionID string) []core.InstantiateOption
	// SinkID names the placeholder slot the manager terminates with a
	// positioning.Provider sink (default "app"). The manager's sink
	// override is applied last and wins over Overrides for this slot.
	SinkID string
	// Provider describes each session's provider for criteria matching.
	Provider positioning.ProviderInfo
	// History bounds the channel layer's per-component sample history
	// (0 keeps channel.NewLayer's default). Multi-tenant deployments
	// want this small: history is the dominant per-session allocation.
	History int
	// InboxCapacity configures the async runner started by
	// Session.Start (0 keeps the runner default of 1).
	InboxCapacity int
	// Health enables per-session supervision: a health.Monitor observes
	// the session's runner and graph taps, and a health.Supervisor
	// sweeps its breakers, restarts failed sources with backoff, and
	// drives the provider's JSR-179 availability state. Nil disables
	// supervision (no overhead).
	Health *health.Policy
	// Reroutes are the degradation rules the supervisor applies through
	// the session's own PSL graph when a watched node trips its breaker
	// (requires Health).
	Reroutes []health.Reroute
	// Checkpoints enables durable session state: evict-time and manual
	// checkpoints are appended to this store, and Manager.ResumeSession
	// rehydrates sessions from it. Nil disables checkpointing.
	Checkpoints *checkpoint.Store
	// CheckpointEvery additionally checkpoints running (async) sessions
	// on this period; 0 disables the ticker (evict-time and manual
	// checkpoints still happen).
	CheckpointEvery time.Duration
	// Observability wires every session into a shared metrics hub:
	// emission taps, per-node process latency (async runner), data-tree
	// depths, provider availability transitions, supervisor reroute
	// counts and session lifecycle counters. Nil disables instrumentation
	// entirely — no hooks are installed and the hot path is untouched.
	Observability *obs.Metrics
	// Rules enables declarative self-adaptation: each session gets a
	// rules.Engine evaluating the rule set on the supervisor sweep and
	// applying reversible graph edits through the session's own
	// pause-edit-resume seam. A session with rules always runs a
	// monitor and supervisor (with the default health.Policy when
	// Health is nil) so the sweep exists to piggyback on.
	Rules []rules.Rule
	// Trace instruments every session graph with span tracing
	// (obs.InstrumentGraph). With Observability set, each sink delivery
	// then feeds the end-to-end latency histogram derived from the
	// delivery's data tree. Off by default: tracing stamps an attribute
	// per emission, which the saturated hot path doesn't want.
	Trace bool
}

// Session is one target's live pipeline: a private graph instantiated
// from the shared blueprint, its channel-layer view, and the provider
// the Positioning Layer hands to applications.
type Session struct {
	id       string
	graph    *core.Graph
	layer    *channel.Layer
	provider *positioning.Provider
	sinkID   string
	inboxCap int
	clock    func() time.Time

	// instOpts rebuilds the per-session instantiate options (overrides
	// + sink binding) — needed again at migration time, when changed
	// placeholder slots of the new revision are re-resolved.
	instOpts func() []core.InstantiateOption

	monitor    *health.Monitor
	supervisor *health.Supervisor
	tapCancel  func()

	rules          *rules.Engine
	rulesTapCancel func()

	metrics      *obs.Metrics
	obsObserver  *obs.GraphObserver
	obsTapCancel func()
	availCancel  func()

	store     *checkpoint.Store
	ckptEvery time.Duration

	// runMu serialises propagation (Run/Step/async runner lifecycle)
	// against supervisor-applied graph edits. Lock order: runMu → mu.
	runMu      sync.Mutex
	runCtx     context.Context
	runnerOpts []core.RunnerOption

	mu       sync.Mutex
	runner   *core.Runner
	ckptStop chan struct{}
	lastUsed time.Time
	closed   bool
	rev      int
}

// newSession instantiates revision rev of the manager's blueprint set
// into a fresh session.
func newSession(id string, rev int, bp *core.Blueprint, cfg SessionConfig, clock func() time.Time) (*Session, error) {
	s := &Session{
		id:        id,
		rev:       rev,
		sinkID:    cfg.SinkID,
		inboxCap:  cfg.InboxCapacity,
		clock:     clock,
		store:     cfg.Checkpoints,
		ckptEvery: cfg.CheckpointEvery,
	}
	if s.sinkID == "" {
		s.sinkID = "app"
	}
	// The provider's feature lookup goes through the session's channel
	// layer, so Channel Features installed per session stay reachable
	// from the Positioning Layer (translucency per target).
	s.provider = positioning.NewProvider(id, cfg.Provider, s.feature)

	s.instOpts = func() []core.InstantiateOption {
		var opts []core.InstantiateOption
		if cfg.Overrides != nil {
			opts = cfg.Overrides(id)
		}
		return append(opts, core.WithComponentOverride(s.sinkID, func(cid string) core.Component {
			return positioning.NewProviderSink(cid, s.provider)
		}))
	}
	g, err := bp.Instantiate(s.instOpts()...)
	if err != nil {
		return nil, fmt.Errorf("runtime: session %q: %w", id, err)
	}
	if cfg.Trace {
		if err := obs.InstrumentGraph(g); err != nil {
			return nil, fmt.Errorf("runtime: session %q: instrument: %w", id, err)
		}
	}
	var layerOpts []channel.LayerOption
	if cfg.History > 0 {
		layerOpts = append(layerOpts, channel.WithHistory(cfg.History))
	}
	if m := cfg.Observability; m != nil {
		traced := cfg.Trace
		layerOpts = append(layerOpts, channel.WithTreeObserver(func(_ *channel.Channel, t *channel.DataTree) {
			m.ObserveTreeDepth(t.Depth())
			if traced {
				if d, ok := obs.TreeLatency(t); ok {
					m.E2ELatencyNs.ObserveDuration(d)
				}
			}
		}))
	}
	s.graph = g
	s.layer = channel.NewLayer(g, layerOpts...)
	s.lastUsed = clock()

	// Rules need a supervisor sweep to piggyback on, so a rule-bearing
	// session gets the default supervision policy even without Health.
	if cfg.Health != nil || len(cfg.Rules) > 0 {
		pol := health.Policy{}
		if cfg.Health != nil {
			pol = *cfg.Health
		}
		s.monitor = health.NewMonitor(pol)
		s.supervisor = health.NewSupervisor(s.monitor, health.AdapterFunc(s.applyEdit), cfg.Reroutes)
		s.tapCancel = g.Tap(s.monitor.Tap)
		// Supervisor events drive the provider's JSR-179 state: any open
		// breaker makes the provider temporarily unavailable; all clear
		// makes it available again. Runs on the supervisor goroutine.
		s.supervisor.OnEvent(func(health.Event) {
			if s.monitor.AnyDown() {
				s.provider.SetAvailability(positioning.TemporarilyUnavailable)
			} else {
				s.provider.SetAvailability(positioning.Available)
			}
		})
	}
	if m := cfg.Observability; m != nil {
		s.metrics = m
		// The graph observer wraps the monitor (when present) so the
		// single runner-observer slot serves supervision and metrics.
		var inner core.RunnerObserver
		if s.monitor != nil {
			inner = s.monitor
		}
		s.obsObserver = obs.NewGraphObserver(m, inner)
		// Batch-capable: StepN bursts hand the observer whole runs of
		// emissions so counter updates aggregate per component.
		s.obsTapCancel = g.TapBatch(s.obsObserver)
		s.availCancel = s.provider.NotifyAvailability(func(a positioning.Availability) {
			m.ProviderTransition(a.String())
		})
		if s.supervisor != nil {
			s.supervisor.OnReroute(func(engaged bool) {
				if engaged {
					m.SupervisorEngaged.Inc()
				} else {
					m.SupervisorDisengaged.Inc()
				}
			})
		}
	}
	if len(cfg.Rules) > 0 {
		eng, err := rules.New(rules.Config{
			Rules:   cfg.Rules,
			Adapter: health.AdapterFunc(s.applyEdit),
			Monitor: s.monitor,
			Claimer: s.supervisor,
			Availability: func() float64 {
				return float64(s.provider.Availability())
			},
		})
		if err != nil {
			return nil, fmt.Errorf("runtime: session %q: %w", id, err)
		}
		s.rules = eng
		if eng.NeedsTap() {
			s.rulesTapCancel = g.Tap(eng.Tap)
		}
		// Evaluation rides the supervisor sweep, after the supervisor
		// has reconciled its own reroutes — rules see the claims of the
		// same instant and always yield to them.
		s.supervisor.OnSweep(eng.Sweep)
		if m := cfg.Observability; m != nil {
			eng.OnEvent(func(ev rules.Event) {
				switch ev.Type {
				case rules.EventEngaged:
					m.RulesEngaged.Inc()
				case rules.EventDisengaged:
					m.RulesDisengaged.Inc()
				case rules.EventQuarantined:
					m.RulesQuarantined.Inc()
				case rules.EventRolledBack:
					m.RulesRolledBack.Inc()
				case rules.EventDeferred:
					m.RulesDeferred.Inc()
				}
			})
		}
	}
	return s, nil
}

// ID returns the session's target ID.
func (s *Session) ID() string { return s.id }

// Graph returns the session's private pipeline instance.
func (s *Session) Graph() *core.Graph { return s.graph }

// Layer returns the session's channel-layer view.
func (s *Session) Layer() *channel.Layer { return s.layer }

// Provider returns the provider delivering this session's positions.
func (s *Session) Provider() *positioning.Provider { return s.provider }

// feature resolves a named feature through the channel delivering into
// the session's sink — the provider's FeatureLookup.
func (s *Session) feature(name string) (any, bool) {
	if c, ok := s.layer.ChannelInto(s.sinkID, 0); ok {
		if f, ok := c.Feature(name); ok {
			return f, true
		}
	}
	// Fall back to any channel in the session (merge inputs etc.).
	for _, c := range s.layer.Channels() {
		if f, ok := c.Feature(name); ok {
			return f, true
		}
	}
	return nil, false
}

// Adapt applies a structural or feature change to this session only —
// the per-target PSL seam. The channel layer is refreshed afterwards so
// Channel Features survive the edit. Fails with core.ErrRunning while
// the session's async runner is active.
func (s *Session) Adapt(fn func(g *core.Graph, l *channel.Layer) error) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := fn(s.graph, s.layer); err != nil {
		return err
	}
	s.layer.Refresh()
	s.lastUsed = s.clock()
	return nil
}

// Monitor returns the session's health monitor (nil when supervision
// is disabled).
func (s *Session) Monitor() *health.Monitor { return s.monitor }

// Supervisor returns the session's supervisor (nil when supervision is
// disabled).
func (s *Session) Supervisor() *health.Supervisor { return s.supervisor }

// Rules returns the session's self-adaptation engine (nil when no
// rules are configured).
func (s *Session) Rules() *rules.Engine { return s.rules }

// pauseAndRun is the shared pause→edit→resume seam: the graph is
// frozen while the async runner is active, so the runner (if any) is
// stopped, fn runs against the quiescent graph, and a fresh runner is
// started with the saved context and options. Supervisor edits, manual
// checkpoints and revision migrations all go through here. fn's error
// does not abort the resume; a restart failure is joined onto it.
func (s *Session) pauseAndRun(fn func() error) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	r := s.runner
	ctx, opts := s.runCtx, s.runnerOpts
	s.mu.Unlock()
	if r != nil {
		// Drained run errors were already reported to the observer; a
		// pause for adaptation is not a failure of the edit.
		_ = r.Stop()
	}
	err := fn()
	if r != nil {
		s.mu.Lock()
		if s.closed || s.runner != r {
			// Closed or stopped while paused: don't resurrect the runner.
			s.mu.Unlock()
			return err
		}
		nr := core.NewRunner(s.graph, opts...)
		if serr := nr.Start(ctx); serr != nil {
			s.runner = nil
			s.mu.Unlock()
			return errors.Join(err, serr)
		}
		s.runner = nr
		s.mu.Unlock()
	}
	return err
}

// applyEdit is the supervisor's Adapter: pause, apply the edit, refresh
// the channel layer, resume. Runs on the supervisor goroutine, never on
// engine goroutines.
func (s *Session) applyEdit(edit func(*core.Graph) error) error {
	return s.pauseAndRun(func() error {
		err := edit(s.graph)
		s.layer.Refresh()
		return err
	})
}

// Revision returns the blueprint revision the session currently runs.
func (s *Session) Revision() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// migrate maps the session's live graph onto revision `to` of the set
// through the pause seam: the runner is paused, the cached migration
// plan applied in place (unchanged nodes keep their instances and
// state; changed subgraphs are re-instantiated with the session's own
// overrides), the channel layer refreshed, and the runner resumed. On
// a failed plan application the graph has already been rolled back to
// the old revision with state restored (core.MigrationPlan.Apply), so
// the session keeps serving either way.
func (s *Session) migrate(set *core.BlueprintSet, to int) error {
	return s.pauseAndRun(func() error {
		s.mu.Lock()
		from := s.rev
		s.mu.Unlock()
		if from == to {
			return nil
		}
		if err := set.Migrate(s.graph, from, to, s.instOpts()...); err != nil {
			s.layer.Refresh()
			return fmt.Errorf("runtime: migrate session %q %d->%d: %w", s.id, from, to, err)
		}
		s.layer.Refresh()
		s.mu.Lock()
		s.rev = to
		s.lastUsed = s.clock()
		s.mu.Unlock()
		return nil
	})
}

// Run drives the session synchronously until its sources are exhausted
// (or maxTicks), returning the number of source steps taken. Propagation
// holds the run lock, so supervisor edits never interleave a tick.
func (s *Session) Run(maxTicks int) (int, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	s.lastUsed = s.clock()
	s.mu.Unlock()
	return s.graph.Run(maxTicks)
}

// Step advances every source in the session by one sample.
func (s *Session) Step() (bool, error) {
	return s.StepN(1)
}

// stepBatchFlush bounds how long a burst-buffered emission may wait for
// batch observers while StepN is driving: the burst is also flushed
// between source steps once this deadline passes, so even a slow
// (externally paced) StepN caller adds at most one step plus this bound
// of observer latency.
const stepBatchFlush = 2 * time.Millisecond

// StepN advances every source in the session n times under a single
// lock acquisition, amortizing the per-step run-lock and idle-clock
// cost — the batched drive loop for saturated (unpaced) workloads. It
// stops early once the sources are exhausted. Supervisor edits never
// interleave a batch: like Run, propagation holds the run lock.
//
// Multi-step drives additionally open a tap burst (DESIGN.md §13):
// batch-capable observers (the channel layer, metrics) absorb the whole
// run of emissions in amortized calls instead of paying their locks per
// sample. The run lock held here is what makes the burst safe — no
// feature attach/detach or structural edit can interleave it.
func (s *Session) StepN(n int) (bool, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	s.lastUsed = s.clock()
	s.mu.Unlock()
	var burst *core.Burst
	if n > 1 {
		burst = s.graph.BeginBurst(stepBatchFlush)
		defer burst.End()
	}
	more := true
	for i := 0; i < n && more; i++ {
		var err error
		more, err = s.graph.StepAll()
		if err != nil {
			return more, err
		}
		burst.FlushIfStale()
	}
	return more, nil
}

// Start launches the session's async runner (one goroutine per
// component, bounded inboxes sized by SessionConfig.InboxCapacity).
func (s *Session) Start(ctx context.Context, opts ...core.RunnerOption) error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.runner != nil {
		return ErrStarted
	}
	if s.inboxCap > 0 {
		opts = append([]core.RunnerOption{core.WithInboxCapacity(s.inboxCap)}, opts...)
	}
	switch {
	case s.obsObserver != nil:
		// Wraps the monitor when supervision is on; with it off the
		// observer still feeds error/latency metrics.
		opts = append(opts, core.WithRunnerObserver(s.obsObserver))
	case s.monitor != nil:
		opts = append(opts, core.WithRunnerObserver(s.monitor))
	}
	if s.monitor != nil {
		opts = append(opts, core.WithSourceRestart(s.monitor.Policy().Restart))
	}
	r := core.NewRunner(s.graph, opts...)
	if err := r.Start(ctx); err != nil {
		return err
	}
	s.runner = r
	s.runCtx = ctx
	s.runnerOpts = opts
	s.lastUsed = s.clock()
	if s.supervisor != nil {
		s.supervisor.Start(ctx)
	}
	if s.store != nil && s.ckptEvery > 0 {
		stop := make(chan struct{})
		s.ckptStop = stop
		go s.checkpointLoop(stop)
	}
	return nil
}

// WaitSources blocks until the running session's sources are exhausted
// and in-flight samples have drained.
func (s *Session) WaitSources() {
	s.mu.Lock()
	r := s.runner
	s.mu.Unlock()
	if r != nil {
		r.WaitSources()
	}
}

// Stop halts the session's supervisor, checkpoint ticker and async
// runner.
func (s *Session) Stop() error {
	if s.supervisor != nil {
		s.supervisor.Stop()
	}
	s.mu.Lock()
	r := s.runner
	s.runner = nil
	s.stopCheckpointLoopLocked()
	s.mu.Unlock()
	if r == nil {
		return nil
	}
	return r.Stop()
}

// LastUsed reports when the session last served a call — the idle
// eviction clock.
func (s *Session) LastUsed() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed
}

// touch refreshes the idle clock.
func (s *Session) touch() {
	s.mu.Lock()
	s.lastUsed = s.clock()
	s.mu.Unlock()
}

// close tears the session down: the supervisor and runner are stopped,
// the channel layer detached, and the provider retired to OutOfService.
// Idempotent.
func (s *Session) close() {
	// Stop the supervisor before taking locks: its sweep goroutine may
	// be inside applyEdit, which needs both session locks to finish.
	if s.supervisor != nil {
		s.supervisor.Stop()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	r := s.runner
	s.runner = nil
	s.stopCheckpointLoopLocked()
	s.mu.Unlock()
	if r != nil {
		_ = r.Stop()
	}
	if s.tapCancel != nil {
		s.tapCancel()
	}
	if s.rulesTapCancel != nil {
		s.rulesTapCancel()
	}
	if s.obsTapCancel != nil {
		s.obsTapCancel()
	}
	s.layer.Close()
	s.provider.SetAvailability(positioning.OutOfService)
	if s.availCancel != nil {
		s.availCancel()
	}
}
