package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"perpos/internal/obs"
)

// This file is the fleet-wide adaptation driver: Rollout migrates every
// live session from the active revision to a target revision of the
// manager's BlueprintSet through a canary → gate → ramp state machine,
// rolling the canaries back when the observability gate trips. Each
// individual session migration goes through Session.migrate — the
// pause→Adapt→resume seam — so sessions keep serving throughout and a
// failed per-session migration leaves that session on its old revision
// with state restored.

// ErrRolloutRolledBack is returned (wrapped, with the gate's reason) by
// Rollout when the canary gate trips and the canaries were reverted.
var ErrRolloutRolledBack = errors.New("runtime: rollout rolled back")

// GateConfig bounds what the canary cohort may do to the watched nodes'
// metrics during the canary window before the ramp is allowed.
type GateConfig struct {
	// Nodes are the node IDs whose error counters and process-latency
	// histograms the gate watches. Empty defaults to the revision diff's
	// Added ∪ Replaced components — the nodes that exist (or changed)
	// only because of the new revision, so their deltas are attributable
	// to the canaries.
	Nodes []string
	// MaxErrors is the maximum tolerated increase, summed across watched
	// nodes, of the per-node Errors counter over the canary window.
	// Exceeding it trips the gate. 0 means any new error trips.
	MaxErrors uint64
	// MaxP99 bounds the p99 process latency of the watched nodes over
	// the canary window (computed from histogram deltas, so pre-rollout
	// traffic does not pollute it). 0 disables the latency check.
	MaxP99 time.Duration
}

// RolloutConfig parameterises one Manager.Rollout run.
type RolloutConfig struct {
	// To is the target revision. Required.
	To int
	// CanaryFraction is the fraction of live sessions migrated first
	// (deterministically: the sorted-ID prefix). Clamped to (0,1];
	// 0 defaults to 0.05. At least one session canaries when any exist.
	CanaryFraction float64
	// CanaryWindow is how long the canaries run before the gate is
	// evaluated. 0 skips the soak (the gate still samples, so a
	// migration-time error burst is caught).
	CanaryWindow time.Duration
	// Gate bounds the canary cohort's observed behavior. With no
	// Observability hub configured the rollout is ungated: canaries
	// always pass.
	Gate GateConfig
	// Concurrency bounds parallel per-session migrations during the
	// ramp (default 8).
	Concurrency int
	// Log, when set, receives human-readable progress lines.
	Log func(format string, args ...any)
}

// RolloutReport summarises a finished Rollout.
type RolloutReport struct {
	From, To   int
	Sessions   int    // live sessions when the rollout began
	Canaries   int    // sessions in the canary cohort
	Upgraded   int    // sessions migrated to To (canaries included)
	Reverted   int    // canaries migrated back after a gate trip
	Failed     int    // sessions whose migration errored (left on From)
	RolledBack bool   // the gate tripped and the rollout was undone
	Reason     string // why the gate tripped (empty on success)
}

// gateSample is the watched nodes' metric state at one instant.
type gateSample struct {
	errors  map[string]uint64
	latency map[string]obs.HistogramState
}

// Rollout migrates the live fleet from the active revision to cfg.To:
// a deterministic canary cohort first, then — after the canary window
// passes the observability gate — the active revision moves forward and
// the remainder ramps in bounded-concurrency batches, sweeping sessions
// created mid-ramp until the fleet converges. A tripped gate migrates
// the canaries back and returns ErrRolloutRolledBack with the report;
// the active revision never moved, so no session is left ahead of it.
// Rollouts are serialized; ctx cancellation aborts between batches.
func (m *Manager) Rollout(ctx context.Context, cfg RolloutConfig) (RolloutReport, error) {
	m.rolloutMu.Lock()
	defer m.rolloutMu.Unlock()

	from := m.ActiveRevision()
	rep := RolloutReport{From: from, To: cfg.To}
	if _, err := m.set.Revision(cfg.To); err != nil {
		return rep, err
	}
	if cfg.To == from {
		return rep, nil
	}
	diff, err := m.set.Diff(from, cfg.To)
	if err != nil {
		return rep, err
	}

	hub := m.cfg.Observability
	if hub != nil {
		hub.RolloutsStarted.Inc()
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	ids := m.IDs() // sorted
	rep.Sessions = len(ids)
	canaries := ids[:canaryCount(len(ids), cfg.CanaryFraction)]
	rep.Canaries = len(canaries)
	logf("rollout %s %d->%d: %d sessions, %d canaries",
		m.set.Name(), from, cfg.To, len(ids), len(canaries))

	watch := cfg.Gate.Nodes
	if len(watch) == 0 {
		watch = append(append([]string{}, diff.Added...), diff.Replaced...)
		sort.Strings(watch)
	}

	before := m.sampleGate(watch)
	up, failed := m.migrateBatch(ctx, canaries, cfg.To, cfg.Concurrency, false)
	rep.Upgraded += up
	rep.Failed += failed

	if err := soak(ctx, cfg.CanaryWindow); err != nil {
		rep.RolledBack, rep.Reason = true, "canceled during canary window"
		rep.Reverted = m.revertCanaries(canaries, from, cfg.Concurrency)
		rep.Upgraded -= rep.Reverted
		if hub != nil {
			hub.RolloutsRolledBack.Inc()
		}
		return rep, errors.Join(ErrRolloutRolledBack, err)
	}
	if reason := m.checkGate(cfg.Gate, watch, before); reason != "" {
		logf("rollout gate tripped: %s", reason)
		rep.RolledBack, rep.Reason = true, reason
		rep.Reverted = m.revertCanaries(canaries, from, cfg.Concurrency)
		rep.Upgraded -= rep.Reverted
		if hub != nil {
			hub.RolloutsRolledBack.Inc()
		}
		return rep, fmt.Errorf("%w: %s", ErrRolloutRolledBack, reason)
	}

	// Canaries passed: new sessions instantiate the target revision from
	// here on, and the rest of the fleet ramps. Sessions created in the
	// window between IDs() and SetActiveRevision are caught by the
	// straggler sweep below.
	if err := m.SetActiveRevision(cfg.To); err != nil {
		return rep, err
	}
	logf("rollout ramping: active revision now %d", cfg.To)

	rest := ids[len(canaries):]
	up, failed = m.migrateBatch(ctx, rest, cfg.To, cfg.Concurrency, false)
	rep.Upgraded += up
	rep.Failed += failed

	// Straggler sweep: sessions created on the old revision while the
	// ramp ran. Bounded passes — each pass only sees sessions that
	// raced the previous one, so the set shrinks fast.
	for pass := 0; pass < 3; pass++ {
		stragglers := m.sessionsOnRevision(from)
		if len(stragglers) == 0 {
			break
		}
		logf("rollout sweep %d: %d stragglers", pass+1, len(stragglers))
		up, failed = m.migrateBatch(ctx, stragglers, cfg.To, cfg.Concurrency, false)
		rep.Upgraded += up
		rep.Failed += failed
		if err := ctx.Err(); err != nil {
			return rep, err
		}
	}

	if hub != nil {
		hub.RolloutsCompleted.Inc()
	}
	logf("rollout complete: %d upgraded, %d failed", rep.Upgraded, rep.Failed)
	return rep, nil
}

// canaryCount sizes the canary cohort: max(1, frac×n), default 5%.
func canaryCount(n int, frac float64) int {
	if n == 0 {
		return 0
	}
	if frac <= 0 {
		frac = 0.05
	}
	if frac > 1 {
		frac = 1
	}
	c := int(frac * float64(n))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// soak waits out the canary window, aborting on ctx cancellation.
func soak(ctx context.Context, window time.Duration) error {
	if window <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(window)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// sampleGate captures the watched nodes' error counters and latency
// histogram state. Returns an empty sample when unobserved.
func (m *Manager) sampleGate(nodes []string) gateSample {
	s := gateSample{
		errors:  make(map[string]uint64, len(nodes)),
		latency: make(map[string]obs.HistogramState, len(nodes)),
	}
	hub := m.cfg.Observability
	if hub == nil {
		return s
	}
	for _, id := range nodes {
		nm := hub.Node(id)
		s.errors[id] = nm.Errors.Value()
		s.latency[id] = nm.ProcessNs.State()
	}
	return s
}

// checkGate evaluates the canary window's metric deltas against the
// gate, returning a non-empty reason when it trips. No hub → no gate.
func (m *Manager) checkGate(gate GateConfig, nodes []string, before gateSample) string {
	hub := m.cfg.Observability
	if hub == nil {
		return ""
	}
	after := m.sampleGate(nodes)
	var errDelta uint64
	for _, id := range nodes {
		if d := after.errors[id] - before.errors[id]; d <= after.errors[id] {
			errDelta += d
		}
	}
	if errDelta > gate.MaxErrors {
		return fmt.Sprintf("errors +%d > max %d on watched nodes", errDelta, gate.MaxErrors)
	}
	if gate.MaxP99 > 0 {
		for _, id := range nodes {
			p99 := time.Duration(obs.DeltaQuantile(before.latency[id], after.latency[id], 0.99))
			if p99 > gate.MaxP99 {
				return fmt.Sprintf("node %q p99 %v > max %v", id, p99, gate.MaxP99)
			}
		}
	}
	return ""
}

// migrateBatch migrates the given sessions to rev with bounded
// concurrency, returning (migrated, failed). Sessions that vanished or
// closed mid-rollout are skipped silently — eviction is not a rollout
// failure. revert marks the migrations as canary reversions for the
// rollout counters.
func (m *Manager) migrateBatch(ctx context.Context, ids []string, rev, concurrency int, revert bool) (migrated, failed int) {
	if concurrency <= 0 {
		concurrency = 8
	}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		sem  = make(chan struct{}, concurrency)
		hub  = m.cfg.Observability
		done = ctx.Done()
	)
	for _, id := range ids {
		select {
		case <-done:
			wg.Wait()
			return migrated, failed
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			defer func() { <-sem }()
			ok, err := m.migrateSession(id, rev, revert)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				failed++
				if hub != nil {
					hub.RolloutFailed.Inc()
				}
			case ok:
				migrated++
			}
		}(id)
	}
	wg.Wait()
	return migrated, failed
}

// migrateSession migrates one live session to rev, moving its
// per-revision live gauge and counting the outcome. Returns (false,
// nil) when the session is gone or already there — not a failure.
func (m *Manager) migrateSession(id string, rev int, revert bool) (bool, error) {
	s, ok := m.Get(id)
	if !ok {
		return false, nil
	}
	from := s.Revision()
	if from == rev {
		return false, nil
	}
	if err := s.migrate(m.set, rev); err != nil {
		if errors.Is(err, ErrClosed) {
			return false, nil // evicted mid-rollout
		}
		return false, err
	}
	if hub := m.cfg.Observability; hub != nil {
		hub.RevisionLive(from).Dec()
		hub.RevisionLive(rev).Inc()
		if revert {
			hub.RolloutReverted.Inc()
		} else {
			hub.RolloutUpgraded.Inc()
		}
	}
	return true, nil
}

// revertCanaries migrates the canary cohort back to the old revision
// after a gate trip. Runs ungated and without ctx — a rollback must
// finish even when the rollout's context died.
func (m *Manager) revertCanaries(ids []string, from, concurrency int) int {
	reverted, _ := m.migrateBatch(context.Background(), ids, from, concurrency, true)
	return reverted
}

// sessionsOnRevision returns the sorted IDs of live sessions currently
// on the given revision.
func (m *Manager) sessionsOnRevision(rev int) []string {
	var out []string
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id, s := range sh.sessions {
			if s.Revision() == rev {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
