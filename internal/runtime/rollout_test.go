package runtime

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/chaos"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/gps"
	"perpos/internal/obs"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

// fusionUpgradeConfig is the rolling-upgrade fixture: the catalog's
// two-revision set (rev 1 GPS-only, rev 2 GPS+WiFi fusion), per-target
// simulated sensors. The wifi override is OPTIONAL: revision 1 has no
// wifi slot, so the same override set must serve both revisions —
// exactly the seam WithOptionalOverride exists for. makeWifi lets
// tests substitute the wifi sensor (e.g. a chaos-wrapped one).
func fusionUpgradeConfig(tb testing.TB, makeWifi func(id string, seed int64) core.Component) SessionConfig {
	tb.Helper()
	b := building.Evaluation()
	n := wifi.DefaultDeployment(b)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	set, err := catalog.FusionUpgradeSet(
		catalog.Deps{Building: b, Database: db},
		filter.Config{Particles: 50, Seed: 2},
	)
	if err != nil {
		tb.Fatal(err)
	}
	tr := trace.CorridorWalk(b, 11, 60, time.Second)
	if makeWifi == nil {
		makeWifi = func(id string, seed int64) core.Component {
			return wifi.NewSensor(id, n, tr, time.Second, seed)
		}
	}
	return SessionConfig{
		Blueprints:      set,
		InitialRevision: 1, // the fleet starts on the GPS-only pipeline
		Overrides: func(sessionID string) []core.InstantiateOption {
			seed := seedFrom(sessionID)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(id string) core.Component {
					return gps.NewReceiver(id, tr, gps.Config{Seed: seed})
				}),
				core.WithOptionalOverride("wifi", func(id string) core.Component {
					return makeWifi(id, seed)
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "fusion", TypicalAccuracy: 3},
		History:  16,
	}
}

// TestFusionUpgradeSetShape pins the catalog set's migration surface:
// the GPS chain is Unchanged between the revisions (identity tags +
// shared factories), only the wifi branch and the filter are added, and
// the reverse diff mirrors it.
func TestFusionUpgradeSetShape(t *testing.T) {
	b := building.Evaluation()
	db := wifi.Survey(wifi.DefaultDeployment(b), 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	set, err := catalog.FusionUpgradeSet(catalog.Deps{Building: b, Database: db}, filter.Config{Particles: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if set.Latest() != 2 {
		t.Fatalf("Latest = %d, want 2", set.Latest())
	}
	d, err := set.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantAdded := []string{"particle-filter", "wifi", "wifi-positioning"}
	wantKept := []string{"app", "gps", "interpreter", "parser"}
	if !reflect.DeepEqual(d.Added, wantAdded) {
		t.Errorf("Added = %v, want %v", d.Added, wantAdded)
	}
	if !reflect.DeepEqual(d.Unchanged, wantKept) {
		t.Errorf("Unchanged = %v, want %v", d.Unchanged, wantKept)
	}
	if len(d.Removed) != 0 || len(d.Replaced) != 0 {
		t.Errorf("Removed/Replaced = %v/%v, want none", d.Removed, d.Replaced)
	}
	// The HDOP feature is identity-tagged in both revisions: no churn.
	if len(d.AttachFeatures) != 0 || len(d.DetachFeatures) != 0 {
		t.Errorf("feature churn = %v/%v, want none", d.AttachFeatures, d.DetachFeatures)
	}
	back, err := set.Diff(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Removed, wantAdded) {
		t.Errorf("reverse Removed = %v, want %v", back.Removed, wantAdded)
	}
}

// TestRolloutFleetUpgrade is the tentpole e2e: 100 live async sessions
// on the GPS-only revision roll to the fusion revision through canary →
// gate → ramp. Zero sessions drop, every session lands on revision 2
// with its runner still delivering positions, and the obs hub's rollout
// counters and per-revision gauges track the fleet exactly.
func TestRolloutFleetUpgrade(t *testing.T) {
	const fleet = 100
	cfg := fusionUpgradeConfig(t, nil)
	hub := obs.New()
	cfg.Observability = hub
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.ActiveRevision(); got != 1 {
		t.Fatalf("initial active revision = %d, want 1", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	for i := 0; i < fleet; i++ {
		s, err := m.GetOrCreate(fmt.Sprintf("target-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })
		if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if got := hub.RevisionLive(1).Value(); got != fleet {
		t.Fatalf("revision 1 gauge = %d, want %d", got, fleet)
	}
	waitFor(t, 10*time.Second, "pre-rollout positions", func() bool {
		return delivered.Load() >= fleet
	})

	rep, err := m.Rollout(ctx, RolloutConfig{
		To:             2,
		CanaryFraction: 0.1,
		CanaryWindow:   50 * time.Millisecond,
		// The mechanics are under test here, not the gate: a healthy
		// wifi branch may still log transient errors (acquisition), so
		// the budget is generous. The rollback path has its own test.
		Gate: GateConfig{MaxErrors: 1 << 20},
	})
	if err != nil {
		t.Fatalf("Rollout: %v (report %+v)", err, rep)
	}
	if rep.RolledBack || rep.Reason != "" {
		t.Fatalf("report = %+v, want clean completion", rep)
	}
	if rep.Sessions != fleet || rep.Canaries != fleet/10 {
		t.Errorf("report sessions/canaries = %d/%d, want %d/%d", rep.Sessions, rep.Canaries, fleet, fleet/10)
	}
	if rep.Upgraded != fleet || rep.Failed != 0 {
		t.Errorf("report upgraded/failed = %d/%d, want %d/0", rep.Upgraded, rep.Failed, fleet)
	}

	// Zero dropped sessions, all on revision 2, active revision moved.
	if got := m.Len(); got != fleet {
		t.Fatalf("live sessions after rollout = %d, want %d", got, fleet)
	}
	if got := m.ActiveRevision(); got != 2 {
		t.Fatalf("active revision = %d, want 2", got)
	}
	for _, id := range m.IDs() {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("session %q vanished", id)
		}
		if s.Revision() != 2 {
			t.Fatalf("session %q revision = %d, want 2", id, s.Revision())
		}
		if _, ok := s.Graph().Node("particle-filter"); !ok {
			t.Fatalf("session %q has no particle-filter after upgrade", id)
		}
	}

	// The fleet keeps serving on the new revision.
	before := delivered.Load()
	waitFor(t, 10*time.Second, "post-rollout positions", func() bool {
		return delivered.Load() >= before+fleet
	})

	// Hub bookkeeping: lifecycle counters and per-revision gauges.
	if got := hub.RolloutsStarted.Value(); got != 1 {
		t.Errorf("RolloutsStarted = %d, want 1", got)
	}
	if got := hub.RolloutsCompleted.Value(); got != 1 {
		t.Errorf("RolloutsCompleted = %d, want 1", got)
	}
	if got := hub.RolloutsRolledBack.Value(); got != 0 {
		t.Errorf("RolloutsRolledBack = %d, want 0", got)
	}
	if got := hub.RolloutUpgraded.Value(); got != fleet {
		t.Errorf("RolloutUpgraded = %d, want %d", got, fleet)
	}
	if got := hub.RevisionLive(1).Value(); got != 0 {
		t.Errorf("revision 1 gauge = %d, want 0", got)
	}
	if got := hub.RevisionLive(2).Value(); got != fleet {
		t.Errorf("revision 2 gauge = %d, want %d", got, fleet)
	}

	// New sessions instantiate the target revision directly.
	late, err := m.GetOrCreate("latecomer")
	if err != nil {
		t.Fatal(err)
	}
	if late.Revision() != 2 {
		t.Errorf("post-rollout session revision = %d, want 2", late.Revision())
	}
}

// TestRolloutCanaryRollback injects a regression: every wifi sensor the
// upgrade instantiates is chaos-killed from the start, so the canaries'
// new branch errors immediately. The gate (zero error budget on the
// diff's added nodes) must trip, the canaries must be migrated back to
// the GPS-only revision, the active revision must never move, and the
// hub must count exactly one rollback with every canary reverted.
func TestRolloutCanaryRollback(t *testing.T) {
	const fleet = 30
	cfg := fusionUpgradeConfig(t, func(id string, seed int64) core.Component {
		b := building.Evaluation()
		n := wifi.DefaultDeployment(b)
		tr := trace.CorridorWalk(b, 11, 60, time.Second)
		src := chaos.WrapSource(wifi.NewSensor(id, n, tr, time.Second, seed))
		src.Kill(nil) // dead on arrival: the regression ships with rev 2
		return src
	})
	hub := obs.New()
	cfg.Observability = hub
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	for i := 0; i < fleet; i++ {
		s, err := m.GetOrCreate(fmt.Sprintf("target-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })
		if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "pre-rollout positions", func() bool {
		return delivered.Load() >= fleet
	})

	rep, err := m.Rollout(ctx, RolloutConfig{
		To:             2,
		CanaryFraction: 0.1,
		CanaryWindow:   500 * time.Millisecond,
		Gate:           GateConfig{MaxErrors: 0}, // any new error on the added nodes trips
	})
	if !errors.Is(err, ErrRolloutRolledBack) {
		t.Fatalf("Rollout = %v, want ErrRolloutRolledBack (report %+v)", err, rep)
	}
	if !rep.RolledBack || rep.Reason == "" {
		t.Fatalf("report = %+v, want rolled back with a reason", rep)
	}
	wantCanaries := fleet / 10
	if rep.Canaries != wantCanaries || rep.Reverted != wantCanaries {
		t.Errorf("canaries/reverted = %d/%d, want %d/%d", rep.Canaries, rep.Reverted, wantCanaries, wantCanaries)
	}
	if rep.Upgraded != 0 {
		t.Errorf("upgraded = %d, want 0 after rollback", rep.Upgraded)
	}

	// The fleet is whole and uniformly back on revision 1; the active
	// revision never moved, so new sessions stay on the old pipeline.
	if got := m.Len(); got != fleet {
		t.Fatalf("live sessions after rollback = %d, want %d", got, fleet)
	}
	if got := m.ActiveRevision(); got != 1 {
		t.Fatalf("active revision after rollback = %d, want 1", got)
	}
	for _, id := range m.IDs() {
		s, _ := m.Get(id)
		if s.Revision() != 1 {
			t.Fatalf("session %q revision = %d, want 1", id, s.Revision())
		}
		if _, ok := s.Graph().Node("wifi"); ok {
			t.Fatalf("session %q still has the wifi branch after rollback", id)
		}
	}

	// Rollback bookkeeping: one rollback, every canary reverted, and
	// the canaries counted as upgraded on the way out too.
	if got := hub.RolloutsRolledBack.Value(); got != 1 {
		t.Errorf("RolloutsRolledBack = %d, want 1", got)
	}
	if got := hub.RolloutsCompleted.Value(); got != 0 {
		t.Errorf("RolloutsCompleted = %d, want 0", got)
	}
	if got := hub.RolloutReverted.Value(); got != uint64(wantCanaries) {
		t.Errorf("RolloutReverted = %d, want %d", got, wantCanaries)
	}
	if got := hub.RevisionLive(1).Value(); got != fleet {
		t.Errorf("revision 1 gauge = %d, want %d", got, fleet)
	}
	if got := hub.RevisionLive(2).Value(); got != 0 {
		t.Errorf("revision 2 gauge = %d, want 0", got)
	}

	// Positions keep flowing on the old revision after the aborted roll.
	before := delivered.Load()
	waitFor(t, 10*time.Second, "positions after rollback", func() bool {
		return delivered.Load() >= before+fleet
	})
}

// TestRolloutCarriesStateBitExact drives a sync fleet a few steps, then
// rolls it 1→2→1 and asserts the unchanged GPS-chain nodes carry their
// serialized state bit-for-bit through BOTH migrations — the in-place
// guarantee: unchanged nodes keep their live instances, so there is no
// marshal/unmarshal round trip to drift through.
func TestRolloutCarriesStateBitExact(t *testing.T) {
	const fleet = 20
	cfg := fusionUpgradeConfig(t, nil)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	snap := func(s *Session) map[string]core.NodeState {
		gs, err := s.Graph().SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]core.NodeState, len(gs.Nodes))
		for _, ns := range gs.Nodes {
			out[ns.ID] = ns
		}
		return out
	}

	sessions := make([]*Session, fleet)
	before := make([]map[string]core.NodeState, fleet)
	for i := range sessions {
		s, err := m.GetOrCreate(fmt.Sprintf("target-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.StepN(5); err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		before[i] = snap(s)
	}

	kept := []string{"gps", "parser", "interpreter", "app"}
	for _, to := range []int{2, 1} {
		rep, err := m.Rollout(context.Background(), RolloutConfig{To: to})
		if err != nil {
			t.Fatalf("Rollout to %d: %v (report %+v)", to, err, rep)
		}
		if rep.Upgraded != fleet {
			t.Fatalf("Rollout to %d upgraded %d, want %d", to, rep.Upgraded, fleet)
		}
		for i, s := range sessions {
			after := snap(s)
			for _, id := range kept {
				b, ok := before[i][id]
				if !ok {
					t.Fatalf("node %q missing from pre-rollout snapshot", id)
				}
				a, ok := after[id]
				if !ok {
					t.Fatalf("node %q missing after migrating to %d", id, to)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("session %d node %q state drifted across 1→%d migration:\n  before %+v\n  after  %+v",
						i, id, to, b, a)
				}
			}
		}
	}
	// And the fleet still runs: another batch of steps succeeds.
	for _, s := range sessions {
		if _, err := s.StepN(2); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRolloutNoSessions: rolling an empty fleet just moves the active
// revision (no canaries to watch).
func TestRolloutNoSessions(t *testing.T) {
	cfg := fusionUpgradeConfig(t, nil)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rep, err := m.Rollout(context.Background(), RolloutConfig{To: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 0 || rep.Canaries != 0 || rep.Upgraded != 0 {
		t.Fatalf("report = %+v, want all-zero counts", rep)
	}
	if got := m.ActiveRevision(); got != 2 {
		t.Fatalf("active revision = %d, want 2", got)
	}
	s, err := m.GetOrCreate("first")
	if err != nil {
		t.Fatal(err)
	}
	if s.Revision() != 2 {
		t.Fatalf("new session revision = %d, want 2", s.Revision())
	}
}

// TestRolloutRejectsUnknownRevision: a bad target fails fast, before
// anything migrates.
func TestRolloutRejectsUnknownRevision(t *testing.T) {
	m, err := NewManager(gpsSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Rollout(context.Background(), RolloutConfig{To: 7}); !errors.Is(err, core.ErrUnknownRevision) {
		t.Fatalf("Rollout to unknown revision = %v, want ErrUnknownRevision", err)
	}
	// Same-revision rollout is a no-op, not an error.
	rep, err := m.Rollout(context.Background(), RolloutConfig{To: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Upgraded != 0 {
		t.Fatalf("no-op rollout upgraded %d sessions", rep.Upgraded)
	}
}

// BenchmarkRuntimeRollingUpgrade measures fleet migration throughput:
// 100 paced async sessions, each iteration rolling the whole fleet to
// the other revision (1→2, 2→1, …) through the full canary→gate→ramp
// machinery with no soak window. The reported migrations/s is the rate
// at which live sessions cross revisions — pause, in-place plan
// application, channel-layer refresh and runner resume included — while
// every session keeps serving its paced source.
func BenchmarkRuntimeRollingUpgrade(b *testing.B) {
	const fleet = 100
	cfg := fusionUpgradeConfig(b, nil)
	hub := obs.New()
	cfg.Observability = hub
	m, err := NewManager(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < fleet; i++ {
		s, err := m.GetOrCreate(fmt.Sprintf("target-%03d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Start(ctx, core.WithSourceInterval(20*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		to := 2 - i%2
		rep, err := m.Rollout(ctx, RolloutConfig{
			To:   to,
			Gate: GateConfig{MaxErrors: 1 << 30},
		})
		if err != nil {
			b.Fatalf("Rollout to %d: %v (report %+v)", to, err, rep)
		}
		if rep.Upgraded != fleet {
			b.Fatalf("Rollout to %d upgraded %d, want %d", to, rep.Upgraded, fleet)
		}
	}
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*fleet/elapsed, "migrations/s")
	}
}
