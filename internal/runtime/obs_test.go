package runtime

import (
	"testing"

	"perpos/internal/checkpoint"
	"perpos/internal/obs"
)

// TestSessionObservability exercises the full metrics wiring through
// the session layer: lifecycle counters and shard gauges, emission
// taps, data-tree depth observation, provider availability transitions,
// checkpoint accounting, and resume counting.
func TestSessionObservability(t *testing.T) {
	hub := obs.New()
	cfg := gpsSessionConfig(t)
	cfg.Observability = hub
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{OnAppend: hub.CheckpointAppend})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg.Checkpoints = store

	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.GetOrCreate("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got := hub.SessionsCreated.Value(); got != 1 {
		t.Errorf("sessions created = %d, want 1", got)
	}
	if got := hub.SessionsLive(); got != 1 {
		t.Errorf("sessions live = %d, want 1", got)
	}

	// Drive enough steps past the receiver's cold start for positions
	// (and so channel deliveries) to flow.
	for i := 0; i < 10; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if hub.SpansEmitted.Value() == 0 {
		t.Error("no spans counted after stepping the session")
	}
	if got := hub.Node("gps").Emissions.Value(); got == 0 {
		t.Error("gps node emissions = 0 after stepping")
	}
	if hub.TreeDepth.Count() == 0 {
		t.Error("no data-tree depths observed")
	}

	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := hub.CheckpointWrites.Value(); got != 1 {
		t.Errorf("checkpoint writes = %d, want 1", got)
	}
	if hub.CheckpointBytes.Value() == 0 {
		t.Error("checkpoint bytes = 0 after a successful append")
	}

	if !m.Evict("alice") {
		t.Fatal("evict reported no session")
	}
	if got := hub.SessionsEvicted.Value(); got != 1 {
		t.Errorf("sessions evicted = %d, want 1", got)
	}
	if got := hub.SessionsLive(); got != 0 {
		t.Errorf("sessions live after evict = %d, want 0", got)
	}
	// Eviction retires the provider, which is an availability
	// transition into OUT_OF_SERVICE.
	snap := hub.Snapshot()
	trans := snap["provider_transitions"].(map[string]uint64)
	if trans["OUT_OF_SERVICE"] == 0 {
		t.Errorf("provider transitions = %v, want OUT_OF_SERVICE counted", trans)
	}

	// Resume from the evict-time checkpoint: counted separately from
	// creation, and the live gauge comes back.
	if _, err := m.ResumeSession("alice"); err != nil {
		t.Fatal(err)
	}
	if got := hub.SessionsResumed.Value(); got != 1 {
		t.Errorf("sessions resumed = %d, want 1", got)
	}
	if got := hub.SessionsCreated.Value(); got != 1 {
		t.Errorf("sessions created after resume = %d, want still 1", got)
	}
	if got := hub.SessionsLive(); got != 1 {
		t.Errorf("sessions live after resume = %d, want 1", got)
	}
	m.Close()
	if got := hub.SessionsLive(); got != 0 {
		t.Errorf("sessions live after close = %d, want 0", got)
	}
}

// TestSessionWithoutObservability pins the zero-cost contract: no hub,
// no hooks — sessions run exactly as before.
func TestSessionWithoutObservability(t *testing.T) {
	m, err := NewManager(gpsSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.GetOrCreate("bob")
	if err != nil {
		t.Fatal(err)
	}
	if s.metrics != nil || s.obsObserver != nil || s.obsTapCancel != nil {
		t.Error("observability hooks installed without a hub")
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
}
