package runtime

import (
	"context"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/chaos"
	"perpos/internal/checkpoint"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/gps"
	"perpos/internal/health"
	"perpos/internal/obs"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

// BenchmarkRuntimeSessions measures multi-tenant session throughput:
// N concurrent targets, each with its own pipeline instance from ONE
// shared blueprint, each paced like a live sensor (one source step per
// pace interval). The reported samples/s is the aggregate position
// delivery rate across all sessions over the measurement window — on
// an unsaturated machine it scales linearly with the session count,
// so the per-session runtime overhead (shard lookups, inboxes, layer
// taps, provider delivery) is what bounds the curve.
//
// Paced, not free-running: positioning workloads are c10k-shaped (many
// mostly-idle targets), so the interesting quantity is how many live
// sessions one process sustains, not how fast one session can spin.
func BenchmarkRuntimeSessions(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			benchSessions(b, n, gpsSessionConfig(b), 0, nil)
		})
	}
}

// BenchmarkRuntimeSessionsSupervised is the same workload with
// per-session health supervision enabled: the graph tap feeding the
// monitor is on every delivery path, so the delta against
// BenchmarkRuntimeSessions is the health-tracking overhead (budget:
// ≤5%).
func BenchmarkRuntimeSessionsSupervised(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			cfg := gpsSessionConfig(b)
			cfg.Health = &health.Policy{
				MaxConsecutiveErrors: 3,
				Deadlines:            map[string]time.Duration{"gps": time.Second},
			}
			benchSessions(b, n, cfg, 0, nil)
		})
	}
}

// BenchmarkRuntimeSessionsCheckpointed is the supervised workload with
// durable checkpointing on top: every session serializes its full
// component state to the journal every 5 paced steps (~100ms cadence,
// matching a production ticker). The delta against
// BenchmarkRuntimeSessionsSupervised is the durability overhead
// (budget: ≤5%) — dominated by the state marshal, since the journal
// append is an unsynced sequential write.
func BenchmarkRuntimeSessionsCheckpointed(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			cfg := gpsSessionConfig(b)
			cfg.Health = &health.Policy{
				MaxConsecutiveErrors: 3,
				Deadlines:            map[string]time.Duration{"gps": time.Second},
			}
			store, err := checkpoint.Open(b.TempDir(), checkpoint.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			cfg.Checkpoints = store
			benchSessions(b, n, cfg, 5, nil)
		})
	}
}

// BenchmarkRuntimeSessionsObserved is the checkpointed workload with
// the full observability hub wired in: emission taps, tree-depth
// observation, lifecycle gauges and checkpoint accounting all active.
// The delta against BenchmarkRuntimeSessionsCheckpointed is the
// instrumentation overhead (budget: ≤3%) — the hot path adds only a
// handful of atomic operations per sample.
func BenchmarkRuntimeSessionsObserved(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			cfg := gpsSessionConfig(b)
			cfg.Health = &health.Policy{
				MaxConsecutiveErrors: 3,
				Deadlines:            map[string]time.Duration{"gps": time.Second},
			}
			hub := obs.New()
			cfg.Observability = hub
			store, err := checkpoint.Open(b.TempDir(), checkpoint.Options{OnAppend: hub.CheckpointAppend})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			cfg.Checkpoints = store
			benchSessions(b, n, cfg, 5, nil)
		})
	}
}

// BenchmarkRuntimeSessionsRuled is the observed workload with the full
// standard rule set evaluated on every supervisor sweep: the rules tap
// runs on every emission path and the engine re-evaluates all three
// case-study rules each sweep, but no rule ever fires (the plain GPS
// blueprint carries no HDOP feature and the simulated target never
// stops). The delta against BenchmarkRuntimeSessionsObserved is the
// cost of *having* self-adaptation armed (budget: ≤2%) — the engine's
// hot path is one lock-free probe store per attribute-bearing sample
// plus an O(rules) sweep off the hot path.
func BenchmarkRuntimeSessionsRuled(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			cfg := gpsSessionConfig(b)
			cfg.Health = &health.Policy{
				MaxConsecutiveErrors: 3,
				Deadlines:            map[string]time.Duration{"gps": time.Second},
			}
			hub := obs.New()
			cfg.Observability = hub
			store, err := checkpoint.Open(b.TempDir(), checkpoint.Options{OnAppend: hub.CheckpointAppend})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			cfg.Checkpoints = store
			cfg.Rules = catalog.StandardRules()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// benchSessions drives Step() directly instead of Start(), so
			// the sweep goroutine the engine piggybacks on needs an
			// explicit start; Manager.Close stops it.
			benchSessions(b, n, cfg, 5, func(s *Session) { s.Supervisor().Start(ctx) })
		})
	}
}

// benchSessions drives n paced sessions; ckptEverySteps > 0 durably
// checkpoints each session on that step cadence. setup, when non-nil,
// runs once per created session before the drive loop starts.
func benchSessions(b *testing.B, n int, cfg SessionConfig, ckptEverySteps int, setup func(*Session)) {
	const (
		pace   = 20 * time.Millisecond
		window = 300 * time.Millisecond
	)
	var delivered atomic.Int64

	for iter := 0; iter < b.N; iter++ {
		m, err := NewManager(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sessions := make([]*Session, n)
		for i := range sessions {
			s, err := m.GetOrCreate(fmt.Sprintf("target-%04d", i))
			if err != nil {
				b.Fatal(err)
			}
			s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })
			if setup != nil {
				setup(s)
			}
			sessions[i] = s
		}

		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		for _, s := range sessions {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for step := 1; time.Now().Before(deadline); step++ {
					more, err := s.Step()
					if err != nil {
						b.Error(err)
						return
					}
					if !more {
						return
					}
					if ckptEverySteps > 0 && step%ckptEverySteps == 0 {
						if _, err := s.Checkpoint(); err != nil {
							b.Error(err)
							return
						}
					}
					time.Sleep(pace)
				}
			}()
		}
		wg.Wait()
		m.Close()
	}

	perWindow := float64(delivered.Load()) / float64(b.N)
	b.ReportMetric(perWindow/window.Seconds(), "samples/s")
	b.ReportMetric(perWindow/float64(n), "samples/session")
}

// BenchmarkRuntimeSaturated measures the throughput CEILING: N
// sessions driven flat-out with no pacer — every worker calls StepN in
// a tight loop against an endlessly looping GPS source. Where the
// paced benchmarks above prove per-feature overhead budgets at the
// fixed 46.67 samples/s/session live rate, this one answers "how fast
// does the middleware run when the hardware is the only limit", and
// its allocs/op is the per-source-step allocation bill of the whole
// hot path (emission, span bookkeeping, channel history, data-tree
// build, provider delivery).
func BenchmarkRuntimeSaturated(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			benchSaturated(b, n)
		})
	}
}

// saturatedSessionConfig is gpsSessionConfig with an endless (looping)
// receiver and no acquisition delay, so flat-out drivers never run the
// source dry and every epoch emits a full sentence group.
func saturatedSessionConfig(b *testing.B) SessionConfig {
	b.Helper()
	bp, err := catalog.GPSBlueprint()
	if err != nil {
		b.Fatal(err)
	}
	return SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			seed := seedFrom(sessionID)
			tr := trace.OutdoorTrack(testOrigin, seed, 4, 200, 1.4, time.Second)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					// Pooled raw/parsed payloads: the saturated path's
					// remaining allocs were dominated by per-sentence
					// string + interface boxing (DESIGN.md §13).
					return gps.NewReceiver(cid, tr, gps.Config{
						Seed:      seed,
						ColdStart: time.Nanosecond,
						Loop:      true,
					}, gps.WithPooledOutput())
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		History:  64,
	}
}

// benchSaturated splits b.N source steps across a GOMAXPROCS-sized
// worker pool, each worker driving a contiguous shard of sessions in
// StepN batches. The op of allocs/op and ns/op is one source step
// (≈1 delivered position).
//
// Two scaling fixes over the goroutine-per-session version: (1) 1000
// runnable goroutines on a handful of cores spent their time in the
// scheduler, not the pipeline — a worker per core walking its shard
// keeps every core on middleware code at any width; (2) the single
// shared delivery counter was the hottest contended cache line at
// GOMAXPROCS > 1 — counters are now per-session, padded a cache line
// apart, written plainly by the one worker driving that session
// (delivery runs synchronously on the stepping goroutine) and summed
// after the workers join.
func benchSaturated(b *testing.B, n int) {
	const batch = 64
	// counterStride spaces the per-session counters one 64-byte cache
	// line apart so neighbouring sessions never false-share.
	const counterStride = 8
	m, err := NewManager(saturatedSessionConfig(b))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	counts := make([]int64, n*counterStride)
	sessions := make([]*Session, n)
	for i := range sessions {
		s, err := m.GetOrCreate(fmt.Sprintf("target-%04d", i))
		if err != nil {
			b.Fatal(err)
		}
		slot := &counts[i*counterStride]
		s.Provider().Subscribe(func(positioning.Position) { *slot++ })
		sessions[i] = s
	}

	per, extra := b.N/n, b.N%n
	workers := stdruntime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				steps := per
				if i < extra {
					steps++
				}
				for s := sessions[i]; steps > 0; {
					k := batch
					if steps < k {
						k = steps
					}
					if _, err := s.StepN(k); err != nil {
						b.Error(err)
						return
					}
					steps -= k
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	var delivered int64
	for i := 0; i < n; i++ {
		delivered += counts[i*counterStride]
	}
	if sec := elapsed.Seconds(); sec > 0 {
		b.ReportMetric(float64(delivered)/sec, "samples/s")
	}
}

// BenchmarkDegradedFusionSession measures steady-state degraded-mode
// throughput: a supervised fusion session whose WiFi branch is down
// (breaker open, app rerouted to the GPS branch, runner retrying the
// dead source with backoff) delivering positions over a fixed window.
func BenchmarkDegradedFusionSession(b *testing.B) {
	const window = 300 * time.Millisecond
	bld := building.Evaluation()
	n := wifi.DefaultDeployment(bld)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	bp, err := catalog.FusionBlueprint(catalog.Deps{Building: bld, Database: db},
		filter.Config{Particles: 100, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.CorridorWalk(bld, 11, 60, time.Second)

	var delivered atomic.Int64
	for iter := 0; iter < b.N; iter++ {
		var wifiChaos *chaos.Source
		m, err := NewManager(SessionConfig{
			Blueprint: bp,
			Overrides: func(string) []core.InstantiateOption {
				return []core.InstantiateOption{
					core.WithComponentOverride("gps", func(id string) core.Component {
						return gps.NewReceiver(id, tr, gps.Config{Seed: 21, ColdStart: 0})
					}),
					core.WithComponentOverride("wifi", func(id string) core.Component {
						wifiChaos = chaos.WrapSource(wifi.NewSensor(id, n, tr, time.Second, 31))
						return wifiChaos
					}),
				}
			},
			Provider: positioning.ProviderInfo{Technology: "fusion"},
			History:  16,
			Health: &health.Policy{
				MaxConsecutiveErrors: 2,
				ProbeInterval:        10 * time.Millisecond,
				Sweep:                5 * time.Millisecond,
				Restart:              core.RestartPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			},
			Reroutes: catalog.FusionDegradation(),
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := m.GetOrCreate("bench")
		if err != nil {
			b.Fatal(err)
		}
		s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })
		wifiChaos.Kill(nil)
		ctx, cancel := context.WithCancel(context.Background())
		if err := s.Start(ctx, core.WithSourceInterval(time.Millisecond)); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			if s.Supervisor().Degraded() {
				break
			}
			time.Sleep(time.Millisecond)
		}
		start := delivered.Load()
		time.Sleep(window)
		got := delivered.Load() - start
		_ = s.Stop() // the injected outage leaves expected errors behind
		cancel()
		m.Close()
		b.ReportMetric(float64(got)/window.Seconds(), "samples/s")
	}
}
