package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perpos/internal/positioning"
)

// BenchmarkRuntimeSessions measures multi-tenant session throughput:
// N concurrent targets, each with its own pipeline instance from ONE
// shared blueprint, each paced like a live sensor (one source step per
// pace interval). The reported samples/s is the aggregate position
// delivery rate across all sessions over the measurement window — on
// an unsaturated machine it scales linearly with the session count,
// so the per-session runtime overhead (shard lookups, inboxes, layer
// taps, provider delivery) is what bounds the curve.
//
// Paced, not free-running: positioning workloads are c10k-shaped (many
// mostly-idle targets), so the interesting quantity is how many live
// sessions one process sustains, not how fast one session can spin.
func BenchmarkRuntimeSessions(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			benchSessions(b, n)
		})
	}
}

func benchSessions(b *testing.B, n int) {
	const (
		pace   = 20 * time.Millisecond
		window = 300 * time.Millisecond
	)
	cfg := gpsSessionConfig(b)
	var delivered atomic.Int64

	for iter := 0; iter < b.N; iter++ {
		m, err := NewManager(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sessions := make([]*Session, n)
		for i := range sessions {
			s, err := m.GetOrCreate(fmt.Sprintf("target-%04d", i))
			if err != nil {
				b.Fatal(err)
			}
			s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })
			sessions[i] = s
		}

		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		for _, s := range sessions {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					more, err := s.Step()
					if err != nil {
						b.Error(err)
						return
					}
					if !more {
						return
					}
					time.Sleep(pace)
				}
			}()
		}
		wg.Wait()
		m.Close()
	}

	perWindow := float64(delivered.Load()) / float64(b.N)
	b.ReportMetric(perWindow/window.Seconds(), "samples/s")
	b.ReportMetric(perWindow/float64(n), "samples/session")
}
