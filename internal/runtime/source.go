package runtime

import "perpos/internal/positioning"

// The manager is a positioning provider source: binding it to a
// positioning.Manager makes Track spin up a session and Untrack
// reclaim it.
var _ positioning.ReleasingSource = (*Manager)(nil)

// ProvidersFor implements positioning.ProviderSource: tracking a target
// creates (or reuses) its session and hands back the session provider.
func (m *Manager) ProvidersFor(id string) ([]*positioning.Provider, error) {
	s, err := m.GetOrCreate(id)
	if err != nil {
		return nil, err
	}
	return []*positioning.Provider{s.Provider()}, nil
}

// Release implements positioning.ReleasingSource: untracking a target
// evicts its session.
func (m *Manager) Release(id string) {
	m.Evict(id)
}
