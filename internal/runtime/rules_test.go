package runtime

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/chaos"
	"perpos/internal/core"
	"perpos/internal/energy"
	"perpos/internal/filter"
	"perpos/internal/gps"
	"perpos/internal/health"
	"perpos/internal/positioning"
	"perpos/internal/rules"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

// hdopModes drive the chaos HDOP corruptor through the phases of the
// §3.2 lifecycle scenario.
// The indoor walk's true HDOP is 5–15, so even the healthy phases pin
// the value: "clean" is the rewritten 1.0, not the raw signal.
const (
	hdopDegraded = 1 // every fix reports HDOP 9.9
	hdopNoisy    = 2 // alternate 9.9 / 3.5 inside the hysteresis band
	hdopClean    = 3 // every fix reports HDOP 1.0
)

// hdopCorruptor returns a chaos corruption function that rewrites the
// HDOP of every GGA/GSA sentence according to the current mode. The
// noisy mode flips parity on each GGA so that the GGA and GSA of one
// epoch always agree — the rules probe must see a coherent, if
// oscillating, signal.
func hdopCorruptor(mode *atomic.Int32) func(core.Sample) core.Sample {
	var flips atomic.Uint64
	return func(s core.Sample) core.Sample {
		raw, ok := s.Payload.(string)
		if !ok {
			return s
		}
		switch mode.Load() {
		case hdopDegraded:
			s.Payload = gps.RewriteHDOP(raw, 9.9)
		case hdopNoisy:
			if strings.Contains(raw, "GGA") {
				flips.Add(1)
			}
			v := 9.9
			if flips.Load()%2 == 0 {
				v = 3.5
			}
			s.Payload = gps.RewriteHDOP(raw, v)
		case hdopClean:
			s.Payload = gps.RewriteHDOP(raw, 1.0)
		}
		return s
	}
}

// fusionRulesConfig builds the Fig. 2 fusion session with a
// chaos-wrapped GPS receiver whose HDOP the test script controls, an
// optionally chaos-wrapped WiFi sensor, and the given rule set.
func fusionRulesConfig(t *testing.T, rs []rules.Rule, mode *atomic.Int32, wifiChaos **chaos.Source, reroutes []health.Reroute) SessionConfig {
	t.Helper()
	b := building.Evaluation()
	n := wifi.DefaultDeployment(b)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	bp, err := catalog.FusionBlueprint(catalog.Deps{Building: b, Database: db}, filter.Config{Particles: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.CorridorWalk(b, 11, 60, time.Second)
	corrupt := hdopCorruptor(mode)
	return SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(id string) core.Component {
					return chaos.WrapSource(
						gps.NewReceiver(id, tr, gps.Config{Seed: 21, ColdStart: time.Second}),
						chaos.WithCorrupt(1, corrupt),
					)
				}),
				core.WithComponentOverride("wifi", func(id string) core.Component {
					src := chaos.WrapSource(wifi.NewSensor(id, n, tr, time.Second, 31))
					if wifiChaos != nil {
						*wifiChaos = src
					}
					return src
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "fusion", TypicalAccuracy: 3},
		History:  16,
		Health: &health.Policy{
			MaxConsecutiveErrors: 2,
			RecoveryEmissions:    1,
			ProbeInterval:        10 * time.Millisecond,
			Sweep:                5 * time.Millisecond,
			Restart:              core.RestartPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
		},
		Reroutes: reroutes,
		Rules:    rs,
	}
}

// graphHasEdge reports whether the session graph currently carries e.
func graphHasEdge(g *core.Graph, e core.Edge) bool {
	for _, have := range g.Edges() {
		if have == e {
			return true
		}
	}
	return false
}

// ruleStatus finds one rule's snapshot by name.
func ruleStatus(t *testing.T, eng *rules.Engine, name string) rules.RuleStatus {
	t.Helper()
	for _, st := range eng.Status() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("rule %q not in engine status", name)
	return rules.RuleStatus{}
}

// TestRulesHDOPFilterLifecycle is the §3.2 case study end to end: GPS
// accuracy degrades, the accuracy rule inserts an HDOP filter into the
// live pipeline; a noisy boundary signal oscillating inside the
// hysteresis band causes no churn; recovery removes the filter again.
func TestRulesHDOPFilterLifecycle(t *testing.T) {
	var mode atomic.Int32
	mode.Store(hdopClean)
	cfg := fusionRulesConfig(t, []rules.Rule{catalog.AccuracyFilterRule()}, &mode, nil, nil)

	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.GetOrCreate("hdop")
	if err != nil {
		t.Fatal(err)
	}
	eng := s.Rules()
	if eng == nil {
		t.Fatal("rule-bearing session has no engine")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	inserted := core.Edge{From: "parser", To: "hdop-filter", Port: 0}
	original := core.Edge{From: "parser", To: "interpreter", Port: 0}

	// Phase 1: clean signal. Give the engine time to see good HDOP and
	// verify it leaves the graph alone.
	waitFor(t, 5*time.Second, "clean hdop observations", func() bool {
		_, ok := s.Graph().Node("interpreter")
		return ok && !eng.Engaged("accuracy-filter")
	})
	time.Sleep(150 * time.Millisecond) // longer than EngageAfter: a clean signal must not engage
	if eng.Engaged("accuracy-filter") {
		t.Fatal("rule engaged on a clean signal")
	}

	// Phase 2: accuracy degrades. The rule must insert the filter after
	// the engage dwell and splice the pipeline around it.
	mode.Store(hdopDegraded)
	waitFor(t, 5*time.Second, "accuracy rule to engage", func() bool {
		return eng.Engaged("accuracy-filter")
	})
	if _, ok := s.Graph().Node("hdop-filter"); !ok {
		t.Fatal("engaged rule left no hdop-filter node in the graph")
	}
	if !graphHasEdge(s.Graph(), inserted) || graphHasEdge(s.Graph(), original) {
		t.Fatalf("graph not spliced around the filter: %v", s.Graph().Edges())
	}

	// Phase 3: the signal turns noisy, oscillating between 9.9 and 3.5
	// — both above the 2.5 clear threshold. Hysteresis must hold the
	// engagement: zero extra transitions for the whole phase.
	mode.Store(hdopNoisy)
	time.Sleep(1200 * time.Millisecond)
	st := ruleStatus(t, eng, "accuracy-filter")
	if !st.Engaged || st.Engagements != 1 || st.Disengagements != 0 {
		t.Fatalf("noisy boundary signal churned the rule: %+v", st)
	}

	// Phase 4: accuracy recovers. The clear dwell elapses, the filter
	// is removed, and the original edge is restored.
	mode.Store(hdopClean)
	waitFor(t, 5*time.Second, "accuracy rule to disengage", func() bool {
		return !eng.Engaged("accuracy-filter")
	})
	waitFor(t, time.Second, "graph restored", func() bool {
		_, ok := s.Graph().Node("hdop-filter")
		return !ok && graphHasEdge(s.Graph(), original)
	})
	st = ruleStatus(t, eng, "accuracy-filter")
	if st.Engagements != 1 || st.Disengagements != 1 {
		t.Fatalf("lifecycle transitions = %+v, want exactly one engage and one disengage", st)
	}

	_ = s.Stop()
}

// TestRulesGuardRollback proves the probation guard end to end: a rule
// whose action inserts a component that immediately starts failing must
// be rolled back within probation and quarantined, leaving the graph as
// it was.
func TestRulesGuardRollback(t *testing.T) {
	bp, err := catalog.GPSBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.OutdoorTrack(testOrigin, 7, 2, 100, 1.4, time.Second)

	bad := rules.Rule{
		Name: "bad-insert",
		// Availability is always observable, so the rule engages on the
		// first sweep — the test exercises the guard, not the dwell.
		When: rules.Condition{Signal: "availability", Op: rules.OpGE, Value: 0},
		Action: &rules.InsertAction{
			ID: "bad-filter",
			Build: func(id string) core.Component {
				return &core.FuncComponent{
					CompID: id,
					CompSpec: core.Spec{
						Name:   "AlwaysFails",
						Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{gps.KindSentence}}},
						Output: core.OutputSpec{Kind: gps.KindSentence},
					},
					Fn: func(int, core.Sample, core.Emit) error {
						return errors.New("injected: bad adaptation")
					},
				}
			},
			From: "parser",
			To:   "interpreter",
			Port: 0,
		},
		Guard: &rules.Guard{
			Condition: rules.Condition{Signal: "errors:bad-filter", Op: rules.OpGT, Value: 0},
			Delta:     true,
			Probation: 2 * time.Second,
		},
	}

	cfg := SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: 7, ColdStart: time.Second})
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		Health: &health.Policy{
			MaxConsecutiveErrors: 100, // let errors accumulate instead of tripping the breaker
			ProbeInterval:        10 * time.Millisecond,
			Sweep:                5 * time.Millisecond,
			Restart:              core.RestartPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
		},
		Rules: []rules.Rule{bad},
	}

	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.GetOrCreate("rollback")
	if err != nil {
		t.Fatal(err)
	}

	var evMu sync.Mutex
	var events []rules.Event
	s.Rules().OnEvent(func(ev rules.Event) {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, "bad action to roll back", func() bool {
		return ruleStatus(t, s.Rules(), "bad-insert").Rollbacks >= 1
	})
	st := ruleStatus(t, s.Rules(), "bad-insert")
	if st.Engaged || !st.Quarantined {
		t.Fatalf("after rollback: %+v, want disengaged and quarantined", st)
	}
	waitFor(t, time.Second, "graph restored after rollback", func() bool {
		_, ok := s.Graph().Node("bad-filter")
		return !ok && graphHasEdge(s.Graph(), core.Edge{From: "parser", To: "interpreter", Port: 0})
	})

	// Quarantine must hold the rule out even though its condition still
	// holds; exactly one engage/rollback cycle.
	time.Sleep(200 * time.Millisecond)
	st = ruleStatus(t, s.Rules(), "bad-insert")
	if st.Engagements != 1 || st.Rollbacks != 1 {
		t.Fatalf("quarantine did not hold: %+v", st)
	}

	evMu.Lock()
	var sawRollback, sawQuarantine bool
	for _, ev := range events {
		if ev.Rule != "bad-insert" {
			continue
		}
		switch ev.Type {
		case rules.EventRolledBack:
			sawRollback = true
		case rules.EventQuarantined:
			sawQuarantine = true
		}
	}
	evMu.Unlock()
	if !sawRollback || !sawQuarantine {
		t.Fatalf("events missing rollback/quarantine: %+v", events)
	}

	_ = s.Stop()
}

// TestChaosRulesSupervisorArbitration is the arbitration scenario the
// CI chaos job runs under -race: a provider-swap rule and the
// supervisor's degradation reroutes deliberately contend for the
// particle-filter→app edge. The supervisor's reroute must always win
// while the WiFi branch is down, and the rule must re-engage on its own
// once the branch heals.
func TestChaosRulesSupervisorArbitration(t *testing.T) {
	var mode atomic.Int32
	mode.Store(hdopClean)
	var wifiChaos *chaos.Source
	cfg := fusionRulesConfig(t, []rules.Rule{catalog.ProviderSwapRule()}, &mode, &wifiChaos, catalog.FusionDegradation())
	cfg.Health.Deadlines = map[string]time.Duration{"wifi": 200 * time.Millisecond}

	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.GetOrCreate("arb")
	if err != nil {
		t.Fatal(err)
	}
	if wifiChaos == nil {
		t.Fatal("override never built the chaos-wrapped sensor")
	}
	eng := s.Rules()

	var delivered atomic.Int64
	s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	fused := core.Edge{From: "particle-filter", To: "app", Port: 0}
	swapped := core.Edge{From: "wifi-positioning", To: "app", Port: 0}

	// Phase 1: healthy and accurate — fused output, rule idle.
	waitFor(t, 5*time.Second, "first fused positions", func() bool {
		return delivered.Load() >= 3
	})
	if eng.Engaged("provider-swap") {
		t.Fatal("swap rule engaged while accuracy is good")
	}

	// Phase 2: GPS accuracy collapses; the rule swaps the app over to
	// the WiFi fingerprint position.
	mode.Store(hdopDegraded)
	waitFor(t, 5*time.Second, "swap rule to engage", func() bool {
		return eng.Engaged("provider-swap")
	})
	waitFor(t, time.Second, "swap edge in place", func() bool {
		return graphHasEdge(s.Graph(), swapped) && !graphHasEdge(s.Graph(), fused)
	})

	// Phase 3: the WiFi branch dies. The supervisor claims the same
	// edge for its degradation reroute; the rule must yield — the
	// supervisor always wins — and positions must keep flowing from the
	// GPS branch.
	wifiChaos.Kill(nil)
	waitFor(t, 5*time.Second, "supervisor to win the edge", func() bool {
		return s.Supervisor().Degraded() && !eng.Engaged("provider-swap")
	})
	waitFor(t, 5*time.Second, "degradation route in place", func() bool {
		return graphHasEdge(s.Graph(), core.Edge{From: "interpreter", To: "app", Port: 0})
	})
	before := delivered.Load()
	waitFor(t, 5*time.Second, "positions while degraded", func() bool {
		return delivered.Load() >= before+3
	})

	// Phase 4: the branch heals. The supervisor releases its claim and
	// the rule — whose condition still holds — re-engages by itself.
	wifiChaos.Heal()
	waitFor(t, 10*time.Second, "rule to re-engage after heal", func() bool {
		return !s.Supervisor().Degraded() && eng.Engaged("provider-swap")
	})
	waitFor(t, time.Second, "swap edge back", func() bool {
		return graphHasEdge(s.Graph(), swapped) && !graphHasEdge(s.Graph(), fused)
	})

	// Phase 5: accuracy recovers; the rule stands down and full fusion
	// returns.
	mode.Store(hdopClean)
	waitFor(t, 5*time.Second, "swap rule to disengage", func() bool {
		return !eng.Engaged("provider-swap")
	})
	waitFor(t, time.Second, "fused edge restored", func() bool {
		return graphHasEdge(s.Graph(), fused) && !graphHasEdge(s.Graph(), swapped)
	})

	_ = s.Stop()
}

// TestRulesPowerDutyCycle is the §3.2 power case study end to end: a
// stationary target engages the periodic duty-cycling feature on the
// receiver; movement detaches it again.
func TestRulesPowerDutyCycle(t *testing.T) {
	bp, err := catalog.GPSBlueprint()
	if err != nil {
		t.Fatal(err)
	}

	// Hand-built ground truth: five simulated minutes standing still,
	// then a brisk walk. At a 5 ms source interval and 1 s epochs the
	// sim clock runs ~200x wall, so the still phase is ~1.5 s of wall
	// clock — several engage dwells long.
	t0 := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	tr := &trace.Trace{
		Name:   "still-then-walk",
		Origin: testOrigin,
		Points: []trace.Point{
			{Time: t0, Global: testOrigin, Speed: 0, Mode: "still"},
			{Time: t0.Add(5 * time.Minute), Global: testOrigin, Speed: 0, Mode: "still"},
			{Time: t0.Add(5*time.Minute + time.Second), Global: testOrigin, Speed: 1.4, Mode: "walk"},
			{Time: t0.Add(60 * time.Minute), Global: testOrigin, Speed: 1.4, Mode: "walk"},
		},
	}

	cfg := SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: 3, ColdStart: time.Second})
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		Health: &health.Policy{
			ProbeInterval: 10 * time.Millisecond,
			Sweep:         5 * time.Millisecond,
		},
		Rules: []rules.Rule{catalog.PowerRule()},
	}

	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.GetOrCreate("power")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	hasPeriodic := func() bool {
		n, ok := s.Graph().Node("gps")
		if !ok {
			return false
		}
		_, ok = n.Feature(energy.FeaturePeriodic)
		return ok
	}

	// Stationary: the rule attaches the duty-cycling strategy.
	waitFor(t, 5*time.Second, "power rule to engage while still", func() bool {
		return s.Rules().Engaged("power-periodic") && hasPeriodic()
	})

	// Walking: the rule detaches it again.
	waitFor(t, 10*time.Second, "power rule to disengage while walking", func() bool {
		return !s.Rules().Engaged("power-periodic") && !hasPeriodic()
	})
	st := ruleStatus(t, s.Rules(), "power-periodic")
	if st.Engagements != 1 || st.Disengagements != 1 {
		t.Fatalf("power lifecycle = %+v, want one engage and one disengage", st)
	}

	_ = s.Stop()
}
