package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/chaos"
	"perpos/internal/core"
	"perpos/internal/filter"
	"perpos/internal/gps"
	"perpos/internal/health"
	"perpos/internal/positioning"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosFusionDegradation is the end-to-end robustness scenario: a
// fusion pipeline whose WiFi sensor is chaos-killed mid-run. The
// supervisor must trip the wifi breaker, reroute the app to the GPS
// branch, flip the provider to TEMPORARILY_UNAVAILABLE, and keep
// positions flowing; healing the sensor must restore fusion and the
// AVAILABLE state.
func TestChaosFusionDegradation(t *testing.T) {
	b := building.Evaluation()
	n := wifi.DefaultDeployment(b)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1, GridStep: 4})
	bp, err := catalog.FusionBlueprint(catalog.Deps{Building: b, Database: db}, filter.Config{Particles: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// A long indoor walk so neither source exhausts mid-test: ~21 min of
	// trace at a 5 ms source interval is several seconds of wall clock.
	tr := trace.CorridorWalk(b, 11, 60, time.Second)

	var wifiChaos *chaos.Source
	cfg := SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(id string) core.Component {
					return gps.NewReceiver(id, tr, gps.Config{Seed: 21, ColdStart: time.Second})
				}),
				core.WithComponentOverride("wifi", func(id string) core.Component {
					wifiChaos = chaos.WrapSource(wifi.NewSensor(id, n, tr, time.Second, 31))
					return wifiChaos
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "fusion", TypicalAccuracy: 3},
		History:  16,
		Health: &health.Policy{
			MaxConsecutiveErrors: 2,
			Deadlines:            map[string]time.Duration{"wifi": 200 * time.Millisecond},
			RecoveryEmissions:    1,
			ProbeInterval:        10 * time.Millisecond,
			Sweep:                5 * time.Millisecond,
			Restart:              core.RestartPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
		},
		Reroutes: catalog.FusionDegradation(),
	}

	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	s, err := m.GetOrCreate("eve")
	if err != nil {
		t.Fatal(err)
	}
	if wifiChaos == nil {
		t.Fatal("override never built the chaos-wrapped sensor")
	}

	// Record the JSR-179 availability transitions as they happen.
	var availMu sync.Mutex
	var transitions []positioning.Availability
	s.Provider().NotifyAvailability(func(a positioning.Availability) {
		availMu.Lock()
		transitions = append(transitions, a)
		availMu.Unlock()
	})
	var delivered atomic.Int64
	s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	// Phase 1: full fusion delivers positions.
	waitFor(t, 5*time.Second, "first fused positions", func() bool {
		return delivered.Load() >= 3
	})
	if got := s.Provider().Availability(); got != positioning.Available {
		t.Fatalf("availability while healthy = %v, want Available", got)
	}

	// Phase 2: the WiFi branch dies. The breaker must open, the
	// supervisor must reroute to the GPS branch, and the provider must
	// turn temporarily unavailable — while positions keep flowing.
	wifiChaos.Kill(nil)
	waitFor(t, 5*time.Second, "provider to degrade", func() bool {
		return s.Provider().Availability() == positioning.TemporarilyUnavailable &&
			s.Supervisor().Degraded()
	})
	if h, ok := s.Monitor().Health("wifi"); !ok || h.State != health.StateDown {
		t.Fatalf("wifi health = %+v, want down", h)
	}
	before := delivered.Load()
	waitFor(t, 5*time.Second, "positions from the GPS branch while degraded", func() bool {
		return delivered.Load() >= before+3
	})
	if got := s.Provider().Availability(); got != positioning.TemporarilyUnavailable {
		t.Fatalf("availability while degraded = %v, want TemporarilyUnavailable", got)
	}

	// Phase 3: the sensor heals. The runner's backoff restart revives the
	// source, the breaker closes, the supervisor restores the fusion
	// edge, and the provider turns available again.
	wifiChaos.Heal()
	waitFor(t, 5*time.Second, "provider to recover", func() bool {
		return s.Provider().Availability() == positioning.Available &&
			!s.Supervisor().Degraded()
	})
	if h, ok := s.Monitor().Health("wifi"); !ok || h.State != health.StateHealthy {
		t.Fatalf("wifi health after heal = %+v, want healthy", h)
	}
	after := delivered.Load()
	waitFor(t, 5*time.Second, "fused positions after recovery", func() bool {
		return delivered.Load() >= after+3
	})

	// Stop returns the errors the injected outage produced — expected.
	_ = s.Stop()

	availMu.Lock()
	got := append([]positioning.Availability(nil), transitions...)
	availMu.Unlock()
	want := []positioning.Availability{positioning.TemporarilyUnavailable, positioning.Available}
	if len(got) < len(want) {
		t.Fatalf("availability transitions = %v, want at least %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("availability transitions = %v, want prefix %v", got, want)
		}
	}
}
