package runtime

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"perpos/internal/catalog"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

// seedFrom derives a deterministic per-target seed.
func seedFrom(id string) int64 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int64(h.Sum32() & 0x7fffffff)
}

// gpsSessionConfig is the shared test fixture: the catalog's GPS
// blueprint, a per-target simulated receiver, a provider-sink app slot.
func gpsSessionConfig(t testing.TB) SessionConfig {
	t.Helper()
	bp, err := catalog.GPSBlueprint()
	if err != nil {
		t.Fatal(err)
	}
	return SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			seed := seedFrom(sessionID)
			tr := trace.OutdoorTrack(testOrigin, seed, 2, 100, 1.4, time.Second)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: seed, ColdStart: time.Second})
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		History:  64,
	}
}

func TestManagerNeedsBlueprint(t *testing.T) {
	if _, err := NewManager(SessionConfig{}); !errors.Is(err, ErrNoBlueprint) {
		t.Fatalf("NewManager without blueprint = %v, want ErrNoBlueprint", err)
	}
}

// TestSessionsIndependentAdapt: two sessions from one blueprint; a
// structural adaptation on one leaves the other untouched.
func TestSessionsIndependentAdapt(t *testing.T) {
	m, err := NewManager(gpsSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	alice, err := m.GetOrCreate("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := m.GetOrCreate("bob")
	if err != nil {
		t.Fatal(err)
	}
	if alice == bob || alice.Graph() == bob.Graph() {
		t.Fatal("sessions share state")
	}

	// Per-session PSL adaptation: alice's pipeline drops every position.
	err = alice.Adapt(func(g *core.Graph, _ *channel.Layer) error {
		gate := core.NewFilter("gate", positioning.KindPosition, func(core.Sample) bool { return false })
		return g.InsertBetween(gate, "interpreter", "app", 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := alice.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := alice.Provider().Last(); ok {
		t.Error("adapted session delivered despite the drop-all gate")
	}
	if _, ok := bob.Provider().Last(); !ok {
		t.Error("sibling session delivered nothing")
	}
	if _, ok := bob.Graph().Node("gate"); ok {
		t.Error("adaptation leaked into the sibling session")
	}
}

// TestSessionChannelFeatureVisible: a Channel Feature installed through
// a session adaptation is reachable from the session's provider — the
// per-target translucency path.
func TestSessionChannelFeatureVisible(t *testing.T) {
	m, err := NewManager(gpsSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	s, err := m.GetOrCreate("carol")
	if err != nil {
		t.Fatal(err)
	}
	err = s.Adapt(func(_ *core.Graph, l *channel.Layer) error {
		c, ok := l.ChannelInto("app", 0)
		if !ok {
			return errors.New("no channel into app")
		}
		return c.AttachFeature(markFeature{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Provider().Feature("mark"); !ok {
		t.Error("channel feature not visible through the provider")
	}
	if _, ok := s.Provider().Feature("absent"); ok {
		t.Error("absent feature resolved")
	}

	other, err := m.GetOrCreate("dave")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := other.Provider().Feature("mark"); ok {
		t.Error("channel feature leaked into the sibling session")
	}
}

type markFeature struct{}

func (markFeature) FeatureName() string     { return "mark" }
func (markFeature) Apply(*channel.DataTree) {}

func TestGetOrCreateConcurrent(t *testing.T) {
	m, err := NewManager(gpsSessionConfig(t), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const workers, ids = 32, 8
	got := make([]*Session, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := m.GetOrCreate(fmt.Sprintf("t%d", w%ids))
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = s
		}()
	}
	wg.Wait()
	if m.Len() != ids {
		t.Fatalf("Len = %d, want %d", m.Len(), ids)
	}
	for w := 0; w < workers; w++ {
		if got[w] == nil || got[w] != got[w%ids] {
			t.Fatalf("worker %d got a different session than worker %d", w, w%ids)
		}
	}
}

func TestEvictAndIdleEviction(t *testing.T) {
	now := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	var evicted []string
	m, err := NewManager(gpsSessionConfig(t),
		WithClock(clock),
		WithOnEvict(func(s *Session) { evicted = append(evicted, s.ID()) }))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	a, err := m.GetOrCreate("a")
	if err != nil {
		t.Fatal(err)
	}
	advance(10 * time.Minute)
	if _, err := m.GetOrCreate("b"); err != nil {
		t.Fatal(err)
	}

	if n := m.EvictIdle(5 * time.Minute); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1", n)
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted = %v, want [a]", evicted)
	}
	if _, ok := m.Get("a"); ok {
		t.Error("idle session still live")
	}
	// The evicted session is closed.
	if _, err := a.Run(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Run on evicted session = %v, want ErrClosed", err)
	}
	if err := a.Adapt(func(*core.Graph, *channel.Layer) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Adapt on evicted session = %v, want ErrClosed", err)
	}

	// A touched session survives the sweep.
	advance(10 * time.Minute)
	if _, err := m.GetOrCreate("b"); err != nil {
		t.Fatal(err)
	}
	advance(time.Minute)
	if n := m.EvictIdle(5 * time.Minute); n != 0 {
		t.Fatalf("EvictIdle after touch = %d, want 0", n)
	}

	if !m.Evict("b") {
		t.Error("Evict(b) = false")
	}
	if m.Evict("nobody") {
		t.Error("Evict(nobody) = true")
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d, want 0", m.Len())
	}
}

// TestPositioningIntegration: binding the runtime to a positioning
// manager makes Track spin up a session and Untrack reclaim it.
func TestPositioningIntegration(t *testing.T) {
	m, err := NewManager(gpsSessionConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	pm := &positioning.Manager{}
	pm.BindSource(m)

	tgt, err := pm.TrackErr("eve")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("sessions after Track = %d, want 1", m.Len())
	}
	provs := tgt.Providers()
	if len(provs) != 1 {
		t.Fatalf("target has %d providers, want 1", len(provs))
	}

	s, ok := m.Get("eve")
	if !ok {
		t.Fatal("session missing")
	}
	if s.Provider() != provs[0] {
		t.Error("target's provider is not the session's")
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := tgt.Last(); !ok {
		t.Error("tracked target has no position after its session ran")
	}

	pm.Untrack("eve")
	if m.Len() != 0 {
		t.Errorf("sessions after Untrack = %d, want 0", m.Len())
	}
}

func TestSessionAsyncStartStop(t *testing.T) {
	cfg := gpsSessionConfig(t)
	cfg.InboxCapacity = 8
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	s, err := m.GetOrCreate("frank")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(ctx); !errors.Is(err, ErrStarted) {
		t.Errorf("second Start = %v, want ErrStarted", err)
	}
	s.WaitSources()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Provider().Last(); !ok {
		t.Error("async session delivered nothing")
	}
	// Stop is idempotent; eviction after Stop is clean.
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	m.Evict("frank")
}
