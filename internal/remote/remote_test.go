package remote

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte(`{"hello":"world"}`)
	if err := WriteFrame(&buf, FrameSample, body); err != nil {
		t.Fatal(err)
	}
	ftype, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ftype != FrameSample {
		t.Errorf("frame type = 0x%02x, want FrameSample", byte(ftype))
	}
	if !bytes.Equal(got, body) {
		t.Errorf("frame round trip: %s", got)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameSample, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("write error = %v, want ErrFrameTooLarge", err)
	}
	// A hostile header claiming a huge body must be rejected.
	buf.Reset()
	buf.Write([]byte{magic0, magic1, ProtocolVersion, byte(FrameSample), 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("read error = %v, want ErrFrameTooLarge", err)
	}
}

func TestSampleCodecRoundTrip(t *testing.T) {
	codecs := DefaultCodecs()
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	t.Run("raw string", func(t *testing.T) {
		in := core.NewSample("gps.raw", "$GPGGA,x", at)
		in.Source = "gps"
		in.Logical = 7
		in.Spans = []core.Span{{Source: "a", From: 1, To: 3}}
		in = in.WithAttr("hdop", 1.5)

		body, err := encodeSample(in, codecs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := decodeSample(body, codecs)
		if err != nil {
			t.Fatal(err)
		}
		if out.Payload.(string) != "$GPGGA,x" || out.Source != "gps" || out.Logical != 7 {
			t.Errorf("round trip = %+v", out)
		}
		if len(out.Spans) != 1 || out.Spans[0] != in.Spans[0] {
			t.Errorf("spans = %v", out.Spans)
		}
		if v, ok := out.FloatAttr("hdop"); !ok || v != 1.5 {
			t.Errorf("hdop attr = %v/%v", v, ok)
		}
		if !out.Time.Equal(at) {
			t.Errorf("time = %v", out.Time)
		}
	})

	t.Run("position", func(t *testing.T) {
		pos := positioning.Position{
			Time:     at,
			Global:   geo.Point{Lat: 56.1, Lon: 10.2},
			Accuracy: 3.5,
			Source:   "gps",
			RoomID:   "N1",
		}
		in := core.NewSample(positioning.KindPosition, pos, at)
		body, err := encodeSample(in, codecs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := decodeSample(body, codecs)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Payload.(positioning.Position)
		if got.Global != pos.Global || got.Accuracy != pos.Accuracy || got.RoomID != "N1" {
			t.Errorf("position round trip = %+v", got)
		}
	})

	t.Run("unknown kind", func(t *testing.T) {
		in := core.NewSample("mystery", 1, at)
		if _, err := encodeSample(in, codecs); !errors.Is(err, ErrNoCodec) {
			t.Errorf("encode error = %v, want ErrNoCodec", err)
		}
	})
}

func TestDecodeErrors(t *testing.T) {
	codecs := DefaultCodecs()
	if _, err := decodeSample([]byte("not json"), codecs); err == nil {
		t.Error("garbage frame decoded")
	}
	if _, err := decodeSample([]byte(`{"kind":"mystery","payload":1}`), codecs); !errors.Is(err, ErrNoCodec) {
		t.Errorf("unknown-kind error = %v, want ErrNoCodec", err)
	}
	if _, err := decodeSample([]byte(`{"kind":"gps.raw","payload":123}`), codecs); err == nil {
		t.Error("mistyped payload decoded")
	}
}

// TestDeviceServerSplit reproduces the Fig. 7 deployment: the GPS
// receiver runs in a "device" graph whose uplink crosses TCP to a
// "server" graph running Parser and Interpreter.
func TestDeviceServerSplit(t *testing.T) {
	// Server graph: downlink -> parser -> interpreter -> sink.
	server := core.New()
	dl := NewDownlink("downlink", core.OutputSpec{Kind: gps.KindRaw})
	if _, err := server.Add(dl); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Add(gps.NewParser("parser")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Add(gps.NewInterpreter("interpreter", 0)); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	if _, err := server.Add(sink); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ from, to string }{
		{"downlink", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
	} {
		if err := server.Connect(c.from, c.to, 0); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve("127.0.0.1:0", server, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Device graph: receiver -> uplink.
	device := core.New()
	tr := trace.OutdoorTrack(geo.Point{Lat: 56.16, Lon: 10.2}, 3, 2, 100, 1.4, time.Second)
	if _, err := device.Add(gps.NewReceiver("gps", tr, gps.Config{Seed: 5, ColdStart: time.Second})); err != nil {
		t.Fatal(err)
	}
	up := NewUplink("uplink", srv.Addr(), []core.Kind{gps.KindRaw}, nil)
	defer up.Close()
	if _, err := device.Add(up); err != nil {
		t.Fatal(err)
	}
	if err := device.Connect("gps", "uplink", 0); err != nil {
		t.Fatal(err)
	}

	if _, err := device.Run(0); err != nil {
		t.Fatal(err)
	}

	// Wait for the server to drain the socket.
	deadline := time.Now().Add(5 * time.Second)
	sent, _ := up.Stats()
	for dl.Received() < sent && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	if sent == 0 {
		t.Fatal("uplink sent nothing")
	}
	if dl.Received() != sent {
		t.Errorf("received %d of %d frames", dl.Received(), sent)
	}
	if sink.Len() == 0 {
		t.Error("no positions produced on the server side")
	}
	if errs := srv.Errs(); len(errs) > 0 {
		t.Errorf("server errors: %v", errs)
	}
	// Positions retain full timestamps across the wire.
	if got, ok := sink.Last(); ok {
		pos := got.Payload.(positioning.Position)
		if pos.Time.Year() != 2026 {
			t.Errorf("timestamp lost in transit: %v", pos.Time)
		}
	}
}

func TestUplinkDropsWhenPeerGone(t *testing.T) {
	// Dial target that refuses connections: samples are dropped, not
	// errors.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens now

	up := NewUplink("uplink", addr, []core.Kind{"gps.raw"}, nil)
	defer up.Close()
	s := core.NewSample("gps.raw", "$line", time.Time{})
	for i := 0; i < 3; i++ {
		if err := up.Process(0, s, nil); err != nil {
			t.Fatalf("Process returned %v; drops must be silent", err)
		}
	}
	sent, dropped := up.Stats()
	if sent != 0 || dropped != 3 {
		t.Errorf("stats = %d sent %d dropped, want 0/3", sent, dropped)
	}
}

func TestUplinkSurfacesCodecBug(t *testing.T) {
	up := NewUplink("uplink", "127.0.0.1:1", []core.Kind{"weird"}, Codecs{})
	err := up.Process(0, core.NewSample("weird", 1, time.Time{}), nil)
	if !errors.Is(err, ErrNoCodec) {
		t.Errorf("error = %v, want ErrNoCodec", err)
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	g := core.New()
	dl := NewDownlink("downlink", core.OutputSpec{Kind: gps.KindRaw})
	if _, err := g.Add(dl); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", g, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, FrameSample, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	// A valid frame after the bad one still lands.
	body, err := encodeSample(core.NewSample("gps.raw", "$x", time.Time{}), DefaultCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, FrameSample, body); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for dl.Received() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if dl.Received() != 1 {
		t.Errorf("received = %d, want 1", dl.Received())
	}
	if len(srv.Errs()) == 0 {
		t.Error("garbage frame produced no recorded error")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	g := core.New()
	dl := NewDownlink("downlink", core.OutputSpec{Kind: gps.KindRaw})
	if _, err := g.Add(dl); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", g, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if !strings.Contains(srv.Addr(), ":") {
		t.Errorf("Addr = %q", srv.Addr())
	}
}

func TestUplinkReconnectsAfterServerRestart(t *testing.T) {
	// First server.
	g1 := core.New()
	dl1 := NewDownlink("downlink", core.OutputSpec{Kind: gps.KindRaw})
	if _, err := g1.Add(dl1); err != nil {
		t.Fatal(err)
	}
	srv1, err := Serve("127.0.0.1:0", g1, dl1, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	up := NewUplink("uplink", addr, []core.Kind{gps.KindRaw}, nil)
	defer up.Close()
	s := core.NewSample(gps.KindRaw, "$one", time.Time{})
	if err := up.Process(0, s, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for dl1.Received() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if dl1.Received() != 1 {
		t.Fatal("first frame not delivered")
	}

	// Kill the server; the next send fails and is dropped.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := up.Process(0, s, nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(250 * time.Millisecond) // let the backoff expire
	}

	// New server on the same address.
	g2 := core.New()
	dl2 := NewDownlink("downlink", core.OutputSpec{Kind: gps.KindRaw})
	if _, err := g2.Add(dl2); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(addr, g2, dl2, nil)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// After the backoff the uplink redials and delivery resumes.
	delivered := false
	for attempt := 0; attempt < 20 && !delivered; attempt++ {
		if err := up.Process(0, s, nil); err != nil {
			t.Fatal(err)
		}
		waitUntil := time.Now().Add(300 * time.Millisecond)
		for time.Now().Before(waitUntil) {
			if dl2.Received() >= 1 {
				delivered = true
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !delivered {
		t.Error("uplink never reconnected to the restarted server")
	}
}
