// Package remote distributes a PerPos processing graph across hosts,
// standing in for the D-OSGi remote services the paper relied on
// ("because OSGi supports transparent distribution of services through
// the D-OSGi specification the processing graph can span several hosts
// with little added configuration overhead", §3.3).
//
// An Uplink component forwards every sample arriving at its input port
// over TCP; a Downlink on the peer re-emits received samples into the
// remote graph as if produced locally. Samples travel as length-
// prefixed JSON frames; payload decoding is per-kind, via Codecs.
package remote

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"perpos/internal/core"
	"perpos/internal/positioning"
)

// MaxFrame is the largest accepted wire frame in bytes.
const MaxFrame = 1 << 20

// Errors returned by the wire layer.
var (
	// ErrFrameTooLarge indicates an oversized frame.
	ErrFrameTooLarge = errors.New("remote: frame exceeds MaxFrame")
	// ErrNoCodec indicates a sample kind without a registered codec.
	ErrNoCodec = errors.New("remote: no codec for kind")
)

// Codec converts one kind's payload to and from JSON.
type Codec struct {
	// Encode marshals an in-memory payload. A nil Encode uses
	// json.Marshal.
	Encode func(payload any) (json.RawMessage, error)
	// Decode unmarshals a received payload.
	Decode func(raw json.RawMessage) (any, error)
}

// Codecs maps sample kinds to codecs.
type Codecs map[core.Kind]Codec

// StringCodec handles string payloads (raw NMEA lines).
func StringCodec() Codec {
	return Codec{
		Decode: func(raw json.RawMessage) (any, error) {
			var s string
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, err
			}
			return s, nil
		},
	}
}

// PositionCodec handles positioning.Position payloads.
func PositionCodec() Codec {
	return Codec{
		Decode: func(raw json.RawMessage) (any, error) {
			var p positioning.Position
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, err
			}
			return p, nil
		},
	}
}

// DefaultCodecs covers the kinds that cross host boundaries in the
// shipped pipelines.
func DefaultCodecs() Codecs {
	return Codecs{
		"gps.raw":                StringCodec(),
		positioning.KindPosition: PositionCodec(),
		positioning.KindRoom:     StringCodec(),
	}
}

// wireSample is the JSON frame body.
type wireSample struct {
	Kind        core.Kind        `json:"kind"`
	Time        time.Time        `json:"time"`
	Source      string           `json:"source,omitempty"`
	Logical     core.LogicalTime `json:"logical,omitempty"`
	Spans       []core.Span      `json:"spans,omitempty"`
	FromFeature string           `json:"fromFeature,omitempty"`
	Attrs       map[string]any   `json:"attrs,omitempty"`
	Payload     json.RawMessage  `json:"payload"`
}

// encodeSample converts a sample to its frame body.
func encodeSample(s core.Sample, codecs Codecs) ([]byte, error) {
	c, ok := codecs[s.Kind]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCodec, s.Kind)
	}
	var payload json.RawMessage
	var err error
	if c.Encode != nil {
		payload, err = c.Encode(s.Payload)
	} else {
		payload, err = json.Marshal(s.Payload)
	}
	if err != nil {
		return nil, fmt.Errorf("encode %q payload: %w", s.Kind, err)
	}
	body, err := json.Marshal(wireSample{
		Kind:        s.Kind,
		Time:        s.Time,
		Source:      s.Source,
		Logical:     s.Logical,
		Spans:       s.Spans,
		FromFeature: s.FromFeature,
		Attrs:       s.Attrs,
		Payload:     payload,
	})
	if err != nil {
		return nil, fmt.Errorf("encode %q frame: %w", s.Kind, err)
	}
	return body, nil
}

// decodeSample parses a frame body.
func decodeSample(body []byte, codecs Codecs) (core.Sample, error) {
	var w wireSample
	if err := json.Unmarshal(body, &w); err != nil {
		return core.Sample{}, fmt.Errorf("decode frame: %w", err)
	}
	c, ok := codecs[w.Kind]
	if !ok || c.Decode == nil {
		return core.Sample{}, fmt.Errorf("%w: %q", ErrNoCodec, w.Kind)
	}
	payload, err := c.Decode(w.Payload)
	if err != nil {
		return core.Sample{}, fmt.Errorf("decode %q payload: %w", w.Kind, err)
	}
	return core.Sample{
		Kind:        w.Kind,
		Time:        w.Time,
		Source:      w.Source,
		Logical:     w.Logical,
		Spans:       w.Spans,
		FromFeature: w.FromFeature,
		Attrs:       w.Attrs,
		Payload:     payload,
	}, nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("write frame body: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF propagates unwrapped for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("read frame body: %w", err)
	}
	return body, nil
}
