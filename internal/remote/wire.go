// Package remote distributes a PerPos processing graph across hosts,
// standing in for the D-OSGi remote services the paper relied on
// ("because OSGi supports transparent distribution of services through
// the D-OSGi specification the processing graph can span several hosts
// with little added configuration overhead", §3.3).
//
// An Uplink component forwards every sample arriving at its input port
// over TCP; a Downlink on the peer re-emits received samples into the
// remote graph as if produced locally. Samples travel as versioned,
// length-prefixed JSON frames; payload decoding is per-kind, via
// Codecs. The same framing carries cluster control messages
// (internal/cluster): a frame-type byte distinguishes sample traffic
// from control RPCs, and a magic + protocol version byte in every
// header turns cross-version or misdialed connections into typed
// errors instead of silent corruption.
package remote

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"perpos/internal/core"
	"perpos/internal/positioning"
)

// MaxFrame is the largest accepted wire frame in bytes.
const MaxFrame = 1 << 20

// ProtocolVersion is the wire protocol revision this build speaks.
// Bump it when the frame body schema changes incompatibly; peers
// reject mismatched versions with a *VersionError rather than
// misparsing each other's frames.
const ProtocolVersion = 2

// Frame magic: two bytes opening every frame header. The v1 format
// (bare 4-byte big-endian length prefix) begins with 0x00 0x00 for any
// body under 16 MiB, so v1 frames can never satisfy the magic check —
// old peers are rejected deterministically, not parsed as garbage.
const (
	magic0 = 0x50 // 'P'
	magic1 = 0x70 // 'p'
)

// FrameType tags what a frame body contains.
type FrameType byte

const (
	// FrameSample carries a wireSample JSON body (Uplink → Downlink).
	FrameSample FrameType = 0x01
	// FrameControl carries a cluster control-RPC JSON body
	// (internal/cluster request/response envelopes).
	FrameControl FrameType = 0x02
)

// headerSize is the fixed frame header length:
// magic(2) | version(1) | type(1) | bodyLen(4, big-endian).
const headerSize = 8

// Errors returned by the wire layer.
var (
	// ErrFrameTooLarge indicates an oversized frame.
	ErrFrameTooLarge = errors.New("remote: frame exceeds MaxFrame")
	// ErrNoCodec indicates a sample kind without a registered codec.
	ErrNoCodec = errors.New("remote: no codec for kind")
	// ErrBadMagic indicates a frame that does not start with the
	// protocol magic — a pre-versioning peer or a misdialed port.
	ErrBadMagic = errors.New("remote: bad frame magic (old-format or foreign peer)")
)

// VersionError reports a peer speaking a different protocol revision.
type VersionError struct {
	Got  byte
	Want byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("remote: protocol version mismatch: peer speaks v%d, this build speaks v%d", e.Got, e.Want)
}

// Codec converts one kind's payload to and from JSON.
type Codec struct {
	// Encode marshals an in-memory payload. A nil Encode uses
	// json.Marshal.
	Encode func(payload any) (json.RawMessage, error)
	// Decode unmarshals a received payload.
	Decode func(raw json.RawMessage) (any, error)
}

// Codecs maps sample kinds to codecs.
type Codecs map[core.Kind]Codec

// StringCodec handles string payloads (raw NMEA lines).
func StringCodec() Codec {
	return Codec{
		Decode: func(raw json.RawMessage) (any, error) {
			var s string
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, err
			}
			return s, nil
		},
	}
}

// PositionCodec handles positioning.Position payloads.
func PositionCodec() Codec {
	return Codec{
		Decode: func(raw json.RawMessage) (any, error) {
			var p positioning.Position
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, err
			}
			return p, nil
		},
	}
}

// DefaultCodecs covers the kinds that cross host boundaries in the
// shipped pipelines.
func DefaultCodecs() Codecs {
	return Codecs{
		"gps.raw":                StringCodec(),
		positioning.KindPosition: PositionCodec(),
		positioning.KindRoom:     StringCodec(),
	}
}

// wireSample is the JSON frame body.
type wireSample struct {
	Kind        core.Kind        `json:"kind"`
	Time        time.Time        `json:"time"`
	Source      string           `json:"source,omitempty"`
	Logical     core.LogicalTime `json:"logical,omitempty"`
	Spans       []core.Span      `json:"spans,omitempty"`
	FromFeature string           `json:"fromFeature,omitempty"`
	Attrs       map[string]any   `json:"attrs,omitempty"`
	Payload     json.RawMessage  `json:"payload"`
}

// encodeSample converts a sample to its frame body. Pooled payloads
// are detached first: the wire outlives the pool object's refcount,
// and codecs only know the detached (plain string / boxed struct)
// forms.
func encodeSample(s core.Sample, codecs Codecs) ([]byte, error) {
	c, ok := codecs[s.Kind]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCodec, s.Kind)
	}
	detached := core.DetachPayload(s.Payload)
	var payload json.RawMessage
	var err error
	if c.Encode != nil {
		payload, err = c.Encode(detached)
	} else {
		payload, err = json.Marshal(detached)
	}
	if err != nil {
		return nil, fmt.Errorf("encode %q payload: %w", s.Kind, err)
	}
	body, err := json.Marshal(wireSample{
		Kind:        s.Kind,
		Time:        s.Time,
		Source:      s.Source,
		Logical:     s.Logical,
		Spans:       s.Spans,
		FromFeature: s.FromFeature,
		Attrs:       s.Attrs,
		Payload:     payload,
	})
	if err != nil {
		return nil, fmt.Errorf("encode %q frame: %w", s.Kind, err)
	}
	return body, nil
}

// decodeSample parses a frame body.
func decodeSample(body []byte, codecs Codecs) (core.Sample, error) {
	var w wireSample
	if err := json.Unmarshal(body, &w); err != nil {
		return core.Sample{}, fmt.Errorf("decode frame: %w", err)
	}
	c, ok := codecs[w.Kind]
	if !ok || c.Decode == nil {
		return core.Sample{}, fmt.Errorf("%w: %q", ErrNoCodec, w.Kind)
	}
	payload, err := c.Decode(w.Payload)
	if err != nil {
		return core.Sample{}, fmt.Errorf("decode %q payload: %w", w.Kind, err)
	}
	return core.Sample{
		Kind:        w.Kind,
		Time:        w.Time,
		Source:      w.Source,
		Logical:     w.Logical,
		Spans:       w.Spans,
		FromFeature: w.FromFeature,
		Attrs:       w.Attrs,
		Payload:     payload,
	}, nil
}

// WriteFrame writes one framed message: an 8-byte header
// (magic, version, frame type, big-endian body length) followed by the
// body. The header and body go out in a single Write so a frame is
// never torn across a slow-peer stall boundary.
func WriteFrame(w io.Writer, ftype FrameType, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	buf := make([]byte, headerSize+len(body))
	buf[0] = magic0
	buf[1] = magic1
	buf[2] = ProtocolVersion
	buf[3] = byte(ftype)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(body)))
	copy(buf[headerSize:], body)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message, validating magic and protocol
// version. It returns ErrBadMagic for pre-versioning (v1) or foreign
// frames and a *VersionError when the peer speaks a different protocol
// revision — both before any body bytes are consumed, so the caller
// can fail the connection without misparsing.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF propagates unwrapped for clean shutdown
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, nil, ErrBadMagic
	}
	if hdr[2] != ProtocolVersion {
		return 0, nil, &VersionError{Got: hdr[2], Want: ProtocolVersion}
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("read frame body: %w", err)
	}
	return FrameType(hdr[3]), body, nil
}
