package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/obs"
)

// downlinkGraph builds a minimal graph holding one raw-NMEA downlink.
func downlinkGraph(t *testing.T) (*core.Graph, *Downlink) {
	t.Helper()
	g := core.New()
	dl := NewDownlink("downlink", core.OutputSpec{Kind: gps.KindRaw})
	if _, err := g.Add(dl); err != nil {
		t.Fatal(err)
	}
	return g, dl
}

// TestOldFrameRejected is the cross-version regression gate: a v1 peer
// (bare 4-byte big-endian length prefix, no magic) must be rejected
// with ErrBadMagic before any body bytes are parsed — the old format's
// first two bytes are the length's high bytes, which are zero for any
// legal body, never the magic.
func TestOldFrameRejected(t *testing.T) {
	body := []byte(`{"kind":"gps.raw","payload":"$GPGGA"}`)
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)

	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("v1 frame error = %v, want ErrBadMagic", err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameControl, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = ProtocolVersion + 1 // a future build's frames

	_, _, err := ReadFrame(bytes.NewReader(raw))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error = %v, want *VersionError", err)
	}
	if ve.Got != ProtocolVersion+1 || ve.Want != ProtocolVersion {
		t.Errorf("VersionError = got %d want %d; expected got %d want %d",
			ve.Got, ve.Want, ProtocolVersion+1, ProtocolVersion)
	}
}

// TestServerRejectsOldPeer drives the rejection end-to-end: an
// old-format uplink connecting to a current Server is dropped and the
// incompatibility is recorded in Errs, not silently swallowed.
func TestServerRejectsOldPeer(t *testing.T) {
	g, dl := downlinkGraph(t)
	srv, err := Serve("127.0.0.1:0", g, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 7)
	conn.Write(hdr[:])
	conn.Write([]byte("oldbody"))

	deadline := time.Now().Add(3 * time.Second)
	for len(srv.Errs()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	found := false
	for _, err := range srv.Errs() {
		if errors.Is(err, ErrBadMagic) {
			found = true
		}
	}
	if !found {
		t.Fatalf("server errors = %v, want ErrBadMagic recorded", srv.Errs())
	}
	if dl.Received() != 0 {
		t.Errorf("received = %d, want 0 — old frames must not be parsed", dl.Received())
	}
}

// TestServerIgnoresControlFrames: a control frame on a sample link is
// noted and skipped; the connection keeps serving samples.
func TestServerIgnoresControlFrames(t *testing.T) {
	g, dl := downlinkGraph(t)
	srv, err := Serve("127.0.0.1:0", g, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, FrameControl, []byte(`{"op":"probe"}`)); err != nil {
		t.Fatal(err)
	}
	body, err := encodeSample(core.NewSample("gps.raw", "$x", time.Time{}), DefaultCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, FrameSample, body); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for dl.Received() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if dl.Received() != 1 {
		t.Fatalf("received = %d, want 1 — sample after control frame must land", dl.Received())
	}
	if len(srv.Errs()) == 0 {
		t.Error("control frame on sample link produced no recorded error")
	}
}

// TestUplinkMetrics: sent/dropped counters and the backoff gauge reach
// the obs hub (JSON snapshot path; the Prometheus exposition is
// covered in obs's own tests).
func TestUplinkMetrics(t *testing.T) {
	hub := obs.New()
	g, dl := downlinkGraph(t)
	srv, err := Serve("127.0.0.1:0", g, dl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	up := NewUplink("up", srv.Addr(), []core.Kind{"gps.raw"}, nil,
		WithUplinkMetrics(hub), WithUplinkJitterSeed(1))
	defer up.Close()
	if err := up.Process(0, core.NewSample("gps.raw", "$x", time.Time{}), nil); err != nil {
		t.Fatal(err)
	}
	if got := hub.RemoteSent.Value(); got != 1 {
		t.Errorf("RemoteSent = %d, want 1", got)
	}
	if got := hub.RemoteBackoff("up").Value(); got != int64(200*time.Millisecond) {
		t.Errorf("backoff gauge = %d, want base backoff after connect", got)
	}

	// An unreachable peer sheds the sample and raises the gauge.
	dead := NewUplink("dead", "127.0.0.1:1", []core.Kind{"gps.raw"}, nil,
		WithUplinkMetrics(hub), WithUplinkJitterSeed(1),
		WithUplinkBackoff(time.Millisecond, 10*time.Millisecond))
	defer dead.Close()
	if err := dead.Process(0, core.NewSample("gps.raw", "$x", time.Time{}), nil); err != nil {
		t.Fatal(err)
	}
	if got := hub.RemoteDropped.Value(); got == 0 {
		t.Error("RemoteDropped = 0, want > 0")
	}
	if got := hub.RemoteBackoff("dead").Value(); got <= 0 {
		t.Errorf("dead-peer backoff gauge = %d, want > 0", got)
	}

	snap := hub.Snapshot()
	rm, ok := snap["remote"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot has no remote section: %T", snap["remote"])
	}
	if rm["sent"].(uint64) != 1 {
		t.Errorf("snapshot remote.sent = %v, want 1", rm["sent"])
	}
}
