package remote

import (
	"io"
	"net"
	"testing"
	"time"

	"perpos/internal/core"
)

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// forceDial clears the backoff gate so the next Process dials
// immediately — the tests step the failure sequence without sleeping.
func forceDial(u *Uplink) {
	u.mu.Lock()
	u.lastTry = time.Time{}
	u.mu.Unlock()
}

func TestUplinkBackoffGrowsExponentiallyAndCaps(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	up := NewUplink("uplink", deadAddr(t), []core.Kind{"gps.raw"}, nil,
		WithUplinkBackoff(base, max),
		WithUplinkJitterSeed(42))
	defer up.Close()
	s := core.NewSample("gps.raw", "$x", time.Time{})

	jitter := up.jitterFrac
	for i := 0; i < 8; i++ {
		forceDial(up)
		if err := up.Process(0, s, nil); err != nil {
			t.Fatalf("Process must drop, not error: %v", err)
		}
		got := up.Backoff()
		// Expected backoff before jitter: base doubled per prior failure,
		// capped at max.
		want := float64(base)
		for j := 0; j < i; j++ {
			want *= 2
			if want >= float64(max) {
				want = float64(max)
				break
			}
		}
		lo := time.Duration(want * (1 - jitter))
		if got < lo || got > max {
			t.Errorf("backoff after %d failures = %v, want in [%v, %v]", i+1, got, lo, max)
		}
	}
	if got := up.Backoff(); got < time.Duration(float64(max)*(1-jitter)) {
		t.Errorf("backoff never reached the cap region: %v", got)
	}
	_, dropped := up.Stats()
	if dropped != 8 {
		t.Errorf("dropped = %d, want 8", dropped)
	}
}

func TestUplinkBackoffJitterIsSeeded(t *testing.T) {
	run := func() []time.Duration {
		up := NewUplink("uplink", deadAddr(t), []core.Kind{"gps.raw"}, nil,
			WithUplinkBackoff(50*time.Millisecond, time.Second),
			WithUplinkJitterSeed(7))
		defer up.Close()
		s := core.NewSample("gps.raw", "$x", time.Time{})
		var out []time.Duration
		for i := 0; i < 5; i++ {
			forceDial(up)
			_ = up.Process(0, s, nil)
			out = append(out, up.Backoff())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different backoff sequences: %v vs %v", a, b)
		}
	}
}

func TestUplinkBackoffResetsOnSuccess(t *testing.T) {
	// A listener that accepts and discards keeps dials succeeding.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, conn); conn.Close() }()
		}
	}()

	base := 50 * time.Millisecond
	up := NewUplink("uplink", ln.Addr().String(), []core.Kind{"gps.raw"}, nil,
		WithUplinkBackoff(base, time.Second),
		WithUplinkJitterSeed(1))
	defer up.Close()

	// Inflate the backoff state as if the peer had been down a while.
	up.mu.Lock()
	up.dialErrs = 5
	up.backoff = time.Second
	up.lastTry = time.Time{}
	up.mu.Unlock()

	if err := up.Process(0, core.NewSample("gps.raw", "$x", time.Time{}), nil); err != nil {
		t.Fatal(err)
	}
	sent, dropped := up.Stats()
	if sent != 1 || dropped != 0 {
		t.Fatalf("stats = %d sent %d dropped, want 1/0", sent, dropped)
	}
	if got := up.Backoff(); got != base {
		t.Errorf("backoff after successful dial = %v, want reset to base %v", got, base)
	}
}
