package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"perpos/internal/core"
	"perpos/internal/obs"
)

// Uplink is a Processing Component that forwards every sample arriving
// at its input port to a remote Downlink over TCP — the device side of
// the Fig. 7 split. It dials lazily on first use and redials after
// connection failures with capped exponential backoff plus jitter:
// consecutive dial failures double the wait between attempts (so an
// unreachable peer costs one cheap gate check per sample, not a dial
// timeout), and the jitter keeps a fleet of devices from thundering
// back in lockstep when the peer returns. Samples that cannot be sent
// are counted and dropped, since positioning data is perishable.
type Uplink struct {
	id          string
	addr        string
	accepts     []core.Kind
	codecs      Codecs
	baseBackoff time.Duration
	maxBackoff  time.Duration
	jitterFrac  float64
	metrics     *obs.Metrics

	mu       sync.Mutex
	conn     net.Conn
	lastTry  time.Time
	backoff  time.Duration // current wait before the next dial attempt
	dialErrs int           // consecutive dial failures
	rng      *rand.Rand
	sent     int
	dropped  int
}

var _ core.Component = (*Uplink)(nil)

// UplinkOption configures an Uplink.
type UplinkOption func(*Uplink)

// WithUplinkBackoff sets the redial backoff bounds (defaults 200ms
// base, 5s cap).
func WithUplinkBackoff(base, max time.Duration) UplinkOption {
	return func(u *Uplink) {
		if base > 0 {
			u.baseBackoff = base
		}
		if max > 0 {
			u.maxBackoff = max
		}
	}
}

// WithUplinkJitterSeed seeds the backoff jitter PRNG (deterministic
// tests).
func WithUplinkJitterSeed(seed int64) UplinkOption {
	return func(u *Uplink) { u.rng = rand.New(rand.NewSource(seed)) }
}

// WithUplinkMetrics publishes the uplink's sent/dropped counters and
// current redial backoff into an obs hub — without it an unreachable
// peer silently sheds samples, which hides routing loss from
// operators.
func WithUplinkMetrics(m *obs.Metrics) UplinkOption {
	return func(u *Uplink) { u.metrics = m }
}

// NewUplink returns an uplink forwarding the given kinds to addr.
func NewUplink(id, addr string, accepts []core.Kind, codecs Codecs, opts ...UplinkOption) *Uplink {
	if len(accepts) == 0 {
		accepts = []core.Kind{core.KindAny}
	}
	if codecs == nil {
		codecs = DefaultCodecs()
	}
	u := &Uplink{
		id:          id,
		addr:        addr,
		accepts:     accepts,
		codecs:      codecs,
		baseBackoff: 200 * time.Millisecond,
		maxBackoff:  5 * time.Second,
		jitterFrac:  0.2,
	}
	for _, opt := range opts {
		opt(u)
	}
	if u.rng == nil {
		u.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	u.backoff = u.baseBackoff
	return u
}

// ID implements core.Component.
func (u *Uplink) ID() string { return u.id }

// Spec implements core.Component: a sink from the local graph's point
// of view (the data continues on the peer).
func (u *Uplink) Spec() core.Spec {
	return core.Spec{
		Name:   "Uplink",
		Inputs: []core.PortSpec{{Name: "in", Accepts: u.accepts}},
	}
}

// Process implements core.Component.
func (u *Uplink) Process(_ int, in core.Sample, _ core.Emit) error {
	body, err := encodeSample(in, u.codecs)
	if err != nil {
		// Unencodable kinds are a wiring bug worth surfacing.
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if err := u.sendLocked(body); err != nil {
		// One immediate retry covers a connection that went stale
		// between samples; beyond that the backoff gate decides when the
		// next dial happens, and the sample is dropped — position data
		// is perishable and must not wedge the pipeline.
		if err := u.sendLocked(body); err != nil {
			u.dropped++
			if u.metrics != nil {
				u.metrics.RemoteDropped.Inc()
			}
			return nil
		}
	}
	u.sent++
	if u.metrics != nil {
		u.metrics.RemoteSent.Inc()
	}
	return nil
}

func (u *Uplink) sendLocked(body []byte) error {
	if u.conn == nil {
		if time.Since(u.lastTry) < u.backoff {
			return fmt.Errorf("remote: uplink %q backing off", u.id)
		}
		u.lastTry = time.Now()
		conn, err := net.DialTimeout("tcp", u.addr, 2*time.Second)
		if err != nil {
			u.dialErrs++
			u.backoff = u.nextBackoffLocked()
			u.publishBackoffLocked()
			return fmt.Errorf("dial %s: %w", u.addr, err)
		}
		u.conn = conn
		u.dialErrs = 0
		u.backoff = u.baseBackoff
		u.publishBackoffLocked()
	}
	if err := WriteFrame(u.conn, FrameSample, body); err != nil {
		_ = u.conn.Close()
		u.conn = nil
		return err
	}
	return nil
}

// nextBackoffLocked computes the wait before the next dial: the base
// doubled per consecutive failure, capped, then jittered ±jitterFrac.
func (u *Uplink) nextBackoffLocked() time.Duration {
	d := float64(u.baseBackoff)
	for i := 1; i < u.dialErrs; i++ {
		d *= 2
		if d >= float64(u.maxBackoff) {
			d = float64(u.maxBackoff)
			break
		}
	}
	if u.jitterFrac > 0 {
		d *= 1 - u.jitterFrac + 2*u.jitterFrac*u.rng.Float64()
	}
	if d > float64(u.maxBackoff) {
		d = float64(u.maxBackoff)
	}
	return time.Duration(d)
}

// publishBackoffLocked mirrors the current backoff into the obs gauge.
func (u *Uplink) publishBackoffLocked() {
	if u.metrics != nil {
		u.metrics.RemoteBackoff(u.id).Set(int64(u.backoff))
	}
}

// Backoff returns the current redial backoff — how long the uplink
// waits after the last failed dial before trying again.
func (u *Uplink) Backoff() time.Duration {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.backoff
}

// Stats returns (sent, dropped) counts.
func (u *Uplink) Stats() (sent, dropped int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sent, u.dropped
}

// Close shuts the connection down.
func (u *Uplink) Close() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.conn == nil {
		return nil
	}
	err := u.conn.Close()
	u.conn = nil
	return err
}

// Downlink is the server-side source component: received samples are
// re-emitted through its output port as if produced locally, preserving
// the envelope (time, attributes) so timing-dependent features keep
// working across the host boundary.
type Downlink struct {
	id  string
	out core.OutputSpec

	mu       sync.Mutex
	received int
}

var _ core.Component = (*Downlink)(nil)

// NewDownlink returns a downlink source declaring the given output.
func NewDownlink(id string, out core.OutputSpec) *Downlink {
	return &Downlink{id: id, out: out}
}

// ID implements core.Component.
func (d *Downlink) ID() string { return d.id }

// Spec implements core.Component.
func (d *Downlink) Spec() core.Spec {
	return core.Spec{Name: "Downlink", Output: d.out}
}

// Process implements core.Component; downlinks have no graph inputs.
func (d *Downlink) Process(int, core.Sample, core.Emit) error { return nil }

// Received returns how many samples arrived over the network.
func (d *Downlink) Received() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.received
}

// Server accepts uplink connections and injects received samples into a
// graph through a Downlink component. Use one Server per Downlink.
type Server struct {
	ln     net.Listener
	codecs Codecs
	g      *core.Graph
	dl     *Downlink

	mu     sync.Mutex
	errs   []error
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and injects every
// received sample into g as an emission of the given Downlink, which
// must already be added to g. Injection runs on receiver goroutines;
// run the graph with the async Runner, or make sure no local source is
// being stepped concurrently.
func Serve(addr string, g *core.Graph, dl *Downlink, codecs Codecs) (*Server, error) {
	if codecs == nil {
		codecs = DefaultCodecs()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, codecs: codecs, g: g, dl: dl, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		ftype, body, err := ReadFrame(conn)
		if err != nil {
			// Magic/version failures are recorded before dropping the
			// connection: a fleet running mixed builds should show up in
			// Errs(), not vanish as silent disconnects.
			var ve *VersionError
			if errors.Is(err, ErrBadMagic) || errors.As(err, &ve) {
				s.noteErr(err)
			}
			return // EOF or broken/incompatible peer: drop the connection
		}
		if ftype != FrameSample {
			// Control frames belong to cluster RPC listeners, not sample
			// ingest; note the misroute and keep the connection alive.
			s.noteErr(fmt.Errorf("remote: unexpected frame type 0x%02x on sample link", byte(ftype)))
			continue
		}
		sample, err := decodeSample(body, s.codecs)
		if err != nil {
			s.noteErr(err)
			continue
		}
		// Preserve the received envelope fields that matter (time,
		// attrs); the local graph restamps Source/Logical/Spans. The
		// received counter increments only after the sample has fully
		// propagated, so callers can use Received() as a processing
		// barrier (lockstep simulations rely on this).
		if err := s.g.Inject(s.dl.ID(), sample); err != nil {
			s.noteErr(err)
		}
		s.dl.mu.Lock()
		s.dl.received++
		s.dl.mu.Unlock()
	}
}

func (s *Server) noteErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) < 64 {
		s.errs = append(s.errs, err)
	}
}

// Errs returns decode/inject errors collected so far.
func (s *Server) Errs() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]error, len(s.errs))
	copy(out, s.errs)
	return out
}

// Close stops the listener and waits for receiver goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
