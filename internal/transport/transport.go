// Package transport implements the transportation-mode reasoning
// pipeline the paper cites as a motivating detail-demanding application
// (Zheng et al. [4]): "segmentation, feature extraction, decision tree
// classification and hidden-markov model post processing" — each stage
// a PerPos Processing Component, so the whole reasoning process lives
// inside the reified positioning graph instead of behind it.
package transport

import (
	"fmt"
	"math"
	"time"

	"perpos/internal/core"
	"perpos/internal/positioning"
)

// Sample kinds of the transportation-mode pipeline.
const (
	// KindSegment carries Segment payloads.
	KindSegment core.Kind = "transport.segment"
	// KindFeatures carries Features payloads.
	KindFeatures core.Kind = "transport.features"
	// KindMode carries ModeEstimate payloads.
	KindMode core.Kind = "transport.mode"
)

// Mode is a transportation mode.
type Mode int

// Modes, ordered by typical speed.
const (
	ModeStill Mode = iota + 1
	ModeWalk
	ModeBike
	ModeDrive
)

// Modes lists all modes in order.
func Modes() []Mode { return []Mode{ModeStill, ModeWalk, ModeBike, ModeDrive} }

// String returns the mode label matching trace ground-truth labels.
func (m Mode) String() string {
	switch m {
	case ModeStill:
		return "still"
	case ModeWalk:
		return "walk"
	case ModeBike:
		return "bike"
	case ModeDrive:
		return "drive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Segment is one fixed-duration window of positions.
type Segment struct {
	Start, End time.Time
	Positions  []positioning.Position
}

// Features are the per-segment movement statistics the classifier uses.
type Features struct {
	Start, End time.Time
	// MeanSpeed and MaxSpeed in m/s, from consecutive positions.
	MeanSpeed float64
	MaxSpeed  float64
	// SpeedStd is the standard deviation of segment speeds.
	SpeedStd float64
	// HeadingChange is the mean absolute heading change per step, in
	// degrees (walks wiggle, vehicles do not).
	HeadingChange float64
	// Points is the number of positions in the segment.
	Points int
}

// ModeEstimate is a classified segment.
type ModeEstimate struct {
	Start, End time.Time
	Mode       Mode
	// Confidence is the winning class's normalised likelihood.
	Confidence float64
	// Likelihoods are the per-mode emission likelihoods (indexed by
	// Mode), consumed by the HMM smoother.
	Likelihoods map[Mode]float64
}

// Segmenter groups incoming positions into fixed windows — the first
// stage of the reasoning pipeline.
type Segmenter struct {
	id     string
	window time.Duration

	start   time.Time
	pending []positioning.Position
}

var _ core.Component = (*Segmenter)(nil)

// NewSegmenter returns a segmenter with the given window (default 30 s).
func NewSegmenter(id string, window time.Duration) *Segmenter {
	if window <= 0 {
		window = 30 * time.Second
	}
	return &Segmenter{id: id, window: window}
}

// ID implements core.Component.
func (s *Segmenter) ID() string { return s.id }

// Spec implements core.Component.
func (s *Segmenter) Spec() core.Spec {
	return core.Spec{
		Name:   "Segmenter",
		Inputs: []core.PortSpec{{Name: "position", Accepts: []core.Kind{positioning.KindPosition}}},
		Output: core.OutputSpec{Kind: KindSegment},
	}
}

// Process implements core.Component.
func (s *Segmenter) Process(_ int, in core.Sample, emit core.Emit) error {
	pos, ok := in.Payload.(positioning.Position)
	if !ok {
		return nil
	}
	if len(s.pending) == 0 {
		s.start = in.Time
	}
	s.pending = append(s.pending, pos)
	if in.Time.Sub(s.start) >= s.window && len(s.pending) >= 2 {
		seg := Segment{Start: s.start, End: in.Time, Positions: s.pending}
		s.pending = nil
		emit(core.NewSample(KindSegment, seg, in.Time))
	}
	return nil
}

// NewFeatureExtractor returns the second stage: Segment -> Features.
func NewFeatureExtractor(id string) *core.FuncComponent {
	return core.NewTransform(id, KindSegment, KindFeatures, func(in core.Sample) (core.Sample, bool) {
		seg, ok := in.Payload.(Segment)
		if !ok || len(seg.Positions) < 2 {
			return core.Sample{}, false
		}
		f := extractFeatures(seg)
		out := core.NewSample(KindFeatures, f, in.Time)
		return out, true
	})
}

// speedBaseline is the displacement baseline used for speed estimates:
// consecutive fixes are metres apart while position noise is also
// metres, so speeds are computed over pairs at least this far apart in
// time, which divides the noise contribution by the baseline.
const speedBaseline = 15 * time.Second

// extractFeatures computes movement statistics from position pairs a
// noise-robust baseline apart.
func extractFeatures(seg Segment) Features {
	// Find the stride whose time distance reaches the baseline.
	stride := 1
	for stride < len(seg.Positions)-1 &&
		seg.Positions[stride].Time.Sub(seg.Positions[0].Time) < speedBaseline {
		stride++
	}
	var speeds []float64
	var headings []float64
	for i := stride; i < len(seg.Positions); i++ {
		a, b := seg.Positions[i-stride], seg.Positions[i]
		dt := b.Time.Sub(a.Time).Seconds()
		if dt <= 0 {
			continue
		}
		d := a.Global.DistanceTo(b.Global)
		speeds = append(speeds, d/dt)
		headings = append(headings, a.Global.BearingTo(b.Global))
	}
	f := Features{Start: seg.Start, End: seg.End, Points: len(seg.Positions)}
	if len(speeds) == 0 {
		return f
	}
	var sum, sumSq float64
	for _, v := range speeds {
		sum += v
		sumSq += v * v
		if v > f.MaxSpeed {
			f.MaxSpeed = v
		}
	}
	f.MeanSpeed = sum / float64(len(speeds))
	variance := sumSq/float64(len(speeds)) - f.MeanSpeed*f.MeanSpeed
	if variance > 0 {
		f.SpeedStd = math.Sqrt(variance)
	}
	// Mean absolute heading change between consecutive baselines,
	// ignoring near-stationary steps whose bearings are noise.
	var turnSum float64
	var turns int
	for i := 1; i < len(headings); i++ {
		if speeds[i] < 0.7 || speeds[i-1] < 0.7 {
			continue
		}
		diff := math.Abs(headings[i] - headings[i-1])
		if diff > 180 {
			diff = 360 - diff
		}
		turnSum += diff
		turns++
	}
	if turns > 0 {
		f.HeadingChange = turnSum / float64(turns)
	}
	return f
}

// modeProfile is the per-mode speed model used by the classifier's
// emission likelihoods: a Gaussian over mean speed.
type modeProfile struct {
	mean, sigma float64
}

var profiles = map[Mode]modeProfile{
	ModeStill: {mean: 0.1, sigma: 0.4},
	ModeWalk:  {mean: 1.4, sigma: 0.7},
	ModeBike:  {mean: 4.5, sigma: 1.8},
	ModeDrive: {mean: 13, sigma: 6},
}

// NewClassifier returns the third stage: a decision-tree + Gaussian
// scorer mapping Features to a ModeEstimate with per-mode likelihoods.
func NewClassifier(id string) *core.FuncComponent {
	return core.NewTransform(id, KindFeatures, KindMode, func(in core.Sample) (core.Sample, bool) {
		f, ok := in.Payload.(Features)
		if !ok {
			return core.Sample{}, false
		}
		est := classify(f)
		return core.NewSample(KindMode, est, in.Time), true
	})
}

// classify scores each mode's speed profile against the segment and
// picks the argmax — the decision-tree step of [4], with the Gaussian
// scores retained for HMM post-processing.
func classify(f Features) ModeEstimate {
	likelihoods := make(map[Mode]float64, 4)
	var total float64
	for mode, p := range profiles {
		d := (f.MeanSpeed - p.mean) / p.sigma
		l := math.Exp(-d * d / 2)
		// A wiggly heading profile discounts vehicle modes.
		if f.HeadingChange > 25 && (mode == ModeDrive || mode == ModeBike) {
			l *= 0.5
		}
		likelihoods[mode] = l + 1e-9
		total += likelihoods[mode]
	}
	best := ModeStill
	for _, mode := range Modes() {
		if likelihoods[mode] > likelihoods[best] {
			best = mode
		}
	}
	return ModeEstimate{
		Start:       f.Start,
		End:         f.End,
		Mode:        best,
		Confidence:  likelihoods[best] / total,
		Likelihoods: likelihoods,
	}
}

// HMMSmoother is the fourth stage: a first-order hidden Markov model
// over the classifier's per-mode likelihoods, run as an online forward
// filter. Mode transitions are sticky, so single-segment
// misclassifications get smoothed away — the post-processing step
// of [4].
type HMMSmoother struct {
	id string
	// stay is the self-transition probability (default 0.85).
	stay float64

	belief map[Mode]float64

	flips int
	last  Mode
}

var _ core.Component = (*HMMSmoother)(nil)

// NewHMMSmoother returns the smoother; stay <= 0 defaults to 0.85.
func NewHMMSmoother(id string, stay float64) *HMMSmoother {
	if stay <= 0 || stay >= 1 {
		stay = 0.85
	}
	return &HMMSmoother{id: id, stay: stay}
}

// ID implements core.Component.
func (h *HMMSmoother) ID() string { return h.id }

// Spec implements core.Component.
func (h *HMMSmoother) Spec() core.Spec {
	return core.Spec{
		Name:   "HMMSmoother",
		Inputs: []core.PortSpec{{Name: "mode", Accepts: []core.Kind{KindMode}}},
		Output: core.OutputSpec{Kind: KindMode},
	}
}

// Process implements core.Component: one forward-algorithm step.
func (h *HMMSmoother) Process(_ int, in core.Sample, emit core.Emit) error {
	est, ok := in.Payload.(ModeEstimate)
	if !ok {
		return nil
	}
	modes := Modes()
	if h.belief == nil {
		h.belief = make(map[Mode]float64, len(modes))
		for _, m := range modes {
			h.belief[m] = 1 / float64(len(modes))
		}
	}
	move := (1 - h.stay) / float64(len(modes)-1)

	// Temper the classifier's emissions by mixing with a uniform
	// distribution: a single extreme observation (a GPS blip) must not
	// be able to overwhelm the sticky prior, while consistent evidence
	// over 2+ segments still wins.
	const mix = 0.3
	uniform := 1 / float64(len(modes))

	next := make(map[Mode]float64, len(modes))
	var total float64
	for _, to := range modes {
		var prior float64
		for _, from := range modes {
			t := move
			if from == to {
				t = h.stay
			}
			prior += h.belief[from] * t
		}
		emission := (1-mix)*est.Likelihoods[to] + mix*uniform
		next[to] = prior * emission
		total += next[to]
	}
	if total <= 0 {
		// Degenerate emission; keep the previous belief.
		return nil
	}
	for _, m := range modes {
		next[m] /= total
	}
	h.belief = next

	best := modes[0]
	for _, m := range modes {
		if h.belief[m] > h.belief[best] {
			best = m
		}
	}
	if h.last != 0 && best != h.last {
		h.flips++
	}
	h.last = best

	out := est
	out.Mode = best
	out.Confidence = h.belief[best]
	emit(core.NewSample(KindMode, out, in.Time))
	return nil
}

// Flips returns how many times the smoothed mode changed.
func (h *HMMSmoother) Flips() int { return h.flips }
