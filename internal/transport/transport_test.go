package transport

import (
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

func TestModeString(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{ModeStill, "still"},
		{ModeWalk, "walk"},
		{ModeBike, "bike"},
		{ModeDrive, "drive"},
		{Mode(9), "mode(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
	if len(Modes()) != 4 {
		t.Errorf("Modes() = %v", Modes())
	}
}

// positionsAtSpeed fabricates a position stream moving east at the
// given speed.
func positionsAtSpeed(speed float64, n int, dt time.Duration) []core.Sample {
	proj := geo.NewProjection(testOrigin)
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	out := make([]core.Sample, n)
	for i := range out {
		e := speed * dt.Seconds() * float64(i)
		pos := positioning.Position{
			Time:   at,
			Global: proj.ToGlobal(geo.ENU{East: e}),
		}
		out[i] = core.NewSample(positioning.KindPosition, pos, at)
		at = at.Add(dt)
	}
	return out
}

func TestSegmenterWindows(t *testing.T) {
	s := NewSegmenter("seg", 10*time.Second)
	var segments []Segment
	emit := func(smp core.Sample) { segments = append(segments, smp.Payload.(Segment)) }
	for _, smp := range positionsAtSpeed(1, 35, time.Second) {
		if err := s.Process(0, smp, emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(segments) != 3 {
		t.Fatalf("segments = %d, want 3 (35 s / 10 s windows)", len(segments))
	}
	for i, seg := range segments {
		if len(seg.Positions) < 2 {
			t.Errorf("segment %d has %d positions", i, len(seg.Positions))
		}
		if !seg.End.After(seg.Start) {
			t.Errorf("segment %d time range inverted", i)
		}
	}
}

func TestSegmenterIgnoresGarbage(t *testing.T) {
	s := NewSegmenter("seg", time.Second)
	emit := func(core.Sample) { t.Error("emitted from garbage") }
	if err := s.Process(0, core.NewSample(positioning.KindPosition, "junk", time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureExtraction(t *testing.T) {
	tests := []struct {
		name   string
		speed  float64
		wantLo float64
		wantHi float64
	}{
		{"still", 0.05, 0, 0.3},
		{"walking", 1.4, 1.1, 1.7},
		{"driving", 13, 11, 15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			samples := positionsAtSpeed(tt.speed, 31, time.Second)
			positions := make([]positioning.Position, len(samples))
			for i, s := range samples {
				positions[i] = s.Payload.(positioning.Position)
			}
			seg := Segment{
				Start:     positions[0].Time,
				End:       positions[len(positions)-1].Time,
				Positions: positions,
			}
			f := extractFeatures(seg)
			if f.MeanSpeed < tt.wantLo || f.MeanSpeed > tt.wantHi {
				t.Errorf("MeanSpeed = %.2f, want [%.1f, %.1f]", f.MeanSpeed, tt.wantLo, tt.wantHi)
			}
			if f.Points != 31 {
				t.Errorf("Points = %d", f.Points)
			}
		})
	}
}

func TestClassifyBySpeed(t *testing.T) {
	tests := []struct {
		speed float64
		want  Mode
	}{
		{0.05, ModeStill},
		{1.4, ModeWalk},
		{4.5, ModeBike},
		{14, ModeDrive},
	}
	for _, tt := range tests {
		f := Features{MeanSpeed: tt.speed}
		est := classify(f)
		if est.Mode != tt.want {
			t.Errorf("classify(speed %.2f) = %v, want %v", tt.speed, est.Mode, tt.want)
		}
		if est.Confidence <= 0 || est.Confidence > 1 {
			t.Errorf("confidence = %v", est.Confidence)
		}
		if len(est.Likelihoods) != 4 {
			t.Errorf("likelihoods = %v", est.Likelihoods)
		}
	}
}

func TestHMMSmootherSuppressesFlicker(t *testing.T) {
	h := NewHMMSmoother("hmm", 0.85)
	var out []Mode
	emit := func(s core.Sample) { out = append(out, s.Payload.(ModeEstimate).Mode) }

	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	feed := func(speeds ...float64) {
		for _, v := range speeds {
			est := classify(Features{MeanSpeed: v, Start: at, End: at.Add(30 * time.Second)})
			sample := core.NewSample(KindMode, est, at)
			if err := h.Process(0, sample, emit); err != nil {
				t.Fatal(err)
			}
			at = at.Add(30 * time.Second)
		}
	}

	// Ten walking segments with one spurious "bike" blip in the middle.
	feed(1.4, 1.3, 1.5, 1.4)
	feed(4.6) // GPS noise blip
	feed(1.4, 1.5, 1.3, 1.4, 1.5)

	for i, m := range out {
		if m != ModeWalk {
			t.Errorf("segment %d smoothed to %v, want walk (flicker not suppressed)", i, m)
		}
	}
	if h.Flips() != 0 {
		t.Errorf("Flips = %d, want 0", h.Flips())
	}

	// A sustained change of mode must eventually win through.
	feed(12, 13, 12.5, 13.5)
	if out[len(out)-1] != ModeDrive {
		t.Errorf("sustained driving smoothed to %v", out[len(out)-1])
	}
	if h.Flips() == 0 {
		t.Error("genuine transition not registered")
	}
}

// TestEndToEndMultimodal runs the full reasoning pipeline over a
// multimodal trace fed through the GPS substrate — the [4] workload
// inside a PerPos graph.
func TestEndToEndMultimodal(t *testing.T) {
	tr := trace.Multimodal(testOrigin, 101, time.Second)
	g := core.New()
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: 102, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		NewSegmenter("segmenter", 30*time.Second),
		NewFeatureExtractor("features"),
		NewClassifier("classifier"),
		NewHMMSmoother("hmm", 0),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	sink := core.NewSink("app", []core.Kind{KindMode})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	order := []string{"gps", "parser", "interpreter", "segmenter", "features", "classifier", "hmm", "app"}
	for i := 0; i < len(order)-1; i++ {
		if err := g.Connect(order[i], order[i+1], 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	estimates := sink.Received()
	if len(estimates) < 10 {
		t.Fatalf("only %d mode estimates", len(estimates))
	}
	hits, total := 0, 0
	for _, s := range estimates {
		est := s.Payload.(ModeEstimate)
		mid := est.Start.Add(est.End.Sub(est.Start) / 2)
		truth, ok := tr.At(mid)
		if !ok || truth.Mode == "" {
			continue
		}
		total++
		if est.Mode.String() == truth.Mode {
			hits++
		}
	}
	acc := float64(hits) / float64(total)
	if acc < 0.7 {
		t.Errorf("mode accuracy = %.2f (%d/%d), want >= 0.7", acc, hits, total)
	}
	t.Logf("multimodal mode accuracy: %.0f%% (%d/%d segments)", acc*100, hits, total)
}
