// Package checkpoint is the durability subsystem: an append-only,
// CRC-framed journal of session-state records plus periodically
// compacted snapshots, so a tracked target's positioning process — its
// filter estimates, replay positions and logical clocks — survives
// eviction and process death. The design follows the classic
// checkpoint-and-replay recipe (re-execution from durable intermediate
// state, à la MapReduce's recovery story) applied at the granularity of
// one session's Process Structure Layer state.
//
// Layout: each session owns two files under the store directory,
// <escaped-id>.journal (appended frames, newest last) and
// <escaped-id>.snap (a single frame, rewritten atomically on
// compaction). A frame is
//
//	magic(2) | length(4, LE) | crc32(4, LE, IEEE of payload) | payload
//
// with a JSON-encoded Record payload. Recovery scans the journal until
// the first bad frame — a torn write at the tail after a crash is
// expected, not fatal — and falls back to the snapshot file when the
// journal yields nothing. The newest sequence number wins.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"perpos/internal/core"
)

// Errors returned by the store.
var (
	// ErrClosed indicates use after Close.
	ErrClosed = errors.New("checkpoint: store closed")
	// ErrNoState indicates Load found no usable state for the session.
	ErrNoState = errors.New("checkpoint: no state for session")
	// ErrCompaction indicates an append landed durably in the journal
	// (the returned seq is valid and recoverable) but promoting it into
	// the snapshot file failed. Callers that only care about durability
	// may treat it as a warning; it previously went unreported entirely.
	ErrCompaction = errors.New("checkpoint: snapshot compaction failed")
	// ErrLocked indicates another store (in this or another process)
	// holds the directory's exclusive lock. Two writers appending to the
	// same journals would interleave frames and corrupt each other's
	// recovery, so Open fails fast instead.
	ErrLocked = errors.New("checkpoint: store directory locked by another store")
)

// SessionState is one durable checkpoint of a session: everything
// ResumeSession needs to rebuild the target's pipeline where it left
// off. Graph structure is NOT recorded — the Blueprint owns that; the
// state rides on top of a structurally identical fresh instance.
type SessionState struct {
	// SessionID is the tracked target the state belongs to.
	SessionID string `json:"session_id"`
	// Seq is the store-assigned checkpoint sequence number, strictly
	// increasing per session. The newest surviving record wins recovery.
	Seq uint64 `json:"seq"`
	// Taken is the wall-clock time the checkpoint was captured.
	Taken time.Time `json:"taken"`
	// Graph carries the logical clocks, span bookkeeping and component
	// state of every node (core.Graph.SnapshotState).
	Graph core.GraphState `json:"graph"`
	// Availability is the provider's JSR-179 state at capture time
	// (positioning.Availability's integer value).
	Availability int `json:"availability"`
	// Revision is the blueprint revision the session was running when
	// captured (0 for sessions of an unversioned blueprint). Resume
	// rehydrates onto the manager's active revision regardless — state
	// for nodes absent there is skipped — but the recorded revision
	// tells an operator what the checkpoint's layout was.
	Revision int `json:"revision,omitempty"`
}

// Options configure a Store.
type Options struct {
	// SnapshotEvery compacts a session's journal into its snapshot file
	// after this many appends (default 8; 1 compacts on every append).
	SnapshotEvery int
	// Fsync forces an fsync after every append and snapshot. Off by
	// default: the journal already survives process crashes (the torn
	// tail is skipped); Fsync additionally covers OS crashes at a heavy
	// per-checkpoint cost.
	Fsync bool
	// OnAppend, when set, observes every Append: the session, the
	// journal bytes written (0 when nothing reached the file), the
	// wall-clock duration of the durable write, and its error. The
	// signature matches obs.(*Metrics).CheckpointAppend so a metrics hub
	// wires in directly. Called outside the journal lock.
	OnAppend func(sessionID string, bytes int, d time.Duration, err error)
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 8
	}
	return o
}

// Store manages the checkpoint files of many sessions under one
// directory. All methods are safe for concurrent use; per-session
// operations serialize on the session's journal, so different sessions
// checkpoint in parallel.
type Store struct {
	dir  string
	opts Options
	lock *dirLock

	mu       sync.Mutex
	closed   bool
	sessions map[string]*journal
}

// Open returns a store rooted at dir, creating the directory if needed
// and taking its exclusive lock: a LOCK file under dir is flock'd so a
// second store on the same directory — in this process or another —
// fails fast with ErrLocked instead of corrupting the journals. The
// lock is advisory, held for the store's lifetime and released by Close
// (or by the OS when the process dies, so a crashed writer never wedges
// the directory).
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:      dir,
		opts:     opts.withDefaults(),
		lock:     lock,
		sessions: make(map[string]*journal),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// journalFor returns (creating on demand) the session's journal handle.
func (s *Store) journalFor(id string) (*journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	j, ok := s.sessions[id]
	if !ok {
		j = &journal{
			path:     filepath.Join(s.dir, escapeID(id)+journalExt),
			snapPath: filepath.Join(s.dir, escapeID(id)+snapExt),
			fsync:    s.opts.Fsync,
		}
		s.sessions[id] = j
	}
	return j, nil
}

// Append durably records one checkpoint for state.SessionID, assigning
// and returning its sequence number. Every Options.SnapshotEvery
// appends the journal is compacted: the newest state is rewritten
// atomically into the snapshot file and the journal restarted. An
// error wrapping ErrCompaction means the record itself IS durable (the
// returned seq is valid) but the snapshot promotion failed.
func (s *Store) Append(state SessionState) (uint64, error) {
	j, err := s.journalFor(state.SessionID)
	if err != nil {
		if s.opts.OnAppend != nil {
			s.opts.OnAppend(state.SessionID, 0, 0, err)
		}
		return 0, err
	}
	start := time.Now()
	seq, n, err := j.append(state, s.opts.SnapshotEvery)
	if s.opts.OnAppend != nil {
		s.opts.OnAppend(state.SessionID, n, time.Since(start), err)
	}
	return seq, err
}

// Load recovers the newest intact checkpoint for the session: the last
// valid journal frame, or the snapshot file when the journal is empty,
// missing or corrupt from the start. A corrupt or truncated journal
// tail silently falls back to the last good frame before it. Returns
// ErrNoState when the session has no usable state at all.
func (s *Store) Load(sessionID string) (SessionState, error) {
	j, err := s.journalFor(sessionID)
	if err != nil {
		return SessionState{}, err
	}
	return j.load()
}

// Sessions lists the IDs with checkpoint files on disk, sorted.
func (s *Store) Sessions() ([]string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list %s: %w", s.dir, err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		var base string
		switch {
		case strings.HasSuffix(name, journalExt):
			base = strings.TrimSuffix(name, journalExt)
		case strings.HasSuffix(name, snapExt):
			base = strings.TrimSuffix(name, snapExt)
		default:
			continue
		}
		if id, ok := unescapeID(base); ok {
			seen[id] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// Detach closes the session's journal file handle and forgets it
// WITHOUT deleting the files — the handoff-safe release. The source
// side of a session handoff calls it after exporting state: the files
// stay on disk as a resurrection backstop until the receiver
// acknowledges, and the closed handle means a later Remove (the purge
// on acknowledgment) or an adopting peer's re-open races against
// nothing. A subsequent Append/Load on the same ID lazily re-opens the
// files. Detaching an unknown session is a no-op.
func (s *Store) Detach(sessionID string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	j, ok := s.sessions[sessionID]
	if ok {
		delete(s.sessions, sessionID)
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return j.close()
}

// Remove deletes the session's checkpoint files — called when a target
// is deliberately untracked and its state should not be resumable.
func (s *Store) Remove(sessionID string) error {
	j, err := s.journalFor(sessionID)
	if err != nil {
		return err
	}
	if err := j.remove(); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.sessions, sessionID)
	s.mu.Unlock()
	return nil
}

// Close releases every open journal file. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	for _, j := range s.sessions {
		if err := j.close(); err != nil {
			errs = append(errs, err)
		}
	}
	s.sessions = nil
	if s.lock != nil {
		if err := s.lock.release(); err != nil {
			errs = append(errs, err)
		}
		s.lock = nil
	}
	return errors.Join(errs...)
}

// encodeRecord serializes a SessionState into a frame payload.
func encodeRecord(state SessionState) ([]byte, error) {
	data, err := json.Marshal(state)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode session %q: %w", state.SessionID, err)
	}
	return data, nil
}

// decodeRecord deserializes a frame payload.
func decodeRecord(payload []byte) (SessionState, error) {
	var state SessionState
	if err := json.Unmarshal(payload, &state); err != nil {
		return SessionState{}, fmt.Errorf("checkpoint: decode record: %w", err)
	}
	return state, nil
}

// escapeID maps a session ID to a filesystem-safe file stem:
// alphanumerics, '-' and '_' pass through, everything else becomes
// %XX. The mapping is invertible so Sessions can list IDs.
func escapeID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// unescapeID reverses escapeID.
func unescapeID(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(s) {
			return "", false
		}
		var v int
		if _, err := fmt.Sscanf(s[i+1:i+3], "%02X", &v); err != nil {
			return "", false
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), true
}
