package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	journalExt = ".journal"
	snapExt    = ".snap"

	// frameHeaderLen is magic(2) + length(4) + crc(4).
	frameHeaderLen = 10
	// maxFrameLen bounds a single record; larger lengths in a header are
	// treated as corruption rather than attempted allocations.
	maxFrameLen = 64 << 20
)

// frameMagic marks the start of a frame; a mismatch means the scan ran
// into garbage and recovery stops at the previous good frame.
var frameMagic = [2]byte{0xC5, 0x9E}

// journal is the per-session durable state: an append-only frame log
// plus a single-frame snapshot file maintained by compaction. All
// operations serialize on mu.
type journal struct {
	mu       sync.Mutex
	path     string
	snapPath string
	fsync    bool

	f       *os.File // opened lazily for append
	appends int      // appends since the last compaction
	nextSeq uint64   // 0 = not yet recovered from disk
}

// writeFrame appends one frame to w.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	copy(hdr[0:2], frameMagic[:])
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[6:10], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// scanFrames reads frames from data until the first corrupt or
// truncated frame, returning the valid payloads in order. A bad tail is
// the expected post-crash shape and is not an error.
func scanFrames(data []byte) [][]byte {
	var out [][]byte
	for len(data) >= frameHeaderLen {
		if !bytes.Equal(data[0:2], frameMagic[:]) {
			break
		}
		n := binary.LittleEndian.Uint32(data[2:6])
		if n > maxFrameLen || int(n) > len(data)-frameHeaderLen {
			break // truncated or nonsense length
		}
		payload := data[frameHeaderLen : frameHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[6:10]) {
			break // torn write
		}
		out = append(out, payload)
		data = data[frameHeaderLen+int(n):]
	}
	return out
}

// lastGood decodes the newest valid record in a frame log, preferring
// later frames (higher Seq) and skipping frames whose JSON is somehow
// undecodable despite an intact CRC.
func lastGood(data []byte) (SessionState, bool) {
	frames := scanFrames(data)
	for i := len(frames) - 1; i >= 0; i-- {
		if state, err := decodeRecord(frames[i]); err == nil {
			return state, true
		}
	}
	return SessionState{}, false
}

// recoverLocked establishes nextSeq from disk on first use.
func (j *journal) recoverLocked() error {
	if j.nextSeq != 0 {
		return nil
	}
	state, err := j.loadLocked()
	switch {
	case err == nil:
		j.nextSeq = state.Seq + 1
	case errors.Is(err, ErrNoState):
		j.nextSeq = 1
	default:
		return err
	}
	return nil
}

// append writes one record, compacting every snapshotEvery appends. It
// returns the assigned sequence number and the number of journal bytes
// written. A compaction failure after a successful append returns the
// assigned seq together with an error wrapping ErrCompaction: the
// record IS durable in the journal, only snapshot promotion failed.
func (j *journal) append(state SessionState, snapshotEvery int) (uint64, int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.recoverLocked(); err != nil {
		return 0, 0, err
	}
	state.Seq = j.nextSeq

	payload, err := encodeRecord(state)
	if err != nil {
		return 0, 0, err
	}
	if j.f == nil {
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 0, 0, fmt.Errorf("checkpoint: open journal: %w", err)
		}
		j.f = f
	}
	if err := writeFrame(j.f, payload); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: append: %w", err)
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return 0, 0, fmt.Errorf("checkpoint: sync journal: %w", err)
		}
	}
	written := frameHeaderLen + len(payload)
	j.nextSeq++
	j.appends++
	if j.appends >= snapshotEvery {
		if cerr := j.compactLocked(payload); cerr != nil {
			return state.Seq, written, fmt.Errorf("%w: %w", ErrCompaction, cerr)
		}
	}
	return state.Seq, written, nil
}

// compactLocked promotes the given (newest) record payload into the
// snapshot file atomically and restarts the journal. Called with j.mu
// held and j.f open.
func (j *journal) compactLocked(newest []byte) error {
	tmp := j.snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	if err := writeFrame(f, newest); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	if j.fsync {
		if err := f.Sync(); err != nil {
			err = errors.Join(err, f.Close())
			os.Remove(tmp)
			return fmt.Errorf("checkpoint: sync snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	if err := os.Rename(tmp, j.snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	// The snapshot now covers everything in the journal: restart it.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("checkpoint: truncate journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: truncate journal: %w", err)
	}
	j.appends = 0
	return nil
}

// load recovers the newest intact record.
func (j *journal) load() (SessionState, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loadLocked()
}

func (j *journal) loadLocked() (SessionState, error) {
	var best SessionState
	var found bool
	if data, err := os.ReadFile(j.path); err == nil {
		if state, ok := lastGood(data); ok {
			best, found = state, true
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return SessionState{}, fmt.Errorf("checkpoint: read journal: %w", err)
	}
	if data, err := os.ReadFile(j.snapPath); err == nil {
		if state, ok := lastGood(data); ok && (!found || state.Seq > best.Seq) {
			best, found = state, true
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return SessionState{}, fmt.Errorf("checkpoint: read snapshot: %w", err)
	}
	if !found {
		return SessionState{}, ErrNoState
	}
	return best, nil
}

// remove deletes both files and resets the handle.
func (j *journal) remove() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var errs []error
	if j.f != nil {
		if err := j.f.Close(); err != nil {
			errs = append(errs, err)
		}
		j.f = nil
	}
	for _, p := range []string{j.path, j.snapPath} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	j.appends, j.nextSeq = 0, 0
	return errors.Join(errs...)
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
