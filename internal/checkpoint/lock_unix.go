//go:build unix

package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName is the advisory lock file kept at the store root. It
// carries no data — only the flock matters — and is deliberately left
// behind on Close so concurrent openers race on one stable inode.
const lockFileName = "LOCK"

// dirLock holds the flock'd LOCK file of one store directory.
type dirLock struct {
	f *os.File
}

// acquireDirLock takes the exclusive, non-blocking flock on dir/LOCK.
// flock locks are per file description, so a second Open in the same
// process conflicts exactly like one from another process; they die
// with the owning process, so a crashed writer never wedges the store.
func acquireDirLock(dir string) (*dirLock, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, fmt.Errorf("checkpoint: lock %s: %w", path, err)
	}
	return &dirLock{f: f}, nil
}

// release drops the flock and closes the file.
func (l *dirLock) release() error {
	if l.f == nil {
		return nil
	}
	err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	cerr := l.f.Close()
	l.f = nil
	return errors.Join(err, cerr)
}
