package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// appendLog records OnAppend invocations.
type appendLog struct {
	mu    sync.Mutex
	calls []appendCall
}

type appendCall struct {
	id    string
	bytes int
	d     time.Duration
	err   error
}

func (l *appendLog) hook(id string, bytes int, d time.Duration, err error) {
	l.mu.Lock()
	l.calls = append(l.calls, appendCall{id, bytes, d, err})
	l.mu.Unlock()
}

func (l *appendLog) last(t *testing.T) appendCall {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.calls) == 0 {
		t.Fatal("OnAppend never called")
	}
	return l.calls[len(l.calls)-1]
}

func TestOnAppendObservesSuccess(t *testing.T) {
	log := &appendLog{}
	st, err := Open(t.TempDir(), Options{OnAppend: log.hook})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Append(testState("alice", 1)); err != nil {
		t.Fatal(err)
	}
	c := log.last(t)
	if c.id != "alice" || c.err != nil {
		t.Errorf("call = %+v, want alice/no error", c)
	}
	if c.bytes <= frameHeaderLen {
		t.Errorf("bytes = %d, want > header (%d)", c.bytes, frameHeaderLen)
	}
}

// TestAppendSurfacesCompactionFailure blocks snapshot promotion by
// planting a directory where the snapshot temp file goes: O_CREATE on a
// directory fails for any euid, so this works under root too. Before
// the fix, the append reported success and the broken snapshot cycle
// went entirely unnoticed.
func TestAppendSurfacesCompactionFailure(t *testing.T) {
	dir := t.TempDir()
	log := &appendLog{}
	st, err := Open(dir, Options{SnapshotEvery: 1, OnAppend: log.hook})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := os.Mkdir(filepath.Join(dir, "alice.snap.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}

	seq, err := st.Append(testState("alice", 1))
	if !errors.Is(err, ErrCompaction) {
		t.Fatalf("append error = %v, want wrapped ErrCompaction", err)
	}
	if seq != 1 {
		t.Errorf("seq = %d, want 1: the record is durable despite the failed compaction", seq)
	}
	if c := log.last(t); !errors.Is(c.err, ErrCompaction) || c.bytes == 0 {
		t.Errorf("hook call = %+v, want compaction error with journal bytes", c)
	}

	// The journal frame survived, so recovery still works…
	got, err := st.Load("alice")
	if err != nil {
		t.Fatalf("load after failed compaction: %v", err)
	}
	if got.Seq != 1 {
		t.Errorf("loaded seq = %d, want 1", got.Seq)
	}

	// …and once the obstruction clears, the next append compacts and
	// sequence numbering continues.
	if err := os.Remove(filepath.Join(dir, "alice.snap.tmp")); err != nil {
		t.Fatal(err)
	}
	seq, err = st.Append(testState("alice", 2))
	if err != nil {
		t.Fatalf("append after clearing: %v", err)
	}
	if seq != 2 {
		t.Errorf("seq = %d, want 2", seq)
	}
	if _, err := os.Stat(filepath.Join(dir, "alice.snap")); err != nil {
		t.Errorf("snapshot not written after recovery: %v", err)
	}
}

// TestAppendReadOnlyDir covers the permission-denied shape of the same
// failure. Root bypasses mode bits, so this variant is skipped there;
// the Mkdir obstruction above keeps CI-as-root coverage.
func TestAppendReadOnlyDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("mode bits do not bind root")
	}
	dir := t.TempDir()
	log := &appendLog{}
	st, err := Open(dir, Options{SnapshotEvery: 1, OnAppend: log.hook})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)

	if _, err := st.Append(testState("alice", 1)); err == nil {
		t.Fatal("append into read-only dir succeeded")
	}
	if c := log.last(t); c.err == nil || c.bytes != 0 {
		t.Errorf("hook call = %+v, want error with zero bytes", c)
	}
}
