package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"perpos/internal/core"
)

func testState(id string, clock core.LogicalTime) SessionState {
	return SessionState{
		SessionID: id,
		Taken:     time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Graph: core.GraphState{Nodes: []core.NodeState{
			{ID: "filter", Clock: clock, Component: []byte(`{"count":` + itoa(int(clock)) + `}`)},
		}},
		Availability: 1,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestAppendLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 1; i <= 3; i++ {
		seq, err := st.Append(testState("alice", core.LogicalTime(i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	got, err := st.Load("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || got.Graph.Nodes[0].Clock != 3 {
		t.Fatalf("loaded seq=%d clock=%d, want 3/3", got.Seq, got.Graph.Nodes[0].Clock)
	}
}

func TestLoadNoState(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Load("nobody"); !errors.Is(err, ErrNoState) {
		t.Fatalf("Load = %v, want ErrNoState", err)
	}
}

// TestCorruptTailFallsBack flips bytes in the journal tail: recovery
// must return the last frame before the damage.
func TestCorruptTailFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := st.Append(testState("bob", core.LogicalTime(i))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	path := filepath.Join(dir, "bob.journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of the final frame.
	for i := len(data) - 4; i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Load("bob")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 {
		t.Fatalf("recovered seq = %d, want 2 (last good before corrupt tail)", got.Seq)
	}
	// Appending after recovery continues the sequence past the damage.
	seq, err := st2.Append(testState("bob", 9))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-recovery seq = %d, want 3", seq)
	}
}

// TestTruncatedTailFallsBack cuts the journal mid-frame — the torn
// write a crash leaves behind.
func TestTruncatedTailFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := st.Append(testState("carol", core.LogicalTime(i))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	path := filepath.Join(dir, "carol.journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Load("carol")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 {
		t.Fatalf("recovered seq = %d, want 1", got.Seq)
	}
}

// TestSnapshotCompaction: after SnapshotEvery appends the journal is
// restarted and the snapshot carries the newest state; a fully
// garbage journal then still recovers from the snapshot.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := st.Append(testState("dave", core.LogicalTime(i))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	jpath := filepath.Join(dir, "dave.journal")
	if fi, err := os.Stat(jpath); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after compaction: size=%v err=%v, want empty", fi.Size(), err)
	}
	// Destroy the journal entirely: recovery must use the snapshot.
	if err := os.WriteFile(jpath, []byte("garbage that is no frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Load("dave")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 4 {
		t.Fatalf("snapshot recovery seq = %d, want 4", got.Seq)
	}
}

func TestSessionsAndRemove(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, id := range []string{"target-001", "target/with:odd chars", "zeta"} {
		if _, err := st.Append(testState(id, 1)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"target-001", "target/with:odd chars", "zeta"}
	if len(ids) != len(want) {
		t.Fatalf("Sessions = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Sessions = %v, want %v", ids, want)
		}
	}
	if err := st.Remove("zeta"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("zeta"); !errors.Is(err, ErrNoState) {
		t.Fatalf("Load after Remove = %v, want ErrNoState", err)
	}
	ids, _ = st.Sessions()
	if len(ids) != 2 {
		t.Fatalf("Sessions after remove = %v, want 2 entries", ids)
	}
}

func TestClosedStore(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := st.Append(testState("x", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if _, err := st.Load("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Load after Close = %v, want ErrClosed", err)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	for _, id := range []string{"plain", "has space", "sl/ash", "uni·code", "%percent"} {
		esc := escapeID(id)
		for i := 0; i < len(esc); i++ {
			c := esc[i]
			ok := c == '-' || c == '_' || c == '%' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("escapeID(%q) = %q contains unsafe byte %q", id, esc, c)
			}
		}
		back, ok := unescapeID(esc)
		if !ok || back != id {
			t.Fatalf("unescapeID(escapeID(%q)) = %q, %v", id, back, ok)
		}
	}
}
