//go:build !unix

package checkpoint

// Non-unix platforms have no flock; the store runs unlocked there, as
// it did before cross-process locking existed. CI and deployment
// targets are linux, where lock_unix.go applies.

type dirLock struct{}

func acquireDirLock(string) (*dirLock, error) { return nil, nil }

func (l *dirLock) release() error { return nil }
