//go:build unix

package checkpoint

import (
	"errors"
	"testing"
)

// TestOpenLocksStoreDirectory: the second Open on a directory fails
// fast with ErrLocked while the first store lives, and succeeds again
// once it is closed.
func TestOpenLocksStoreDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}

	// A different directory is independent.
	other, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open on distinct dir: %v", err)
	}
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("re-Open after Close = %v, want nil", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and does not double-release the lock.
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}
