//go:build unix

package checkpoint

import (
	"errors"
	"sync"
	"testing"
	"time"

	"perpos/internal/core"
)

func contentionState(id string, clock int) SessionState {
	return SessionState{
		SessionID: id,
		Taken:     time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Graph:     oneNodeGraph(id, clock),
	}
}

// oneNodeGraph builds a one-node graph state whose logical clock
// distinguishes records.
func oneNodeGraph(id string, clock int) core.GraphState {
	return core.GraphState{Nodes: []core.NodeState{{ID: id, Clock: core.LogicalTime(clock)}}}
}

// TestOpenRace: many goroutines race Open on one directory; exactly one
// wins, everyone else gets ErrLocked — the cross-process writer
// exclusion that makes store-directory adoption safe.
func TestOpenRace(t *testing.T) {
	dir := t.TempDir()
	const racers = 8
	var wg sync.WaitGroup
	stores := make([]*Store, racers)
	errs := make([]error, racers)
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			stores[i], errs[i] = Open(dir, Options{})
		}(i)
	}
	close(start)
	wg.Wait()

	winners := 0
	for i := 0; i < racers; i++ {
		switch {
		case errs[i] == nil:
			winners++
			defer stores[i].Close()
		case errors.Is(errs[i], ErrLocked):
		default:
			t.Errorf("racer %d: unexpected error %v", i, errs[i])
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}

// TestCloseHandsOffToPeer is the handoff sequence at the store level:
// the source closes, the peer opens the same directory immediately (no
// grace period, the flock release is synchronous) and reads the
// source's newest record.
func TestCloseHandsOffToPeer(t *testing.T) {
	dir := t.TempDir()
	src, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Append(contentionState("t-1", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Append(contentionState("t-1", 9)); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	peer, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("peer Open immediately after Close = %v, want nil", err)
	}
	defer peer.Close()
	state, err := peer.Load("t-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Graph.Nodes) != 1 || state.Graph.Nodes[0].Clock != 9 {
		t.Errorf("peer loaded %+v, want the newest record (clock 9)", state.Graph)
	}
}

// TestRemoveByAdopterAfterDeath: a dying node held the session's
// journal handle open; after its store closes (process death), an
// adopting peer can Load and then Remove the session's files — nothing
// the dead writer did wedges the directory or the files.
func TestRemoveByAdopterAfterDeath(t *testing.T) {
	dir := t.TempDir()
	dying, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The append leaves the journal file handle open inside the store —
	// the state a crash interrupts.
	if _, err := dying.Append(contentionState("victim", 3)); err != nil {
		t.Fatal(err)
	}
	if err := dying.Close(); err != nil { // death: handles and flock released
		t.Fatal(err)
	}

	adopter, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer adopter.Close()
	if _, err := adopter.Load("victim"); err != nil {
		t.Fatal(err)
	}
	if err := adopter.Remove("victim"); err != nil {
		t.Fatalf("Remove after adoption = %v, want nil", err)
	}
	if _, err := adopter.Load("victim"); !errors.Is(err, ErrNoState) {
		t.Errorf("Load after Remove = %v, want ErrNoState", err)
	}
	// The dead store stays dead.
	if _, err := dying.Append(contentionState("victim", 4)); !errors.Is(err, ErrClosed) {
		t.Errorf("append on dead store = %v, want ErrClosed", err)
	}
}

// TestDetachKeepsFilesAndLock: Detach releases the journal HANDLE (the
// export side of a handoff) but neither the files nor the directory
// lock — the files remain the rollback backstop, and no second writer
// can sneak in before the purge acknowledgment.
func TestDetachKeepsFilesAndLock(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Append(contentionState("t-2", 7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Detach("t-2"); err != nil {
		t.Fatal(err)
	}
	// Detaching an unknown session is a no-op.
	if err := st.Detach("never-seen"); err != nil {
		t.Fatal(err)
	}
	// The directory lock is still held: Detach is per-session, not Close.
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("Open during Detach = %v, want ErrLocked", err)
	}
	// The files survive: a revive (failed-import rollback) reloads them
	// through a lazily re-opened handle.
	state, err := st.Load("t-2")
	if err != nil {
		t.Fatalf("Load after Detach = %v, want nil", err)
	}
	if len(state.Graph.Nodes) != 1 || state.Graph.Nodes[0].Clock != 7 {
		t.Errorf("reloaded %+v, want clock 7", state.Graph)
	}
	// And the purge path still works after a detach.
	if err := st.Remove("t-2"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("t-2"); !errors.Is(err, ErrNoState) {
		t.Errorf("Load after purge = %v, want ErrNoState", err)
	}
}
