// Package chaos provides composable fault-injecting wrappers for
// Processing Components, so failure paths become first-class, testable
// scenarios instead of incidents. A wrapper preserves the inner
// component's ID and Spec — the graph wiring is unchanged — and injects
// faults on the way through: dropped samples, added latency, stalls,
// corrupted payloads, returned errors, panics, and scripted or periodic
// outages ("flapping"). All randomised faults draw from a seeded PRNG,
// so a chaos scenario replays identically run-to-run.
//
// The wrappers compose with the supervision machinery in
// internal/health: a killed source trips the runner's restart-with-
// backoff path, the watchdog notices the silence, and the supervisor
// degrades the pipeline — all exercised deterministically in tests.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"perpos/internal/core"
)

// ErrDown is the error surfaced by a wrapper whose injector is in the
// down state (killed manually or by a flap schedule). Matched with
// errors.Is.
var ErrDown = errors.New("chaos: injected outage")

// Option configures an injector.
type Option func(*injector)

// WithSeed seeds the injector's PRNG (default 1). Two injectors with
// the same seed and option set inject identical fault sequences.
func WithSeed(seed int64) Option {
	return func(in *injector) { in.rng = rand.New(rand.NewSource(seed)) }
}

// WithDrop silently discards each sample with probability p: a lossy
// sensor or link.
func WithDrop(p float64) Option {
	return func(in *injector) { in.dropP = p }
}

// WithDelay sleeps d before every operation: a slow component.
func WithDelay(d time.Duration) Option {
	return func(in *injector) { in.delay = d }
}

// WithStallEvery sleeps d on every nth operation: a component that
// intermittently wedges, long enough for a watchdog to notice.
func WithStallEvery(n int, d time.Duration) Option {
	return func(in *injector) { in.stallEvery, in.stall = n, d }
}

// WithCorrupt rewrites each sample with probability p using fn — bit
// rot, unit mix-ups, garbage payloads. fn must not change the sample's
// Kind if downstream port matching is to keep working.
func WithCorrupt(p float64, fn func(core.Sample) core.Sample) Option {
	return func(in *injector) { in.corruptP, in.corrupt = p, fn }
}

// WithErrorEvery makes every nth operation return an injected error: a
// component that fails transiently without dying.
func WithErrorEvery(n int) Option {
	return func(in *injector) { in.errEvery = n }
}

// WithPanicEvery makes every nth operation panic — the misbehaving
// third-party component the engine's containment exists for.
func WithPanicEvery(n int) Option {
	return func(in *injector) { in.panicEvery = n }
}

// WithFlap cycles the injector between up ops healthy and down ops
// dead, starting healthy: a flaky source that keeps coming back.
func WithFlap(up, down int) Option {
	return func(in *injector) { in.flapUp, in.flapDown = up, down }
}

// injector holds the fault configuration and the mutable fault state
// shared by a wrapper's operations. Safe for concurrent use (the async
// engine drives components from several goroutines).
type injector struct {
	mu  sync.Mutex
	rng *rand.Rand

	dropP      float64
	delay      time.Duration
	stallEvery int
	stall      time.Duration
	corruptP   float64
	corrupt    func(core.Sample) core.Sample
	errEvery   int
	panicEvery int
	flapUp     int
	flapDown   int

	ops     int
	killed  bool
	downErr error
}

func newInjector(opts []Option) *injector {
	in := &injector{rng: rand.New(rand.NewSource(1))}
	for _, opt := range opts {
		opt(in)
	}
	return in
}

// admit runs the pre-operation faults for one sample. It returns the
// (possibly corrupted) sample, whether it should proceed, an error to
// surface instead, and a sleep to perform OUTSIDE the injector lock.
func (in *injector) admit(s core.Sample) (out core.Sample, proceed bool, err error, sleep time.Duration) {
	in.mu.Lock()
	in.ops++
	sleep = in.delay
	if in.stallEvery > 0 && in.ops%in.stallEvery == 0 {
		sleep += in.stall
	}
	if in.panicEvery > 0 && in.ops%in.panicEvery == 0 {
		in.mu.Unlock()
		panic(fmt.Sprintf("chaos: injected panic (op %d)", in.ops))
	}
	if in.downLocked() {
		err = in.downErrLocked()
		in.mu.Unlock()
		return s, false, err, sleep
	}
	if in.errEvery > 0 && in.ops%in.errEvery == 0 {
		in.mu.Unlock()
		return s, false, fmt.Errorf("chaos: injected error (op %d)", in.ops), sleep
	}
	if in.dropP > 0 && in.rng.Float64() < in.dropP {
		in.mu.Unlock()
		return s, false, nil, sleep
	}
	if in.corrupt != nil && in.corruptP > 0 && in.rng.Float64() < in.corruptP {
		s = in.corrupt(s)
	}
	in.mu.Unlock()
	return s, true, nil, sleep
}

// downLocked reports the effective outage state: a manual Kill wins;
// otherwise the flap schedule decides. Called with in.mu held.
func (in *injector) downLocked() bool {
	if in.killed {
		return true
	}
	if in.flapUp > 0 && in.flapDown > 0 {
		return (in.ops-1)%(in.flapUp+in.flapDown) >= in.flapUp
	}
	return false
}

func (in *injector) downErrLocked() error {
	if in.downErr != nil {
		return in.downErr
	}
	return ErrDown
}

func (in *injector) kill(err error) {
	in.mu.Lock()
	in.killed, in.downErr = true, err
	in.mu.Unlock()
}

func (in *injector) heal() {
	in.mu.Lock()
	in.killed, in.downErr = false, nil
	in.mu.Unlock()
}

func (in *injector) down() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.downLocked()
}

// Component wraps a non-source Processing Component with fault
// injection on its input path.
type Component struct {
	inner core.Component
	inj   *injector
}

var _ core.Component = (*Component)(nil)

// WrapComponent returns a fault-injecting wrapper around c. The
// wrapper's ID and Spec are the inner component's, so it slots into
// any wiring that expected c.
func WrapComponent(c core.Component, opts ...Option) *Component {
	return &Component{inner: c, inj: newInjector(opts)}
}

// ID implements core.Component.
func (c *Component) ID() string { return c.inner.ID() }

// Spec implements core.Component.
func (c *Component) Spec() core.Spec { return c.inner.Spec() }

// Inner returns the wrapped component.
func (c *Component) Inner() core.Component { return c.inner }

// Kill forces the component down: every Process returns err (ErrDown
// when nil) until Heal.
func (c *Component) Kill(err error) { c.inj.kill(err) }

// Heal clears a Kill (and overrides nothing else — flap schedules
// resume where they were).
func (c *Component) Heal() { c.inj.heal() }

// Down reports the current outage state.
func (c *Component) Down() bool { return c.inj.down() }

// Process implements core.Component with the injector's faults applied
// to the inbound sample.
func (c *Component) Process(port int, in core.Sample, emit core.Emit) error {
	s, proceed, err, sleep := c.inj.admit(in)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		return err
	}
	if !proceed {
		return nil
	}
	return c.inner.Process(port, s, emit)
}

// Source wraps a Producer with fault injection on its Step path. A
// down Source dies (Step returns more=false with the outage error),
// which is exactly the shape the runner's restart-with-backoff path
// recovers from: Source implements core.Restartable, and Restart
// succeeds once the outage clears.
type Source struct {
	inner core.Producer
	inj   *injector
}

var (
	_ core.Producer    = (*Source)(nil)
	_ core.Restartable = (*Source)(nil)
)

// WrapSource returns a fault-injecting wrapper around p.
func WrapSource(p core.Producer, opts ...Option) *Source {
	return &Source{inner: p, inj: newInjector(opts)}
}

// ID implements core.Component.
func (s *Source) ID() string { return s.inner.ID() }

// Spec implements core.Component.
func (s *Source) Spec() core.Spec { return s.inner.Spec() }

// Inner returns the wrapped producer.
func (s *Source) Inner() core.Producer { return s.inner }

// Kill forces the source down: the next Step dies with err (ErrDown
// when nil) and Restart keeps failing until Heal.
func (s *Source) Kill(err error) { s.inj.kill(err) }

// Heal clears a Kill; a pending Restart then succeeds.
func (s *Source) Heal() { s.inj.heal() }

// Down reports the current outage state.
func (s *Source) Down() bool { return s.inj.down() }

// Process implements core.Component; sources receive no input.
func (s *Source) Process(int, core.Sample, core.Emit) error { return nil }

// Step implements core.Producer. Emission faults (drop, corrupt) are
// applied to each sample the inner producer emits during the step.
func (s *Source) Step(emit core.Emit) (bool, error) {
	_, proceed, err, sleep := s.inj.admit(core.Sample{})
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if err != nil {
		if s.inj.down() {
			// A dead source stops; recovery goes through Restart.
			return false, err
		}
		// A transient error: the source survives to the next tick.
		return true, err
	}
	if !proceed {
		// Dropped tick: consume the inner step's emissions silently so
		// the replay position still advances.
		return s.inner.Step(func(core.Sample) {})
	}
	return s.inner.Step(func(out core.Sample) {
		out, keep, _, _ := s.inj.admitEmission(out)
		if keep {
			emit(out)
		}
	})
}

// admitEmission applies only the sample-level faults (drop, corrupt)
// to an emission — outage/error/panic scheduling already happened for
// the step itself.
func (in *injector) admitEmission(s core.Sample) (core.Sample, bool, error, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.dropP > 0 && in.rng.Float64() < in.dropP {
		return s, false, nil, 0
	}
	if in.corrupt != nil && in.corruptP > 0 && in.rng.Float64() < in.corruptP {
		s = in.corrupt(s)
	}
	return s, true, nil, 0
}

// Restart implements core.Restartable: it fails while the injected
// outage lasts and succeeds once healed, delegating to the inner
// producer's own Restart when it has one.
func (s *Source) Restart() error {
	s.inj.mu.Lock()
	down := s.inj.downLocked()
	err := s.inj.downErrLocked()
	s.inj.mu.Unlock()
	if down {
		return err
	}
	if r, ok := s.inner.(core.Restartable); ok {
		return r.Restart()
	}
	return nil
}
