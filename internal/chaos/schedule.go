package chaos

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Controllable is the control surface a fault schedule drives — the
// manual kill/heal switch both wrapper kinds (Component, Source)
// expose.
type Controllable interface {
	Kill(err error)
	Heal()
}

var (
	_ Controllable = (*Component)(nil)
	_ Controllable = (*Source)(nil)
)

// Action is a scripted fault transition.
type Action string

// Schedule actions.
const (
	// ActionKill puts the target into the injected-outage state.
	ActionKill Action = "kill"
	// ActionHeal brings the target back up.
	ActionHeal Action = "heal"
)

// Step is one timed transition in a fault script.
type Step struct {
	// At is the offset from schedule start.
	At time.Duration
	// Action is what happens at the offset.
	Action Action
	// Target names the wrapper the action applies to.
	Target string
}

// Schedule is a declarative fault script: an ordered list of timed
// kill/heal transitions against named injector wrappers. Soak tests and
// perpos-run's -chaos mode read schedules from config
// (config.ChaosDef) so failure scenarios live next to the pipeline
// definitions they exercise, and replay identically run-to-run.
type Schedule struct {
	Steps []Step
}

// Validate checks the script against the available target names.
func (s Schedule) Validate(targets map[string]Controllable) error {
	for i, st := range s.Steps {
		if st.Action != ActionKill && st.Action != ActionHeal {
			return fmt.Errorf("chaos: step %d: unknown action %q", i, st.Action)
		}
		if st.At < 0 {
			return fmt.Errorf("chaos: step %d: negative offset %v", i, st.At)
		}
		if _, ok := targets[st.Target]; !ok {
			return fmt.Errorf("chaos: step %d: unknown target %q", i, st.Target)
		}
	}
	return nil
}

// Run executes the script against the named targets, sleeping out the
// offsets; it returns when the script completes or ctx is cancelled.
// Steps are applied in offset order regardless of declaration order.
// Run validates first, so a bad script fails before any fault fires.
func (s Schedule) Run(ctx context.Context, targets map[string]Controllable) error {
	if err := s.Validate(targets); err != nil {
		return err
	}
	steps := make([]Step, len(s.Steps))
	copy(steps, s.Steps)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for _, st := range steps {
		wait := st.At - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
		target := targets[st.Target]
		switch st.Action {
		case ActionKill:
			target.Kill(nil)
		case ActionHeal:
			target.Heal()
		}
	}
	return nil
}

// Start runs the script on its own goroutine, returning a done channel
// that carries Run's result.
func (s Schedule) Start(ctx context.Context, targets map[string]Controllable) <-chan error {
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, targets) }()
	return done
}
