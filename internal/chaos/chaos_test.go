package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"perpos/internal/core"
)

const kindRaw = core.Kind("test.raw")

// passthrough is a minimal component for wrapping.
type passthrough struct{ id string }

func (p *passthrough) ID() string { return p.id }
func (p *passthrough) Spec() core.Spec {
	return core.Spec{
		Name:   "pass",
		Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{kindRaw}}},
		Output: core.OutputSpec{Kind: kindRaw},
	}
}
func (p *passthrough) Process(_ int, in core.Sample, emit core.Emit) error {
	emit(in)
	return nil
}

// collect runs n samples through the wrapped component and counts the
// emissions.
func collect(t *testing.T, c core.Component, n int) (emitted int, errs int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := c.Process(0, core.NewSample(kindRaw, i, time.Time{}), func(core.Sample) { emitted++ })
		if err != nil {
			errs++
		}
	}
	return emitted, errs
}

func TestWrapPreservesIdentity(t *testing.T) {
	inner := &passthrough{id: "mid"}
	w := WrapComponent(inner)
	if w.ID() != "mid" {
		t.Errorf("ID = %q, want %q", w.ID(), "mid")
	}
	if w.Spec().Name != inner.Spec().Name {
		t.Errorf("Spec.Name = %q, want %q", w.Spec().Name, inner.Spec().Name)
	}
	if w.Inner() != inner {
		t.Error("Inner() lost the wrapped component")
	}
}

func TestDropIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) int {
		w := WrapComponent(&passthrough{id: "mid"}, WithSeed(seed), WithDrop(0.5))
		emitted, _ := collect(t, w, 200)
		return emitted
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different drop counts: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("drop 0.5 emitted %d of 200, want a strict subset", a)
	}
	if c := run(8); c == a {
		t.Logf("seeds 7 and 8 coincided (%d) — legal but unusual", c)
	}
}

func TestCorruptRewritesSamples(t *testing.T) {
	w := WrapComponent(&passthrough{id: "mid"},
		WithCorrupt(1.0, func(s core.Sample) core.Sample {
			s.Payload = -1
			return s
		}))
	var got []int
	for i := 0; i < 3; i++ {
		if err := w.Process(0, core.NewSample(kindRaw, i, time.Time{}), func(s core.Sample) {
			got = append(got, s.Payload.(int))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range got {
		if v != -1 {
			t.Errorf("sample %d payload = %d, want corrupted -1", i, v)
		}
	}
}

func TestErrorEvery(t *testing.T) {
	w := WrapComponent(&passthrough{id: "mid"}, WithErrorEvery(3))
	emitted, errs := collect(t, w, 9)
	if errs != 3 {
		t.Errorf("errors = %d, want 3 (every 3rd of 9)", errs)
	}
	if emitted != 6 {
		t.Errorf("emitted = %d, want 6", emitted)
	}
}

func TestPanicEvery(t *testing.T) {
	w := WrapComponent(&passthrough{id: "mid"}, WithPanicEvery(2))
	if err := w.Process(0, core.NewSample(kindRaw, 0, time.Time{}), func(core.Sample) {}); err != nil {
		t.Fatalf("op 1 err = %v, want nil", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("op 2 did not panic")
		}
	}()
	_ = w.Process(0, core.NewSample(kindRaw, 1, time.Time{}), func(core.Sample) {})
}

func TestKillHealComponent(t *testing.T) {
	w := WrapComponent(&passthrough{id: "mid"})
	w.Kill(nil)
	if !w.Down() {
		t.Fatal("Down() = false after Kill")
	}
	err := w.Process(0, core.NewSample(kindRaw, 0, time.Time{}), func(core.Sample) {})
	if !errors.Is(err, ErrDown) {
		t.Fatalf("Process while down = %v, want ErrDown", err)
	}
	custom := errors.New("antenna fell off")
	w.Kill(custom)
	if err := w.Process(0, core.NewSample(kindRaw, 0, time.Time{}), func(core.Sample) {}); !errors.Is(err, custom) {
		t.Fatalf("Process = %v, want custom kill error", err)
	}
	w.Heal()
	if w.Down() {
		t.Fatal("Down() = true after Heal")
	}
	if err := w.Process(0, core.NewSample(kindRaw, 0, time.Time{}), func(core.Sample) {}); err != nil {
		t.Fatalf("Process after Heal = %v", err)
	}
}

func TestFlapSchedule(t *testing.T) {
	// up=2, down=3: ops 1,2 healthy; 3,4,5 down; 6,7 healthy; ...
	w := WrapComponent(&passthrough{id: "mid"}, WithFlap(2, 3))
	var pattern []bool
	for i := 0; i < 10; i++ {
		err := w.Process(0, core.NewSample(kindRaw, i, time.Time{}), func(core.Sample) {})
		pattern = append(pattern, err == nil)
	}
	want := []bool{true, true, false, false, false, true, true, false, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("flap pattern = %v, want %v", pattern, want)
		}
	}
}

// sliceSource builds a SliceSource of n raw samples.
func sliceSource(id string, n int) *core.SliceSource {
	samples := make([]core.Sample, n)
	for i := range samples {
		samples[i] = core.NewSample(kindRaw, i, time.Time{})
	}
	return &core.SliceSource{CompID: id, Out: core.OutputSpec{Kind: kindRaw}, Samples: samples}
}

func TestSourceDiesAndRestarts(t *testing.T) {
	s := WrapSource(sliceSource("src", 4))
	emit := func(core.Sample) {}

	if more, err := s.Step(emit); !more || err != nil {
		t.Fatalf("healthy Step = (%v, %v)", more, err)
	}
	s.Kill(nil)
	more, err := s.Step(emit)
	if more || !errors.Is(err, ErrDown) {
		t.Fatalf("killed Step = (%v, %v), want (false, ErrDown)", more, err)
	}
	if rerr := s.Restart(); !errors.Is(rerr, ErrDown) {
		t.Fatalf("Restart while down = %v, want ErrDown", rerr)
	}
	s.Heal()
	if rerr := s.Restart(); rerr != nil {
		t.Fatalf("Restart after Heal = %v, want nil", rerr)
	}
	got := 0
	for {
		more, err := s.Step(func(core.Sample) { got++ })
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	if got == 0 {
		t.Error("no samples after restart")
	}
}

func TestChaosSourceUnderRunnerRestarts(t *testing.T) {
	// End-to-end with the engine: a killed source dies, the runner backs
	// off and restarts it after Heal, and the stream completes.
	g := core.New()
	src := WrapSource(sliceSource("src", 5))
	if _, err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{kindRaw})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}

	src.Kill(nil)
	r := core.NewRunner(g,
		core.WithSourceRestart(core.RestartPolicy{Base: time.Millisecond, Max: 5 * time.Millisecond}))
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let a few restart attempts fail
	src.Heal()
	r.WaitSources()
	if err := r.Stop(); err == nil {
		t.Error("Stop = nil, want the injected outage errors")
	}
	if sink.Len() != 5 {
		t.Errorf("sink received %d, want all 5 after recovery", sink.Len())
	}
}
