package chaos

import (
	"fmt"

	"perpos/internal/core"
)

// The wrappers are transparent to checkpointing: state operations pass
// through to the inner component. A stateless inner yields no state
// (nil, nil) rather than an error, so wrapping a component never breaks
// a graph snapshot — the wrapper itself has no state worth persisting
// (an injected outage is a property of the test scenario, not of the
// session).

var (
	_ core.StateAccess = (*Component)(nil)
	_ core.StateAccess = (*Source)(nil)
)

// MarshalState implements core.StateAccess by delegating to the inner
// component.
func (c *Component) MarshalState() ([]byte, error) {
	if sa, ok := c.inner.(core.StateAccess); ok {
		return sa.MarshalState()
	}
	return nil, nil
}

// UnmarshalState implements core.StateAccess.
func (c *Component) UnmarshalState(data []byte) error {
	if sa, ok := c.inner.(core.StateAccess); ok {
		return sa.UnmarshalState(data)
	}
	return fmt.Errorf("%w: chaos wrapper around stateless %q", core.ErrNotStateful, c.ID())
}

// MarshalState implements core.StateAccess by delegating to the inner
// producer.
func (s *Source) MarshalState() ([]byte, error) {
	if sa, ok := s.inner.(core.StateAccess); ok {
		return sa.MarshalState()
	}
	return nil, nil
}

// UnmarshalState implements core.StateAccess.
func (s *Source) UnmarshalState(data []byte) error {
	if sa, ok := s.inner.(core.StateAccess); ok {
		return sa.UnmarshalState(data)
	}
	return fmt.Errorf("%w: chaos wrapper around stateless %q", core.ErrNotStateful, s.ID())
}
