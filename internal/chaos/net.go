package chaos

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrPartitioned is the error conns wrapped by a partitioned Link
// return from Read/Write/dial.
var ErrPartitioned = errors.New("chaos: link partitioned")

// Link injects network-level faults — partitions and slow peers — into
// TCP connections, the transport analogue of Component/Source faults.
// Wrap every conn toward a peer with Wrap (and gate dials with Dial);
// then Kill partitions the link (existing conns start failing, new
// dials are refused) and Heal restores it. SetDelay simulates a slow
// peer by sleeping before every write.
//
// Link implements Controllable, so a Schedule can script partitions
// exactly like component kills.
type Link struct {
	mu          sync.Mutex
	partitioned bool
	delay       time.Duration
	conns       map[net.Conn]struct{}
}

var _ Controllable = (*Link)(nil)

// NewLink returns a healthy link.
func NewLink() *Link {
	return &Link{conns: make(map[net.Conn]struct{})}
}

// Kill partitions the link. The error argument is accepted for
// Controllable compatibility; conns always fail with ErrPartitioned.
// Existing wrapped conns are closed so blocked reads unblock
// immediately, as they would on a real partition with RSTs, and
// readers observe the failure without waiting for a timeout.
func (l *Link) Kill(error) {
	l.mu.Lock()
	l.partitioned = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Heal restores the link; already-failed conns stay dead (the caller
// redials), matching real partition recovery.
func (l *Link) Heal() {
	l.mu.Lock()
	l.partitioned = false
	l.mu.Unlock()
}

// Down reports whether the link is partitioned.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.partitioned
}

// SetDelay sets a per-write sleep simulating a slow peer (0 clears).
func (l *Link) SetDelay(d time.Duration) {
	l.mu.Lock()
	l.delay = d
	l.mu.Unlock()
}

// Dial wraps a dial function with the partition gate: while
// partitioned it fails fast with ErrPartitioned, otherwise it dials
// and wraps the resulting conn.
func (l *Link) Dial(dial func() (net.Conn, error)) (net.Conn, error) {
	if l.Down() {
		return nil, ErrPartitioned
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	return l.Wrap(c), nil
}

// Wrap returns a conn whose Read/Write observe the link's faults.
func (l *Link) Wrap(c net.Conn) net.Conn {
	fc := &faultConn{Conn: c, link: l}
	l.mu.Lock()
	l.conns[c] = struct{}{}
	l.mu.Unlock()
	return fc
}

func (l *Link) forget(c net.Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// state returns (partitioned, delay) atomically.
func (l *Link) state() (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.partitioned, l.delay
}

// faultConn is a net.Conn filtered through a Link.
type faultConn struct {
	net.Conn
	link *Link
}

func (c *faultConn) Read(p []byte) (int, error) {
	if down, _ := c.link.state(); down {
		return 0, ErrPartitioned
	}
	n, err := c.Conn.Read(p)
	if down, _ := c.link.state(); down {
		return n, ErrPartitioned
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	down, delay := c.link.state()
	if down {
		return 0, ErrPartitioned
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if down, _ := c.link.state(); down {
		return 0, ErrPartitioned
	}
	n, err := c.Conn.Write(p)
	if down, _ := c.link.state(); down {
		return n, ErrPartitioned
	}
	return n, err
}

func (c *faultConn) Close() error {
	c.link.forget(c.Conn)
	return c.Conn.Close()
}
