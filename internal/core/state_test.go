package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// counterComponent is a stateful pass-through: it counts processed
// samples and exposes the count as serializable state.
type counterComponent struct {
	id    string
	Count int `json:"count"`
}

func (c *counterComponent) ID() string { return c.id }
func (c *counterComponent) Spec() Spec {
	return Spec{
		Name:   "Counter",
		Inputs: []PortSpec{{Name: "in", Accepts: []Kind{KindAny}}},
		Output: OutputSpec{Kind: "counted"},
	}
}
func (c *counterComponent) Process(_ int, in Sample, emit Emit) error {
	c.Count++
	emit(NewSample("counted", c.Count, in.Time))
	return nil
}
func (c *counterComponent) MarshalState() ([]byte, error) { return json.Marshal(c) }
func (c *counterComponent) UnmarshalState(data []byte) error {
	return json.Unmarshal(data, c)
}

func stateGraph(t *testing.T) (*Graph, *counterComponent, *Sink) {
	t.Helper()
	g := New()
	samples := make([]Sample, 4)
	for i := range samples {
		samples[i] = NewSample("raw", i, time.Time{})
	}
	src := &SliceSource{CompID: "src", Out: OutputSpec{Kind: "raw"}, Samples: samples}
	counter := &counterComponent{id: "counter"}
	sink := NewSink("app", []Kind{"counted"})
	for _, c := range []Component{src, counter, sink} {
		if _, err := g.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := g.Node("counter"); n != nil {
		if err := n.AttachFeature(NewStateFeature()); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("src", "counter", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("counter", "app", 0); err != nil {
		t.Fatal(err)
	}
	return g, counter, sink
}

// TestGraphStateRoundTrip snapshots a half-run graph and restores the
// snapshot onto a fresh instance: logical clocks and component state
// must carry over so the resumed run continues the logical timeline.
func TestGraphStateRoundTrip(t *testing.T) {
	g, counter, _ := stateGraph(t)
	for i := 0; i < 2; i++ {
		if _, err := g.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	if counter.Count != 2 {
		t.Fatalf("counter.Count = %d, want 2", counter.Count)
	}
	snap, err := g.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot must survive a JSON round trip (the journal format).
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded GraphState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	g2, counter2, sink2 := stateGraph(t)
	if err := g2.RestoreState(decoded); err != nil {
		t.Fatal(err)
	}
	if counter2.Count != 2 {
		t.Fatalf("restored counter.Count = %d, want 2", counter2.Count)
	}
	n, _ := g2.Node("counter")
	if n.Clock() != 2 {
		t.Fatalf("restored clock = %d, want 2", n.Clock())
	}
	// The restored source continues mid-replay and the counter continues
	// its logical timeline.
	if _, err := g2.StepAll(); err != nil {
		t.Fatal(err)
	}
	got := sink2.Received()
	if len(got) != 1 {
		t.Fatalf("sink received %d samples, want 1", len(got))
	}
	if got[0].Logical != 3 {
		t.Fatalf("resumed emission logical time = %d, want 3 (monotonic continuation)", got[0].Logical)
	}
}

// TestStateFeatureExposure retrieves state through the Component
// Feature mechanism, the paper's state-exposure seam.
func TestStateFeatureExposure(t *testing.T) {
	g, _, _ := stateGraph(t)
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	n, _ := g.Node("counter")
	if !n.HasCapability(StateFeatureName) {
		t.Fatal("state feature not advertised as a capability")
	}
	f, ok := n.Feature(StateFeatureName)
	if !ok {
		t.Fatal("state feature not retrievable")
	}
	sa, ok := f.(StateAccess)
	if !ok {
		t.Fatalf("state feature does not implement StateAccess: %T", f)
	}
	data, err := sa.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var st counterComponent
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != 1 {
		t.Fatalf("feature-marshalled count = %d, want 1", st.Count)
	}
}

// TestStateFeatureOnStatelessHost: attaching the feature to a
// stateless component is inert until used, then fails cleanly.
func TestStateFeatureOnStatelessHost(t *testing.T) {
	g := New()
	sink := NewSink("app", []Kind{KindAny})
	n, err := g.Add(sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachFeature(NewStateFeature()); err != nil {
		t.Fatal(err)
	}
	f, _ := n.Feature(StateFeatureName)
	if _, err := f.(StateAccess).MarshalState(); !errors.Is(err, ErrNotStateful) {
		t.Fatalf("MarshalState on stateless host: err = %v, want ErrNotStateful", err)
	}
	// A snapshot of the whole graph must not fail on the inert feature
	// ... it must surface the error, since the capability was advertised.
	if _, err := g.SnapshotState(); !errors.Is(err, ErrNotStateful) {
		t.Fatalf("SnapshotState = %v, want ErrNotStateful", err)
	}
}

// TestRestoreUnknownNodesSkipped: state for nodes the graph no longer
// has (post-adaptation resume) is ignored, not fatal.
func TestRestoreUnknownNodesSkipped(t *testing.T) {
	g, _, _ := stateGraph(t)
	gs := GraphState{Nodes: []NodeState{{ID: "ghost", Clock: 99}}}
	if err := g.RestoreState(gs); err != nil {
		t.Fatalf("RestoreState with unknown node = %v, want nil", err)
	}
}

// TestSnapshotWhileRunning: state capture requires quiescence.
func TestSnapshotWhileRunning(t *testing.T) {
	g, _, _ := stateGraph(t)
	r := NewRunner(g)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := r.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if _, err := g.SnapshotState(); !errors.Is(err, ErrRunning) {
		t.Fatalf("SnapshotState while running = %v, want ErrRunning", err)
	}
	if err := g.RestoreState(GraphState{}); !errors.Is(err, ErrRunning) {
		t.Fatalf("RestoreState while running = %v, want ErrRunning", err)
	}
}
