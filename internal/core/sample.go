// Package core implements the PerPos Process Structure Layer (PSL): the
// reified positioning process as a graph of Processing Components with
// single output ports and declared requirements/capabilities, Component
// Features that augment components (paper §2.1), logical-time stamping
// of every emission (the substrate for the Process Channel Layer's data
// trees, Fig. 4), and both a deterministic synchronous engine and an
// asynchronous goroutine-per-component engine.
package core

import (
	"fmt"
	"time"
)

// Kind identifies the type of data carried by a Sample, e.g. "gps.raw",
// "nmea.sentence" or "position.wgs84". Components declare the kinds they
// accept and produce; connections are validated against them.
type Kind string

// Kinds used by the built-in PerPos processing components. Substrates
// define further kinds in their own packages.
const (
	// KindAny on an input port accepts every kind.
	KindAny Kind = "*"
)

// LogicalTime is a per-component logical clock value. Each component
// stamps its n-th emission with logical time n (starting at 1), which is
// what lets a Channel group intermediate data into the Fig. 4 data tree
// without wall-clock matching.
type LogicalTime uint64

// Span is an inclusive logical-time range [From, To] of samples from one
// upstream component that were consumed to produce an emission.
type Span struct {
	// Source is the ID of the upstream component whose clock the range
	// refers to.
	Source string `json:"source"`
	// From and To delimit the consumed logical times, inclusive.
	From LogicalTime `json:"from"`
	To   LogicalTime `json:"to"`
}

// Contains reports whether the span covers logical time t.
func (s Span) Contains(t LogicalTime) bool { return t >= s.From && t <= s.To }

// String renders the span like the Fig. 4 tuples ("gps:1-2").
func (s Span) String() string {
	if s.From == s.To {
		return fmt.Sprintf("%s:%d", s.Source, s.From)
	}
	return fmt.Sprintf("%s:%d-%d", s.Source, s.From, s.To)
}

// Sample is the envelope for one datum flowing along a graph edge.
//
// Unlike the common-position-format middleware the paper criticises,
// technology-specific detail travels either as the typed Payload or as
// feature-attached Attrs, and is only propagated to consumers that ask
// for it.
type Sample struct {
	// Kind is the data type tag used for port matching.
	Kind Kind
	// Payload is the datum itself. Producers and consumers agree on the
	// concrete Go type per Kind.
	Payload any
	// Time is the (possibly simulated) wall-clock timestamp of the datum.
	Time time.Time
	// Source is the ID of the component that emitted the sample. Set by
	// the engine.
	Source string
	// Logical is the emitting component's logical clock value for this
	// emission. Set by the engine.
	Logical LogicalTime
	// Spans records, per upstream component, the logical-time ranges of
	// the inputs consumed to produce this sample (empty for sensors —
	// "N/A" in Fig. 4). Set by the engine.
	Spans []Span
	// FromFeature is the name of the Component Feature that emitted this
	// sample through its host's output port, or "" for data produced by
	// the component itself. Downstream ports receive feature-emitted data
	// only if they declare AcceptsFeatures for it (paper §2.1, "Adding
	// Data").
	FromFeature string
	// Attrs carries feature-attached key/value data that rides along
	// with the sample (e.g. "hdop" -> 1.2).
	Attrs map[string]any
}

// NewSample returns a sample of the given kind and payload stamped with
// time t. Engine-managed fields are left zero.
func NewSample(kind Kind, payload any, t time.Time) Sample {
	return Sample{Kind: kind, Payload: payload, Time: t}
}

// WithAttr returns a copy of the sample with attribute key set to value.
// The attribute map is copied so siblings are not aliased.
func (s Sample) WithAttr(key string, value any) Sample {
	attrs := make(map[string]any, len(s.Attrs)+1)
	for k, v := range s.Attrs {
		attrs[k] = v
	}
	attrs[key] = value
	s.Attrs = attrs
	return s
}

// Detach returns a copy of the sample that shares no engine-managed
// mutable state with the original: Spans and Attrs are deep-copied, and
// a pooled payload (DESIGN.md §13) is converted to its legacy immutable
// form. Non-pooled payloads are carried over as-is (they are immutable
// by convention). Consumers that retain samples past the delivery that
// carried them — e.g. a Channel Feature keeping history out of a pooled
// data tree — must detach them first.
func (s Sample) Detach() Sample {
	if len(s.Spans) > 0 {
		s.Spans = append([]Span(nil), s.Spans...)
	}
	if len(s.Attrs) > 0 {
		attrs := make(map[string]any, len(s.Attrs))
		for k, v := range s.Attrs {
			attrs[k] = v
		}
		s.Attrs = attrs
	}
	s.Payload = DetachPayload(s.Payload)
	return s
}

// Attr returns the named attribute and whether it is present.
func (s Sample) Attr(key string) (any, bool) {
	v, ok := s.Attrs[key]
	return v, ok
}

// FloatAttr returns the named attribute as a float64. It handles the
// numeric types commonly attached by features; ok is false when the
// attribute is missing or non-numeric.
func (s Sample) FloatAttr(key string) (float64, bool) {
	v, present := s.Attrs[key]
	if !present {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	default:
		return 0, false
	}
}

// IntAttr returns the named attribute as an int; ok is false when the
// attribute is missing or non-integral.
func (s Sample) IntAttr(key string) (int, bool) {
	v, present := s.Attrs[key]
	if !present {
		return 0, false
	}
	switch n := v.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case float64:
		return int(n), true
	default:
		return 0, false
	}
}

// String renders the sample in the Fig. 4 tuple style:
// "kind@source:3 spans=[parser:1-2]".
func (s Sample) String() string {
	if len(s.Spans) == 0 {
		return fmt.Sprintf("%s@%s:%d", s.Kind, s.Source, s.Logical)
	}
	return fmt.Sprintf("%s@%s:%d spans=%v", s.Kind, s.Source, s.Logical, s.Spans)
}
