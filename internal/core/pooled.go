package core

// PooledPayload is implemented by sample payloads whose backing storage
// is recycled through a pool (DESIGN.md §13). Producers that opt in to
// pooled payloads emit samples carrying these; every holder that stores
// such a sample past the synchronous propagation of its emission — the
// channel layer's history rings, pooled data-tree nodes, channel root
// pointers — must Retain it while stored and Release it when the slot
// is overwritten or freed.
//
// Refcounts float at zero: an emitted payload that nothing retains is
// simply garbage-collected (the pool misses one recycle, correctness is
// unaffected). Releasing below zero panics — it means a holder released
// a reference it did not own.
//
// Payloads that cross out of the pool's ownership domain (Sample.Detach,
// sink retention, remote encoding, checkpointing) are converted back to
// the legacy immutable payload form via DetachPayload, after which the
// sample is indistinguishable from one produced without pooling.
type PooledPayload interface {
	// Retain adds a reference.
	Retain()
	// Release drops a reference; the implementation recycles storage
	// when the count returns to zero.
	Release()
	// DetachPayload returns the payload converted to its legacy
	// non-pooled form (deep-copied out of pooled storage).
	DetachPayload() any
}

// RetainPayload retains p when it is pooled; non-pooled payloads
// (strings, boxed values) pass through untouched.
func RetainPayload(p any) {
	if pp, ok := p.(PooledPayload); ok {
		pp.Retain()
	}
}

// ReleasePayload releases p when it is pooled.
func ReleasePayload(p any) {
	if pp, ok := p.(PooledPayload); ok {
		pp.Release()
	}
}

// DetachPayload converts a pooled payload to its legacy non-pooled
// form; non-pooled payloads are returned unchanged.
func DetachPayload(p any) any {
	if pp, ok := p.(PooledPayload); ok {
		return pp.DetachPayload()
	}
	return p
}
