package core

// PortSpec declares what one input port of a Processing Component
// requires. Connections are validated against it (paper §2.1: "To make
// sure that port connections are realizable Processing Components must
// declare requirements for input ports").
type PortSpec struct {
	// Name is a human-readable port label ("gps", "wifi", ...).
	Name string
	// Accepts lists the kinds the port consumes. KindAny accepts all.
	Accepts []Kind
	// RequiresFeatures lists Component Feature names that must be
	// provided by the upstream component's output capabilities (paper:
	// "input requirements of Processing Components also include a
	// listing of any Component Feature that the component is dependent
	// upon").
	RequiresFeatures []string
	// AcceptsFeatures lists feature names whose feature-emitted samples
	// this port is willing to receive. Feature-added data is only
	// propagated to ports that declare it (paper §2.1, "Adding Data").
	AcceptsFeatures []string
}

// accepts reports whether the port accepts samples of kind k.
func (p PortSpec) accepts(k Kind) bool {
	for _, a := range p.Accepts {
		if a == KindAny || a == k {
			return true
		}
	}
	return false
}

// acceptsFeature reports whether the port receives samples emitted by
// the named Component Feature.
func (p PortSpec) acceptsFeature(name string) bool {
	for _, f := range p.AcceptsFeatures {
		if f == name {
			return true
		}
	}
	return false
}

// OutputSpec declares the capabilities of a component's single output
// port.
type OutputSpec struct {
	// Kind is the kind of data the component itself produces.
	Kind Kind
	// ExtraKinds lists additional kinds emitted through this port —
	// typically added by Component Features ("when adding data the
	// capabilities of the output port is changed to include the new type
	// of data").
	ExtraKinds []Kind
	// Features lists Component Feature names natively provided by the
	// component. Attached features extend this set at runtime; use
	// Node.Capabilities for the effective value.
	Features []string
}

// Spec describes a Processing Component: its type name, input ports and
// output capabilities. A component with no inputs is a data source; the
// sink (application root) has no output kind.
type Spec struct {
	// Name is the component type name ("Parser", "ParticleFilter").
	Name string
	// Inputs describes the input ports, in port-index order.
	Inputs []PortSpec
	// Output describes the single output port. Components with
	// Output.Kind == "" are sinks.
	Output OutputSpec
}

// IsSource reports whether the spec describes a data source (no inputs).
func (s Spec) IsSource() bool { return len(s.Inputs) == 0 }

// IsSink reports whether the spec describes a terminal component.
func (s Spec) IsSink() bool { return s.Output.Kind == "" && len(s.Output.ExtraKinds) == 0 }

// IsMerge reports whether the spec merges multiple data sources — the
// components that remain visible at the Process Channel Layer.
func (s Spec) IsMerge() bool { return len(s.Inputs) >= 2 }

// Emit delivers samples produced by a component into the graph. The
// engine passes an Emit to Process and Step implementations; emissions
// are stamped, run through Produce feature hooks and propagated.
type Emit func(Sample)

// Component is a Processing Component: a node in the reified positioning
// process. Implementations must be safe for use by a single engine
// goroutine; they do not need internal locking.
type Component interface {
	// ID returns the unique component instance identifier used in graph
	// manipulation and in Span.Source references.
	ID() string
	// Spec returns the component's declared ports and capabilities. It
	// must be constant over the component's lifetime.
	Spec() Spec
	// Process handles one input sample arriving on the given port and
	// emits zero or more output samples. Sinks receive port/sample and
	// emit nothing.
	Process(port int, in Sample, emit Emit) error
}

// Producer is implemented by source components that generate data when
// the engine drives them (sensors, emulators). Step produces the samples
// for one tick; returning false indicates the source is exhausted (e.g.
// a trace replay reached EOF).
type Producer interface {
	Component
	Step(emit Emit) (more bool, err error)
}

// Feature is a Component Feature: a small code module hooked into a
// component (paper §2.1). A bare Feature only adds state-access
// functionality — callers obtain it via Node.Feature(name) and
// type-assert to a richer interface (the Fig. 5
// component.getFeature(HDOP.class) pattern). The optional hook
// interfaces below augment data flow.
type Feature interface {
	// FeatureName returns the unique name under which the feature is
	// attached and advertised in output capabilities.
	FeatureName() string
}

// ConsumeHook is implemented by features that intercept data flowing
// into their host component ("data can be manipulated when flowing into
// ... the component"). The returned sample replaces the input; returning
// keep=false drops the sample before it reaches the component.
type ConsumeHook interface {
	Feature
	Consume(port int, in Sample) (out Sample, keep bool)
}

// ProduceHook is implemented by features that intercept data flowing out
// of their host component. The returned sample replaces the emission;
// returning keep=false suppresses it. Hooks must not change the sample's
// Kind ("this type of extension cannot change the data type of the data
// produced") — the engine enforces this.
type ProduceHook interface {
	Feature
	Produce(out Sample) (modified Sample, keep bool)
}

// FeatureHost is the engine-provided handle a feature uses to interact
// with its host component. It is passed to Bind when the feature is
// attached.
type FeatureHost interface {
	// Component returns the host component, for state inspection and
	// manipulation.
	Component() Component
	// EmitFeatureData propagates a sample through the host's output port
	// as if produced by the component itself (paper: "A Component
	// Feature can call the method produce(data) on the component to
	// which it is attached"). The engine stamps the sample and marks it
	// as originating from this feature; downstream ports receive it only
	// if they declare AcceptsFeatures for this feature's name. It is
	// only valid during the host's processing of a sample or step.
	EmitFeatureData(s Sample)
}

// BindableFeature is implemented by features that need the host handle.
// Bind is called once when the feature is attached, before any hook.
type BindableFeature interface {
	Feature
	Bind(host FeatureHost)
}

// ClockedHost is an optional FeatureHost extension exposing the host
// node's logical clock. A feature observing an emission from inside a
// ProduceHook sees the clock BEFORE the engine stamps the sample, so
// the emission being produced will carry Clock()+1 — the contract a
// tracing feature relies on to stamp spans with the right logical time.
type ClockedHost interface {
	FeatureHost
	Clock() LogicalTime
}
