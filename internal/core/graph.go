package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// TapFunc observes every sample emitted anywhere in the graph. Taps are
// how the Process Channel Layer maintains its causal connection to the
// positioning process. Taps run on the emitting goroutine and must be
// fast and thread-safe when the async engine is used.
type TapFunc func(componentID string, s Sample)

// Edge describes one connection for inspection.
type Edge struct {
	From string
	To   string
	Port int
}

// Graph is the reified positioning process: Processing Components wired
// from sensors (sources) toward the application (sink). It supports the
// paper's PSL operations — insert, delete, connect, feature attachment —
// plus synchronous propagation for deterministic runs.
//
// Concurrency contract: structural mutation (Add/Connect/Remove/attach)
// must not run concurrently with propagation (Inject/Step*). The
// asynchronous Runner freezes the structure while running.
type Graph struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	order []string // insertion order, for deterministic iteration

	// producers caches the Producer source nodes StepAll drives;
	// invalidated (under mu) when the node set changes.
	producers []*Node

	tapMu sync.RWMutex
	taps  map[int]TapFunc
	tapID int
	// tapList is an immutable snapshot of taps, rebuilt on Tap/cancel,
	// so notifyTaps on the emission path is one atomic load instead of a
	// lock plus a map iteration.
	tapList atomic.Pointer[[]TapFunc]

	// Batch-capable observers (see burst.go), guarded by tapMu like
	// taps; batchList mirrors tapList. burst is non-nil while a
	// synchronous driver has a Burst open.
	batchTaps map[int]BatchTap
	batchID   int
	batchList atomic.Pointer[[]BatchTap]
	burst     atomic.Pointer[Burst]
	// burstFree caches the last ended Burst (and its events buffer) for
	// reuse by the next BeginBurst.
	burstFree atomic.Pointer[Burst]

	errMu sync.Mutex
	// errPending mirrors "errs or errDropped non-empty" so the per-step
	// drain check is a single atomic load when nothing failed.
	errPending atomic.Bool
	errs       []error
	errDropped int

	running atomic.Bool
	// deliver is installed by a running async Runner; nil means
	// synchronous direct-call propagation. Written only while no
	// propagation is in flight.
	deliver asyncDeliver
}

// setAsync installs (or removes, with nil) the async delivery hook and
// flips the running flag that freezes graph structure.
func (g *Graph) setAsync(d asyncDeliver) {
	g.deliver = d
	g.running.Store(d != nil)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:     make(map[string]*Node),
		taps:      make(map[int]TapFunc),
		batchTaps: make(map[int]BatchTap),
	}
}

// Add registers a component as a new node. The component's ID must be
// unique and its spec well-formed.
func (g *Graph) Add(c Component) (*Node, error) {
	if err := validateSpec(c); err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running.Load() {
		return nil, ErrRunning
	}
	id := c.ID()
	if _, exists := g.nodes[id]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	n := &Node{
		graph:   g,
		comp:    c,
		spec:    c.Spec(),
		inbound: make([]*Node, len(c.Spec().Inputs)),
	}
	n.selfEmit = n.emitFunc("")
	g.nodes[id] = n
	g.order = append(g.order, id)
	g.producers = nil
	return n, nil
}

func validateSpec(c Component) error {
	if c.ID() == "" {
		return fmt.Errorf("%w: empty component id", ErrInvalidSpec)
	}
	spec := c.Spec()
	for i, in := range spec.Inputs {
		if len(in.Accepts) == 0 && len(in.AcceptsFeatures) == 0 {
			return fmt.Errorf("%w: %q input port %d accepts nothing",
				ErrInvalidSpec, c.ID(), i)
		}
	}
	return nil
}

// Node returns the node with the given component ID.
func (g *Graph) Node(id string) (*Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ns := make([]*Node, 0, len(g.order))
	for _, id := range g.order {
		ns = append(ns, g.nodes[id])
	}
	return ns
}

// Sources returns the nodes whose specs declare no inputs (the sensors
// and emulators — the leaves of the paper's processing tree).
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.spec.IsSource() {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns the nodes with no output kind (application roots).
func (g *Graph) Sinks() []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.spec.IsSink() {
			out = append(out, n)
		}
	}
	return out
}

// Edges returns every connection in the graph in deterministic order.
func (g *Graph) Edges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for _, id := range g.order {
		n := g.nodes[id]
		for _, e := range n.out {
			out = append(out, Edge{From: id, To: e.to.ID(), Port: e.port})
		}
	}
	return out
}

// Connect wires from's output port to input port `port` of to. It
// validates port range and availability, kind compatibility, required
// features (paper §2.1 requirement/capability matching) and acyclicity.
func (g *Graph) Connect(fromID, toID string, port int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running.Load() {
		return ErrRunning
	}
	from, ok := g.nodes[fromID]
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, fromID)
	}
	to, ok := g.nodes[toID]
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, toID)
	}
	if port < 0 || port >= len(to.spec.Inputs) {
		return fmt.Errorf("%w: %q port %d (component has %d input ports)",
			ErrPortIndex, toID, port, len(to.spec.Inputs))
	}
	if to.inbound[port] != nil {
		return fmt.Errorf("%w: %q port %d", ErrPortBusy, toID, port)
	}
	in := to.spec.Inputs[port]
	if err := checkCompatible(from, in); err != nil {
		return fmt.Errorf("connect %q -> %q port %d: %w", fromID, toID, port, err)
	}
	if g.reaches(to, from) {
		return fmt.Errorf("%w: %q -> %q", ErrCycle, fromID, toID)
	}
	from.out = append(from.out, edge{to: to, port: port})
	to.inbound[port] = from
	return nil
}

// checkCompatible validates kinds and required features of a prospective
// connection. Called with g.mu held.
func checkCompatible(from *Node, in PortSpec) error {
	kindOK := in.accepts(from.spec.Output.Kind)
	if !kindOK {
		for _, k := range from.spec.Output.ExtraKinds {
			if in.accepts(k) {
				kindOK = true
				break
			}
		}
	}
	// A port that only wants feature-emitted data is satisfied when the
	// upstream provides those features.
	if !kindOK && len(in.AcceptsFeatures) > 0 {
		kindOK = true
		for _, f := range in.AcceptsFeatures {
			if !hasCapabilityLocked(from, f) {
				kindOK = false
				break
			}
		}
	}
	if !kindOK {
		return fmt.Errorf("%w: output %q not in %v", ErrKindMismatch,
			from.spec.Output.Kind, in.Accepts)
	}
	for _, f := range in.RequiresFeatures {
		if !hasCapabilityLocked(from, f) {
			return fmt.Errorf("%w: %q", ErrMissingFeature, f)
		}
	}
	return nil
}

func hasCapabilityLocked(n *Node, name string) bool {
	for _, c := range n.spec.Output.Features {
		if c == name {
			return true
		}
	}
	for _, f := range n.features {
		if f.FeatureName() == name {
			return true
		}
	}
	return false
}

// reaches reports whether to is reachable from from by following output
// edges. Called with g.mu held.
func (g *Graph) reaches(from, to *Node) bool {
	if from == to {
		return true
	}
	for _, e := range from.out {
		if g.reaches(e.to, to) {
			return true
		}
	}
	return false
}

// Disconnect removes the edge from -> to at the given input port.
func (g *Graph) Disconnect(fromID, toID string, port int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running.Load() {
		return ErrRunning
	}
	from, ok := g.nodes[fromID]
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, fromID)
	}
	to, ok := g.nodes[toID]
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, toID)
	}
	for i, e := range from.out {
		if e.to == to && e.port == port {
			from.out = append(from.out[:i], from.out[i+1:]...)
			to.inbound[port] = nil
			return nil
		}
	}
	return fmt.Errorf("%w: edge %q -> %q port %d", ErrNotFound, fromID, toID, port)
}

// Remove deletes a component from the graph, disconnecting all of its
// edges first.
func (g *Graph) Remove(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running.Load() {
		return ErrRunning
	}
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, id)
	}
	// Drop outgoing edges.
	for _, e := range n.out {
		e.to.inbound[e.port] = nil
	}
	n.out = nil
	// Drop incoming edges.
	for _, other := range g.nodes {
		if other == n {
			continue
		}
		kept := other.out[:0]
		for _, e := range other.out {
			if e.to != n {
				kept = append(kept, e)
			}
		}
		other.out = kept
	}
	delete(g.nodes, id)
	for i, oid := range g.order {
		if oid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	g.producers = nil
	return nil
}

// InsertBetween splices a new component into an existing edge
// from -> to (at to's input port toPort): the edge is replaced by
// from -> c (input port cInPort) -> to. This is the §3.1 operation used
// to insert the satellite filter after the Parser.
func (g *Graph) InsertBetween(c Component, fromID, toID string, toPort, cInPort int) error {
	if _, err := g.Add(c); err != nil {
		return err
	}
	if err := g.Disconnect(fromID, toID, toPort); err != nil {
		rollbackErr := g.Remove(c.ID())
		return errors.Join(err, rollbackErr)
	}
	if err := g.Connect(fromID, c.ID(), cInPort); err != nil {
		return errors.Join(err, g.Connect(fromID, toID, toPort), g.Remove(c.ID()))
	}
	if err := g.Connect(c.ID(), toID, toPort); err != nil {
		return errors.Join(err,
			g.Disconnect(fromID, c.ID(), cInPort),
			g.Connect(fromID, toID, toPort),
			g.Remove(c.ID()))
	}
	return nil
}

// Tap registers an observer for every emission in the graph and returns
// a cancel function.
func (g *Graph) Tap(fn TapFunc) (cancel func()) {
	g.tapMu.Lock()
	defer g.tapMu.Unlock()
	id := g.tapID
	g.tapID++
	g.taps[id] = fn
	g.rebuildTapListLocked()
	return func() {
		g.tapMu.Lock()
		defer g.tapMu.Unlock()
		delete(g.taps, id)
		g.rebuildTapListLocked()
	}
}

// rebuildTapListLocked snapshots taps into tapList in registration
// order. Called with tapMu held.
func (g *Graph) rebuildTapListLocked() {
	if len(g.taps) == 0 {
		g.tapList.Store(nil)
		return
	}
	lst := make([]TapFunc, 0, len(g.taps))
	for id := 0; id < g.tapID; id++ {
		if fn, ok := g.taps[id]; ok {
			lst = append(lst, fn)
		}
	}
	g.tapList.Store(&lst)
}

func (g *Graph) notifyTaps(componentID string, s Sample) {
	// Batch observers first (buffered while a burst is open), then
	// plain taps, which always fire per emission.
	if b := g.burst.Load(); b != nil {
		b.add(componentID, s)
	} else if blst := g.batchList.Load(); blst != nil {
		for _, bt := range *blst {
			bt.Tap(componentID, s)
		}
	}
	lst := g.tapList.Load()
	if lst == nil {
		return
	}
	for _, fn := range *lst {
		fn(componentID, s)
	}
}

// maxGraphErrors bounds the error buffer: a persistently failing
// component in a long-running pipeline must not grow memory without
// bound. Overflow is summarised by drainErrors.
const maxGraphErrors = 256

func (g *Graph) noteError(err error) {
	g.errMu.Lock()
	defer g.errMu.Unlock()
	g.errPending.Store(true)
	if len(g.errs) >= maxGraphErrors {
		g.errDropped++
		return
	}
	g.errs = append(g.errs, err)
}

// drainErrors returns and clears errors collected during propagation.
// The common no-error case is a single atomic load so step loops do not
// contend on errMu.
func (g *Graph) drainErrors() error {
	if !g.errPending.Load() {
		return nil
	}
	g.errMu.Lock()
	defer g.errMu.Unlock()
	g.errPending.Store(false)
	if len(g.errs) == 0 && g.errDropped == 0 {
		return nil
	}
	errs := g.errs
	if g.errDropped > 0 {
		errs = append(errs, fmt.Errorf("core: %d further errors dropped (buffer capped at %d)",
			g.errDropped, maxGraphErrors))
	}
	err := errors.Join(errs...)
	g.errs = nil
	g.errDropped = 0
	return err
}

// Inject emits a sample through the named component's output port as if
// the component produced it, and synchronously propagates it through
// the graph. This drives emulator and sensor components in tests and
// deterministic experiment runs.
func (g *Graph) Inject(id string, s Sample) error {
	g.mu.RLock()
	n, ok := g.nodes[id]
	g.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, id)
	}
	n.emit(s, "")
	return g.drainErrors()
}

// Deliver pushes a sample into the named component's input port and
// synchronously propagates whatever it emits. It is the entry point
// used by remote port bridges.
func (g *Graph) Deliver(id string, port int, s Sample) error {
	g.mu.RLock()
	n, ok := g.nodes[id]
	g.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, id)
	}
	if port < 0 || port >= len(n.spec.Inputs) {
		return fmt.Errorf("%w: %q port %d", ErrPortIndex, id, port)
	}
	if err := n.process(port, s); err != nil {
		g.noteError(err)
	}
	return g.drainErrors()
}

// StepSource drives the named Producer component for one tick,
// propagating its emissions synchronously. It returns whether the
// producer has more data.
func (g *Graph) StepSource(id string) (bool, error) {
	g.mu.RLock()
	n, ok := g.nodes[id]
	g.mu.RUnlock()
	if !ok {
		return false, fmt.Errorf("%w: component %q", ErrNotFound, id)
	}
	more, err := n.step()
	if err != nil {
		g.noteError(err)
	}
	return more, g.drainErrors()
}

// StepAll drives every Producer source once. It returns true while at
// least one producer reports more data.
func (g *Graph) StepAll() (bool, error) {
	any := false
	for _, n := range g.producerList() {
		more, err := n.step()
		if err != nil {
			g.noteError(err)
		}
		if more {
			any = true
		}
	}
	return any, g.drainErrors()
}

// producerList returns the cached Producer source nodes, rebuilding the
// cache after structural changes. Saturated step loops call this every
// tick, so the steady state is one RLock and no allocation.
func (g *Graph) producerList() []*Node {
	g.mu.RLock()
	if ps := g.producers; ps != nil {
		g.mu.RUnlock()
		return ps
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.producers == nil {
		ps := make([]*Node, 0, len(g.order))
		for _, id := range g.order {
			n := g.nodes[id]
			if _, ok := n.comp.(Producer); ok && n.spec.IsSource() {
				ps = append(ps, n)
			}
		}
		g.producers = ps
	}
	return g.producers
}

// Validate checks the graph's structural integrity and returns every
// problem found: unconnected input ports, components that cannot reach
// a sink (their output is produced and dropped), and the absence of any
// source or sink. A valid graph is a forest flowing from sensors to
// applications, as the paper's processing-tree model requires.
func (g *Graph) Validate() error {
	g.mu.RLock()
	defer g.mu.RUnlock()

	var errs []error
	if len(g.nodes) == 0 {
		return fmt.Errorf("%w: graph is empty", ErrInvalidSpec)
	}
	var haveSource, haveSink bool
	for _, id := range g.order {
		n := g.nodes[id]
		if n.spec.IsSource() {
			haveSource = true
		}
		if n.spec.IsSink() {
			haveSink = true
		}
		for port, up := range n.inbound {
			if up == nil {
				errs = append(errs, fmt.Errorf("%w: %q input port %d (%s) unconnected",
					ErrInvalidSpec, id, port, n.spec.Inputs[port].Name))
			}
		}
	}
	if !haveSource {
		errs = append(errs, fmt.Errorf("%w: no source component", ErrInvalidSpec))
	}
	if !haveSink {
		errs = append(errs, fmt.Errorf("%w: no sink component", ErrInvalidSpec))
	}
	// Reachability: every non-sink node must reach a sink along output
	// edges, or its data is silently discarded.
	for _, id := range g.order {
		n := g.nodes[id]
		if n.spec.IsSink() {
			continue
		}
		if !g.reachesSink(n, make(map[*Node]bool)) {
			errs = append(errs, fmt.Errorf("%w: %q cannot reach any sink", ErrInvalidSpec, id))
		}
	}
	return errors.Join(errs...)
}

// reachesSink reports whether a sink is reachable from n. Called with
// g.mu held.
func (g *Graph) reachesSink(n *Node, seen map[*Node]bool) bool {
	if n.spec.IsSink() {
		return true
	}
	if seen[n] {
		return false
	}
	seen[n] = true
	for _, e := range n.out {
		if g.reachesSink(e.to, seen) {
			return true
		}
	}
	return false
}

// Run drives all producer sources until every one is exhausted or
// maxTicks is reached (maxTicks <= 0 means unbounded). It returns the
// number of ticks executed.
func (g *Graph) Run(maxTicks int) (int, error) {
	ticks := 0
	for {
		if maxTicks > 0 && ticks >= maxTicks {
			return ticks, nil
		}
		more, err := g.StepAll()
		if err != nil {
			return ticks, err
		}
		ticks++
		if !more {
			return ticks, nil
		}
	}
}
