package core

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// markFeature is a minimal named feature for diff tests.
type markFeature struct{ name string }

func (m markFeature) FeatureName() string { return m.name }

// numSource returns a slice-source factory over the given values.
func numSourceFactory(values ...int) ComponentFactory {
	samples := make([]Sample, len(values))
	for i, v := range values {
		samples[i] = NewSample(kindNum, v, time.Unix(int64(i), 0))
	}
	return func(id string) Component {
		return &SliceSource{CompID: id, Out: OutputSpec{Kind: kindNum}, Samples: samples}
	}
}

func sinkFactory(id string) Component { return NewSink(id, []Kind{kindNum, "counted", KindAny}) }

func TestBlueprintSetRevisions(t *testing.T) {
	set := NewBlueprintSet("demo")
	if set.Latest() != 0 {
		t.Fatalf("Latest on empty set = %d, want 0", set.Latest())
	}
	if _, err := set.Revision(1); !errors.Is(err, ErrUnknownRevision) {
		t.Fatalf("Revision(1) on empty set = %v, want ErrUnknownRevision", err)
	}
	bp := numBlueprint(t, 1, 2)
	rev, err := set.Add(bp)
	if err != nil || rev != 1 {
		t.Fatalf("Add = (%d, %v), want (1, nil)", rev, err)
	}
	// Add freezes: further structural edits must fail.
	if err := bp.AddComponent("late", nil); !errors.Is(err, ErrBlueprintFrozen) {
		t.Fatalf("AddComponent after set.Add = %v, want ErrBlueprintFrozen", err)
	}
	if got, err := set.Revision(1); err != nil || got != bp {
		t.Fatalf("Revision(1) = (%v, %v), want the added blueprint", got, err)
	}
	if set.Name() != "demo" {
		t.Fatalf("Name = %q", set.Name())
	}
	if _, err := set.Plan(1, 2); !errors.Is(err, ErrUnknownRevision) {
		t.Fatalf("Plan(1,2) = %v, want ErrUnknownRevision", err)
	}
	if _, err := set.Add(nil); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("Add(nil) = %v, want ErrInvalidSpec", err)
	}
}

// TestDiffNoOp: the same blueprint added twice diffs empty and the
// migration plan is a no-op that touches nothing.
func TestDiffNoOp(t *testing.T) {
	set := NewBlueprintSet("noop")
	bp := numBlueprint(t, 1, 2, 3)
	if _, err := set.Add(bp); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Add(bp); err != nil {
		t.Fatal(err)
	}
	d, err := set.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("diff of identical revisions not empty: %+v", d)
	}
	p, err := set.Plan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatal("plan of identical revisions not empty")
	}
	g, err := bp.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := g.Node("double")
	if err := set.Migrate(g, 1, 2); err != nil {
		t.Fatalf("no-op Migrate: %v", err)
	}
	after, _ := g.Node("double")
	if before != after {
		t.Fatal("no-op migration replaced a node")
	}
}

// TestDiffPlaceholderSlotChanges: binding a placeholder to a concrete
// factory (or vice versa) is a replacement; placeholder-to-placeholder
// is unchanged regardless of per-instance bindings.
func TestDiffPlaceholderSlotChanges(t *testing.T) {
	srcF := numSourceFactory(1)
	mk := func(srcFactory ComponentFactory) *Blueprint {
		bp := NewBlueprint()
		if err := bp.AddComponent("src", srcFactory); err != nil {
			t.Fatal(err)
		}
		if err := bp.AddComponent("sink", sinkFactory); err != nil {
			t.Fatal(err)
		}
		if err := bp.Connect("src", "sink", 0); err != nil {
			t.Fatal(err)
		}
		return bp
	}

	d := DiffBlueprints(mk(nil), mk(srcF))
	if len(d.Replaced) != 1 || d.Replaced[0] != "src" {
		t.Fatalf("placeholder->concrete Replaced = %v, want [src]", d.Replaced)
	}
	// The edge touching the replaced slot is dropped and remade.
	if len(d.DropEdges) != 1 || len(d.MakeEdges) != 1 {
		t.Fatalf("edges = drop %v make %v, want one each", d.DropEdges, d.MakeEdges)
	}

	d = DiffBlueprints(mk(srcF), mk(nil))
	if len(d.Replaced) != 1 || d.Replaced[0] != "src" {
		t.Fatalf("concrete->placeholder Replaced = %v, want [src]", d.Replaced)
	}

	d = DiffBlueprints(mk(nil), mk(nil))
	if !d.Empty() {
		t.Fatalf("placeholder->placeholder diff not empty: %+v", d)
	}
}

// TestDiffFeatureOnlyChange: attaching a feature in the new revision is
// a pure feature edit — no components or edges move, and migration
// keeps every live node instance.
func TestDiffFeatureOnlyChange(t *testing.T) {
	set := NewBlueprintSet("feat")
	a := numBlueprint(t, 1, 2)
	b := numBlueprint(t, 1, 2)
	// Identical structure needs shared identity: the two blueprints are
	// built from distinct closures, so tag the slots.
	for _, bp := range []*Blueprint{a, b} {
		for _, id := range []string{"src", "double", "sink"} {
			if err := bp.TagComponent(id, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.AttachTaggedFeature("double", "mark", func() Feature { return markFeature{name: "mark"} }); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Add(a); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Add(b); err != nil {
		t.Fatal(err)
	}

	d, err := set.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("feature-only diff reported empty")
	}
	if len(d.Added)+len(d.Removed)+len(d.Replaced) != 0 {
		t.Fatalf("feature-only diff has component edits: %+v", d)
	}
	if len(d.DropEdges)+len(d.MakeEdges) != 0 {
		t.Fatalf("feature-only diff has edge edits: %+v", d)
	}
	want := FeatureRef{Component: "double", Name: "mark"}
	if len(d.AttachFeatures) != 1 || d.AttachFeatures[0] != want {
		t.Fatalf("AttachFeatures = %v, want [%v]", d.AttachFeatures, want)
	}

	g, err := a.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := g.Node("double")
	if err := set.Migrate(g, 1, 2); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	after, _ := g.Node("double")
	if before != after {
		t.Fatal("feature-only migration replaced the node")
	}
	if !after.HasCapability("mark") {
		t.Fatal("migrated node missing attached feature capability")
	}

	// And back: the reverse plan detaches it again.
	if err := set.Migrate(g, 2, 1); err != nil {
		t.Fatalf("reverse Migrate: %v", err)
	}
	if after.HasCapability("mark") {
		t.Fatal("reverse migration left the feature attached")
	}
}

// TestDiffTaggedIdentity: distinct factory closures with the same tag
// are the same component; different tags force replacement even for the
// same closure.
func TestDiffTaggedIdentity(t *testing.T) {
	mk := func(tag string) *Blueprint {
		bp := NewBlueprint()
		if err := bp.AddComponent("src", numSourceFactory(1)); err != nil {
			t.Fatal(err)
		}
		if err := bp.AddComponent("sink", sinkFactory); err != nil {
			t.Fatal(err)
		}
		if tag != "" {
			if err := bp.TagComponent("src", tag); err != nil {
				t.Fatal(err)
			}
		}
		if err := bp.Connect("src", "sink", 0); err != nil {
			t.Fatal(err)
		}
		return bp
	}
	if d := DiffBlueprints(mk("v"), mk("v")); len(d.Replaced) != 0 || len(d.Unchanged) != 2 {
		t.Fatalf("same-tag diff = %+v, want unchanged", d)
	}
	if d := DiffBlueprints(mk("v"), mk("w")); len(d.Replaced) != 1 || d.Replaced[0] != "src" {
		t.Fatalf("different-tag diff Replaced = %v, want [src]", d.Replaced)
	}
	// Untagged distinct closures (numSourceFactory returns a fresh
	// closure per call, but from one literal — same code identity).
	if d := DiffBlueprints(mk(""), mk("")); len(d.Replaced) != 0 {
		t.Fatalf("same-literal untagged diff Replaced = %v, want none", d.Replaced)
	}
	if err := mk("").TagComponent("nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("TagComponent unknown = %v, want ErrNotFound", err)
	}
}

// migrationFixture builds a two-revision set:
//
//	rev 1: src -> counter -> sink
//	rev 2: src -> counter -> double -> sink
//
// where counter is a stateful component shared (tagged) across both, so
// a migration must carry its count.
func migrationFixture(t *testing.T) *BlueprintSet {
	t.Helper()
	counterF := func(id string) Component { return &counterComponent{id: id} }
	srcF := numSourceFactory(1, 2, 3, 4, 5, 6)
	doubleF := func(id string) Component {
		return NewTransform(id, "counted", "counted", func(in Sample) (Sample, bool) {
			in.Payload = in.Payload.(int) * 2
			return in, true
		})
	}
	sinkF := func(id string) Component { return NewSink(id, []Kind{"counted"}) }
	stateF := func() Feature { return NewStateFeature() }

	mk := func(withDouble bool) *Blueprint {
		bp := NewBlueprint()
		if err := bp.AddComponent("src", srcF); err != nil {
			t.Fatal(err)
		}
		if err := bp.TagComponent("src", "src"); err != nil {
			t.Fatal(err)
		}
		if err := bp.AddComponent("counter", counterF); err != nil {
			t.Fatal(err)
		}
		if err := bp.TagComponent("counter", "counter"); err != nil {
			t.Fatal(err)
		}
		if err := bp.AttachTaggedFeature("counter", "state", stateF); err != nil {
			t.Fatal(err)
		}
		if err := bp.AddComponent("sink", sinkF); err != nil {
			t.Fatal(err)
		}
		if err := bp.TagComponent("sink", "sink"); err != nil {
			t.Fatal(err)
		}
		if err := bp.Connect("src", "counter", 0); err != nil {
			t.Fatal(err)
		}
		if withDouble {
			if err := bp.AddComponent("double", doubleF); err != nil {
				t.Fatal(err)
			}
			if err := bp.Connect("counter", "double", 0); err != nil {
				t.Fatal(err)
			}
			if err := bp.Connect("double", "sink", 0); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := bp.Connect("counter", "sink", 0); err != nil {
				t.Fatal(err)
			}
		}
		return bp
	}

	set := NewBlueprintSet("mig")
	if _, err := set.Add(mk(false)); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Add(mk(true)); err != nil {
		t.Fatal(err)
	}
	return set
}

// TestMigrateCarriesState runs revision 1 halfway, migrates the live
// graph to revision 2 and back, asserting the stateful component's
// serialized state is bit-exact across every migration and that the
// pipeline keeps processing.
func TestMigrateCarriesState(t *testing.T) {
	set := migrationFixture(t)
	rev1, err := set.Revision(1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rev1.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := g.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	counterNode, _ := g.Node("counter")
	stateBefore, err := counterNode.Component().(*counterComponent).MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	if err := set.Migrate(g, 1, 2); err != nil {
		t.Fatalf("Migrate 1->2: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("migrated graph invalid: %v", err)
	}
	afterNode, _ := g.Node("counter")
	if afterNode != counterNode {
		t.Fatal("unchanged stateful node was re-instantiated")
	}
	stateAfter, err := afterNode.Component().(*counterComponent).MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if string(stateBefore) != string(stateAfter) {
		t.Fatalf("state not carried bit-exact: %s != %s", stateBefore, stateAfter)
	}

	// The migrated pipeline processes through the new branch.
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	sinkNode, _ := g.Node("sink")
	recv := sinkNode.Component().(*Sink).Received()
	if len(recv) == 0 {
		t.Fatal("migrated pipeline delivered nothing")
	}
	if got := recv[len(recv)-1].Payload.(int); got != 8 { // counter=4, doubled
		t.Fatalf("post-migration sink payload = %d, want 8", got)
	}

	// Back to revision 1: the doubler goes away, counter state persists.
	if err := set.Migrate(g, 2, 1); err != nil {
		t.Fatalf("Migrate 2->1: %v", err)
	}
	if _, ok := g.Node("double"); ok {
		t.Fatal("reverse migration left the added component")
	}
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	recv = sinkNode.Component().(*Sink).Received()
	if got := recv[len(recv)-1].Payload.(int); got != 5 { // counter=5, undoubled
		t.Fatalf("post-reverse sink payload = %d, want 5", got)
	}
}

// TestMigrateFailureRollsBack: a migration whose build step fails must
// leave the graph on the old revision with its state restored.
func TestMigrateFailureRollsBack(t *testing.T) {
	counterF := func(id string) Component { return &counterComponent{id: id} }
	mk := func(extra ComponentFactory) *Blueprint {
		bp := NewBlueprint()
		if err := bp.AddComponent("src", numSourceFactory(1, 2, 3, 4)); err != nil {
			t.Fatal(err)
		}
		if err := bp.TagComponent("src", "src"); err != nil {
			t.Fatal(err)
		}
		if err := bp.AddComponent("counter", counterF); err != nil {
			t.Fatal(err)
		}
		if err := bp.TagComponent("counter", "counter"); err != nil {
			t.Fatal(err)
		}
		if err := bp.AttachTaggedFeature("counter", "state", func() Feature { return NewStateFeature() }); err != nil {
			t.Fatal(err)
		}
		if err := bp.AddComponent("sink", func(id string) Component { return NewSink(id, []Kind{"counted"}) }); err != nil {
			t.Fatal(err)
		}
		if err := bp.TagComponent("sink", "sink"); err != nil {
			t.Fatal(err)
		}
		if err := bp.Connect("src", "counter", 0); err != nil {
			t.Fatal(err)
		}
		if extra != nil {
			if err := bp.AddComponent("double", extra); err != nil {
				t.Fatal(err)
			}
			if err := bp.Connect("counter", "double", 0); err != nil {
				t.Fatal(err)
			}
			if err := bp.Connect("double", "sink", 0); err != nil {
				t.Fatal(err)
			}
		} else if err := bp.Connect("counter", "sink", 0); err != nil {
			t.Fatal(err)
		}
		return bp
	}

	set := NewBlueprintSet("rollback")
	if _, err := set.Add(mk(nil)); err != nil {
		t.Fatal(err)
	}
	// The new revision's added component factory returns nil — the
	// build step fails after teardown already ran.
	if _, err := set.Add(mk(func(id string) Component { return nil })); err != nil {
		t.Fatal(err)
	}

	rev1, _ := set.Revision(1)
	g, err := rev1.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := g.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	err = set.Migrate(g, 1, 2)
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("Migrate with nil-returning factory = %v, want ErrInvalidSpec", err)
	}
	// Rolled back: old structure, state intact, still runnable.
	if _, ok := g.Node("double"); ok {
		t.Fatal("failed migration left the new component behind")
	}
	n, ok := g.Node("counter")
	if !ok {
		t.Fatal("rollback lost the counter node")
	}
	if got := n.Component().(*counterComponent).Count; got != 2 {
		t.Fatalf("rolled-back counter state = %d, want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("rolled-back graph invalid: %v", err)
	}
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	if got := n.Component().(*counterComponent).Count; got != 3 {
		t.Fatalf("rolled-back pipeline did not keep processing: count = %d, want 3", got)
	}
}

// TestOptionalOverride: unknown slots are ignored, known slots bind,
// and a required override for the same slot wins.
func TestOptionalOverride(t *testing.T) {
	bp := NewBlueprint()
	if err := bp.AddComponent("src", nil); err != nil {
		t.Fatal(err)
	}
	if err := bp.AddComponent("sink", sinkFactory); err != nil {
		t.Fatal(err)
	}
	if err := bp.Connect("src", "sink", 0); err != nil {
		t.Fatal(err)
	}

	g, err := bp.Instantiate(
		WithOptionalOverride("src", numSourceFactory(7)),
		WithOptionalOverride("wifi", numSourceFactory(9)), // no such slot: ignored
	)
	if err != nil {
		t.Fatalf("Instantiate with optional overrides: %v", err)
	}
	if _, ok := g.Node("wifi"); ok {
		t.Fatal("optional override materialized an undeclared slot")
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	sinkNode, _ := g.Node("sink")
	recv := sinkNode.Component().(*Sink).Received()
	if len(recv) != 1 || recv[0].Payload.(int) != 7 {
		t.Fatalf("optional override not applied: got %v", recv)
	}

	// Required wins over optional for the same slot.
	g2, err := bp.Instantiate(
		WithOptionalOverride("src", numSourceFactory(7)),
		WithComponentOverride("src", numSourceFactory(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Run(0); err != nil {
		t.Fatal(err)
	}
	sinkNode2, _ := g2.Node("sink")
	recv2 := sinkNode2.Component().(*Sink).Received()
	if len(recv2) != 1 || recv2[0].Payload.(int) != 8 {
		t.Fatalf("required override did not win: got %v", recv2)
	}

	// A required override for an unknown slot still fails loudly, both
	// at instantiation and migration time.
	if _, err := bp.Instantiate(WithComponentOverride("nope", numSourceFactory(1))); !errors.Is(err, ErrUnknownOverride) {
		t.Fatalf("unknown required override = %v, want ErrUnknownOverride", err)
	}
}

// TestDiffAddRemove covers the plain added/removed partitions and edge
// bookkeeping across a component swap.
func TestDiffAddRemove(t *testing.T) {
	set := migrationFixture(t)
	d, err := set.Diff(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(d.Added) != "[double]" {
		t.Fatalf("Added = %v, want [double]", d.Added)
	}
	if len(d.Removed) != 0 || len(d.Replaced) != 0 {
		t.Fatalf("Removed/Replaced = %v/%v, want none", d.Removed, d.Replaced)
	}
	if fmt.Sprint(d.Unchanged) != "[counter sink src]" {
		t.Fatalf("Unchanged = %v", d.Unchanged)
	}
	wantDrop := Edge{From: "counter", To: "sink", Port: 0}
	if len(d.DropEdges) != 1 || d.DropEdges[0] != wantDrop {
		t.Fatalf("DropEdges = %v, want [%v]", d.DropEdges, wantDrop)
	}
	if len(d.MakeEdges) != 2 {
		t.Fatalf("MakeEdges = %v, want 2 edges", d.MakeEdges)
	}
	// Reverse diff mirrors it.
	rd, err := set.Diff(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rd.Removed) != "[double]" || len(rd.Added) != 0 {
		t.Fatalf("reverse diff = %+v", rd)
	}
}
