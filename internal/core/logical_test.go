package core

import (
	"testing"
	"time"
)

// TestFig4SpanSemantics reproduces the exact scenario of Fig. 4: a GPS
// source emits 5 strings; a Parser needs several strings per NMEA
// sentence (strings 1-2 -> NMEA1, strings 3-5 -> NMEA2); an Interpreter
// needs a valid sentence and only produces a WGS84 position from NMEA2
// after consuming NMEA1-NMEA2.
func TestFig4SpanSemantics(t *testing.T) {
	g := New()
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

	strings := make([]Sample, 5)
	for i := range strings {
		strings[i] = NewSample("gps.raw", i+1, base.Add(time.Duration(i)*time.Second))
	}
	mustAdd(t, g, &SliceSource{CompID: "gps", Out: OutputSpec{Kind: "gps.raw"}, Samples: strings})

	// Parser: emits an "nmea" sample after consuming 2 then 3 strings.
	parserBatch := []int{2, 3}
	var consumed, batchIdx, sentenceNo int
	parser := &FuncComponent{
		CompID: "parser",
		CompSpec: Spec{
			Name:   "Parser",
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{"gps.raw"}}},
			Output: OutputSpec{Kind: "nmea"},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			consumed++
			if batchIdx < len(parserBatch) && consumed == parserBatch[batchIdx] {
				consumed = 0
				batchIdx++
				sentenceNo++
				emit(NewSample("nmea", sentenceNo, in.Time))
			}
			return nil
		},
	}
	mustAdd(t, g, parser)

	// Interpreter: first NMEA sentence is invalid; emits WGS84 only on
	// the second.
	var seen int
	interp := &FuncComponent{
		CompID: "interpreter",
		CompSpec: Spec{
			Name:   "Interpreter",
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{"nmea"}}},
			Output: OutputSpec{Kind: "wgs84"},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			seen++
			if seen == 2 {
				emit(NewSample("wgs84", "position-1", in.Time))
			}
			return nil
		},
	}
	mustAdd(t, g, interp)
	sink := NewSink("app", []Kind{"wgs84"})
	mustAdd(t, g, sink)

	for _, c := range []struct {
		from, to string
	}{{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"}} {
		if err := g.Connect(c.from, c.to, 0); err != nil {
			t.Fatal(err)
		}
	}

	var nmeaSamples []Sample
	cancelTap := g.Tap(func(id string, s Sample) {
		if id == "parser" {
			nmeaSamples = append(nmeaSamples, s)
		}
	})
	defer cancelTap()

	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	// NMEA1: logical 1, span gps:1-2. NMEA2: logical 2, span gps:3-5.
	if len(nmeaSamples) != 2 {
		t.Fatalf("parser emitted %d samples, want 2", len(nmeaSamples))
	}
	assertSpan(t, nmeaSamples[0], 1, Span{Source: "gps", From: 1, To: 2})
	assertSpan(t, nmeaSamples[1], 2, Span{Source: "gps", From: 3, To: 5})

	// WGS841: logical 1, span parser:1-2.
	got, ok := sink.Last()
	if !ok {
		t.Fatal("no WGS84 delivered")
	}
	assertSpan(t, got, 1, Span{Source: "parser", From: 1, To: 2})

	// Source strings carry no spans ("N/A" in Fig. 4).
	gpsNode, _ := g.Node("gps")
	if gpsNode.Clock() != 5 {
		t.Errorf("gps clock = %d, want 5", gpsNode.Clock())
	}
}

func assertSpan(t *testing.T, s Sample, wantLogical LogicalTime, wantSpan Span) {
	t.Helper()
	if s.Logical != wantLogical {
		t.Errorf("%v: logical = %d, want %d", s, s.Logical, wantLogical)
	}
	if len(s.Spans) != 1 {
		t.Fatalf("%v: spans = %v, want exactly one", s, s.Spans)
	}
	if s.Spans[0] != wantSpan {
		t.Errorf("%v: span = %v, want %v", s, s.Spans[0], wantSpan)
	}
}

func TestSourceSamplesHaveNoSpans(t *testing.T) {
	g, _ := buildLinear(t, 1)
	var srcSample Sample
	cancel := g.Tap(func(id string, s Sample) {
		if id == "src" {
			srcSample = s
		}
	})
	defer cancel()
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(srcSample.Spans) != 0 {
		t.Errorf("source sample spans = %v, want none", srcSample.Spans)
	}
	if srcSample.Logical != 1 {
		t.Errorf("source logical = %d, want 1", srcSample.Logical)
	}
}

func TestLogicalClockMonotonic(t *testing.T) {
	g, _ := buildLinear(t, 10)
	var last LogicalTime
	cancel := g.Tap(func(id string, s Sample) {
		if id != "mid" {
			return
		}
		if s.Logical != last+1 {
			t.Errorf("logical jumped from %d to %d", last, s.Logical)
		}
		last = s.Logical
	})
	defer cancel()
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if last != 10 {
		t.Errorf("final logical = %d, want 10", last)
	}
}

func TestMultiEmissionSharesSpan(t *testing.T) {
	// A component emitting two samples from one input gives both the
	// same span (they were produced from the same consumed window).
	g := New()
	mustAdd(t, g, source("src", 1))
	dup := &FuncComponent{
		CompID: "dup",
		CompSpec: Spec{
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			emit(NewSample(kindPos, "a", in.Time))
			emit(NewSample(kindPos, "b", in.Time))
			return nil
		},
	}
	mustAdd(t, g, dup)
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "dup", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("dup", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got := sink.Received()
	if len(got) != 2 {
		t.Fatalf("received %d, want 2", len(got))
	}
	want := Span{Source: "src", From: 1, To: 1}
	for i, s := range got {
		if len(s.Spans) != 1 || s.Spans[0] != want {
			t.Errorf("sample %d span = %v, want %v", i, s.Spans, want)
		}
	}
	if got[0].Logical != 1 || got[1].Logical != 2 {
		t.Errorf("logical = %d,%d, want 1,2", got[0].Logical, got[1].Logical)
	}
}

func TestMergeSpansTrackBothSources(t *testing.T) {
	// A merge component consuming one sample from each source emits
	// with spans referencing both upstream clocks.
	g := New()
	mustAdd(t, g, source("a", 1))
	mustAdd(t, g, source("b", 1))
	var pending int
	merge := &FuncComponent{
		CompID: "merge",
		CompSpec: Spec{
			Inputs: []PortSpec{
				{Name: "a", Accepts: []Kind{kindRaw}},
				{Name: "b", Accepts: []Kind{kindRaw}},
			},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			pending++
			if pending == 2 {
				emit(NewSample(kindPos, "fused", in.Time))
			}
			return nil
		},
	}
	mustAdd(t, g, merge)
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	if err := g.Connect("a", "merge", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("b", "merge", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("merge", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got, ok := sink.Last()
	if !ok {
		t.Fatal("nothing delivered")
	}
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %v, want two sources", got.Spans)
	}
	// Deterministic order: sorted by source ID.
	if got.Spans[0].Source != "a" || got.Spans[1].Source != "b" {
		t.Errorf("span sources = %v, want [a b]", got.Spans)
	}
}

func TestSpanWindowResetsAfterEmission(t *testing.T) {
	// After an emission, newly consumed samples start a fresh window —
	// otherwise NMEA2 in Fig. 4 would carry span 1-5 instead of 3-5.
	g := New()
	mustAdd(t, g, source("src", 4))
	var count int
	pair := &FuncComponent{
		CompID: "pair",
		CompSpec: Spec{
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			count++
			if count%2 == 0 {
				emit(NewSample(kindPos, count, in.Time))
			}
			return nil
		},
	}
	mustAdd(t, g, pair)
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "pair", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("pair", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got := sink.Received()
	if len(got) != 2 {
		t.Fatalf("received %d, want 2", len(got))
	}
	wantSpans := []Span{
		{Source: "src", From: 1, To: 2},
		{Source: "src", From: 3, To: 4},
	}
	for i, s := range got {
		if len(s.Spans) != 1 || s.Spans[0] != wantSpans[i] {
			t.Errorf("sample %d span = %v, want %v", i, s.Spans, wantSpans[i])
		}
	}
}
