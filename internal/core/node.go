package core

import (
	"fmt"
	"sort"
)

// Node wraps a Component inside a Graph: it owns the component's
// attached Component Features, its logical clock, the span bookkeeping
// that feeds the Process Channel Layer's data trees, and its outgoing
// edges.
//
// Nodes are created by Graph.Add and must only be mutated through Graph
// and Node methods.
type Node struct {
	graph *Graph
	comp  Component
	spec  Spec // cached; Spec must be constant

	// features in attach order (hook order is attach order).
	features []Feature

	// out lists downstream connections from this node's output port.
	out []edge
	// inbound[port] is the upstream node connected to each input port,
	// or nil when unconnected.
	inbound []*Node

	// clock is the component's logical clock: number of emissions.
	clock LogicalTime
	// pending tracks, per upstream source ID, the range of logical times
	// consumed since the last emission (Fig. 4 span bookkeeping). A node
	// has at most a handful of upstream sources, so this is a linear-scan
	// slice rather than a map: no string hashing per consumed sample, no
	// map iteration per emission. The backing array is reused between
	// grouping windows.
	pending []Span
	// emitted marks that an emission happened after the last consume, so
	// the next consume starts a fresh pending set.
	emitted bool

	// selfEmit is the component-output Emit closure, built once at Add
	// time. Per-delivery closure construction is measurable on the
	// saturated hot path (one closure per process/step call).
	selfEmit Emit
}

// edge is one downstream connection: deliveries go to to's input port.
type edge struct {
	to   *Node
	port int
}

// ID returns the wrapped component's ID.
func (n *Node) ID() string { return n.comp.ID() }

// Component returns the wrapped component, giving PSL clients access to
// "all methods available on the implementing classes" (paper §2.1).
func (n *Node) Component() Component { return n.comp }

// Spec returns the component's declared spec.
func (n *Node) Spec() Spec { return n.spec }

// Clock returns the node's current logical time (number of emissions).
func (n *Node) Clock() LogicalTime { return n.clock }

// Capabilities returns the effective feature names provided at the
// node's output port: the component's native features plus every
// attached Component Feature.
func (n *Node) Capabilities() []string {
	caps := make([]string, 0, len(n.spec.Output.Features)+len(n.features))
	caps = append(caps, n.spec.Output.Features...)
	for _, f := range n.features {
		caps = append(caps, f.FeatureName())
	}
	sort.Strings(caps)
	return caps
}

// HasCapability reports whether the node's output provides the named
// feature.
func (n *Node) HasCapability(name string) bool {
	for _, c := range n.spec.Output.Features {
		if c == name {
			return true
		}
	}
	for _, f := range n.features {
		if f.FeatureName() == name {
			return true
		}
	}
	return false
}

// AttachFeature hooks a Component Feature into the node (paper §2.1).
// The feature's name becomes part of the node's output capabilities.
// Attaching two features with the same name is an error.
func (n *Node) AttachFeature(f Feature) error {
	n.graph.mu.Lock()
	defer n.graph.mu.Unlock()
	if n.HasCapability(f.FeatureName()) {
		return fmt.Errorf("%w: %q on %q", ErrFeatureExists, f.FeatureName(), n.ID())
	}
	if b, ok := f.(BindableFeature); ok {
		b.Bind(&featureHost{node: n, feature: f.FeatureName()})
	}
	n.features = append(n.features, f)
	return nil
}

// DetachFeature removes the named attached feature. Native component
// features cannot be detached.
func (n *Node) DetachFeature(name string) error {
	n.graph.mu.Lock()
	defer n.graph.mu.Unlock()
	for i, f := range n.features {
		if f.FeatureName() == name {
			n.features = append(n.features[:i], n.features[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: feature %q on %q", ErrNotFound, name, n.ID())
}

// Feature returns the attached or native feature with the given name.
// Callers type-assert the result to the feature's functional interface —
// the component "will to its surroundings appear to implement the
// functionality provided by the feature".
func (n *Node) Feature(name string) (Feature, bool) {
	n.graph.mu.RLock()
	defer n.graph.mu.RUnlock()
	return n.featureLocked(name)
}

func (n *Node) featureLocked(name string) (Feature, bool) {
	for _, f := range n.features {
		if f.FeatureName() == name {
			return f, true
		}
	}
	return nil, false
}

// Features returns the attached features in attach order.
func (n *Node) Features() []Feature {
	n.graph.mu.RLock()
	defer n.graph.mu.RUnlock()
	fs := make([]Feature, len(n.features))
	copy(fs, n.features)
	return fs
}

// Upstream returns the node connected to each input port (nil entries
// for unconnected ports).
func (n *Node) Upstream() []*Node {
	n.graph.mu.RLock()
	defer n.graph.mu.RUnlock()
	up := make([]*Node, len(n.inbound))
	copy(up, n.inbound)
	return up
}

// Downstream returns the nodes this node's output is connected to.
func (n *Node) Downstream() []*Node {
	n.graph.mu.RLock()
	defer n.graph.mu.RUnlock()
	ds := make([]*Node, len(n.out))
	for i, e := range n.out {
		ds[i] = e.to
	}
	return ds
}

// --- engine internals (called with graph.mu held for reading) ---

// process delivers one sample to the node's input port: consume hooks,
// span bookkeeping, then the component's Process. A panicking component
// (or feature hook) is contained: the panic becomes an error instead of
// taking the whole positioning process down — third-party Processing
// Components are exactly the code the middleware cannot vouch for.
func (n *Node) process(port int, s Sample) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("component %q: %w: %v", n.ID(), ErrPanicked, r)
		}
	}()
	for _, f := range n.features {
		hook, ok := f.(ConsumeHook)
		if !ok {
			continue
		}
		var keep bool
		s, keep = hook.Consume(port, s)
		if !keep {
			return nil
		}
	}
	n.noteConsumed(s)
	if perr := n.comp.Process(port, s, n.selfEmit); perr != nil {
		return fmt.Errorf("component %q: %w", n.ID(), perr)
	}
	return nil
}

// step drives a Producer source for one tick, with the same panic
// containment as process.
func (n *Node) step() (more bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("source %q: %w: %v", n.ID(), ErrPanicked, r)
		}
	}()
	p, ok := n.comp.(Producer)
	if !ok {
		return false, fmt.Errorf("%w: %q is not a producer", ErrNotProducer, n.ID())
	}
	more, serr := p.Step(n.selfEmit)
	if serr != nil {
		return more, fmt.Errorf("source %q: %w", n.ID(), serr)
	}
	return more, nil
}

// noteConsumed extends the pending span set with one consumed sample.
func (n *Node) noteConsumed(s Sample) {
	if n.emitted {
		// First consumption after an emission starts a new grouping
		// window (Fig. 4: NMEA2's span starts after NMEA1's emission).
		n.pending = n.pending[:0]
		n.emitted = false
	}
	if s.Source == "" {
		return
	}
	for i := range n.pending {
		if n.pending[i].Source == s.Source {
			if s.Logical < n.pending[i].From {
				n.pending[i].From = s.Logical
			}
			if s.Logical > n.pending[i].To {
				n.pending[i].To = s.Logical
			}
			return
		}
	}
	n.pending = append(n.pending, Span{Source: s.Source, From: s.Logical, To: s.Logical})
}

// currentSpans snapshots the pending spans in deterministic order.
func (n *Node) currentSpans() []Span {
	if len(n.pending) == 0 {
		return nil
	}
	spans := make([]Span, len(n.pending))
	copy(spans, n.pending)
	// Insertion sort: a node has at most a handful of upstreams, and
	// sort.Slice's closure allocates on every emission.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Source < spans[j-1].Source; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	return spans
}

// emitFunc returns the Emit closure for this node. fromFeature is the
// feature name for feature-emitted data, or "" for component output.
func (n *Node) emitFunc(fromFeature string) Emit {
	return func(s Sample) {
		n.emit(s, fromFeature)
	}
}

// emit stamps and propagates one output sample.
func (n *Node) emit(s Sample, fromFeature string) {
	if fromFeature == "" {
		// Produce hooks may rewrite (but not retype) or suppress the
		// emission. Feature-emitted data bypasses produce hooks to avoid
		// feedback through the feature that created it.
		kind := s.Kind
		for _, f := range n.features {
			hook, ok := f.(ProduceHook)
			if !ok {
				continue
			}
			var keep bool
			s, keep = hook.Produce(s)
			if !keep {
				return
			}
			if s.Kind != kind {
				// Enforce the paper's rule: produce hooks cannot change
				// the data type. Restore the kind rather than panic.
				s.Kind = kind
			}
		}
	}

	n.clock++
	s.Source = n.ID()
	s.Logical = n.clock
	s.Spans = n.currentSpans()
	s.FromFeature = fromFeature
	n.emitted = true

	n.graph.notifyTaps(n.ID(), s)

	for _, e := range n.out {
		spec := e.to.spec
		if e.port >= len(spec.Inputs) {
			continue
		}
		in := spec.Inputs[e.port]
		if fromFeature != "" {
			if !in.acceptsFeature(fromFeature) {
				continue
			}
		} else if !in.accepts(s.Kind) {
			continue
		}
		if d := n.graph.deliver; d != nil {
			d(e.to, e.port, s)
		} else if err := e.to.process(e.port, s); err != nil {
			n.graph.noteError(err)
		}
	}
}

// featureHost implements FeatureHost for one attached feature.
type featureHost struct {
	node    *Node
	feature string
}

var _ ClockedHost = (*featureHost)(nil)

func (h *featureHost) Component() Component { return h.node.comp }

// Clock implements ClockedHost. Reading the bare field is safe in the
// contexts features run in: hooks execute on the node's processing
// goroutine, where the clock is stable.
func (h *featureHost) Clock() LogicalTime { return h.node.clock }

func (h *featureHost) EmitFeatureData(s Sample) {
	h.node.emit(s, h.feature)
}
