package core

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for external
// visualization — sources as house shapes, sinks as double circles,
// merges as diamonds, with attached features listed under each
// component name. It complements the inspection API for tooling that
// wants a picture of the reified process.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "perpos"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n", name)
	for _, n := range g.Nodes() {
		spec := n.Spec()
		shape := "box"
		switch {
		case spec.IsSource():
			shape = "house"
		case spec.IsSink():
			shape = "doublecircle"
		case spec.IsMerge():
			shape = "diamond"
		}
		// The label is emitted unquoted-by-%q so the DOT "\n" escape
		// survives; component IDs and feature names contain no quotes.
		label := n.ID()
		if features := n.Capabilities(); len(features) > 0 {
			label += `\n[` + strings.Join(features, ", ") + "]"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=\"%s\"];\n", n.ID(), shape, label)
	}
	for _, e := range g.Edges() {
		toNode, _ := g.Node(e.To)
		kindLabel := ""
		if toNode != nil && e.Port < len(toNode.Spec().Inputs) {
			from, _ := g.Node(e.From)
			if from != nil {
				kindLabel = string(from.Spec().Output.Kind)
			}
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, kindLabel)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
