package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
)

// FeatureRef names one declared feature for diff reporting and
// migration bookkeeping. Name is the instantiated FeatureName (feature
// factories are cheap and side-effect free per the FeatureFactory
// contract, so the differ resolves names by running each factory once).
type FeatureRef struct {
	Component string
	Name      string
}

// BlueprintDiff is the structural difference between two blueprint
// revisions, expressed as the minimal edit taking an instance of the
// old revision to the new one.
//
// Component identity is by slot ID; whether a slot kept in both
// revisions is Unchanged or Replaced is decided by identity tag when
// both sides carry one (TagComponent), else by factory code identity,
// with a placeholder (nil factory) never equal to a bound slot.
// Unchanged components keep their live instances — and therefore their
// running state — across a migration; Replaced ones are torn down and
// rebuilt from the new revision's factory.
type BlueprintDiff struct {
	// Added, Removed, Replaced and Unchanged partition the component
	// slots of both revisions, sorted by ID.
	Added     []string
	Removed   []string
	Replaced  []string
	Unchanged []string
	// DropEdges are disconnected (old edges gone from the new revision,
	// plus every edge touching a removed or replaced component);
	// MakeEdges are connected after the component edits.
	DropEdges []Edge
	MakeEdges []Edge
	// DetachFeatures and AttachFeatures are the feature edits on
	// unchanged components; features of added/removed/replaced
	// components ride along with their node.
	DetachFeatures []FeatureRef
	AttachFeatures []FeatureRef
}

// Empty reports whether the revisions are structurally identical —
// an empty diff produces a no-op migration plan.
func (d *BlueprintDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Replaced) == 0 &&
		len(d.DropEdges) == 0 && len(d.MakeEdges) == 0 &&
		len(d.DetachFeatures) == 0 && len(d.AttachFeatures) == 0
}

// DiffBlueprints computes the structural diff from one revision to
// another. Both blueprints are frozen by the call (diffing, like
// instantiation, fixes the definition).
func DiffBlueprints(from, to *Blueprint) *BlueprintDiff {
	return PlanMigration(from, to).Diff
}

// sameComponent decides slot identity for two revisions of the same ID:
// tags when both sides are tagged, factory code pointer otherwise, and
// a placeholder never equals a bound slot.
func sameComponent(a, b blueprintComponent) bool {
	if (a.factory == nil) != (b.factory == nil) {
		return false
	}
	if a.tag != "" && b.tag != "" {
		return a.tag == b.tag
	}
	if a.factory == nil {
		return true // both placeholders; binding is per-instance
	}
	return reflect.ValueOf(a.factory).Pointer() == reflect.ValueOf(b.factory).Pointer()
}

// featureKey is the diff identity of one declared feature.
func featureKey(f blueprintFeature) string {
	if f.tag != "" {
		return "tag:" + f.tag
	}
	return fmt.Sprintf("ptr:%x", reflect.ValueOf(f.factory).Pointer())
}

// MigrationPlan is the executable form of a BlueprintDiff: the ordered
// edit sequence Apply drives through a quiescent live graph, carrying
// the new revision's factories for added/replaced components and
// features. Plans are immutable and safe to apply to many graphs
// concurrently (each Apply touches only its own graph).
type MigrationPlan struct {
	// Diff is the structural diff the plan executes.
	Diff *BlueprintDiff

	from, to *Blueprint

	// teardown lists removed + replaced component IDs in old
	// declaration order; build lists added + replaced slots of the new
	// revision in new declaration order.
	teardown []string
	build    []blueprintComponent
	// detach are feature names removed from unchanged components;
	// attach are the new revision's feature declarations to install
	// (on added, replaced and unchanged components).
	detach []FeatureRef
	attach []blueprintFeature
}

// PlanMigration builds the migration plan from one revision to
// another, freezing both.
func PlanMigration(from, to *Blueprint) *MigrationPlan {
	oldComps, oldConns, oldFeats, _ := from.freeze()
	newComps, newConns, newFeats, _ := to.freeze()

	p := &MigrationPlan{Diff: &BlueprintDiff{}, from: from, to: to}
	d := p.Diff

	oldIdx := make(map[string]blueprintComponent, len(oldComps))
	for _, c := range oldComps {
		oldIdx[c.id] = c
	}
	newIdx := make(map[string]blueprintComponent, len(newComps))
	for _, c := range newComps {
		newIdx[c.id] = c
	}

	// changed marks components whose live instance does not survive:
	// removed, replaced, or added (no prior instance).
	changed := make(map[string]bool)
	for _, c := range oldComps {
		nc, ok := newIdx[c.id]
		switch {
		case !ok:
			d.Removed = append(d.Removed, c.id)
			changed[c.id] = true
		case !sameComponent(c, nc):
			d.Replaced = append(d.Replaced, c.id)
			changed[c.id] = true
		default:
			d.Unchanged = append(d.Unchanged, c.id)
		}
	}
	for _, c := range newComps {
		if _, ok := oldIdx[c.id]; !ok {
			d.Added = append(d.Added, c.id)
			changed[c.id] = true
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Replaced)
	sort.Strings(d.Unchanged)

	// Edges survive only when declared in both revisions with both
	// endpoints unchanged; everything else is dropped and remade.
	oldEdges := make(map[Edge]bool, len(oldConns))
	for _, e := range oldConns {
		oldEdges[e] = true
	}
	keep := make(map[Edge]bool)
	for _, e := range newConns {
		if oldEdges[e] && !changed[e.From] && !changed[e.To] {
			keep[e] = true
		}
	}
	for _, e := range oldConns {
		if !keep[e] {
			d.DropEdges = append(d.DropEdges, e)
		}
	}
	for _, e := range newConns {
		if !keep[e] {
			d.MakeEdges = append(d.MakeEdges, e)
		}
	}

	// Features: those on changed components ride with the node (die on
	// Remove, rebuilt on Add); on unchanged components the keyed sets
	// are diffed and edited in place.
	oldFeatKeys := make(map[string]bool)
	for _, f := range oldFeats {
		if !changed[f.component] {
			oldFeatKeys[f.component+"\x00"+featureKey(f)] = true
		}
	}
	newFeatKeys := make(map[string]bool)
	for _, f := range newFeats {
		if changed[f.component] {
			if _, ok := newIdx[f.component]; ok {
				p.attach = append(p.attach, f) // rebuilt node gets all its features
			}
			continue
		}
		k := f.component + "\x00" + featureKey(f)
		newFeatKeys[k] = true
		if !oldFeatKeys[k] {
			ref := FeatureRef{Component: f.component, Name: f.factory().FeatureName()}
			d.AttachFeatures = append(d.AttachFeatures, ref)
			p.attach = append(p.attach, f)
		}
	}
	for _, f := range oldFeats {
		if changed[f.component] {
			continue
		}
		if k := f.component + "\x00" + featureKey(f); !newFeatKeys[k] {
			ref := FeatureRef{Component: f.component, Name: f.factory().FeatureName()}
			d.DetachFeatures = append(d.DetachFeatures, ref)
			p.detach = append(p.detach, ref)
		}
	}

	// Teardown removed+replaced in old declaration order; build
	// added+replaced in new declaration order.
	for _, c := range oldComps {
		if _, ok := newIdx[c.id]; !ok || changed[c.id] {
			p.teardown = append(p.teardown, c.id)
		}
	}
	for _, c := range newComps {
		if changed[c.id] {
			p.build = append(p.build, c)
		}
	}
	return p
}

// Empty reports a no-op plan (identical revisions).
func (p *MigrationPlan) Empty() bool { return p.Diff.Empty() }

// Apply migrates a quiescent live graph from the plan's old revision to
// its new one, in place:
//
//  1. dropped edges are disconnected,
//  2. features removed from unchanged components are detached,
//  3. removed and replaced components are torn down,
//  4. added and replaced components are built from the new revision's
//     factories (placeholder slots resolved through opts),
//  5. the new revision's features are attached (before wiring, since
//     connection validation may need feature capabilities),
//  6. new edges are connected.
//
// Unchanged nodes are never touched, so their component instances —
// and therefore their running state — carry across bit-exact. The
// caller must hold the graph quiescent (the runtime pauses the async
// runner first, the same seam Adapt uses).
//
// Apply is transactional at the graph level: before editing it snapshots
// component state via SnapshotState, and if any step fails it rebuilds
// the old revision in place and restores the snapshot, so a failed
// migration leaves the session on the old revision with its state
// intact. The returned error is the step failure (joined with a
// rollback error if the rebuild itself failed).
func (p *MigrationPlan) Apply(g *Graph, opts ...InstantiateOption) error {
	if p.Empty() {
		return nil
	}
	var cfg instantiateConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	_, _, _, newIndex := p.to.freeze()
	for id := range cfg.overrides {
		if _, ok := newIndex[id]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownOverride, id)
		}
	}
	snap, err := g.SnapshotState()
	if err != nil {
		return fmt.Errorf("core: migration pre-snapshot: %w", err)
	}
	if err := p.apply(g, &cfg); err != nil {
		if rerr := rebuildRevision(g, p.from, snap, &cfg); rerr != nil {
			return errors.Join(err, fmt.Errorf("core: migration rollback failed: %w", rerr))
		}
		return err
	}
	return nil
}

// apply drives the edit sequence; on error the caller rolls back.
func (p *MigrationPlan) apply(g *Graph, cfg *instantiateConfig) error {
	for _, e := range p.Diff.DropEdges {
		if err := g.Disconnect(e.From, e.To, e.Port); err != nil {
			return fmt.Errorf("core: migrate disconnect %s -> %s:%d: %w", e.From, e.To, e.Port, err)
		}
	}
	for _, ref := range p.detach {
		node, ok := g.Node(ref.Component)
		if !ok {
			return fmt.Errorf("core: migrate detach %q from %q: %w", ref.Name, ref.Component, ErrNotFound)
		}
		if err := node.DetachFeature(ref.Name); err != nil {
			return fmt.Errorf("core: migrate detach %q from %q: %w", ref.Name, ref.Component, err)
		}
	}
	for _, id := range p.teardown {
		if err := g.Remove(id); err != nil {
			return fmt.Errorf("core: migrate remove %q: %w", id, err)
		}
	}
	for _, c := range p.build {
		factory := cfg.factoryFor(c)
		if factory == nil {
			return fmt.Errorf("%w: %q", ErrOverrideRequired, c.id)
		}
		comp := factory(c.id)
		if comp == nil {
			return fmt.Errorf("%w: factory for %q returned nil", ErrInvalidSpec, c.id)
		}
		if comp.ID() != c.id {
			return fmt.Errorf("%w: factory for %q returned component %q", ErrInvalidSpec, c.id, comp.ID())
		}
		if _, err := g.Add(comp); err != nil {
			return fmt.Errorf("core: migrate add %q: %w", c.id, err)
		}
	}
	for _, f := range p.attach {
		node, ok := g.Node(f.component)
		if !ok {
			return fmt.Errorf("core: migrate attach feature to %q: %w", f.component, ErrNotFound)
		}
		if err := node.AttachFeature(f.factory()); err != nil {
			return fmt.Errorf("core: migrate attach feature to %q: %w", f.component, err)
		}
	}
	for _, e := range p.Diff.MakeEdges {
		if err := g.Connect(e.From, e.To, e.Port); err != nil {
			return fmt.Errorf("core: migrate connect %s -> %s:%d: %w", e.From, e.To, e.Port, err)
		}
	}
	return nil
}

// rebuildRevision rebuilds bp from scratch inside g — every node is
// removed, the revision re-instantiated through the same override set,
// and the pre-migration state snapshot restored. This is the migration
// failure path: slower than undoing individual edits but correct for
// any partial failure point. Overrides are resolved leniently (required
// and optional alike may name slots bp lacks), since the caller's
// override set targets the revision that failed to build.
func rebuildRevision(g *Graph, bp *Blueprint, snap GraphState, cfg *instantiateConfig) error {
	for _, n := range g.Nodes() {
		if err := g.Remove(n.ID()); err != nil {
			return err
		}
	}
	comps, conns, feats, _ := bp.freeze()
	lenient := instantiateConfig{optional: make(map[string]ComponentFactory, len(cfg.overrides)+len(cfg.optional))}
	for id, f := range cfg.optional {
		lenient.optional[id] = f
	}
	for id, f := range cfg.overrides {
		lenient.optional[id] = f
	}
	if err := buildInto(g, comps, conns, feats, &lenient); err != nil {
		return err
	}
	return g.RestoreState(snap)
}
