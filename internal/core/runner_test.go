package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunnerDeliversEverything(t *testing.T) {
	g, sink := buildLinear(t, 50)
	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 50 {
		t.Errorf("sink received %d, want 50", sink.Len())
	}
	// Order along a single path must be preserved.
	for i, s := range sink.Received() {
		if s.Payload.(int) != i {
			t.Fatalf("sample %d payload = %v (out of order)", i, s.Payload)
		}
	}
}

func TestRunnerMultipleSources(t *testing.T) {
	g := New()
	mustAdd(t, g, source("a", 20))
	mustAdd(t, g, source("b", 20))
	merge := &FuncComponent{
		CompID: "merge",
		CompSpec: Spec{
			Inputs: []PortSpec{
				{Name: "a", Accepts: []Kind{kindRaw}},
				{Name: "b", Accepts: []Kind{kindRaw}},
			},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			out := in
			out.Kind = kindPos
			emit(out)
			return nil
		},
	}
	mustAdd(t, g, merge)
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	if err := g.Connect("a", "merge", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("b", "merge", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("merge", "app", 0); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 40 {
		t.Errorf("sink received %d, want 40", sink.Len())
	}
}

func TestRunnerFreezesStructure(t *testing.T) {
	g, _ := buildLinear(t, 1000)
	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Stop(); err != nil {
			t.Fatal(err)
		}
	}()

	if _, err := g.Add(source("late", 1)); !errors.Is(err, ErrRunning) {
		t.Errorf("Add while running = %v, want ErrRunning", err)
	}
	if err := g.Connect("src", "app", 0); !errors.Is(err, ErrRunning) {
		t.Errorf("Connect while running = %v, want ErrRunning", err)
	}
	if err := g.Remove("mid"); !errors.Is(err, ErrRunning) {
		t.Errorf("Remove while running = %v, want ErrRunning", err)
	}
	if err := g.Disconnect("mid", "app", 0); !errors.Is(err, ErrRunning) {
		t.Errorf("Disconnect while running = %v, want ErrRunning", err)
	}
}

func TestRunnerDoubleStart(t *testing.T) {
	g, _ := buildLinear(t, 1)
	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); !errors.Is(err, ErrRunning) {
		t.Errorf("second Start = %v, want ErrRunning", err)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerStopIdempotent(t *testing.T) {
	g, _ := buildLinear(t, 1)
	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); err != nil {
		t.Errorf("second Stop = %v, want nil", err)
	}
}

func TestRunnerRestartAfterStop(t *testing.T) {
	g, sink := buildLinear(t, 5)
	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}

	// Structure is mutable again; a second runner works.
	if err := g.Disconnect("mid", "app", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("mid", "app", 0); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(g)
	if err := r2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := r2.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 5 {
		t.Errorf("sink received %d, want 5", sink.Len())
	}
}

func TestRunnerContextCancelStopsSources(t *testing.T) {
	g := New()
	mustAdd(t, g, &infiniteSource{id: "inf"})
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("inf", "app", 0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(g)
	if err := r.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Let it produce a bit, then cancel.
	deadline := time.Now().Add(2 * time.Second)
	for sink.Len() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() < 10 {
		t.Errorf("sink received %d, want >= 10", sink.Len())
	}
}

func TestRunnerSourceInterval(t *testing.T) {
	g, sink := buildLinear(t, 3)
	r := NewRunner(g, WithSourceInterval(time.Millisecond))
	start := time.Now()
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	elapsed := time.Since(start)
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 3 {
		t.Errorf("sink received %d, want 3", sink.Len())
	}
	// 3 samples with 2 inter-sample gaps of >= 1ms.
	if elapsed < 2*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 2ms with pacing", elapsed)
	}
}

func TestRunnerCollectsComponentErrors(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 3))
	boom := errors.New("boom")
	bad := &FuncComponent{
		CompID: "bad",
		CompSpec: Spec{
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(int, Sample, Emit) error { return boom },
	}
	mustAdd(t, g, bad)
	if err := g.Connect("src", "bad", 0); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	err := r.Stop()
	if !errors.Is(err, boom) {
		t.Errorf("Stop error = %v, want wrapped boom", err)
	}
}

func TestRunnerInjectWhileRunning(t *testing.T) {
	// Samples injected from outside (e.g. a remote bridge) flow through
	// the async engine as well.
	g, sink := buildLinear(t, 0)
	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := g.Inject("src", NewSample(kindRaw, i, time.Time{})); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 10 {
		t.Errorf("sink received %d, want 10", sink.Len())
	}
}

func TestRunnerInboxCapacity(t *testing.T) {
	// A consumer that blocks until released: with the default size-1
	// inbox the producer stalls after a couple of emissions, but with a
	// deeper inbox it can run ahead and finish all its steps while the
	// consumer is still busy — the fan-in headroom the session runtime
	// relies on.
	g := New()
	src := &countingSource{id: "src", total: 4}
	mustAdd(t, g, src)
	gate := make(chan struct{})
	sink := &FuncComponent{
		CompID: "app",
		CompSpec: Spec{
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
		},
		Fn: func(int, Sample, Emit) error {
			<-gate
			return nil
		},
	}
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(g, WithInboxCapacity(8))
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for src.steps.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := src.steps.Load(); got < 4 {
		t.Errorf("source completed %d steps with blocked consumer, want 4 (inbox too shallow)", got)
	}
	close(gate)
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
}

// countingSource emits `total` samples and counts its steps.
type countingSource struct {
	id    string
	total int
	steps atomic.Int64
}

var _ Producer = (*countingSource)(nil)

func (s *countingSource) ID() string { return s.id }

func (s *countingSource) Spec() Spec {
	return Spec{Name: s.id, Output: OutputSpec{Kind: kindRaw}}
}

func (s *countingSource) Process(int, Sample, Emit) error { return nil }

func (s *countingSource) Step(emit Emit) (bool, error) {
	n := int(s.steps.Add(1))
	emit(NewSample(kindRaw, n, time.Time{}))
	return n < s.total, nil
}

// infiniteSource emits forever; used for cancellation tests.
type infiniteSource struct {
	id string
	n  atomic.Int64
}

var _ Producer = (*infiniteSource)(nil)

func (s *infiniteSource) ID() string { return s.id }

func (s *infiniteSource) Spec() Spec {
	return Spec{Name: s.id, Output: OutputSpec{Kind: kindRaw}}
}

func (s *infiniteSource) Process(int, Sample, Emit) error { return nil }

func (s *infiniteSource) Step(emit Emit) (bool, error) {
	emit(NewSample(kindRaw, int(s.n.Add(1)), time.Time{}))
	return true, nil
}
