package core

import "errors"

// Errors returned by graph-manipulation and engine operations. They are
// matched with errors.Is.
var (
	// ErrNotFound indicates a component, edge or feature that is not in
	// the graph.
	ErrNotFound = errors.New("core: not found")
	// ErrDuplicateID indicates a component whose ID is already taken.
	ErrDuplicateID = errors.New("core: duplicate component id")
	// ErrInvalidSpec indicates a component whose Spec is malformed.
	ErrInvalidSpec = errors.New("core: invalid component spec")
	// ErrPortIndex indicates an out-of-range input port index.
	ErrPortIndex = errors.New("core: input port index out of range")
	// ErrPortBusy indicates an input port that already has a connection.
	ErrPortBusy = errors.New("core: input port already connected")
	// ErrKindMismatch indicates a connection whose data kinds are
	// incompatible.
	ErrKindMismatch = errors.New("core: output kind not accepted by input port")
	// ErrMissingFeature indicates a connection whose input port requires
	// a Component Feature the upstream output does not provide.
	ErrMissingFeature = errors.New("core: required feature not provided by upstream")
	// ErrCycle indicates a connection that would make the graph cyclic.
	ErrCycle = errors.New("core: connection would create a cycle")
	// ErrFeatureExists indicates a feature name already attached.
	ErrFeatureExists = errors.New("core: feature already attached")
	// ErrNotProducer indicates a Step on a component that is not a
	// Producer.
	ErrNotProducer = errors.New("core: component is not a producer")
	// ErrRunning indicates a structural change attempted while an async
	// runner is active.
	ErrRunning = errors.New("core: graph is running")
	// ErrPanicked indicates a component or feature hook panicked during
	// processing; the engine contains it and reports it as an error.
	ErrPanicked = errors.New("core: component panicked")
)
