package core

import (
	"errors"
	"testing"
	"time"
)

// scaleFeature doubles integer payloads on the way out of its host —
// a "changing produced data" feature (§2.1).
type scaleFeature struct {
	factor int
}

func (scaleFeature) FeatureName() string { return "scale" }

func (f scaleFeature) Produce(out Sample) (Sample, bool) {
	out.Payload = out.Payload.(int) * f.factor
	return out, true
}

// clampFeature rewrites incoming payloads — a consume-side hook.
type clampFeature struct{ max int }

func (clampFeature) FeatureName() string { return "clamp" }

func (f clampFeature) Consume(_ int, in Sample) (Sample, bool) {
	if v := in.Payload.(int); v > f.max {
		in.Payload = f.max
	}
	return in, true
}

// dropFeature suppresses samples matching pred at consume time.
type dropFeature struct{ pred func(Sample) bool }

func (dropFeature) FeatureName() string { return "drop" }

func (f dropFeature) Consume(_ int, in Sample) (Sample, bool) {
	return in, !f.pred(in)
}

// retypeFeature tries to illegally change the output kind.
type retypeFeature struct{}

func (retypeFeature) FeatureName() string { return "retype" }

func (retypeFeature) Produce(out Sample) (Sample, bool) {
	out.Kind = "evil.kind"
	return out, true
}

// annotator attaches an attribute to outgoing samples — the
// attribute-riding variant of "adding data" used by the HDOP feature.
type annotator struct {
	key   string
	value any
}

func (a annotator) FeatureName() string { return a.key }

func (a annotator) Produce(out Sample) (Sample, bool) {
	return out.WithAttr(a.key, a.value), true
}

// sideEmitter emits an extra sample through the host's port whenever the
// host produces one — the paper's produce(data) "adding data" mechanism.
type sideEmitter struct {
	name string
	kind Kind
	host FeatureHost

	emitNext []any
}

func (s *sideEmitter) FeatureName() string { return s.name }

func (s *sideEmitter) Bind(host FeatureHost) { s.host = host }

func (s *sideEmitter) Produce(out Sample) (Sample, bool) {
	for _, payload := range s.emitNext {
		s.host.EmitFeatureData(NewSample(s.kind, payload, out.Time))
	}
	s.emitNext = nil
	return out, true
}

// statefulFeature exposes host component state through a custom
// interface — the "changing component state" augmentation. Callers
// type-assert to Thresholder.
type statefulFeature struct {
	threshold int
}

// Thresholder is the functional interface callers assert the feature to
// (the Fig. 5 getFeature(...).getHDOP() pattern).
type Thresholder interface {
	Threshold() int
	SetThreshold(int)
}

func (f *statefulFeature) FeatureName() string { return "threshold" }
func (f *statefulFeature) Threshold() int      { return f.threshold }
func (f *statefulFeature) SetThreshold(v int)  { f.threshold = v }

func TestProduceHookRewritesData(t *testing.T) {
	g, sink := buildLinear(t, 3)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(scaleFeature{factor: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, s := range sink.Received() {
		if want := i * 10; s.Payload.(int) != want {
			t.Errorf("sample %d payload = %v, want %d", i, s.Payload, want)
		}
	}
}

func TestConsumeHookRewritesData(t *testing.T) {
	g, sink := buildLinear(t, 5)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(clampFeature{max: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, s := range sink.Received() {
		want := i
		if want > 2 {
			want = 2
		}
		if s.Payload.(int) != want {
			t.Errorf("sample %d payload = %v, want %d", i, s.Payload, want)
		}
	}
}

func TestConsumeHookDropsData(t *testing.T) {
	g, sink := buildLinear(t, 6)
	mid, _ := g.Node("mid")
	err := mid.AttachFeature(dropFeature{pred: func(s Sample) bool {
		return s.Payload.(int)%2 == 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 3 {
		t.Fatalf("sink received %d, want 3", sink.Len())
	}
	for _, s := range sink.Received() {
		if s.Payload.(int)%2 == 1 {
			t.Errorf("odd payload %v leaked", s.Payload)
		}
	}
}

func TestProduceHookCannotChangeKind(t *testing.T) {
	g, sink := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(retypeFeature{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got, ok := sink.Last()
	if !ok {
		t.Fatal("no sample delivered")
	}
	if got.Kind != kindPos {
		t.Errorf("kind = %q, want %q (feature kind changes must be reverted)", got.Kind, kindPos)
	}
}

func TestAttributeAnnotation(t *testing.T) {
	g, sink := buildLinear(t, 2)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(annotator{key: "hdop", value: 1.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, s := range sink.Received() {
		v, ok := s.FloatAttr("hdop")
		if !ok || v != 1.5 {
			t.Errorf("sample %d hdop = %v/%v, want 1.5/true", i, v, ok)
		}
	}
}

func TestFeatureEmittedDataRequiresDeclaration(t *testing.T) {
	// Feature-added data is only propagated when the downstream port
	// declares that it accepts input from that Component Feature.
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	build := func(t *testing.T, acceptFeature bool) (*Graph, *Sink) {
		t.Helper()
		g := New()
		mustAdd(t, g, &SliceSource{
			CompID:  "src",
			Out:     OutputSpec{Kind: kindRaw},
			Samples: []Sample{NewSample(kindRaw, 1, base)},
		})
		srcNode, _ := g.Node("src")
		side := &sideEmitter{name: "extra", kind: kindMid, emitNext: []any{99}}
		if err := srcNode.AttachFeature(side); err != nil {
			t.Fatal(err)
		}
		var opts []SinkOption
		if acceptFeature {
			opts = append(opts, WithAcceptedFeatures("extra"))
		}
		sink := NewSink("app", []Kind{kindRaw}, opts...)
		mustAdd(t, g, sink)
		if err := g.Connect("src", "app", 0); err != nil {
			t.Fatal(err)
		}
		return g, sink
	}

	t.Run("declared", func(t *testing.T) {
		g, sink := build(t, true)
		if _, err := g.Run(0); err != nil {
			t.Fatal(err)
		}
		// Both the component sample and the feature-emitted sample land.
		if sink.Len() != 2 {
			t.Fatalf("sink received %d, want 2", sink.Len())
		}
		var sawFeature bool
		for _, s := range sink.Received() {
			if s.FromFeature == "extra" {
				sawFeature = true
				if s.Kind != kindMid || s.Payload.(int) != 99 {
					t.Errorf("feature sample = %v", s)
				}
				if s.Source != "src" {
					t.Errorf("feature sample source = %q, want src (as if produced by the component)", s.Source)
				}
			}
		}
		if !sawFeature {
			t.Error("feature-emitted sample not delivered")
		}
	})

	t.Run("undeclared", func(t *testing.T) {
		g, sink := build(t, false)
		if _, err := g.Run(0); err != nil {
			t.Fatal(err)
		}
		if sink.Len() != 1 {
			t.Fatalf("sink received %d, want 1 (feature data filtered)", sink.Len())
		}
		if got, _ := sink.Last(); got.FromFeature != "" {
			t.Errorf("unexpected feature sample %v", got)
		}
	})
}

func TestStateAccessFeature(t *testing.T) {
	g, _ := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(&statefulFeature{threshold: 4}); err != nil {
		t.Fatal(err)
	}

	f, ok := mid.Feature("threshold")
	if !ok {
		t.Fatal("feature not found")
	}
	th, ok := f.(Thresholder)
	if !ok {
		t.Fatalf("feature %T does not implement Thresholder", f)
	}
	if th.Threshold() != 4 {
		t.Errorf("Threshold() = %d, want 4", th.Threshold())
	}
	th.SetThreshold(9)
	f2, _ := mid.Feature("threshold")
	if f2.(Thresholder).Threshold() != 9 {
		t.Error("state change not visible through second lookup")
	}
}

func TestAttachDuplicateFeature(t *testing.T) {
	g, _ := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(staticFeature{name: "f"}); err != nil {
		t.Fatal(err)
	}
	if err := mid.AttachFeature(staticFeature{name: "f"}); !errors.Is(err, ErrFeatureExists) {
		t.Errorf("error = %v, want ErrFeatureExists", err)
	}
}

func TestDetachFeature(t *testing.T) {
	g, sink := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(scaleFeature{factor: 10}); err != nil {
		t.Fatal(err)
	}
	if err := mid.DetachFeature("scale"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got, _ := sink.Last()
	if got.Payload.(int) != 0 {
		t.Errorf("payload = %v, want 0 (feature detached)", got.Payload)
	}
	if err := mid.DetachFeature("scale"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double detach error = %v, want ErrNotFound", err)
	}
}

func TestCapabilitiesIncludeAttachedFeatures(t *testing.T) {
	g := New()
	comp := &FuncComponent{
		CompID: "c",
		CompSpec: Spec{
			Output: OutputSpec{Kind: kindRaw, Features: []string{"native"}},
		},
	}
	n := mustAdd(t, g, comp)
	if err := n.AttachFeature(staticFeature{name: "added"}); err != nil {
		t.Fatal(err)
	}
	caps := n.Capabilities()
	want := []string{"added", "native"}
	if len(caps) != 2 || caps[0] != want[0] || caps[1] != want[1] {
		t.Errorf("Capabilities() = %v, want %v", caps, want)
	}
	if !n.HasCapability("native") || !n.HasCapability("added") {
		t.Error("HasCapability should report both")
	}
	if n.HasCapability("missing") {
		t.Error("HasCapability reported a missing feature")
	}
}

func TestFeatureHooksRunInAttachOrder(t *testing.T) {
	g, sink := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	// (0+5)*10 = 50 if addFive attaches first; 0*10+5 = 5 otherwise.
	if err := mid.AttachFeature(offsetFeature{name: "addFive", delta: 5}); err != nil {
		t.Fatal(err)
	}
	if err := mid.AttachFeature(scaleFeature{factor: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got, _ := sink.Last()
	if got.Payload.(int) != 50 {
		t.Errorf("payload = %v, want 50 (attach-order hook execution)", got.Payload)
	}
}

type offsetFeature struct {
	name  string
	delta int
}

func (f offsetFeature) FeatureName() string { return f.name }

func (f offsetFeature) Produce(out Sample) (Sample, bool) {
	out.Payload = out.Payload.(int) + f.delta
	return out, true
}

func TestFeaturesListCopies(t *testing.T) {
	g, _ := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(staticFeature{name: "a"}); err != nil {
		t.Fatal(err)
	}
	fs := mid.Features()
	if len(fs) != 1 {
		t.Fatalf("Features() = %d entries, want 1", len(fs))
	}
	fs[0] = staticFeature{name: "tampered"}
	if _, ok := mid.Feature("a"); !ok {
		t.Error("mutating the returned slice affected internal state")
	}
}
