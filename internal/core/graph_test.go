package core

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

const (
	kindRaw Kind = "test.raw"
	kindMid Kind = "test.mid"
	kindPos Kind = "test.pos"
)

// passthrough returns a transform forwarding payloads unchanged.
func passthrough(id string, in, out Kind) *FuncComponent {
	return NewTransform(id, in, out, func(s Sample) (Sample, bool) { return s, true })
}

// source returns a slice source with n integer samples of kindRaw.
func source(id string, n int) *SliceSource {
	samples := make([]Sample, n)
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	for i := range samples {
		samples[i] = NewSample(kindRaw, i, base.Add(time.Duration(i)*time.Second))
	}
	return &SliceSource{
		CompID:  id,
		Out:     OutputSpec{Kind: kindRaw},
		Samples: samples,
	}
}

// buildLinear wires src -> mid -> sink and returns the graph and sink.
func buildLinear(t *testing.T, n int) (*Graph, *Sink) {
	t.Helper()
	g := New()
	if _, err := g.Add(source("src", n)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(passthrough("mid", kindRaw, kindPos)); err != nil {
		t.Fatal(err)
	}
	sink := NewSink("app", []Kind{kindPos})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "mid", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("mid", "app", 0); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

func TestLinearPipelineDeliversAll(t *testing.T) {
	g, sink := buildLinear(t, 5)
	ticks, err := g.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	got := sink.Received()
	if len(got) != 5 {
		t.Fatalf("sink received %d samples, want 5", len(got))
	}
	for i, s := range got {
		if s.Kind != kindPos {
			t.Errorf("sample %d kind = %q, want %q", i, s.Kind, kindPos)
		}
		if s.Payload.(int) != i {
			t.Errorf("sample %d payload = %v, want %d", i, s.Payload, i)
		}
		if s.Source != "mid" {
			t.Errorf("sample %d source = %q, want mid", i, s.Source)
		}
	}
}

func TestAddDuplicateID(t *testing.T) {
	g := New()
	if _, err := g.Add(source("x", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(source("x", 1)); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate Add error = %v, want ErrDuplicateID", err)
	}
}

func TestAddInvalidSpec(t *testing.T) {
	g := New()
	tests := []struct {
		name string
		comp Component
	}{
		{"empty id", &FuncComponent{CompID: ""}},
		{"port accepts nothing", &FuncComponent{
			CompID: "c",
			CompSpec: Spec{
				Inputs: []PortSpec{{Name: "in"}},
				Output: OutputSpec{Kind: kindPos},
			},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.Add(tt.comp); !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("Add error = %v, want ErrInvalidSpec", err)
			}
		})
	}
}

func TestConnectValidation(t *testing.T) {
	newGraph := func(t *testing.T) *Graph {
		t.Helper()
		g := New()
		mustAdd(t, g, source("src", 1))
		mustAdd(t, g, passthrough("mid", kindRaw, kindPos))
		mustAdd(t, g, NewSink("app", []Kind{kindPos}))
		return g
	}

	t.Run("unknown from", func(t *testing.T) {
		g := newGraph(t)
		if err := g.Connect("nope", "mid", 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("error = %v, want ErrNotFound", err)
		}
	})
	t.Run("unknown to", func(t *testing.T) {
		g := newGraph(t)
		if err := g.Connect("src", "nope", 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("error = %v, want ErrNotFound", err)
		}
	})
	t.Run("port out of range", func(t *testing.T) {
		g := newGraph(t)
		if err := g.Connect("src", "mid", 3); !errors.Is(err, ErrPortIndex) {
			t.Errorf("error = %v, want ErrPortIndex", err)
		}
		if err := g.Connect("src", "mid", -1); !errors.Is(err, ErrPortIndex) {
			t.Errorf("error = %v, want ErrPortIndex", err)
		}
	})
	t.Run("kind mismatch", func(t *testing.T) {
		g := newGraph(t)
		// src produces kindRaw, app accepts kindPos.
		if err := g.Connect("src", "app", 0); !errors.Is(err, ErrKindMismatch) {
			t.Errorf("error = %v, want ErrKindMismatch", err)
		}
	})
	t.Run("port busy", func(t *testing.T) {
		g := newGraph(t)
		mustAdd(t, g, source("src2", 1))
		if err := g.Connect("src", "mid", 0); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect("src2", "mid", 0); !errors.Is(err, ErrPortBusy) {
			t.Errorf("error = %v, want ErrPortBusy", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		g := New()
		mustAdd(t, g, passthrough("a", kindRaw, kindRaw))
		mustAdd(t, g, passthrough("b", kindRaw, kindRaw))
		if err := g.Connect("a", "b", 0); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect("b", "a", 0); !errors.Is(err, ErrCycle) {
			t.Errorf("error = %v, want ErrCycle", err)
		}
	})
	t.Run("self cycle", func(t *testing.T) {
		g := New()
		mustAdd(t, g, passthrough("a", kindRaw, kindRaw))
		if err := g.Connect("a", "a", 0); !errors.Is(err, ErrCycle) {
			t.Errorf("error = %v, want ErrCycle", err)
		}
	})
}

func TestConnectRequiredFeature(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 1))
	demanding := &FuncComponent{
		CompID: "dem",
		CompSpec: Spec{
			Inputs: []PortSpec{{
				Name:             "in",
				Accepts:          []Kind{kindRaw},
				RequiresFeatures: []string{"hdop"},
			}},
			Output: OutputSpec{Kind: kindPos},
		},
	}
	mustAdd(t, g, demanding)

	if err := g.Connect("src", "dem", 0); !errors.Is(err, ErrMissingFeature) {
		t.Fatalf("error = %v, want ErrMissingFeature", err)
	}

	// Attaching the feature to the upstream satisfies the requirement —
	// the paper's requirement/capability resolution.
	srcNode, _ := g.Node("src")
	if err := srcNode.AttachFeature(staticFeature{name: "hdop"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "dem", 0); err != nil {
		t.Fatalf("Connect after attach: %v", err)
	}
}

func TestDisconnectAndReconnect(t *testing.T) {
	g, sink := buildLinear(t, 2)
	if err := g.Disconnect("mid", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Errorf("sink received %d samples after disconnect, want 0", sink.Len())
	}
	if err := g.Disconnect("mid", "app", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("double disconnect error = %v, want ErrNotFound", err)
	}
	if err := g.Connect("mid", "app", 0); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
}

func TestRemoveDisconnects(t *testing.T) {
	g, _ := buildLinear(t, 1)
	if err := g.Remove("mid"); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Node("mid"); ok {
		t.Error("node still present after Remove")
	}
	if got := len(g.Edges()); got != 0 {
		t.Errorf("edges remaining = %d, want 0", got)
	}
	// The app port must be free again.
	mustAdd(t, g, passthrough("mid2", kindRaw, kindPos))
	if err := g.Connect("mid2", "app", 0); err != nil {
		t.Fatalf("reconnect to freed port: %v", err)
	}
	if err := g.Remove("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Remove unknown error = %v, want ErrNotFound", err)
	}
}

func TestInsertBetween(t *testing.T) {
	g, sink := buildLinear(t, 4)
	// Insert a filter dropping odd payloads between mid and app — the
	// §3.1 satellite-filter splice.
	filter := NewFilter("filter", kindPos, func(s Sample) bool {
		return s.Payload.(int)%2 == 0
	})
	if err := g.InsertBetween(filter, "mid", "app", 0, 0); err != nil {
		t.Fatal(err)
	}

	wantEdges := map[string]bool{
		"src->mid:0":    true,
		"mid->filter:0": true,
		"filter->app:0": true,
	}
	for _, e := range g.Edges() {
		key := fmt.Sprintf("%s->%s:%d", e.From, e.To, e.Port)
		if !wantEdges[key] {
			t.Errorf("unexpected edge %s", key)
		}
		delete(wantEdges, key)
	}
	if len(wantEdges) != 0 {
		t.Errorf("missing edges: %v", wantEdges)
	}

	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got := sink.Received()
	if len(got) != 2 {
		t.Fatalf("sink received %d, want 2 (evens only)", len(got))
	}
	for _, s := range got {
		if s.Payload.(int)%2 != 0 {
			t.Errorf("odd payload %v leaked through filter", s.Payload)
		}
	}
}

func TestInsertBetweenRollsBackOnBadEdge(t *testing.T) {
	g, _ := buildLinear(t, 1)
	// Splicing into a non-existent edge must leave the graph unchanged.
	filter := NewFilter("filter", kindPos, func(Sample) bool { return true })
	err := g.InsertBetween(filter, "src", "app", 0, 0)
	if err == nil {
		t.Fatal("expected error for non-existent edge")
	}
	if _, ok := g.Node("filter"); ok {
		t.Error("filter left behind after failed insert")
	}
	if got := len(g.Edges()); got != 2 {
		t.Errorf("edges = %d, want 2 (original shape)", got)
	}
}

func TestMergeComponentTwoSources(t *testing.T) {
	g := New()
	mustAdd(t, g, source("gps", 3))
	mustAdd(t, g, source("wifi", 3))
	merge := &FuncComponent{
		CompID: "fusion",
		CompSpec: Spec{
			Name: "fusion",
			Inputs: []PortSpec{
				{Name: "gps", Accepts: []Kind{kindRaw}},
				{Name: "wifi", Accepts: []Kind{kindRaw}},
			},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(port int, in Sample, emit Emit) error {
			out := in
			out.Kind = kindPos
			out = out.WithAttr("via", port)
			emit(out)
			return nil
		},
	}
	mustAdd(t, g, merge)
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	for _, c := range []struct {
		from string
		port int
	}{{"gps", 0}, {"wifi", 1}} {
		if err := g.Connect(c.from, "fusion", c.port); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("fusion", "app", 0); err != nil {
		t.Fatal(err)
	}

	if !merge.Spec().IsMerge() {
		t.Error("two-input component should report IsMerge")
	}

	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 6 {
		t.Errorf("sink received %d, want 6", sink.Len())
	}
	ports := map[int]int{}
	for _, s := range sink.Received() {
		v, _ := s.IntAttr("via")
		ports[v]++
	}
	if ports[0] != 3 || ports[1] != 3 {
		t.Errorf("per-port counts = %v, want 3 each", ports)
	}
}

func TestInjectUnknownComponent(t *testing.T) {
	g := New()
	err := g.Inject("ghost", NewSample(kindRaw, 1, time.Time{}))
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("error = %v, want ErrNotFound", err)
	}
}

func TestDeliverPushesIntoPort(t *testing.T) {
	g, sink := buildLinear(t, 0)
	s := NewSample(kindRaw, 42, time.Time{})
	s.Source = "remote-peer"
	s.Logical = 7
	if err := g.Deliver("mid", 0, s); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 1 {
		t.Fatalf("sink received %d, want 1", sink.Len())
	}
	got, _ := sink.Last()
	if got.Payload.(int) != 42 {
		t.Errorf("payload = %v, want 42", got.Payload)
	}
	if err := g.Deliver("mid", 9, s); !errors.Is(err, ErrPortIndex) {
		t.Errorf("bad port error = %v, want ErrPortIndex", err)
	}
	if err := g.Deliver("ghost", 0, s); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown component error = %v, want ErrNotFound", err)
	}
}

func TestStepSourceErrors(t *testing.T) {
	g, _ := buildLinear(t, 1)
	if _, err := g.StepSource("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("error = %v, want ErrNotFound", err)
	}
	if _, err := g.StepSource("mid"); !errors.Is(err, ErrNotProducer) {
		t.Errorf("error = %v, want ErrNotProducer", err)
	}
}

func TestComponentErrorPropagates(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 1))
	boom := errors.New("boom")
	failing := &FuncComponent{
		CompID: "bad",
		CompSpec: Spec{
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(int, Sample, Emit) error { return boom },
	}
	mustAdd(t, g, failing)
	if err := g.Connect("src", "bad", 0); err != nil {
		t.Fatal(err)
	}
	_, err := g.StepSource("src")
	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want wrapped boom", err)
	}
}

func TestSourcesAndSinks(t *testing.T) {
	g, _ := buildLinear(t, 1)
	srcs := g.Sources()
	if len(srcs) != 1 || srcs[0].ID() != "src" {
		t.Errorf("Sources() = %v", ids(srcs))
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0].ID() != "app" {
		t.Errorf("Sinks() = %v", ids(sinks))
	}
}

func TestUpstreamDownstream(t *testing.T) {
	g, _ := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	up := mid.Upstream()
	if len(up) != 1 || up[0].ID() != "src" {
		t.Errorf("Upstream = %v", ids(up))
	}
	down := mid.Downstream()
	if len(down) != 1 || down[0].ID() != "app" {
		t.Errorf("Downstream = %v", ids(down))
	}
}

func TestTapObservesEveryEmission(t *testing.T) {
	g, _ := buildLinear(t, 3)
	var events []string
	cancel := g.Tap(func(id string, s Sample) {
		events = append(events, fmt.Sprintf("%s:%d", id, s.Logical))
	})
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	// 3 emissions each from src and mid (app is a sink and emits none).
	if len(events) != 6 {
		t.Errorf("tap saw %d events, want 6: %v", len(events), events)
	}

	cancel()
	before := len(events)
	if err := g.Inject("src", NewSample(kindRaw, 9, time.Time{})); err != nil {
		t.Fatal(err)
	}
	if len(events) != before {
		t.Error("tap still firing after cancel")
	}
}

func TestKindAnyAcceptsEverything(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 1))
	sink := NewSink("app", nil) // defaults to KindAny
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 1 {
		t.Errorf("sink received %d, want 1", sink.Len())
	}
}

func TestSinkHelpers(t *testing.T) {
	sink := NewSink("app", nil)
	if _, ok := sink.Last(); ok {
		t.Error("Last on empty sink should report !ok")
	}
	var cbCount int
	sink2 := NewSink("app2", nil, WithCallback(func(Sample) { cbCount++ }))
	if err := sink2.Process(0, NewSample(kindRaw, 1, time.Time{}), nil); err != nil {
		t.Fatal(err)
	}
	if cbCount != 1 {
		t.Errorf("callback count = %d, want 1", cbCount)
	}
	sink2.Reset()
	if sink2.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

// staticFeature is a bare feature providing only a name (state-access
// style features in tests).
type staticFeature struct{ name string }

func (f staticFeature) FeatureName() string { return f.name }

func mustAdd(t *testing.T, g *Graph, c Component) *Node {
	t.Helper()
	n, err := g.Add(c)
	if err != nil {
		t.Fatalf("Add(%s): %v", c.ID(), err)
	}
	return n
}

func ids(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.ID()
	}
	return out
}

func TestPanickingComponentIsContained(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 3))
	bomb := &FuncComponent{
		CompID: "bomb",
		CompSpec: Spec{
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			if in.Payload.(int) == 1 {
				panic("component bug")
			}
			out := in
			out.Kind = kindPos
			emit(out)
			return nil
		},
	}
	mustAdd(t, g, bomb)
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "bomb", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("bomb", "app", 0); err != nil {
		t.Fatal(err)
	}

	// The run surfaces the panic as an error but the pipeline survives:
	// samples 0 and 2 are delivered.
	var errs []error
	for {
		more, err := g.StepAll()
		if err != nil {
			errs = append(errs, err)
		}
		if !more {
			break
		}
	}
	if len(errs) != 1 || !errors.Is(errs[0], ErrPanicked) {
		t.Errorf("errors = %v, want one ErrPanicked", errs)
	}
	if sink.Len() != 2 {
		t.Errorf("sink received %d, want 2 (pipeline must survive the panic)", sink.Len())
	}
}

func TestPanickingProducerIsContained(t *testing.T) {
	g := New()
	mustAdd(t, g, &panickySource{id: "src"})
	_, err := g.StepSource("src")
	if !errors.Is(err, ErrPanicked) {
		t.Errorf("error = %v, want ErrPanicked", err)
	}
}

// panickySource panics on Step.
type panickySource struct{ id string }

func (s *panickySource) ID() string { return s.id }
func (s *panickySource) Spec() Spec {
	return Spec{Name: s.id, Output: OutputSpec{Kind: kindRaw}}
}
func (s *panickySource) Process(int, Sample, Emit) error { return nil }
func (s *panickySource) Step(Emit) (bool, error)         { panic("source bug") }

func TestLargeGraphPropagation(t *testing.T) {
	// A 100-component tree: 10 sources, each through a 9-stage chain
	// into a 10-port merge, then the app. Exercises scale and ordering.
	g := New()
	nSources := 10
	depth := 9

	inputs := make([]PortSpec, nSources)
	for i := range inputs {
		inputs[i] = PortSpec{
			Name:    fmt.Sprintf("in%d", i),
			Accepts: []Kind{Kind(fmt.Sprintf("s%d.k%d", i, depth))},
		}
	}
	merge := &FuncComponent{
		CompID: "merge",
		CompSpec: Spec{
			Name:   "merge",
			Inputs: inputs,
			Output: OutputSpec{Kind: kindPos},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			out := in
			out.Kind = kindPos
			emit(out)
			return nil
		},
	}
	mustAdd(t, g, merge)
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	if err := g.Connect("merge", "app", 0); err != nil {
		t.Fatal(err)
	}

	const samplesPerSource = 20
	base := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	for s := 0; s < nSources; s++ {
		srcID := fmt.Sprintf("s%d", s)
		samples := make([]Sample, samplesPerSource)
		for i := range samples {
			samples[i] = NewSample(Kind(fmt.Sprintf("s%d.k0", s)), i, base.Add(time.Duration(i)*time.Second))
		}
		mustAdd(t, g, &SliceSource{
			CompID:  srcID,
			Out:     OutputSpec{Kind: Kind(fmt.Sprintf("s%d.k0", s))},
			Samples: samples,
		})
		prev := srcID
		for d := 1; d <= depth; d++ {
			id := fmt.Sprintf("s%d.t%d", s, d)
			mustAdd(t, g, passthrough(id,
				Kind(fmt.Sprintf("s%d.k%d", s, d-1)),
				Kind(fmt.Sprintf("s%d.k%d", s, d))))
			if err := g.Connect(prev, id, 0); err != nil {
				t.Fatal(err)
			}
			prev = id
		}
		if err := g.Connect(prev, "merge", s); err != nil {
			t.Fatal(err)
		}
	}

	if got := len(g.Nodes()); got != nSources*(depth+1)+2 {
		t.Fatalf("nodes = %d", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != nSources*samplesPerSource {
		t.Errorf("sink received %d, want %d", sink.Len(), nSources*samplesPerSource)
	}
}
