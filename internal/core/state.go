package core

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Errors returned by the state snapshot/restore machinery.
var (
	// ErrNotStateful indicates a state operation on a component that
	// exposes no serializable state.
	ErrNotStateful = errors.New("core: component is not stateful")
)

// StateFeatureName is the well-known name of the Component Feature that
// exposes its host's serializable state.
const StateFeatureName = "state"

// StateAccess is the functional interface for component-state
// serialization. Retrieved from a node via the "state" Component
// Feature (the paper's state-exposure mechanism: features "expose and
// manipulate component state") and type-asserted by callers, exactly
// like the Fig. 5 getFeature(HDOP.class) pattern.
//
// MarshalState must capture every bit of mutable processing state the
// component would need to continue after a restart — filter estimates,
// replay positions, counters. UnmarshalState must fully replace the
// current state with the decoded one; it is called on a freshly
// constructed instance during recovery, never mid-propagation.
type StateAccess interface {
	MarshalState() ([]byte, error)
	UnmarshalState(data []byte) error
}

// StatefulComponent is a Processing Component whose internal state can
// be checkpointed and restored — the seam the durability subsystem
// (internal/checkpoint) builds on.
type StatefulComponent interface {
	Component
	StateAccess
}

// StateFeature is the Component Feature that advertises and mediates
// access to its host's state. Attaching it to a non-stateful component
// is allowed (the capability is simply inert); marshalling through it
// then fails with ErrNotStateful.
type StateFeature struct {
	host FeatureHost
}

var (
	_ Feature         = (*StateFeature)(nil)
	_ BindableFeature = (*StateFeature)(nil)
	_ StateAccess     = (*StateFeature)(nil)
)

// NewStateFeature returns the state-exposure feature.
func NewStateFeature() *StateFeature { return &StateFeature{} }

// FeatureName implements Feature.
func (f *StateFeature) FeatureName() string { return StateFeatureName }

// Bind implements BindableFeature.
func (f *StateFeature) Bind(host FeatureHost) { f.host = host }

// MarshalState implements StateAccess by delegating to the host.
func (f *StateFeature) MarshalState() ([]byte, error) {
	if f.host == nil {
		return nil, fmt.Errorf("%w: state feature not bound", ErrNotStateful)
	}
	sc, ok := f.host.Component().(StateAccess)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotStateful, f.host.Component().ID())
	}
	return sc.MarshalState()
}

// UnmarshalState implements StateAccess by delegating to the host.
func (f *StateFeature) UnmarshalState(data []byte) error {
	if f.host == nil {
		return fmt.Errorf("%w: state feature not bound", ErrNotStateful)
	}
	sc, ok := f.host.Component().(StateAccess)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotStateful, f.host.Component().ID())
	}
	return sc.UnmarshalState(data)
}

// NodeState is the serializable snapshot of one graph node: its logical
// clock, span bookkeeping and (for stateful components) the component's
// own marshalled state.
type NodeState struct {
	// ID is the component ID the state belongs to.
	ID string `json:"id"`
	// Clock is the node's logical clock (number of emissions) — restored
	// so resumed emissions continue the logical timeline monotonically.
	Clock LogicalTime `json:"clock"`
	// Emitted mirrors the span-grouping flag.
	Emitted bool `json:"emitted,omitempty"`
	// Pending carries the open consumption spans.
	Pending []Span `json:"pending,omitempty"`
	// Component is the component's own serialized state (JSON produced
	// by its MarshalState), or nil for stateless components.
	Component json.RawMessage `json:"component,omitempty"`
}

// GraphState is the serializable snapshot of a whole graph's running
// state. Structure (nodes, edges, features) is NOT captured — that is
// the Blueprint's job; GraphState carries only what a freshly
// instantiated copy of the same blueprint needs to continue where the
// snapshot was taken.
type GraphState struct {
	Nodes []NodeState `json:"nodes"`
}

// stateAccessLocked returns the node's state serializer: the attached
// "state" Component Feature when present, else the component's own
// StateAccess implementation. Called with g.mu held (read or write).
func (n *Node) stateAccessLocked() (StateAccess, bool) {
	if f, ok := n.featureLocked(StateFeatureName); ok {
		if sa, ok := f.(StateAccess); ok {
			return sa, true
		}
	}
	sa, ok := n.comp.(StateAccess)
	return sa, ok
}

// snapshotStateLocked captures the node's running state. Called with
// g.mu held.
func (n *Node) snapshotStateLocked() (NodeState, error) {
	st := NodeState{
		ID:      n.ID(),
		Clock:   n.clock,
		Emitted: n.emitted,
		Pending: n.currentSpans(),
	}
	if sa, ok := n.stateAccessLocked(); ok {
		data, err := sa.MarshalState()
		if err != nil {
			return NodeState{}, fmt.Errorf("core: marshal state of %q: %w", n.ID(), err)
		}
		st.Component = data
	}
	return st, nil
}

// restoreStateLocked rehydrates the node from a snapshot. Called with
// g.mu held.
func (n *Node) restoreStateLocked(st NodeState) error {
	n.clock = st.Clock
	n.emitted = st.Emitted
	n.pending = append(n.pending[:0], st.Pending...)
	if len(st.Component) == 0 {
		return nil
	}
	sa, ok := n.stateAccessLocked()
	if !ok {
		return fmt.Errorf("%w: %q has checkpointed component state", ErrNotStateful, n.ID())
	}
	if err := sa.UnmarshalState(st.Component); err != nil {
		return fmt.Errorf("core: restore state of %q: %w", n.ID(), err)
	}
	return nil
}

// SnapshotState captures the running state of every node in the graph:
// logical clocks, span bookkeeping and the serialized state of every
// stateful component (via its "state" feature or its own StateAccess).
// The graph must be quiescent — it fails with ErrRunning while an async
// Runner is active; the caller (runtime.Session.Checkpoint) pauses the
// runner first.
func (g *Graph) SnapshotState() (GraphState, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.running.Load() {
		return GraphState{}, ErrRunning
	}
	gs := GraphState{Nodes: make([]NodeState, 0, len(g.order))}
	for _, id := range g.order {
		st, err := g.nodes[id].snapshotStateLocked()
		if err != nil {
			return GraphState{}, err
		}
		gs.Nodes = append(gs.Nodes, st)
	}
	return gs, nil
}

// RestoreState rehydrates a freshly instantiated graph from a snapshot
// taken of a structurally identical instance: logical clocks and
// component state are replayed onto the matching nodes. Nodes present
// in the snapshot but absent from the graph are skipped (the blueprint
// may have been adapted since the checkpoint); nodes in the graph but
// absent from the snapshot keep their fresh zero state. Like
// SnapshotState it requires a quiescent graph.
func (g *Graph) RestoreState(gs GraphState) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running.Load() {
		return ErrRunning
	}
	var errs []error
	for _, st := range gs.Nodes {
		n, ok := g.nodes[st.ID]
		if !ok {
			continue
		}
		if err := n.restoreStateLocked(st); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
