package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// panicComponent panics on every Nth Process call.
type panicComponent struct {
	id    string
	every int
	calls int
}

var _ Component = (*panicComponent)(nil)

func (p *panicComponent) ID() string { return p.id }

func (p *panicComponent) Spec() Spec {
	return Spec{
		Name:   "panicker",
		Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
		Output: OutputSpec{Kind: kindRaw},
	}
}

func (p *panicComponent) Process(_ int, in Sample, emit Emit) error {
	p.calls++
	if p.every > 0 && p.calls%p.every == 0 {
		panic("injected component panic")
	}
	emit(in)
	return nil
}

// panicSource panics on its first Step.
type panicSource struct{ id string }

var _ Producer = (*panicSource)(nil)

func (p *panicSource) ID() string { return p.id }
func (p *panicSource) Spec() Spec {
	return Spec{Name: p.id, Output: OutputSpec{Kind: kindRaw}}
}
func (p *panicSource) Process(int, Sample, Emit) error { return nil }
func (p *panicSource) Step(Emit) (bool, error)         { panic("injected source panic") }

// panicConsumeFeature panics in its Consume hook.
type panicConsumeFeature struct{}

func (panicConsumeFeature) FeatureName() string { return "panic-consume" }
func (panicConsumeFeature) Consume(int, Sample) (Sample, bool) {
	panic("injected consume-hook panic")
}

// panicProduceFeature panics in its Produce hook.
type panicProduceFeature struct{}

func (panicProduceFeature) FeatureName() string { return "panic-produce" }
func (panicProduceFeature) Produce(Sample) (Sample, bool) {
	panic("injected produce-hook panic")
}

func TestProcessPanicContained(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 3))
	bad := &panicComponent{id: "bad", every: 2} // panics on sample 2
	mustAdd(t, g, bad)
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "bad", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("bad", "app", 0); err != nil {
		t.Fatal(err)
	}

	// Drive past the error: a contained panic must not stop the rest of
	// the stream from flowing.
	var runErr error
	for {
		more, err := g.StepAll()
		runErr = errors.Join(runErr, err)
		if !more {
			break
		}
	}
	if !errors.Is(runErr, ErrPanicked) {
		t.Fatalf("run error = %v, want wrapped ErrPanicked", runErr)
	}
	// The panic consumed one sample; the other two flowed through.
	if sink.Len() != 2 {
		t.Errorf("sink received %d, want 2 (panic contained per sample)", sink.Len())
	}
}

func TestStepPanicContained(t *testing.T) {
	g := New()
	mustAdd(t, g, &panicSource{id: "src"})
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}

	more, err := g.StepAll()
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("StepAll error = %v, want wrapped ErrPanicked", err)
	}
	if more {
		t.Error("a panicking source must read as exhausted (more=false)")
	}
}

func TestConsumeHookPanicContained(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 2))
	mid := mustAdd(t, g, NewTransform("mid", kindRaw, kindRaw, func(in Sample) (Sample, bool) {
		return in, true
	}))
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "mid", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("mid", "app", 0); err != nil {
		t.Fatal(err)
	}
	if err := mid.AttachFeature(panicConsumeFeature{}); err != nil {
		t.Fatal(err)
	}

	_, err := g.Run(0)
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("Run error = %v, want wrapped ErrPanicked (hook panic contained)", err)
	}
	if sink.Len() != 0 {
		t.Errorf("sink received %d, want 0 (hook panicked before delivery)", sink.Len())
	}
	// The graph survives: detach the bad feature and run fresh data.
	if err := mid.DetachFeature("panic-consume"); err != nil {
		t.Fatal(err)
	}
	if err := g.Inject("src", NewSample(kindRaw, 99, time.Time{})); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 1 {
		t.Errorf("sink received %d after recovery, want 1", sink.Len())
	}
}

func TestProduceHookPanicContained(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 1))
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}
	srcNode, _ := g.Node("src")
	if err := srcNode.AttachFeature(panicProduceFeature{}); err != nil {
		t.Fatal(err)
	}

	// The produce hook runs inside the emitting node's step; its panic
	// is contained there.
	_, err := g.StepAll()
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("StepAll error = %v, want wrapped ErrPanicked", err)
	}
	if sink.Len() != 0 {
		t.Errorf("sink received %d, want 0", sink.Len())
	}
}

// dyingSource fails its first `failures` steps terminally (more=false
// with an error) and needs a Restart between attempts; afterwards it
// emits `total` samples.
type dyingSource struct {
	id       string
	failures int
	total    int

	mu       sync.Mutex
	fails    int
	restarts int
	emitted  int
	live     bool
}

var (
	_ Producer    = (*dyingSource)(nil)
	_ Restartable = (*dyingSource)(nil)
)

func (s *dyingSource) ID() string { return s.id }
func (s *dyingSource) Spec() Spec {
	return Spec{Name: s.id, Output: OutputSpec{Kind: kindRaw}}
}
func (s *dyingSource) Process(int, Sample, Emit) error { return nil }

func (s *dyingSource) Step(emit Emit) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live && s.fails < s.failures {
		s.fails++
		return false, errors.New("device gone")
	}
	s.emitted++
	emit(NewSample(kindRaw, s.emitted, time.Time{}))
	return s.emitted < s.total, nil
}

func (s *dyingSource) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.restarts++
	if s.fails < s.failures {
		return errors.New("still gone")
	}
	s.live = true
	return nil
}

// recordingObserver captures runner callbacks for assertions.
type recordingObserver struct {
	mu        sync.Mutex
	results   map[string][]error
	exhausted []string
	restarted []int
}

func (o *recordingObserver) NodeResult(node string, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.results == nil {
		o.results = make(map[string][]error)
	}
	o.results[node] = append(o.results[node], err)
}

func (o *recordingObserver) SourceExhausted(node string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.exhausted = append(o.exhausted, node)
}

func (o *recordingObserver) SourceRestarted(_ string, attempt int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.restarted = append(o.restarted, attempt)
}

func TestRunnerRestartsFailedSource(t *testing.T) {
	g := New()
	src := &dyingSource{id: "src", failures: 2, total: 5}
	mustAdd(t, g, src)
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}

	obs := &recordingObserver{}
	r := NewRunner(g,
		WithRunnerObserver(obs),
		WithSourceRestart(RestartPolicy{Base: time.Millisecond, Max: 5 * time.Millisecond}))
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	// Stop surfaces the step errors noted before the restarts landed.
	if err := r.Stop(); err == nil {
		t.Error("Stop = nil, want the source's pre-restart errors")
	}
	if sink.Len() != 5 {
		t.Errorf("sink received %d, want 5 (source restarted and finished)", sink.Len())
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.restarted) == 0 {
		t.Error("observer saw no SourceRestarted")
	}
	if len(obs.exhausted) != 1 || obs.exhausted[0] != "src" {
		t.Errorf("exhausted = %v, want [src]", obs.exhausted)
	}
}

func TestRunnerRestartCapExhausts(t *testing.T) {
	g := New()
	// Fails forever: Restart never succeeds within the cap.
	src := &dyingSource{id: "src", failures: 1 << 30, total: 1}
	mustAdd(t, g, src)
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}

	obs := &recordingObserver{}
	r := NewRunner(g,
		WithRunnerObserver(obs),
		WithSourceRestart(RestartPolicy{MaxRestarts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond}))
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err == nil {
		t.Error("Stop = nil, want the terminal source error")
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.exhausted) != 1 {
		t.Fatalf("exhausted = %v, want exactly one entry after the restart cap", obs.exhausted)
	}
	if len(obs.restarted) != 0 {
		t.Errorf("restarted = %v, want none (restarts never succeeded)", obs.restarted)
	}
}

func TestRunnerCancelDuringRestartBackoff(t *testing.T) {
	g := New()
	// Fails forever, with a backoff far longer than the test: Stop must
	// interrupt the wait rather than sit out the delay (the backoff timer
	// is reused and stopped on exit, not leaked per attempt).
	src := &dyingSource{id: "src", failures: 1 << 30, total: 1}
	mustAdd(t, g, src)
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(g, WithSourceRestart(RestartPolicy{Base: time.Minute}))
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Wait until the source has failed at least once, so the drive loop
	// is inside (or entering) the backoff select.
	deadline := time.Now().Add(5 * time.Second)
	for {
		src.mu.Lock()
		failed := src.fails > 0
		src.mu.Unlock()
		if failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("source never failed")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if err := r.Stop(); err == nil {
		t.Error("Stop = nil, want the source's terminal error")
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("Stop blocked %v waiting out the restart backoff", waited)
	}
}

func TestRunnerCleanExhaustionNeverRestarts(t *testing.T) {
	g := New()
	src := &dyingSource{id: "src", failures: 0, total: 3}
	src.live = true
	mustAdd(t, g, src)
	sink := NewSink("app", []Kind{kindRaw})
	mustAdd(t, g, sink)
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(g, WithSourceRestart(RestartPolicy{Base: time.Millisecond}))
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	if src.restarts != 0 {
		t.Errorf("restarts = %d, want 0 for clean end of data", src.restarts)
	}
}

// blockingGate denies delivery to the named node.
type blockingGate struct {
	recordingObserver
	deny string
}

func (g *blockingGate) Allow(node string) bool { return node != g.deny }

func TestRunnerDeliveryGateDropsQuarantined(t *testing.T) {
	g, sink := buildLinear(t, 10)
	gate := &blockingGate{deny: "app"}
	r := NewRunner(g, WithRunnerObserver(gate))
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r.WaitSources()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Errorf("sink received %d, want 0 (gated off)", sink.Len())
	}
}

func TestRestartPolicyDelay(t *testing.T) {
	p := RestartPolicy{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		60 * time.Millisecond, // capped
		60 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}
