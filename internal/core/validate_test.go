package core

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateGoodGraph(t *testing.T) {
	g, _ := buildLinear(t, 1)
	if err := g.Validate(); err != nil {
		t.Errorf("Validate on a correct graph = %v", err)
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	g := New()
	if err := g.Validate(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("empty graph error = %v, want ErrInvalidSpec", err)
	}
}

func TestValidateUnconnectedPort(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 1))
	mustAdd(t, g, passthrough("mid", kindRaw, kindPos))
	sink := NewSink("app", []Kind{kindPos})
	mustAdd(t, g, sink)
	// mid's input stays unconnected; mid -> app connected.
	if err := g.Connect("mid", "app", 0); err != nil {
		t.Fatal(err)
	}
	err := g.Validate()
	if err == nil {
		t.Fatal("expected validation errors")
	}
	if !strings.Contains(err.Error(), `"mid" input port 0`) {
		t.Errorf("error does not name the open port: %v", err)
	}
	// src is also dangling (cannot reach the sink).
	if !strings.Contains(err.Error(), `"src" cannot reach any sink`) {
		t.Errorf("error does not flag the dropped source: %v", err)
	}
}

func TestValidateNoSink(t *testing.T) {
	g := New()
	mustAdd(t, g, source("src", 1))
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "no sink") {
		t.Errorf("error = %v, want no-sink", err)
	}
}

func TestValidateNoSource(t *testing.T) {
	g := New()
	mustAdd(t, g, NewSink("app", nil))
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "no source") {
		t.Errorf("error = %v, want no-source", err)
	}
}

func TestValidateAfterSurgeryStaysValid(t *testing.T) {
	g, _ := buildLinear(t, 1)
	filter := NewFilter("f", kindPos, func(Sample) bool { return true })
	if err := g.InsertBetween(filter, "mid", "app", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after InsertBetween = %v", err)
	}
	if err := g.Remove("f"); err != nil {
		t.Fatal(err)
	}
	// Removing the filter leaves mid dangling and app's port open.
	if err := g.Validate(); err == nil {
		t.Error("expected validation errors after Remove")
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := buildLinear(t, 1)
	mid, _ := g.Node("mid")
	if err := mid.AttachFeature(staticFeature{name: "hdop"}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph", `"src" [shape=house`, `"app" [shape=doublecircle`,
		`"src" -> "mid"`, "hdop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
