package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// asyncDeliver is installed on a Graph by a running Runner; when set,
// emissions are enqueued to per-node inboxes instead of propagated by
// direct call.
type asyncDeliver func(n *Node, port int, s Sample)

// Runner executes a graph asynchronously: one goroutine per component
// consuming a bounded inbox, and one goroutine per Producer source
// stepping it until exhaustion. This is the engine used for live
// pipelines; deterministic runs use Graph.Run instead.
//
// The graph structure is frozen while the runner is active.
type Runner struct {
	g        *Graph
	interval time.Duration
	inboxCap int

	mu      sync.Mutex
	started bool
	cancel  context.CancelFunc

	inboxes  map[*Node]chan message
	doneCh   chan struct{}  // closed by Stop to end node goroutines
	inflight sync.WaitGroup // tracks queued but unprocessed messages
	workers  sync.WaitGroup // node goroutines
	sources  sync.WaitGroup // producer goroutines
}

type message struct {
	port int
	s    Sample
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithSourceInterval makes producer sources step at the given period
// instead of free-running (live-pipeline pacing).
func WithSourceInterval(d time.Duration) RunnerOption {
	return func(r *Runner) { r.interval = d }
}

// WithInboxCapacity sets each node's inbox depth (default 1). Depth 1
// gives the tightest backpressure; deeper inboxes absorb fan-in bursts —
// what a session runtime multiplexing many producers needs to keep
// upstream components from stalling on a briefly-busy consumer.
func WithInboxCapacity(n int) RunnerOption {
	return func(r *Runner) {
		if n > 0 {
			r.inboxCap = n
		}
	}
}

// NewRunner returns a runner for g.
func NewRunner(g *Graph, opts ...RunnerOption) *Runner {
	r := &Runner{g: g, inboxCap: 1}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Start freezes the graph and launches the node and source goroutines.
// It returns once everything is running.
func (r *Runner) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("runner: %w", ErrRunning)
	}

	ctx, cancel := context.WithCancel(ctx)
	r.cancel = cancel

	nodes := r.g.Nodes()
	r.inboxes = make(map[*Node]chan message, len(nodes))
	for _, n := range nodes {
		// Bounded inboxes: enqueue blocks when the consumer lags,
		// giving natural backpressure along the (acyclic) tree.
		r.inboxes[n] = make(chan message, r.inboxCap)
	}

	r.g.setAsync(func(n *Node, port int, s Sample) {
		r.inflight.Add(1)
		r.inboxes[n] <- message{port: port, s: s}
	})

	done := make(chan struct{})
	for _, n := range nodes {
		n := n
		inbox := r.inboxes[n]
		r.workers.Add(1)
		go func() {
			defer r.workers.Done()
			for {
				select {
				case m := <-inbox:
					if err := n.process(m.port, m.s); err != nil {
						r.g.noteError(err)
					}
					r.inflight.Done()
				case <-done:
					// Drain anything that raced with shutdown.
					for {
						select {
						case m := <-inbox:
							if err := n.process(m.port, m.s); err != nil {
								r.g.noteError(err)
							}
							r.inflight.Done()
						default:
							return
						}
					}
				}
			}
		}()
	}
	r.doneCh = done

	for _, n := range nodes {
		if _, ok := n.comp.(Producer); !ok {
			continue
		}
		n := n
		r.sources.Add(1)
		go func() {
			defer r.sources.Done()
			var ticker *time.Ticker
			if r.interval > 0 {
				ticker = time.NewTicker(r.interval)
				defer ticker.Stop()
			}
			for {
				select {
				case <-ctx.Done():
					return
				default:
				}
				more, err := n.step()
				if err != nil {
					r.g.noteError(err)
				}
				if !more {
					return
				}
				if ticker != nil {
					select {
					case <-ctx.Done():
						return
					case <-ticker.C:
					}
				}
			}
		}()
	}

	r.started = true
	return nil
}

// Stop halts the sources, waits for all in-flight samples to drain,
// stops the node goroutines and unfreezes the graph. It returns any
// errors collected during the run.
func (r *Runner) Stop() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return nil
	}
	r.cancel()
	r.sources.Wait()
	r.inflight.Wait()
	close(r.doneCh)
	r.workers.Wait()
	r.g.setAsync(nil)
	r.started = false
	return r.g.drainErrors()
}

// WaitSources blocks until every producer source is exhausted (or
// stopped via context), then drains in-flight samples. The runner keeps
// accepting injected samples until Stop is called.
func (r *Runner) WaitSources() {
	r.sources.Wait()
	r.inflight.Wait()
}
